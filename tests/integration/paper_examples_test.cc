// Recreates the paper's worked examples as end-to-end simulations.

#include <gtest/gtest.h>

#include "sched/policies/asets.h"
#include "sched/policies/asets_star.h"
#include "sched/policies/single_queue_policies.h"
#include "sim/simulator.h"
#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::Txn;

RunResult Simulate(std::vector<TransactionSpec> txns, SchedulerPolicy& policy) {
  auto sim = Simulator::Create(std::move(txns));
  EXPECT_TRUE(sim.ok()) << sim.status();
  return sim.ValueOrDie().Run(policy);
}

// Example 1 / Fig. 2(a): a case where EDF beats SRPT. T1 is long with an
// early deadline, T2 short with a late deadline that leaves room to run
// after T1.
TEST(PaperExample1Test, CaseAEdfBeatsSrpt) {
  const std::vector<TransactionSpec> txns = {Txn(0, 0, 6, 6),
                                             Txn(1, 0, 3, 10)};
  EdfPolicy edf;
  SrptPolicy srpt;
  const RunResult r_edf = Simulate(txns, edf);
  const RunResult r_srpt = Simulate(txns, srpt);
  // EDF: T0 [0,6] on time, T1 [6,9] on time -> zero tardiness.
  EXPECT_EQ(r_edf.avg_tardiness, 0.0);
  // SRPT: T1 [0,3], T0 [3,9] -> T0 3 units late.
  EXPECT_GT(r_srpt.avg_tardiness, 0.0);
}

// Example 1 / Fig. 2(b): a case where SRPT beats EDF. T1's deadline has
// already passed; EDF still runs it first and drags T2 past its deadline
// too (the domino effect).
TEST(PaperExample1Test, CaseBSrptBeatsEdf) {
  const std::vector<TransactionSpec> txns = {Txn(0, 0, 6, 1),
                                             Txn(1, 0, 3, 4)};
  EdfPolicy edf;
  SrptPolicy srpt;
  const RunResult r_edf = Simulate(txns, edf);
  const RunResult r_srpt = Simulate(txns, srpt);
  // EDF: T0 [0,6] tardy 5, T1 [6,9] tardy 5 -> both miss.
  EXPECT_EQ(r_edf.miss_ratio, 1.0);
  // SRPT: T1 [0,3] hmm 3 <= 4 on time, T0 [3,9] tardy 8.
  EXPECT_LT(r_srpt.avg_tardiness, r_edf.avg_tardiness);
  EXPECT_LT(r_srpt.miss_ratio, 1.0);
}

// ASETS matches the better of EDF/SRPT on both Example 1 cases.
TEST(PaperExample1Test, AsetsMatchesTheWinnerOnBothCases) {
  AsetsPolicy asets;
  EdfPolicy edf;
  SrptPolicy srpt;
  for (const auto& txns :
       {std::vector<TransactionSpec>{Txn(0, 0, 6, 6), Txn(1, 0, 3, 10)},
        std::vector<TransactionSpec>{Txn(0, 0, 6, 1), Txn(1, 0, 3, 4)}}) {
    const double best = std::min(Simulate(txns, edf).avg_tardiness,
                                 Simulate(txns, srpt).avg_tardiness);
    EXPECT_LE(Simulate(txns, asets).avg_tardiness, best + 1e-9);
  }
}

// Example 2 (Fig. 4) as a simulation: the tardy short transaction runs
// first because the EDF-top has slack to absorb it.
TEST(PaperExample2Test, SrptTopRunsFirstAndBothOutcomesImprove) {
  const std::vector<TransactionSpec> txns = {Txn(0, 0, 5, 7),
                                             Txn(1, 0, 3, 2.999)};
  AsetsPolicy asets;
  const RunResult r = Simulate(txns, asets);
  // T1 runs [0,3] (tardy ~0), T0 runs [3,8] — misses d=7 by 1.
  EXPECT_EQ(r.outcomes[1].finish, 3.0);
  EXPECT_EQ(r.outcomes[0].finish, 8.0);
  // Total tardiness ~1.001; the EDF-first order would give ~5.
  EXPECT_LT(r.avg_tardiness * 2.0, 1.2);
}

// Example 3 (Fig. 5): with zero slack on the EDF top, it must run first.
TEST(PaperExample3Test, EdfTopRunsFirstWhenItHasNoSlack) {
  const std::vector<TransactionSpec> txns = {Txn(0, 0, 2, 2),
                                             Txn(1, 0, 3, 1)};
  AsetsPolicy asets;
  const RunResult r = Simulate(txns, asets);
  EXPECT_EQ(r.outcomes[0].finish, 2.0);  // meets its deadline exactly
  EXPECT_EQ(r.outcomes[0].tardiness, 0.0);
  EXPECT_EQ(r.outcomes[1].finish, 5.0);
}

// Sec. II-B: the precedence/deadline conflict. The alerts fragment T3
// depends on T1 -> T0 but carries the earliest deadline and top weight.
// ASETS* must finish the T0 -> T1 -> T3 spine before the unrelated filler
// transaction, while deadline-ordered EDF burns the slack on the filler
// (its deadline is earlier than T0's and T1's own deadlines).
TEST(PaperScenarioTest, StockPageConflictFavorsAsetsStar) {
  const std::vector<TransactionSpec> txns = {
      Txn(0, 0, 4, 30, 1.0),          // T1: all prices (loose own deadline)
      Txn(1, 0, 3, 28, 1.0, {0}),     // T2: portfolio join
      Txn(2, 0, 2, 26, 1.0, {1}),     // T3: portfolio value
      Txn(3, 0, 2, 9, 5.0, {1}),      // T4: alerts — urgent and heavy
      Txn(4, 0, 8, 20, 1.0),          // filler with mid deadline
  };
  EdfPolicy edf;
  AsetsStarPolicy star;
  const RunResult r_edf = Simulate(txns, edf);
  const RunResult r_star = Simulate(txns, star);
  // EDF picks the filler first (d=20 < 28,30), so alerts are very late.
  EXPECT_GT(r_edf.outcomes[3].tardiness, r_star.outcomes[3].tardiness);
  // ASETS* boosts the chain via the representative (d_rep = 9) and gets
  // alerts out by t=9.
  EXPECT_LE(r_star.outcomes[3].finish, 9.0 + 1e-9);
  EXPECT_LT(r_star.avg_weighted_tardiness, r_edf.avg_weighted_tardiness);
}

}  // namespace
}  // namespace webtx
