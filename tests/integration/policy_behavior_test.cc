// System-level behavioral checks of the policy family on generated
// Table-I workloads.

#include <gtest/gtest.h>

#include "sched/policies/asets.h"
#include "sched/policies/asets_star.h"
#include "sched/policies/balance_aware.h"
#include "sched/policies/single_queue_policies.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace webtx {
namespace {

std::vector<TransactionSpec> Make(const WorkloadSpec& spec, uint64_t seed) {
  auto generator = WorkloadGenerator::Create(spec);
  EXPECT_TRUE(generator.ok());
  return generator.ValueOrDie().Generate(seed);
}

RunResult Simulate(const std::vector<TransactionSpec>& txns,
              SchedulerPolicy& policy) {
  auto sim = Simulator::Create(txns);
  EXPECT_TRUE(sim.ok()) << sim.status();
  return sim.ValueOrDie().Run(policy);
}

TEST(PolicyBehaviorTest, EdfMeetsAllDeadlinesAtLowUtilization) {
  WorkloadSpec spec;
  spec.num_transactions = 300;
  spec.utilization = 0.05;
  spec.k_max = 5.0;
  EdfPolicy edf;
  const RunResult r = Simulate(Make(spec, 1), edf);
  EXPECT_LT(r.miss_ratio, 0.02);
}

TEST(PolicyBehaviorTest, AsetsNeverMuchWorseThanBothParents) {
  // The headline claim: ASETS tracks min(EDF, SRPT) across load levels.
  WorkloadSpec spec;
  spec.num_transactions = 500;
  EdfPolicy edf;
  SrptPolicy srpt;
  AsetsPolicy asets;
  for (const double util : {0.2, 0.5, 0.8, 1.0}) {
    spec.utilization = util;
    double edf_sum = 0.0;
    double srpt_sum = 0.0;
    double asets_sum = 0.0;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      const auto txns = Make(spec, seed);
      edf_sum += Simulate(txns, edf).avg_tardiness;
      srpt_sum += Simulate(txns, srpt).avg_tardiness;
      asets_sum += Simulate(txns, asets).avg_tardiness;
    }
    EXPECT_LE(asets_sum, std::min(edf_sum, srpt_sum) * 1.05 + 0.1)
        << "utilization " << util;
  }
}

TEST(PolicyBehaviorTest, HdfEqualsSrptUnderEqualWeights) {
  WorkloadSpec spec;
  spec.num_transactions = 400;
  spec.utilization = 0.8;
  const auto txns = Make(spec, 5);
  HdfPolicy hdf;
  SrptPolicy srpt;
  const RunResult r_hdf = Simulate(txns, hdf);
  const RunResult r_srpt = Simulate(txns, srpt);
  ASSERT_EQ(r_hdf.outcomes.size(), r_srpt.outcomes.size());
  for (size_t i = 0; i < r_hdf.outcomes.size(); ++i) {
    EXPECT_EQ(r_hdf.outcomes[i].finish, r_srpt.outcomes[i].finish);
  }
}

TEST(PolicyBehaviorTest, AsetsStarEqualsAsetsOnIndependentTransactions) {
  // Sec. III-C: with singleton workflows ASETS* reduces to ASETS.
  WorkloadSpec spec;
  spec.num_transactions = 400;
  spec.utilization = 0.7;
  spec.max_weight = 10;
  const auto txns = Make(spec, 6);
  AsetsPolicy asets;
  AsetsStarPolicy star;
  const RunResult r_a = Simulate(txns, asets);
  const RunResult r_s = Simulate(txns, star);
  for (size_t i = 0; i < r_a.outcomes.size(); ++i) {
    EXPECT_EQ(r_a.outcomes[i].finish, r_s.outcomes[i].finish) << "T" << i;
  }
}

TEST(PolicyBehaviorTest, ReadyEqualsAsetsOnIndependentTransactions) {
  WorkloadSpec spec;
  spec.num_transactions = 300;
  spec.utilization = 0.6;
  const auto txns = Make(spec, 7);
  AsetsPolicy asets;
  ReadyPolicy ready;
  const RunResult r_a = Simulate(txns, asets);
  const RunResult r_r = Simulate(txns, ready);
  for (size_t i = 0; i < r_a.outcomes.size(); ++i) {
    EXPECT_EQ(r_a.outcomes[i].finish, r_r.outcomes[i].finish);
  }
}

TEST(PolicyBehaviorTest, AsetsStarBeatsReadyOnWorkflowWorkloads) {
  // Fig. 14's claim, averaged over seeds at moderate-high load.
  WorkloadSpec spec;
  spec.num_transactions = 600;
  spec.utilization = 0.8;
  spec.max_workflow_length = 5;
  ReadyPolicy ready;
  AsetsStarPolicy star;
  double ready_sum = 0.0;
  double star_sum = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const auto txns = Make(spec, seed);
    ready_sum += Simulate(txns, ready).avg_tardiness;
    star_sum += Simulate(txns, star).avg_tardiness;
  }
  EXPECT_LT(star_sum, ready_sum);
}

TEST(PolicyBehaviorTest, SrptMinimizesMeanResponseAmongBaselines) {
  // SRPT is optimal for mean flow time; our FCFS/EDF/LS must not beat it.
  WorkloadSpec spec;
  spec.num_transactions = 500;
  spec.utilization = 0.9;
  const auto txns = Make(spec, 8);
  SrptPolicy srpt;
  FcfsPolicy fcfs;
  EdfPolicy edf;
  LsPolicy ls;
  const double srpt_resp = Simulate(txns, srpt).avg_response;
  EXPECT_LE(srpt_resp, Simulate(txns, fcfs).avg_response + 1e-9);
  EXPECT_LE(srpt_resp, Simulate(txns, edf).avg_response + 1e-9);
  EXPECT_LE(srpt_resp, Simulate(txns, ls).avg_response + 1e-9);
}

TEST(PolicyBehaviorTest, BalanceAwareTradesAverageForWorstCase) {
  // Sec. III-D / Figs. 16-17: higher activation rate lowers the maximum
  // weighted tardiness versus plain ASETS* at the cost of a (small)
  // average increase. Averaged over seeds to damp noise.
  WorkloadSpec spec;
  spec.num_transactions = 600;
  spec.utilization = 0.9;
  spec.max_weight = 10;
  spec.max_workflow_length = 5;

  AsetsStarPolicy plain;
  BalanceAwareOptions options;
  options.mode = ActivationMode::kTimeBased;
  options.rate = 0.01;
  BalanceAwarePolicy balanced(std::make_unique<AsetsStarPolicy>(), options);

  double plain_max = 0.0;
  double balanced_max = 0.0;
  double plain_avg = 0.0;
  double balanced_avg = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const auto txns = Make(spec, seed);
    const RunResult r_p = Simulate(txns, plain);
    const RunResult r_b = Simulate(txns, balanced);
    plain_max += r_p.max_weighted_tardiness;
    balanced_max += r_b.max_weighted_tardiness;
    plain_avg += r_p.avg_weighted_tardiness;
    balanced_avg += r_b.avg_weighted_tardiness;
  }
  EXPECT_LT(balanced_max, plain_max);
  // The average-case hit exists but stays bounded (a trade-off, not a
  // collapse; see EXPERIMENTS.md for the magnitude discussion).
  EXPECT_LT(balanced_avg, plain_avg * 1.5);
}

TEST(PolicyBehaviorTest, WeightedWorkloadsFavorWeightAwarePolicies) {
  // Under overload with spread-out weights, HDF and ASETS* beat EDF on
  // weighted tardiness (Fig. 15's regime).
  WorkloadSpec spec;
  spec.num_transactions = 600;
  spec.utilization = 1.0;
  spec.max_weight = 10;
  EdfPolicy edf;
  HdfPolicy hdf;
  AsetsStarPolicy star;
  double edf_sum = 0.0;
  double hdf_sum = 0.0;
  double star_sum = 0.0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const auto txns = Make(spec, seed);
    edf_sum += Simulate(txns, edf).avg_weighted_tardiness;
    hdf_sum += Simulate(txns, hdf).avg_weighted_tardiness;
    star_sum += Simulate(txns, star).avg_weighted_tardiness;
  }
  EXPECT_LT(hdf_sum, edf_sum);
  EXPECT_LT(star_sum, edf_sum);
}

}  // namespace
}  // namespace webtx
