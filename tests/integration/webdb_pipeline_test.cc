// End-to-end: backend database -> page templates -> request server ->
// transaction workload -> simulator -> per-fragment outcomes -> profiler.

#include <gtest/gtest.h>

#include "sched/policies/asets_star.h"
#include "sched/policies/single_queue_policies.h"
#include "sim/simulator.h"
#include "webdb/database.h"
#include "webdb/page.h"
#include "webdb/profiler.h"
#include "webdb/server.h"

namespace webtx::webdb {
namespace {

class WebdbPipelineTest : public ::testing::Test {
 protected:
  WebdbPipelineTest() {
    EXPECT_TRUE(db_.CreateTable("stocks", {{"symbol", ColumnType::kText},
                                           {"price", ColumnType::kNumber},
                                           {"change", ColumnType::kNumber}})
                    .ok());
    EXPECT_TRUE(db_.CreateTable("portfolio",
                                {{"user", ColumnType::kText},
                                 {"symbol", ColumnType::kText}})
                    .ok());
    auto stocks = db_.GetTable("stocks").ValueOrDie();
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(stocks
                      ->Insert({"S" + std::to_string(i), 10.0 + i,
                                static_cast<double>(i % 13) - 6.0})
                      .ok());
    }
    auto portfolio = db_.GetTable("portfolio").ValueOrDie();
    for (int i = 0; i < 15; ++i) {
      EXPECT_TRUE(
          portfolio->Insert({std::string("u"), "S" + std::to_string(i * 7)})
              .ok());
    }
  }

  PageTemplate Page() const {
    PageTemplate page;
    page.name = "dash";
    FragmentTemplate prices;
    prices.name = "prices";
    prices.query.name = "q_prices";
    prices.query.table = "stocks";
    prices.sla_offset = 8.0;
    page.fragments.push_back(prices);

    FragmentTemplate mine;
    mine.name = "mine";
    mine.query.name = "q_mine";
    mine.query.table = "stocks";
    mine.query.join_table = "portfolio";
    mine.query.join_left_column = "symbol";
    mine.query.join_right_column = "symbol";
    mine.sla_offset = 6.0;
    mine.base_weight = 2.0;
    mine.depends_on = {0};
    page.fragments.push_back(mine);

    FragmentTemplate alerts;
    alerts.name = "alerts";
    alerts.query = mine.query;
    alerts.query.name = "q_alerts";
    alerts.query.filters = {{"change", CompareOp::kGe, Value{5.0}}};
    alerts.sla_offset = 3.0;
    alerts.base_weight = 3.0;
    alerts.depends_on = {1};
    page.fragments.push_back(alerts);
    return page;
  }

  InMemoryDatabase db_;
  Profiler profiler_;
};

TEST_F(WebdbPipelineTest, FullPipelineRunsUnderEveryPolicy) {
  PageRequestServer server(&db_, &profiler_);
  for (int i = 0; i < 10; ++i) {
    const auto tier = static_cast<SubscriptionTier>(i % 3);
    ASSERT_TRUE(server.Submit(Page(), tier, i * 1.5).ok());
  }
  ASSERT_EQ(server.workload().size(), 30u);

  auto sim = Simulator::Create(server.workload());
  ASSERT_TRUE(sim.ok()) << sim.status();

  EdfPolicy edf;
  AsetsStarPolicy star;
  const RunResult r_edf = sim.ValueOrDie().Run(edf);
  const RunResult r_star = sim.ValueOrDie().Run(star);
  EXPECT_EQ(r_edf.outcomes.size(), 30u);
  EXPECT_EQ(r_star.outcomes.size(), 30u);

  // Dependencies hold: within a request, the join fragment finishes after
  // the prices fragment, and alerts after the join.
  for (size_t req = 0; req < 10; ++req) {
    const size_t base = req * 3;
    EXPECT_GT(r_star.outcomes[base + 1].finish,
              r_star.outcomes[base].finish);
    EXPECT_GT(r_star.outcomes[base + 2].finish,
              r_star.outcomes[base + 1].finish);
  }
}

TEST_F(WebdbPipelineTest, WorkflowsMatchRequests) {
  PageRequestServer server(&db_, &profiler_);
  ASSERT_TRUE(server.Submit(Page(), SubscriptionTier::kGold, 0.0).ok());
  ASSERT_TRUE(server.Submit(Page(), SubscriptionTier::kBronze, 2.0).ok());
  auto sim = Simulator::Create(server.workload());
  ASSERT_TRUE(sim.ok());
  // Each request is one chain: prices -> mine -> alerts, so one workflow
  // rooted at the alerts transaction.
  const auto& registry = sim.ValueOrDie().workflows();
  ASSERT_EQ(registry.num_workflows(), 2u);
  EXPECT_EQ(registry.workflow(0).members, (std::vector<TxnId>{0, 1, 2}));
  EXPECT_EQ(registry.workflow(1).members, (std::vector<TxnId>{3, 4, 5}));
}

TEST_F(WebdbPipelineTest, ProfilerLearningChangesSubsequentLengths) {
  PageRequestServer server(&db_, &profiler_);
  ASSERT_TRUE(server.Submit(Page(), SubscriptionTier::kGold, 0.0).ok());
  const double first_length = server.workload()[0].length;
  ASSERT_TRUE(server.MaterializeAll().ok());
  // Grow the table: the modeled cost of the scan rises, and after another
  // materialization the profile shifts.
  auto stocks = db_.GetTable("stocks").ValueOrDie();
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(stocks->Insert({"X" + std::to_string(i), 1.0, 0.0}).ok());
  }
  for (int pass = 0; pass < 20; ++pass) {
    ASSERT_TRUE(server.MaterializeAll().ok());
  }
  ASSERT_TRUE(server.Submit(Page(), SubscriptionTier::kGold, 10.0).ok());
  const double later_length = server.workload()[3].length;
  EXPECT_GT(later_length, first_length);
}

TEST_F(WebdbPipelineTest, MaterializedContentMatchesQuerySemantics) {
  PageRequestServer server(&db_, &profiler_);
  ASSERT_TRUE(server.Submit(Page(), SubscriptionTier::kGold, 0.0).ok());
  auto prices = server.Materialize(0);
  ASSERT_TRUE(prices.ok());
  EXPECT_EQ(prices.ValueOrDie().rows.size(), 200u);
  auto mine = server.Materialize(1);
  ASSERT_TRUE(mine.ok());
  EXPECT_EQ(mine.ValueOrDie().rows.size(), 15u);
  auto alerts = server.Materialize(2);
  ASSERT_TRUE(alerts.ok());
  EXPECT_LE(alerts.ValueOrDie().rows.size(), 15u);
}

}  // namespace
}  // namespace webtx::webdb
