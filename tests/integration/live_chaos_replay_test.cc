// Re-runs the committed LIVE chaos reproducer byte-identically — on
// real worker threads under the deterministic virtual clock. The replay
// file was minted by `tools/chaos --mint-live`: a randomized crash case
// shrunk to a local minimum against the predicate "still fails work
// over off a dead slot, deterministically, and validates". The pinned
// digest is the live executor's determinism contract: if it drifts, the
// attempt lifecycle, fault delivery, or failover semantics changed
// observably and the golden value must be revisited deliberately.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "exp/live_chaos.h"
#include "rt/live_trace.h"

namespace webtx {
namespace {

// Observable behavior of the committed replay, pinned at mint time.
constexpr uint64_t kGoldenDigest = 0x3f122a4cad36620bULL;
constexpr size_t kGoldenMigrations = 1;
constexpr size_t kGoldenCompleted = 66;

std::string ReplayPath() {
  return std::string(WEBTX_REPLAY_DIR) + "/live_cold_migration_minimal.chaos";
}

std::string ReadReplayFile() {
  std::ifstream file(ReplayPath());
  EXPECT_TRUE(file.is_open()) << "missing replay file: " << ReplayPath();
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

TEST(LiveChaosReplayIntegrationTest, CommittedReproducerParses) {
  auto parsed = ParseLiveChaosReplay(ReadReplayFile());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const LiveChaosCase& c = parsed.ValueOrDie();
  // The minted case is a cold-failover crash scenario by construction.
  EXPECT_GT(c.fault.crash_rate, 0.0);
  EXPECT_EQ(c.fault.migration, MigrationPolicy::kCold);
}

TEST(LiveChaosReplayIntegrationTest, ReplaysByteIdentically) {
  auto parsed = ParseLiveChaosReplay(ReadReplayFile());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const LiveChaosCase c = std::move(parsed).ValueOrDie();

  auto first = RunLiveChaosCase(c);
  ASSERT_TRUE(first.ok()) << first.status();
  const LiveChaosRun& run = first.ValueOrDie();

  // The run still exhibits the behavior it was shrunk for, passes the
  // live validator audit, and reproduces the pinned digest bit for bit.
  EXPECT_EQ(run.stats.migrations, kGoldenMigrations);
  EXPECT_EQ(run.stats.completed, kGoldenCompleted);
  const Status verdict = CheckLiveChaosInvariants(c, run);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_EQ(run.digest, kGoldenDigest);
  EXPECT_EQ(rt::LiveTraceDigest(run.trace), kGoldenDigest);

  // A second run on fresh threads is indistinguishable — thread
  // interleaving must not leak into the recorded timeline.
  auto second = RunLiveChaosCase(c);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second.ValueOrDie().digest, kGoldenDigest);
}

TEST(LiveChaosReplayIntegrationTest, ReserializingTheFileIsLossless) {
  const std::string text = ReadReplayFile();
  auto parsed = ParseLiveChaosReplay(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(SerializeLiveChaosCase(parsed.ValueOrDie()), text);
}

}  // namespace
}  // namespace webtx
