// Re-runs the committed TWIN chaos reproducer byte-identically: a
// flash-crowd case with a corrupted shadow model, shrunk by
// `tools/chaos --mint-twin` against the predicate "the divergence guard
// fires and falls back, deterministically, and the timeline validates".
// The pinned digest is the digital twin's determinism contract — the
// live front end, the quiescent snapshots, the shadow forecasts, and
// the controller's switch/fallback sequence all feed it. If it drifts,
// the serving loop's observable behavior changed and the golden value
// must be revisited deliberately.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "exp/twin_chaos.h"

namespace webtx {
namespace {

// Observable behavior of the committed replay, pinned at mint time.
constexpr uint64_t kGoldenDigest = 0x1643c442aef88691ULL;
constexpr size_t kGoldenDecisions = 12;
constexpr size_t kGoldenSwitches = 2;
constexpr size_t kGoldenFallbacks = 1;
constexpr size_t kGoldenCompleted = 59;

std::string ReplayPath() {
  return std::string(WEBTX_REPLAY_DIR) + "/twin_flash_guard_minimal.chaos";
}

std::string ReadReplayFile() {
  std::ifstream file(ReplayPath());
  EXPECT_TRUE(file.is_open()) << "missing replay file: " << ReplayPath();
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

TEST(TwinReplayIntegrationTest, CommittedReproducerParses) {
  auto parsed = ParseTwinChaosReplay(ReadReplayFile());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const TwinChaosCase& c = parsed.ValueOrDie();
  // The minted case is a guard-trip scenario by construction: the
  // controller is live and the shadow model is corrupted.
  EXPECT_TRUE(c.controller_enabled);
  EXPECT_GT(c.snapshot_corruption, 1.0);
  EXPECT_GE(c.candidates.size(), 2u);
}

TEST(TwinReplayIntegrationTest, ReplaysByteIdentically) {
  auto parsed = ParseTwinChaosReplay(ReadReplayFile());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const TwinChaosCase c = std::move(parsed).ValueOrDie();

  auto first = RunTwinChaosCase(c);
  ASSERT_TRUE(first.ok()) << first.status();
  const rt::TwinReport& report = first.ValueOrDie();

  // The run still exhibits the behavior it was shrunk for — the guard
  // fell back to the static config amid real switches — passes the
  // invariant audit, and reproduces the pinned digest bit for bit.
  EXPECT_EQ(report.decisions.size(), kGoldenDecisions);
  EXPECT_EQ(report.switches, kGoldenSwitches);
  EXPECT_EQ(report.fallbacks, kGoldenFallbacks);
  EXPECT_EQ(report.stats.completed, kGoldenCompleted);
  const Status verdict = CheckTwinChaosInvariants(c, report);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_EQ(report.digest, kGoldenDigest);

  // A second run on fresh threads is indistinguishable — thread
  // interleaving must not leak into the serving timeline or the
  // controller's decision sequence.
  auto second = RunTwinChaosCase(c);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second.ValueOrDie().digest, kGoldenDigest);
}

TEST(TwinReplayIntegrationTest, ReserializingTheFileIsLossless) {
  const std::string text = ReadReplayFile();
  auto parsed = ParseTwinChaosReplay(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(SerializeTwinChaosCase(parsed.ValueOrDie()), text);
}

// ---------------------------------------------------------------------
// The committed parallel-forecast replay: a flash-crowd case whose
// controller fans candidate forecasts out over 8 threads with pooled
// shadow sims on the calendar-queue + arena-SoA structures. Its digest
// is pinned AND must be reproduced at every forecast_threads setting —
// the fan-out may only change decision-loop cost, never the decisions.

constexpr uint64_t kParallelGoldenDigest = 0x2a7eb7e5e14c0135ULL;
constexpr size_t kParallelGoldenDecisions = 13;
constexpr size_t kParallelGoldenSwitches = 1;
constexpr size_t kParallelGoldenCompleted = 73;

std::string ParallelReplayPath() {
  return std::string(WEBTX_REPLAY_DIR) +
         "/twin_parallel_forecast_minimal.chaos";
}

TEST(TwinReplayIntegrationTest, ParallelForecastReplayPinsItsDigest) {
  std::ifstream file(ParallelReplayPath());
  ASSERT_TRUE(file.is_open()) << "missing replay file: "
                              << ParallelReplayPath();
  std::ostringstream text;
  text << file.rdbuf();
  auto parsed = ParseTwinChaosReplay(text.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const TwinChaosCase base = std::move(parsed).ValueOrDie();
  EXPECT_EQ(base.forecast_threads, 8u);
  EXPECT_TRUE(base.pooled_forecasts);
  EXPECT_EQ(base.pending_queue, PendingQueueImpl::kCalendarQueue);
  EXPECT_EQ(base.txn_store, TxnStoreLayout::kArenaSoA);
  // Lossless round trip, same contract as the guard replay.
  EXPECT_EQ(SerializeTwinChaosCase(base), text.str());

  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    TwinChaosCase c = base;
    c.forecast_threads = threads;
    auto run = RunTwinChaosCase(c);
    ASSERT_TRUE(run.ok()) << run.status();
    const rt::TwinReport& report = run.ValueOrDie();
    EXPECT_EQ(report.digest, kParallelGoldenDigest) << "threads=" << threads;
    EXPECT_EQ(report.decisions.size(), kParallelGoldenDecisions);
    EXPECT_EQ(report.switches, kParallelGoldenSwitches);
    EXPECT_EQ(report.stats.completed, kParallelGoldenCompleted);
    const Status verdict = CheckTwinChaosInvariants(c, report);
    EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  }
}

}  // namespace
}  // namespace webtx
