// Re-runs the committed chaos reproducer byte-identically. The replay
// file was minted by the chaos tool (`tools/chaos --mint`): a randomized
// cold-failover case shrunk to a local minimum against the predicate
// "still migrates work off a crashed server". The pinned digest is the
// cross-platform determinism contract — if it drifts, crash/migration
// semantics changed observably and the golden value (plus the fault
// model documentation) must be revisited deliberately.

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "exp/chaos.h"

namespace webtx {
namespace {

// Observable behavior of the committed replay, pinned at mint time.
constexpr uint64_t kGoldenDigest = 0x05c6252ae9c8b68fULL;
constexpr size_t kGoldenMigrations = 4;

// The huge-structures replay: same determinism contract, but running
// the calendar-queue pending tier, the arena-SoA store, and the
// lazy-delete-heap ASETS* ("ASETS*-lazy") — every structure the
// huge-scale knobs can flip, pinned in one file.
constexpr uint64_t kHugeGoldenDigest = 0x4cc0232e8f78aba3ULL;
constexpr size_t kHugeGoldenMigrations = 1202;

std::string ReplayPath() {
  return std::string(WEBTX_REPLAY_DIR) + "/cold_migration_minimal.chaos";
}

std::string HugeReplayPath() {
  return std::string(WEBTX_REPLAY_DIR) +
         "/huge_structures_cold_migration.chaos";
}

std::string ReadFileAt(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.is_open()) << "missing replay file: " << path;
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

std::string ReadReplayFile() { return ReadFileAt(ReplayPath()); }

TEST(ChaosReplayIntegrationTest, CommittedReproducerParses) {
  auto parsed = ParseChaosReplay(ReadReplayFile());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const ChaosCase& c = parsed.ValueOrDie();
  // The minted case is a cold-failover crash scenario by construction.
  EXPECT_GT(c.fault.crash_rate, 0.0);
  EXPECT_EQ(c.fault.migration, MigrationPolicy::kCold);
}

TEST(ChaosReplayIntegrationTest, ReplaysByteIdentically) {
  auto parsed = ParseChaosReplay(ReadReplayFile());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const ChaosCase c = std::move(parsed).ValueOrDie();

  auto first = RunChaosCase(c);
  ASSERT_TRUE(first.ok()) << first.status();
  const RunResult& r = first.ValueOrDie();

  // The run still exhibits the behavior it was shrunk for, passes the
  // full invariant audit, and reproduces the pinned digest bit for bit.
  EXPECT_EQ(r.num_migrations, kGoldenMigrations);
  const Status verdict = CheckChaosInvariants(c, r);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_EQ(ScheduleDigest(r), kGoldenDigest);

  // And a second run of the same parsed case is indistinguishable.
  auto second = RunChaosCase(c);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(ScheduleDigest(second.ValueOrDie()), kGoldenDigest);
}

TEST(ChaosReplayIntegrationTest, ReserializingTheFileIsLossless) {
  const std::string text = ReadReplayFile();
  auto parsed = ParseChaosReplay(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(SerializeChaosCase(parsed.ValueOrDie()), text);
}

TEST(ChaosReplayIntegrationTest, HugeStructuresReproducerParses) {
  auto parsed = ParseChaosReplay(ReadFileAt(HugeReplayPath()));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const ChaosCase& c = parsed.ValueOrDie();
  EXPECT_EQ(c.pending_queue, PendingQueueImpl::kCalendarQueue);
  EXPECT_EQ(c.txn_store, TxnStoreLayout::kArenaSoA);
  EXPECT_EQ(c.policy, "ASETS*-lazy");
  EXPECT_EQ(c.fault.migration, MigrationPolicy::kCold);
}

TEST(ChaosReplayIntegrationTest, HugeStructuresReplayByteIdentical) {
  auto parsed = ParseChaosReplay(ReadFileAt(HugeReplayPath()));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const ChaosCase c = std::move(parsed).ValueOrDie();

  auto run = RunChaosCase(c);
  ASSERT_TRUE(run.ok()) << run.status();
  const RunResult& r = run.ValueOrDie();
  EXPECT_EQ(r.num_migrations, kHugeGoldenMigrations);
  const Status verdict = CheckChaosInvariants(c, r);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
  EXPECT_EQ(ScheduleDigest(r), kHugeGoldenDigest);

  // The structure knobs must be invisible: the historical binary-heap /
  // spec-vector run (with the indexed-heap ASETS*) digests identically.
  ChaosCase reference = c;
  reference.pending_queue = PendingQueueImpl::kBinaryHeap;
  reference.txn_store = TxnStoreLayout::kSpecVector;
  reference.policy = "ASETS*";
  auto ref_run = RunChaosCase(reference);
  ASSERT_TRUE(ref_run.ok()) << ref_run.status();
  EXPECT_EQ(ScheduleDigest(ref_run.ValueOrDie()), kHugeGoldenDigest);
}

TEST(ChaosReplayIntegrationTest, HugeStructuresFileIsLossless) {
  const std::string text = ReadFileAt(HugeReplayPath());
  auto parsed = ParseChaosReplay(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(SerializeChaosCase(parsed.ValueOrDie()), text);
}

}  // namespace
}  // namespace webtx
