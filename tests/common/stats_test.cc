#include "common/stats.h"

#include <gtest/gtest.h>

namespace webtx {
namespace {

TEST(StreamingStatsTest, EmptyDefaults) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStatsTest, SingleValue) {
  StreamingStats s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 3.5);
}

TEST(StreamingStatsTest, KnownMoments) {
  StreamingStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_NEAR(s.mean(), 5.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev() * s.stddev(), 32.0 / 7.0, 1e-12);
}

TEST(StreamingStatsTest, MergeMatchesSequential) {
  StreamingStats a;
  StreamingStats b;
  StreamingStats all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    a.Add(x);
    all.Add(x);
  }
  for (int i = 50; i < 120; ++i) {
    const double x = 1.3 * i + 0.5;
    b.Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(StreamingStatsTest, MergeWithEmptySides) {
  StreamingStats a;
  a.Add(1.0);
  a.Add(2.0);
  StreamingStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_NEAR(a.mean(), 1.5, 1e-12);

  StreamingStats target;
  target.Merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_NEAR(target.mean(), 1.5, 1e-12);
}

TEST(QuantileSketchTest, EmptyReturnsZero) {
  QuantileSketch q;
  EXPECT_EQ(q.Quantile(0.5), 0.0);
}

TEST(QuantileSketchTest, ExactRanksOnSortedInput) {
  QuantileSketch q;
  for (int i = 0; i <= 100; ++i) q.Add(static_cast<double>(i));
  EXPECT_EQ(q.Quantile(0.0), 0.0);
  EXPECT_EQ(q.Quantile(1.0), 100.0);
  EXPECT_NEAR(q.Quantile(0.5), 50.0, 1e-9);
  EXPECT_NEAR(q.Quantile(0.25), 25.0, 1e-9);
  EXPECT_NEAR(q.Quantile(0.99), 99.0, 1e-9);
}

TEST(QuantileSketchTest, UnsortedInsertOrder) {
  QuantileSketch q;
  for (const double x : {9.0, 1.0, 5.0, 3.0, 7.0}) q.Add(x);
  EXPECT_EQ(q.Quantile(0.0), 1.0);
  EXPECT_EQ(q.Quantile(1.0), 9.0);
  EXPECT_NEAR(q.Quantile(0.5), 5.0, 1e-12);
}

TEST(QuantileSketchTest, AddAfterQueryResorts) {
  QuantileSketch q;
  q.Add(10.0);
  q.Add(20.0);
  EXPECT_EQ(q.Quantile(1.0), 20.0);
  q.Add(5.0);
  EXPECT_EQ(q.Quantile(0.0), 5.0);
  EXPECT_EQ(q.count(), 3u);
}

TEST(QuantileSketchDeathTest, RejectsOutOfRangeQuantile) {
  QuantileSketch q;
  q.Add(1.0);
  EXPECT_DEATH({ (void)q.Quantile(1.5); }, "quantile out of range");
}

}  // namespace
}  // namespace webtx
