#include "common/distributions.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace webtx {
namespace {

TEST(ZipfTest, PmfSumsToOne) {
  const ZipfDistribution zipf(50, 0.5);
  double total = 0.0;
  for (uint64_t k = 1; k <= 50; ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(zipf.Pmf(0), 0.0);
  EXPECT_EQ(zipf.Pmf(51), 0.0);
}

TEST(ZipfTest, AlphaZeroIsUniform) {
  const ZipfDistribution zipf(10, 0.0);
  for (uint64_t k = 1; k <= 10; ++k) EXPECT_NEAR(zipf.Pmf(k), 0.1, 1e-12);
  EXPECT_NEAR(zipf.Mean(), 5.5, 1e-12);
}

TEST(ZipfTest, SkewFavorsSmallValues) {
  const ZipfDistribution zipf(50, 0.5);
  for (uint64_t k = 1; k < 50; ++k) {
    EXPECT_GT(zipf.Pmf(k), zipf.Pmf(k + 1));
  }
}

TEST(ZipfTest, HigherAlphaLowersMean) {
  double prev = ZipfDistribution(50, 0.0).Mean();
  for (const double alpha : {0.25, 0.5, 1.0, 1.5, 2.0}) {
    const double mean = ZipfDistribution(50, alpha).Mean();
    EXPECT_LT(mean, prev);
    prev = mean;
  }
}

TEST(ZipfTest, SamplesStayInSupport) {
  const ZipfDistribution zipf(50, 0.5);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t s = zipf.Sample(rng);
    ASSERT_GE(s, 1u);
    ASSERT_LE(s, 50u);
  }
}

TEST(ZipfTest, EmpiricalMeanMatchesExactMean) {
  const ZipfDistribution zipf(50, 0.5);
  Rng rng(4);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(zipf.Sample(rng));
  EXPECT_NEAR(sum / n, zipf.Mean(), 0.15);
}

TEST(ZipfTest, SingletonSupport) {
  const ZipfDistribution zipf(1, 0.5);
  Rng rng(5);
  EXPECT_EQ(zipf.Sample(rng), 1u);
  EXPECT_NEAR(zipf.Mean(), 1.0, 1e-12);
}

// Parameterized sweep: sampling frequencies track the pmf across alphas.
class ZipfFrequencyTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfFrequencyTest, EmpiricalFrequenciesMatchPmf) {
  const double alpha = GetParam();
  const uint64_t n = 20;
  const ZipfDistribution zipf(n, alpha);
  Rng rng(42);
  std::vector<int> counts(n + 1, 0);
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) ++counts[zipf.Sample(rng)];
  for (uint64_t k = 1; k <= n; ++k) {
    const double expected = zipf.Pmf(k);
    const double observed = static_cast<double>(counts[k]) / samples;
    EXPECT_NEAR(observed, expected, 0.01)
        << "alpha=" << alpha << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfFrequencyTest,
                         ::testing::Values(0.0, 0.3, 0.5, 0.8, 1.0, 1.5));

TEST(ExponentialTest, MeanIsInverseRate) {
  const ExponentialDistribution exp_dist(0.25);
  EXPECT_NEAR(exp_dist.Mean(), 4.0, 1e-12);
  Rng rng(6);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += exp_dist.Sample(rng);
  EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(ExponentialTest, SamplesNonNegative) {
  const ExponentialDistribution exp_dist(2.0);
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(exp_dist.Sample(rng), 0.0);
}

TEST(UniformRealTest, SamplesWithinBounds) {
  const UniformRealDistribution uniform(-2.5, 7.5);
  Rng rng(9);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double s = uniform.Sample(rng);
    ASSERT_GE(s, -2.5);
    ASSERT_LT(s, 7.5);
    sum += s;
  }
  EXPECT_NEAR(sum / n, uniform.Mean(), 0.05);
  EXPECT_NEAR(uniform.Mean(), 2.5, 1e-12);
}

TEST(UniformRealTest, DegenerateInterval) {
  const UniformRealDistribution uniform(3.0, 3.0);
  Rng rng(10);
  EXPECT_EQ(uniform.Sample(rng), 3.0);
}

TEST(UniformIntTest, InclusiveBoundsAndMean) {
  const UniformIntDistribution uniform(1, 10);
  EXPECT_NEAR(uniform.Mean(), 5.5, 1e-12);
  Rng rng(11);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t s = uniform.Sample(rng);
    ASSERT_GE(s, 1u);
    ASSERT_LE(s, 10u);
    ++counts[s];
  }
  for (int k = 1; k <= 10; ++k) EXPECT_GT(counts[k], 8000);
}

}  // namespace
}  // namespace webtx
