#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace webtx {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    std::string_view name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("b"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::OutOfRange("d"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::Internal("f"), StatusCode::kInternal, "Internal"},
      {Status::Unimplemented("g"), StatusCode::kUnimplemented,
       "Unimplemented"},
      {Status::IOError("h"), StatusCode::kIOError, "IOError"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(StatusCodeToString(c.code), c.name);
    EXPECT_NE(c.status.ToString().find(c.name), std::string::npos);
  }
}

TEST(StatusTest, ToStringIncludesMessage) {
  const Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "Internal: boom");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status FailsThrough() {
  WEBTX_RETURN_NOT_OK(Status::IOError("inner"));
  return Status::OK();
}

Status Passes() {
  WEBTX_RETURN_NOT_OK(Status::OK());
  return Status::Internal("reached end");
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_EQ(FailsThrough(), Status::IOError("inner"));
  EXPECT_EQ(Passes(), Status::Internal("reached end"));
}

}  // namespace
}  // namespace webtx
