#include "common/result.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace webtx {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOrFallback) {
  Result<std::string> ok_result = std::string("value");
  EXPECT_EQ(ok_result.ValueOr("fallback"), "value");
  Result<std::string> err_result = Status::Internal("x");
  EXPECT_EQ(err_result.ValueOr("fallback"), "fallback");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, MutableAccess) {
  Result<std::string> r = std::string("abc");
  r.ValueOrDie() += "def";
  EXPECT_EQ(r.ValueOrDie(), "abcdef");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status Consume(int x, int* out) {
  WEBTX_ASSIGN_OR_RETURN(const int half, Half(x));
  *out = half;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnOnSuccess) {
  int out = 0;
  EXPECT_TRUE(Consume(10, &out).ok());
  EXPECT_EQ(out, 5);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  int out = -1;
  const Status s = Consume(3, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(out, -1);  // untouched
}

TEST(ResultDeathTest, ValueOrDieOnErrorAborts) {
  Result<int> r = Status::Internal("fatal");
  EXPECT_DEATH({ (void)r.ValueOrDie(); }, "ValueOrDie");
}

}  // namespace
}  // namespace webtx
