#include "common/rng.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace webtx {
namespace {

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, ReseedRestartsStream) {
  Rng a(5);
  std::vector<uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.Next());
  a.Seed(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), first[i]);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.NextDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, NextInRangeHitsBothEndpoints) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextInRange(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3u);
  EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST(RngTest, NextInRangeSingleton) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextInRange(42, 42), 42u);
}

TEST(RngTest, NextInRangeIsRoughlyUniform) {
  Rng rng(17);
  const int buckets = 10;
  std::vector<int> counts(buckets);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.NextInRange(0, buckets - 1)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / buckets, n / buckets * 0.1);
  }
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~uint64_t{0});
  Rng rng(1);
  EXPECT_NE(rng(), rng());
}

}  // namespace
}  // namespace webtx
