// Property / fuzz tests for the calendar queue: its pop sequence must be
// BYTE-IDENTICAL to a binary heap over the same Before order whenever
// pushes obey the DES monotonicity contract (push time >= last pop
// time). The randomized differentials below hammer exactly the corners
// where calendar structures classically diverge from heaps: exact-double
// time ties (quantized time grids), overflow-bucket cascades (far-future
// spills swept into fresh rungs mid-drain), empty/refill ping-pong, and
// "gap" times that land at promoted bucket edges.

#include "common/calendar_queue.h"

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace webtx {
namespace {

/// Test event mirroring the simulator's pending event shape: time with a
/// two-level tie-break, so equal-time pops have one deterministic order.
struct Ev {
  double time = 0.0;
  uint8_t kind = 0;
  uint32_t id = 0;

  bool operator==(const Ev& o) const {
    return time == o.time && kind == o.kind && id == o.id;
  }
};

struct EvTraits {
  static double TimeOf(const Ev& e) { return e.time; }
  static bool Before(const Ev& a, const Ev& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.id < b.id;
  }
};

/// Max-heap comparator making std::priority_queue pop Before-least first —
/// the reference structure (same shape as the simulator's PendingQueue).
struct EvAfter {
  bool operator()(const Ev& a, const Ev& b) const {
    return EvTraits::Before(b, a);
  }
};

using RefQueue = std::priority_queue<Ev, std::vector<Ev>, EvAfter>;
using Wheel = CalendarQueue<Ev, EvTraits>;

/// Pops everything from both structures, asserting identical sequences.
void DrainAndCompare(Wheel& wheel, RefQueue& ref) {
  while (!ref.empty()) {
    ASSERT_FALSE(wheel.empty());
    ASSERT_EQ(wheel.size(), ref.size());
    const Ev expect = ref.top();
    const Ev got = wheel.top();
    ASSERT_EQ(got.time, expect.time);
    ASSERT_EQ(got.kind, expect.kind);
    ASSERT_EQ(got.id, expect.id);
    ref.pop();
    wheel.pop();
  }
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(CalendarQueueTest, EmptyAfterConstruction) {
  Wheel wheel;
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(CalendarQueueTest, SingleEventRoundTrip) {
  Wheel wheel;
  wheel.push(Ev{3.5, 1, 42});
  EXPECT_FALSE(wheel.empty());
  EXPECT_EQ(wheel.size(), 1u);
  EXPECT_EQ(wheel.top(), (Ev{3.5, 1, 42}));
  wheel.pop();
  EXPECT_TRUE(wheel.empty());
}

TEST(CalendarQueueTest, SortsOutOfOrderPushes) {
  Wheel wheel;
  RefQueue ref;
  const std::vector<Ev> events = {
      {5.0, 0, 1}, {1.0, 0, 2}, {3.0, 0, 3}, {2.0, 0, 4}, {4.0, 0, 5},
  };
  for (const Ev& e : events) {
    wheel.push(e);
    ref.push(e);
  }
  DrainAndCompare(wheel, ref);
}

TEST(CalendarQueueTest, ExactTimeTiesPopInKindThenIdOrder) {
  // Every event at the same double: order must be (kind, id) exactly,
  // regardless of push order. This is the degenerate "all in one bucket"
  // case — one sort, zero width span.
  Wheel wheel;
  RefQueue ref;
  const double t = 0.1 + 0.2;  // a non-representable double, deliberately
  Rng rng(7);
  std::vector<Ev> events;
  for (uint32_t id = 0; id < 64; ++id) {
    events.push_back(Ev{t, static_cast<uint8_t>(id % 2), id});
  }
  // Shuffle.
  for (size_t i = events.size(); i-- > 1;) {
    std::swap(events[i], events[rng.NextInRange(0, i)]);
  }
  for (const Ev& e : events) {
    wheel.push(e);
    ref.push(e);
  }
  DrainAndCompare(wheel, ref);
}

TEST(CalendarQueueTest, TiesStraddlingAPopBoundary) {
  // The adversarial coincidence: pop up to time T, then push ANOTHER
  // event at exactly T (allowed — push time == last pop time). The new
  // twin must surface immediately if its (kind, id) is next, not get
  // routed behind a tier boundary.
  Wheel wheel;
  RefQueue ref;
  const double t = 1.0 / 3.0;
  for (uint32_t id = 0; id < 8; ++id) {
    wheel.push(Ev{t, 0, 2 * id});  // even ids present from the start
    ref.push(Ev{t, 0, 2 * id});
  }
  // Pop two, then inject odd-id twins at the same double.
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(wheel.top(), ref.top());
    wheel.pop();
    ref.pop();
  }
  for (uint32_t id = 0; id < 8; ++id) {
    wheel.push(Ev{t, 0, 2 * id + 5});
    ref.push(Ev{t, 0, 2 * id + 5});
  }
  DrainAndCompare(wheel, ref);
}

TEST(CalendarQueueTest, CascadeSweepsFarFutureSpill) {
  // Force the overflow-bucket cascade: a big burst of far-future events
  // pushed while the current tier drains, then verify the swept rung
  // pops in exact order. Large enough to build a multi-bucket rung
  // (4096 / kTargetPerBucket(8) = 512 buckets).
  Wheel wheel;
  RefQueue ref;
  Rng rng(2009);
  wheel.push(Ev{0.0, 0, 0});
  ref.push(Ev{0.0, 0, 0});
  for (uint32_t id = 1; id <= 4096; ++id) {
    const double t = 100.0 + 900.0 * rng.NextDouble();
    wheel.push(Ev{t, 0, id});
    ref.push(Ev{t, 0, id});
  }
  DrainAndCompare(wheel, ref);
}

TEST(CalendarQueueTest, RepeatedCascadesWithQuantizedTies) {
  // Multiple cascade generations with a coarse time grid so every rung
  // is riddled with exact-double ties, including ties at bucket edges.
  Wheel wheel;
  RefQueue ref;
  Rng rng(13);
  double now = 0.0;
  uint32_t id = 0;
  for (int generation = 0; generation < 6; ++generation) {
    // Burst of events quantized to 1/8 steps over a window ahead of now.
    for (int i = 0; i < 1500; ++i) {
      const double t =
          now + static_cast<double>(rng.NextInRange(0, 400)) * 0.125;
      const Ev e{t, static_cast<uint8_t>(rng.NextInRange(0, 1)), id++};
      wheel.push(e);
      ref.push(e);
    }
    // Drain roughly half before the next burst.
    const size_t drain = ref.size() / 2;
    for (size_t i = 0; i < drain; ++i) {
      ASSERT_FALSE(wheel.empty());
      const Ev expect = ref.top();
      const Ev got = wheel.top();
      ASSERT_EQ(got.time, expect.time);
      ASSERT_EQ(got.kind, expect.kind);
      ASSERT_EQ(got.id, expect.id) << "generation " << generation;
      ref.pop();
      wheel.pop();
      now = expect.time;
    }
  }
  DrainAndCompare(wheel, ref);
}

TEST(CalendarQueueTest, EmptyRefillPingPong) {
  // The pending queue's real-life pattern: mostly empty, occasionally
  // holding a handful of retries. Exercises the empty-restart fast path
  // hundreds of times.
  Wheel wheel;
  RefQueue ref;
  Rng rng(99);
  double now = 0.0;
  uint32_t id = 0;
  for (int round = 0; round < 500; ++round) {
    const size_t burst = rng.NextInRange(1, 4);
    for (size_t i = 0; i < burst; ++i) {
      const double t = now + rng.NextDouble() * 10.0;
      const Ev e{t, 0, id++};
      wheel.push(e);
      ref.push(e);
    }
    while (!ref.empty()) {
      ASSERT_EQ(wheel.top(), ref.top());
      now = ref.top().time;
      ref.pop();
      wheel.pop();
    }
    ASSERT_TRUE(wheel.empty());
  }
}

TEST(CalendarQueueTest, ClearResetsToEmpty) {
  Wheel wheel;
  for (uint32_t id = 0; id < 100; ++id) {
    wheel.push(Ev{static_cast<double>(id) * 0.5, 0, id});
  }
  wheel.clear();
  EXPECT_TRUE(wheel.empty());
  EXPECT_EQ(wheel.size(), 0u);
  // And it is fully usable afterwards.
  wheel.push(Ev{1.0, 0, 7});
  EXPECT_EQ(wheel.top(), (Ev{1.0, 0, 7}));
}

TEST(CalendarQueueTest, ReserveDoesNotDisturbContents) {
  Wheel wheel;
  RefQueue ref;
  for (uint32_t id = 0; id < 32; ++id) {
    const Ev e{static_cast<double>(32 - id), 0, id};
    wheel.push(e);
    ref.push(e);
  }
  wheel.Reserve(1 << 16);
  DrainAndCompare(wheel, ref);
}

/// The main randomized differential: interleaved pushes and pops under
/// the DES monotone contract, with a mix of time distributions — smooth,
/// quantized (tie-heavy), bursty far-future — across many seeds.
void RandomizedDifferential(uint64_t seed, bool quantized) {
  Rng rng(seed);
  Wheel wheel;
  RefQueue ref;
  double now = 0.0;
  uint32_t id = 0;
  const int kOps = 20000;
  for (int op = 0; op < kOps; ++op) {
    const uint64_t dice = rng.NextInRange(0, 99);
    if (dice < 55 || ref.empty()) {
      // Push: at or after `now`, occasionally exactly AT now (the
      // same-instant reschedule corner), occasionally far future.
      double t;
      const uint64_t mode = rng.NextInRange(0, 9);
      if (mode == 0) {
        t = now;  // exact coincidence with the last pop
      } else if (mode < 8) {
        t = quantized
                ? now + static_cast<double>(rng.NextInRange(0, 64)) * 0.25
                : now + rng.NextDouble() * 16.0;
      } else {
        t = quantized
                ? now + static_cast<double>(rng.NextInRange(256, 4096)) * 0.25
                : now + 64.0 + rng.NextDouble() * 1000.0;
      }
      const Ev e{t, static_cast<uint8_t>(rng.NextInRange(0, 1)), id++};
      wheel.push(e);
      ref.push(e);
    } else {
      const Ev expect = ref.top();
      const Ev got = wheel.top();
      ASSERT_EQ(got.time, expect.time) << "seed " << seed << " op " << op;
      ASSERT_EQ(got.kind, expect.kind) << "seed " << seed << " op " << op;
      ASSERT_EQ(got.id, expect.id) << "seed " << seed << " op " << op;
      ref.pop();
      wheel.pop();
      now = expect.time;
    }
    ASSERT_EQ(wheel.size(), ref.size());
  }
  DrainAndCompare(wheel, ref);
}

TEST(CalendarQueueFuzzTest, MatchesHeapSmoothTimes) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    RandomizedDifferential(seed, /*quantized=*/false);
  }
}

TEST(CalendarQueueFuzzTest, MatchesHeapQuantizedTieHeavyTimes) {
  // Quantized grid: ~1/65 of pushes collide exactly with another event's
  // double AND bucket edges coincide with event times — the adversarial
  // regime for bucket routing.
  for (uint64_t seed = 100; seed <= 107; ++seed) {
    RandomizedDifferential(seed, /*quantized=*/true);
  }
}

TEST(CalendarQueueFuzzTest, GapTimesAtPromotedBucketEdges) {
  // Targets RungIndexOf's clamp-to-rung_at_ path: build a rung whose
  // bucket edges are non-representable thirds, drain into mid-rung, then
  // push events exactly AT the last popped double (legal; lands at or
  // under the promotion cursor's edge) and verify order still matches.
  Rng rng(31337);
  Wheel wheel;
  RefQueue ref;
  uint32_t id = 0;
  wheel.push(Ev{0.0, 0, id});
  ref.push(Ev{0.0, 0, id});
  ++id;
  // 2048 events over an awkward irrational-ish span forces a rung whose
  // computed width has rounding slop at every edge.
  for (int i = 0; i < 2048; ++i) {
    const double t = 1.0 + (static_cast<double>(rng.NextInRange(0, 3000)) / 3.0);
    wheel.push(Ev{t, 0, id});
    ref.push(Ev{t, 0, id});
    ++id;
  }
  double now = 0.0;
  // Drain with periodic same-instant injections.
  while (!ref.empty()) {
    const Ev expect = ref.top();
    const Ev got = wheel.top();
    ASSERT_EQ(got.time, expect.time);
    ASSERT_EQ(got.id, expect.id);
    ref.pop();
    wheel.pop();
    now = expect.time;
    if (rng.NextInRange(0, 4) == 0 && !ref.empty()) {
      // Push exactly at the just-popped instant — the gap-time corner.
      const Ev e{now, 1, id++};
      wheel.push(e);
      ref.push(e);
    }
  }
  EXPECT_TRUE(wheel.empty());
}

// Bulk fill then hold-N churn: 50k pushes with NO intervening pop (the
// pattern that poisons current_max_ early and used to grow current_
// quadratically before the demote bound), then a pop+push churn whose
// every head must still match the heap. Tie-heavy: times snap to a
// 0.5 grid so the demote's strict-time split sees equal-time runs at
// the cut position.
TEST(CalendarQueueFuzzTest, BulkFillThenChurnMatchesHeap) {
  for (const bool quantized : {false, true}) {
    Wheel wheel;
    RefQueue ref;
    Rng rng(quantized ? 77u : 7u);
    uint32_t id = 0;
    const auto draw = [&](double lo, double span) {
      double t = lo + rng.NextDouble() * span;
      if (quantized) t = lo + static_cast<double>(static_cast<int>(
                               (t - lo) * 2.0)) * 0.5;
      return t;
    };
    for (int i = 0; i < 50000; ++i) {
      const Ev e{draw(0.0, 64.0), static_cast<uint8_t>(i & 1), id++};
      wheel.push(e);
      ref.push(e);
    }
    for (int i = 0; i < 100000; ++i) {
      ASSERT_EQ(wheel.size(), ref.size());
      const Ev expect = ref.top();
      const Ev got = wheel.top();
      ASSERT_EQ(got.time, expect.time);
      ASSERT_EQ(got.kind, expect.kind);
      ASSERT_EQ(got.id, expect.id);
      ref.pop();
      wheel.pop();
      const Ev e{draw(expect.time, 64.0), static_cast<uint8_t>(i & 1), id++};
      wheel.push(e);
      ref.push(e);
    }
    DrainAndCompare(wheel, ref);
  }
}

}  // namespace
}  // namespace webtx
