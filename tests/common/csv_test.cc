#include "common/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace webtx {
namespace {

class TempFile {
 public:
  TempFile() {
    char buf[] = "/tmp/webtx_csv_test_XXXXXX";
    const int fd = mkstemp(buf);
    EXPECT_GE(fd, 0);
    close(fd);
    path_ = buf;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(CsvTest, SplitLineBasic) {
  const auto fields = SplitCsvLine("a,b,c");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(CsvTest, SplitLineEmptyFields) {
  const auto fields = SplitCsvLine("a,,c,");
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[3], "");
}

TEST(CsvTest, SplitSingleField) {
  const auto fields = SplitCsvLine("solo");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "solo");
}

TEST(CsvTest, WriterFormatsRows) {
  std::ostringstream os;
  CsvWriter writer(os);
  writer.WriteRow({"h1", "h2"});
  writer.WriteRow({"1", "2"});
  EXPECT_EQ(os.str(), "h1,h2\n1,2\n");
}

TEST(CsvDeathTest, WriterRejectsFieldsNeedingQuoting) {
  std::ostringstream os;
  CsvWriter writer(os);
  EXPECT_DEATH(writer.WriteRow({"a,b"}), "needs quoting");
}

TEST(CsvTest, FileRoundTrip) {
  TempFile file;
  const std::vector<std::vector<std::string>> rows = {
      {"id", "value"}, {"0", "1.5"}, {"1", "2.5"}};
  ASSERT_TRUE(WriteCsvFile(file.path(), rows).ok());
  auto read = ReadCsvFile(file.path());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.ValueOrDie(), rows);
}

TEST(CsvTest, ReadSkipsCommentsAndBlankLines) {
  TempFile file;
  {
    std::ofstream out(file.path());
    out << "# a comment\n\nx,y\n# another\n1,2\n";
  }
  auto read = ReadCsvFile(file.path());
  ASSERT_TRUE(read.ok());
  const auto& rows = read.ValueOrDie();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "x");
  EXPECT_EQ(rows[1][1], "2");
}

TEST(CsvTest, ReadHandlesCrlf) {
  TempFile file;
  {
    std::ofstream out(file.path());
    out << "a,b\r\n1,2\r\n";
  }
  auto read = ReadCsvFile(file.path());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.ValueOrDie()[0][1], "b");
}

TEST(CsvTest, ReadMissingFileFails) {
  auto read = ReadCsvFile("/nonexistent/dir/file.csv");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST(CsvTest, WriteToUnwritablePathFails) {
  const Status s = WriteCsvFile("/nonexistent/dir/file.csv", {{"a"}});
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST(CsvTest, ParseDoubleAcceptsNumbers) {
  EXPECT_EQ(ParseDouble("3.25").ValueOrDie(), 3.25);
  EXPECT_EQ(ParseDouble("-1e3").ValueOrDie(), -1000.0);
  EXPECT_EQ(ParseDouble("0").ValueOrDie(), 0.0);
}

TEST(CsvTest, ParseDoubleRejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(CsvTest, ParseIntAcceptsIntegers) {
  EXPECT_EQ(ParseInt("42").ValueOrDie(), 42);
  EXPECT_EQ(ParseInt("-7").ValueOrDie(), -7);
}

TEST(CsvTest, ParseIntRejectsGarbage) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("1.5").ok());
  EXPECT_FALSE(ParseInt("seven").ok());
  EXPECT_FALSE(ParseInt("99999999999999999999999").ok());
}

}  // namespace
}  // namespace webtx
