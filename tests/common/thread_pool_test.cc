#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace webtx {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedJob) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::DefaultConcurrency());
  EXPECT_GE(ThreadPool::DefaultConcurrency(), 1u);
}

TEST(ThreadPoolTest, FutureResolvesWhenJobFinishes) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  std::future<void> future = pool.Submit([&ran] { ran.store(true); });
  future.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFutureNotWorker) {
  ThreadPool pool(1);
  std::future<void> failing =
      pool.Submit([] { throw std::runtime_error("job failed"); });
  EXPECT_THROW(failing.get(), std::runtime_error);
  // The worker survived the throw and still runs later jobs.
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, WaitDrainsAndPoolStaysUsable) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, WaitWithNoJobsReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, JobsMaySubmitMoreJobs) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::promise<void> inner_done;
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] {
      counter.fetch_add(1);
      inner_done.set_value();
    });
  });
  inner_done.get_future().get();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, SubmitRacesFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  submitters.reserve(8);
  for (int t = 0; t < 8; ++t) {
    submitters.emplace_back([&pool, &counter] {
      for (int i = 0; i < 50; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
      }
    });
  }
  for (std::thread& s : submitters) s.join();
  pool.Wait();
  EXPECT_EQ(counter.load(), 8 * 50);
}

TEST(ThreadPoolTest, RunBatchCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.RunBatch(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
  // The pool stays usable: a second batch over a different count also
  // covers everything once.
  std::atomic<int> total{0};
  pool.RunBatch(5, [&total](size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 5);
}

TEST(ThreadPoolTest, RunBatchBalancesUnevenIndexCosts) {
  ThreadPool pool(4);
  // Index 0 is ~100x the others; atomic claiming means the other
  // helpers drain the remaining indices instead of idling behind a
  // static partition.
  std::atomic<int> done{0};
  pool.RunBatch(64, [&done](size_t i) {
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));
    done.fetch_add(1);
  });
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, RunBatchWithZeroCountIsANoOp) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.RunBatch(0, [&calls](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, RunBatchRethrowsJobExceptionOnCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.RunBatch(8,
                             [](size_t i) {
                               if (i == 3) {
                                 throw std::runtime_error("index 3 failed");
                               }
                             }),
               std::runtime_error);
  // Workers survived; the pool still runs ordinary jobs.
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsQueuedJobs) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        counter.fetch_add(1);
      });
    }
  }  // ~ThreadPool: queued jobs still run before workers join
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Shutdown();
  pool.Shutdown();
  EXPECT_EQ(counter.load(), 1);
}

}  // namespace
}  // namespace webtx
