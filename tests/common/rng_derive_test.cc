#include <cstdint>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace webtx {
namespace {

// DeriveSeed is a stability contract: CSVs regenerated on any platform
// or release must come from the same workload instances. These goldens
// lock the mapping; a failure here means every recorded experiment
// changes meaning.
TEST(DeriveSeedTest, GoldenValues) {
  EXPECT_EQ(DeriveSeed(0, 0, 0), 0x238275bc38fcbe91ULL);
  EXPECT_EQ(DeriveSeed(1, 0, 0), 0xb18a02f46d8d86c3ULL);
  EXPECT_EQ(DeriveSeed(1, 0, 1), 0x6c5795e14b3b7e33ULL);
  EXPECT_EQ(DeriveSeed(1, 1, 0), 0x5775264a9a7e1b09ULL);
  EXPECT_EQ(DeriveSeed(5, 9, 4), 0xb164569d292d1564ULL);
  EXPECT_EQ(DeriveSeed(~uint64_t{0}, ~uint64_t{0}, ~uint64_t{0}),
            0x595b17f487c0e71bULL);
}

TEST(DeriveSeedTest, DeterministicAcrossCalls) {
  for (uint64_t base = 0; base < 4; ++base) {
    EXPECT_EQ(DeriveSeed(base, 3, 7), DeriveSeed(base, 3, 7));
  }
}

TEST(DeriveSeedTest, EveryCoordinateMatters) {
  const uint64_t reference = DeriveSeed(10, 20, 30);
  EXPECT_NE(DeriveSeed(11, 20, 30), reference);
  EXPECT_NE(DeriveSeed(10, 21, 30), reference);
  EXPECT_NE(DeriveSeed(10, 20, 31), reference);
  // Coordinates are not interchangeable (no symmetric mixing).
  EXPECT_NE(DeriveSeed(20, 10, 30), reference);
  EXPECT_NE(DeriveSeed(10, 30, 20), reference);
}

// A full sweep grid (10 base seeds x 10 utilization points x 8
// replications) must map to 800 distinct instance seeds: a collision
// would silently average a replication with itself.
TEST(DeriveSeedTest, CollisionFreeAcrossSweepGrid) {
  std::unordered_set<uint64_t> seen;
  for (uint64_t base = 1; base <= 10; ++base) {
    for (uint64_t u = 0; u < 10; ++u) {
      for (uint64_t r = 0; r < 8; ++r) {
        seen.insert(DeriveSeed(base, u, r));
      }
    }
  }
  EXPECT_EQ(seen.size(), 800u);
}

// Derived seeds feed Rng::Seed directly, so they should not be
// degenerate (all zero / tiny) even for degenerate inputs.
TEST(DeriveSeedTest, OutputsAreWellMixed) {
  int high_bit_set = 0;
  for (uint64_t r = 0; r < 64; ++r) {
    if (DeriveSeed(0, 0, r) >> 63) ++high_bit_set;
  }
  // ~32 expected; a wide margin guards against a broken finalizer.
  EXPECT_GT(high_bit_set, 10);
  EXPECT_LT(high_bit_set, 54);
}

}  // namespace
}  // namespace webtx
