#include "webdb/database.h"

#include <gtest/gtest.h>

namespace webtx::webdb {
namespace {

Schema StockSchema() {
  return {{"symbol", ColumnType::kText}, {"price", ColumnType::kNumber}};
}

TEST(DatabaseTest, CreateAndLookupTable) {
  InMemoryDatabase db;
  ASSERT_TRUE(db.CreateTable("stocks", StockSchema()).ok());
  EXPECT_TRUE(db.HasTable("stocks"));
  EXPECT_FALSE(db.HasTable("bonds"));
  EXPECT_EQ(db.num_tables(), 1u);
  auto table = db.GetTable("stocks");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table.ValueOrDie()->name(), "stocks");
  EXPECT_EQ(table.ValueOrDie()->schema().size(), 2u);
}

TEST(DatabaseTest, DuplicateTableRejected) {
  InMemoryDatabase db;
  ASSERT_TRUE(db.CreateTable("t", StockSchema()).ok());
  const Status s = db.CreateTable("t", StockSchema());
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, EmptySchemaRejected) {
  InMemoryDatabase db;
  EXPECT_EQ(db.CreateTable("t", {}).code(), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, MissingTableLookupFails) {
  InMemoryDatabase db;
  EXPECT_EQ(db.GetTable("ghost").status().code(), StatusCode::kNotFound);
  const InMemoryDatabase& const_db = db;
  EXPECT_FALSE(const_db.GetTable("ghost").ok());
}

TEST(TableTest, InsertValidRow) {
  Table t("stocks", StockSchema());
  ASSERT_TRUE(t.Insert({std::string("IBM"), 142.5}).ok());
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(std::get<std::string>(t.rows()[0][0]), "IBM");
  EXPECT_EQ(std::get<double>(t.rows()[0][1]), 142.5);
}

TEST(TableTest, InsertWrongArityRejected) {
  Table t("stocks", StockSchema());
  EXPECT_EQ(t.Insert({std::string("IBM")}).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, InsertTypeMismatchRejected) {
  Table t("stocks", StockSchema());
  EXPECT_FALSE(t.Insert({142.5, std::string("IBM")}).ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, ColumnIndexLookup) {
  Table t("stocks", StockSchema());
  EXPECT_EQ(t.ColumnIndex("symbol").ValueOrDie(), 0u);
  EXPECT_EQ(t.ColumnIndex("price").ValueOrDie(), 1u);
  EXPECT_EQ(t.ColumnIndex("volume").status().code(), StatusCode::kNotFound);
}

TEST(TableTest, UpdateCell) {
  Table t("stocks", StockSchema());
  ASSERT_TRUE(t.Insert({std::string("IBM"), 142.5}).ok());
  ASSERT_TRUE(t.UpdateCell(0, "price", 150.0).ok());
  EXPECT_EQ(std::get<double>(t.rows()[0][1]), 150.0);
}

TEST(TableTest, UpdateCellErrors) {
  Table t("stocks", StockSchema());
  ASSERT_TRUE(t.Insert({std::string("IBM"), 142.5}).ok());
  EXPECT_EQ(t.UpdateCell(5, "price", 1.0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(t.UpdateCell(0, "volume", 1.0).code(), StatusCode::kNotFound);
  EXPECT_EQ(t.UpdateCell(0, "price", std::string("x")).code(),
            StatusCode::kInvalidArgument);
}

TEST(ValueTest, TypeMatching) {
  EXPECT_TRUE(ValueMatchesType(Value{1.0}, ColumnType::kNumber));
  EXPECT_FALSE(ValueMatchesType(Value{1.0}, ColumnType::kText));
  EXPECT_TRUE(ValueMatchesType(Value{std::string("x")}, ColumnType::kText));
  EXPECT_FALSE(ValueMatchesType(Value{std::string("x")},
                                ColumnType::kNumber));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(ValueToString(Value{std::string("abc")}), "abc");
  EXPECT_EQ(ValueToString(Value{2.5}), "2.5");
}

}  // namespace
}  // namespace webtx::webdb
