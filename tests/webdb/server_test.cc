#include "webdb/server.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace webtx::webdb {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() {
    EXPECT_TRUE(
        db_.CreateTable("items", {{"name", ColumnType::kText},
                                  {"value", ColumnType::kNumber}})
            .ok());
    auto items = db_.GetTable("items").ValueOrDie();
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(
          items->Insert({"item" + std::to_string(i), i * 1.0}).ok());
    }
  }

  PageTemplate MakePage() const {
    PageTemplate page;
    page.name = "page";
    FragmentTemplate list;
    list.name = "list";
    list.query.name = "q_list";
    list.query.table = "items";
    list.sla_offset = 5.0;
    list.base_weight = 1.0;
    page.fragments.push_back(list);

    FragmentTemplate total;
    total.name = "total";
    total.query.name = "q_total";
    total.query.table = "items";
    total.query.aggregate = AggregateFn::kSum;
    total.query.aggregate_column = "value";
    total.sla_offset = 3.0;
    total.base_weight = 2.0;
    total.depends_on = {0};
    page.fragments.push_back(total);
    return page;
  }

  InMemoryDatabase db_;
  Profiler profiler_;
};

TEST_F(ServerTest, SubmitExpandsFragmentsToTransactions) {
  PageRequestServer server(&db_, &profiler_);
  auto ids = server.Submit(MakePage(), SubscriptionTier::kGold, 2.0);
  ASSERT_TRUE(ids.ok()) << ids.status();
  EXPECT_EQ(ids.ValueOrDie(), (std::vector<TxnId>{0, 1}));
  ASSERT_EQ(server.workload().size(), 2u);

  const TransactionSpec& t0 = server.workload()[0];
  const TransactionSpec& t1 = server.workload()[1];
  EXPECT_EQ(t0.arrival, 2.0);
  EXPECT_EQ(t0.deadline, 7.0);           // arrival + SLA offset
  EXPECT_EQ(t0.weight, 4.0);             // 1.0 * gold (4x)
  EXPECT_TRUE(t0.dependencies.empty());
  EXPECT_EQ(t1.deadline, 5.0);
  EXPECT_EQ(t1.weight, 8.0);             // 2.0 * gold
  EXPECT_EQ(t1.dependencies, std::vector<TxnId>{0});
  EXPECT_GT(t0.length, 0.0);
}

TEST_F(ServerTest, SecondRequestOffsetsDependencyIds) {
  PageRequestServer server(&db_, &profiler_);
  ASSERT_TRUE(server.Submit(MakePage(), SubscriptionTier::kBronze, 0.0).ok());
  ASSERT_TRUE(server.Submit(MakePage(), SubscriptionTier::kSilver, 1.0).ok());
  ASSERT_EQ(server.workload().size(), 4u);
  EXPECT_EQ(server.workload()[3].dependencies, std::vector<TxnId>{2});
  EXPECT_EQ(server.num_requests(), 2u);
}

TEST_F(ServerTest, TierScalesWeights) {
  PageRequestServer server(&db_, &profiler_);
  ASSERT_TRUE(server.Submit(MakePage(), SubscriptionTier::kBronze, 0.0).ok());
  ASSERT_TRUE(server.Submit(MakePage(), SubscriptionTier::kGold, 0.0).ok());
  EXPECT_EQ(server.workload()[0].weight * 4.0, server.workload()[2].weight);
}

TEST_F(ServerTest, RefTracksProvenance) {
  PageRequestServer server(&db_, &profiler_);
  ASSERT_TRUE(server.Submit(MakePage(), SubscriptionTier::kGold, 0.0).ok());
  const auto& ref = server.RefOf(1);
  EXPECT_EQ(ref.request, 0u);
  EXPECT_EQ(ref.fragment, 1u);
  EXPECT_EQ(ref.page_name, "page");
  EXPECT_EQ(ref.fragment_name, "total");
  EXPECT_EQ(ref.query_class, "q_total");
}

TEST_F(ServerTest, InvalidPageRejected) {
  PageRequestServer server(&db_, &profiler_);
  PageTemplate bad = MakePage();
  bad.fragments[0].sla_offset = -1.0;
  EXPECT_FALSE(server.Submit(bad, SubscriptionTier::kGold, 0.0).ok());
  EXPECT_TRUE(server.workload().empty());
}

TEST_F(ServerTest, NegativeArrivalRejected) {
  PageRequestServer server(&db_, &profiler_);
  EXPECT_FALSE(server.Submit(MakePage(), SubscriptionTier::kGold, -1.0).ok());
}

TEST_F(ServerTest, MaterializeTrainsProfiler) {
  PageRequestServer server(&db_, &profiler_);
  ASSERT_TRUE(server.Submit(MakePage(), SubscriptionTier::kGold, 0.0).ok());
  EXPECT_FALSE(profiler_.HasProfile("q_list"));
  auto result = server.Materialize(0);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().rows.size(), 50u);
  EXPECT_TRUE(profiler_.HasProfile("q_list"));
  EXPECT_GT(profiler_.Estimate("q_list", 0.0), 0.0);
}

TEST_F(ServerTest, MaterializeAllCoversEveryTransaction) {
  PageRequestServer server(&db_, &profiler_);
  ASSERT_TRUE(server.Submit(MakePage(), SubscriptionTier::kGold, 0.0).ok());
  ASSERT_TRUE(server.MaterializeAll().ok());
  EXPECT_EQ(profiler_.ObservationCount("q_list"), 1u);
  EXPECT_EQ(profiler_.ObservationCount("q_total"), 1u);
}

TEST_F(ServerTest, MaterializeUnknownIdFails) {
  PageRequestServer server(&db_, &profiler_);
  EXPECT_EQ(server.Materialize(0).status().code(), StatusCode::kOutOfRange);
}

TEST_F(ServerTest, ProfiledLengthsFeedSubsequentRequests) {
  PageRequestServer server(&db_, &profiler_);
  ASSERT_TRUE(server.Submit(MakePage(), SubscriptionTier::kGold, 0.0).ok());
  // Poison the profile: future submissions should use it verbatim.
  profiler_.Observe("q_list", 123.0);
  ASSERT_TRUE(server.Submit(MakePage(), SubscriptionTier::kGold, 1.0).ok());
  EXPECT_EQ(server.workload()[2].length, 123.0);
}

TEST_F(ServerTest, WorkloadFeedsSimulator) {
  PageRequestServer server(&db_, &profiler_);
  ASSERT_TRUE(server.Submit(MakePage(), SubscriptionTier::kGold, 0.0).ok());
  ASSERT_TRUE(server.Submit(MakePage(), SubscriptionTier::kBronze, 0.5).ok());
  auto sim = Simulator::Create(server.workload());
  ASSERT_TRUE(sim.ok()) << sim.status();
  EXPECT_EQ(sim.ValueOrDie().workflows().num_workflows(), 2u);
}

}  // namespace
}  // namespace webtx::webdb
