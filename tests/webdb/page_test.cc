#include "webdb/page.h"

#include <gtest/gtest.h>

namespace webtx::webdb {
namespace {

PageTemplate TwoFragmentPage() {
  PageTemplate page;
  page.name = "p";
  FragmentTemplate a;
  a.name = "a";
  a.query.table = "t";
  page.fragments.push_back(a);
  FragmentTemplate b;
  b.name = "b";
  b.query.table = "t";
  b.depends_on = {0};
  page.fragments.push_back(b);
  return page;
}

TEST(PageTest, ValidPageAccepted) {
  EXPECT_TRUE(TwoFragmentPage().Validate().ok());
}

TEST(PageTest, EmptyPageRejected) {
  PageTemplate page;
  page.name = "empty";
  EXPECT_FALSE(page.Validate().ok());
}

TEST(PageTest, DuplicateFragmentNamesRejected) {
  PageTemplate page = TwoFragmentPage();
  page.fragments[1].name = "a";
  const Status s = page.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("duplicate"), std::string::npos);
}

TEST(PageTest, ForwardDependencyRejected) {
  PageTemplate page = TwoFragmentPage();
  page.fragments[0].depends_on = {1};  // depends on a later fragment
  EXPECT_FALSE(page.Validate().ok());
}

TEST(PageTest, SelfDependencyRejected) {
  PageTemplate page = TwoFragmentPage();
  page.fragments[1].depends_on = {1};
  EXPECT_FALSE(page.Validate().ok());
}

TEST(PageTest, NonPositiveSlaRejected) {
  PageTemplate page = TwoFragmentPage();
  page.fragments[0].sla_offset = 0.0;
  EXPECT_FALSE(page.Validate().ok());
}

TEST(PageTest, NonPositiveWeightRejected) {
  PageTemplate page = TwoFragmentPage();
  page.fragments[0].base_weight = -1.0;
  EXPECT_FALSE(page.Validate().ok());
}

TEST(PageTest, TierMultipliersAreMonotone) {
  EXPECT_LT(TierWeightMultiplier(SubscriptionTier::kBronze),
            TierWeightMultiplier(SubscriptionTier::kSilver));
  EXPECT_LT(TierWeightMultiplier(SubscriptionTier::kSilver),
            TierWeightMultiplier(SubscriptionTier::kGold));
}

TEST(PageTest, TierNames) {
  EXPECT_STREQ(TierName(SubscriptionTier::kBronze), "bronze");
  EXPECT_STREQ(TierName(SubscriptionTier::kSilver), "silver");
  EXPECT_STREQ(TierName(SubscriptionTier::kGold), "gold");
}

}  // namespace
}  // namespace webtx::webdb
