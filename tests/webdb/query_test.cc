#include "webdb/query.h"

#include <gtest/gtest.h>

namespace webtx::webdb {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  QueryTest() {
    EXPECT_TRUE(db_.CreateTable("stocks", {{"symbol", ColumnType::kText},
                                           {"price", ColumnType::kNumber}})
                    .ok());
    EXPECT_TRUE(db_.CreateTable("portfolio",
                                {{"user", ColumnType::kText},
                                 {"symbol", ColumnType::kText},
                                 {"qty", ColumnType::kNumber}})
                    .ok());
    auto stocks = db_.GetTable("stocks").ValueOrDie();
    EXPECT_TRUE(stocks->Insert({std::string("A"), 10.0}).ok());
    EXPECT_TRUE(stocks->Insert({std::string("B"), 20.0}).ok());
    EXPECT_TRUE(stocks->Insert({std::string("C"), 30.0}).ok());
    auto portfolio = db_.GetTable("portfolio").ValueOrDie();
    EXPECT_TRUE(
        portfolio->Insert({std::string("alice"), std::string("A"), 5.0})
            .ok());
    EXPECT_TRUE(
        portfolio->Insert({std::string("alice"), std::string("C"), 2.0})
            .ok());
    EXPECT_TRUE(
        portfolio->Insert({std::string("bob"), std::string("B"), 7.0}).ok());
  }

  InMemoryDatabase db_;
  QueryEngine engine_{&db_};
};

TEST_F(QueryTest, FullScan) {
  QuerySpec q;
  q.table = "stocks";
  auto r = engine_.Execute(q);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.ValueOrDie().rows.size(), 3u);
  EXPECT_GT(r.ValueOrDie().cost, 0.0);
}

TEST_F(QueryTest, FilterOperators) {
  const struct {
    CompareOp op;
    double literal;
    size_t expected;
  } cases[] = {
      {CompareOp::kEq, 20.0, 1}, {CompareOp::kNe, 20.0, 2},
      {CompareOp::kLt, 20.0, 1}, {CompareOp::kLe, 20.0, 2},
      {CompareOp::kGt, 20.0, 1}, {CompareOp::kGe, 20.0, 2},
  };
  for (const auto& c : cases) {
    QuerySpec q;
    q.table = "stocks";
    q.filters = {{"price", c.op, Value{c.literal}}};
    auto r = engine_.Execute(q);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.ValueOrDie().rows.size(), c.expected)
        << "op " << static_cast<int>(c.op);
  }
}

TEST_F(QueryTest, TextFilter) {
  QuerySpec q;
  q.table = "portfolio";
  q.filters = {{"user", CompareOp::kEq, Value{std::string("alice")}}};
  auto r = engine_.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows.size(), 2u);
}

TEST_F(QueryTest, ConjunctiveFilters) {
  QuerySpec q;
  q.table = "stocks";
  q.filters = {{"price", CompareOp::kGt, Value{10.0}},
               {"price", CompareOp::kLt, Value{30.0}}};
  auto r = engine_.Execute(q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.ValueOrDie().rows.size(), 1u);
  EXPECT_EQ(std::get<std::string>(r.ValueOrDie().rows[0][0]), "B");
}

TEST_F(QueryTest, EquiJoin) {
  QuerySpec q;
  q.table = "stocks";
  q.join_table = "portfolio";
  q.join_left_column = "symbol";
  q.join_right_column = "symbol";
  auto r = engine_.Execute(q);
  ASSERT_TRUE(r.ok()) << r.status();
  // A:alice, B:bob, C:alice.
  EXPECT_EQ(r.ValueOrDie().rows.size(), 3u);
  // Output schema: stocks columns + portfolio columns with collision
  // prefixing on "symbol".
  const Schema& schema = r.ValueOrDie().schema;
  ASSERT_EQ(schema.size(), 5u);
  EXPECT_EQ(schema[0].name, "symbol");
  EXPECT_EQ(schema[2].name, "user");
  EXPECT_EQ(schema[3].name, "portfolio.symbol");
}

TEST_F(QueryTest, JoinWithBuildSideFilter) {
  QuerySpec q;
  q.table = "stocks";
  q.join_table = "portfolio";
  q.join_left_column = "symbol";
  q.join_right_column = "symbol";
  q.join_filters = {{"user", CompareOp::kEq, Value{std::string("alice")}}};
  auto r = engine_.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie().rows.size(), 2u);  // A and C
}

TEST_F(QueryTest, AggregateCount) {
  QuerySpec q;
  q.name = "count_q";
  q.table = "stocks";
  q.aggregate = AggregateFn::kCount;
  auto r = engine_.Execute(q);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.ValueOrDie().rows.size(), 1u);
  EXPECT_EQ(std::get<double>(r.ValueOrDie().rows[0][0]), 3.0);
  EXPECT_EQ(r.ValueOrDie().schema[0].name, "count_q");
}

TEST_F(QueryTest, AggregateSumAvgMinMax) {
  const struct {
    AggregateFn fn;
    double expected;
  } cases[] = {{AggregateFn::kSum, 60.0},
               {AggregateFn::kAvg, 20.0},
               {AggregateFn::kMin, 10.0},
               {AggregateFn::kMax, 30.0}};
  for (const auto& c : cases) {
    QuerySpec q;
    q.table = "stocks";
    q.aggregate = c.fn;
    q.aggregate_column = "price";
    auto r = engine_.Execute(q);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(std::get<double>(r.ValueOrDie().rows[0][0]), c.expected);
  }
}

TEST_F(QueryTest, AggregateOverJoin) {
  // Sum of alice's holdings' prices: 10 (A) + 30 (C) = 40.
  QuerySpec q;
  q.table = "stocks";
  q.join_table = "portfolio";
  q.join_left_column = "symbol";
  q.join_right_column = "symbol";
  q.join_filters = {{"user", CompareOp::kEq, Value{std::string("alice")}}};
  q.aggregate = AggregateFn::kSum;
  q.aggregate_column = "price";
  auto r = engine_.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::get<double>(r.ValueOrDie().rows[0][0]), 40.0);
}

TEST_F(QueryTest, AggregateOverEmptyInput) {
  QuerySpec q;
  q.table = "stocks";
  q.filters = {{"price", CompareOp::kGt, Value{1000.0}}};
  q.aggregate = AggregateFn::kSum;
  q.aggregate_column = "price";
  auto r = engine_.Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(std::get<double>(r.ValueOrDie().rows[0][0]), 0.0);
}

TEST_F(QueryTest, CostGrowsWithWorkDone) {
  QuerySpec scan;
  scan.table = "stocks";
  QuerySpec join = scan;
  join.join_table = "portfolio";
  join.join_left_column = "symbol";
  join.join_right_column = "symbol";
  const double scan_cost = engine_.Execute(scan).ValueOrDie().cost;
  const double join_cost = engine_.Execute(join).ValueOrDie().cost;
  EXPECT_GT(join_cost, scan_cost);
  EXPECT_GT(scan_cost, engine_.cost_model().fixed);
}

TEST_F(QueryTest, ErrorsAreReported) {
  QuerySpec q;
  q.table = "ghost";
  EXPECT_EQ(engine_.Execute(q).status().code(), StatusCode::kNotFound);

  q.table = "stocks";
  q.filters = {{"volume", CompareOp::kEq, Value{1.0}}};
  EXPECT_FALSE(engine_.Execute(q).ok());

  q.filters = {{"price", CompareOp::kEq, Value{std::string("text")}}};
  EXPECT_FALSE(engine_.Execute(q).ok());

  q.filters.clear();
  q.join_table = "portfolio";
  q.join_left_column = "price";  // number
  q.join_right_column = "user";  // text -> type mismatch
  EXPECT_FALSE(engine_.Execute(q).ok());

  q.join_left_column = "symbol";
  q.join_right_column = "nope";
  EXPECT_FALSE(engine_.Execute(q).ok());

  q.join_table.clear();
  q.aggregate = AggregateFn::kSum;
  q.aggregate_column = "symbol";  // non-numeric
  EXPECT_FALSE(engine_.Execute(q).ok());
}

}  // namespace
}  // namespace webtx::webdb
