#include "webdb/cache.h"

#include <gtest/gtest.h>

#include "webdb/profiler.h"
#include "webdb/server.h"

namespace webtx::webdb {
namespace {

class CacheTest : public ::testing::Test {
 protected:
  CacheTest() : cache_(&db_) {
    EXPECT_TRUE(db_.CreateTable("items", {{"name", ColumnType::kText},
                                          {"value", ColumnType::kNumber}})
                    .ok());
    auto items = db_.GetTable("items").ValueOrDie();
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(items->Insert({"i" + std::to_string(i), i * 1.0}).ok());
    }
    query_.name = "q_items";
    query_.table = "items";
  }

  QueryResult Execute() {
    QueryEngine engine(&db_);
    return engine.Execute(query_).ValueOrDie();
  }

  InMemoryDatabase db_;
  FragmentCache cache_;
  QuerySpec query_;
};

TEST_F(CacheTest, MissThenHit) {
  EXPECT_EQ(cache_.Lookup(query_), nullptr);
  EXPECT_EQ(cache_.misses(), 1u);
  cache_.Store(query_, Execute());
  const QueryResult* cached = cache_.Lookup(query_);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(cached->rows.size(), 20u);
  EXPECT_EQ(cache_.hits(), 1u);
  EXPECT_TRUE(cache_.Fresh(query_));
}

TEST_F(CacheTest, InsertInvalidates) {
  cache_.Store(query_, Execute());
  ASSERT_TRUE(cache_.Fresh(query_));
  auto items = db_.GetTable("items").ValueOrDie();
  ASSERT_TRUE(items->Insert({std::string("new"), 99.0}).ok());
  EXPECT_FALSE(cache_.Fresh(query_));
  EXPECT_EQ(cache_.Lookup(query_), nullptr);
}

TEST_F(CacheTest, UpdateInvalidates) {
  cache_.Store(query_, Execute());
  auto items = db_.GetTable("items").ValueOrDie();
  ASSERT_TRUE(items->UpdateCell(0, "value", 42.0).ok());
  EXPECT_FALSE(cache_.Fresh(query_));
}

TEST_F(CacheTest, RestoringAfterChangeServesNewData) {
  cache_.Store(query_, Execute());
  auto items = db_.GetTable("items").ValueOrDie();
  ASSERT_TRUE(items->Insert({std::string("new"), 99.0}).ok());
  cache_.Store(query_, Execute());
  const QueryResult* cached = cache_.Lookup(query_);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(cached->rows.size(), 21u);
}

TEST_F(CacheTest, JoinQueriesTrackBothTables) {
  ASSERT_TRUE(
      db_.CreateTable("tags", {{"name", ColumnType::kText},
                               {"tag", ColumnType::kText}})
          .ok());
  auto tags = db_.GetTable("tags").ValueOrDie();
  ASSERT_TRUE(tags->Insert({std::string("i1"), std::string("hot")}).ok());

  QuerySpec join = query_;
  join.name = "q_join";
  join.join_table = "tags";
  join.join_left_column = "name";
  join.join_right_column = "name";
  QueryEngine engine(&db_);
  cache_.Store(join, engine.Execute(join).ValueOrDie());
  ASSERT_TRUE(cache_.Fresh(join));
  // Mutating the *join* table must invalidate too.
  ASSERT_TRUE(tags->Insert({std::string("i2"), std::string("cold")}).ok());
  EXPECT_FALSE(cache_.Fresh(join));
}

TEST_F(CacheTest, EntriesAreKeyedByQueryClass) {
  QuerySpec other = query_;
  other.name = "q_other";
  cache_.Store(query_, Execute());
  EXPECT_FALSE(cache_.Fresh(other));
  EXPECT_TRUE(cache_.Fresh(query_));
  EXPECT_EQ(cache_.size(), 1u);
}

TEST_F(CacheTest, ClearDropsEverything) {
  cache_.Store(query_, Execute());
  cache_.Clear();
  EXPECT_EQ(cache_.size(), 0u);
  EXPECT_FALSE(cache_.Fresh(query_));
}

TEST_F(CacheTest, ServerUsesHitCostForFreshFragments) {
  Profiler profiler;
  PageRequestServer server(&db_, &profiler, CostModel{}, &cache_);

  PageTemplate page;
  page.name = "p";
  FragmentTemplate frag;
  frag.name = "f";
  frag.query = query_;
  frag.sla_offset = 5.0;
  page.fragments.push_back(frag);

  // Cold: length is the modeled cost (well above the hit cost).
  ASSERT_TRUE(server.Submit(page, SubscriptionTier::kBronze, 0.0).ok());
  EXPECT_GT(server.workload()[0].length, FragmentCache::kHitCost);

  // Materialize populates the cache; the next request is a cheap lookup.
  ASSERT_TRUE(server.MaterializeAll().ok());
  ASSERT_TRUE(server.Submit(page, SubscriptionTier::kBronze, 1.0).ok());
  EXPECT_EQ(server.workload()[1].length, FragmentCache::kHitCost);

  // A table change makes the next request expensive again.
  auto items = db_.GetTable("items").ValueOrDie();
  ASSERT_TRUE(items->Insert({std::string("x"), 1.0}).ok());
  ASSERT_TRUE(server.Submit(page, SubscriptionTier::kBronze, 2.0).ok());
  EXPECT_GT(server.workload()[2].length, FragmentCache::kHitCost);
}

TEST_F(CacheTest, ServerMaterializeServesFromCache) {
  Profiler profiler;
  PageRequestServer server(&db_, &profiler, CostModel{}, &cache_);
  PageTemplate page;
  page.name = "p";
  FragmentTemplate frag;
  frag.name = "f";
  frag.query = query_;
  frag.sla_offset = 5.0;
  page.fragments.push_back(frag);
  ASSERT_TRUE(server.Submit(page, SubscriptionTier::kBronze, 0.0).ok());

  auto cold = server.Materialize(0);
  ASSERT_TRUE(cold.ok());
  EXPECT_GT(cold.ValueOrDie().cost, FragmentCache::kHitCost);
  auto warm = server.Materialize(0);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm.ValueOrDie().cost, FragmentCache::kHitCost);
  EXPECT_EQ(warm.ValueOrDie().rows.size(), cold.ValueOrDie().rows.size());
  // Cache hits are not fed to the profiler (they are not executions).
  EXPECT_EQ(profiler.ObservationCount("q_items"), 1u);
}

}  // namespace
}  // namespace webtx::webdb
