#include "webdb/profiler.h"

#include <gtest/gtest.h>

namespace webtx::webdb {
namespace {

TEST(ProfilerTest, FallbackForUnknownClass) {
  Profiler p;
  EXPECT_EQ(p.Estimate("unseen", 7.5), 7.5);
  EXPECT_FALSE(p.HasProfile("unseen"));
  EXPECT_EQ(p.num_classes(), 0u);
  EXPECT_EQ(p.ObservationCount("unseen"), 0u);
}

TEST(ProfilerTest, FirstObservationSetsEstimate) {
  Profiler p(0.25);
  p.Observe("q", 12.0);
  EXPECT_TRUE(p.HasProfile("q"));
  EXPECT_EQ(p.Estimate("q", 0.0), 12.0);
  EXPECT_EQ(p.ObservationCount("q"), 1u);
}

TEST(ProfilerTest, EwmaSmoothsSubsequentObservations) {
  Profiler p(0.5);
  p.Observe("q", 10.0);
  p.Observe("q", 20.0);  // 0.5*20 + 0.5*10 = 15
  EXPECT_NEAR(p.Estimate("q", 0.0), 15.0, 1e-12);
  p.Observe("q", 15.0);  // 0.5*15 + 0.5*15 = 15
  EXPECT_NEAR(p.Estimate("q", 0.0), 15.0, 1e-12);
  EXPECT_EQ(p.ObservationCount("q"), 3u);
}

TEST(ProfilerTest, SmoothingOneTracksLatest) {
  Profiler p(1.0);
  p.Observe("q", 10.0);
  p.Observe("q", 99.0);
  EXPECT_EQ(p.Estimate("q", 0.0), 99.0);
}

TEST(ProfilerTest, ClassesAreIndependent) {
  Profiler p;
  p.Observe("a", 1.0);
  p.Observe("b", 100.0);
  EXPECT_EQ(p.Estimate("a", 0.0), 1.0);
  EXPECT_EQ(p.Estimate("b", 0.0), 100.0);
  EXPECT_EQ(p.num_classes(), 2u);
}

TEST(ProfilerTest, ConvergesToSteadyCost) {
  Profiler p(0.25);
  for (int i = 0; i < 60; ++i) p.Observe("q", 42.0);
  EXPECT_NEAR(p.Estimate("q", 0.0), 42.0, 1e-6);
}

TEST(ProfilerDeathTest, RejectsBadSmoothing) {
  EXPECT_DEATH(Profiler(0.0), "CHECK failed");
  EXPECT_DEATH(Profiler(1.5), "CHECK failed");
}

}  // namespace
}  // namespace webtx::webdb
