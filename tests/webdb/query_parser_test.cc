#include "webdb/query_parser.h"

#include <gtest/gtest.h>

namespace webtx::webdb {
namespace {

QuerySpec MustParse(const std::string& text) {
  auto spec = ParseQuery(text);
  EXPECT_TRUE(spec.ok()) << text << ": " << spec.status();
  return std::move(spec).ValueOrDie();
}

TEST(QueryParserTest, BareScan) {
  const QuerySpec spec = MustParse("SELECT * FROM stocks");
  EXPECT_EQ(spec.table, "stocks");
  EXPECT_TRUE(spec.filters.empty());
  EXPECT_TRUE(spec.join_table.empty());
  EXPECT_EQ(spec.aggregate, AggregateFn::kNone);
}

TEST(QueryParserTest, KeywordsAreCaseInsensitive) {
  const QuerySpec spec = MustParse("select * from stocks where price > 5");
  EXPECT_EQ(spec.table, "stocks");
  ASSERT_EQ(spec.filters.size(), 1u);
}

TEST(QueryParserTest, NumericFilters) {
  const QuerySpec spec = MustParse(
      "SELECT * FROM stocks WHERE price >= 100 AND change_pct < -2.5");
  ASSERT_EQ(spec.filters.size(), 2u);
  EXPECT_EQ(spec.filters[0].column, "price");
  EXPECT_EQ(spec.filters[0].op, CompareOp::kGe);
  EXPECT_EQ(std::get<double>(spec.filters[0].literal), 100.0);
  EXPECT_EQ(spec.filters[1].op, CompareOp::kLt);
  EXPECT_EQ(std::get<double>(spec.filters[1].literal), -2.5);
}

TEST(QueryParserTest, StringFilterAndAllOperators) {
  const struct {
    const char* op_text;
    CompareOp op;
  } cases[] = {{"=", CompareOp::kEq},  {"!=", CompareOp::kNe},
               {"<", CompareOp::kLt},  {"<=", CompareOp::kLe},
               {">", CompareOp::kGt},  {">=", CompareOp::kGe}};
  for (const auto& c : cases) {
    const QuerySpec spec = MustParse(
        std::string("SELECT * FROM t WHERE name ") + c.op_text + " 'abc'");
    ASSERT_EQ(spec.filters.size(), 1u) << c.op_text;
    EXPECT_EQ(spec.filters[0].op, c.op) << c.op_text;
    EXPECT_EQ(std::get<std::string>(spec.filters[0].literal), "abc");
  }
}

TEST(QueryParserTest, Join) {
  const QuerySpec spec = MustParse(
      "SELECT * FROM stocks JOIN portfolio ON symbol = symbol");
  EXPECT_EQ(spec.join_table, "portfolio");
  EXPECT_EQ(spec.join_left_column, "symbol");
  EXPECT_EQ(spec.join_right_column, "symbol");
}

TEST(QueryParserTest, JoinSideFiltersRouteByPrefix) {
  const QuerySpec spec = MustParse(
      "SELECT * FROM stocks JOIN portfolio ON symbol = symbol "
      "WHERE portfolio.user = 'alice' AND price > 10");
  ASSERT_EQ(spec.join_filters.size(), 1u);
  EXPECT_EQ(spec.join_filters[0].column, "user");
  ASSERT_EQ(spec.filters.size(), 1u);
  EXPECT_EQ(spec.filters[0].column, "price");
}

TEST(QueryParserTest, Aggregates) {
  EXPECT_EQ(MustParse("SELECT SUM(price) FROM t").aggregate,
            AggregateFn::kSum);
  EXPECT_EQ(MustParse("SELECT AVG(price) FROM t").aggregate,
            AggregateFn::kAvg);
  EXPECT_EQ(MustParse("SELECT MIN(price) FROM t").aggregate,
            AggregateFn::kMin);
  EXPECT_EQ(MustParse("SELECT MAX(price) FROM t").aggregate,
            AggregateFn::kMax);
  const QuerySpec count = MustParse("SELECT COUNT(*) FROM t");
  EXPECT_EQ(count.aggregate, AggregateFn::kCount);
  EXPECT_TRUE(count.aggregate_column.empty());
  const QuerySpec sum = MustParse("SELECT SUM(price) FROM t");
  EXPECT_EQ(sum.aggregate_column, "price");
}

TEST(QueryParserTest, FullQuery) {
  const QuerySpec spec = MustParse(
      "SELECT SUM(price) FROM stocks JOIN portfolio ON symbol = symbol "
      "WHERE portfolio.user = 'bob' AND price >= 5");
  EXPECT_EQ(spec.aggregate, AggregateFn::kSum);
  EXPECT_EQ(spec.join_table, "portfolio");
  EXPECT_EQ(spec.join_filters.size(), 1u);
  EXPECT_EQ(spec.filters.size(), 1u);
}

TEST(QueryParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("SELECT").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FORM stocks").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM").ok());
  EXPECT_FALSE(ParseQuery("SELECT price FROM t").ok());  // bare column
  EXPECT_FALSE(ParseQuery("SELECT SUM price FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT SUM(price FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT MEDIAN(price) FROM t").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t JOIN").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t JOIN u ON a != b").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE price").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE price >").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE price > 'x").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t extra").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE a ! 1").ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t WHERE a = #").ok());
}

TEST(QueryParserTest, CountStarOnlyForCount) {
  EXPECT_FALSE(ParseQuery("SELECT SUM(*) FROM t").ok());
}

TEST(QueryParserTest, ParsedSpecHasNoName) {
  EXPECT_TRUE(MustParse("SELECT * FROM t").name.empty());
}

}  // namespace
}  // namespace webtx::webdb
