#ifndef WEBTX_TESTS_TESTING_ASETS_STAR_REFERENCE_H_
#define WEBTX_TESTS_TESTING_ASETS_STAR_REFERENCE_H_

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "sched/indexed_priority_queue.h"
#include "sched/policies/asets_star.h"
#include "sched/scheduler_policy.h"
#include "txn/workflow.h"

namespace webtx::testing {

/// The pre-optimization ASETS* implementation, kept verbatim as the
/// differential baseline for the incremental-head production policy:
/// every event rescans all members of every workflow the transaction
/// belongs to (Refresh) and unconditionally re-files the workflow in the
/// EDF-/HDF-lists. It is the exact refresh strategy AsetsStarPolicy
/// shipped with before the hot-path overhaul; the production policy must
/// schedule byte-identically to this class on every workload, fault plan
/// and head-selection rule (tests/sched/asets_star_incremental_test.cc).
///
/// Unlike NaiveAsetsStarPolicy (reference_policies.h) this class keeps
/// the O(log W) list structures, supports every AsetsStarOptions knob and
/// implements PickNextExcluding, so it can stand in for the production
/// policy in any simulation, including multi-server and faulty runs.
class ReferenceAsetsStarPolicy final : public SchedulerPolicy {
 public:
  explicit ReferenceAsetsStarPolicy(AsetsStarOptions options = {})
      : options_(options) {}

  std::string name() const override { return "RefASETS*"; }

  void Bind(const SimView& v) override {
    SchedulerPolicy::Bind(v);
    states_.assign(v.workflows().num_workflows(), WorkflowState{});
  }

  void OnArrival(TxnId id, SimTime now) override {
    RefreshWorkflowsOf(id, now);
  }
  void OnReady(TxnId id, SimTime now) override { RefreshWorkflowsOf(id, now); }
  void OnCompletion(TxnId id, SimTime now) override {
    RefreshWorkflowsOf(id, now);
  }
  void OnRemainingUpdated(TxnId id, SimTime now) override {
    RefreshWorkflowsOf(id, now);
  }
  void OnDropped(TxnId id, SimTime now) override {
    RefreshWorkflowsOf(id, now);
  }
  void OnMigrated(TxnId id, SimTime now) override {
    RefreshWorkflowsOf(id, now);
  }

  TxnId PickNext(SimTime now) override {
    MigrateDue(now);
    if (edf_.empty() && hdf_.empty()) return kInvalidTxn;
    if (edf_.empty()) return states_[hdf_.Top()].head;
    if (hdf_.empty()) return states_[edf_.Top()].head;

    const WorkflowState& we = states_[edf_.Top()];
    const WorkflowState& wh = states_[hdf_.Top()];
    const double r_head_e = view().remaining(we.head);
    const double r_head_h = view().remaining(wh.head);
    const double s_rep_e = we.rep_deadline - (now + we.rep_remaining);
    const double s_rep_h = wh.rep_deadline - (now + wh.rep_remaining);

    double impact_e;
    double impact_h;
    if (options_.impact.clamp_slack) {
      impact_e =
          std::max(0.0, r_head_e - std::max(0.0, s_rep_h)) * wh.rep_weight;
      impact_h =
          std::max(0.0, r_head_h - std::max(0.0, s_rep_e)) * we.rep_weight;
    } else {
      impact_e = (r_head_e - s_rep_h) * wh.rep_weight;
      impact_h = (r_head_h - s_rep_e) * we.rep_weight;
    }
    const bool run_edf = options_.impact.ties_to_edf ? impact_e <= impact_h
                                                     : impact_e < impact_h;
    return run_edf ? we.head : wh.head;
  }

  TxnId PickNextExcluding(SimTime now,
                          const std::vector<TxnId>& exclude) override {
    if (exclude.empty()) return PickNext(now);
    excluded_heads_ = exclude;
    for (const TxnId id : exclude) RefreshWorkflowsOf(id, now);
    const TxnId pick = PickNext(now);
    WEBTX_DCHECK(pick == kInvalidTxn || !IsExcluded(pick));
    excluded_heads_.clear();
    for (const TxnId id : exclude) RefreshWorkflowsOf(id, now);
    return pick;
  }

 protected:
  void Reset() override {
    states_.clear();
    excluded_heads_.clear();
    edf_.Clear();
    hdf_.Clear();
    critical_.Clear();
  }

 private:
  struct WorkflowState {
    bool active = false;
    TxnId head = kInvalidTxn;
    SimTime rep_deadline = 0.0;
    SimTime rep_remaining = 0.0;
    double rep_weight = 1.0;
  };

  bool IsExcluded(TxnId id) const {
    return std::find(excluded_heads_.begin(), excluded_heads_.end(), id) !=
           excluded_heads_.end();
  }

  bool HeadBetter(TxnId a, TxnId b) const {
    if (b == kInvalidTxn) return true;
    const TransactionSpec& sa = view().specs()[a];
    const TransactionSpec& sb = view().specs()[b];
    switch (options_.head_rule) {
      case HeadSelectionRule::kEarliestDeadline:
        if (sa.deadline != sb.deadline) return sa.deadline < sb.deadline;
        break;
      case HeadSelectionRule::kShortestRemaining: {
        const SimTime ra = view().remaining(a);
        const SimTime rb = view().remaining(b);
        if (ra != rb) return ra < rb;
        break;
      }
      case HeadSelectionRule::kFifoArrival:
        if (sa.arrival != sb.arrival) return sa.arrival < sb.arrival;
        break;
    }
    return a < b;
  }

  void Refresh(WorkflowId wid, SimTime now) {
    const Workflow& wf = view().workflows().workflow(wid);
    WorkflowState ws;
    ws.rep_deadline = std::numeric_limits<double>::infinity();
    ws.rep_remaining = std::numeric_limits<double>::infinity();
    ws.rep_weight = 0.0;
    for (const TxnId m : wf.members) {
      if (view().IsFinished(m) || !view().IsArrived(m)) continue;
      const TransactionSpec& spec = view().specs()[m];
      ws.rep_deadline = std::min(ws.rep_deadline, spec.deadline);
      ws.rep_remaining = std::min(ws.rep_remaining, view().remaining(m));
      ws.rep_weight = std::max(ws.rep_weight, spec.weight);
      if (view().IsReady(m) && !IsExcluded(m) && HeadBetter(m, ws.head)) {
        ws.head = m;
      }
    }
    ws.active = ws.head != kInvalidTxn;
    states_[wid] = ws;

    edf_.Erase(wid);
    hdf_.Erase(wid);
    critical_.Erase(wid);
    if (!ws.active) return;
    if (TimeLessEq(now + ws.rep_remaining, ws.rep_deadline)) {
      edf_.Push(wid, ws.rep_deadline);
      critical_.Push(wid, ws.rep_deadline - ws.rep_remaining);
    } else {
      hdf_.Push(wid, HdfKey(ws));
    }
  }

  void RefreshWorkflowsOf(TxnId id, SimTime now) {
    for (const WorkflowId wid : view().workflows().WorkflowsOf(id)) {
      Refresh(wid, now);
    }
  }

  void MigrateDue(SimTime now) {
    while (!critical_.empty() && critical_.TopKey() < now - kTimeEpsilon) {
      const WorkflowId wid = critical_.Pop();
      const bool present = edf_.Erase(wid);
      WEBTX_DCHECK(present) << "critical queue out of sync with EDF-List";
      hdf_.Push(wid, HdfKey(states_[wid]));
    }
  }

  double HdfKey(const WorkflowState& ws) const {
    return ws.rep_remaining / ws.rep_weight;
  }

  AsetsStarOptions options_;
  std::vector<WorkflowState> states_;
  std::vector<TxnId> excluded_heads_;
  IndexedPriorityQueue edf_;
  IndexedPriorityQueue hdf_;
  IndexedPriorityQueue critical_;
};

}  // namespace webtx::testing

#endif  // WEBTX_TESTS_TESTING_ASETS_STAR_REFERENCE_H_
