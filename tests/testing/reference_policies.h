#ifndef WEBTX_TESTS_TESTING_REFERENCE_POLICIES_H_
#define WEBTX_TESTS_TESTING_REFERENCE_POLICIES_H_

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "sched/scheduler_policy.h"
#include "txn/workflow.h"

namespace webtx::testing {

/// Reference ASETS: recomputes both lists from scratch at every
/// scheduling decision — O(n) per pick, no incremental state at all.
/// Differential tests assert it schedules identically to the O(log n)
/// production AsetsPolicy, which validates the latter's migration and
/// re-keying bookkeeping.
class NaiveAsetsPolicy final : public SchedulerPolicy {
 public:
  std::string name() const override { return "NaiveASETS"; }

  void OnReady(TxnId, SimTime) override {}
  void OnCompletion(TxnId, SimTime) override {}

  TxnId PickNext(SimTime now) override {
    TxnId edf_top = kInvalidTxn;
    TxnId hdf_top = kInvalidTxn;
    for (const TxnId id : view().ready_transactions()) {
      const TransactionSpec& spec = view().specs()[id];
      const SimTime r = view().remaining(id);
      if (TimeLessEq(now + r, spec.deadline)) {
        if (edf_top == kInvalidTxn || Less(spec.deadline, id, EdfKey(edf_top), edf_top)) {
          edf_top = id;
        }
      } else {
        if (hdf_top == kInvalidTxn ||
            Less(HdfKey(id), id, HdfKey(hdf_top), hdf_top)) {
          hdf_top = id;
        }
      }
    }
    if (edf_top == kInvalidTxn && hdf_top == kInvalidTxn) return kInvalidTxn;
    if (edf_top == kInvalidTxn) return hdf_top;
    if (hdf_top == kInvalidTxn) return edf_top;

    const double r_e = view().remaining(edf_top);
    const double r_h = view().remaining(hdf_top);
    const double w_e = view().specs()[edf_top].weight;
    const double w_h = view().specs()[hdf_top].weight;
    const double s_e = view().SlackAt(edf_top, now);
    const double s_h = view().SlackAt(hdf_top, now);
    const double impact_e = std::max(0.0, r_e - std::max(0.0, s_h)) * w_h;
    const double impact_h = std::max(0.0, r_h - std::max(0.0, s_e)) * w_e;
    return impact_e < impact_h ? edf_top : hdf_top;
  }

 protected:
  void Reset() override {}

 private:
  static bool Less(double key_a, TxnId a, double key_b, TxnId b) {
    if (key_a != key_b) return key_a < key_b;
    return a < b;
  }
  double EdfKey(TxnId id) const { return view().specs()[id].deadline; }
  double HdfKey(TxnId id) const {
    return view().remaining(id) / view().specs()[id].weight;
  }
};

/// Reference ASETS*: recomputes every workflow's head/representative and
/// both lists from scratch at every decision. Mirrors the default
/// options of AsetsStarPolicy (earliest-deadline head, clamped impacts,
/// ties to the HDF side).
class NaiveAsetsStarPolicy final : public SchedulerPolicy {
 public:
  std::string name() const override { return "NaiveASETS*"; }

  void OnReady(TxnId, SimTime) override {}
  void OnCompletion(TxnId, SimTime) override {}

  TxnId PickNext(SimTime now) override {
    struct State {
      bool active = false;
      TxnId head = kInvalidTxn;
      double d_rep = 0.0;
      double r_rep = 0.0;
      double w_rep = 0.0;
    };
    const WorkflowRegistry& registry = view().workflows();
    WorkflowId edf_top = kInvalidWorkflow;
    WorkflowId hdf_top = kInvalidWorkflow;
    State edf_state;
    State hdf_state;

    for (WorkflowId wid = 0; wid < registry.num_workflows(); ++wid) {
      State s;
      s.d_rep = std::numeric_limits<double>::infinity();
      s.r_rep = std::numeric_limits<double>::infinity();
      s.w_rep = 0.0;
      for (const TxnId m : registry.workflow(wid).members) {
        if (view().IsFinished(m) || !view().IsArrived(m)) continue;
        const TransactionSpec& spec = view().specs()[m];
        s.d_rep = std::min(s.d_rep, spec.deadline);
        s.r_rep = std::min(s.r_rep, view().remaining(m));
        s.w_rep = std::max(s.w_rep, spec.weight);
        if (view().IsReady(m) && HeadBetter(m, s.head)) s.head = m;
      }
      s.active = s.head != kInvalidTxn;
      if (!s.active) continue;
      if (TimeLessEq(now + s.r_rep, s.d_rep)) {
        if (edf_top == kInvalidWorkflow ||
            Less(s.d_rep, wid, edf_state.d_rep, edf_top)) {
          edf_top = wid;
          edf_state = s;
        }
      } else {
        if (hdf_top == kInvalidWorkflow ||
            Less(s.r_rep / s.w_rep, wid, hdf_state.r_rep / hdf_state.w_rep,
                 hdf_top)) {
          hdf_top = wid;
          hdf_state = s;
        }
      }
    }
    if (edf_top == kInvalidWorkflow && hdf_top == kInvalidWorkflow) {
      return kInvalidTxn;
    }
    if (edf_top == kInvalidWorkflow) return hdf_state.head;
    if (hdf_top == kInvalidWorkflow) return edf_state.head;

    const double r_head_e = view().remaining(edf_state.head);
    const double r_head_h = view().remaining(hdf_state.head);
    const double s_rep_e = edf_state.d_rep - (now + edf_state.r_rep);
    const double s_rep_h = hdf_state.d_rep - (now + hdf_state.r_rep);
    const double impact_e =
        std::max(0.0, r_head_e - std::max(0.0, s_rep_h)) * hdf_state.w_rep;
    const double impact_h =
        std::max(0.0, r_head_h - std::max(0.0, s_rep_e)) * edf_state.w_rep;
    return impact_e < impact_h ? edf_state.head : hdf_state.head;
  }

 protected:
  void Reset() override {}

 private:
  static bool Less(double key_a, WorkflowId a, double key_b, WorkflowId b) {
    if (key_a != key_b) return key_a < key_b;
    return a < b;
  }
  bool HeadBetter(TxnId a, TxnId b) const {
    if (b == kInvalidTxn) return true;
    const double da = view().specs()[a].deadline;
    const double db = view().specs()[b].deadline;
    if (da != db) return da < db;
    return a < b;
  }
};

}  // namespace webtx::testing

#endif  // WEBTX_TESTS_TESTING_REFERENCE_POLICIES_H_
