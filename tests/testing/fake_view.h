#ifndef WEBTX_TESTS_TESTING_FAKE_VIEW_H_
#define WEBTX_TESTS_TESTING_FAKE_VIEW_H_

#include <utility>
#include <vector>

#include "common/check.h"
#include "sched/sim_view.h"
#include "txn/dependency_graph.h"
#include "txn/transaction.h"
#include "txn/workflow.h"

namespace webtx::testing {

/// A hand-driven SimView for policy unit tests: the test sets arrival /
/// ready / finished flags and remaining times directly, with no simulator
/// in the loop.
class FakeView final : public SimView {
 public:
  explicit FakeView(std::vector<TransactionSpec> txns)
      : specs_(std::move(txns)),
        graph_(DependencyGraph::Build(specs_).ValueOrDie()),
        registry_(WorkflowRegistry::Build(graph_)) {
    const size_t n = specs_.size();
    remaining_.resize(n);
    arrived_.assign(n, 0);
    finished_.assign(n, 0);
    for (size_t i = 0; i < n; ++i) remaining_[i] = specs_[i].length;
  }

  // Test-side mutators.
  void Arrive(TxnId id) { arrived_[id] = 1; }
  void Finish(TxnId id) {
    finished_[id] = 1;
    remaining_[id] = 0.0;
    RebuildReadyList();
  }
  void SetRemaining(TxnId id, SimTime r) { remaining_[id] = r; }
  void ArriveAll() {
    for (size_t i = 0; i < specs_.size(); ++i) arrived_[i] = 1;
    RebuildReadyList();
  }

  /// Recomputes the ready list from flags + dependency state. Call after
  /// mutating flags directly.
  void RebuildReadyList() {
    ready_.clear();
    for (size_t i = 0; i < specs_.size(); ++i) {
      const auto id = static_cast<TxnId>(i);
      if (IsReady(id)) ready_.push_back(id);
    }
  }

  // SimView:
  const std::vector<TransactionSpec>& specs() const override {
    return specs_;
  }
  const DependencyGraph& graph() const override { return graph_; }
  const WorkflowRegistry& workflows() const override { return registry_; }
  SimTime remaining(TxnId id) const override { return remaining_[id]; }
  bool IsArrived(TxnId id) const override { return arrived_[id] != 0; }
  bool IsFinished(TxnId id) const override { return finished_[id] != 0; }
  bool IsReady(TxnId id) const override {
    if (!arrived_[id] || finished_[id]) return false;
    for (const TxnId dep : graph_.predecessors(id)) {
      if (!finished_[dep]) return false;
    }
    return true;
  }
  const std::vector<TxnId>& ready_transactions() const override {
    return ready_;
  }

 private:
  std::vector<TransactionSpec> specs_;
  DependencyGraph graph_;
  WorkflowRegistry registry_;
  std::vector<SimTime> remaining_;
  std::vector<char> arrived_;
  std::vector<char> finished_;
  std::vector<TxnId> ready_;
};

/// Shorthand builder for a TransactionSpec in tests.
inline TransactionSpec Txn(TxnId id, SimTime arrival, SimTime length,
                           SimTime deadline, double weight = 1.0,
                           std::vector<TxnId> deps = {}) {
  TransactionSpec t;
  t.id = id;
  t.arrival = arrival;
  t.length = length;
  t.deadline = deadline;
  t.weight = weight;
  t.dependencies = std::move(deps);
  return t;
}

}  // namespace webtx::testing

#endif  // WEBTX_TESTS_TESTING_FAKE_VIEW_H_
