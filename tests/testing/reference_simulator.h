#ifndef WEBTX_TESTS_TESTING_REFERENCE_SIMULATOR_H_
#define WEBTX_TESTS_TESTING_REFERENCE_SIMULATOR_H_

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "sched/admission.h"
#include "sched/scheduler_policy.h"
#include "sched/sim_view.h"
#include "sim/fault_plan.h"
#include "sim/metrics.h"
#include "sim/simulator.h"
#include "txn/dependency_graph.h"
#include "txn/transaction.h"
#include "txn/workflow.h"

namespace webtx::testing {

/// The pre-shard Simulator, kept verbatim as the differential baseline
/// for the sharded production event loop: one global loop that rescans
/// every server for the earliest completion, recomputes the per-type
/// fault horizons with an O(k) pass whenever any stream advances,
/// recounts the up-server pool at every fault transition and per
/// scheduling round, and matches picks to servers with a nested find.
/// It is the exact event loop the simulator shipped with before the
/// sharded rewrite; the production Simulator must produce byte-identical
/// results (ScheduleDigest over schedule, outcomes and counters) on
/// every (workload, policy, fault plan, num_servers, shard_threads)
/// combination — pinned by tests/sim/sharded_differential_test.cc and
/// benchmarked against in bench/ext_multi_server.
///
/// Deliberately header-only and self-contained (its own pending-event
/// heap) so later simulator refactors cannot silently change the
/// baseline's behavior. It accepts the same SimOptions; sharding knobs
/// (SimOptions::shard_threads, SimOptions::timing) are ignored, as they
/// must not affect results in the production simulator either.
class ReferenceSimulator final : public SimView {
 public:
  static Result<ReferenceSimulator> Create(std::vector<TransactionSpec> txns,
                                           SimOptions options = {}) {
    for (size_t i = 0; i < txns.size(); ++i) {
      const TransactionSpec& t = txns[i];
      if (t.length <= 0.0) {
        return Status::InvalidArgument("T" + std::to_string(i) +
                                       " has non-positive length");
      }
      if (t.arrival < 0.0) {
        return Status::InvalidArgument("T" + std::to_string(i) +
                                       " has negative arrival time");
      }
      if (t.weight <= 0.0) {
        return Status::InvalidArgument("T" + std::to_string(i) +
                                       " has non-positive weight");
      }
      if (t.length_estimate < 0.0) {
        return Status::InvalidArgument("T" + std::to_string(i) +
                                       " has negative length estimate");
      }
    }
    if (options.retry.max_attempts < 1) {
      return Status::InvalidArgument("retry.max_attempts must be >= 1");
    }
    if (options.retry.backoff < 0.0 ||
        options.retry.backoff_multiplier < 0.0 ||
        options.retry.max_backoff < 0.0) {
      return Status::InvalidArgument("retry backoff must be non-negative");
    }
    WEBTX_ASSIGN_OR_RETURN(DependencyGraph graph,
                           DependencyGraph::Build(txns));
    WorkflowRegistry registry = WorkflowRegistry::Build(graph);
    return ReferenceSimulator(std::move(txns), std::move(graph),
                              std::move(registry), std::move(options));
  }

  ReferenceSimulator(ReferenceSimulator&&) = default;
  ReferenceSimulator& operator=(ReferenceSimulator&&) = default;

  RunResult Run(SchedulerPolicy& policy) {
    ResetRuntimeState();
    policy.Bind(*this);
    WEBTX_CHECK_GE(options_.num_servers, 1u);

    std::unique_ptr<AdmissionController> admission;
    if (options_.admission) {
      admission = options_.admission();
      admission->Bind(*this);
    }

    const size_t n = specs_.size();
    const size_t k = options_.num_servers;
    std::vector<TxnOutcome> outcomes(n);

    const bool faults = options_.fault_plan.enabled();
    std::vector<FaultStream> fault_streams;
    if (faults) {
      fault_streams.reserve(k);
      for (size_t s = 0; s < k; ++s) {
        fault_streams.push_back(
            options_.fault_plan.StreamFor(static_cast<uint32_t>(s)));
      }
    }
    SimTime t_outage = kNever;
    size_t outage_server = k;
    SimTime t_abort = kNever;
    size_t abort_server = k;
    SimTime t_crash = kNever;
    size_t crash_server = k;
    const auto recompute_outage_horizon = [&] {
      t_outage = kNever;
      outage_server = k;
      for (size_t s = 0; s < k; ++s) {
        const SimTime tt = fault_streams[s].next_transition();
        if (tt < t_outage) {
          t_outage = tt;
          outage_server = s;
        }
      }
    };
    const auto recompute_abort_horizon = [&] {
      t_abort = kNever;
      abort_server = k;
      for (size_t s = 0; s < k; ++s) {
        const SimTime ta = fault_streams[s].next_abort();
        if (ta < t_abort) {
          t_abort = ta;
          abort_server = s;
        }
      }
    };
    const auto recompute_crash_horizon = [&] {
      t_crash = kNever;
      crash_server = k;
      for (size_t s = 0; s < k; ++s) {
        const SimTime tc = fault_streams[s].next_crash_transition();
        if (tc < t_crash) {
          t_crash = tc;
          crash_server = s;
        }
      }
    };
    num_up_ = k;
    const auto recount_up_servers = [&] {
      size_t up = 0;
      for (size_t s = 0; s < k; ++s) {
        if (!fault_streams[s].down()) ++up;
      }
      num_up_ = up;
    };
    if (faults) {
      recompute_outage_horizon();
      recompute_abort_horizon();
      recompute_crash_horizon();
    }

    size_t next_arrival = 0;
    size_t resolved_count = 0;
    std::vector<TxnId> running(k, kInvalidTxn);
    std::vector<SimTime> dispatch_time(k, 0.0);
    std::vector<SimTime> segment_start(k, 0.0);
    std::vector<ScheduleSegment> schedule;
    if (options_.record_schedule) schedule.reserve(2 * n);
    PendingQueue pending;
    if (faults || admission) pending.Reserve(n);
    std::vector<TxnId> picks;
    picks.reserve(k);
    std::vector<TxnId> next_running(k, kInvalidTxn);
    std::vector<char> pick_taken;
    pick_taken.reserve(k);
    std::vector<std::pair<TxnId, TxnFate>> resolve_stack;
    resolve_stack.reserve(n);
    SimTime now = 0.0;
    size_t scheduling_points = 0;
    size_t preemptions = 0;
    size_t idle_decisions = 0;
    size_t retries = 0;
    size_t retry_storm_suppressed = 0;
    size_t deferrals = 0;
    size_t outage_preemptions = 0;
    double total_outage_time = 0.0;
    std::vector<OutageWindow> outages;
    size_t num_migrations = 0;
    double total_repair_time = 0.0;
    std::vector<OutageWindow> crashes;
    const bool cold_migration =
        options_.fault_plan.config().migration == MigrationPolicy::kCold;

    const auto attempt_of = [&](TxnId id) -> uint32_t {
      const TxnOutcome& o = outcomes[id];
      return cold_migration ? o.aborts + o.migrations : o.aborts;
    };

    const auto close_segment = [&](size_t s, SimTime t) {
      if (!options_.record_schedule) return;
      if (t - segment_start[s] <= kTimeEpsilon) return;
      schedule.push_back(ScheduleSegment{running[s], static_cast<uint32_t>(s),
                                         segment_start[s], t,
                                         attempt_of(running[s])});
    };

    const auto charge_progress = [&](SimTime t) {
      for (size_t s = 0; s < k; ++s) {
        if (running[s] == kInvalidTxn) continue;
        const SimTime elapsed = t - dispatch_time[s];
        true_remaining_[running[s]] -= elapsed;
        estimated_remaining_[running[s]] =
            std::max(kMinEstimatedRemaining,
                     estimated_remaining_[running[s]] - elapsed);
        dispatch_time[s] = t;
        WEBTX_DCHECK(true_remaining_[running[s]] > -kTimeEpsilon);
      }
    };

    const auto resolve = [&](TxnId root, TxnFate fate, SimTime t) {
      std::vector<std::pair<TxnId, TxnFate>>& stack = resolve_stack;
      stack.clear();
      stack.emplace_back(root, fate);
      while (!stack.empty()) {
        const auto [cur, cur_fate] = stack.back();
        stack.pop_back();
        if (finished_[cur]) continue;
        if (ready_pos_[cur] != kNoReadyPos) {
          ReadyListRemove(cur);
          policy.OnCompletion(cur, t);  // dequeue signal
        }
        finished_[cur] = 1;
        suspended_[cur] = 0;
        ++resolved_count;
        TxnOutcome& o = outcomes[cur];
        o.fate = cur_fate;
        o.finish = t;
        o.missed_deadline = true;
        if (arrived_[cur]) policy.OnDropped(cur, t);
        for (const TxnId succ : graph_.successors(cur)) {
          if (!finished_[succ]) {
            stack.emplace_back(succ, TxnFate::kDroppedDependency);
          }
        }
      }
    };

    const auto admit_arrival = [&](TxnId id, SimTime t) {
      if (admission) {
        const AdmissionDecision d = admission->Decide(id, t);
        if (d.action == AdmissionDecision::Action::kReject) {
          resolve(id, TxnFate::kShedAdmission, t);
          return;
        }
        if (d.action == AdmissionDecision::Action::kDefer) {
          WEBTX_CHECK(d.defer_delay > 0.0)
              << admission->name() << " deferred T" << id
              << " with non-positive delay";
          ++deferrals;
          pending.push(RefPendingEvent{t + d.defer_delay, 1, id});
          return;
        }
      }
      arrived_[id] = 1;
      policy.OnArrival(id, t);
      if (unmet_deps_[id] == 0) MakeReady(id, t, policy);
    };

    const auto migrate = [&](size_t s, SimTime t) {
      const TxnId victim = running[s];
      if (victim == kInvalidTxn) return;
      close_segment(s, t);  // belongs to the pre-migration attempt
      running[s] = kInvalidTxn;
      ++num_migrations;
      ++outcomes[victim].migrations;
      if (cold_migration) {
        suspended_[victim] = 1;
        ReadyListRemove(victim);
        policy.OnCompletion(victim, t);  // dequeue signal
        true_remaining_[victim] = specs_[victim].length;
        estimated_remaining_[victim] = specs_[victim].EstimateOrLength();
        suspended_[victim] = 0;
        MakeReady(victim, t, policy);
      }
      policy.OnMigrated(victim, t);
    };

    while (resolved_count < n) {
      const SimTime t_arrival =
          next_arrival < n ? specs_[arrival_order_[next_arrival]].arrival
                           : kNever;
      SimTime t_completion = kNever;
      size_t completing_server = k;
      for (size_t s = 0; s < k; ++s) {
        if (running[s] == kInvalidTxn) continue;
        const SimTime tc = dispatch_time[s] + true_remaining_[running[s]];
        if (tc < t_completion) {
          t_completion = tc;
          completing_server = s;
        }
      }
      const SimTime t_pending = pending.empty() ? kNever : pending.top().time;

      WEBTX_CHECK(t_completion != kNever || t_arrival != kNever ||
                  t_pending != kNever || !ready_list_.empty())
          << "simulation stalled: " << (n - resolved_count)
          << " transactions unresolved, nothing running, no arrivals left "
             "(policy idled while work was pending?)";

      enum class Ev {
        kCompletion,
        kOutage,
        kCrash,
        kAbort,
        kPending,
        kArrival
      };
      Ev ev = Ev::kCompletion;
      SimTime t_ev = t_completion;
      if (t_outage < t_ev) {
        ev = Ev::kOutage;
        t_ev = t_outage;
      }
      if (t_crash < t_ev) {
        ev = Ev::kCrash;
        t_ev = t_crash;
      }
      if (t_abort < t_ev) {
        ev = Ev::kAbort;
        t_ev = t_abort;
      }
      if (t_pending < t_ev) {
        ev = Ev::kPending;
        t_ev = t_pending;
      }
      if (t_arrival < t_ev) {
        ev = Ev::kArrival;
        t_ev = t_arrival;
      }
      now = t_ev;
      charge_progress(now);

      switch (ev) {
        case Ev::kCompletion: {
          close_segment(completing_server, now);
          const TxnId done = running[completing_server];
          running[completing_server] = kInvalidTxn;
          true_remaining_[done] = 0.0;
          estimated_remaining_[done] = 0.0;
          finished_[done] = 1;
          ++resolved_count;
          ReadyListRemove(done);

          TxnOutcome& o = outcomes[done];
          o.fate = TxnFate::kCompleted;
          o.finish = now;
          o.tardiness = TardinessOf(now, specs_[done].deadline);
          o.weighted_tardiness = o.tardiness * specs_[done].weight;
          o.response = now - specs_[done].arrival;
          o.missed_deadline = o.tardiness > 0.0;

          policy.OnCompletion(done, now);
          for (const TxnId succ : graph_.successors(done)) {
            WEBTX_DCHECK(unmet_deps_[succ] > 0);
            if (--unmet_deps_[succ] == 0 && arrived_[succ] &&
                !finished_[succ]) {
              MakeReady(succ, now, policy);
            }
          }
          break;
        }
        case Ev::kOutage: {
          FaultStream& stream = fault_streams[outage_server];
          if (!stream.down()) {
            outages.push_back(
                OutageWindow{static_cast<uint32_t>(outage_server),
                             stream.next_transition(), stream.outage_end()});
            total_outage_time +=
                stream.outage_end() - stream.next_transition();
            if (running[outage_server] != kInvalidTxn) {
              close_segment(outage_server, now);
              running[outage_server] = kInvalidTxn;
              ++outage_preemptions;
            }
          }
          stream.AdvanceTransition();
          recompute_outage_horizon();
          recount_up_servers();
          break;
        }
        case Ev::kCrash: {
          FaultStream& stream = fault_streams[crash_server];
          if (!stream.crashed()) {
            const SimTime repaired = stream.repair_end();
            stream.AdvanceCrashTransition();
            crashes.push_back(OutageWindow{
                static_cast<uint32_t>(crash_server), now, repaired});
            total_repair_time += repaired - now;
            migrate(crash_server, now);
            if (options_.fault_plan.config().correlated_crash_prob > 0.0) {
              for (size_t s = 0; s < k; ++s) {
                if (s == crash_server) continue;
                SimTime repair_duration = 0.0;
                if (!stream.DrawCorrelatedVictim(&repair_duration)) continue;
                crashes.push_back(OutageWindow{static_cast<uint32_t>(s), now,
                                               now + repair_duration});
                total_repair_time += repair_duration;
                migrate(s, now);
                fault_streams[s].ForceCrash(now, repair_duration);
              }
            }
          } else {
            stream.AdvanceCrashTransition();
          }
          recompute_crash_horizon();
          recount_up_servers();
          break;
        }
        case Ev::kAbort: {
          FaultStream& stream = fault_streams[abort_server];
          const size_t aborting_server = abort_server;
          stream.AdvanceAbort();
          recompute_abort_horizon();
          const TxnId victim = running[aborting_server];
          if (victim == kInvalidTxn) break;  // idle/down server: no-op
          close_segment(aborting_server, now);
          running[aborting_server] = kInvalidTxn;
          TxnOutcome& o = outcomes[victim];
          ++o.aborts;
          suspended_[victim] = 1;
          ReadyListRemove(victim);
          policy.OnCompletion(victim, now);  // dequeue signal
          true_remaining_[victim] = specs_[victim].length;
          estimated_remaining_[victim] = specs_[victim].EstimateOrLength();
          if (o.aborts >= options_.retry.max_attempts) {
            resolve(victim, TxnFate::kDroppedRetries, now);
            break;
          }
          ++retries;
          SimTime delay = options_.retry.backoff;
          const SimTime max_backoff = options_.retry.max_backoff;
          for (uint32_t i = 1; i < o.aborts; ++i) {
            delay *= options_.retry.backoff_multiplier;
            if (max_backoff > 0.0 && delay > max_backoff) break;
          }
          if (max_backoff > 0.0 && delay > max_backoff) {
            delay = max_backoff;
            ++retry_storm_suppressed;
          }
          if (delay <= 0.0) {
            suspended_[victim] = 0;
            MakeReady(victim, now, policy);
          } else {
            pending.push(RefPendingEvent{now + delay, 0, victim});
          }
          break;
        }
        case Ev::kPending: {
          while (!pending.empty() && pending.top().time == now) {
            const RefPendingEvent pe = pending.top();
            pending.pop();
            if (finished_[pe.id]) continue;
            if (pe.kind == 0) {
              suspended_[pe.id] = 0;
              MakeReady(pe.id, now, policy);
            } else {
              admit_arrival(pe.id, now);
            }
          }
          break;
        }
        case Ev::kArrival: {
          while (next_arrival < n &&
                 specs_[arrival_order_[next_arrival]].arrival == now) {
            const TxnId id = arrival_order_[next_arrival++];
            if (finished_[id]) continue;
            admit_arrival(id, now);
          }
          break;
        }
      }
      for (size_t s = 0; s < k; ++s) {
        if (running[s] != kInvalidTxn) {
          policy.OnRemainingUpdated(running[s], now);
        }
      }

      ++scheduling_points;

      if (k == 1) {
        TxnId pick = kInvalidTxn;
        if (!faults || !fault_streams[0].down()) {
          pick = policy.PickNext(now);
          if (pick != kInvalidTxn) {
            WEBTX_CHECK(IsReady(pick))
                << "policy " << policy.name() << " picked non-ready T"
                << pick << " at t=" << now;
          } else {
            WEBTX_CHECK(ready_list_.empty())
                << "policy " << policy.name() << " idled a server with "
                << ready_list_.size() << " ready transactions at t=" << now;
            ++idle_decisions;
          }
        }
        if (pick != running[0]) {
          if (running[0] != kInvalidTxn) {
            if (!finished_[running[0]]) ++preemptions;
            close_segment(0, now);
          }
          if (pick != kInvalidTxn) {
            dispatch_time[0] = now + options_.context_switch_cost;
            segment_start[0] = dispatch_time[0];
          }
          running[0] = pick;
        }
        continue;
      }

      size_t k_up = k;
      if (faults) {
        k_up = 0;
        for (size_t s = 0; s < k; ++s) {
          if (!fault_streams[s].down()) ++k_up;
        }
      }
      picks.clear();
      for (size_t slot = 0; slot < k_up; ++slot) {
        const TxnId pick = policy.PickNextExcluding(now, picks);
        if (pick == kInvalidTxn) break;
        WEBTX_CHECK(IsReady(pick))
            << "policy " << policy.name() << " picked non-ready T" << pick
            << " at t=" << now;
        WEBTX_DCHECK(std::find(picks.begin(), picks.end(), pick) ==
                     picks.end())
            << "policy " << policy.name() << " picked T" << pick << " twice";
        picks.push_back(pick);
      }
      if (picks.size() < k_up) {
        WEBTX_CHECK_EQ(picks.size(),
                       std::min<size_t>(k_up, ready_list_.size()))
            << "policy " << policy.name() << " idled a server with "
            << ready_list_.size() << " ready transactions at t=" << now;
      }
      if (picks.empty() && k_up > 0) ++idle_decisions;

      next_running.assign(k, kInvalidTxn);
      pick_taken.assign(picks.size(), 0);
      for (size_t s = 0; s < k; ++s) {
        if (running[s] == kInvalidTxn) continue;
        for (size_t p = 0; p < picks.size(); ++p) {
          if (!pick_taken[p] && picks[p] == running[s]) {
            next_running[s] = running[s];
            pick_taken[p] = 1;
            break;
          }
        }
      }
      {
        size_t p = 0;
        for (size_t s = 0; s < k; ++s) {
          if (next_running[s] != kInvalidTxn) continue;
          if (faults && fault_streams[s].down()) continue;
          while (p < picks.size() && pick_taken[p]) ++p;
          if (p >= picks.size()) break;
          next_running[s] = picks[p];
          pick_taken[p] = 1;
        }
      }
      for (size_t s = 0; s < k; ++s) {
        if (running[s] != kInvalidTxn && !finished_[running[s]] &&
            std::find(next_running.begin(), next_running.end(),
                      running[s]) == next_running.end()) {
          ++preemptions;
        }
        if (next_running[s] != running[s]) {
          if (running[s] != kInvalidTxn) close_segment(s, now);
          if (next_running[s] != kInvalidTxn) {
            dispatch_time[s] = now + options_.context_switch_cost;
            segment_start[s] = dispatch_time[s];
          }
        }
        running[s] = next_running[s];
      }
    }

    RunResult result =
        RunResult::FromOutcomes(policy.name(), specs_, std::move(outcomes));
    result.num_scheduling_points = scheduling_points;
    result.num_preemptions = preemptions;
    result.num_idle_decisions = idle_decisions;
    result.num_retries = retries;
    result.retry_storm_suppressed = retry_storm_suppressed;
    result.num_deferrals = deferrals;
    result.num_outages = outages.size();
    result.num_outage_preemptions = outage_preemptions;
    result.total_outage_time = total_outage_time;
    result.outages = std::move(outages);
    result.num_crashes = crashes.size();
    WEBTX_DCHECK(result.num_migrations == num_migrations)
        << "FromOutcomes migration sum disagrees with the event loop";
    result.total_repair_time = total_repair_time;
    result.crashes = std::move(crashes);
    if (!options_.record_outcomes) result.outcomes.clear();
    if (options_.record_schedule) {
      std::sort(schedule.begin(), schedule.end(),
                [](const ScheduleSegment& a, const ScheduleSegment& b) {
                  if (a.start != b.start) return a.start < b.start;
                  return a.server < b.server;
                });
      result.schedule = std::move(schedule);
    }
    return result;
  }

  // SimView:
  const std::vector<TransactionSpec>& specs() const override {
    return specs_;
  }
  const DependencyGraph& graph() const override { return graph_; }
  const WorkflowRegistry& workflows() const override { return registry_; }
  size_t num_servers() const override { return options_.num_servers; }
  size_t num_servers_up() const override {
    return num_up_ > 0 ? num_up_ : 1;
  }
  SimTime remaining(TxnId id) const override {
    return estimated_remaining_[id];
  }
  bool IsArrived(TxnId id) const override { return arrived_[id] != 0; }
  bool IsFinished(TxnId id) const override { return finished_[id] != 0; }
  bool IsReady(TxnId id) const override {
    return arrived_[id] && !finished_[id] && !suspended_[id] &&
           unmet_deps_[id] == 0;
  }
  const std::vector<TxnId>& ready_transactions() const override {
    return ready_list_;
  }

 private:
  static constexpr size_t kNoReadyPos = std::numeric_limits<size_t>::max();
  static constexpr SimTime kNever = std::numeric_limits<SimTime>::infinity();
  static constexpr SimTime kMinEstimatedRemaining = 1e-6;

  // The frozen copy of the pre-shard pending-event heap: ordering is
  // (time, kind, id), kind 0 = retry release, 1 = deferred arrival.
  struct RefPendingEvent {
    SimTime time = 0.0;
    uint8_t kind = 0;
    TxnId id = kInvalidTxn;
  };
  struct RefPendingAfter {
    bool operator()(const RefPendingEvent& a, const RefPendingEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.kind != b.kind) return a.kind > b.kind;
      return a.id > b.id;
    }
  };
  class PendingQueue {
   public:
    void Reserve(size_t n) { heap_.reserve(n); }
    bool empty() const { return heap_.empty(); }
    const RefPendingEvent& top() const { return heap_.front(); }
    void push(const RefPendingEvent& e) {
      heap_.push_back(e);
      std::push_heap(heap_.begin(), heap_.end(), RefPendingAfter{});
    }
    void pop() {
      std::pop_heap(heap_.begin(), heap_.end(), RefPendingAfter{});
      heap_.pop_back();
    }

   private:
    std::vector<RefPendingEvent> heap_;
  };

  ReferenceSimulator(std::vector<TransactionSpec> txns, DependencyGraph graph,
                     WorkflowRegistry registry, SimOptions options)
      : specs_(std::move(txns)),
        graph_(std::move(graph)),
        registry_(std::move(registry)),
        options_(std::move(options)) {
    const size_t n = specs_.size();
    arrival_order_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      arrival_order_[i] = static_cast<TxnId>(i);
    }
    std::stable_sort(arrival_order_.begin(), arrival_order_.end(),
                     [this](TxnId a, TxnId b) {
                       if (specs_[a].arrival != specs_[b].arrival) {
                         return specs_[a].arrival < specs_[b].arrival;
                       }
                       return a < b;
                     });
    true_remaining_.resize(n);
    estimated_remaining_.resize(n);
    arrived_.resize(n);
    finished_.resize(n);
    suspended_.resize(n);
    unmet_deps_.resize(n);
    ready_list_.reserve(n);
    ready_pos_.resize(n);
  }

  void ResetRuntimeState() {
    const size_t n = specs_.size();
    arrived_.assign(n, 0);
    finished_.assign(n, 0);
    suspended_.assign(n, 0);
    ready_list_.clear();
    ready_pos_.assign(n, kNoReadyPos);
    for (size_t i = 0; i < n; ++i) {
      true_remaining_[i] = specs_[i].length;
      estimated_remaining_[i] = specs_[i].EstimateOrLength();
      unmet_deps_[i] = static_cast<uint32_t>(specs_[i].dependencies.size());
    }
  }

  void MakeReady(TxnId id, SimTime now, SchedulerPolicy& policy) {
    ReadyListAdd(id);
    policy.OnReady(id, now);
  }

  void ReadyListAdd(TxnId id) {
    WEBTX_DCHECK(ready_pos_[id] == kNoReadyPos);
    ready_pos_[id] = ready_list_.size();
    ready_list_.push_back(id);
  }

  void ReadyListRemove(TxnId id) {
    const size_t pos = ready_pos_[id];
    WEBTX_DCHECK(pos != kNoReadyPos);
    const TxnId moved = ready_list_.back();
    ready_list_[pos] = moved;
    ready_pos_[moved] = pos;
    ready_list_.pop_back();
    ready_pos_[id] = kNoReadyPos;
  }

  std::vector<TransactionSpec> specs_;
  DependencyGraph graph_;
  WorkflowRegistry registry_;
  SimOptions options_;
  std::vector<TxnId> arrival_order_;

  std::vector<SimTime> true_remaining_;
  std::vector<SimTime> estimated_remaining_;
  std::vector<char> arrived_;
  std::vector<char> finished_;
  std::vector<char> suspended_;
  std::vector<uint32_t> unmet_deps_;
  std::vector<TxnId> ready_list_;
  std::vector<size_t> ready_pos_;
  size_t num_up_ = 1;
};

}  // namespace webtx::testing

#endif  // WEBTX_TESTS_TESTING_REFERENCE_SIMULATOR_H_
