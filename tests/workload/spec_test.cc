#include "workload/spec.h"

#include <gtest/gtest.h>

#include "common/distributions.h"

namespace webtx {
namespace {

TEST(WorkloadSpecTest, DefaultsMatchPaperTableI) {
  const WorkloadSpec spec;
  EXPECT_EQ(spec.num_transactions, 1000u);
  EXPECT_EQ(spec.zipf_alpha, 0.5);
  EXPECT_EQ(spec.min_length, 1u);
  EXPECT_EQ(spec.max_length, 50u);
  EXPECT_EQ(spec.k_max, 3.0);
  EXPECT_EQ(spec.min_weight, 1u);
  EXPECT_EQ(spec.max_weight, 1u);
  EXPECT_EQ(spec.max_workflow_length, 1u);
  EXPECT_EQ(spec.max_workflows_per_txn, 1u);
  EXPECT_TRUE(spec.Validate().ok());
}

TEST(WorkloadSpecTest, MeanLengthMatchesZipf) {
  const WorkloadSpec spec;
  const ZipfDistribution zipf(50, 0.5);
  EXPECT_NEAR(spec.MeanLength(), zipf.Mean(), 1e-12);
}

TEST(WorkloadSpecTest, MeanLengthWithShiftedRange) {
  WorkloadSpec spec;
  spec.min_length = 10;
  spec.max_length = 10;
  EXPECT_NEAR(spec.MeanLength(), 10.0, 1e-12);
}

TEST(WorkloadSpecTest, ArrivalRateIsUtilizationOverMeanLength) {
  WorkloadSpec spec;
  spec.utilization = 0.8;
  EXPECT_NEAR(spec.ArrivalRate(), 0.8 / spec.MeanLength(), 1e-12);
}

TEST(WorkloadSpecTest, ValidationRejectsBadParameters) {
  const auto broken = [](auto mutate) {
    WorkloadSpec spec;
    mutate(spec);
    return spec.Validate();
  };
  EXPECT_FALSE(broken([](auto& s) { s.num_transactions = 0; }).ok());
  EXPECT_FALSE(broken([](auto& s) { s.zipf_alpha = -0.1; }).ok());
  EXPECT_FALSE(broken([](auto& s) { s.min_length = 0; }).ok());
  EXPECT_FALSE(broken([](auto& s) {
                 s.min_length = 10;
                 s.max_length = 5;
               }).ok());
  EXPECT_FALSE(broken([](auto& s) { s.k_max = -1.0; }).ok());
  EXPECT_FALSE(broken([](auto& s) { s.utilization = 0.0; }).ok());
  EXPECT_FALSE(broken([](auto& s) { s.min_weight = 0; }).ok());
  EXPECT_FALSE(broken([](auto& s) {
                 s.min_weight = 5;
                 s.max_weight = 2;
               }).ok());
  EXPECT_FALSE(broken([](auto& s) { s.max_workflow_length = 0; }).ok());
  EXPECT_FALSE(broken([](auto& s) { s.max_workflows_per_txn = 0; }).ok());
}

}  // namespace
}  // namespace webtx
