#include "workload/arrival_process.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace webtx {
namespace {

std::vector<SimTime> Collect(ArrivalProcess& process, Rng& rng, size_t n) {
  std::vector<SimTime> arrivals(n);
  for (auto& a : arrivals) a = process.Next(rng);
  return arrivals;
}

double EmpiricalRate(const std::vector<SimTime>& arrivals) {
  return static_cast<double>(arrivals.size()) / arrivals.back();
}

/// Index of dispersion of counts over fixed windows; 1 for Poisson,
/// larger for bursty processes.
double DispersionIndex(const std::vector<SimTime>& arrivals,
                       double window) {
  const size_t num_windows =
      static_cast<size_t>(arrivals.back() / window);
  std::vector<size_t> counts(num_windows, 0);
  for (const SimTime a : arrivals) {
    const auto w = static_cast<size_t>(a / window);
    if (w < num_windows) ++counts[w];
  }
  double mean = 0.0;
  for (const size_t c : counts) mean += static_cast<double>(c);
  mean /= static_cast<double>(num_windows);
  double var = 0.0;
  for (const size_t c : counts) {
    const double d = static_cast<double>(c) - mean;
    var += d * d;
  }
  var /= static_cast<double>(num_windows - 1);
  return var / mean;
}

TEST(PoissonProcessTest, ArrivalsAreIncreasing) {
  PoissonProcess process(0.5);
  Rng rng(1);
  SimTime prev = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const SimTime next = process.Next(rng);
    EXPECT_GT(next, prev);
    prev = next;
  }
}

TEST(PoissonProcessTest, EmpiricalRateMatches) {
  PoissonProcess process(0.25);
  Rng rng(2);
  const auto arrivals = Collect(process, rng, 50000);
  EXPECT_NEAR(EmpiricalRate(arrivals), 0.25, 0.01);
}

TEST(PoissonProcessTest, ResetRestartsClock) {
  PoissonProcess process(1.0);
  Rng rng(3);
  (void)process.Next(rng);
  (void)process.Next(rng);
  process.Reset();
  Rng rng2(3);
  PoissonProcess fresh(1.0);
  // Same RNG state would reproduce; here we only check the clock reset:
  // the first arrival after Reset is "small" again.
  const SimTime a = process.Next(rng2);
  const SimTime b = fresh.Next(rng2);
  EXPECT_LT(a, 20.0);
  EXPECT_GT(b, 0.0);
}

TEST(OnOffProcessTest, LongRunRatePreservedAcrossBurstiness) {
  for (const double burstiness : {0.2, 0.5, 0.8}) {
    OnOffPoissonProcess process(0.5, burstiness);
    Rng rng(4);
    const auto arrivals = Collect(process, rng, 100000);
    EXPECT_NEAR(EmpiricalRate(arrivals), 0.5, 0.05)
        << "burstiness " << burstiness;
  }
}

TEST(OnOffProcessTest, ArrivalsAreIncreasing) {
  OnOffPoissonProcess process(1.0, 0.7);
  Rng rng(5);
  SimTime prev = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const SimTime next = process.Next(rng);
    EXPECT_GT(next, prev);
    prev = next;
  }
}

TEST(OnOffProcessTest, BurstinessRaisesDispersion) {
  Rng rng(6);
  PoissonProcess plain(1.0);
  const double base = DispersionIndex(Collect(plain, rng, 100000), 100.0);
  EXPECT_NEAR(base, 1.0, 0.25);

  double prev = base;
  for (const double burstiness : {0.5, 0.8}) {
    OnOffPoissonProcess bursty(1.0, burstiness);
    Rng rng2(6);
    const double d =
        DispersionIndex(Collect(bursty, rng2, 100000), 100.0);
    EXPECT_GT(d, prev) << "burstiness " << burstiness;
    prev = d;
  }
}

TEST(OnOffProcessTest, OnFraction) {
  EXPECT_NEAR(OnOffPoissonProcess(1.0, 0.3).on_fraction(), 0.7, 1e-12);
}

TEST(OnOffProcessTest, ResetRestarts) {
  OnOffPoissonProcess process(1.0, 0.5);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) (void)process.Next(rng);
  process.Reset();
  EXPECT_GT(process.Next(rng), 0.0);
}

TEST(MakeArrivalProcessTest, DispatchesOnBurstiness) {
  auto plain = MakeArrivalProcess(1.0, 0.0);
  auto bursty = MakeArrivalProcess(1.0, 0.5);
  EXPECT_NE(dynamic_cast<PoissonProcess*>(plain.get()), nullptr);
  EXPECT_NE(dynamic_cast<OnOffPoissonProcess*>(bursty.get()), nullptr);
}

TEST(OnOffProcessDeathTest, RejectsBadBurstiness) {
  EXPECT_DEATH(OnOffPoissonProcess(1.0, 1.0), "burstiness");
  EXPECT_DEATH(OnOffPoissonProcess(1.0, -0.1), "burstiness");
}

}  // namespace
}  // namespace webtx
