// Live arrival generation (workload/live_arrivals.h): seed
// determinism, batch invariants shared by every shape, the flash-crowd
// density spike, and the trace-replayer adapter's sorting/clamping.

#include "workload/live_arrivals.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace webtx {
namespace {

LiveArrivalOptions ShapeOptions(LiveArrivalShape shape) {
  LiveArrivalOptions options;
  options.shape = shape;
  options.seed = 17;
  options.num_tasks = 400;
  options.rate = 80.0;
  options.max_weight = 4;
  return options;
}

void ExpectBatchInvariants(const std::vector<LiveArrival>& batch,
                           const LiveArrivalOptions& options) {
  ASSERT_EQ(batch.size(), options.num_tasks);
  double prev = 0.0;
  for (const LiveArrival& a : batch) {
    EXPECT_GE(a.arrival, prev);  // non-decreasing submission order
    prev = a.arrival;
    EXPECT_GT(a.duration, 0.0);
    // deadline_slack >= 0 means every deadline covers the work itself.
    EXPECT_GE(a.relative_deadline, a.duration);
    EXPECT_GE(a.weight, 1.0);
    EXPECT_LE(a.weight, static_cast<double>(options.max_weight));
  }
}

TEST(LiveArrivalsTest, EveryShapeIsDeterministicPerSeedAndHonorsInvariants) {
  for (LiveArrivalShape shape :
       {LiveArrivalShape::kPoisson, LiveArrivalShape::kOnOff,
        LiveArrivalShape::kFlashCrowd}) {
    const LiveArrivalOptions options = ShapeOptions(shape);
    const std::vector<LiveArrival> first = GenerateLiveArrivals(options);
    const std::vector<LiveArrival> second = GenerateLiveArrivals(options);
    ExpectBatchInvariants(first, options);
    ASSERT_EQ(first.size(), second.size());
    // Byte-stable, not merely approximately equal: the twin's replay
    // digests hang off this.
    EXPECT_EQ(0, std::memcmp(first.data(), second.data(),
                             first.size() * sizeof(LiveArrival)))
        << LiveArrivalShapeName(shape);

    LiveArrivalOptions reseeded = options;
    reseeded.seed = 18;
    const std::vector<LiveArrival> other = GenerateLiveArrivals(reseeded);
    EXPECT_NE(0, std::memcmp(first.data(), other.data(),
                             first.size() * sizeof(LiveArrival)))
        << LiveArrivalShapeName(shape);
  }
}

TEST(LiveArrivalsTest, ShapeNamesAreStable) {
  EXPECT_STREQ(LiveArrivalShapeName(LiveArrivalShape::kPoisson), "poisson");
  EXPECT_STREQ(LiveArrivalShapeName(LiveArrivalShape::kOnOff), "onoff");
  EXPECT_STREQ(LiveArrivalShapeName(LiveArrivalShape::kFlashCrowd), "flash");
}

TEST(LiveArrivalsTest, FlashCrowdSpikesInsideItsWindow) {
  LiveArrivalOptions options = ShapeOptions(LiveArrivalShape::kFlashCrowd);
  options.num_tasks = 2000;
  options.rate = 50.0;
  options.spike_factor = 8.0;
  options.spike_start = 2.0;
  options.spike_duration = 1.0;
  const std::vector<LiveArrival> batch = GenerateLiveArrivals(options);

  // Compare empirical density inside the spike window against an
  // equally long stretch of base load before it. With an 8x factor the
  // gap is enormous; 3x is a loose, seed-robust bound.
  size_t in_spike = 0;
  size_t before_spike = 0;
  for (const LiveArrival& a : batch) {
    if (a.arrival >= options.spike_start &&
        a.arrival < options.spike_start + options.spike_duration) {
      ++in_spike;
    } else if (a.arrival >= options.spike_start - options.spike_duration &&
               a.arrival < options.spike_start) {
      ++before_spike;
    }
  }
  ASSERT_GT(before_spike, 0u);
  EXPECT_GT(in_spike, 3 * before_spike);
}

TEST(LiveArrivalsTest, TraceAdapterSortsClampsAndDropsDependencies) {
  std::vector<TransactionSpec> specs(3);
  specs[0].id = 7;
  specs[0].arrival = 2.0;
  specs[0].length = 0.5;
  specs[0].deadline = 1.0;  // already missed at arrival: clamp
  specs[1].id = 3;
  specs[1].arrival = 1.0;
  specs[1].length = 0.25;
  specs[1].deadline = 4.0;
  specs[1].weight = 2.5;
  specs[1].dependencies = {7};  // dropped by the adapter
  specs[2].id = 1;
  specs[2].arrival = 2.0;  // ties with specs[0]: input order breaks it
  specs[2].length = 0.125;
  specs[2].deadline = 2.5;

  const std::vector<LiveArrival> live = LiveArrivalsFromTrace(specs);
  ASSERT_EQ(live.size(), 3u);
  // Sorted by arrival, stable on ties: t=1 first, then the two t=2
  // entries in input order (spec 0 before spec 2).
  EXPECT_DOUBLE_EQ(live[0].arrival, 1.0);
  EXPECT_DOUBLE_EQ(live[0].duration, 0.25);
  EXPECT_DOUBLE_EQ(live[0].relative_deadline, 3.0);  // 4.0 - 1.0
  EXPECT_DOUBLE_EQ(live[0].weight, 2.5);
  EXPECT_DOUBLE_EQ(live[1].arrival, 2.0);
  EXPECT_DOUBLE_EQ(live[1].duration, 0.5);
  // The missed deadline clamps to a tiny positive relative deadline —
  // Submit requires > 0 and the validator scores it tardy, not invalid.
  EXPECT_GT(live[1].relative_deadline, 0.0);
  EXPECT_LT(live[1].relative_deadline, 0.01);
  EXPECT_DOUBLE_EQ(live[2].arrival, 2.0);
  EXPECT_DOUBLE_EQ(live[2].duration, 0.125);
  EXPECT_DOUBLE_EQ(live[2].relative_deadline, 0.5);  // 2.5 - 2.0
}

}  // namespace
}  // namespace webtx
