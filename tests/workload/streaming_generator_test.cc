// The streaming generator's contract is BIT-IDENTITY with the batch
// WorkloadGenerator: for any (spec, seed), the sequence of Next() calls
// must reproduce the batch Generate() vector field for field — arrival
// doubles, Zipf lengths, deadlines, weights, estimates, and the exact
// dependency lists of the workflow chain construction. These tests sweep
// the spec matrix (workflows on/off, batched arrivals, burstiness,
// estimate error, both deadline models, utilization extremes) across
// multiple seeds, plus bounded-state and validation checks.

#include "workload/streaming_generator.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "workload/generator.h"
#include "workload/spec.h"

namespace webtx {
namespace {

/// Asserts that streaming (spec, seed) reproduces batch (spec, seed)
/// exactly, field for field.
void ExpectStreamMatchesBatch(const WorkloadSpec& spec, uint64_t seed,
                              const std::string& label) {
  auto batch_gen = WorkloadGenerator::Create(spec);
  ASSERT_TRUE(batch_gen.ok()) << label << ": " << batch_gen.status();
  const std::vector<TransactionSpec> batch =
      batch_gen.ValueOrDie().Generate(seed);

  auto stream_gen = StreamingWorkloadGenerator::Create(spec, seed);
  ASSERT_TRUE(stream_gen.ok()) << label << ": " << stream_gen.status();
  StreamingWorkloadGenerator stream = std::move(stream_gen).ValueOrDie();

  ASSERT_EQ(stream.num_transactions(), batch.size()) << label;
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_FALSE(stream.Done()) << label << " txn " << i;
    ASSERT_EQ(stream.produced(), i);
    const TransactionSpec t = stream.Next();
    const TransactionSpec& b = batch[i];
    ASSERT_EQ(t.id, b.id) << label << " txn " << i;
    // Bit-identity: exact double equality, no tolerance.
    ASSERT_EQ(t.arrival, b.arrival) << label << " txn " << i;
    ASSERT_EQ(t.length, b.length) << label << " txn " << i;
    ASSERT_EQ(t.deadline, b.deadline) << label << " txn " << i;
    ASSERT_EQ(t.weight, b.weight) << label << " txn " << i;
    ASSERT_EQ(t.length_estimate, b.length_estimate) << label << " txn " << i;
    ASSERT_EQ(t.dependencies, b.dependencies) << label << " txn " << i;
  }
  EXPECT_TRUE(stream.Done()) << label;
  EXPECT_EQ(stream.produced(), batch.size());
}

TEST(StreamingGeneratorTest, MatchesBatchOnPaperBaseSpec) {
  WorkloadSpec spec;  // paper defaults: independent txns, no estimates
  for (uint64_t seed : {1ull, 42ull, 2009ull}) {
    ExpectStreamMatchesBatch(spec, seed, "base");
  }
}

TEST(StreamingGeneratorTest, MatchesBatchWithWorkflows) {
  WorkloadSpec spec;
  spec.num_transactions = 400;
  spec.max_workflow_length = 4;
  spec.max_workflows_per_txn = 2;
  for (uint64_t seed : {7ull, 99ull, 31337ull}) {
    ExpectStreamMatchesBatch(spec, seed, "workflows");
  }
}

TEST(StreamingGeneratorTest, MatchesBatchWithUnbatchedWorkflowArrivals) {
  WorkloadSpec spec;
  spec.num_transactions = 400;
  spec.max_workflow_length = 5;
  spec.max_workflows_per_txn = 3;
  spec.batch_workflow_arrivals = false;
  for (uint64_t seed : {3ull, 11ull}) {
    ExpectStreamMatchesBatch(spec, seed, "unbatched-arrivals");
  }
}

TEST(StreamingGeneratorTest, MatchesBatchWithOwnLengthDeadlines) {
  WorkloadSpec spec;
  spec.num_transactions = 300;
  spec.max_workflow_length = 3;
  spec.max_workflows_per_txn = 2;
  spec.deadline_model = DeadlineModel::kOwnLength;
  ExpectStreamMatchesBatch(spec, 5, "own-length");
}

TEST(StreamingGeneratorTest, MatchesBatchWithEstimateError) {
  WorkloadSpec spec;
  spec.num_transactions = 300;
  spec.estimate_error = 0.2;
  ExpectStreamMatchesBatch(spec, 23, "estimates");
  // And combined with workflows (both RNG streams plus the estimate
  // stream all interleaving).
  spec.max_workflow_length = 4;
  spec.max_workflows_per_txn = 2;
  ExpectStreamMatchesBatch(spec, 23, "estimates+workflows");
}

TEST(StreamingGeneratorTest, MatchesBatchWithBurstyArrivals) {
  WorkloadSpec spec;
  spec.num_transactions = 300;
  spec.burstiness = 0.6;
  ExpectStreamMatchesBatch(spec, 77, "bursty");
  spec.max_workflow_length = 3;
  spec.max_workflows_per_txn = 2;
  spec.estimate_error = 0.1;
  ExpectStreamMatchesBatch(spec, 77, "bursty+workflows+estimates");
}

TEST(StreamingGeneratorTest, MatchesBatchAcrossUtilizationExtremes) {
  for (double utilization : {0.1, 0.9, 1.0}) {
    WorkloadSpec spec;
    spec.num_transactions = 250;
    spec.utilization = utilization;
    spec.max_weight = 10;
    ExpectStreamMatchesBatch(spec, 13, "util=" + std::to_string(utilization));
  }
}

TEST(StreamingGeneratorTest, MatchesBatchOnWeightedHeavyTailSpec) {
  // The sharded differential suite's workload shape: weights 1-10,
  // estimate error, dense workflows — the spec the huge-structures
  // matrix runs under.
  WorkloadSpec spec;
  spec.num_transactions = 500;
  spec.utilization = 0.9;
  spec.max_weight = 10;
  spec.estimate_error = 0.2;
  spec.max_workflow_length = 4;
  spec.max_workflows_per_txn = 2;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    ExpectStreamMatchesBatch(spec, seed, "heavy");
  }
}

TEST(StreamingGeneratorTest, OpenChainStateStaysBounded) {
  // The whole point of streaming: generator-side state is O(open
  // chains), which is bounded by max_workflows_per_txn * (chain length)
  // growth per step and closes continuously — NOT O(n). Pin a loose
  // bound that a population-proportional implementation would smash.
  WorkloadSpec spec;
  spec.num_transactions = 5000;
  spec.max_workflow_length = 6;
  spec.max_workflows_per_txn = 3;
  auto gen = StreamingWorkloadGenerator::Create(spec, 9);
  ASSERT_TRUE(gen.ok()) << gen.status();
  StreamingWorkloadGenerator stream = std::move(gen).ValueOrDie();
  size_t max_open = 0;
  while (!stream.Done()) {
    (void)stream.Next();
    max_open = std::max(max_open, stream.open_chains());
  }
  EXPECT_LE(max_open, 64u) << "open-chain state grew with the population";
}

TEST(StreamingGeneratorTest, RejectsInvalidSpec) {
  WorkloadSpec spec;
  spec.utilization = -1.0;
  auto gen = StreamingWorkloadGenerator::Create(spec, 1);
  EXPECT_FALSE(gen.ok());
}

}  // namespace
}  // namespace webtx
