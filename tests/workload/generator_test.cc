#include "workload/generator.h"

#include <cmath>

#include <gtest/gtest.h>

#include "txn/dependency_graph.h"
#include "txn/workflow.h"

namespace webtx {
namespace {

std::vector<TransactionSpec> Generate(const WorkloadSpec& spec,
                                      uint64_t seed) {
  auto generator = WorkloadGenerator::Create(spec);
  EXPECT_TRUE(generator.ok()) << generator.status();
  return generator.ValueOrDie().Generate(seed);
}

TEST(GeneratorTest, RejectsInvalidSpec) {
  WorkloadSpec spec;
  spec.num_transactions = 0;
  EXPECT_FALSE(WorkloadGenerator::Create(spec).ok());
}

TEST(GeneratorTest, ProducesRequestedCount) {
  WorkloadSpec spec;
  spec.num_transactions = 250;
  EXPECT_EQ(Generate(spec, 1).size(), 250u);
}

TEST(GeneratorTest, IdsAreDenseAndOrdered) {
  const auto txns = Generate(WorkloadSpec{}, 2);
  for (size_t i = 0; i < txns.size(); ++i) {
    EXPECT_EQ(txns[i].id, static_cast<TxnId>(i));
  }
}

TEST(GeneratorTest, LengthsAreIntegersInRange) {
  const auto txns = Generate(WorkloadSpec{}, 3);
  for (const auto& t : txns) {
    EXPECT_GE(t.length, 1.0);
    EXPECT_LE(t.length, 50.0);
    EXPECT_EQ(t.length, std::floor(t.length)) << "integer time units";
  }
}

TEST(GeneratorTest, ArrivalsAreNonDecreasing) {
  const auto txns = Generate(WorkloadSpec{}, 4);
  for (size_t i = 1; i < txns.size(); ++i) {
    EXPECT_GE(txns[i].arrival, txns[i - 1].arrival);
  }
}

TEST(GeneratorTest, DeadlineFormulaBounds) {
  // d_i = a_i + l_i + k_i * l_i with k_i in [0, k_max].
  WorkloadSpec spec;
  spec.k_max = 2.0;
  const auto txns = Generate(spec, 5);
  for (const auto& t : txns) {
    EXPECT_GE(t.deadline, t.arrival + t.length - 1e-9);
    EXPECT_LE(t.deadline, t.arrival + t.length * (1.0 + spec.k_max) + 1e-9);
  }
}

TEST(GeneratorTest, ZeroKmaxMeansZeroInitialSlack) {
  WorkloadSpec spec;
  spec.k_max = 0.0;
  const auto txns = Generate(spec, 6);
  for (const auto& t : txns) {
    EXPECT_NEAR(t.deadline, t.arrival + t.length, 1e-9);
  }
}

TEST(GeneratorTest, WeightsAreIntegersInRange) {
  WorkloadSpec spec;
  spec.min_weight = 1;
  spec.max_weight = 10;
  const auto txns = Generate(spec, 7);
  bool saw_above_five = false;
  for (const auto& t : txns) {
    EXPECT_GE(t.weight, 1.0);
    EXPECT_LE(t.weight, 10.0);
    EXPECT_EQ(t.weight, std::floor(t.weight));
    saw_above_five |= t.weight > 5.0;
  }
  EXPECT_TRUE(saw_above_five);
}

TEST(GeneratorTest, DefaultSpecHasNoDependencies) {
  const auto txns = Generate(WorkloadSpec{}, 8);
  for (const auto& t : txns) EXPECT_TRUE(t.dependencies.empty());
}

TEST(GeneratorTest, DeterministicPerSeed) {
  WorkloadSpec spec;
  spec.max_workflow_length = 5;
  spec.max_workflows_per_txn = 3;
  spec.max_weight = 10;
  const auto a = Generate(spec, 42);
  const auto b = Generate(spec, 42);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].length, b[i].length);
    EXPECT_EQ(a[i].deadline, b[i].deadline);
    EXPECT_EQ(a[i].weight, b[i].weight);
    EXPECT_EQ(a[i].dependencies, b[i].dependencies);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const auto a = Generate(WorkloadSpec{}, 1);
  const auto b = Generate(WorkloadSpec{}, 2);
  bool any_diff = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].length != b[i].length || a[i].arrival != b[i].arrival;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, EmpiricalUtilizationTracksTarget) {
  WorkloadSpec spec;
  spec.num_transactions = 20000;
  spec.utilization = 0.5;
  const auto txns = Generate(spec, 9);
  double total_work = 0.0;
  for (const auto& t : txns) total_work += t.length;
  const double horizon = txns.back().arrival;
  EXPECT_NEAR(total_work / horizon, 0.5, 0.05);
}

TEST(GeneratorTest, WorkflowDependenciesFormDag) {
  WorkloadSpec spec;
  spec.max_workflow_length = 8;
  spec.max_workflows_per_txn = 4;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const auto txns = Generate(spec, seed);
    auto graph = DependencyGraph::Build(txns);
    ASSERT_TRUE(graph.ok()) << "seed " << seed << ": " << graph.status();
    EXPECT_GT(graph.ValueOrDie().num_edges(), 0u);
  }
}

TEST(GeneratorTest, DependenciesPointBackwards) {
  WorkloadSpec spec;
  spec.max_workflow_length = 5;
  const auto txns = Generate(spec, 10);
  for (const auto& t : txns) {
    for (const TxnId dep : t.dependencies) {
      EXPECT_LT(dep, t.id);
      // Predecessors arrive no later (generated in arrival order).
      EXPECT_LE(txns[dep].arrival, t.arrival);
    }
  }
}

TEST(GeneratorTest, DependencyCountBoundedByChainsPerTxn) {
  WorkloadSpec spec;
  spec.max_workflow_length = 6;
  spec.max_workflows_per_txn = 3;
  const auto txns = Generate(spec, 11);
  for (const auto& t : txns) {
    EXPECT_LE(t.dependencies.size(), 3u);
  }
}

TEST(GeneratorTest, ChainLengthOneKeepsTransactionsIndependent) {
  WorkloadSpec spec;
  spec.max_workflow_length = 1;
  spec.max_workflows_per_txn = 5;
  const auto txns = Generate(spec, 12);
  for (const auto& t : txns) EXPECT_TRUE(t.dependencies.empty());
}

TEST(GeneratorTest, WorkflowsHaveBoundedDepthForChains) {
  // With one chain per transaction, derived workflows are exactly the
  // generated chains: their size cannot exceed max_workflow_length.
  WorkloadSpec spec;
  spec.max_workflow_length = 5;
  spec.max_workflows_per_txn = 1;
  const auto txns = Generate(spec, 13);
  auto graph = DependencyGraph::Build(txns);
  ASSERT_TRUE(graph.ok());
  const auto registry = WorkflowRegistry::Build(graph.ValueOrDie());
  EXPECT_LE(registry.max_workflow_size(), 5u);
  EXPECT_GT(registry.max_workflow_size(), 1u);
}

TEST(GeneratorTest, EstimateErrorBoundsAndIndependence) {
  WorkloadSpec spec;
  spec.estimate_error = 0.5;
  const auto noisy = Generate(spec, 30);
  bool any_off = false;
  for (const auto& t : noisy) {
    ASSERT_GT(t.length_estimate, 0.0);
    EXPECT_GE(t.length_estimate, std::min(0.1, t.length * 0.5) - 1e-9);
    EXPECT_LE(t.length_estimate, t.length * 1.5 + 1e-9);
    any_off |= t.length_estimate != t.length;
  }
  EXPECT_TRUE(any_off);

  // The base workload is bit-identical with estimation off.
  WorkloadSpec exact = spec;
  exact.estimate_error = 0.0;
  const auto clean = Generate(exact, 30);
  ASSERT_EQ(clean.size(), noisy.size());
  for (size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean[i].length, noisy[i].length);
    EXPECT_EQ(clean[i].arrival, noisy[i].arrival);
    EXPECT_EQ(clean[i].deadline, noisy[i].deadline);
    EXPECT_EQ(clean[i].length_estimate, 0.0);
  }
}

TEST(GeneratorTest, EstimateErrorValidation) {
  WorkloadSpec spec;
  spec.estimate_error = 1.0;
  EXPECT_FALSE(WorkloadGenerator::Create(spec).ok());
  spec.estimate_error = -0.1;
  EXPECT_FALSE(WorkloadGenerator::Create(spec).ok());
}

TEST(GeneratorTest, BatchArrivalsShareThePageRequestInstant) {
  // With one chain per transaction and batch arrivals (default), every
  // member of a chain arrives when the chain's first member arrives.
  WorkloadSpec spec;
  spec.max_workflow_length = 5;
  const auto txns = Generate(spec, 20);
  for (const auto& t : txns) {
    for (const TxnId dep : t.dependencies) {
      EXPECT_EQ(t.arrival, txns[dep].arrival)
          << "T" << t.id << " and its predecessor T" << dep;
    }
  }
}

TEST(GeneratorTest, UnbatchedArrivalsKeepPoissonSpacing) {
  WorkloadSpec spec;
  spec.max_workflow_length = 5;
  spec.batch_workflow_arrivals = false;
  const auto txns = Generate(spec, 20);
  size_t strictly_later = 0;
  for (const auto& t : txns) {
    for (const TxnId dep : t.dependencies) {
      EXPECT_GE(t.arrival, txns[dep].arrival);
      if (t.arrival > txns[dep].arrival) ++strictly_later;
    }
  }
  EXPECT_GT(strictly_later, 0u);
}

TEST(GeneratorTest, PathAwareDeadlinesAreChainFeasible) {
  // Default deadline model: d_i >= earliest possible finish of T_i, so a
  // lone chain on an idle server can always meet every deadline.
  WorkloadSpec spec;
  spec.max_workflow_length = 8;
  const auto txns = Generate(spec, 21);
  // Recompute earliest finishes by dynamic programming over dependencies
  // (ids are topologically ordered by construction).
  std::vector<double> earliest(txns.size());
  for (const auto& t : txns) {
    double start = t.arrival;
    for (const TxnId dep : t.dependencies) {
      start = std::max(start, earliest[dep]);
    }
    earliest[t.id] = start + t.length;
    EXPECT_GE(t.deadline, earliest[t.id] - 1e-9) << "T" << t.id;
    EXPECT_LE(t.deadline,
              earliest[t.id] + spec.k_max * t.length + 1e-9);
  }
}

TEST(GeneratorTest, OwnLengthDeadlinesFollowLiteralTableI) {
  WorkloadSpec spec;
  spec.max_workflow_length = 8;
  spec.deadline_model = DeadlineModel::kOwnLength;
  const auto txns = Generate(spec, 22);
  for (const auto& t : txns) {
    EXPECT_GE(t.deadline, t.arrival + t.length - 1e-9);
    EXPECT_LE(t.deadline,
              t.arrival + t.length * (1.0 + spec.k_max) + 1e-9);
  }
}

TEST(GeneratorTest, DeadlineModelsAgreeForIndependentTransactions) {
  WorkloadSpec path_spec;  // defaults: independent
  WorkloadSpec own_spec;
  own_spec.deadline_model = DeadlineModel::kOwnLength;
  const auto a = Generate(path_spec, 23);
  const auto b = Generate(own_spec, 23);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].deadline, b[i].deadline);
  }
}

TEST(GeneratorTest, PrecedenceDeadlineConflictsExist) {
  // The Sec. II-B conflict: some dependent is due before a predecessor.
  WorkloadSpec spec;
  spec.max_workflow_length = 5;
  const auto txns = Generate(spec, 24);
  size_t conflicts = 0;
  for (const auto& t : txns) {
    for (const TxnId dep : t.dependencies) {
      if (t.deadline < txns[dep].deadline) ++conflicts;
    }
  }
  EXPECT_GT(conflicts, 0u);
}

TEST(GeneratorTest, ZipfSkewShowsInLengthHistogram) {
  WorkloadSpec spec;
  spec.num_transactions = 20000;
  const auto txns = Generate(spec, 14);
  size_t short_count = 0;
  size_t long_count = 0;
  for (const auto& t : txns) {
    if (t.length <= 25.0) ++short_count;
    if (t.length > 25.0) ++long_count;
  }
  EXPECT_GT(short_count, long_count);
}

}  // namespace
}  // namespace webtx
