#include <gtest/gtest.h>

#include "sched/policies/asets.h"
#include "sched/policies/asets_star.h"
#include "sched/policies/single_queue_policies.h"
#include "sched/policy_factory.h"
#include "sim/simulator.h"
#include "testing/fake_view.h"
#include "workload/generator.h"

namespace webtx {
namespace {

using testing::Txn;

RunResult RunServers(std::vector<TransactionSpec> txns,
                     SchedulerPolicy& policy, size_t servers,
                     SimTime switch_cost = 0.0) {
  SimOptions options;
  options.num_servers = servers;
  options.context_switch_cost = switch_cost;
  auto sim = Simulator::Create(std::move(txns), options);
  EXPECT_TRUE(sim.ok()) << sim.status();
  return sim.ValueOrDie().Run(policy);
}

TEST(MultiServerTest, TwoIndependentTransactionsRunInParallel) {
  FcfsPolicy policy;
  const RunResult r =
      RunServers({Txn(0, 0, 5, 100), Txn(1, 0, 7, 100)}, policy, 2);
  EXPECT_EQ(r.outcomes[0].finish, 5.0);
  EXPECT_EQ(r.outcomes[1].finish, 7.0);
  EXPECT_EQ(r.makespan, 7.0);
}

TEST(MultiServerTest, MoreServersNeverHurtMakespanForFcfs) {
  WorkloadSpec spec;
  spec.num_transactions = 200;
  spec.utilization = 2.0;  // overloaded for one server
  auto generator = WorkloadGenerator::Create(spec);
  ASSERT_TRUE(generator.ok());
  const auto txns = generator.ValueOrDie().Generate(3);
  FcfsPolicy policy;
  double prev = RunServers(txns, policy, 1).makespan;
  for (const size_t servers : {2u, 4u}) {
    const double makespan = RunServers(txns, policy, servers).makespan;
    EXPECT_LE(makespan, prev + 1e-9) << servers;
    prev = makespan;
  }
}

TEST(MultiServerTest, ChainCannotParallelize) {
  // A pure chain is inherently serial: extra servers change nothing.
  FcfsPolicy policy;
  const std::vector<TransactionSpec> chain = {
      Txn(0, 0, 3, 100), Txn(1, 0, 4, 100, 1.0, {0}),
      Txn(2, 0, 5, 100, 1.0, {1})};
  const RunResult one = RunServers(chain, policy, 1);
  const RunResult four = RunServers(chain, policy, 4);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(one.outcomes[i].finish, four.outcomes[i].finish);
  }
  EXPECT_EQ(four.makespan, 12.0);
}

TEST(MultiServerTest, MakespanBoundedByWorkOverServers) {
  // Batch release: makespan in [total/k, total] for any busy policy.
  std::vector<TransactionSpec> txns;
  double total = 0.0;
  for (TxnId i = 0; i < 24; ++i) {
    const double len = 1.0 + (i * 5) % 7;
    txns.push_back(Txn(i, 0.0, len, 50.0));
    total += len;
  }
  for (const char* name : {"FCFS", "EDF", "SRPT", "HDF", "ASETS", "ASETS*"}) {
    auto policy = CreatePolicy(name);
    ASSERT_TRUE(policy.ok());
    for (const size_t servers : {2u, 3u, 8u}) {
      const RunResult r =
          RunServers(txns, *policy.ValueOrDie(), servers);
      EXPECT_GE(r.makespan, total / static_cast<double>(servers) - 1e-9)
          << name << " k=" << servers;
      EXPECT_LE(r.makespan, total + 1e-9) << name << " k=" << servers;
    }
  }
}

TEST(MultiServerTest, SrptParallelBatchIsWorkConservingAndFaster) {
  std::vector<TransactionSpec> txns;
  for (TxnId i = 0; i < 10; ++i) {
    txns.push_back(Txn(i, 0.0, 4.0, 8.0));
  }
  SrptPolicy policy;
  const RunResult two = RunServers(txns, policy, 2);
  // 10 jobs of length 4 on 2 servers: waves at 4, 8, ..., 20.
  EXPECT_EQ(two.makespan, 20.0);
  const RunResult one = RunServers(txns, policy, 1);
  EXPECT_EQ(one.makespan, 40.0);
  EXPECT_LT(two.avg_tardiness, one.avg_tardiness);
}

TEST(MultiServerTest, AsetsStarRunsTwoHeadsOfSameWorkflowConcurrently) {
  // Diamond: T0 and T1 are both ready members of the workflow rooted at
  // T2; with two servers both should run at once.
  AsetsStarPolicy policy;
  const RunResult r = RunServers(
      {Txn(0, 0, 6, 20), Txn(1, 0, 6, 20), Txn(2, 0, 2, 10, 1.0, {0, 1})},
      policy, 2);
  EXPECT_EQ(r.outcomes[0].finish, 6.0);
  EXPECT_EQ(r.outcomes[1].finish, 6.0);
  EXPECT_EQ(r.outcomes[2].finish, 8.0);
}

TEST(MultiServerTest, ArrivalPreemptsOnlyOneServer) {
  SrptPolicy policy;
  // Two long jobs running; a short one arrives and preempts exactly one.
  const RunResult r = RunServers(
      {Txn(0, 0, 10, 100), Txn(1, 0, 12, 100), Txn(2, 2, 1, 100)}, policy,
      2);
  EXPECT_EQ(r.outcomes[2].finish, 3.0);
  EXPECT_EQ(r.num_preemptions, 1u);
  // T0 runs untouched [0,10]; T1 runs [0,2], yields to T2 [2,3], resumes
  // [3,13].
  EXPECT_EQ(r.outcomes[0].finish, 10.0);
  EXPECT_EQ(r.outcomes[1].finish, 13.0);
  EXPECT_EQ(r.makespan, 13.0);
}

TEST(MultiServerTest, ContinuingTransactionsStayOnTheirServers) {
  // With zero switch cost this is invisible; with a cost, a continuing
  // transaction must not be charged.
  FcfsPolicy policy;
  const RunResult r = RunServers(
      {Txn(0, 0, 10, 100), Txn(1, 2, 3, 100)}, policy, 2, /*cost=*/0.5);
  // T0 dispatched at 0.5 (cold), runs to 10.5 without re-charges even
  // though T1's arrival and completion are scheduling points.
  EXPECT_EQ(r.outcomes[0].finish, 10.5);
  EXPECT_EQ(r.outcomes[1].finish, 5.5);  // dispatched at 2 + 0.5
}

TEST(MultiServerTest, AllPoliciesHandleFourServers) {
  WorkloadSpec spec;
  spec.num_transactions = 200;
  spec.utilization = 3.0;
  spec.max_weight = 10;
  spec.max_workflow_length = 4;
  auto generator = WorkloadGenerator::Create(spec);
  ASSERT_TRUE(generator.ok());
  const auto txns = generator.ValueOrDie().Generate(9);
  for (const char* name :
       {"FCFS", "EDF", "SRPT", "LS", "HDF", "HVF", "MIX", "ASETS", "Ready",
        "ASETS*", "ASETS*-BA(time=0.01)"}) {
    auto policy = CreatePolicy(name);
    ASSERT_TRUE(policy.ok());
    const RunResult r = RunServers(txns, *policy.ValueOrDie(), 4);
    // Everything finishes, feasibly.
    for (size_t i = 0; i < txns.size(); ++i) {
      EXPECT_GE(r.outcomes[i].finish,
                txns[i].arrival + txns[i].length - 1e-6)
          << name;
      for (const TxnId dep : txns[i].dependencies) {
        EXPECT_GE(r.outcomes[i].finish,
                  r.outcomes[dep].finish + txns[i].length - 1e-6)
            << name;
      }
    }
  }
}

TEST(MultiServerTest, SingleServerOptionMatchesDefault) {
  WorkloadSpec spec;
  spec.num_transactions = 150;
  spec.utilization = 0.8;
  auto generator = WorkloadGenerator::Create(spec);
  ASSERT_TRUE(generator.ok());
  const auto txns = generator.ValueOrDie().Generate(5);
  AsetsPolicy policy;
  auto sim_default = Simulator::Create(txns);
  ASSERT_TRUE(sim_default.ok());
  const RunResult a = sim_default.ValueOrDie().Run(policy);
  const RunResult b = RunServers(txns, policy, 1);
  for (size_t i = 0; i < txns.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].finish, b.outcomes[i].finish);
  }
}

}  // namespace
}  // namespace webtx
