#include "sim/schedule_validator.h"

#include <gtest/gtest.h>

#include "sched/policy_factory.h"
#include "sim/simulator.h"
#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::Txn;

RunResult RunRecorded(const std::vector<TransactionSpec>& txns,
                      const std::string& policy_name, size_t servers = 1) {
  SimOptions options;
  options.record_schedule = true;
  options.num_servers = servers;
  auto sim = Simulator::Create(txns, options);
  EXPECT_TRUE(sim.ok()) << sim.status();
  auto policy = CreatePolicy(policy_name);
  EXPECT_TRUE(policy.ok());
  return sim.ValueOrDie().Run(*policy.ValueOrDie());
}

TEST(ScheduleValidatorTest, AcceptsARealSchedule) {
  const std::vector<TransactionSpec> txns = {
      Txn(0, 0, 4, 10), Txn(1, 1, 2, 5), Txn(2, 0, 3, 20, 1.0, {0})};
  const RunResult r = RunRecorded(txns, "SRPT");
  EXPECT_TRUE(ValidateSchedule(txns, r, 1).ok());
  EXPECT_FALSE(r.schedule.empty());
}

TEST(ScheduleValidatorTest, ScheduleIsOffByDefault) {
  const std::vector<TransactionSpec> txns = {Txn(0, 0, 1, 5)};
  auto sim = Simulator::Create(txns);
  ASSERT_TRUE(sim.ok());
  auto policy = CreatePolicy("EDF");
  ASSERT_TRUE(policy.ok());
  EXPECT_TRUE(sim.ValueOrDie().Run(*policy.ValueOrDie()).schedule.empty());
}

TEST(ScheduleValidatorTest, SegmentsCoverPreemptions) {
  // SRPT preempts T0 for T1: T0 must appear as two segments.
  const std::vector<TransactionSpec> txns = {Txn(0, 0, 10, 100),
                                             Txn(1, 3, 2, 100)};
  const RunResult r = RunRecorded(txns, "SRPT");
  size_t t0_segments = 0;
  for (const auto& s : r.schedule) {
    if (s.txn == 0) ++t0_segments;
  }
  EXPECT_EQ(t0_segments, 2u);
  EXPECT_TRUE(ValidateSchedule(txns, r, 1).ok());
}

TEST(ScheduleValidatorTest, RequiresOutcomes) {
  const std::vector<TransactionSpec> txns = {Txn(0, 0, 1, 5)};
  SimOptions options;
  options.record_schedule = true;
  options.record_outcomes = false;
  auto sim = Simulator::Create(txns, options);
  ASSERT_TRUE(sim.ok());
  auto policy = CreatePolicy("EDF");
  ASSERT_TRUE(policy.ok());
  const RunResult r = sim.ValueOrDie().Run(*policy.ValueOrDie());
  EXPECT_FALSE(ValidateSchedule(txns, r, 1).ok());
}

class CorruptionTest : public ::testing::Test {
 protected:
  CorruptionTest()
      : txns_({Txn(0, 0, 4, 10), Txn(1, 1, 2, 5),
               Txn(2, 0, 3, 20, 1.0, {0})}),
        result_(RunRecorded(txns_, "EDF")) {}

  std::vector<TransactionSpec> txns_;
  RunResult result_;
};

TEST_F(CorruptionTest, DetectsBadServerIndex) {
  result_.schedule[0].server = 7;
  EXPECT_FALSE(ValidateSchedule(txns_, result_, 1).ok());
}

TEST_F(CorruptionTest, DetectsEmptySegment) {
  result_.schedule[0].end = result_.schedule[0].start;
  EXPECT_FALSE(ValidateSchedule(txns_, result_, 1).ok());
}

TEST_F(CorruptionTest, DetectsRunBeforeArrival) {
  RunResult r = result_;
  for (auto& s : r.schedule) {
    if (s.txn == 1) {
      s.start -= 1.0;  // T1 arrives at 1; pull its start before that
      break;
    }
  }
  EXPECT_FALSE(ValidateSchedule(txns_, r, 1).ok());
}

TEST_F(CorruptionTest, DetectsServerOverlap) {
  RunResult r = result_;
  ASSERT_GE(r.schedule.size(), 2u);
  r.schedule[1].start = r.schedule[0].start + 0.1;
  EXPECT_FALSE(ValidateSchedule(txns_, r, 1).ok());
}

TEST_F(CorruptionTest, DetectsLostWork) {
  RunResult r = result_;
  r.schedule.pop_back();
  EXPECT_FALSE(ValidateSchedule(txns_, r, 1).ok());
}

TEST_F(CorruptionTest, DetectsFinishMismatch) {
  RunResult r = result_;
  r.outcomes[0].finish += 5.0;
  EXPECT_FALSE(ValidateSchedule(txns_, r, 1).ok());
}

TEST_F(CorruptionTest, DetectsPrecedenceViolation) {
  RunResult r = result_;
  // Claim T0 finished much later; T2 (which depends on it) now appears
  // to have started too early.
  r.outcomes[0].finish += 3.0;
  for (auto& s : r.schedule) {
    if (s.txn == 0 && TimeEq(s.end, result_.outcomes[0].finish)) {
      s.end += 3.0;
      s.start += 3.0;
    }
  }
  EXPECT_FALSE(ValidateSchedule(txns_, r, 1).ok());
}

TEST_F(CorruptionTest, DetectsExecutionDuringAnOutage) {
  // The recorded schedule is fault-free; claiming server 0 was down
  // while its first segment ran must be flagged.
  ValidationOptions options;
  options.outages.push_back(OutageWindow{
      0, result_.schedule[0].start, result_.schedule[0].end});
  EXPECT_FALSE(ValidateSchedule(txns_, result_, options).ok());
  // A window on another (hypothetical) server is harmless.
  options.num_servers = 2;
  options.outages[0].server = 1;
  EXPECT_TRUE(ValidateSchedule(txns_, result_, options).ok());
}

TEST_F(CorruptionTest, DetectsAbortedWorkCountedTowardCompletion) {
  RunResult r = result_;
  // Claim T0 aborted once: its recorded segments now belong to the
  // discarded attempt 0, so the "final attempt" executed nothing.
  r.outcomes[0].aborts = 1;
  EXPECT_FALSE(ValidateSchedule(txns_, r, 1).ok());
}

TEST_F(CorruptionTest, DetectsAttemptNumbersBeyondRecordedAborts) {
  RunResult r = result_;
  for (auto& s : r.schedule) {
    if (s.txn == 0) s.attempt = 2;  // outcomes[0].aborts is still 0
  }
  EXPECT_FALSE(ValidateSchedule(txns_, r, 1).ok());
}

TEST_F(CorruptionTest, DetectsDropWithoutRecordedCause) {
  RunResult r = result_;
  // Rewriting a completed fate breaks the counter partition: every
  // drop must carry its cause and be counted exactly once.
  r.outcomes[1].fate = TxnFate::kDroppedRetries;
  EXPECT_FALSE(ValidateSchedule(txns_, r, 1).ok());
}

TEST_F(CorruptionTest, DetectsCounterMismatch) {
  RunResult r = result_;
  r.num_completed -= 1;
  r.num_shed += 1;
  EXPECT_FALSE(ValidateSchedule(txns_, r, 1).ok());
}

TEST_F(CorruptionTest, DetectsDropNotCountedAsMiss) {
  RunResult r = result_;
  // A shed transaction that still claims to have met its deadline.
  r.outcomes[1].fate = TxnFate::kShedAdmission;
  r.outcomes[1].missed_deadline = false;
  r.num_completed -= 1;
  r.num_shed += 1;
  EXPECT_FALSE(ValidateSchedule(txns_, r, 1).ok());
}

// The validator is a debugging tool first: every rejection must name
// the offending event precisely enough to find it in a schedule dump —
// transaction id, server, and timestamp, not just the rule that fired.

TEST_F(CorruptionTest, DiagnosticsNameTheOffendingSegment) {
  RunResult r = result_;
  r.schedule[0].server = 7;
  const Status s = ValidateSchedule(txns_, r, 1);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("unknown server"), std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("T" + std::to_string(r.schedule[0].txn)),
            std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("server7"), std::string::npos) << s.message();
}

TEST_F(CorruptionTest, DiagnosticsCarryTheViolationTimestamp) {
  RunResult r = result_;
  for (auto& seg : r.schedule) {
    if (seg.txn == 1) {
      seg.start -= 1.0;  // T1 arrives at 1
      break;
    }
  }
  const Status s = ValidateSchedule(txns_, r, 1);
  ASSERT_FALSE(s.ok());
  // Names the arrival it ran ahead of, and the transaction + server.
  EXPECT_NE(s.message().find("t=1.0"), std::string::npos) << s.message();
  EXPECT_NE(s.message().find("T1@server0"), std::string::npos)
      << s.message();
}

TEST_F(CorruptionTest, OverlapDiagnosticsNameBothSegments) {
  RunResult r = result_;
  ASSERT_GE(r.schedule.size(), 2u);
  // Stretch segment 0 into segment 1 (moving segment 1's start back
  // would trip the runs-before-arrival check first, not the overlap).
  r.schedule[0].end = r.schedule[1].start + 0.5;
  const Status s = ValidateSchedule(txns_, r, 1);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("overlap"), std::string::npos) << s.message();
  // Both colliding segments appear, each with txn, server, and window.
  EXPECT_NE(s.message().find("T" + std::to_string(r.schedule[0].txn)),
            std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("T" + std::to_string(r.schedule[1].txn)),
            std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("@server0"), std::string::npos) << s.message();
}

TEST_F(CorruptionTest, CrashWindowDiagnosticsNameServerAndWindow) {
  ValidationOptions options;
  options.crashes.push_back(OutageWindow{
      0, result_.schedule[0].start, result_.schedule[0].end});
  const Status s = ValidateSchedule(txns_, result_, options);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("crashed server"), std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("repair@server0"), std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find("T" + std::to_string(result_.schedule[0].txn)),
            std::string::npos)
      << s.message();
}

TEST_F(CorruptionTest, CounterDiagnosticsNameCounterAndBothValues) {
  RunResult r = result_;
  r.num_completed -= 1;
  r.num_shed += 1;
  const Status s = ValidateSchedule(txns_, r, 1);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("RunResult.num_"), std::string::npos)
      << s.message();
  // Both the claimed and the recomputed value are in the message.
  EXPECT_NE(s.message().find(std::to_string(r.num_completed)),
            std::string::npos)
      << s.message();
  EXPECT_NE(s.message().find(std::to_string(r.num_completed + 1)),
            std::string::npos)
      << s.message();
}

TEST(ScheduleValidatorTest, MultiServerSchedulesValidate) {
  const std::vector<TransactionSpec> txns = {
      Txn(0, 0, 5, 10),  Txn(1, 0, 7, 12), Txn(2, 1, 2, 6),
      Txn(3, 2, 4, 20, 1.0, {0}), Txn(4, 2, 1, 9)};
  for (const char* name : {"FCFS", "EDF", "SRPT", "ASETS", "ASETS*"}) {
    for (const size_t servers : {1u, 2u, 3u}) {
      const RunResult r = RunRecorded(txns, name, servers);
      EXPECT_TRUE(ValidateSchedule(txns, r, servers).ok())
          << name << " k=" << servers << ": "
          << ValidateSchedule(txns, r, servers).ToString();
    }
  }
}

}  // namespace
}  // namespace webtx
