// Allocation accounting for the hot path. This binary replaces the
// global operator new/delete with counting versions (which is why it is
// its own test executable) and pins two contracts:
//
//  1. Re-binding ASETS* to a view it has seen before performs ZERO heap
//     allocations: states, the flat live-member arena, the dirty set,
//     and all three priority queues reuse their capacity.
//  2. The simulator's event loop proper is allocation-free: once a
//     Simulator + policy pair is warm, the number of allocations in a
//     run does not depend on how many events the run processes. Two
//     workloads with identical shape (n, servers, record options) but
//     wildly different event counts (sparse vs. saturated abort/retry
//     process) must allocate EXACTLY the same number of times — any
//     per-event allocation shows up as a difference proportional to the
//     event-count gap.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.h"
#include "rt/twin.h"
#include "sched/indexed_priority_queue.h"
#include "sched/lazy_delete_heap.h"
#include "sched/policies/asets_star.h"
#include "sim/fault_plan.h"
#include "sim/simulator.h"
#include "testing/fake_view.h"
#include "workload/generator.h"
#include "workload/live_arrivals.h"

// Sanitizer builds own the global allocator (ASan pairs its intercepted
// operator new with its own free and flags the malloc-based replacement
// below as an alloc-dealloc mismatch), so the counting machinery is
// compiled out and the tests skip — the contract is pinned by the plain
// preset, which CI always runs.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define WEBTX_ALLOC_COUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define WEBTX_ALLOC_COUNTING 0
#endif
#endif
#ifndef WEBTX_ALLOC_COUNTING
#define WEBTX_ALLOC_COUNTING 1
#endif

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

#if WEBTX_ALLOC_COUNTING

// GCC's -Wmismatched-new-delete sees `free` inside these replacements at
// caller inline sites and flags new/free pairing; pairing free with the
// malloc in the matching replacement below is exactly the design.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wpragmas"
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#pragma GCC diagnostic pop

#endif  // WEBTX_ALLOC_COUNTING

namespace webtx {
namespace {

uint64_t AllocationCount() {
  return g_allocations.load(std::memory_order_relaxed);
}

std::vector<TransactionSpec> WorkflowWorkload(uint64_t seed) {
  WorkloadSpec spec;
  spec.num_transactions = 60;
  spec.utilization = 0.9;
  spec.max_weight = 10;
  spec.max_workflow_length = 4;
  spec.max_workflows_per_txn = 2;
  auto generator = WorkloadGenerator::Create(spec);
  WEBTX_CHECK(generator.ok()) << generator.status();
  return generator.ValueOrDie().Generate(seed);
}

TEST(AllocationTest, RebindAllocatesNothing) {
  if (!WEBTX_ALLOC_COUNTING) {
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
  }
  testing::FakeView view(WorkflowWorkload(5));
  AsetsStarPolicy policy;
  policy.Bind(view);  // cold: sizes every container
  // Exercise the policy so any lazily-grown structure reaches capacity.
  view.ArriveAll();
  for (TxnId id = 0; id < 60; ++id) policy.OnArrival(id, 0.0);
  (void)policy.PickNext(0.0);

  const uint64_t before = AllocationCount();
  policy.Bind(view);
  EXPECT_EQ(AllocationCount() - before, 0u)
      << "re-Bind must reuse the arena, dirty set, and queue capacity";
}

SimOptions AbortOptions(double abort_rate) {
  SimOptions options;
  options.num_servers = 2;
  FaultPlanConfig fault;
  fault.seed = 31;
  fault.abort_rate = abort_rate;
  auto plan = FaultPlan::Create(fault);
  WEBTX_CHECK(plan.ok()) << plan.status();
  options.fault_plan = plan.ValueOrDie();
  options.retry.max_attempts = 4;
  options.retry.backoff = 0.5;
  return options;
}

/// Warm allocations of one Run on an already-exercised (sim, policy)
/// pair.
uint64_t WarmRunAllocations(Simulator& sim, AsetsStarPolicy& policy) {
  (void)sim.Run(policy);  // warm 1: grows every lazy capacity
  (void)sim.Run(policy);  // warm 2: settles allocator reuse
  const uint64_t before = AllocationCount();
  (void)sim.Run(policy);
  return AllocationCount() - before;
}

TEST(AllocationTest, EventLoopIsAllocationFree) {
  if (!WEBTX_ALLOC_COUNTING) {
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
  }
  const std::vector<TransactionSpec> txns = WorkflowWorkload(9);

  auto sparse = Simulator::Create(txns, AbortOptions(/*abort_rate=*/0.02));
  ASSERT_TRUE(sparse.ok()) << sparse.status();
  auto dense = Simulator::Create(txns, AbortOptions(/*abort_rate=*/1.0));
  ASSERT_TRUE(dense.ok()) << dense.status();

  AsetsStarPolicy sparse_policy;
  AsetsStarPolicy dense_policy;
  const uint64_t sparse_allocs =
      WarmRunAllocations(sparse.ValueOrDie(), sparse_policy);
  const uint64_t dense_allocs =
      WarmRunAllocations(dense.ValueOrDie(), dense_policy);

  // Sanity: the saturated abort process really does run far more events.
  const RunResult sparse_run = sparse.ValueOrDie().Run(sparse_policy);
  const RunResult dense_run = dense.ValueOrDie().Run(dense_policy);
  ASSERT_GT(dense_run.num_scheduling_points,
            2 * sparse_run.num_scheduling_points);

  EXPECT_EQ(sparse_allocs, dense_allocs)
      << "warm-run allocation count must not scale with event count "
         "(sparse run: "
      << sparse_run.num_scheduling_points
      << " scheduling points, dense run: "
      << dense_run.num_scheduling_points << ")";
}

// A pre-reserved priority structure must absorb a 262k push/pop storm
// with ZERO heap allocations — the huge-scale contract: at 10^6+
// transactions, any per-push growth shows up as allocator traffic in
// the hottest loop. Regression for the sizing constructor, which
// historically sized only the position index and let the first pushes
// after construction grow the heap vector.
TEST(AllocationTest, PreReservedIndexedQueueStormAllocatesNothing) {
  if (!WEBTX_ALLOC_COUNTING) {
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
  }
  constexpr uint32_t kN = 262144;
  IndexedPriorityQueue q(kN);
  Rng rng(77);
  const uint64_t before = AllocationCount();
  // Interleaved storm: fill half, drain a quarter, fill the rest, drain
  // everything — never exceeding the reserved population.
  for (uint32_t id = 0; id < kN / 2; ++id) {
    q.Push(id, static_cast<double>(rng.NextInRange(0, 1u << 20)));
  }
  for (uint32_t i = 0; i < kN / 4; ++i) (void)q.Pop();
  for (uint32_t id = kN / 2; id < kN; ++id) {
    q.Push(id, static_cast<double>(rng.NextInRange(0, 1u << 20)));
  }
  while (!q.empty()) (void)q.Pop();
  EXPECT_EQ(AllocationCount() - before, 0u)
      << "a pre-reserved 262k storm must not touch the allocator";
}

// The twin's forecast hot path: once the engine is warm (buffers,
// shared workload arenas, per-candidate simulator scratch all at
// capacity), a steady-state control tick performs ZERO allocations in
// the serial pooled configuration. Admission-free candidates only: the
// admission factories construct a fresh controller per shadow run by
// design, and the parallel fan-out pays one packaged_task per helper —
// both are outside the zero-alloc contract.
TEST(AllocationTest, TwinForecastSteadyStateAllocatesNothing) {
  if (!WEBTX_ALLOC_COUNTING) {
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
  }
  rt::TwinOptions options;
  rt::TwinCandidate fcfs;
  rt::TwinCandidate edf;
  edf.policy = "EDF";
  rt::TwinCandidate srpt;
  srpt.policy = "SRPT";
  options.candidates = {fcfs, edf, srpt};
  options.control_interval = 0.25;
  options.forecast_horizon = 0.5;
  auto engine = rt::TwinForecastEngine::Create(options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  rt::TwinForecastEngine& e = engine.ValueOrDie();

  // A fixed mid-run snapshot: 16 ready tasks plus a traffic window that
  // synthesizes future arrivals. The tick is held constant so every
  // Forecast() call sees identical spec-buffer sizes (the synthetic
  // count is a per-tick Poisson draw).
  rt::ExecutorSnapshot snap;
  snap.now = 10.0;
  snap.num_workers = 2;
  snap.num_workers_up = 2;
  for (TxnId id = 0; id < 16; ++id) {
    rt::SnapshotTask task;
    task.id = id;
    task.remaining = 0.05;
    task.release = snap.now;
    task.deadline = snap.now + 0.5 + 0.01 * static_cast<double>(id);
    task.weight = 1.0;
    task.state = rt::SnapshotTaskState::kReady;
    snap.tasks.push_back(task);
  }
  rt::TwinArrivalWindow window;
  for (int i = 0; i < 8; ++i) {
    LiveArrival arrival;
    arrival.duration = 0.05;
    arrival.relative_deadline = 0.5;
    arrival.weight = 1.0;
    window.Observe(arrival);
  }

  (void)e.Forecast(snap, window, /*tick=*/7, 0);  // cold: grows buffers
  (void)e.Forecast(snap, window, /*tick=*/7, 0);  // settles reuse
  const uint64_t before = AllocationCount();
  (void)e.Forecast(snap, window, /*tick=*/7, 0);
  (void)e.Forecast(snap, window, /*tick=*/7, 0);
  EXPECT_EQ(AllocationCount() - before, 0u)
      << "steady-state forecast ticks must reuse the spec buffers, the "
         "shared workload, and every shadow simulator's scratch";
}

TEST(AllocationTest, PreReservedLazyHeapStormAllocatesNothing) {
  if (!WEBTX_ALLOC_COUNTING) {
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
  }
  constexpr uint32_t kN = 262144;
  LazyDeleteHeap q(kN);
  Rng rng(78);
  const uint64_t before = AllocationCount();
  for (uint32_t id = 0; id < kN / 2; ++id) {
    q.Push(id, static_cast<double>(rng.NextInRange(0, 1u << 20)));
  }
  for (uint32_t i = 0; i < kN / 4; ++i) (void)q.Pop();
  for (uint32_t id = kN / 2; id < kN; ++id) {
    q.Push(id, static_cast<double>(rng.NextInRange(0, 1u << 20)));
  }
  while (!q.empty()) (void)q.Pop();
  EXPECT_EQ(AllocationCount() - before, 0u)
      << "a pre-reserved 262k storm must not touch the allocator";
}

}  // namespace
}  // namespace webtx
