#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "sched/policies/single_queue_policies.h"
#include "sched/policy_factory.h"
#include "sim/fault_plan.h"
#include "sim/schedule_validator.h"
#include "sim/simulator.h"
#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::Txn;

FaultPlan CrashPlan(double crash_rate, double mean_repair,
                    MigrationPolicy migration = MigrationPolicy::kWarm,
                    double correlated = 0.0, uint64_t seed = 1) {
  FaultPlanConfig config;
  config.crash_rate = crash_rate;
  config.mean_repair_duration = mean_repair;
  config.migration = migration;
  config.correlated_crash_prob = correlated;
  config.seed = seed;
  auto plan = FaultPlan::Create(config);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return plan.ValueOrDie();
}

RunResult RunCrashy(std::vector<TransactionSpec> txns,
                    SchedulerPolicy& policy, SimOptions options) {
  options.record_schedule = true;
  auto sim = Simulator::Create(std::move(txns), options);
  EXPECT_TRUE(sim.ok()) << sim.status();
  return sim.ValueOrDie().Run(policy);
}

Status Validate(const std::vector<TransactionSpec>& txns, const RunResult& r,
                const SimOptions& options) {
  ValidationOptions v;
  v.num_servers = options.num_servers;
  v.outages = r.outages;
  v.crashes = r.crashes;
  v.migration = options.fault_plan.config().migration;
  return ValidateSchedule(txns, r, v);
}

TEST(CrashPlanTest, CreateRejectsBadCrashConfig) {
  FaultPlanConfig no_repair;
  no_repair.crash_rate = 0.1;
  no_repair.mean_repair_duration = 0.0;
  EXPECT_FALSE(FaultPlan::Create(no_repair).ok());

  FaultPlanConfig negative;
  negative.crash_rate = -0.1;
  EXPECT_FALSE(FaultPlan::Create(negative).ok());

  FaultPlanConfig bad_prob;
  bad_prob.crash_rate = 0.1;
  bad_prob.mean_repair_duration = 5.0;
  bad_prob.correlated_crash_prob = 1.5;
  EXPECT_FALSE(FaultPlan::Create(bad_prob).ok());

  // Correlated mode rides on the crash stream; it cannot exist alone.
  FaultPlanConfig correlated_only;
  correlated_only.correlated_crash_prob = 0.5;
  EXPECT_FALSE(FaultPlan::Create(correlated_only).ok());
}

TEST(CrashPlanTest, CrashStreamsAreDeterministicAndIndependent) {
  const FaultPlan plan = CrashPlan(0.1, 5.0);
  FaultStream a = plan.StreamFor(0);
  FaultStream b = plan.StreamFor(0);
  SimTime last = 0.0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.next_crash_transition(), b.next_crash_transition());
    EXPECT_EQ(a.crashed(), i % 2 == 1);
    EXPECT_GT(a.next_crash_transition(), last);
    last = a.next_crash_transition();
    a.AdvanceCrashTransition();
    b.AdvanceCrashTransition();
  }
  EXPECT_NE(plan.StreamFor(0).next_crash_transition(),
            plan.StreamFor(1).next_crash_transition());
}

TEST(CrashPlanTest, ForceCrashExtendsButNeverShortensRepair) {
  const FaultPlan plan = CrashPlan(0.1, 5.0);
  FaultStream stream = plan.StreamFor(0);
  const SimTime crash_at = stream.next_crash_transition();
  stream.AdvanceCrashTransition();
  ASSERT_TRUE(stream.crashed());
  const SimTime natural_end = stream.repair_end();
  // A shorter forced window must not pull the rejoin earlier...
  stream.ForceCrash(crash_at, 0.01);
  EXPECT_EQ(stream.repair_end(), natural_end);
  // ...while a longer one pushes it out.
  stream.ForceCrash(crash_at, (natural_end - crash_at) + 100.0);
  EXPECT_EQ(stream.repair_end(), crash_at + (natural_end - crash_at) + 100.0);
}

TEST(CrashFailoverTest, WarmMigrationRetainsWork) {
  SimOptions options;
  options.fault_plan = CrashPlan(0.1, 5.0, MigrationPolicy::kWarm);
  FcfsPolicy policy;
  const std::vector<TransactionSpec> txns = {Txn(0, 0, 20, 100)};
  const RunResult r = RunCrashy(txns, policy, options);
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  ASSERT_GT(r.num_migrations, 0u);
  EXPECT_EQ(r.num_crashes, r.crashes.size());
  EXPECT_GT(r.total_repair_time, 0.0);
  // Warm failover conserves work: every executed slice counts, so the
  // schedule sums to exactly the length and no attempt is ever bumped.
  SimTime executed = 0.0;
  for (const ScheduleSegment& s : r.schedule) {
    EXPECT_EQ(s.attempt, 0u);
    executed += s.end - s.start;
  }
  EXPECT_NEAR(executed, 20.0, 1e-9);
  // The single server was in repair while the migrant waited: the first
  // crash hit mid-execution, so completion lands after its rejoin.
  EXPECT_GT(r.outcomes[0].finish, r.crashes[0].end);
  EXPECT_TRUE(Validate(txns, r, options).ok())
      << Validate(txns, r, options).ToString();
}

TEST(CrashFailoverTest, ColdMigrationRestartsFromScratch) {
  SimOptions options;
  options.fault_plan = CrashPlan(0.1, 5.0, MigrationPolicy::kCold);
  FcfsPolicy policy;
  const std::vector<TransactionSpec> txns = {Txn(0, 0, 20, 100)};
  const RunResult r = RunCrashy(txns, policy, options);
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  ASSERT_GT(r.outcomes[0].migrations, 0u);
  // Cold migrations start new attempts; the last attempt alone carries
  // the full length (earlier ones were discarded).
  uint32_t max_attempt = 0;
  SimTime final_work = 0.0;
  SimTime total_work = 0.0;
  for (const ScheduleSegment& s : r.schedule) {
    max_attempt = std::max(max_attempt, s.attempt);
    total_work += s.end - s.start;
  }
  for (const ScheduleSegment& s : r.schedule) {
    if (s.attempt == max_attempt) final_work += s.end - s.start;
  }
  EXPECT_EQ(max_attempt, r.outcomes[0].migrations);
  EXPECT_NEAR(final_work, 20.0, 1e-9);
  EXPECT_GT(total_work, 20.0);  // the discarded attempts really ran
  EXPECT_TRUE(Validate(txns, r, options).ok())
      << Validate(txns, r, options).ToString();
}

TEST(CrashFailoverTest, MigrationsNeverConsumeRetryBudget) {
  // max_attempts = 1 means any abort is fatal — but migrations are the
  // server's fault, not the transaction's, so the migrant survives any
  // number of them.
  SimOptions options;
  options.fault_plan = CrashPlan(0.1, 5.0, MigrationPolicy::kCold);
  options.retry.max_attempts = 1;
  FcfsPolicy policy;
  const std::vector<TransactionSpec> txns = {Txn(0, 0, 20, 100)};
  const RunResult r = RunCrashy(txns, policy, options);
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_GT(r.outcomes[0].migrations, 0u);
  EXPECT_EQ(r.outcomes[0].aborts, 0u);
  EXPECT_EQ(r.num_dropped_retries, 0u);
}

TEST(CrashFailoverTest, MigrantFailsOverToSurvivingServer) {
  // Two servers, one long transaction: when its server crashes while
  // the other is up, the migrant resumes on the survivor — completion
  // does not wait for the crashed server's repair. Independent crash
  // streams can fell BOTH servers on an unlucky seed (the migrant then
  // legitimately waits for the first rejoin), so scan a few seeds for a
  // run that exhibits the failover and pin the mechanism on that one.
  bool found = false;
  for (uint64_t seed = 1; seed <= 10 && !found; ++seed) {
    SimOptions options;
    options.num_servers = 2;
    options.fault_plan =
        CrashPlan(0.05, 40.0, MigrationPolicy::kWarm, /*correlated=*/0.0,
                  seed);
    FcfsPolicy policy;
    const std::vector<TransactionSpec> txns = {Txn(0, 0, 30, 200)};
    const RunResult r = RunCrashy(txns, policy, options);
    if (r.num_migrations == 0) continue;
    EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted) << "seed " << seed;
    EXPECT_TRUE(Validate(txns, r, options).ok())
        << "seed " << seed << ": " << Validate(txns, r, options).ToString();
    for (size_t i = 1; i < r.schedule.size(); ++i) {
      if (r.schedule[i].server != r.schedule[0].server) found = true;
    }
  }
  EXPECT_TRUE(found) << "no seed in 1..10 migrated onto the survivor";
}

TEST(CrashFailoverTest, CrashTimelineIsPolicyIndependent) {
  SimOptions options;
  options.num_servers = 2;
  options.fault_plan =
      CrashPlan(0.05, 6.0, MigrationPolicy::kCold, /*correlated=*/0.5);
  auto sim = Simulator::Create(
      {Txn(0, 0, 8, 30), Txn(1, 1, 5, 20), Txn(2, 2, 12, 60),
       Txn(3, 4, 3, 15), Txn(4, 6, 7, 40)},
      options);
  ASSERT_TRUE(sim.ok());
  FcfsPolicy fcfs;
  SrptPolicy srpt;
  const RunResult a = sim.ValueOrDie().Run(fcfs);
  const RunResult b = sim.ValueOrDie().Run(srpt);
  ASSERT_EQ(a.crashes.size(), b.crashes.size());
  for (size_t i = 0; i < a.crashes.size(); ++i) {
    EXPECT_EQ(a.crashes[i].server, b.crashes[i].server);
    EXPECT_EQ(a.crashes[i].start, b.crashes[i].start);
    EXPECT_EQ(a.crashes[i].end, b.crashes[i].end);
  }
}

TEST(CrashFailoverTest, CorrelatedCrashesFellMultipleServers) {
  // With correlation probability 1 every natural crash instant fells
  // every other alive server at the same instant.
  SimOptions options;
  options.num_servers = 4;
  options.fault_plan =
      CrashPlan(0.02, 5.0, MigrationPolicy::kWarm, /*correlated=*/1.0);
  FcfsPolicy policy;
  std::vector<TransactionSpec> txns;
  for (TxnId i = 0; i < 20; ++i) {
    txns.push_back(Txn(i, static_cast<double>(i), 5, 1000));
  }
  const RunResult r = RunCrashy(txns, policy, options);
  ASSERT_GT(r.num_crashes, 0u);
  std::map<SimTime, size_t> by_instant;
  for (const OutageWindow& w : r.crashes) ++by_instant[w.start];
  size_t max_group = 0;
  for (const auto& [start, count] : by_instant) {
    max_group = std::max(max_group, count);
  }
  EXPECT_GE(max_group, 2u);
  EXPECT_TRUE(Validate(txns, r, options).ok())
      << Validate(txns, r, options).ToString();
}

TEST(CrashFailoverTest, ZeroCrashRateLeavesScheduleByteIdentical) {
  // Configuring migration / repair knobs without a crash rate must not
  // perturb the schedule in any way — the crash machinery is inert.
  FaultPlanConfig base;
  base.outage_rate = 0.03;
  base.mean_outage_duration = 4.0;
  base.abort_rate = 0.05;
  base.seed = 9;
  FaultPlanConfig with_knobs = base;
  with_knobs.mean_repair_duration = 50.0;
  with_knobs.migration = MigrationPolicy::kCold;

  const std::vector<TransactionSpec> txns = {
      Txn(0, 0, 8, 30), Txn(1, 1, 5, 20), Txn(2, 2, 12, 60),
      Txn(3, 4, 3, 15), Txn(4, 6, 7, 40)};
  EdfPolicy policy;
  SimOptions a_options;
  a_options.fault_plan = FaultPlan::Create(base).ValueOrDie();
  SimOptions b_options;
  b_options.fault_plan = FaultPlan::Create(with_knobs).ValueOrDie();
  const RunResult a = RunCrashy(txns, policy, a_options);
  const RunResult b = RunCrashy(txns, policy, b_options);
  ASSERT_EQ(a.schedule.size(), b.schedule.size());
  for (size_t i = 0; i < a.schedule.size(); ++i) {
    EXPECT_EQ(a.schedule[i].txn, b.schedule[i].txn);
    EXPECT_EQ(a.schedule[i].server, b.schedule[i].server);
    EXPECT_EQ(a.schedule[i].start, b.schedule[i].start);
    EXPECT_EQ(a.schedule[i].end, b.schedule[i].end);
    EXPECT_EQ(a.schedule[i].attempt, b.schedule[i].attempt);
  }
  EXPECT_EQ(a.num_crashes, 0u);
  EXPECT_EQ(b.num_crashes, 0u);
  EXPECT_EQ(b.num_migrations, 0u);
}

TEST(CrashFailoverTest, AllPoliciesSurviveCrashesAndValidate) {
  std::vector<TransactionSpec> txns;
  for (TxnId i = 0; i < 40; ++i) {
    txns.push_back(Txn(i, 0.7 * static_cast<double>(i),
                       1.0 + static_cast<double>(i % 7),
                       10.0 + 2.0 * static_cast<double>(i),
                       1.0 + static_cast<double>(i % 3)));
  }
  txns[5].dependencies = {2};
  txns[9].dependencies = {5};
  txns[17].dependencies = {11};
  txns[30].dependencies = {17, 21};
  for (const MigrationPolicy migration :
       {MigrationPolicy::kWarm, MigrationPolicy::kCold}) {
    for (const char* name :
         {"FCFS", "EDF", "SRPT", "HDF", "ASETS", "ASETS*"}) {
      for (const size_t servers : {1u, 2u, 3u}) {
        SimOptions options;
        options.num_servers = servers;
        options.fault_plan =
            CrashPlan(0.02, 6.0, migration, /*correlated=*/0.3);
        options.retry.max_attempts = 3;
        auto policy = CreatePolicy(name);
        ASSERT_TRUE(policy.ok());
        const RunResult r = RunCrashy(txns, *policy.ValueOrDie(), options);
        EXPECT_TRUE(Validate(txns, r, options).ok())
            << name << " k=" << servers << " "
            << MigrationPolicyName(migration) << ": "
            << Validate(txns, r, options).ToString();
        EXPECT_EQ(r.num_completed + r.num_shed + r.num_dropped_retries +
                      r.num_dropped_dependency,
                  txns.size())
            << name << " k=" << servers;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Retry-storm clamping (RetryOptions::max_backoff).

TEST(RetryStormTest, SimulatorRejectsNegativeMaxBackoff) {
  SimOptions options;
  options.retry.max_backoff = -1.0;
  EXPECT_FALSE(Simulator::Create({Txn(0, 0, 5, 100)}, options).ok());
}

TEST(RetryStormTest, MaxBackoffClampsGeometricGrowth) {
  // A dense abort stream kills every attempt almost immediately, so a
  // small retry budget fully determines the run: the drop instant is
  // (roughly) the sum of the release delays. With the budget bounded
  // the UNclamped run's geometric delays (1, 10, 100) stay
  // representable in simulated time — the Poisson fault streams are
  // advanced draw by draw, so a run whose backoff reached 10^100 would
  // never terminate.
  FaultPlanConfig config;
  config.abort_rate = 2.0;
  config.seed = 3;
  SimOptions options;
  options.fault_plan = FaultPlan::Create(config).ValueOrDie();
  options.retry.max_attempts = 4;
  options.retry.backoff = 1.0;
  options.retry.backoff_multiplier = 10.0;

  SimOptions clamped = options;
  clamped.retry.max_backoff = 4.0;

  FcfsPolicy policy;
  const std::vector<TransactionSpec> txns = {Txn(0, 0, 10, 100)};
  const RunResult unclamped_run = RunCrashy(txns, policy, options);
  const RunResult clamped_run = RunCrashy(txns, policy, clamped);
  ASSERT_EQ(clamped_run.outcomes[0].fate, TxnFate::kDroppedRetries);
  ASSERT_EQ(unclamped_run.outcomes[0].fate, TxnFate::kDroppedRetries);
  ASSERT_GT(clamped_run.outcomes[0].aborts, 1u);
  // The clamp caps every release delay at 4 time units where the
  // unclamped run waits 1, 10, 100 — so the clamped run gives up
  // strictly earlier and counts each suppression.
  EXPECT_GT(clamped_run.retry_storm_suppressed, 0u);
  EXPECT_EQ(unclamped_run.retry_storm_suppressed, 0u);
  EXPECT_LT(clamped_run.outcomes[0].finish,
            unclamped_run.outcomes[0].finish);
}

TEST(RetryStormTest, ClampIsInertWhenDelaysStaySmall) {
  FaultPlanConfig config;
  config.abort_rate = 0.3;
  config.seed = 4;
  SimOptions options;
  options.fault_plan = FaultPlan::Create(config).ValueOrDie();
  options.retry.max_attempts = 10;
  options.retry.backoff = 1.0;
  options.retry.backoff_multiplier = 1.0;  // constant delay
  options.retry.max_backoff = 100.0;       // far above any delay
  FcfsPolicy policy;
  const RunResult r = RunCrashy({Txn(0, 0, 10, 100)}, policy, options);
  EXPECT_EQ(r.retry_storm_suppressed, 0u);
}

}  // namespace
}  // namespace webtx
