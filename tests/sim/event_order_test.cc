// Regression tests for the simulator's same-timestamp event ordering
// contract (simulator.h "Event ordering"): at equal times, completion
// beats outage transition beats abort beats pending (retry release
// before deferred arrival) beats fresh arrival. The coincidences are
// constructed with exact doubles — a transaction dispatched at 0 with
// length t* completes at the double 0 + t* == t*, and fault instants are
// read straight off the deterministic FaultStream the run will replay —
// so every test exercises the tie-break, not an epsilon window.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sched/admission.h"
#include "sched/scheduler_policy.h"
#include "sim/simulator.h"
#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::Txn;

// ---------------------------------------------------------------------------
// The comparator itself (internal::PendingAfter).

using internal::PendingAfter;
using internal::PendingEvent;

TEST(PendingAfterTest, EarlierTimeOrdersFirst) {
  const PendingEvent early{1.0, 1, 7};
  const PendingEvent late{2.0, 0, 0};
  // Max-heap comparator: "after" means lower priority.
  EXPECT_TRUE(PendingAfter{}(late, early));
  EXPECT_FALSE(PendingAfter{}(early, late));
}

TEST(PendingAfterTest, RetryBeforeDeferredArrivalAtEqualTime) {
  const PendingEvent retry{3.0, 0, 9};
  const PendingEvent deferred{3.0, 1, 2};
  EXPECT_TRUE(PendingAfter{}(deferred, retry));
  EXPECT_FALSE(PendingAfter{}(retry, deferred));
}

TEST(PendingAfterTest, LowerIdBreaksRemainingTies) {
  const PendingEvent a{3.0, 1, 2};
  const PendingEvent b{3.0, 1, 5};
  EXPECT_TRUE(PendingAfter{}(b, a));
  EXPECT_FALSE(PendingAfter{}(a, b));
}

TEST(PendingAfterTest, HeapPopsEarliestTimeKindIdTriple) {
  std::vector<PendingEvent> heap = {
      {2.0, 1, 0}, {1.0, 1, 4}, {1.0, 0, 6}, {1.0, 1, 3}, {2.0, 0, 1},
  };
  std::make_heap(heap.begin(), heap.end(), PendingAfter{});
  const std::vector<PendingEvent> expected = {
      {1.0, 0, 6}, {1.0, 1, 3}, {1.0, 1, 4}, {2.0, 0, 1}, {2.0, 1, 0},
  };
  for (const PendingEvent& want : expected) {
    const PendingEvent got = heap.front();
    std::pop_heap(heap.begin(), heap.end(), PendingAfter{});
    heap.pop_back();
    EXPECT_EQ(got.time, want.time);
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.id, want.id);
  }
}

// ---------------------------------------------------------------------------
// Whole-loop ordering, observed through the policy callback stream.

/// One policy callback, as observed by RecordingPolicy.
struct Event {
  std::string kind;  // "arrival" | "ready" | "completion" | "dropped"
  TxnId id = kInvalidTxn;
  SimTime time = 0.0;
};

/// FIFO-by-id policy that logs every lifecycle callback in order. The
/// pick rule is irrelevant to these tests; the log is the assertion
/// surface.
class RecordingPolicy final : public SchedulerPolicy {
 public:
  std::string name() const override { return "Recording"; }

  void OnArrival(TxnId id, SimTime now) override {
    log_.push_back({"arrival", id, now});
  }
  void OnReady(TxnId id, SimTime now) override {
    log_.push_back({"ready", id, now});
  }
  void OnCompletion(TxnId id, SimTime now) override {
    log_.push_back({"completion", id, now});
  }
  void OnDropped(TxnId id, SimTime now) override {
    log_.push_back({"dropped", id, now});
  }

  TxnId PickNext(SimTime) override {
    TxnId best = kInvalidTxn;
    for (const TxnId id : view().ready_transactions()) {
      if (best == kInvalidTxn || id < best) best = id;
    }
    return best;
  }

  const std::vector<Event>& log() const { return log_; }

 protected:
  void Reset() override { log_.clear(); }

 private:
  std::vector<Event> log_;
};

/// Index of the first (kind, id) entry, or npos.
size_t IndexOf(const std::vector<Event>& log, const std::string& kind,
               TxnId id) {
  for (size_t i = 0; i < log.size(); ++i) {
    if (log[i].kind == kind && log[i].id == id) return i;
  }
  return std::string::npos;
}

/// Index of the first (kind, id) entry at exactly `time`, or npos —
/// distinguishes, e.g., a retry re-entry OnReady from the initial one.
size_t IndexOfAt(const std::vector<Event>& log, const std::string& kind,
                 TxnId id, SimTime time) {
  for (size_t i = 0; i < log.size(); ++i) {
    if (log[i].kind == kind && log[i].id == id && log[i].time == time) {
      return i;
    }
  }
  return std::string::npos;
}

RunResult RunWith(std::vector<TransactionSpec> txns, SchedulerPolicy& policy,
                  SimOptions options = {}) {
  auto sim = Simulator::Create(std::move(txns), std::move(options));
  EXPECT_TRUE(sim.ok()) << sim.status();
  return sim.ValueOrDie().Run(policy);
}

/// Admission controller that defers `target` exactly once by `delay`
/// and admits everything else (and the re-presented target).
class DeferOnceAdmission final : public AdmissionController {
 public:
  DeferOnceAdmission(TxnId target, SimTime delay)
      : target_(target), delay_(delay) {}

  std::string name() const override { return "defer-once"; }

  AdmissionDecision Decide(TxnId id, SimTime) override {
    if (id == target_ && !deferred_) {
      deferred_ = true;
      return AdmissionDecision::Defer(delay_);
    }
    return AdmissionDecision::Admit();
  }

 protected:
  void Reset() override { deferred_ = false; }

 private:
  TxnId target_;
  SimTime delay_;
  bool deferred_ = false;
};

TEST(EventOrderTest, CompletionBeforeFreshArrivalAtEqualTime) {
  // T0 dispatched at 0 with length 2 completes at the exact double 2.0,
  // the instant T1 arrives. Completion must be the first event.
  RecordingPolicy policy;
  const RunResult r =
      RunWith({Txn(0, 0.0, 2.0, 10.0), Txn(1, 2.0, 1.0, 10.0)}, policy);
  const auto& log = policy.log();
  const size_t done0 = IndexOf(log, "completion", 0);
  const size_t arrive1 = IndexOf(log, "arrival", 1);
  ASSERT_NE(done0, std::string::npos);
  ASSERT_NE(arrive1, std::string::npos);
  EXPECT_LT(done0, arrive1);
  EXPECT_EQ(log[done0].time, 2.0);
  EXPECT_EQ(log[arrive1].time, 2.0);
  EXPECT_EQ(r.outcomes[0].finish, 2.0);
}

TEST(EventOrderTest, CompletionBeforeOutageStartAtEqualTime) {
  // T0's length is exactly the first outage start: the completion wins
  // the tie, so the transaction finishes untouched instead of being
  // preempted by the outage that begins the same instant.
  FaultPlanConfig config;
  config.outage_rate = 0.1;
  config.mean_outage_duration = 2.0;
  config.seed = 4;
  auto plan = FaultPlan::Create(config);
  ASSERT_TRUE(plan.ok());
  const SimTime outage_start =
      plan.ValueOrDie().StreamFor(0).next_transition();
  ASSERT_LT(outage_start, kNeverTime);

  SimOptions options;
  options.fault_plan = plan.ValueOrDie();
  RecordingPolicy policy;
  const RunResult r =
      RunWith({Txn(0, 0.0, outage_start, 2.0 * outage_start)}, policy,
              options);
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[0].finish, outage_start);
  EXPECT_EQ(r.num_outage_preemptions, 0u);
}

TEST(EventOrderTest, OutageStartBeforeFreshArrivalAtEqualTime) {
  // T0 arrives at the exact instant the server's first outage begins.
  // The outage is processed first, so the arrival finds the server down
  // and T0's first execution segment starts at the recovery boundary.
  FaultPlanConfig config;
  config.outage_rate = 0.1;
  config.mean_outage_duration = 2.0;
  config.seed = 4;
  auto plan = FaultPlan::Create(config);
  ASSERT_TRUE(plan.ok());
  const FaultStream stream = plan.ValueOrDie().StreamFor(0);
  const SimTime outage_start = stream.next_transition();
  const SimTime outage_end = stream.outage_end();
  ASSERT_LT(outage_start, outage_end);

  SimOptions options;
  options.fault_plan = plan.ValueOrDie();
  options.record_schedule = true;
  RecordingPolicy policy;
  const RunResult r =
      RunWith({Txn(0, outage_start, 0.5, outage_end + 10.0)}, policy,
              options);
  ASSERT_FALSE(r.schedule.empty());
  EXPECT_EQ(r.schedule.front().start, outage_end);
  EXPECT_EQ(r.num_outage_preemptions, 0u);  // nothing ran when it began
}

TEST(EventOrderTest, CompletionBeforeAbortAtEqualTime) {
  // T0 completes at the exact first abort instant; the completion wins,
  // so no work is discarded and no retry happens.
  FaultPlanConfig config;
  config.abort_rate = 0.2;
  config.seed = 7;
  auto plan = FaultPlan::Create(config);
  ASSERT_TRUE(plan.ok());
  const SimTime abort_time = plan.ValueOrDie().StreamFor(0).next_abort();
  ASSERT_LT(abort_time, kNeverTime);

  SimOptions options;
  options.fault_plan = plan.ValueOrDie();
  RecordingPolicy policy;
  const RunResult r =
      RunWith({Txn(0, 0.0, abort_time, 2.0 * abort_time)}, policy, options);
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[0].finish, abort_time);
  EXPECT_EQ(r.num_retries, 0u);
  EXPECT_EQ(r.num_aborts, 0u);  // the abort instant hit an idle server
}

TEST(EventOrderTest, AbortBeforeFreshArrivalAtEqualTime) {
  // T1 arrives at the exact instant T0 (running, retry budget 1) is
  // aborted: the abort — dequeue (OnCompletion) and drop (OnDropped) —
  // must be fully processed before the arrival is announced.
  FaultPlanConfig config;
  config.abort_rate = 0.2;
  config.seed = 7;
  auto plan = FaultPlan::Create(config);
  ASSERT_TRUE(plan.ok());
  const SimTime abort_time = plan.ValueOrDie().StreamFor(0).next_abort();

  SimOptions options;
  options.fault_plan = plan.ValueOrDie();
  options.retry.max_attempts = 1;  // abort implies drop
  RecordingPolicy policy;
  const RunResult r = RunWith({Txn(0, 0.0, abort_time + 1.0, 100.0),
                               Txn(1, abort_time, 0.25, 100.0)},
                              policy, options);
  const auto& log = policy.log();
  const size_t dequeue0 = IndexOf(log, "completion", 0);
  const size_t dropped0 = IndexOf(log, "dropped", 0);
  const size_t arrive1 = IndexOf(log, "arrival", 1);
  ASSERT_NE(dequeue0, std::string::npos);
  ASSERT_NE(dropped0, std::string::npos);
  ASSERT_NE(arrive1, std::string::npos);
  EXPECT_LT(dequeue0, dropped0);
  EXPECT_LT(dropped0, arrive1);
  EXPECT_EQ(log[dequeue0].time, abort_time);
  EXPECT_EQ(log[arrive1].time, abort_time);
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kDroppedRetries);
}

TEST(EventOrderTest, RetryBeforeDeferredBeforeFreshArrivalAtEqualTime) {
  // Three events collide at release = abort_time + backoff:
  //   - T0's retry release (pending kind 0),
  //   - T1's deferred arrival re-presentation (pending kind 1),
  //   - T2's fresh arrival.
  // The documented order is retry, then deferred arrival, then fresh
  // arrival. backoff is a power of two so release is the exact double
  // the simulator computes for the retry event.
  FaultPlanConfig config;
  config.abort_rate = 0.2;
  config.seed = 7;
  auto plan = FaultPlan::Create(config);
  ASSERT_TRUE(plan.ok());
  const SimTime abort_time = plan.ValueOrDie().StreamFor(0).next_abort();
  const SimTime backoff = 0.25;
  const SimTime release = abort_time + backoff;

  SimOptions options;
  options.fault_plan = plan.ValueOrDie();
  options.retry.max_attempts = 3;
  options.retry.backoff = backoff;
  options.admission = [release]() {
    return std::make_unique<DeferOnceAdmission>(/*target=*/1, release);
  };
  RecordingPolicy policy;
  RunWith({Txn(0, 0.0, abort_time + 1.0, 100.0), Txn(1, 0.0, 0.25, 100.0),
           Txn(2, release, 0.25, 100.0)},
          policy, options);
  const auto& log = policy.log();
  // T0's re-entry OnReady at release (its initial OnReady was at t=0).
  const size_t retry0 = IndexOfAt(log, "ready", 0, release);
  const size_t arrive1 = IndexOf(log, "arrival", 1);
  const size_t arrive2 = IndexOf(log, "arrival", 2);
  ASSERT_NE(retry0, std::string::npos);
  ASSERT_NE(arrive1, std::string::npos);
  ASSERT_NE(arrive2, std::string::npos);
  EXPECT_LT(retry0, arrive1);
  EXPECT_LT(arrive1, arrive2);
  EXPECT_EQ(log[retry0].time, release);
  EXPECT_EQ(log[arrive1].time, release);
  EXPECT_EQ(log[arrive2].time, release);
}

TEST(EventOrderTest, DeferredArrivalBeforeFreshArrivalAtEqualTime) {
  // T0 is deferred at t=0 by exactly 4.0; T1 arrives fresh at 4.0. The
  // deferred re-presentation (pending event) precedes the fresh arrival.
  SimOptions options;
  options.admission = []() {
    return std::make_unique<DeferOnceAdmission>(/*target=*/0, 4.0);
  };
  RecordingPolicy policy;
  RunWith({Txn(0, 0.0, 1.0, 100.0), Txn(1, 4.0, 1.0, 100.0)}, policy,
          options);
  const auto& log = policy.log();
  const size_t arrive0 = IndexOf(log, "arrival", 0);
  const size_t arrive1 = IndexOf(log, "arrival", 1);
  ASSERT_NE(arrive0, std::string::npos);
  ASSERT_NE(arrive1, std::string::npos);
  EXPECT_LT(arrive0, arrive1);
  EXPECT_EQ(log[arrive0].time, 4.0);
  EXPECT_EQ(log[arrive1].time, 4.0);
}

}  // namespace
}  // namespace webtx
