// Concurrency suite for the sharded policy state (run under the tsan
// preset, see CMakePresets.json): forces the ASETS*-sharded parallel
// dirty-flush onto the shard pool every round (threshold 0) and proves
// the concurrent per-shard picks' maintenance race-free AND
// byte-identical to the serial global-state policy. The serial/parallel
// digest equality also runs in the plain presets, so a determinism
// regression fails everywhere, not just under tsan.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "exp/chaos.h"
#include "sched/policies/asets_star.h"
#include "sched/policies/asets_star_sharded.h"
#include "sim/fault_plan.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace webtx {
namespace {

std::vector<TransactionSpec> MakeWorkload(uint64_t seed) {
  WorkloadSpec spec;
  spec.num_transactions = 120;
  spec.utilization = 3.0;  // deep ready set: every round touches many
                           // workflows, so the parallel flush has work
  spec.min_weight = 1;
  spec.max_weight = 10;
  spec.max_workflow_length = 5;
  spec.max_workflows_per_txn = 2;
  auto generator = WorkloadGenerator::Create(spec);
  EXPECT_TRUE(generator.ok()) << generator.status();
  return generator.ValueOrDie().Generate(seed);
}

SimOptions MakeOptions(size_t servers, size_t shard_threads, bool faults) {
  SimOptions options;
  options.num_servers = servers;
  options.shard_threads = shard_threads;
  options.record_outcomes = true;
  options.record_schedule = true;
  if (faults) {
    FaultPlanConfig fault;
    fault.seed = 2009;
    fault.outage_rate = 0.02;
    fault.mean_outage_duration = 5.0;
    fault.abort_rate = 0.03;
    fault.crash_rate = 0.01;
    fault.mean_repair_duration = 8.0;
    fault.migration = MigrationPolicy::kCold;
    options.retry.max_attempts = 3;
    options.retry.backoff = 1.5;
    auto plan = FaultPlan::Create(fault);
    EXPECT_TRUE(plan.ok()) << plan.status();
    options.fault_plan = plan.ValueOrDie();
  }
  return options;
}

uint64_t DigestOf(const std::vector<TransactionSpec>& txns,
                  const SimOptions& options, SchedulerPolicy& policy) {
  auto sim = Simulator::Create(txns, options);
  EXPECT_TRUE(sim.ok()) << sim.status();
  return ScheduleDigest(sim.ValueOrDie().Run(policy));
}

// The parallel flush (one pool task per shard, every round) must be
// byte-identical to the global-state serial policy. TSan audits the
// task bodies: per-shard queue triples and per-workflow states are
// disjoint across tasks, view reads are const.
TEST(ShardedPolicyConcurrencyTest, ParallelFlushMatchesGlobalPolicy) {
  const std::vector<TransactionSpec> txns = MakeWorkload(17);
  for (const bool faults : {false, true}) {
    AsetsStarPolicy global;
    const uint64_t want = DigestOf(txns, MakeOptions(8, 1, faults), global);

    AsetsStarShardedPolicy serial;
    EXPECT_EQ(DigestOf(txns, MakeOptions(8, 1, faults), serial), want)
        << "serial sharded run diverged (faults=" << faults << ")";

    AsetsStarShardedPolicy parallel;
    parallel.set_parallel_flush_threshold(0);  // pool fan-out every round
    EXPECT_EQ(DigestOf(txns, MakeOptions(8, 8, faults), parallel), want)
        << "parallel flush diverged (faults=" << faults << ")";
  }
}

TEST(ShardedPolicyConcurrencyTest, LazyHeapParallelFlushMatches) {
  const std::vector<TransactionSpec> txns = MakeWorkload(23);
  AsetsStarPolicy global;
  const uint64_t want = DigestOf(txns, MakeOptions(4, 1, true), global);
  AsetsStarShardedLazyPolicy parallel;
  parallel.set_parallel_flush_threshold(0);
  EXPECT_EQ(DigestOf(txns, MakeOptions(4, 8, true), parallel), want);
}

// Warm reuse: one policy object across repeated runs (Bind resets, the
// shard pool persists inside the Simulator) must replay identically.
TEST(ShardedPolicyConcurrencyTest, RepeatedRunsReplayIdentically) {
  const std::vector<TransactionSpec> txns = MakeWorkload(31);
  const SimOptions options = MakeOptions(8, 8, true);
  auto sim = Simulator::Create(txns, options);
  ASSERT_TRUE(sim.ok()) << sim.status();
  AsetsStarShardedPolicy policy;
  policy.set_parallel_flush_threshold(0);
  const uint64_t first = ScheduleDigest(sim.ValueOrDie().Run(policy));
  for (int run = 0; run < 2; ++run) {
    EXPECT_EQ(ScheduleDigest(sim.ValueOrDie().Run(policy)), first)
        << "run " << run + 2 << " diverged from run 1";
  }
}

}  // namespace
}  // namespace webtx
