// Regression tests for CROSS-SHARD same-instant ties in the sharded
// event loop, mirroring tests/sim/event_order_test.cc's exact-double
// construction: a completion on one shard colliding with a fault
// transition on another, a crash's migration handoff colliding with a
// fresh arrival, and one correlated crash instant felling several
// shards. Covers both the internal comparators (internal::EventBefore,
// internal::MessageBefore) and the whole loop, and pins each scenario
// to the pre-shard reference digest.

#include <algorithm>
#include <queue>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/calendar_queue.h"
#include "common/rng.h"
#include "exp/chaos.h"
#include "sched/scheduler_policy.h"
#include "sim/fault_plan.h"
#include "sim/simulator.h"
#include "testing/fake_view.h"
#include "testing/reference_simulator.h"

namespace webtx {
namespace {

using testing::Txn;

// ---------------------------------------------------------------------------
// The comparators themselves.

using internal::EventBefore;
using internal::MessageBefore;
using internal::ShardEvent;
using internal::ShardEventClass;
using internal::ShardMessage;

TEST(ShardEventBeforeTest, TimeDominatesClassAndShard) {
  const ShardEvent early{1.0, ShardEventClass::kArrival, 9};
  const ShardEvent late{2.0, ShardEventClass::kCompletion, 0};
  EXPECT_TRUE(EventBefore(early, late));
  EXPECT_FALSE(EventBefore(late, early));
}

TEST(ShardEventBeforeTest, ClassPriorityBreaksTimeTies) {
  // completion < outage < crash < abort < pending < arrival — the
  // failure-semantics contract order — regardless of shard index.
  const ShardEvent completion{3.0, ShardEventClass::kCompletion, 7};
  const ShardEvent outage{3.0, ShardEventClass::kOutage, 0};
  const ShardEvent crash{3.0, ShardEventClass::kCrash, 1};
  const ShardEvent abort_ev{3.0, ShardEventClass::kAbort, 2};
  const ShardEvent pend{3.0, ShardEventClass::kPending, 3};
  const ShardEvent arrival{3.0, ShardEventClass::kArrival, 4};
  EXPECT_TRUE(EventBefore(completion, outage));
  EXPECT_TRUE(EventBefore(outage, crash));
  EXPECT_TRUE(EventBefore(crash, abort_ev));
  EXPECT_TRUE(EventBefore(abort_ev, pend));
  EXPECT_TRUE(EventBefore(pend, arrival));
  EXPECT_FALSE(EventBefore(arrival, completion));
}

TEST(ShardEventBeforeTest, LowerShardBreaksRemainingTies) {
  const ShardEvent a{3.0, ShardEventClass::kCrash, 1};
  const ShardEvent b{3.0, ShardEventClass::kCrash, 5};
  EXPECT_TRUE(EventBefore(a, b));
  EXPECT_FALSE(EventBefore(b, a));
  EXPECT_FALSE(EventBefore(a, a));  // strict order
}

TEST(ShardEventBeforeTest, SortRecoversContractOrder) {
  std::vector<ShardEvent> events = {
      {2.0, ShardEventClass::kCompletion, 0},
      {1.0, ShardEventClass::kArrival, 3},
      {1.0, ShardEventClass::kOutage, 2},
      {1.0, ShardEventClass::kOutage, 1},
      {1.0, ShardEventClass::kCompletion, 4},
  };
  std::sort(events.begin(), events.end(), EventBefore);
  EXPECT_EQ(events[0].cls, ShardEventClass::kCompletion);
  EXPECT_EQ(events[0].shard, 4u);
  EXPECT_EQ(events[1].shard, 1u);  // lower shard of the two outages
  EXPECT_EQ(events[2].shard, 2u);
  EXPECT_EQ(events[3].cls, ShardEventClass::kArrival);
  EXPECT_EQ(events[4].time, 2.0);
}

TEST(ShardMessageBeforeTest, TimeThenOriginThenSeq) {
  const ShardMessage early{1.0, 5, 9, ShardMessage::Kind::kForceCrash, 0, 1.0};
  const ShardMessage low_origin{2.0, 0, 1, ShardMessage::Kind::kMigrate, 0,
                                0.0};
  const ShardMessage high_origin{2.0, 3, 0, ShardMessage::Kind::kMigrate, 3,
                                 0.0};
  const ShardMessage later_seq{2.0, 3, 2, ShardMessage::Kind::kForceCrash, 1,
                               4.0};
  EXPECT_TRUE(MessageBefore(early, low_origin));
  EXPECT_TRUE(MessageBefore(low_origin, high_origin));
  EXPECT_TRUE(MessageBefore(high_origin, later_seq));
  EXPECT_FALSE(MessageBefore(later_seq, high_origin));
  EXPECT_FALSE(MessageBefore(early, early));  // strict order
}

// ---------------------------------------------------------------------------
// Whole-loop cross-shard coincidences.

/// One policy callback, as observed by RecordingPolicy.
struct Event {
  std::string kind;  // "arrival" | "ready" | "completion" | "dropped"
  TxnId id = kInvalidTxn;
  SimTime time = 0.0;
};

/// Lowest-ready-id policy with multi-server support that logs every
/// lifecycle callback; the log is the assertion surface.
class RecordingPolicy final : public SchedulerPolicy {
 public:
  std::string name() const override { return "Recording"; }

  void OnArrival(TxnId id, SimTime now) override {
    log_.push_back({"arrival", id, now});
  }
  void OnReady(TxnId id, SimTime now) override {
    log_.push_back({"ready", id, now});
  }
  void OnCompletion(TxnId id, SimTime now) override {
    log_.push_back({"completion", id, now});
  }
  void OnDropped(TxnId id, SimTime now) override {
    log_.push_back({"dropped", id, now});
  }

  TxnId PickNext(SimTime now) override { return PickNextExcluding(now, {}); }

  TxnId PickNextExcluding(SimTime,
                          const std::vector<TxnId>& exclude) override {
    TxnId best = kInvalidTxn;
    for (const TxnId id : view().ready_transactions()) {
      if (std::find(exclude.begin(), exclude.end(), id) != exclude.end()) {
        continue;
      }
      if (best == kInvalidTxn || id < best) best = id;
    }
    return best;
  }

  const std::vector<Event>& log() const { return log_; }

 protected:
  void Reset() override { log_.clear(); }

 private:
  std::vector<Event> log_;
};

size_t IndexOf(const std::vector<Event>& log, const std::string& kind,
               TxnId id) {
  for (size_t i = 0; i < log.size(); ++i) {
    if (log[i].kind == kind && log[i].id == id) return i;
  }
  return std::string::npos;
}

RunResult RunWith(const std::vector<TransactionSpec>& txns,
                  SchedulerPolicy& policy, SimOptions options) {
  options.record_outcomes = true;
  options.record_schedule = true;
  auto sim = Simulator::Create(txns, options);
  EXPECT_TRUE(sim.ok()) << sim.status();
  RunResult r = sim.ValueOrDie().Run(policy);
  // Every coincidence scenario must also match the pre-shard reference
  // bit for bit (a second policy instance keeps the logs separate).
  auto ref = testing::ReferenceSimulator::Create(txns, options);
  EXPECT_TRUE(ref.ok()) << ref.status();
  RecordingPolicy ref_policy;
  EXPECT_EQ(ScheduleDigest(r), ScheduleDigest(ref.ValueOrDie().Run(ref_policy)))
      << "sharded run diverged from the pre-shard reference";
  return r;
}

TEST(ShardEventOrderTest, CompletionOnHighShardBeatsOutageOnLowShard) {
  // Server 0's first outage begins at the exact instant T1 — running on
  // server 1 — completes: the completion (class 0, shard 1) must beat
  // the outage (class 1, shard 0) even though its shard index is
  // higher. T1 finishes untouched at that double; the outage then
  // preempts T0 on server 0.
  FaultPlanConfig config;
  config.outage_rate = 0.05;
  config.mean_outage_duration = 3.0;
  // Pick a seed whose server-0 outage strictly precedes server 1's, so
  // nothing disturbs T1 on server 1 before the coincidence instant.
  SimTime outage_start = kNeverTime;
  for (uint64_t seed = 1; seed < 200; ++seed) {
    config.seed = seed;
    auto probe = FaultPlan::Create(config);
    ASSERT_TRUE(probe.ok()) << probe.status();
    const SimTime s0 = probe.ValueOrDie().StreamFor(0).next_transition();
    const SimTime s1 = probe.ValueOrDie().StreamFor(1).next_transition();
    if (s0 < s1) {
      outage_start = s0;
      break;
    }
  }
  ASSERT_LT(outage_start, kNeverTime);
  auto plan = FaultPlan::Create(config);
  ASSERT_TRUE(plan.ok()) << plan.status();

  SimOptions options;
  options.num_servers = 2;
  options.fault_plan = plan.ValueOrDie();
  RecordingPolicy policy;
  // T0 (lowest id) lands on server 0 and outlives the outage; T1 lands
  // on server 1 with length == outage_start, so dispatch at 0 completes
  // at the exact double 0 + outage_start.
  const RunResult r =
      RunWith({Txn(0, 0.0, 1.5 * outage_start, 100.0 * outage_start),
               Txn(1, 0.0, outage_start, 100.0 * outage_start)},
              policy, options);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].finish, outage_start);
  EXPECT_GE(r.num_outage_preemptions, 1u);  // T0, by the same-instant outage
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  // The cross-shard handoff: T0's server-0 segment ends at the outage
  // instant, and — the completion having freed server 1 first — its
  // next segment starts at the same double on server 1.
  bool preempted_at_instant = false;
  bool handed_off = false;
  for (const ScheduleSegment& seg : r.schedule) {
    if (seg.txn == 0 && seg.server == 0 && seg.end == outage_start) {
      preempted_at_instant = true;
    }
    if (seg.txn == 0 && seg.server == 1 && seg.start == outage_start) {
      handed_off = true;
    }
  }
  EXPECT_TRUE(preempted_at_instant);
  EXPECT_TRUE(handed_off);
}

TEST(ShardEventOrderTest, CompletionOnLowShardBeatsCrashOnHighShard) {
  // T0 on server 0 completes at the exact instant server 1 crashes
  // under T1. The completion (class 0) is processed first, then the
  // crash migrates T1 (warm) into the ready set, and the same-instant
  // scheduling round re-places it on the now-free server 0.
  FaultPlanConfig config;
  config.crash_rate = 0.05;
  config.mean_repair_duration = 5.0;
  config.seed = 3;
  auto plan = FaultPlan::Create(config);
  ASSERT_TRUE(plan.ok()) << plan.status();
  const SimTime crash_time =
      plan.ValueOrDie().StreamFor(1).next_crash_transition();
  const SimTime other_crash =
      plan.ValueOrDie().StreamFor(0).next_crash_transition();
  ASSERT_LT(crash_time, kNeverTime);
  ASSERT_LT(crash_time, other_crash);  // server 1 crashes first

  SimOptions options;
  options.num_servers = 2;
  options.fault_plan = plan.ValueOrDie();
  RecordingPolicy policy;
  const RunResult r = RunWith({Txn(0, 0.0, crash_time, 10.0 * crash_time),
                               Txn(1, 0.0, 1.25 * crash_time,
                                   10.0 * crash_time)},
                              policy, options);
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[0].finish, crash_time);
  EXPECT_EQ(r.num_migrations, 1u);
  EXPECT_EQ(r.outcomes[1].migrations, 1u);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kCompleted);
  // The migrated T1 resumed on server 0 at the crash instant (warm
  // failover retains the work, so its post-crash segment starts there).
  bool resumed_on_server0 = false;
  for (const ScheduleSegment& seg : r.schedule) {
    if (seg.txn == 1 && seg.server == 0 && seg.start == crash_time) {
      resumed_on_server0 = true;
    }
  }
  EXPECT_TRUE(resumed_on_server0);
}

TEST(ShardEventOrderTest, ColdMigrationHandoffBeforeFreshArrivalAtEqualTime) {
  // Server 1 crashes at the exact instant T2 arrives. Cold migration
  // re-announces the victim (OnCompletion dequeue + OnReady re-entry at
  // the crash instant); the crash (class 2) beats the arrival (class
  // 5), so the victim's handoff callbacks must precede T2's OnArrival.
  FaultPlanConfig config;
  config.crash_rate = 0.05;
  config.mean_repair_duration = 5.0;
  config.migration = MigrationPolicy::kCold;
  config.seed = 3;
  auto plan = FaultPlan::Create(config);
  ASSERT_TRUE(plan.ok()) << plan.status();
  const SimTime crash_time =
      plan.ValueOrDie().StreamFor(1).next_crash_transition();
  ASSERT_LT(crash_time, plan.ValueOrDie().StreamFor(0).next_crash_transition());

  SimOptions options;
  options.num_servers = 2;
  options.fault_plan = plan.ValueOrDie();
  RecordingPolicy policy;
  RunWith({Txn(0, 0.0, 3.0 * crash_time, 100.0 * crash_time),
           Txn(1, 0.0, 2.0 * crash_time, 100.0 * crash_time),
           Txn(2, crash_time, 0.5, 100.0 * crash_time)},
          policy, options);
  const auto& log = policy.log();
  const size_t dequeue1 = IndexOf(log, "completion", 1);
  const size_t arrive2 = IndexOf(log, "arrival", 2);
  ASSERT_NE(dequeue1, std::string::npos);
  ASSERT_NE(arrive2, std::string::npos);
  EXPECT_LT(dequeue1, arrive2);
  EXPECT_EQ(log[dequeue1].time, crash_time);
  EXPECT_EQ(log[arrive2].time, crash_time);
}

TEST(ShardEventOrderTest, CorrelatedCrashFellsVictimShardsInAscendingOrder) {
  // correlated_crash_prob = 1: the first natural crash instant fells
  // every other shard at the same double. The mailbox drains the
  // origin's own migration first, then victims ascending, so the
  // recorded windows are (origin, victim_low, victim_high) all sharing
  // the start instant.
  FaultPlanConfig config;
  config.crash_rate = 0.04;
  config.mean_repair_duration = 4.0;
  config.correlated_crash_prob = 1.0;
  config.seed = 13;
  auto plan = FaultPlan::Create(config);
  ASSERT_TRUE(plan.ok()) << plan.status();
  const size_t kServers = 3;
  uint32_t origin = 0;
  SimTime first_crash = kNeverTime;
  for (uint32_t s = 0; s < kServers; ++s) {
    const SimTime t = plan.ValueOrDie().StreamFor(s).next_crash_transition();
    if (t < first_crash) {
      first_crash = t;
      origin = s;
    }
  }
  ASSERT_LT(first_crash, kNeverTime);

  SimOptions options;
  options.num_servers = kServers;
  options.fault_plan = plan.ValueOrDie();
  RecordingPolicy policy;
  const RunResult r = RunWith({Txn(0, 0.0, 2.0 * first_crash, 1e6)}, policy,
                              options);
  ASSERT_GE(r.crashes.size(), kServers);
  EXPECT_EQ(r.crashes[0].server, origin);
  EXPECT_EQ(r.crashes[0].start, first_crash);
  // Victims follow in ascending server order at the same instant.
  uint32_t prev = 0;
  bool first_victim = true;
  for (size_t i = 1; i < kServers; ++i) {
    EXPECT_NE(r.crashes[i].server, origin);
    EXPECT_EQ(r.crashes[i].start, first_crash);
    if (!first_victim) {
      EXPECT_GT(r.crashes[i].server, prev);
    }
    prev = r.crashes[i].server;
    first_victim = false;
  }
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
}

// ---------------------------------------------------------------------------
// Exact-coincidence tie-breaks of the PENDING queue itself, shared
// between the historical binary heap (std::priority_queue over
// internal::PendingAfter — the exact shape of simulator.cc's
// PendingQueue) and the calendar-queue replacement behind
// SimOptions::pending_queue. The pending tier carries retry releases
// (kind 0) and deferred arrivals (kind 1); same-instant collisions
// between the two kinds, and between many events of one kind, must pop
// in the identical (time, kind, id) order from both structures.

using PendingHeap =
    std::priority_queue<internal::PendingEvent,
                        std::vector<internal::PendingEvent>,
                        internal::PendingAfter>;

struct WheelPendingTraits {
  static double TimeOf(const internal::PendingEvent& e) { return e.time; }
  static bool Before(const internal::PendingEvent& a,
                     const internal::PendingEvent& b) {
    return internal::PendingAfter{}(b, a);
  }
};

using PendingWheel =
    CalendarQueue<internal::PendingEvent, WheelPendingTraits>;

TEST(PendingCoincidenceTest, RetryBeatsDeferredArrivalAtEqualTimeInBoth) {
  // kind 0 (retry release) beats kind 1 (deferred arrival) at one
  // double; within a kind, lower id first. Push order is adversarial
  // (deferred first, descending ids).
  PendingHeap heap;
  PendingWheel wheel;
  const SimTime t = 0.1 + 0.2;
  for (const TxnId id : {9u, 4u, 7u}) {
    const internal::PendingEvent e{t, 1, id};
    heap.push(e);
    wheel.push(e);
  }
  for (const TxnId id : {8u, 3u, 5u}) {
    const internal::PendingEvent e{t, 0, id};
    heap.push(e);
    wheel.push(e);
  }
  const TxnId want_order[] = {3u, 5u, 8u, 4u, 7u, 9u};
  const uint8_t want_kind[] = {0, 0, 0, 1, 1, 1};
  for (size_t i = 0; i < 6; ++i) {
    ASSERT_FALSE(heap.empty());
    EXPECT_EQ(heap.top().id, want_order[i]);
    EXPECT_EQ(heap.top().kind, want_kind[i]);
    EXPECT_EQ(wheel.top().id, want_order[i]);
    EXPECT_EQ(wheel.top().kind, want_kind[i]);
    heap.pop();
    wheel.pop();
  }
  EXPECT_TRUE(wheel.empty());
}

TEST(PendingCoincidenceTest, RandomizedPendingStreamsPopIdentically) {
  // Simulator-shaped traffic: monotone-now pushes of retry/deferred
  // events with a coarse backoff grid (exact-double collisions by
  // construction), drained interleaved. Heap and wheel must agree on
  // every pop across many seeds.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    PendingHeap heap;
    PendingWheel wheel;
    SimTime now = 0.0;
    TxnId id = 0;
    for (int op = 0; op < 4000; ++op) {
      if (rng.NextInRange(0, 99) < 60 || heap.empty()) {
        // Backoff grid of quarter units, occasionally exactly `now` —
        // the same-instant reschedule produced when an abort fires at
        // the instant of a retry release.
        const SimTime t =
            now + static_cast<double>(rng.NextInRange(0, 16)) * 0.25;
        const internal::PendingEvent e{
            t, static_cast<uint8_t>(rng.NextInRange(0, 1)), id++};
        heap.push(e);
        wheel.push(e);
      } else {
        const internal::PendingEvent want = heap.top();
        const internal::PendingEvent got = wheel.top();
        ASSERT_EQ(got.time, want.time) << "seed " << seed << " op " << op;
        ASSERT_EQ(got.kind, want.kind) << "seed " << seed << " op " << op;
        ASSERT_EQ(got.id, want.id) << "seed " << seed << " op " << op;
        heap.pop();
        wheel.pop();
        now = want.time;
      }
    }
    while (!heap.empty()) {
      ASSERT_EQ(wheel.top().id, heap.top().id) << "seed " << seed;
      heap.pop();
      wheel.pop();
    }
    EXPECT_TRUE(wheel.empty());
  }
}

// ---------------------------------------------------------------------------
// The whole-loop coincidence scenarios above, replayed under every
// structure-knob combination: completion/outage, completion/crash,
// crash/arrival, and correlated-crash instants must digest identically
// whether the pending tier is the heap or the wheel and whether specs
// live in the vector or the SoA arena.

TEST(PendingCoincidenceTest, CrossShardCoincidencesSurviveStructureKnobs) {
  FaultPlanConfig config;
  config.crash_rate = 0.05;
  config.mean_repair_duration = 5.0;
  config.migration = MigrationPolicy::kCold;
  config.seed = 3;
  auto plan = FaultPlan::Create(config);
  ASSERT_TRUE(plan.ok()) << plan.status();
  const SimTime crash_time =
      plan.ValueOrDie().StreamFor(1).next_crash_transition();
  ASSERT_LT(crash_time, kNeverTime);

  SimOptions options;
  options.num_servers = 2;
  options.fault_plan = plan.ValueOrDie();
  options.record_outcomes = true;
  options.record_schedule = true;
  // T2 arrives at the exact crash instant — the crash/arrival collision.
  const std::vector<TransactionSpec> txns = {
      Txn(0, 0.0, 3.0 * crash_time, 100.0 * crash_time),
      Txn(1, 0.0, 2.0 * crash_time, 100.0 * crash_time),
      Txn(2, crash_time, 0.5, 100.0 * crash_time)};

  uint64_t want = 0;
  bool first = true;
  for (const PendingQueueImpl pq :
       {PendingQueueImpl::kBinaryHeap, PendingQueueImpl::kCalendarQueue}) {
    for (const TxnStoreLayout store :
         {TxnStoreLayout::kSpecVector, TxnStoreLayout::kArenaSoA}) {
      options.pending_queue = pq;
      options.txn_store = store;
      auto sim = Simulator::Create(txns, options);
      ASSERT_TRUE(sim.ok()) << sim.status();
      RecordingPolicy policy;
      const uint64_t digest = ScheduleDigest(sim.ValueOrDie().Run(policy));
      if (first) {
        want = digest;
        first = false;
      } else {
        EXPECT_EQ(digest, want)
            << "coincidence handling changed under pending_queue="
            << static_cast<int>(pq) << " txn_store=" << static_cast<int>(store);
      }
    }
  }
}

}  // namespace
}  // namespace webtx
