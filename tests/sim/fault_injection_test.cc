#include "sim/fault_plan.h"

#include <gtest/gtest.h>

#include "sched/policies/single_queue_policies.h"
#include "sched/policy_factory.h"
#include "sim/schedule_validator.h"
#include "sim/simulator.h"
#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::Txn;

FaultPlan MakePlan(double outage_rate, double mean_duration,
                   double abort_rate, uint64_t seed = 1) {
  FaultPlanConfig config;
  config.outage_rate = outage_rate;
  config.mean_outage_duration = mean_duration;
  config.abort_rate = abort_rate;
  config.seed = seed;
  auto plan = FaultPlan::Create(config);
  EXPECT_TRUE(plan.ok()) << plan.status();
  return plan.ValueOrDie();
}

TEST(FaultPlanTest, DefaultPlanInjectsNothing) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  FaultStream stream = plan.StreamFor(0);
  EXPECT_EQ(stream.next_transition(), kNeverTime);
  EXPECT_EQ(stream.next_abort(), kNeverTime);
}

TEST(FaultPlanTest, CreateRejectsBadConfig) {
  FaultPlanConfig outage_without_duration;
  outage_without_duration.outage_rate = 0.1;
  outage_without_duration.mean_outage_duration = 0.0;
  EXPECT_FALSE(FaultPlan::Create(outage_without_duration).ok());

  FaultPlanConfig negative_rate;
  negative_rate.abort_rate = -1.0;
  EXPECT_FALSE(FaultPlan::Create(negative_rate).ok());
}

TEST(FaultPlanTest, StreamsAreDeterministic) {
  const FaultPlan plan = MakePlan(0.1, 5.0, 0.2);
  FaultStream a = plan.StreamFor(0);
  FaultStream b = plan.StreamFor(0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(a.next_transition(), b.next_transition());
    EXPECT_EQ(a.next_abort(), b.next_abort());
    a.AdvanceTransition();
    b.AdvanceTransition();
    a.AdvanceAbort();
    b.AdvanceAbort();
  }
}

TEST(FaultPlanTest, ServersOwnIndependentStreams) {
  const FaultPlan plan = MakePlan(0.1, 5.0, 0.2);
  EXPECT_NE(plan.StreamFor(0).next_transition(),
            plan.StreamFor(1).next_transition());
  EXPECT_NE(plan.StreamFor(0).next_abort(), plan.StreamFor(1).next_abort());
}

TEST(FaultPlanTest, WithDerivedSeedReKeysTheTimeline) {
  const FaultPlan plan = MakePlan(0.1, 5.0, 0.2, /*seed=*/7);
  const FaultPlan rekeyed = plan.WithDerivedSeed(3);
  EXPECT_NE(plan.StreamFor(0).next_transition(),
            rekeyed.StreamFor(0).next_transition());
  // Re-keying is a pure function: same stream id, same timeline.
  EXPECT_EQ(plan.WithDerivedSeed(3).StreamFor(0).next_transition(),
            rekeyed.StreamFor(0).next_transition());
}

TEST(FaultPlanTest, TransitionsAlternateAndAdvance) {
  const FaultPlan plan = MakePlan(0.5, 2.0, 0.0);
  FaultStream stream = plan.StreamFor(0);
  SimTime last = 0.0;
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(stream.down(), i % 2 == 1);
    EXPECT_GT(stream.next_transition(), last);
    last = stream.next_transition();
    stream.AdvanceTransition();
  }
}

// ---------------------------------------------------------------------------
// Fault injection through the simulator.

RunResult RunFaulty(std::vector<TransactionSpec> txns,
                    SchedulerPolicy& policy, SimOptions options) {
  options.record_schedule = true;
  auto sim = Simulator::Create(std::move(txns), options);
  EXPECT_TRUE(sim.ok()) << sim.status();
  return sim.ValueOrDie().Run(policy);
}

TEST(FaultInjectionTest, OutagesDelayButNeverLoseWork) {
  // Outage-heavy, abort-free: the transaction must still complete, with
  // every executed slice accounted for (validator check 5: work
  // retained across preemptions).
  SimOptions options;
  options.fault_plan = MakePlan(0.2, 3.0, 0.0);
  FcfsPolicy policy;
  const std::vector<TransactionSpec> txns = {Txn(0, 0, 20, 100)};
  const RunResult r = RunFaulty(txns, policy, options);
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.goodput, 1.0);
  EXPECT_GT(r.num_outages, 0u);
  EXPECT_GT(r.total_outage_time, 0.0);
  EXPECT_GE(r.outcomes[0].finish, 20.0);
  ValidationOptions v;
  v.outages = r.outages;
  EXPECT_TRUE(ValidateSchedule(txns, r, v).ok())
      << ValidateSchedule(txns, r, v).ToString();
}

TEST(FaultInjectionTest, AbortOfLastAttemptDropsTheTransaction) {
  SimOptions options;
  options.fault_plan = MakePlan(0.0, 0.0, /*abort_rate=*/10.0);
  options.retry.max_attempts = 1;  // abort implies drop
  FcfsPolicy policy;
  const RunResult r = RunFaulty({Txn(0, 0, 5, 100)}, policy, options);
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kDroppedRetries);
  EXPECT_TRUE(r.outcomes[0].missed_deadline);
  EXPECT_EQ(r.num_dropped_retries, 1u);
  EXPECT_EQ(r.num_aborts, 1u);
  EXPECT_EQ(r.num_retries, 0u);
  EXPECT_EQ(r.goodput, 0.0);
}

TEST(FaultInjectionTest, RetriesRestartFromScratchUntilCompletion) {
  SimOptions options;
  options.fault_plan = MakePlan(0.0, 0.0, /*abort_rate=*/1.0);
  options.retry.max_attempts = 1000;
  FcfsPolicy policy;
  const std::vector<TransactionSpec> txns = {Txn(0, 0, 2, 100)};
  const RunResult r = RunFaulty(txns, policy, options);
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_GT(r.outcomes[0].aborts, 0u);
  EXPECT_EQ(r.num_retries, static_cast<size_t>(r.outcomes[0].aborts));
  // The final attempt runs the full length: with every abort the finish
  // moves past one more lost attempt.
  EXPECT_GT(r.outcomes[0].finish, 2.0);
  ValidationOptions v;
  v.outages = r.outages;
  EXPECT_TRUE(ValidateSchedule(txns, r, v).ok())
      << ValidateSchedule(txns, r, v).ToString();
}

TEST(FaultInjectionTest, BackoffSuspendsTheVictimBetweenAttempts) {
  SimOptions options;
  options.fault_plan = MakePlan(0.0, 0.0, /*abort_rate=*/1.0);
  options.retry.max_attempts = 1000;
  options.retry.backoff = 4.0;
  // Constant backoff: with a rate-1 abort stream the simulator pays one
  // (no-op) event per time unit, so an exponentially growing delay would
  // stretch the horizon — and the event count — geometrically.
  options.retry.backoff_multiplier = 1.0;
  EdfPolicy policy;
  // A second transaction keeps the server busy while T0 waits out its
  // backoff; the policy must never pick the suspended transaction (the
  // simulator CHECKs every pick against IsReady).
  const std::vector<TransactionSpec> txns = {Txn(0, 0, 2, 50),
                                             Txn(1, 0, 30, 100)};
  const RunResult r = RunFaulty(txns, policy, options);
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  // T1 (length 30 under a rate-1 abort stream) realistically burns all
  // 1000 attempts; either terminal state is fine — the property under
  // test is T0's suspension handling.
  EXPECT_NE(r.outcomes[1].fate, TxnFate::kShedAdmission);
  ASSERT_GT(r.outcomes[0].aborts, 0u);
  // First abort at t0, release at t0 + 4: the finish reflects at least
  // the first backoff on top of lost work.
  EXPECT_GT(r.outcomes[0].finish, 2.0 + 4.0);
}

TEST(FaultInjectionTest, FaultTimelineIsPolicyIndependent) {
  SimOptions options;
  options.fault_plan = MakePlan(0.05, 4.0, 0.1);
  auto sim = Simulator::Create(
      {Txn(0, 0, 8, 30), Txn(1, 1, 5, 20), Txn(2, 2, 12, 60),
       Txn(3, 4, 3, 15), Txn(4, 6, 7, 40)},
      options);
  ASSERT_TRUE(sim.ok());
  FcfsPolicy fcfs;
  EdfPolicy edf;
  const RunResult a = sim.ValueOrDie().Run(fcfs);
  const RunResult b = sim.ValueOrDie().Run(edf);
  ASSERT_EQ(a.outages.size(), b.outages.size());
  for (size_t i = 0; i < a.outages.size(); ++i) {
    EXPECT_EQ(a.outages[i].server, b.outages[i].server);
    EXPECT_EQ(a.outages[i].start, b.outages[i].start);
    EXPECT_EQ(a.outages[i].end, b.outages[i].end);
  }
}

TEST(FaultInjectionTest, RerunReplaysTheIdenticalTimeline) {
  SimOptions options;
  options.fault_plan = MakePlan(0.05, 4.0, 0.2);
  options.retry.max_attempts = 5;
  auto sim = Simulator::Create(
      {Txn(0, 0, 8, 30), Txn(1, 1, 5, 20), Txn(2, 2, 12, 60)}, options);
  ASSERT_TRUE(sim.ok());
  EdfPolicy policy;
  const RunResult a = sim.ValueOrDie().Run(policy);
  const RunResult b = sim.ValueOrDie().Run(policy);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].finish, b.outcomes[i].finish);
    EXPECT_EQ(a.outcomes[i].fate, b.outcomes[i].fate);
    EXPECT_EQ(a.outcomes[i].aborts, b.outcomes[i].aborts);
  }
  EXPECT_EQ(a.num_aborts, b.num_aborts);
  EXPECT_EQ(a.num_outages, b.num_outages);
}

TEST(FaultInjectionTest, DropCascadesToDependents) {
  SimOptions options;
  options.fault_plan = MakePlan(0.0, 0.0, /*abort_rate=*/10.0);
  options.retry.max_attempts = 1;
  EdfPolicy policy;
  // T0 is certain to abort under rate 10; T1 depends on it and T2 on T1.
  const RunResult r =
      RunFaulty({Txn(0, 0, 5, 100), Txn(1, 0, 2, 100, 1.0, {0}),
                 Txn(2, 0, 2, 100, 1.0, {1})},
                policy, options);
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kDroppedRetries);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kDroppedDependency);
  EXPECT_EQ(r.outcomes[2].fate, TxnFate::kDroppedDependency);
  EXPECT_EQ(r.num_dropped_dependency, 2u);
  // All three resolve at the abort instant.
  EXPECT_EQ(r.outcomes[1].finish, r.outcomes[0].finish);
  EXPECT_EQ(r.outcomes[2].finish, r.outcomes[0].finish);
}

TEST(FaultInjectionTest, AllPoliciesSurviveFaultsAndValidate) {
  std::vector<TransactionSpec> txns;
  for (TxnId i = 0; i < 40; ++i) {
    txns.push_back(Txn(i, 0.7 * static_cast<double>(i),
                       1.0 + static_cast<double>(i % 7),
                       10.0 + 2.0 * static_cast<double>(i),
                       1.0 + static_cast<double>(i % 3)));
  }
  // Chain a few workflows so drop cascades and ASETS* representatives
  // are exercised.
  txns[5].dependencies = {2};
  txns[9].dependencies = {5};
  txns[17].dependencies = {11};
  txns[30].dependencies = {17, 21};
  SimOptions options;
  options.fault_plan = MakePlan(0.03, 4.0, 0.05);
  options.retry.max_attempts = 3;
  options.retry.backoff = 1.0;
  for (const char* name : {"FCFS", "EDF", "SRPT", "HDF", "ASETS", "ASETS*"}) {
    for (const size_t servers : {1u, 2u, 3u}) {
      SimOptions run_options = options;
      run_options.num_servers = servers;
      auto policy = CreatePolicy(name);
      ASSERT_TRUE(policy.ok());
      const RunResult r = RunFaulty(txns, *policy.ValueOrDie(), run_options);
      ValidationOptions v;
      v.num_servers = servers;
      v.outages = r.outages;
      EXPECT_TRUE(ValidateSchedule(txns, r, v).ok())
          << name << " k=" << servers << ": "
          << ValidateSchedule(txns, r, v).ToString();
      EXPECT_EQ(r.num_completed + r.num_shed + r.num_dropped_retries +
                    r.num_dropped_dependency,
                txns.size())
          << name << " k=" << servers;
    }
  }
}

}  // namespace
}  // namespace webtx
