#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "sched/policies/single_queue_policies.h"
#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::Txn;

RunResult RunWith(std::vector<TransactionSpec> txns, SchedulerPolicy& policy,
                  SimOptions options = {}) {
  auto sim = Simulator::Create(std::move(txns), options);
  EXPECT_TRUE(sim.ok()) << sim.status();
  return sim.ValueOrDie().Run(policy);
}

TEST(SimulatorTest, SingleTransactionRunsImmediately) {
  FcfsPolicy policy;
  const RunResult r = RunWith({Txn(0, 2.0, 5.0, 10.0)}, policy);
  EXPECT_EQ(r.outcomes[0].finish, 7.0);
  EXPECT_EQ(r.outcomes[0].tardiness, 0.0);
  EXPECT_EQ(r.outcomes[0].response, 5.0);
  EXPECT_FALSE(r.outcomes[0].missed_deadline);
  EXPECT_EQ(r.makespan, 7.0);
}

TEST(SimulatorTest, TardinessRecordedWhenLate) {
  FcfsPolicy policy;
  const RunResult r = RunWith({Txn(0, 0.0, 5.0, 3.0, 2.0)}, policy);
  EXPECT_EQ(r.outcomes[0].finish, 5.0);
  EXPECT_EQ(r.outcomes[0].tardiness, 2.0);
  EXPECT_EQ(r.outcomes[0].weighted_tardiness, 4.0);
  EXPECT_TRUE(r.outcomes[0].missed_deadline);
}

TEST(SimulatorTest, FcfsRunsInArrivalOrder) {
  FcfsPolicy policy;
  const RunResult r = RunWith(
      {Txn(0, 0, 4, 100), Txn(1, 1, 2, 100), Txn(2, 2, 3, 100)}, policy);
  EXPECT_EQ(r.outcomes[0].finish, 4.0);
  EXPECT_EQ(r.outcomes[1].finish, 6.0);
  EXPECT_EQ(r.outcomes[2].finish, 9.0);
  EXPECT_EQ(r.num_preemptions, 0u);
}

TEST(SimulatorTest, SrptPreemptsOnShorterArrival) {
  SrptPolicy policy;
  // T0 (len 10) starts at 0; T1 (len 2) arrives at 3 and preempts.
  const RunResult r = RunWith({Txn(0, 0, 10, 100), Txn(1, 3, 2, 100)}, policy);
  EXPECT_EQ(r.outcomes[1].finish, 5.0);
  EXPECT_EQ(r.outcomes[0].finish, 12.0);
  EXPECT_EQ(r.num_preemptions, 1u);
}

TEST(SimulatorTest, LongArrivalDoesNotPreemptSrpt) {
  SrptPolicy policy;
  const RunResult r = RunWith({Txn(0, 0, 5, 100), Txn(1, 1, 9, 100)}, policy);
  EXPECT_EQ(r.outcomes[0].finish, 5.0);
  EXPECT_EQ(r.outcomes[1].finish, 14.0);
  EXPECT_EQ(r.num_preemptions, 0u);
}

TEST(SimulatorTest, DependenciesGateExecution) {
  // T1 depends on T0 but has an earlier deadline and arrives first; it
  // still cannot start before T0 finishes.
  EdfPolicy policy;
  const RunResult r =
      RunWith({Txn(0, 5, 4, 100), Txn(1, 0, 2, 10, 1.0, {0})}, policy);
  EXPECT_EQ(r.outcomes[0].finish, 9.0);
  EXPECT_EQ(r.outcomes[1].finish, 11.0);
  EXPECT_TRUE(r.outcomes[1].missed_deadline);
}

TEST(SimulatorTest, DiamondDependencyOrder) {
  FcfsPolicy policy;
  const RunResult r = RunWith(
      {Txn(0, 0, 2, 100), Txn(1, 0, 3, 100, 1.0, {0}),
       Txn(2, 0, 4, 100, 1.0, {0}), Txn(3, 0, 1, 100, 1.0, {1, 2})},
      policy);
  EXPECT_EQ(r.outcomes[0].finish, 2.0);
  // T1 and T2 became ready when T0 finished; FCFS ties by arrival then id.
  EXPECT_EQ(r.outcomes[1].finish, 5.0);
  EXPECT_EQ(r.outcomes[2].finish, 9.0);
  EXPECT_EQ(r.outcomes[3].finish, 10.0);
}

TEST(SimulatorTest, IdleGapBetweenArrivals) {
  FcfsPolicy policy;
  const RunResult r = RunWith({Txn(0, 0, 1, 10), Txn(1, 50, 1, 60)}, policy);
  EXPECT_EQ(r.outcomes[0].finish, 1.0);
  EXPECT_EQ(r.outcomes[1].finish, 51.0);
  EXPECT_GT(r.num_idle_decisions, 0u);
}

TEST(SimulatorTest, SimultaneousArrivalsAllProcessed) {
  SrptPolicy policy;
  const RunResult r = RunWith(
      {Txn(0, 1, 3, 100), Txn(1, 1, 1, 100), Txn(2, 1, 2, 100)}, policy);
  EXPECT_EQ(r.outcomes[1].finish, 2.0);
  EXPECT_EQ(r.outcomes[2].finish, 4.0);
  EXPECT_EQ(r.outcomes[0].finish, 7.0);
}

TEST(SimulatorTest, CompletionProcessedBeforeSimultaneousArrival) {
  // T0 completes exactly when T1 arrives; the server must not "see" T1
  // before T0's completion is accounted (no preemption counted).
  FcfsPolicy policy;
  const RunResult r = RunWith({Txn(0, 0, 5, 100), Txn(1, 5, 1, 100)}, policy);
  EXPECT_EQ(r.outcomes[0].finish, 5.0);
  EXPECT_EQ(r.outcomes[1].finish, 6.0);
  EXPECT_EQ(r.num_preemptions, 0u);
}

TEST(SimulatorTest, ContextSwitchCostDelaysDispatch) {
  SimOptions options;
  options.context_switch_cost = 0.5;
  SrptPolicy policy;
  const RunResult r =
      RunWith({Txn(0, 0, 10, 100), Txn(1, 3, 2, 100)}, policy, options);
  // Dispatch at t=0 costs 0.5 (cold start), so T0 runs [0.5, ...); T1
  // arrives at 3, preempts (0.5 switch), runs [3.5, 5.5); T0 resumes with
  // another 0.5 switch.
  EXPECT_EQ(r.outcomes[1].finish, 5.5);
  EXPECT_EQ(r.outcomes[0].finish, 13.5);
}

TEST(SimulatorTest, RunIsRepeatableAndReusable) {
  auto sim = Simulator::Create(
      {Txn(0, 0, 4, 6), Txn(1, 1, 2, 5), Txn(2, 2, 3, 20)});
  ASSERT_TRUE(sim.ok());
  EdfPolicy edf;
  SrptPolicy srpt;
  const RunResult a1 = sim.ValueOrDie().Run(edf);
  const RunResult b = sim.ValueOrDie().Run(srpt);
  const RunResult a2 = sim.ValueOrDie().Run(edf);
  ASSERT_EQ(a1.outcomes.size(), a2.outcomes.size());
  for (size_t i = 0; i < a1.outcomes.size(); ++i) {
    EXPECT_EQ(a1.outcomes[i].finish, a2.outcomes[i].finish);
  }
  EXPECT_EQ(a1.policy_name, "EDF");
  EXPECT_EQ(b.policy_name, "SRPT");
}

TEST(SimulatorTest, RecordOutcomesOffDropsPerTxnData) {
  SimOptions options;
  options.record_outcomes = false;
  FcfsPolicy policy;
  const RunResult r = RunWith({Txn(0, 0, 1, 10)}, policy, options);
  EXPECT_TRUE(r.outcomes.empty());
  EXPECT_EQ(r.makespan, 1.0);  // aggregates still computed
}

TEST(SimulatorTest, SchedulingPointsCounted) {
  FcfsPolicy policy;
  const RunResult r = RunWith({Txn(0, 0, 1, 10), Txn(1, 0.5, 1, 10)}, policy);
  // Events: arrival(T0), arrival(T1), completion(T0), completion(T1).
  EXPECT_EQ(r.num_scheduling_points, 4u);
}

TEST(SimulatorTest, EstimatesSteerThePolicyButTruthDrivesCompletions) {
  // SRPT plans with estimates: T0 looks short (est 1, truly 10), T1 looks
  // long (est 10, truly 1). SRPT must run T0 first — and T0 still takes
  // its TRUE 10 time units.
  std::vector<TransactionSpec> txns = {Txn(0, 0, 10, 100),
                                       Txn(1, 0, 1, 100)};
  txns[0].length_estimate = 1.0;
  txns[1].length_estimate = 10.0;
  SrptPolicy policy;
  const RunResult r = RunWith(txns, policy);
  EXPECT_EQ(r.outcomes[0].finish, 10.0);
  EXPECT_EQ(r.outcomes[1].finish, 11.0);
}

TEST(SimulatorTest, ExactEstimateIsDefault) {
  // Unset estimate behaves exactly like the pre-estimate model.
  std::vector<TransactionSpec> plain = {Txn(0, 0, 10, 100),
                                        Txn(1, 0, 1, 100)};
  auto with_estimates = plain;
  with_estimates[0].length_estimate = 10.0;
  with_estimates[1].length_estimate = 1.0;
  SrptPolicy policy;
  const RunResult a = RunWith(plain, policy);
  const RunResult b = RunWith(with_estimates, policy);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(a.outcomes[i].finish, b.outcomes[i].finish);
  }
}

TEST(SimulatorTest, UnderestimatedTransactionKeepsRunningToTrueLength) {
  // A transaction that overruns its estimate must still complete after
  // its true length; the policy-visible remaining time floors near zero
  // instead of going negative.
  std::vector<TransactionSpec> txns = {Txn(0, 0, 10, 100), Txn(1, 4, 2, 6)};
  txns[0].length_estimate = 2.0;  // wildly optimistic
  SrptPolicy policy;
  const RunResult r = RunWith(txns, policy);
  // T1 arrives at 4; T0's estimated remaining is floored tiny, so SRPT
  // keeps T0... T0 actually finishes at 10 (true length).
  EXPECT_EQ(r.outcomes[0].finish, 10.0);
  EXPECT_EQ(r.outcomes[1].finish, 12.0);
}

TEST(SimulatorTest, CreateRejectsNegativeEstimate) {
  std::vector<TransactionSpec> txns = {Txn(0, 0, 1, 10)};
  txns[0].length_estimate = -1.0;
  EXPECT_FALSE(Simulator::Create(txns).ok());
}

TEST(SimulatorTest, CreateRejectsBadWorkloads) {
  EXPECT_FALSE(Simulator::Create({Txn(0, 0, 0, 10)}).ok());    // zero length
  EXPECT_FALSE(Simulator::Create({Txn(0, -1, 1, 10)}).ok());   // negative a
  EXPECT_FALSE(
      Simulator::Create({Txn(0, 0, 1, 10, 0.0)}).ok());        // zero weight
  EXPECT_FALSE(
      Simulator::Create({Txn(0, 0, 1, 10, 1.0, {0})}).ok());   // self dep
  EXPECT_FALSE(Simulator::Create({Txn(3, 0, 1, 10)}).ok());    // bad id
}

TEST(SimulatorTest, EmptyWorkloadFinishesImmediately) {
  auto sim = Simulator::Create({});
  ASSERT_TRUE(sim.ok());
  FcfsPolicy policy;
  const RunResult r = sim.ValueOrDie().Run(policy);
  EXPECT_TRUE(r.outcomes.empty());
  EXPECT_EQ(r.num_scheduling_points, 0u);
}

TEST(SimulatorTest, ExposesSimViewState) {
  auto sim = Simulator::Create({Txn(0, 0, 2, 10), Txn(1, 0, 3, 10, 1.0, {0})});
  ASSERT_TRUE(sim.ok());
  const Simulator& view = sim.ValueOrDie();
  EXPECT_EQ(view.specs().size(), 2u);
  EXPECT_EQ(view.graph().num_edges(), 1u);
  EXPECT_EQ(view.workflows().num_workflows(), 1u);
}

}  // namespace
}  // namespace webtx
