// Differential matrix for the huge-scale structure knobs: flipping
// SimOptions::pending_queue (binary heap -> calendar queue) and
// SimOptions::txn_store (spec vector -> arena SoA) — separately and
// together — must leave the ScheduleDigest of every run BYTE-IDENTICAL
// across all policies x topologies x fault regimes x crash regimes x
// server counts x shard threads. The knobs exist purely to change the
// asymptotics of 10^6+-transaction runs; they are never allowed to be
// observable in results. Also pins "ASETS*-lazy" (the lazy-delete-heap
// ASETS* instantiation) to plain "ASETS*": identical pop order implies
// identical schedules, so the two names must digest equal.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exp/chaos.h"
#include "sched/admission.h"
#include "sched/policy_factory.h"
#include "sim/fault_plan.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace webtx {
namespace {

struct KnobCombo {
  PendingQueueImpl pending_queue;
  TxnStoreLayout txn_store;
  const char* label;
};

// First entry is the historical baseline; the other three must match it.
constexpr KnobCombo kCombos[] = {
    {PendingQueueImpl::kBinaryHeap, TxnStoreLayout::kSpecVector, "heap+vec"},
    {PendingQueueImpl::kCalendarQueue, TxnStoreLayout::kSpecVector,
     "wheel+vec"},
    {PendingQueueImpl::kBinaryHeap, TxnStoreLayout::kArenaSoA, "heap+soa"},
    {PendingQueueImpl::kCalendarQueue, TxnStoreLayout::kArenaSoA,
     "wheel+soa"},
};

std::vector<TransactionSpec> MakeWorkload(bool workflows, uint64_t seed) {
  WorkloadSpec spec;
  spec.num_transactions = 80;
  spec.utilization = 0.9;
  spec.min_weight = 1;
  spec.max_weight = 10;
  spec.estimate_error = 0.2;  // estimate floor paths differ per store
  if (workflows) {
    spec.max_workflow_length = 4;
    spec.max_workflows_per_txn = 2;
  }
  auto generator = WorkloadGenerator::Create(spec);
  EXPECT_TRUE(generator.ok()) << generator.status();
  return generator.ValueOrDie().Generate(seed);
}

enum class Regime { kFailureFree, kFaulty, kCrashy, kCorrelated, kRetryStorm };

SimOptions RegimeOptions(Regime regime, size_t num_servers) {
  SimOptions options;
  options.num_servers = num_servers;
  options.record_outcomes = true;
  options.record_schedule = true;
  FaultPlanConfig fault;
  fault.seed = 2009 + num_servers;
  switch (regime) {
    case Regime::kFailureFree:
      return options;
    case Regime::kFaulty:
      fault.outage_rate = 0.02;
      fault.mean_outage_duration = 6.0;
      fault.abort_rate = 0.03;
      options.retry.max_attempts = 3;
      options.retry.backoff = 1.5;
      options.retry.max_backoff = 20.0;
      options.admission = MakeQueueDepthAdmission(
          QueueDepthAdmissionOptions{/*max_ready=*/24, /*defer_delay=*/2.0,
                                     /*max_defers=*/3});
      break;
    case Regime::kCrashy:
      fault.outage_rate = 0.01;
      fault.mean_outage_duration = 4.0;
      fault.abort_rate = 0.02;
      fault.crash_rate = 0.015;
      fault.mean_repair_duration = 8.0;
      fault.migration = MigrationPolicy::kCold;
      break;
    case Regime::kCorrelated:
      fault.crash_rate = 0.02;
      fault.mean_repair_duration = 6.0;
      fault.correlated_crash_prob = 0.35;
      fault.migration = MigrationPolicy::kWarm;
      break;
    case Regime::kRetryStorm:
      // The pending queue is only populated by retry backoffs and
      // deferred admissions; this regime floods it so the calendar
      // queue actually carries load (same-instant retries, cascades).
      fault.abort_rate = 0.8;
      options.retry.max_attempts = 5;
      options.retry.backoff = 0.5;
      options.retry.max_backoff = 4.0;
      options.admission = MakeQueueDepthAdmission(
          QueueDepthAdmissionOptions{/*max_ready=*/8, /*defer_delay=*/1.0,
                                     /*max_defers=*/5});
      break;
  }
  auto plan = FaultPlan::Create(fault);
  EXPECT_TRUE(plan.ok()) << plan.status();
  options.fault_plan = plan.ValueOrDie();
  return options;
}

std::vector<std::string> PolicySpecs() {
  std::vector<std::string> specs = KnownPolicyNames();
  specs.push_back("MIX(0.5)");
  specs.push_back("ASETS*-BA(time=0.01)");
  specs.push_back("ASETS*-lazy");
  return specs;
}

uint64_t DigestOf(const std::vector<TransactionSpec>& txns, SimOptions options,
                  const std::string& spec, const KnobCombo& combo) {
  options.pending_queue = combo.pending_queue;
  options.txn_store = combo.txn_store;
  auto sim = Simulator::Create(txns, options);
  EXPECT_TRUE(sim.ok()) << sim.status();
  auto policy = CreatePolicy(spec);
  EXPECT_TRUE(policy.ok()) << policy.status();
  return ScheduleDigest(sim.ValueOrDie().Run(*policy.ValueOrDie()));
}

void RunMatrix(Regime regime) {
  const std::vector<std::string> specs = PolicySpecs();
  for (const bool workflows : {false, true}) {
    for (const size_t servers : {size_t{1}, size_t{4}}) {
      const std::vector<TransactionSpec> txns =
          MakeWorkload(workflows, 7u + servers + (workflows ? 100u : 0u));
      const SimOptions options = RegimeOptions(regime, servers);
      for (const std::string& spec : specs) {
        const uint64_t want = DigestOf(txns, options, spec, kCombos[0]);
        for (size_t c = 1; c < 4; ++c) {
          EXPECT_EQ(DigestOf(txns, options, spec, kCombos[c]), want)
              << "structure knob changed results: policy=" << spec
              << " combo=" << kCombos[c].label << " workflows=" << workflows
              << " servers=" << servers;
        }
      }
    }
  }
}

TEST(HugeStructuresDifferentialTest, FailureFreeMatrix) {
  RunMatrix(Regime::kFailureFree);
}

TEST(HugeStructuresDifferentialTest, FaultyMatrix) {
  RunMatrix(Regime::kFaulty);
}

TEST(HugeStructuresDifferentialTest, CrashyMatrix) {
  RunMatrix(Regime::kCrashy);
}

TEST(HugeStructuresDifferentialTest, CorrelatedCrashMatrix) {
  RunMatrix(Regime::kCorrelated);
}

TEST(HugeStructuresDifferentialTest, RetryStormMatrix) {
  RunMatrix(Regime::kRetryStorm);
}

// The knobs must also be invisible across shard-thread counts: the
// calendar queue and SoA store live behind the same event loop the shard
// workers drive.
TEST(HugeStructuresDifferentialTest, KnobsInvariantAcrossShardThreads) {
  const std::vector<TransactionSpec> txns = MakeWorkload(true, 42);
  SimOptions options = RegimeOptions(Regime::kCrashy, 4);
  const uint64_t want = DigestOf(txns, options, "ASETS*", kCombos[0]);
  for (const size_t threads : {size_t{2}, size_t{8}}) {
    options.shard_threads = threads;
    for (const KnobCombo& combo : kCombos) {
      EXPECT_EQ(DigestOf(txns, options, "ASETS*", combo), want)
          << "combo=" << combo.label << " shard_threads=" << threads;
    }
  }
}

// ASETS*-lazy IS ASETS* behaviorally: same impact rule, same tie-breaks,
// only the priority structure differs. Digest equality across the whole
// regime x topology grid is the proof the lazy-delete heap is safe to
// swap into the hot path.
TEST(HugeStructuresDifferentialTest, LazyAsetsStarMatchesIndexedAsetsStar) {
  for (const Regime regime :
       {Regime::kFailureFree, Regime::kFaulty, Regime::kCrashy,
        Regime::kCorrelated, Regime::kRetryStorm}) {
    for (const bool workflows : {false, true}) {
      for (const size_t servers : {size_t{1}, size_t{2}, size_t{8}}) {
        const std::vector<TransactionSpec> txns =
            MakeWorkload(workflows, 11u + servers);
        const SimOptions options = RegimeOptions(regime, servers);
        EXPECT_EQ(DigestOf(txns, options, "ASETS*-lazy", kCombos[0]),
                  DigestOf(txns, options, "ASETS*", kCombos[0]))
            << "workflows=" << workflows << " servers=" << servers;
      }
    }
  }
}

// Factory-level registration contract: "ASETS*-lazy" resolves, reports
// its own name, but stays OUT of KnownPolicyNames() (the paper-facing
// sweep set is unchanged; the lazy variant is an opt-in implementation
// detail).
TEST(HugeStructuresDifferentialTest, LazyVariantRegistration) {
  auto policy = CreatePolicy("ASETS*-lazy");
  ASSERT_TRUE(policy.ok()) << policy.status();
  EXPECT_EQ(policy.ValueOrDie()->name(), "ASETS*-lazy");
  for (const std::string& name : KnownPolicyNames()) {
    EXPECT_NE(name, "ASETS*-lazy");
  }
}

}  // namespace
}  // namespace webtx
