// Differential matrix pinning the sharded simulator to the frozen
// pre-shard implementation (tests/testing/reference_simulator.h): for
// every (policy, topology, fault regime, num_servers, shard_threads)
// combination the ScheduleDigest — schedule segments, outcomes, and all
// counters — must be byte-identical. This is the tentpole guarantee of
// the shard refactor: sharding is a pure reorganization of the event
// loop, never observable in results.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exp/chaos.h"
#include "sched/admission.h"
#include "sched/policy_factory.h"
#include "sim/fault_plan.h"
#include "sim/simulator.h"
#include "testing/reference_simulator.h"
#include "workload/generator.h"

namespace webtx {
namespace {

constexpr size_t kServers[] = {1, 2, 4, 8};
constexpr size_t kShardThreads[] = {1, 2, 8};

std::vector<TransactionSpec> MakeWorkload(bool workflows, uint64_t seed) {
  WorkloadSpec spec;
  spec.num_transactions = 80;
  spec.utilization = 0.9;
  spec.min_weight = 1;
  spec.max_weight = 10;
  spec.estimate_error = 0.2;  // exercises the estimate floor paths
  if (workflows) {
    spec.max_workflow_length = 4;
    spec.max_workflows_per_txn = 2;
  }
  auto generator = WorkloadGenerator::Create(spec);
  EXPECT_TRUE(generator.ok()) << generator.status();
  return generator.ValueOrDie().Generate(seed);
}

enum class Regime { kFailureFree, kFaulty, kCrashy, kCorrelated };

SimOptions RegimeOptions(Regime regime, size_t num_servers) {
  SimOptions options;
  options.num_servers = num_servers;
  options.record_outcomes = true;
  options.record_schedule = true;
  FaultPlanConfig fault;
  fault.seed = 2009 + num_servers;
  switch (regime) {
    case Regime::kFailureFree:
      return options;
    case Regime::kFaulty:
      fault.outage_rate = 0.02;
      fault.mean_outage_duration = 6.0;
      fault.abort_rate = 0.03;
      options.retry.max_attempts = 3;
      options.retry.backoff = 1.5;
      options.retry.max_backoff = 20.0;
      options.admission = MakeQueueDepthAdmission(
          QueueDepthAdmissionOptions{/*max_ready=*/24, /*defer_delay=*/2.0,
                                     /*max_defers=*/3});
      break;
    case Regime::kCrashy:
      fault.outage_rate = 0.01;
      fault.mean_outage_duration = 4.0;
      fault.abort_rate = 0.02;
      fault.crash_rate = 0.015;
      fault.mean_repair_duration = 8.0;
      fault.migration = MigrationPolicy::kCold;
      break;
    case Regime::kCorrelated:
      fault.crash_rate = 0.02;
      fault.mean_repair_duration = 6.0;
      fault.correlated_crash_prob = 0.35;
      fault.migration = MigrationPolicy::kWarm;
      break;
  }
  auto plan = FaultPlan::Create(fault);
  EXPECT_TRUE(plan.ok()) << plan.status();
  options.fault_plan = plan.ValueOrDie();
  return options;
}

std::vector<std::string> PolicySpecs() {
  std::vector<std::string> specs = KnownPolicyNames();
  specs.push_back("MIX(0.5)");
  specs.push_back("ASETS*-BA(time=0.01)");
  return specs;
}

uint64_t ReferenceDigest(const std::vector<TransactionSpec>& txns,
                         const SimOptions& options, const std::string& spec) {
  auto sim = testing::ReferenceSimulator::Create(txns, options);
  EXPECT_TRUE(sim.ok()) << sim.status();
  auto policy = CreatePolicy(spec);
  EXPECT_TRUE(policy.ok()) << policy.status();
  return ScheduleDigest(sim.ValueOrDie().Run(*policy.ValueOrDie()));
}

RunResult RunSharded(const std::vector<TransactionSpec>& txns,
                     SimOptions options, const std::string& spec,
                     size_t shard_threads) {
  options.shard_threads = shard_threads;
  auto sim = Simulator::Create(txns, options);
  EXPECT_TRUE(sim.ok()) << sim.status();
  auto policy = CreatePolicy(spec);
  EXPECT_TRUE(policy.ok()) << policy.status();
  return sim.ValueOrDie().Run(*policy.ValueOrDie());
}

void RunMatrix(Regime regime) {
  const std::vector<std::string> specs = PolicySpecs();
  for (const bool workflows : {false, true}) {
    for (const size_t servers : kServers) {
      const std::vector<TransactionSpec> txns =
          MakeWorkload(workflows, 7u + servers + (workflows ? 100u : 0u));
      const SimOptions options = RegimeOptions(regime, servers);
      for (const std::string& spec : specs) {
        const uint64_t want = ReferenceDigest(txns, options, spec);
        for (const size_t threads : kShardThreads) {
          const RunResult got = RunSharded(txns, options, spec, threads);
          EXPECT_EQ(ScheduleDigest(got), want)
              << "sharded simulator diverged from the pre-shard reference: "
              << "policy=" << spec << " workflows=" << workflows
              << " servers=" << servers << " shard_threads=" << threads;
        }
      }
    }
  }
}

TEST(ShardedDifferentialTest, FailureFreeMatrix) {
  RunMatrix(Regime::kFailureFree);
}

TEST(ShardedDifferentialTest, FaultyMatrix) { RunMatrix(Regime::kFaulty); }

TEST(ShardedDifferentialTest, CrashyMatrix) { RunMatrix(Regime::kCrashy); }

TEST(ShardedDifferentialTest, CorrelatedCrashMatrix) {
  RunMatrix(Regime::kCorrelated);
}

// Counter-level cross-check with readable failure messages: the digest
// above proves equality, this names the first differing field when a
// regression is being debugged.
TEST(ShardedDifferentialTest, CountersMatchReference) {
  const std::vector<TransactionSpec> txns = MakeWorkload(true, 42);
  const SimOptions options = RegimeOptions(Regime::kCrashy, 4);
  auto ref_sim = testing::ReferenceSimulator::Create(txns, options);
  ASSERT_TRUE(ref_sim.ok()) << ref_sim.status();
  auto ref_policy = CreatePolicy("ASETS*");
  ASSERT_TRUE(ref_policy.ok()) << ref_policy.status();
  const RunResult want = ref_sim.ValueOrDie().Run(*ref_policy.ValueOrDie());
  for (const size_t threads : kShardThreads) {
    const RunResult got = RunSharded(txns, options, "ASETS*", threads);
    EXPECT_EQ(got.num_scheduling_points, want.num_scheduling_points);
    EXPECT_EQ(got.num_preemptions, want.num_preemptions);
    EXPECT_EQ(got.num_idle_decisions, want.num_idle_decisions);
    EXPECT_EQ(got.num_outages, want.num_outages);
    EXPECT_EQ(got.num_outage_preemptions, want.num_outage_preemptions);
    EXPECT_EQ(got.num_crashes, want.num_crashes);
    EXPECT_EQ(got.num_migrations, want.num_migrations);
    EXPECT_EQ(got.num_retries, want.num_retries);
    EXPECT_EQ(got.total_outage_time, want.total_outage_time);
    EXPECT_EQ(got.total_repair_time, want.total_repair_time);
    EXPECT_EQ(got.avg_tardiness, want.avg_tardiness);
    EXPECT_EQ(got.makespan, want.makespan);
    EXPECT_EQ(got.schedule.size(), want.schedule.size());
  }
}

// --- Sharded policy state: the steal-protocol differential matrix ---
//
// "<base>-sharded" partitions the POLICY's ready set per shard with
// deterministic work stealing (sched/scheduler_policy.h). The matrix
// pins every sharded-state variant byte-identical to its global-state
// base run on the frozen pre-shard reference, under steal-heavy
// workloads: deep ready sets (utilization >> 1) with workflow chains,
// so every multi-server round shuffles pick ranks across servers and
// OnPlaced constantly re-homes entries between shards.

constexpr const char* kShardedBases[] = {"FCFS", "EDF",  "SRPT",
                                         "LS",   "HDF",  "HVF",
                                         "ASETS*", "ASETS*-lazy"};

std::vector<TransactionSpec> MakeStealHeavyWorkload(uint64_t seed) {
  WorkloadSpec spec;
  spec.num_transactions = 100;
  spec.utilization = 3.0;  // overloaded: all k servers contend every round
  spec.min_weight = 1;
  spec.max_weight = 10;
  spec.estimate_error = 0.2;
  spec.max_workflow_length = 5;
  spec.max_workflows_per_txn = 2;
  auto generator = WorkloadGenerator::Create(spec);
  EXPECT_TRUE(generator.ok()) << generator.status();
  return generator.ValueOrDie().Generate(seed);
}

void RunStealMatrix(Regime regime) {
  for (const size_t servers : kServers) {
    const std::vector<TransactionSpec> txns =
        MakeStealHeavyWorkload(29u + servers);
    const SimOptions options = RegimeOptions(regime, servers);
    for (const char* base : kShardedBases) {
      const uint64_t want = ReferenceDigest(txns, options, base);
      for (const size_t threads : kShardThreads) {
        const RunResult got =
            RunSharded(txns, options, std::string(base) + "-sharded", threads);
        EXPECT_EQ(ScheduleDigest(got), want)
            << "sharded policy state diverged from the global-state base: "
            << "policy=" << base << "-sharded servers=" << servers
            << " shard_threads=" << threads;
      }
    }
  }
}

TEST(ShardedPolicyDifferentialTest, StealMatrixFailureFree) {
  RunStealMatrix(Regime::kFailureFree);
}

TEST(ShardedPolicyDifferentialTest, StealMatrixFaulty) {
  RunStealMatrix(Regime::kFaulty);
}

TEST(ShardedPolicyDifferentialTest, StealMatrixCrashy) {
  RunStealMatrix(Regime::kCrashy);
}

TEST(ShardedPolicyDifferentialTest, StealMatrixCorrelatedCrashes) {
  RunStealMatrix(Regime::kCorrelated);
}

// The huge-scale structures compose with sharded policy state: calendar
// pending queue + arena-SoA store + sharded policies must still match
// the reference running the historical structures and global policies.
TEST(ShardedPolicyDifferentialTest, HugeStructuresMatchReference) {
  const std::vector<TransactionSpec> txns = MakeStealHeavyWorkload(13);
  for (const char* base : {"SRPT", "ASETS*", "ASETS*-lazy"}) {
    SimOptions options = RegimeOptions(Regime::kFaulty, 4);
    const uint64_t want = ReferenceDigest(txns, options, base);
    options.pending_queue = PendingQueueImpl::kCalendarQueue;
    options.txn_store = TxnStoreLayout::kArenaSoA;
    for (const size_t threads : {size_t{1}, size_t{8}}) {
      const RunResult got =
          RunSharded(txns, options, std::string(base) + "-sharded", threads);
      EXPECT_EQ(ScheduleDigest(got), want)
          << "policy=" << base << "-sharded with calendar+SoA structures, "
          << "shard_threads=" << threads;
    }
  }
}

// The steal protocol must actually engage on contended multi-server
// runs (a matrix that never steals proves nothing), and its accounting
// must land in ShardTiming — with the global-state twin reporting zero.
TEST(ShardedPolicyDifferentialTest, StealProtocolEngagesAndIsAccounted) {
  const std::vector<TransactionSpec> txns = MakeStealHeavyWorkload(5);
  for (const char* spec : {"SRPT-sharded", "ASETS*-sharded"}) {
    SimOptions options = RegimeOptions(Regime::kCrashy, 4);
    ShardTiming timing;
    options.timing = &timing;
    RunSharded(txns, options, spec, 1);
    EXPECT_GT(timing.steal_count, 0u)
        << spec << " never stole on a contended 4-server run";
    EXPECT_GT(timing.policy_wait_ms, 0.0);
  }
  SimOptions options = RegimeOptions(Regime::kCrashy, 4);
  ShardTiming timing;
  options.timing = &timing;
  RunSharded(txns, options, "SRPT", 1);
  EXPECT_EQ(timing.steal_count, 0u);
}

// A fault process denser than FaultTimeline::kChunkEvents forces
// multiple chunk barriers (and, with shard workers, prefetch handoffs);
// the digest must still match the lazy-stream reference exactly.
TEST(ShardedDifferentialTest, MultiChunkTimelineMatchesReference) {
  WorkloadSpec spec;
  spec.num_transactions = 40;
  spec.utilization = 0.5;
  auto generator = WorkloadGenerator::Create(spec);
  ASSERT_TRUE(generator.ok()) << generator.status();
  const std::vector<TransactionSpec> txns =
      generator.ValueOrDie().Generate(11);

  SimOptions options;
  options.num_servers = 2;
  options.record_outcomes = true;
  options.record_schedule = true;
  FaultPlanConfig fault;
  fault.seed = 77;
  fault.abort_rate = 1.0;  // hundreds of instants: several chunks
  fault.outage_rate = 0.01;
  fault.mean_outage_duration = 2.0;
  options.retry.max_attempts = 4;
  auto plan = FaultPlan::Create(fault);
  ASSERT_TRUE(plan.ok()) << plan.status();
  options.fault_plan = plan.ValueOrDie();

  const uint64_t want = ReferenceDigest(txns, options, "EDF");
  ShardTiming timing;
  options.timing = &timing;
  const RunResult got = RunSharded(txns, options, "EDF", 8);
  EXPECT_EQ(ScheduleDigest(got), want);
  // The dense abort process must actually have crossed chunk barriers,
  // or this test is not testing the buffered path.
  EXPECT_GT(timing.chunks, 3u);
}

}  // namespace
}  // namespace webtx
