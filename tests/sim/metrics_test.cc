#include "sim/metrics.h"

#include <gtest/gtest.h>

#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::Txn;

TEST(MetricsTest, EmptyOutcomes) {
  const RunResult r = RunResult::FromOutcomes("X", {}, {});
  EXPECT_EQ(r.policy_name, "X");
  EXPECT_EQ(r.avg_tardiness, 0.0);
  EXPECT_EQ(r.miss_ratio, 0.0);
  EXPECT_TRUE(r.outcomes.empty());
}

TEST(MetricsTest, AggregatesMatchDefinitions) {
  // Definitions 4 and 5: averages over ALL N transactions (tardy or not).
  const std::vector<TransactionSpec> specs = {
      Txn(0, 0, 1, 10, 2.0), Txn(1, 0, 1, 10, 3.0), Txn(2, 0, 1, 10, 1.0)};
  std::vector<TxnOutcome> outcomes(3);
  outcomes[0] = {.finish = 12.0,
                 .tardiness = 2.0,
                 .weighted_tardiness = 4.0,
                 .response = 12.0,
                 .missed_deadline = true};
  outcomes[1] = {.finish = 8.0,
                 .tardiness = 0.0,
                 .weighted_tardiness = 0.0,
                 .response = 8.0,
                 .missed_deadline = false};
  outcomes[2] = {.finish = 16.0,
                 .tardiness = 6.0,
                 .weighted_tardiness = 6.0,
                 .response = 16.0,
                 .missed_deadline = true};

  const RunResult r = RunResult::FromOutcomes("P", specs, outcomes);
  EXPECT_NEAR(r.avg_tardiness, 8.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.avg_weighted_tardiness, 10.0 / 3.0, 1e-12);
  EXPECT_EQ(r.max_tardiness, 6.0);
  EXPECT_EQ(r.max_weighted_tardiness, 6.0);
  EXPECT_NEAR(r.miss_ratio, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.avg_response, 12.0, 1e-12);
  EXPECT_EQ(r.makespan, 16.0);
  EXPECT_EQ(r.outcomes.size(), 3u);
}

TEST(MetricsTest, MaxWeightedTardinessCanComeFromLowTardiness) {
  // A small tardiness with huge weight dominates the weighted maximum.
  const std::vector<TransactionSpec> specs = {Txn(0, 0, 1, 10, 10.0),
                                              Txn(1, 0, 1, 10, 1.0)};
  std::vector<TxnOutcome> outcomes(2);
  outcomes[0] = {.finish = 11.0,
                 .tardiness = 1.0,
                 .weighted_tardiness = 10.0,
                 .response = 11.0,
                 .missed_deadline = true};
  outcomes[1] = {.finish = 15.0,
                 .tardiness = 5.0,
                 .weighted_tardiness = 5.0,
                 .response = 15.0,
                 .missed_deadline = true};
  const RunResult r = RunResult::FromOutcomes("P", specs, outcomes);
  EXPECT_EQ(r.max_tardiness, 5.0);
  EXPECT_EQ(r.max_weighted_tardiness, 10.0);
}

TEST(MetricsDeathTest, SizeMismatchAborts) {
  const std::vector<TransactionSpec> specs = {Txn(0, 0, 1, 10)};
  EXPECT_DEATH(RunResult::FromOutcomes("P", specs, {}), "CHECK failed");
}

}  // namespace
}  // namespace webtx
