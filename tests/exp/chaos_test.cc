#include "exp/chaos.h"

#include <gtest/gtest.h>

namespace webtx {
namespace {

ChaosCase CrashyCase() {
  ChaosCase c;
  c.workload_seed = 77;
  c.num_transactions = 60;
  c.utilization = 0.9;
  c.num_servers = 2;
  c.policy = "EDF";
  c.fault.crash_rate = 0.01;
  c.fault.mean_repair_duration = 20.0;
  c.fault.migration = MigrationPolicy::kCold;
  c.fault.seed = 5;
  return c;
}

TEST(ChaosCaseTest, RunsAndValidates) {
  const ChaosCase c = CrashyCase();
  auto run = RunChaosCase(c);
  ASSERT_TRUE(run.ok()) << run.status();
  const RunResult& r = run.ValueOrDie();
  EXPECT_EQ(r.outcomes.size(), c.num_transactions);
  EXPECT_FALSE(r.schedule.empty());
  const Status verdict = CheckChaosInvariants(c, r);
  EXPECT_TRUE(verdict.ok()) << verdict.ToString();
}

TEST(ChaosCaseTest, RunRejectsNonsenseParameters) {
  ChaosCase c = CrashyCase();
  c.policy = "NOT-A-POLICY";
  EXPECT_FALSE(RunChaosCase(c).ok());

  ChaosCase bad_fault = CrashyCase();
  bad_fault.fault.mean_repair_duration = 0.0;
  EXPECT_FALSE(RunChaosCase(bad_fault).ok());
}

TEST(ChaosDigestTest, StableAcrossRuns) {
  const ChaosCase c = CrashyCase();
  const uint64_t a = ScheduleDigest(RunChaosCase(c).ValueOrDie());
  const uint64_t b = ScheduleDigest(RunChaosCase(c).ValueOrDie());
  EXPECT_EQ(a, b);
}

TEST(ChaosDigestTest, DetectsBehavioralDifferences) {
  ChaosCase c = CrashyCase();
  const uint64_t a = ScheduleDigest(RunChaosCase(c).ValueOrDie());
  c.fault.seed = 6;  // different crash timeline, same workload
  const uint64_t b = ScheduleDigest(RunChaosCase(c).ValueOrDie());
  EXPECT_NE(a, b);
}

TEST(ChaosReplayTest, SerializeParseRoundTrips) {
  const ChaosCase c = RandomChaosCase(123, 7);
  const std::string text = SerializeChaosCase(c);
  auto parsed = ParseChaosReplay(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  // Value-exact round trip, doubles included.
  EXPECT_EQ(SerializeChaosCase(parsed.ValueOrDie()), text);
}

TEST(ChaosReplayTest, ParseToleratesCommentsAndBlankLines) {
  const std::string text = "# a comment\n\n" + SerializeChaosCase(CrashyCase());
  auto parsed = ParseChaosReplay(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.ValueOrDie().policy, "EDF");
}

TEST(ChaosReplayTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseChaosReplay("").ok());
  EXPECT_FALSE(ParseChaosReplay("not a replay\n").ok());
  const std::string good = SerializeChaosCase(CrashyCase());
  EXPECT_FALSE(ParseChaosReplay(good + "mystery_knob 3\n").ok());
  EXPECT_FALSE(ParseChaosReplay(good + "crash_rate banana\n").ok());
  EXPECT_FALSE(ParseChaosReplay(good + "migration lukewarm\n").ok());
  EXPECT_FALSE(ParseChaosReplay(good + "suppress_crash banana\n").ok());
  EXPECT_FALSE(ParseChaosReplay(good + "suppress_crash 1\n").ok());
  EXPECT_FALSE(ParseChaosReplay(good + "suppress_outage 1 pear\n").ok());
}

TEST(ChaosReplayTest, SuppressionLinesRoundTrip) {
  ChaosCase c = CrashyCase();
  c.fault.outage_rate = 0.01;
  c.fault.mean_outage_duration = 5.0;
  c.fault.suppressed_crashes = {EncodeFaultOrdinal(1, 3),
                                EncodeFaultOrdinal(0, 0)};
  c.fault.suppressed_outages = {EncodeFaultOrdinal(0, 2)};
  const std::string text = SerializeChaosCase(c);
  auto parsed = ParseChaosReplay(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(SerializeChaosCase(parsed.ValueOrDie()), text);
  EXPECT_EQ(parsed.ValueOrDie().fault.suppressed_crashes,
            c.fault.suppressed_crashes);
  EXPECT_EQ(parsed.ValueOrDie().fault.suppressed_outages,
            c.fault.suppressed_outages);
  // The parsed case must replay the suppressed timeline byte-identically.
  EXPECT_EQ(ScheduleDigest(RunChaosCase(parsed.ValueOrDie()).ValueOrDie()),
            ScheduleDigest(RunChaosCase(c).ValueOrDie()));
}

TEST(ChaosRandomTest, CasesAreDeterministic) {
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(SerializeChaosCase(RandomChaosCase(42, i)),
              SerializeChaosCase(RandomChaosCase(42, i)));
  }
  EXPECT_NE(SerializeChaosCase(RandomChaosCase(42, 0)),
            SerializeChaosCase(RandomChaosCase(42, 1)));
  EXPECT_NE(SerializeChaosCase(RandomChaosCase(42, 0)),
            SerializeChaosCase(RandomChaosCase(43, 0)));
}

TEST(ChaosShrinkTest, ShrinksToTheLoadBearingKnobs) {
  // Synthetic failure: reproduces iff the case still has >= 12
  // transactions AND a live abort stream. The shrinker must drop every
  // other knob and halve the horizon to just above the threshold.
  ChaosCase c = RandomChaosCase(1, 0);
  c.num_transactions = 200;
  c.fault.abort_rate = 0.01;
  const ChaosPredicate predicate = [](const ChaosCase& x) {
    return x.num_transactions >= 12 && x.fault.abort_rate > 0.0;
  };
  ASSERT_TRUE(predicate(c));
  const ChaosCase shrunk = ShrinkChaosCase(c, predicate);
  EXPECT_TRUE(predicate(shrunk));
  EXPECT_GE(shrunk.num_transactions, 12u);
  EXPECT_LT(shrunk.num_transactions, 24u);  // one more halving would pass
  EXPECT_GT(shrunk.fault.abort_rate, 0.0);
  EXPECT_EQ(shrunk.fault.crash_rate, 0.0);
  EXPECT_EQ(shrunk.fault.outage_rate, 0.0);
  EXPECT_EQ(shrunk.fault.correlated_crash_prob, 0.0);
  EXPECT_EQ(shrunk.admission_max_ready, 0u);
  EXPECT_EQ(shrunk.num_servers, 1u);
  EXPECT_EQ(shrunk.max_weight, 1u);
  EXPECT_EQ(shrunk.max_workflow_length, 1u);
  EXPECT_EQ(shrunk.burstiness, 0.0);
  EXPECT_EQ(shrunk.estimate_error, 0.0);
}

TEST(ChaosShrinkTest, AlwaysFailingCaseShrinksToTheFloor) {
  ChaosCase c = RandomChaosCase(1, 3);
  c.num_transactions = 100;
  const ChaosCase shrunk =
      ShrinkChaosCase(c, [](const ChaosCase&) { return true; });
  EXPECT_EQ(shrunk.num_transactions, 1u);
  EXPECT_EQ(shrunk.num_servers, 1u);
  EXPECT_EQ(shrunk.fault.crash_rate, 0.0);
  EXPECT_EQ(shrunk.fault.outage_rate, 0.0);
  EXPECT_EQ(shrunk.fault.abort_rate, 0.0);
}

TEST(ChaosShrinkTest, KeepsTheCrashStreamWhenItIsTheCause) {
  // Behavioral predicate through the real simulator: the failure needs
  // at least one migration, so the crash stream must survive shrinking.
  ChaosCase c = CrashyCase();
  c.fault.crash_rate = 0.05;
  const ChaosPredicate predicate = [](const ChaosCase& x) {
    auto run = RunChaosCase(x);
    return run.ok() && run.ValueOrDie().num_migrations >= 1;
  };
  ASSERT_TRUE(predicate(c));
  const ChaosCase shrunk = ShrinkChaosCase(c, predicate);
  EXPECT_TRUE(predicate(shrunk));
  EXPECT_GT(shrunk.fault.crash_rate, 0.0);
  EXPECT_LE(shrunk.num_transactions, c.num_transactions);
}

TEST(ChaosShrinkTest, BisectsTheCrashTimelineToLoadBearingInstants) {
  ChaosCase c = CrashyCase();
  c.fault.crash_rate = 0.04;  // several crash windows within the horizon
  auto initial = RunChaosCase(c);
  ASSERT_TRUE(initial.ok()) << initial.status();
  const size_t initial_crashes = initial.ValueOrDie().num_crashes;
  ASSERT_GE(initial_crashes, 3u) << "nothing to bisect";
  // The failure needs the full workload AND at least one crash. Pinning
  // the horizon forces the shrinker to thin the timeline itself instead
  // of halving the run until the crashes fall off the end.
  const ChaosPredicate predicate = [](const ChaosCase& x) {
    if (x.num_transactions < 40) return false;
    auto run = RunChaosCase(x);
    return run.ok() && run.ValueOrDie().num_crashes >= 1;
  };
  ASSERT_TRUE(predicate(c));
  const ChaosCase shrunk = ShrinkChaosCase(c, predicate);
  EXPECT_TRUE(predicate(shrunk));
  // Shrink quality: individual windows were suppressed, and the
  // surviving timeline is strictly thinner while still failing.
  EXPECT_FALSE(shrunk.fault.suppressed_crashes.empty());
  auto rerun = RunChaosCase(shrunk);
  ASSERT_TRUE(rerun.ok()) << rerun.status();
  EXPECT_LT(rerun.ValueOrDie().num_crashes, initial_crashes);
  EXPECT_GE(rerun.ValueOrDie().num_crashes, 1u);
}

TEST(ChaosShrinkTest, BisectsTheOutageTimelineToLoadBearingInstants) {
  ChaosCase c = CrashyCase();
  c.fault.crash_rate = 0.0;
  c.fault.mean_repair_duration = 0.0;
  c.fault.outage_rate = 0.05;
  c.fault.mean_outage_duration = 8.0;
  auto initial = RunChaosCase(c);
  ASSERT_TRUE(initial.ok()) << initial.status();
  const size_t initial_outages = initial.ValueOrDie().num_outages;
  ASSERT_GE(initial_outages, 3u) << "nothing to bisect";
  const ChaosPredicate predicate = [](const ChaosCase& x) {
    if (x.num_transactions < 40) return false;
    auto run = RunChaosCase(x);
    return run.ok() && run.ValueOrDie().num_outages >= 1;
  };
  ASSERT_TRUE(predicate(c));
  const ChaosCase shrunk = ShrinkChaosCase(c, predicate);
  EXPECT_TRUE(predicate(shrunk));
  EXPECT_FALSE(shrunk.fault.suppressed_outages.empty());
  auto rerun = RunChaosCase(shrunk);
  ASSERT_TRUE(rerun.ok()) << rerun.status();
  EXPECT_LT(rerun.ValueOrDie().num_outages, initial_outages);
  EXPECT_GE(rerun.ValueOrDie().num_outages, 1u);
}

TEST(ChaosCampaignTest, HealthySimulatorPassesACampaign) {
  ChaosCampaignOptions options;
  options.master_seed = 7;
  options.num_cases = 40;
  size_t progress_calls = 0;
  options.progress = [&](size_t, const std::string& violation) {
    ++progress_calls;
    EXPECT_TRUE(violation.empty()) << violation;
  };
  auto campaign = RunChaosCampaign(options);
  ASSERT_TRUE(campaign.ok()) << campaign.status();
  const ChaosCampaignResult& r = campaign.ValueOrDie();
  EXPECT_EQ(r.cases_run, 40u);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_TRUE(r.first_violation.empty());
  EXPECT_EQ(progress_calls, 40u);
  // The campaign must actually exercise the crash machinery, not idle
  // on fault-free cases.
  EXPECT_GT(r.total_crashes, 0u);
  EXPECT_GT(r.total_migrations, 0u);
}

}  // namespace
}  // namespace webtx
