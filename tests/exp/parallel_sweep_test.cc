// Differential tests for the parallel sweep engine: the documented
// contract (sweep.h) is that RunSweep output is BYTE-identical for every
// thread count. Every double is compared with exact equality on purpose
// — a single reordered floating-point accumulation would break
// reproducibility of the recorded CSVs.

#include <cstddef>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "exp/sweep.h"
#include "sched/admission.h"

namespace webtx {
namespace {

SweepConfig BaseConfig() {
  SweepConfig config;
  config.base.num_transactions = 120;
  config.utilizations = {0.2, 0.6, 1.0};
  config.policies = {"EDF", "SRPT", "ASETS", "FCFS"};
  config.seeds = {1, 2, 3};
  return config;
}

void ExpectBitIdentical(const std::vector<SweepCell>& a,
                        const std::vector<SweepCell>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i) + " (" + a[i].policy + ")");
    EXPECT_EQ(a[i].utilization, b[i].utilization);
    EXPECT_EQ(a[i].policy, b[i].policy);
    EXPECT_EQ(a[i].avg_tardiness, b[i].avg_tardiness);
    EXPECT_EQ(a[i].avg_weighted_tardiness, b[i].avg_weighted_tardiness);
    EXPECT_EQ(a[i].max_tardiness, b[i].max_tardiness);
    EXPECT_EQ(a[i].max_weighted_tardiness, b[i].max_weighted_tardiness);
    EXPECT_EQ(a[i].miss_ratio, b[i].miss_ratio);
    EXPECT_EQ(a[i].avg_response, b[i].avg_response);
    EXPECT_EQ(a[i].avg_tardiness_stddev, b[i].avg_tardiness_stddev);
    EXPECT_EQ(a[i].avg_weighted_tardiness_stddev,
              b[i].avg_weighted_tardiness_stddev);
    EXPECT_EQ(a[i].goodput, b[i].goodput);
    EXPECT_EQ(a[i].shed_ratio, b[i].shed_ratio);
    EXPECT_EQ(a[i].drop_ratio, b[i].drop_ratio);
  }
}

SweepConfig FaultyConfig() {
  SweepConfig config = BaseConfig();
  FaultPlanConfig faults;
  faults.outage_rate = 0.02;
  faults.mean_outage_duration = 6.0;
  faults.abort_rate = 0.05;
  faults.seed = 13;
  auto plan = FaultPlan::Create(faults);
  EXPECT_TRUE(plan.ok());
  config.sim.fault_plan = plan.ValueOrDie();
  config.sim.retry.max_attempts = 3;
  config.sim.retry.backoff = 1.0;
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 25;
  depth.defer_delay = 5.0;
  config.sim.admission = MakeQueueDepthAdmission(depth);
  return config;
}

TEST(ParallelSweepTest, ThreadCountDoesNotChangeCells) {
  SweepConfig serial = BaseConfig();
  serial.num_threads = 1;
  auto reference = RunSweep(serial);
  ASSERT_TRUE(reference.ok()) << reference.status();

  for (const size_t num_threads : {2u, 8u}) {
    SweepConfig parallel = BaseConfig();
    parallel.num_threads = num_threads;
    auto cells = RunSweep(parallel);
    ASSERT_TRUE(cells.ok()) << cells.status();
    SCOPED_TRACE("num_threads = " + std::to_string(num_threads));
    ExpectBitIdentical(reference.ValueOrDie(), cells.ValueOrDie());
  }
}

TEST(ParallelSweepTest, FaultInjectedSweepIsByteIdenticalAcrossThreads) {
  // Fault plans and admission control must not break the determinism
  // contract: the per-instance fault timeline is re-keyed by the
  // instance seed (a pure function), never by worker assignment.
  SweepConfig serial = FaultyConfig();
  serial.num_threads = 1;
  auto reference = RunSweep(serial);
  ASSERT_TRUE(reference.ok()) << reference.status();

  // The faults actually bite (otherwise this test proves nothing).
  double total_failures = 0.0;
  for (const SweepCell& cell : reference.ValueOrDie()) {
    total_failures += cell.shed_ratio + cell.drop_ratio;
    EXPECT_GE(cell.goodput + cell.shed_ratio + cell.drop_ratio, 1.0 - 1e-9);
  }
  EXPECT_GT(total_failures, 0.0);

  for (const size_t num_threads : {2u, 8u}) {
    SweepConfig parallel = FaultyConfig();
    parallel.num_threads = num_threads;
    auto cells = RunSweep(parallel);
    ASSERT_TRUE(cells.ok()) << cells.status();
    SCOPED_TRACE("num_threads = " + std::to_string(num_threads));
    ExpectBitIdentical(reference.ValueOrDie(), cells.ValueOrDie());
  }
}

TEST(ParallelSweepTest, HardwareConcurrencyDefaultMatchesSerial) {
  SweepConfig serial = BaseConfig();
  serial.num_threads = 1;
  SweepConfig defaulted = BaseConfig();
  defaulted.num_threads = 0;  // hardware concurrency
  auto a = RunSweep(serial);
  auto b = RunSweep(defaulted);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectBitIdentical(a.ValueOrDie(), b.ValueOrDie());
}

TEST(ParallelSweepTest, RepeatedParallelRunsAreIdentical) {
  SweepConfig config = BaseConfig();
  config.num_threads = 8;
  auto a = RunSweep(config);
  auto b = RunSweep(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectBitIdentical(a.ValueOrDie(), b.ValueOrDie());
}

TEST(ParallelSweepTest, CellOrderingIsUtilizationMajorPolicyMinor) {
  SweepConfig config = BaseConfig();
  config.num_threads = 8;
  auto cells = RunSweep(config);
  ASSERT_TRUE(cells.ok());
  const auto& v = cells.ValueOrDie();
  ASSERT_EQ(v.size(), config.utilizations.size() * config.policies.size());
  for (size_t u = 0; u < config.utilizations.size(); ++u) {
    for (size_t p = 0; p < config.policies.size(); ++p) {
      const SweepCell& cell = v[u * config.policies.size() + p];
      EXPECT_EQ(cell.utilization, config.utilizations[u]);
      EXPECT_EQ(cell.policy, config.policies[p]);
    }
  }
}

TEST(ParallelSweepTest, StddevFieldsSurviveParallelMerge) {
  SweepConfig config = BaseConfig();
  config.utilizations = {0.9};
  config.seeds = {1, 2, 3, 4, 5};
  config.num_threads = 4;
  auto cells = RunSweep(config);
  ASSERT_TRUE(cells.ok());
  for (const SweepCell& cell : cells.ValueOrDie()) {
    EXPECT_GT(cell.avg_tardiness_stddev, 0.0) << cell.policy;
  }
}

TEST(ParallelSweepTest, ProgressReportsEveryInstanceExactlyOnce) {
  SweepConfig config = BaseConfig();
  config.num_threads = 4;
  std::mutex mu;
  std::vector<size_t> completions;
  size_t last_total = 0;
  config.progress = [&](size_t completed, size_t total) {
    std::lock_guard<std::mutex> lock(mu);
    completions.push_back(completed);
    last_total = total;
  };
  auto cells = RunSweep(config);
  ASSERT_TRUE(cells.ok());
  const size_t expected = config.utilizations.size() * config.seeds.size();
  EXPECT_EQ(last_total, expected);
  ASSERT_EQ(completions.size(), expected);
  // The engine serializes callbacks, so `completed` is strictly 1..N.
  for (size_t i = 0; i < completions.size(); ++i) {
    EXPECT_EQ(completions[i], i + 1);
  }
}

TEST(ParallelSweepTest, RunInstancesIsPositional) {
  WorkloadSpec spec;
  spec.num_transactions = 50;
  spec.utilization = 0.5;
  std::vector<WorkloadInstance> instances;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    instances.push_back(WorkloadInstance{spec, seed});
  }
  auto factories = MakePolicyFactories({"EDF", "SRPT"});
  ASSERT_TRUE(factories.ok());

  ParallelRunOptions serial;
  serial.num_threads = 1;
  ParallelRunOptions parallel;
  parallel.num_threads = 4;
  auto a = RunInstances(instances, factories.ValueOrDie(), serial);
  auto b = RunInstances(instances, factories.ValueOrDie(), parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.ValueOrDie().size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    ASSERT_EQ(a.ValueOrDie()[i].size(), 2u);
    for (size_t p = 0; p < 2; ++p) {
      EXPECT_EQ(a.ValueOrDie()[i][p].avg_tardiness,
                b.ValueOrDie()[i][p].avg_tardiness);
      EXPECT_EQ(a.ValueOrDie()[i][p].policy_name,
                b.ValueOrDie()[i][p].policy_name);
    }
  }
}

TEST(ParallelSweepTest, WorkloadErrorsPropagateFromWorkers) {
  WorkloadSpec bad;
  bad.num_transactions = 0;  // rejected by WorkloadGenerator::Create
  WorkloadSpec good;
  good.num_transactions = 20;
  auto factories = MakePolicyFactories({"EDF"});
  ASSERT_TRUE(factories.ok());
  ParallelRunOptions options;
  options.num_threads = 4;
  auto result = RunInstances({WorkloadInstance{good, 1},
                              WorkloadInstance{bad, 2}},
                             factories.ValueOrDie(), options);
  EXPECT_FALSE(result.ok());
}

TEST(ParallelSweepTest, UnknownPolicyFailsBeforeAnySimulation) {
  auto factories = MakePolicyFactories({"EDF", "NoSuchPolicy"});
  ASSERT_FALSE(factories.ok());
  EXPECT_EQ(factories.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace webtx
