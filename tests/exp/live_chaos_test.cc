// Live chaos harness tests (exp/live_chaos.h): deterministic case
// generation, digest-stable execution, replay-file round-trips, shrink
// behavior, and a small end-to-end campaign — the machinery behind
// `tools/chaos --live` and the check.sh live-smoke gate.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/live_chaos.h"

namespace webtx {
namespace {

LiveChaosCase SmallCase() {
  LiveChaosCase c;
  c.workload_seed = 33;
  c.num_tasks = 30;
  c.mean_interarrival = 0.03;
  c.mean_duration = 0.08;
  c.max_weight = 4;
  c.dep_prob = 0.2;
  c.timeout_prob = 0.15;
  c.num_workers = 2;
  c.policy = "SRPT";
  c.fault.outage_rate = 0.4;
  c.fault.mean_outage_duration = 0.3;
  c.fault.crash_rate = 0.25;
  c.fault.mean_repair_duration = 0.4;
  c.fault.abort_rate = 0.1;
  c.fault.migration = MigrationPolicy::kCold;
  c.fault.seed = 12;
  c.latency_spike_prob = 0.2;
  c.mean_latency_spike = 0.02;
  c.retry_max_attempts = 3;
  c.retry_backoff = 0.04;
  c.retry_max_backoff = 0.08;
  c.retry_budget = 3;
  c.watchdog = true;
  c.watchdog_stall_seconds = 0.06;
  return c;
}

TEST(LiveChaosTest, RandomCasesAreDeterministicPerIndex) {
  for (uint64_t index = 0; index < 5; ++index) {
    const LiveChaosCase a = RandomLiveChaosCase(99, index);
    const LiveChaosCase b = RandomLiveChaosCase(99, index);
    EXPECT_EQ(SerializeLiveChaosCase(a), SerializeLiveChaosCase(b));
  }
  // Different indices draw different cases.
  EXPECT_NE(SerializeLiveChaosCase(RandomLiveChaosCase(99, 0)),
            SerializeLiveChaosCase(RandomLiveChaosCase(99, 1)));
}

TEST(LiveChaosTest, RunIsDigestStableAndPassesItsOwnInvariants) {
  const LiveChaosCase c = SmallCase();
  auto first = RunLiveChaosCase(c);
  auto second = RunLiveChaosCase(c);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first.ValueOrDie().digest, second.ValueOrDie().digest);
  EXPECT_NE(first.ValueOrDie().digest, 0u);
  const Status verdict = CheckLiveChaosInvariants(c, first.ValueOrDie());
  EXPECT_TRUE(verdict.ok()) << verdict;
  // The case is fault-seasoned enough to mean something.
  EXPECT_GT(first.ValueOrDie().stats.crashes +
                first.ValueOrDie().stats.stalls +
                first.ValueOrDie().stats.forced_aborts,
            0u);
}

TEST(LiveChaosTest, ReplayFileRoundTripsToTheSameTimeline) {
  const LiveChaosCase original = SmallCase();
  const std::string text = SerializeLiveChaosCase(original);
  auto parsed = ParseLiveChaosReplay(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(SerializeLiveChaosCase(parsed.ValueOrDie()), text);

  auto from_original = RunLiveChaosCase(original);
  auto from_replay = RunLiveChaosCase(parsed.ValueOrDie());
  ASSERT_TRUE(from_original.ok() && from_replay.ok());
  EXPECT_EQ(from_original.ValueOrDie().digest,
            from_replay.ValueOrDie().digest);
}

TEST(LiveChaosTest, ParserRejectsCorruptReplays) {
  const std::string text = SerializeLiveChaosCase(SmallCase());
  EXPECT_FALSE(ParseLiveChaosReplay("bogus header\n" + text).ok());
  EXPECT_FALSE(ParseLiveChaosReplay(text + "unknown_knob 3\n").ok());
}

TEST(LiveChaosTest, ShrinkPreservesThePredicate) {
  const LiveChaosCase original = SmallCase();
  // Stand-in failure predicate: "still has at least 10 tasks and a
  // crash stream" — shrink must simplify without ever leaving it.
  const LiveChaosPredicate still_fails = [](const LiveChaosCase& c) {
    return c.num_tasks >= 10 && c.fault.crash_rate > 0.0;
  };
  const LiveChaosCase shrunk = ShrinkLiveChaosCase(original, still_fails);
  EXPECT_TRUE(still_fails(shrunk));
  EXPECT_LE(shrunk.num_tasks, original.num_tasks);
  EXPECT_LE(shrunk.num_workers, original.num_workers);
}

TEST(LiveChaosTest, SmallCampaignRunsCleanAndExercisesFaults) {
  LiveChaosCampaignOptions options;
  options.master_seed = 7;
  options.num_cases = 6;
  auto result = RunLiveChaosCampaign(options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.ValueOrDie().cases_run, 6u);
  EXPECT_EQ(result.ValueOrDie().violations, 0u)
      << result.ValueOrDie().first_violation;
  EXPECT_EQ(result.ValueOrDie().determinism_mismatches, 0u);
  // The campaign generator is biased toward crash streams; a clean
  // pass with zero fault exposure would be vacuous.
  EXPECT_GT(result.ValueOrDie().total_crashes +
                result.ValueOrDie().total_stalls +
                result.ValueOrDie().total_forced_aborts,
            0u);
}

}  // namespace
}  // namespace webtx
