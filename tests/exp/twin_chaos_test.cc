// Digital-twin chaos harness tests (exp/twin_chaos.h): deterministic
// case generation, digest-stable execution (trace + decision log),
// replay-file round-trips, shrink behavior, and a small end-to-end
// campaign — the machinery behind `tools/chaos --twin` and the check.sh
// twin-smoke gate.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/twin_chaos.h"

namespace webtx {
namespace {

TwinChaosCase SmallCase() {
  TwinChaosCase c;
  c.shape = LiveArrivalShape::kFlashCrowd;
  c.workload_seed = 41;
  c.num_tasks = 50;
  c.rate = 60.0;
  c.spike_factor = 6.0;
  c.spike_start = 0.3;
  c.spike_duration = 0.4;
  c.mean_duration = 0.05;
  c.deadline_slack = 1.5;
  rt::TwinCandidate fcfs;
  rt::TwinCandidate edf_depth;
  edf_depth.policy = "EDF";
  edf_depth.admission = rt::TwinCandidate::Admission::kQueueDepth;
  edf_depth.max_ready = 12;
  rt::TwinCandidate srpt;
  srpt.policy = "SRPT";
  c.candidates = {fcfs, edf_depth, srpt};
  c.control_interval = 0.2;
  c.forecast_horizon = 0.4;
  c.dwell_ticks = 1;
  c.num_workers = 2;
  c.fault.crash_rate = 0.1;
  c.fault.mean_repair_duration = 0.5;
  c.fault.seed = 9;
  return c;
}

TEST(TwinChaosTest, RandomCasesAreDeterministicPerIndex) {
  for (uint64_t index = 0; index < 5; ++index) {
    const TwinChaosCase a = RandomTwinChaosCase(99, index);
    const TwinChaosCase b = RandomTwinChaosCase(99, index);
    EXPECT_EQ(SerializeTwinChaosCase(a), SerializeTwinChaosCase(b));
  }
  EXPECT_NE(SerializeTwinChaosCase(RandomTwinChaosCase(99, 0)),
            SerializeTwinChaosCase(RandomTwinChaosCase(99, 1)));
}

TEST(TwinChaosTest, RunIsDigestStableAndPassesItsOwnInvariants) {
  const TwinChaosCase c = SmallCase();
  auto first = RunTwinChaosCase(c);
  auto second = RunTwinChaosCase(c);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(first.ValueOrDie().digest, second.ValueOrDie().digest);
  EXPECT_NE(first.ValueOrDie().digest, 0u);
  const Status verdict = CheckTwinChaosInvariants(c, first.ValueOrDie());
  EXPECT_TRUE(verdict.ok()) << verdict;
  // The controller actually ran: the flash crowd spans several control
  // intervals, so the decision log cannot be empty.
  EXPECT_FALSE(first.ValueOrDie().decisions.empty());
}

TEST(TwinChaosTest, ControllerOffMeansNoDecisions) {
  TwinChaosCase c = SmallCase();
  c.controller_enabled = false;
  auto run = RunTwinChaosCase(c);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run.ValueOrDie().decisions.empty());
  EXPECT_EQ(run.ValueOrDie().switches, 0u);
  EXPECT_EQ(run.ValueOrDie().final_config, c.static_index);
  const Status verdict = CheckTwinChaosInvariants(c, run.ValueOrDie());
  EXPECT_TRUE(verdict.ok()) << verdict;
}

TEST(TwinChaosTest, CorruptedModelTripsTheGuard) {
  TwinChaosCase c = SmallCase();
  // The shadow believes service times are 8x reality's, and the guard
  // is wound tight (any forecast miss above the absolute floor is a
  // strike, one strike trips): the model must be caught lying within
  // two ticks of congestion.
  c.snapshot_corruption = 8.0;
  c.guard_strikes = 1;
  c.divergence_tolerance = 0.0;
  c.divergence_abs_floor = 0.01;
  c.fault = FaultPlanConfig{};  // isolate the guard from crash noise
  auto run = RunTwinChaosCase(c);
  ASSERT_TRUE(run.ok()) << run.status();
  const rt::TwinReport& report = run.ValueOrDie();
  EXPECT_GE(report.fallbacks, 1u);
  // Every fallback decision pins the static configuration (the run may
  // legally re-switch after the cooldown re-enables the controller).
  bool saw_fallback = false;
  for (const rt::TwinDecision& d : report.decisions) {
    if (d.kind != rt::TwinDecision::Kind::kFallback) continue;
    saw_fallback = true;
    EXPECT_EQ(d.applied, c.static_index);
  }
  EXPECT_TRUE(saw_fallback);
  const Status verdict = CheckTwinChaosInvariants(c, report);
  EXPECT_TRUE(verdict.ok()) << verdict;
}

TEST(TwinChaosTest, ReplayFileRoundTripsToTheSameTimeline) {
  const TwinChaosCase original = SmallCase();
  const std::string text = SerializeTwinChaosCase(original);
  auto parsed = ParseTwinChaosReplay(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(SerializeTwinChaosCase(parsed.ValueOrDie()), text);

  auto from_original = RunTwinChaosCase(original);
  auto from_replay = RunTwinChaosCase(parsed.ValueOrDie());
  ASSERT_TRUE(from_original.ok() && from_replay.ok());
  EXPECT_EQ(from_original.ValueOrDie().digest,
            from_replay.ValueOrDie().digest);
}

TEST(TwinChaosTest, ParserRejectsCorruptReplays) {
  const std::string text = SerializeTwinChaosCase(SmallCase());
  EXPECT_FALSE(ParseTwinChaosReplay("bogus header\n" + text).ok());
  EXPECT_FALSE(ParseTwinChaosReplay(text + "unknown_knob 3\n").ok());
  // A twin replay without its candidate table is not a runnable case.
  std::string no_candidates;
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    if (line.rfind("candidate ", 0) != 0) no_candidates += line + "\n";
  }
  EXPECT_FALSE(ParseTwinChaosReplay(no_candidates).ok());
}

TEST(TwinChaosTest, ShrinkPreservesThePredicate) {
  const TwinChaosCase original = SmallCase();
  const TwinChaosPredicate still_fails = [](const TwinChaosCase& c) {
    return c.num_tasks >= 10 && !c.candidates.empty() &&
           c.fault.crash_rate > 0.0;
  };
  const TwinChaosCase shrunk = ShrinkTwinChaosCase(original, still_fails);
  EXPECT_TRUE(still_fails(shrunk));
  EXPECT_LE(shrunk.num_tasks, original.num_tasks);
  EXPECT_LE(shrunk.candidates.size(), original.candidates.size());
  EXPECT_LT(shrunk.static_index, shrunk.candidates.size());
}

TEST(TwinChaosTest, SmallCampaignRunsCleanAndExercisesTheController) {
  TwinChaosCampaignOptions options;
  options.master_seed = 7;
  options.num_cases = 4;
  auto result = RunTwinChaosCampaign(options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.ValueOrDie().cases_run, 4u);
  EXPECT_EQ(result.ValueOrDie().violations, 0u)
      << result.ValueOrDie().first_violation;
  EXPECT_EQ(result.ValueOrDie().determinism_mismatches, 0u);
  // A clean pass that never ticked the controller would be vacuous.
  EXPECT_GT(result.ValueOrDie().total_decisions, 0u);
}

}  // namespace
}  // namespace webtx
