#include "exp/table.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "common/csv.h"

namespace webtx {
namespace {

TEST(TableTest, FormatFixedPrecision) {
  EXPECT_EQ(FormatFixed(1.23456, 3), "1.235");
  EXPECT_EQ(FormatFixed(1.0, 1), "1.0");
  EXPECT_EQ(FormatFixed(-2.5, 0), "-2");
}

TEST(TableTest, PrintAlignsColumns) {
  Table table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TableTest, AddNumericRowFormats) {
  Table table({"x", "m1", "m2"});
  table.AddNumericRow("0.5", {1.23456, 7.0}, 2);
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("1.23"), std::string::npos);
  EXPECT_NE(os.str().find("7.00"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 1u);
  EXPECT_EQ(table.num_columns(), 3u);
}

TEST(TableDeathTest, RowArityMustMatch) {
  Table table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "CHECK failed");
}

TEST(TableDeathTest, EmptyColumnsRejected) {
  EXPECT_DEATH(Table({}), "CHECK failed");
}

TEST(TableTest, WriteCsvRoundTrips) {
  char buf[] = "/tmp/webtx_table_test_XXXXXX";
  const int fd = mkstemp(buf);
  ASSERT_GE(fd, 0);
  close(fd);
  const std::string path = buf;

  Table table({"x", "y"});
  table.AddNumericRow("0.1", {2.0});
  ASSERT_TRUE(table.WriteCsv(path).ok());
  auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.ValueOrDie().size(), 2u);
  EXPECT_EQ(rows.ValueOrDie()[0], (std::vector<std::string>{"x", "y"}));
  EXPECT_EQ(rows.ValueOrDie()[1][0], "0.1");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace webtx
