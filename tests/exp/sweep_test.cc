#include "exp/sweep.h"

#include <gtest/gtest.h>

namespace webtx {
namespace {

SweepConfig SmallConfig() {
  SweepConfig config;
  config.base.num_transactions = 80;
  config.utilizations = {0.3, 0.9};
  config.policies = {"EDF", "SRPT"};
  config.seeds = {1, 2};
  return config;
}

TEST(SweepTest, PaperGridHasTenPoints) {
  const auto grid = PaperUtilizationGrid();
  ASSERT_EQ(grid.size(), 10u);
  EXPECT_NEAR(grid.front(), 0.1, 1e-12);
  EXPECT_NEAR(grid.back(), 1.0, 1e-12);
}

TEST(SweepTest, CellsOrderedUtilizationMajor) {
  auto cells = RunSweep(SmallConfig());
  ASSERT_TRUE(cells.ok()) << cells.status();
  const auto& v = cells.ValueOrDie();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_NEAR(v[0].utilization, 0.3, 1e-12);
  EXPECT_EQ(v[0].policy, "EDF");
  EXPECT_EQ(v[1].policy, "SRPT");
  EXPECT_NEAR(v[2].utilization, 0.9, 1e-12);
}

TEST(SweepTest, MetricsAreAveragedAndFinite) {
  auto cells = RunSweep(SmallConfig());
  ASSERT_TRUE(cells.ok());
  for (const auto& cell : cells.ValueOrDie()) {
    EXPECT_GE(cell.avg_tardiness, 0.0);
    EXPECT_GE(cell.avg_weighted_tardiness, cell.avg_tardiness - 1e-9);
    EXPECT_GE(cell.max_weighted_tardiness, 0.0);
    EXPECT_GE(cell.miss_ratio, 0.0);
    EXPECT_LE(cell.miss_ratio, 1.0);
    EXPECT_GT(cell.avg_response, 0.0);
  }
}

TEST(SweepTest, StddevReflectsSeedDispersion) {
  SweepConfig config = SmallConfig();
  config.utilizations = {0.9};
  config.seeds = {1, 2, 3, 4, 5};
  auto cells = RunSweep(config);
  ASSERT_TRUE(cells.ok());
  for (const auto& cell : cells.ValueOrDie()) {
    EXPECT_GT(cell.avg_tardiness_stddev, 0.0) << cell.policy;
  }

  // A single seed has no dispersion.
  config.seeds = {1};
  auto single = RunSweep(config);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single.ValueOrDie()[0].avg_tardiness_stddev, 0.0);
}

TEST(SweepTest, DeterministicAcrossCalls) {
  auto a = RunSweep(SmallConfig());
  auto b = RunSweep(SmallConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a.ValueOrDie().size(); ++i) {
    EXPECT_EQ(a.ValueOrDie()[i].avg_tardiness,
              b.ValueOrDie()[i].avg_tardiness);
  }
}

TEST(SweepTest, RejectsEmptyDimensions) {
  SweepConfig config = SmallConfig();
  config.utilizations.clear();
  EXPECT_FALSE(RunSweep(config).ok());

  config = SmallConfig();
  config.policies.clear();
  EXPECT_FALSE(RunSweep(config).ok());

  config = SmallConfig();
  config.seeds.clear();
  EXPECT_FALSE(RunSweep(config).ok());
}

TEST(SweepTest, UnknownPolicyPropagatesError) {
  SweepConfig config = SmallConfig();
  config.policies = {"NoSuchPolicy"};
  auto cells = RunSweep(config);
  ASSERT_FALSE(cells.ok());
  EXPECT_EQ(cells.status().code(), StatusCode::kNotFound);
}

TEST(SweepTest, RunOneMatchesDirectSimulation) {
  WorkloadSpec spec;
  spec.num_transactions = 60;
  spec.utilization = 0.5;
  auto r = RunOne(spec, /*seed=*/3, "EDF");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r.ValueOrDie().policy_name, "EDF");
  EXPECT_EQ(r.ValueOrDie().outcomes.size(), 60u);
}

TEST(SweepTest, RunOneRejectsBadInputs) {
  WorkloadSpec spec;
  spec.num_transactions = 0;
  EXPECT_FALSE(RunOne(spec, 1, "EDF").ok());
  spec.num_transactions = 10;
  EXPECT_FALSE(RunOne(spec, 1, "Bogus").ok());
}

}  // namespace
}  // namespace webtx
