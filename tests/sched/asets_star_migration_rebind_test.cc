// Mid-workflow re-planning on migration (OnMigrated): when a crash
// migrates a running transaction, ASETS* must re-derive the victim's
// workflow representatives and heads from the post-migration state —
// warm failover charges progress with no other callback, cold failover
// resets the work — before the scheduling round at the crash instant.
// Two layers of proof:
//   1. Unit: OnMigrated alone re-files a workflow whose cached plan went
//      stale (the pre-hook snapshot demonstrably lags, the post-hook one
//      matches a fresh rescan).
//   2. Differential: under crash-heavy warm AND cold fault plans, the
//      incremental production policy schedules byte-identically to the
//      full-rescan reference (testing/asets_star_reference.h), which
//      re-derives everything from the view on every callback.

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "sched/policies/asets_star.h"
#include "sim/fault_plan.h"
#include "sim/simulator.h"
#include "testing/asets_star_reference.h"
#include "testing/fake_view.h"
#include "workload/generator.h"

namespace webtx {
namespace {

// ---------------------------------------------------------------------------
// Unit: the hook itself.

TEST(OnMigratedRebindTest, WarmMigrationRefreshesRepresentativeAndHead) {
  // One workflow of two ready members. T0 is "running"; the simulator
  // charges its progress silently (warm migration retains the executed
  // work), so only OnMigrated can tell the policy the plan changed.
  std::vector<TransactionSpec> txns = {
      testing::Txn(0, 0.0, 10.0, 100.0),
      testing::Txn(1, 0.0, 6.0, 100.0, 1.0, {0}),
  };
  testing::FakeView view(std::move(txns));
  view.ArriveAll();

  AsetsStarPolicy policy;
  policy.Bind(view);
  policy.OnArrival(0, 0.0);
  policy.OnArrival(1, 0.0);
  policy.OnReady(0, 0.0);
  ASSERT_EQ(policy.PickNext(0.0), 0u);  // plan settled: dirty set drained

  // Silent progress charge at the crash instant, as the simulator's
  // charge_progress does for the running victim.
  view.SetRemaining(0, 2.0);

  // Without the hook the cached representative still carries the
  // dispatch-time values: min(10 running, 6 waiting dependent) = 6.
  auto stale = policy.SnapshotOf(0);
  ASSERT_TRUE(stale.active);
  EXPECT_EQ(stale.rep_remaining, 6.0);

  policy.OnMigrated(0, 3.0);
  auto fresh = policy.SnapshotOf(0);
  ASSERT_TRUE(fresh.active);
  EXPECT_EQ(fresh.rep_remaining, 2.0);
  EXPECT_EQ(fresh.head, 0u);
}

TEST(OnMigratedRebindTest, ColdMigrationRestoresFullEstimate) {
  std::vector<TransactionSpec> txns = {
      testing::Txn(0, 0.0, 8.0, 50.0),
  };
  testing::FakeView view(std::move(txns));
  view.ArriveAll();

  AsetsStarPolicy policy;
  policy.Bind(view);
  policy.OnArrival(0, 0.0);
  policy.OnReady(0, 0.0);
  view.SetRemaining(0, 1.5);
  policy.OnMigrated(0, 1.0);
  EXPECT_EQ(policy.SnapshotOf(0).rep_remaining, 1.5);

  // Cold failover: the sim resets the work (OnCompletion/OnReady have
  // fired) and OnMigrated follows; the plan must show the full estimate.
  view.SetRemaining(0, 8.0);
  policy.OnCompletion(0, 2.0);
  policy.OnReady(0, 2.0);
  policy.OnMigrated(0, 2.0);
  EXPECT_EQ(policy.SnapshotOf(0).rep_remaining, 8.0);
}

TEST(OnMigratedRebindTest, DefaultImplementationIsNoOp) {
  // Policies that do not re-plan inherit a no-op; the hook must be safe
  // to fire at any time for any of them.
  class MinimalPolicy final : public SchedulerPolicy {
   public:
    std::string name() const override { return "minimal"; }
    void OnReady(TxnId, SimTime) override {}
    void OnCompletion(TxnId, SimTime) override {}
    TxnId PickNext(SimTime) override { return kInvalidTxn; }

   protected:
    void Reset() override {}
  };
  MinimalPolicy policy;
  policy.OnMigrated(0, 1.0);  // must not crash or require Bind
}

// ---------------------------------------------------------------------------
// Differential: crash-heavy plans, warm and cold, vs the full-rescan
// reference.

std::vector<TransactionSpec> MakeWorkload(uint64_t seed) {
  WorkloadSpec spec;
  spec.num_transactions = 250;
  spec.utilization = 1.7;  // overloaded: migrations reshuffle real queues
  spec.max_weight = 10;
  spec.max_workflow_length = 5;
  spec.max_workflows_per_txn = 2;
  spec.burstiness = 0.5;
  auto generator = WorkloadGenerator::Create(spec);
  EXPECT_TRUE(generator.ok());
  return generator.ValueOrDie().Generate(seed);
}

void ExpectIdenticalSchedules(const std::vector<TransactionSpec>& txns,
                              const SimOptions& options) {
  auto sim = Simulator::Create(txns, options);
  ASSERT_TRUE(sim.ok()) << sim.status();
  AsetsStarPolicy incremental;
  testing::ReferenceAsetsStarPolicy reference;
  const RunResult a = sim.ValueOrDie().Run(incremental);
  const RunResult b = sim.ValueOrDie().Run(reference);

  ASSERT_EQ(a.num_migrations, b.num_migrations);
  EXPECT_GT(a.num_migrations, 0u) << "plan produced no migrations; the "
                                     "differential exercises nothing";
  ASSERT_EQ(a.schedule.size(), b.schedule.size());
  for (size_t i = 0; i < a.schedule.size(); ++i) {
    const ScheduleSegment& sa = a.schedule[i];
    const ScheduleSegment& sb = b.schedule[i];
    ASSERT_EQ(sa.txn, sb.txn) << "segment " << i << " diverged";
    ASSERT_EQ(sa.server, sb.server) << "segment " << i << " diverged";
    ASSERT_EQ(sa.start, sb.start) << "segment " << i << " diverged";
    ASSERT_EQ(sa.end, sb.end) << "segment " << i << " diverged";
    ASSERT_EQ(sa.attempt, sb.attempt) << "segment " << i << " diverged";
  }
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    ASSERT_EQ(a.outcomes[i].finish, b.outcomes[i].finish) << "T" << i;
    ASSERT_EQ(a.outcomes[i].fate, b.outcomes[i].fate) << "T" << i;
    ASSERT_EQ(a.outcomes[i].migrations, b.outcomes[i].migrations) << "T" << i;
  }
}

using RebindParam = std::tuple<MigrationPolicy, uint64_t>;

class MigrationRebindMatrixTest
    : public ::testing::TestWithParam<RebindParam> {};

TEST_P(MigrationRebindMatrixTest, ScheduleByteIdenticalToReference) {
  const auto& [migration, seed] = GetParam();
  FaultPlanConfig config;
  config.crash_rate = 0.05;  // crash-dense: many migration instants
  config.mean_repair_duration = 4.0;
  config.correlated_crash_prob = 0.4;
  config.abort_rate = 0.02;
  config.migration = migration;
  config.seed = 40 + seed;
  auto plan = FaultPlan::Create(config);
  ASSERT_TRUE(plan.ok()) << plan.status();

  SimOptions options;
  options.record_schedule = true;
  options.num_servers = 3;
  options.fault_plan = plan.ValueOrDie();
  options.retry.max_attempts = 4;
  options.retry.backoff = 0.5;
  ExpectIdenticalSchedules(MakeWorkload(seed), options);
}

std::string RebindName(const ::testing::TestParamInfo<RebindParam>& info) {
  const auto& [migration, seed] = info.param;
  return std::string(migration == MigrationPolicy::kWarm ? "warm_s"
                                                         : "cold_s") +
         std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Plans, MigrationRebindMatrixTest,
    ::testing::Combine(::testing::Values(MigrationPolicy::kWarm,
                                         MigrationPolicy::kCold),
                       ::testing::Range<uint64_t>(1, 9)),
    RebindName);

}  // namespace
}  // namespace webtx
