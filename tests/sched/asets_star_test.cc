#include "sched/policies/asets_star.h"

#include <gtest/gtest.h>

#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::FakeView;
using testing::Txn;

// One chain workflow T0 -> T1 -> T2 with contrasting parameters:
//   T0: r=4, d=30, w=1 (leaf/head)
//   T1: r=2, d=8,  w=5 (urgent, valuable, waiting)
//   T2: r=6, d=40, w=2 (root, waiting)
std::vector<TransactionSpec> Chain() {
  return {Txn(0, 0, 4, 30, 1.0), Txn(1, 0, 2, 8, 5.0, {0}),
          Txn(2, 0, 6, 40, 2.0, {1})};
}

TEST(AsetsStarTest, RepresentativeAggregatesPerDefinition9) {
  FakeView view(Chain());
  view.ArriveAll();
  AsetsStarPolicy policy;
  policy.Bind(view);
  for (TxnId id = 0; id < 3; ++id) policy.OnArrival(id, 0.0);
  policy.OnReady(0, 0.0);

  const auto snap = policy.SnapshotOf(0);
  EXPECT_TRUE(snap.active);
  EXPECT_EQ(snap.head, 0u);             // the only ready member
  EXPECT_EQ(snap.rep_deadline, 8.0);    // min deadline (T1)
  EXPECT_EQ(snap.rep_remaining, 2.0);   // min remaining (T1)
  EXPECT_EQ(snap.rep_weight, 5.0);      // max weight (T1)
}

TEST(AsetsStarTest, RepresentativeExcludesFinishedMembers) {
  FakeView view(Chain());
  view.ArriveAll();
  AsetsStarPolicy policy;
  policy.Bind(view);
  for (TxnId id = 0; id < 3; ++id) policy.OnArrival(id, 0.0);
  policy.OnReady(0, 0.0);

  view.Finish(0);
  policy.OnCompletion(0, 4.0);
  policy.OnReady(1, 4.0);
  view.Finish(1);
  policy.OnCompletion(1, 6.0);
  policy.OnReady(2, 6.0);

  const auto snap = policy.SnapshotOf(0);
  EXPECT_EQ(snap.head, 2u);
  EXPECT_EQ(snap.rep_deadline, 40.0);
  EXPECT_EQ(snap.rep_remaining, 6.0);
  EXPECT_EQ(snap.rep_weight, 2.0);
}

TEST(AsetsStarTest, RepresentativeExcludesUnarrivedMembers) {
  FakeView view(Chain());
  view.Arrive(0);  // T1, T2 not in the system yet
  view.RebuildReadyList();
  AsetsStarPolicy policy;
  policy.Bind(view);
  policy.OnArrival(0, 0.0);
  policy.OnReady(0, 0.0);

  const auto snap = policy.SnapshotOf(0);
  EXPECT_EQ(snap.rep_deadline, 30.0);
  EXPECT_EQ(snap.rep_remaining, 4.0);
  EXPECT_EQ(snap.rep_weight, 1.0);
}

TEST(AsetsStarTest, WorkflowWithNoReadyMemberIsInactive) {
  // Only the dependent members arrived; the workflow cannot run.
  FakeView view(Chain());
  view.Arrive(1);
  view.Arrive(2);
  view.RebuildReadyList();
  AsetsStarPolicy policy;
  policy.Bind(view);
  policy.OnArrival(1, 0.0);
  policy.OnArrival(2, 0.0);

  EXPECT_FALSE(policy.SnapshotOf(0).active);
  EXPECT_EQ(policy.PickNext(0.0), kInvalidTxn);
}

TEST(AsetsStarTest, UrgentDependentBoostsHeadIntoHdfList) {
  // The workflow's representative (T1: r=2, d=8) can still make it at t=0
  // (0+2 <= 8) -> EDF-List despite the head's own loose deadline.
  FakeView view(Chain());
  view.ArriveAll();
  AsetsStarPolicy policy;
  policy.Bind(view);
  for (TxnId id = 0; id < 3; ++id) policy.OnArrival(id, 0.0);
  policy.OnReady(0, 0.0);
  EXPECT_EQ(policy.edf_list_size(), 1u);

  // By t=7 the representative is doomed (7+2 > 8): migrate to HDF-List.
  EXPECT_EQ(policy.PickNext(7.0), 0u);
  EXPECT_EQ(policy.edf_list_size(), 0u);
  EXPECT_EQ(policy.hdf_list_size(), 1u);
}

TEST(AsetsStarTest, PaperExample4WorkflowDecision) {
  // Example 4 (Fig. 6) by its formula: impact(K_A) = r_head,A - s_rep,B,
  // impact(K_B) = r_head,B - s_rep,A with s_rep,A = 0.
  // K_A (EDF side): head r=2; rep can exactly meet its deadline (slack 0).
  //   T0 head: r=2, d=2 (slack 0 at t=0); T1 dependent: r=4, d=20, so the
  //   rep is (d=2, r=2) -> slack 0, in EDF-List.
  // K_B (SRPT side): head r=3, tardy rep -> in HDF-List.
  //   T2 head: r=3, d=1 (tardy); T3 dependent: r=5, d=30.
  // impact(K_A) = 2 - 0 = 2 (B's rep slack clamps to 0);
  // impact(K_B) = 3 - 0 = 3 -> K_A's head (T0) runs, as in the paper.
  FakeView view({Txn(0, 0, 2, 2), Txn(1, 0, 4, 20, 1.0, {0}),
                 Txn(2, 0, 3, 1), Txn(3, 0, 5, 30, 1.0, {2})});
  view.ArriveAll();
  AsetsStarPolicy policy;
  policy.Bind(view);
  for (TxnId id = 0; id < 4; ++id) policy.OnArrival(id, 0.0);
  policy.OnReady(0, 0.0);
  policy.OnReady(2, 0.0);
  EXPECT_EQ(policy.edf_list_size(), 1u);
  EXPECT_EQ(policy.hdf_list_size(), 1u);
  EXPECT_EQ(policy.PickNext(0.0), 0u);
}

TEST(AsetsStarTest, WeightedImpactFollowsFigure7) {
  // EDF-side workflow has weight 1; HDF-side carries weight 10 via its
  // dependent. impact(EDF) = r_head,EDF * w_HDF = 2 * 10 = 20;
  // impact(HDF) = (r_head,HDF - s_rep,EDF) * w_EDF = (4 - 1) * 1 = 3
  // -> run the HDF head.
  FakeView view({Txn(0, 0, 2, 3, 1.0),                 // EDF wf, slack 1
                 Txn(1, 0, 4, 1, 1.0),                 // HDF head, tardy
                 Txn(2, 0, 3, 2, 10.0, {1})});         // heavy dependent
  view.ArriveAll();
  AsetsStarPolicy policy;
  policy.Bind(view);
  for (TxnId id = 0; id < 3; ++id) policy.OnArrival(id, 0.0);
  policy.OnReady(0, 0.0);
  policy.OnReady(1, 0.0);
  // HDF workflow: rep_remaining = min(4,3) = 3, rep_deadline = 1 -> tardy.
  EXPECT_EQ(policy.PickNext(0.0), 1u);
}

TEST(AsetsStarTest, HeadSelectionRules) {
  // Two independent roots merged... simpler: one workflow, two ready
  // members via a diamond: T0, T1 ready; T2 depends on both.
  const std::vector<TransactionSpec> txns = {
      Txn(0, 0, 6, 50),       // later deadline, longer
      Txn(1, 2, 3, 20),       // earlier deadline, shorter, later arrival
      Txn(2, 0, 2, 60, 1.0, {0, 1})};
  {
    FakeView view(txns);
    view.ArriveAll();
    AsetsStarPolicy policy;  // default: earliest deadline
    policy.Bind(view);
    for (TxnId id = 0; id < 3; ++id) policy.OnArrival(id, 0.0);
    EXPECT_EQ(policy.SnapshotOf(0).head, 1u);
  }
  {
    FakeView view(txns);
    view.ArriveAll();
    AsetsStarOptions options;
    options.head_rule = HeadSelectionRule::kShortestRemaining;
    AsetsStarPolicy policy(options);
    policy.Bind(view);
    for (TxnId id = 0; id < 3; ++id) policy.OnArrival(id, 0.0);
    EXPECT_EQ(policy.SnapshotOf(0).head, 1u);  // r=3 < r=6
  }
  {
    FakeView view(txns);
    view.ArriveAll();
    AsetsStarOptions options;
    options.head_rule = HeadSelectionRule::kFifoArrival;
    AsetsStarPolicy policy(options);
    policy.Bind(view);
    for (TxnId id = 0; id < 3; ++id) policy.OnArrival(id, 0.0);
    EXPECT_EQ(policy.SnapshotOf(0).head, 0u);  // arrived first
  }
}

TEST(AsetsStarTest, SingletonWorkflowsMatchTransactionLevelAsets) {
  // With independent transactions ASETS* must make the same decision as
  // transaction-level ASETS (Sec. III-C: it reduces to ASETS).
  const std::vector<TransactionSpec> txns = {
      Txn(0, 0, 5, 7), Txn(1, 0, 3, 2), Txn(2, 0, 2, 30), Txn(3, 0, 9, 4)};
  FakeView view(txns);
  view.ArriveAll();

  AsetsPolicy asets;
  asets.Bind(view);
  AsetsStarPolicy star;
  star.Bind(view);
  for (TxnId id = 0; id < 4; ++id) {
    asets.OnReady(id, 0.0);
    star.OnArrival(id, 0.0);
    star.OnReady(id, 0.0);
  }
  EXPECT_EQ(asets.PickNext(0.0), star.PickNext(0.0));
}

TEST(AsetsStarTest, SharedTransactionBelongsToBothWorkflows) {
  // Fig. 1 shape: leaf T0 feeds two roots.
  FakeView view({Txn(0, 0, 2, 4), Txn(1, 0, 3, 6, 1.0, {0}),
                 Txn(2, 0, 5, 50, 1.0, {0})});
  view.ArriveAll();
  AsetsStarPolicy policy;
  policy.Bind(view);
  for (TxnId id = 0; id < 3; ++id) policy.OnArrival(id, 0.0);
  policy.OnReady(0, 0.0);
  // Both workflows are active with head T0.
  EXPECT_EQ(policy.SnapshotOf(0).head, 0u);
  EXPECT_EQ(policy.SnapshotOf(1).head, 0u);
  EXPECT_EQ(policy.PickNext(0.0), 0u);
}

TEST(AsetsStarTest, IdlesWhenNothingArrived) {
  FakeView view(Chain());
  AsetsStarPolicy policy;
  policy.Bind(view);
  EXPECT_EQ(policy.PickNext(0.0), kInvalidTxn);
}

}  // namespace
}  // namespace webtx
