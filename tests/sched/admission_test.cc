#include "sched/admission.h"

#include <gtest/gtest.h>

#include "sched/policies/single_queue_policies.h"
#include "sim/simulator.h"
#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::Txn;

RunResult RunAdmitted(std::vector<TransactionSpec> txns,
                      AdmissionFactory admission) {
  SimOptions options;
  options.admission = std::move(admission);
  auto sim = Simulator::Create(std::move(txns), options);
  EXPECT_TRUE(sim.ok()) << sim.status();
  FcfsPolicy policy;
  return sim.ValueOrDie().Run(policy);
}

TEST(QueueDepthAdmissionTest, RejectsArrivalsOverTheCap) {
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 2;
  // Five simultaneous arrivals: the first two fill the queue, the rest
  // are shed at the door.
  const RunResult r = RunAdmitted(
      {Txn(0, 0, 3, 100), Txn(1, 0, 3, 100), Txn(2, 0, 3, 100),
       Txn(3, 0, 3, 100), Txn(4, 0, 3, 100)},
      MakeQueueDepthAdmission(depth));
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[2].fate, TxnFate::kShedAdmission);
  EXPECT_EQ(r.outcomes[3].fate, TxnFate::kShedAdmission);
  EXPECT_EQ(r.outcomes[4].fate, TxnFate::kShedAdmission);
  EXPECT_EQ(r.num_shed, 3u);
  EXPECT_DOUBLE_EQ(r.goodput, 0.4);
  // Shed transactions count as misses but never as tardiness samples.
  EXPECT_DOUBLE_EQ(r.miss_ratio, 0.6);
  EXPECT_EQ(r.outcomes[2].tardiness, 0.0);
}

TEST(QueueDepthAdmissionTest, DeferredArrivalIsAdmittedOnceLoadClears) {
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 1;
  depth.defer_delay = 10.0;
  depth.max_defers = 2;
  const RunResult r = RunAdmitted({Txn(0, 0, 5, 100), Txn(1, 0, 5, 100)},
                                  MakeQueueDepthAdmission(depth));
  // T1 is deferred at t=0; at t=10 T0 has finished (t=5) and the queue
  // is empty, so T1 is admitted and runs 10..15.
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[0].finish, 5.0);
  EXPECT_EQ(r.outcomes[1].finish, 15.0);
  EXPECT_EQ(r.num_deferrals, 1u);
  EXPECT_EQ(r.num_shed, 0u);
}

TEST(QueueDepthAdmissionTest, RejectsAfterTheDeferBudget) {
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 1;
  depth.defer_delay = 3.0;
  depth.max_defers = 1;
  // T0 occupies the queue past both decision points for T1.
  const RunResult r = RunAdmitted({Txn(0, 0, 100, 200), Txn(1, 0, 5, 50)},
                                  MakeQueueDepthAdmission(depth));
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kShedAdmission);
  EXPECT_EQ(r.outcomes[1].finish, 3.0);  // rejected at the re-arrival
  EXPECT_EQ(r.num_deferrals, 1u);
  EXPECT_EQ(r.num_shed, 1u);
}

TEST(QueueDepthAdmissionTest, MidWorkflowTransactionsAreNeverShed) {
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 1;
  // T1 arrives over-cap but depends on T0: rejecting it would waste
  // T0's work, so it is always admitted.
  const RunResult r =
      RunAdmitted({Txn(0, 0, 5, 100), Txn(1, 1, 2, 100, 1.0, {0})},
                  MakeQueueDepthAdmission(depth));
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].finish, 7.0);
}

TEST(QueueDepthAdmissionTest, ShedRootDropsItsDependents) {
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 1;
  const RunResult r =
      RunAdmitted({Txn(0, 0, 5, 100), Txn(1, 0, 5, 100),
                   Txn(2, 3, 2, 100, 1.0, {1})},
                  MakeQueueDepthAdmission(depth));
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kShedAdmission);
  EXPECT_EQ(r.outcomes[2].fate, TxnFate::kDroppedDependency);
  // The dependent is resolved at the shed instant, before it arrives.
  EXPECT_EQ(r.outcomes[2].finish, 0.0);
  EXPECT_EQ(r.num_shed, 1u);
  EXPECT_EQ(r.num_dropped_dependency, 1u);
}

// Property: the defer budget is an exact boundary. A transaction
// deferred `max_defers` times MUST be decided — admitted or rejected —
// at its next presentation; a (max_defers+1)-th deferral is a bug that
// would let an arrival ping-pong forever.
TEST(QueueDepthAdmissionTest, DeferBudgetBoundaryIsExact) {
  for (const uint32_t budget : {0u, 1u, 2u, 3u, 4u, 7u}) {
    QueueDepthAdmissionOptions depth;
    depth.max_ready = 1;
    depth.defer_delay = 2.0;
    depth.max_defers = budget;
    // A full ready queue that never clears: every presentation of T2 is
    // over-cap, so the controller's only degrees of freedom are defer
    // and reject.
    testing::FakeView view(
        {Txn(0, 0, 5, 100), Txn(1, 0, 5, 100), Txn(2, 0, 5, 100)});
    view.Arrive(0);
    view.Arrive(1);
    view.RebuildReadyList();
    QueueDepthAdmission controller(depth);
    controller.Bind(view);
    for (uint32_t presentation = 0; presentation < budget; ++presentation) {
      const AdmissionDecision d =
          controller.Decide(2, 2.0 * presentation);
      EXPECT_EQ(d.action, AdmissionDecision::Action::kDefer)
          << "budget " << budget << ", presentation " << presentation;
    }
    // Presentation number `budget` exhausts the budget: decided now and
    // on every later presentation, never deferred again.
    for (uint32_t beyond = 0; beyond < 3; ++beyond) {
      const AdmissionDecision d =
          controller.Decide(2, 2.0 * (budget + beyond));
      EXPECT_NE(d.action, AdmissionDecision::Action::kDefer)
          << "budget " << budget << ", presentation " << (budget + beyond);
    }
  }
}

// The same boundary observed end-to-end: under a never-clearing queue
// the simulator grants exactly max_defers deferrals and resolves the
// victim at the final re-arrival.
TEST(QueueDepthAdmissionTest, SimulatorGrantsExactlyTheDeferBudget) {
  for (const uint32_t budget : {0u, 1u, 3u, 5u}) {
    QueueDepthAdmissionOptions depth;
    depth.max_ready = 1;
    depth.defer_delay = 2.0;
    depth.max_defers = budget;
    const RunResult r =
        RunAdmitted({Txn(0, 0, 1000, 2000), Txn(1, 0, 5, 50)},
                    MakeQueueDepthAdmission(depth));
    EXPECT_EQ(r.outcomes[1].fate, TxnFate::kShedAdmission) << budget;
    EXPECT_EQ(r.num_deferrals, static_cast<size_t>(budget)) << budget;
    // Shed at the re-arrival that exhausted the budget.
    EXPECT_EQ(r.outcomes[1].finish, 2.0 * budget) << budget;
  }
}

TEST(FeasibilityAdmissionTest, RejectsHopelesslyLateArrivals) {
  FeasibilityAdmissionOptions feasibility;  // bound 0: must be on time
  // T0 (length 10) is ready when T1 arrives; T1's predicted finish is
  // 15, far past its deadline of 8.
  const RunResult r =
      RunAdmitted({Txn(0, 0, 10, 100), Txn(1, 0, 5, 8)},
                  MakeFeasibilityAdmission(feasibility));
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kShedAdmission);
}

TEST(FeasibilityAdmissionTest, AdmitsWithinTheTardinessBound) {
  FeasibilityAdmissionOptions feasibility;
  feasibility.tardiness_bound = 10.0;  // predicted tardiness 7 is fine
  const RunResult r =
      RunAdmitted({Txn(0, 0, 10, 100), Txn(1, 0, 5, 8)},
                  MakeFeasibilityAdmission(feasibility));
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.num_shed, 0u);
}

TEST(AdmissionControllerTest, NamesDescribeTheConfiguration) {
  EXPECT_EQ(QueueDepthAdmission().name(), "queue-depth(64)");
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 7;
  EXPECT_EQ(QueueDepthAdmission(depth).name(), "queue-depth(7)");
  EXPECT_EQ(FeasibilityAdmission().name(), "feasibility(0)");
}

TEST(AdmissionControllerTest, NullFactoryAdmitsEverything) {
  const RunResult r = RunAdmitted(
      {Txn(0, 0, 3, 100), Txn(1, 0, 3, 100)}, nullptr);
  EXPECT_EQ(r.num_shed, 0u);
  EXPECT_EQ(r.goodput, 1.0);
}

}  // namespace
}  // namespace webtx
