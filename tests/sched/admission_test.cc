#include "sched/admission.h"

#include <gtest/gtest.h>

#include "sched/policies/single_queue_policies.h"
#include "sim/simulator.h"
#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::Txn;

RunResult RunAdmitted(std::vector<TransactionSpec> txns,
                      AdmissionFactory admission) {
  SimOptions options;
  options.admission = std::move(admission);
  auto sim = Simulator::Create(std::move(txns), options);
  EXPECT_TRUE(sim.ok()) << sim.status();
  FcfsPolicy policy;
  return sim.ValueOrDie().Run(policy);
}

TEST(QueueDepthAdmissionTest, RejectsArrivalsOverTheCap) {
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 2;
  // Five simultaneous arrivals: the first two fill the queue, the rest
  // are shed at the door.
  const RunResult r = RunAdmitted(
      {Txn(0, 0, 3, 100), Txn(1, 0, 3, 100), Txn(2, 0, 3, 100),
       Txn(3, 0, 3, 100), Txn(4, 0, 3, 100)},
      MakeQueueDepthAdmission(depth));
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[2].fate, TxnFate::kShedAdmission);
  EXPECT_EQ(r.outcomes[3].fate, TxnFate::kShedAdmission);
  EXPECT_EQ(r.outcomes[4].fate, TxnFate::kShedAdmission);
  EXPECT_EQ(r.num_shed, 3u);
  EXPECT_DOUBLE_EQ(r.goodput, 0.4);
  // Shed transactions count as misses but never as tardiness samples.
  EXPECT_DOUBLE_EQ(r.miss_ratio, 0.6);
  EXPECT_EQ(r.outcomes[2].tardiness, 0.0);
}

TEST(QueueDepthAdmissionTest, DeferredArrivalIsAdmittedOnceLoadClears) {
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 1;
  depth.defer_delay = 10.0;
  depth.max_defers = 2;
  const RunResult r = RunAdmitted({Txn(0, 0, 5, 100), Txn(1, 0, 5, 100)},
                                  MakeQueueDepthAdmission(depth));
  // T1 is deferred at t=0; at t=10 T0 has finished (t=5) and the queue
  // is empty, so T1 is admitted and runs 10..15.
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[0].finish, 5.0);
  EXPECT_EQ(r.outcomes[1].finish, 15.0);
  EXPECT_EQ(r.num_deferrals, 1u);
  EXPECT_EQ(r.num_shed, 0u);
}

TEST(QueueDepthAdmissionTest, RejectsAfterTheDeferBudget) {
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 1;
  depth.defer_delay = 3.0;
  depth.max_defers = 1;
  // T0 occupies the queue past both decision points for T1.
  const RunResult r = RunAdmitted({Txn(0, 0, 100, 200), Txn(1, 0, 5, 50)},
                                  MakeQueueDepthAdmission(depth));
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kShedAdmission);
  EXPECT_EQ(r.outcomes[1].finish, 3.0);  // rejected at the re-arrival
  EXPECT_EQ(r.num_deferrals, 1u);
  EXPECT_EQ(r.num_shed, 1u);
}

TEST(QueueDepthAdmissionTest, MidWorkflowTransactionsAreNeverShed) {
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 1;
  // T1 arrives over-cap but depends on T0: rejecting it would waste
  // T0's work, so it is always admitted.
  const RunResult r =
      RunAdmitted({Txn(0, 0, 5, 100), Txn(1, 1, 2, 100, 1.0, {0})},
                  MakeQueueDepthAdmission(depth));
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].finish, 7.0);
}

TEST(QueueDepthAdmissionTest, ShedRootDropsItsDependents) {
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 1;
  const RunResult r =
      RunAdmitted({Txn(0, 0, 5, 100), Txn(1, 0, 5, 100),
                   Txn(2, 3, 2, 100, 1.0, {1})},
                  MakeQueueDepthAdmission(depth));
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kShedAdmission);
  EXPECT_EQ(r.outcomes[2].fate, TxnFate::kDroppedDependency);
  // The dependent is resolved at the shed instant, before it arrives.
  EXPECT_EQ(r.outcomes[2].finish, 0.0);
  EXPECT_EQ(r.num_shed, 1u);
  EXPECT_EQ(r.num_dropped_dependency, 1u);
}

TEST(FeasibilityAdmissionTest, RejectsHopelesslyLateArrivals) {
  FeasibilityAdmissionOptions feasibility;  // bound 0: must be on time
  // T0 (length 10) is ready when T1 arrives; T1's predicted finish is
  // 15, far past its deadline of 8.
  const RunResult r =
      RunAdmitted({Txn(0, 0, 10, 100), Txn(1, 0, 5, 8)},
                  MakeFeasibilityAdmission(feasibility));
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kShedAdmission);
}

TEST(FeasibilityAdmissionTest, AdmitsWithinTheTardinessBound) {
  FeasibilityAdmissionOptions feasibility;
  feasibility.tardiness_bound = 10.0;  // predicted tardiness 7 is fine
  const RunResult r =
      RunAdmitted({Txn(0, 0, 10, 100), Txn(1, 0, 5, 8)},
                  MakeFeasibilityAdmission(feasibility));
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.num_shed, 0u);
}

TEST(AdmissionControllerTest, NamesDescribeTheConfiguration) {
  EXPECT_EQ(QueueDepthAdmission().name(), "queue-depth(64)");
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 7;
  EXPECT_EQ(QueueDepthAdmission(depth).name(), "queue-depth(7)");
  EXPECT_EQ(FeasibilityAdmission().name(), "feasibility(0)");
}

TEST(AdmissionControllerTest, NullFactoryAdmitsEverything) {
  const RunResult r = RunAdmitted(
      {Txn(0, 0, 3, 100), Txn(1, 0, 3, 100)}, nullptr);
  EXPECT_EQ(r.num_shed, 0u);
  EXPECT_EQ(r.goodput, 1.0);
}

}  // namespace
}  // namespace webtx
