#include "sched/admission.h"

#include <gtest/gtest.h>

#include "sched/policies/single_queue_policies.h"
#include "sim/simulator.h"
#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::Txn;

RunResult RunAdmitted(std::vector<TransactionSpec> txns,
                      AdmissionFactory admission) {
  SimOptions options;
  options.admission = std::move(admission);
  auto sim = Simulator::Create(std::move(txns), options);
  EXPECT_TRUE(sim.ok()) << sim.status();
  FcfsPolicy policy;
  return sim.ValueOrDie().Run(policy);
}

TEST(QueueDepthAdmissionTest, RejectsArrivalsOverTheCap) {
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 2;
  // Five simultaneous arrivals: the first two fill the queue, the rest
  // are shed at the door.
  const RunResult r = RunAdmitted(
      {Txn(0, 0, 3, 100), Txn(1, 0, 3, 100), Txn(2, 0, 3, 100),
       Txn(3, 0, 3, 100), Txn(4, 0, 3, 100)},
      MakeQueueDepthAdmission(depth));
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[2].fate, TxnFate::kShedAdmission);
  EXPECT_EQ(r.outcomes[3].fate, TxnFate::kShedAdmission);
  EXPECT_EQ(r.outcomes[4].fate, TxnFate::kShedAdmission);
  EXPECT_EQ(r.num_shed, 3u);
  EXPECT_DOUBLE_EQ(r.goodput, 0.4);
  // Shed transactions count as misses but never as tardiness samples.
  EXPECT_DOUBLE_EQ(r.miss_ratio, 0.6);
  EXPECT_EQ(r.outcomes[2].tardiness, 0.0);
}

TEST(QueueDepthAdmissionTest, DeferredArrivalIsAdmittedOnceLoadClears) {
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 1;
  depth.defer_delay = 10.0;
  depth.max_defers = 2;
  const RunResult r = RunAdmitted({Txn(0, 0, 5, 100), Txn(1, 0, 5, 100)},
                                  MakeQueueDepthAdmission(depth));
  // T1 is deferred at t=0; at t=10 T0 has finished (t=5) and the queue
  // is empty, so T1 is admitted and runs 10..15.
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[0].finish, 5.0);
  EXPECT_EQ(r.outcomes[1].finish, 15.0);
  EXPECT_EQ(r.num_deferrals, 1u);
  EXPECT_EQ(r.num_shed, 0u);
}

TEST(QueueDepthAdmissionTest, RejectsAfterTheDeferBudget) {
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 1;
  depth.defer_delay = 3.0;
  depth.max_defers = 1;
  // T0 occupies the queue past both decision points for T1.
  const RunResult r = RunAdmitted({Txn(0, 0, 100, 200), Txn(1, 0, 5, 50)},
                                  MakeQueueDepthAdmission(depth));
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kShedAdmission);
  EXPECT_EQ(r.outcomes[1].finish, 3.0);  // rejected at the re-arrival
  EXPECT_EQ(r.num_deferrals, 1u);
  EXPECT_EQ(r.num_shed, 1u);
}

TEST(QueueDepthAdmissionTest, MidWorkflowTransactionsAreNeverShed) {
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 1;
  // T1 arrives over-cap but depends on T0: rejecting it would waste
  // T0's work, so it is always admitted.
  const RunResult r =
      RunAdmitted({Txn(0, 0, 5, 100), Txn(1, 1, 2, 100, 1.0, {0})},
                  MakeQueueDepthAdmission(depth));
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].finish, 7.0);
}

TEST(QueueDepthAdmissionTest, ShedRootDropsItsDependents) {
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 1;
  const RunResult r =
      RunAdmitted({Txn(0, 0, 5, 100), Txn(1, 0, 5, 100),
                   Txn(2, 3, 2, 100, 1.0, {1})},
                  MakeQueueDepthAdmission(depth));
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kShedAdmission);
  EXPECT_EQ(r.outcomes[2].fate, TxnFate::kDroppedDependency);
  // The dependent is resolved at the shed instant, before it arrives.
  EXPECT_EQ(r.outcomes[2].finish, 0.0);
  EXPECT_EQ(r.num_shed, 1u);
  EXPECT_EQ(r.num_dropped_dependency, 1u);
}

// Property: the defer budget is an exact boundary. A transaction
// deferred `max_defers` times MUST be decided — admitted or rejected —
// at its next presentation; a (max_defers+1)-th deferral is a bug that
// would let an arrival ping-pong forever.
TEST(QueueDepthAdmissionTest, DeferBudgetBoundaryIsExact) {
  for (const uint32_t budget : {0u, 1u, 2u, 3u, 4u, 7u}) {
    QueueDepthAdmissionOptions depth;
    depth.max_ready = 1;
    depth.defer_delay = 2.0;
    depth.max_defers = budget;
    // A full ready queue that never clears: every presentation of T2 is
    // over-cap, so the controller's only degrees of freedom are defer
    // and reject.
    testing::FakeView view(
        {Txn(0, 0, 5, 100), Txn(1, 0, 5, 100), Txn(2, 0, 5, 100)});
    view.Arrive(0);
    view.Arrive(1);
    view.RebuildReadyList();
    QueueDepthAdmission controller(depth);
    controller.Bind(view);
    for (uint32_t presentation = 0; presentation < budget; ++presentation) {
      const AdmissionDecision d =
          controller.Decide(2, 2.0 * presentation);
      EXPECT_EQ(d.action, AdmissionDecision::Action::kDefer)
          << "budget " << budget << ", presentation " << presentation;
    }
    // Presentation number `budget` exhausts the budget: decided now and
    // on every later presentation, never deferred again.
    for (uint32_t beyond = 0; beyond < 3; ++beyond) {
      const AdmissionDecision d =
          controller.Decide(2, 2.0 * (budget + beyond));
      EXPECT_NE(d.action, AdmissionDecision::Action::kDefer)
          << "budget " << budget << ", presentation " << (budget + beyond);
    }
  }
}

// The same boundary observed end-to-end: under a never-clearing queue
// the simulator grants exactly max_defers deferrals and resolves the
// victim at the final re-arrival.
TEST(QueueDepthAdmissionTest, SimulatorGrantsExactlyTheDeferBudget) {
  for (const uint32_t budget : {0u, 1u, 3u, 5u}) {
    QueueDepthAdmissionOptions depth;
    depth.max_ready = 1;
    depth.defer_delay = 2.0;
    depth.max_defers = budget;
    const RunResult r =
        RunAdmitted({Txn(0, 0, 1000, 2000), Txn(1, 0, 5, 50)},
                    MakeQueueDepthAdmission(depth));
    EXPECT_EQ(r.outcomes[1].fate, TxnFate::kShedAdmission) << budget;
    EXPECT_EQ(r.num_deferrals, static_cast<size_t>(budget)) << budget;
    // Shed at the re-arrival that exhausted the budget.
    EXPECT_EQ(r.outcomes[1].finish, 2.0 * budget) << budget;
  }
}

TEST(FeasibilityAdmissionTest, RejectsHopelesslyLateArrivals) {
  FeasibilityAdmissionOptions feasibility;  // bound 0: must be on time
  // T0 (length 10) is ready when T1 arrives; T1's predicted finish is
  // 15, far past its deadline of 8.
  const RunResult r =
      RunAdmitted({Txn(0, 0, 10, 100), Txn(1, 0, 5, 8)},
                  MakeFeasibilityAdmission(feasibility));
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kShedAdmission);
}

TEST(FeasibilityAdmissionTest, AdmitsWithinTheTardinessBound) {
  FeasibilityAdmissionOptions feasibility;
  feasibility.tardiness_bound = 10.0;  // predicted tardiness 7 is fine
  const RunResult r =
      RunAdmitted({Txn(0, 0, 10, 100), Txn(1, 0, 5, 8)},
                  MakeFeasibilityAdmission(feasibility));
  EXPECT_EQ(r.outcomes[0].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.outcomes[1].fate, TxnFate::kCompleted);
  EXPECT_EQ(r.num_shed, 0u);
}

TEST(AdmissionControllerTest, NamesDescribeTheConfiguration) {
  EXPECT_EQ(QueueDepthAdmission().name(), "queue-depth(64)");
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 7;
  EXPECT_EQ(QueueDepthAdmission(depth).name(), "queue-depth(7)");
  EXPECT_EQ(FeasibilityAdmission().name(), "feasibility(0)");
}

TEST(AdmissionControllerTest, NullFactoryAdmitsEverything) {
  const RunResult r = RunAdmitted(
      {Txn(0, 0, 3, 100), Txn(1, 0, 3, 100)}, nullptr);
  EXPECT_EQ(r.num_shed, 0u);
  EXPECT_EQ(r.goodput, 1.0);
}

// ---------------------------------------------------------------------------
// BrownoutAdmission: adaptive shedding from OBSERVED tardiness/depth
// (the live executor feeds ObserveCompletion; these tests drive the
// signals by hand). ewma_alpha = 1.0 makes each EWMA equal the latest
// sample, so severity is exactly controllable.

BrownoutAdmissionOptions ResponsiveBrownout() {
  BrownoutAdmissionOptions options;
  options.tardiness_slo = 0.5;
  options.depth_slo = 16.0;
  options.ewma_alpha = 1.0;
  options.weight_tiers = {1.0, 4.0, 16.0};
  options.breaker_trip_severity = 4.0;
  options.breaker_cooldown = 5.0;
  return options;
}

/// Roots of every weight tier plus one dependent; nothing ready, so the
/// depth signal stays zero and tardiness alone sets the severity.
testing::FakeView BrownoutView() {
  std::vector<TransactionSpec> txns = {
      Txn(0, 0, 1, 100, /*weight=*/0.5),  Txn(1, 0, 1, 100, /*weight=*/2.0),
      Txn(2, 0, 1, 100, /*weight=*/16.0), Txn(3, 0, 1, 100, /*weight=*/0.5,
                                              /*deps=*/{0}),
  };
  return testing::FakeView(std::move(txns));
}

TEST(BrownoutAdmissionTest, HealthyAdmitsEveryWeight) {
  auto view = BrownoutView();
  BrownoutAdmission brownout(ResponsiveBrownout());
  brownout.Bind(view);
  for (TxnId id = 0; id < 3; ++id) {
    EXPECT_EQ(brownout.Decide(id, 0.0).action,
              AdmissionDecision::Action::kAdmit)
        << "T" << id;
  }
  EXPECT_EQ(brownout.breaker_state(),
            BrownoutAdmission::BreakerState::kClosed);
}

TEST(BrownoutAdmissionTest, BrownoutShedsByWeightTier) {
  auto view = BrownoutView();
  BrownoutAdmission brownout(ResponsiveBrownout());
  brownout.Bind(view);

  // severity 1.5: one unit of overload -> floor = tier 0 (weight 1.0).
  brownout.ObserveCompletion(0, /*tardiness=*/0.75, 1.0);
  EXPECT_EQ(brownout.Decide(0, 1.0).action,
            AdmissionDecision::Action::kReject);  // weight 0.5 < 1.0
  EXPECT_EQ(brownout.Decide(1, 1.0).action,
            AdmissionDecision::Action::kAdmit);  // weight 2.0 >= 1.0

  // severity 2.5: deeper overload -> floor = tier 1 (weight 4.0).
  brownout.ObserveCompletion(0, /*tardiness=*/1.25, 2.0);
  EXPECT_EQ(brownout.Decide(1, 2.0).action,
            AdmissionDecision::Action::kReject);  // weight 2.0 < 4.0
  EXPECT_EQ(brownout.Decide(2, 2.0).action,
            AdmissionDecision::Action::kAdmit);  // weight 16.0 >= 4.0
}

TEST(BrownoutAdmissionTest, MidWorkflowArrivalsRideTheBrownoutOut) {
  auto view = BrownoutView();
  BrownoutAdmission brownout(ResponsiveBrownout());
  brownout.Bind(view);
  brownout.ObserveCompletion(0, /*tardiness=*/1.25, 1.0);  // severity 2.5
  // T3 depends on T0: shedding it would waste finished predecessor work.
  EXPECT_EQ(brownout.Decide(3, 1.0).action,
            AdmissionDecision::Action::kAdmit);
}

TEST(BrownoutAdmissionTest, BreakerTripsAndRecoversThroughAProbe) {
  auto view = BrownoutView();
  BrownoutAdmission brownout(ResponsiveBrownout());
  brownout.Bind(view);

  // severity 4.0 >= trip: the breaker opens; only top tier passes.
  brownout.ObserveCompletion(0, /*tardiness=*/2.0, 1.0);
  EXPECT_EQ(brownout.Decide(1, 1.0).action,
            AdmissionDecision::Action::kReject);
  EXPECT_EQ(brownout.breaker_state(), BrownoutAdmission::BreakerState::kOpen);
  EXPECT_EQ(brownout.Decide(2, 1.5).action,
            AdmissionDecision::Action::kAdmit);  // top tier rides through

  // Cooldown elapsed: the next root is admitted as the half-open probe
  // regardless of weight; contemporaries still face the top-tier bar.
  EXPECT_EQ(brownout.Decide(0, 7.0).action,
            AdmissionDecision::Action::kAdmit);
  EXPECT_EQ(brownout.breaker_state(),
            BrownoutAdmission::BreakerState::kHalfOpen);
  EXPECT_EQ(brownout.Decide(1, 7.0).action,
            AdmissionDecision::Action::kReject);

  // The probe meets the SLO: the breaker closes and (with the tardiness
  // signal now healthy) low weights are admitted again.
  brownout.ObserveCompletion(0, /*tardiness=*/0.0, 8.0);
  EXPECT_EQ(brownout.breaker_state(),
            BrownoutAdmission::BreakerState::kClosed);
  EXPECT_EQ(brownout.Decide(0, 8.0).action,
            AdmissionDecision::Action::kAdmit);
}

TEST(BrownoutAdmissionTest, TardyProbeReopensTheBreaker) {
  auto view = BrownoutView();
  BrownoutAdmission brownout(ResponsiveBrownout());
  brownout.Bind(view);
  brownout.ObserveCompletion(0, /*tardiness=*/2.0, 1.0);
  (void)brownout.Decide(1, 1.0);  // trips the breaker open
  (void)brownout.Decide(0, 7.0);  // half-open probe
  brownout.ObserveCompletion(0, /*tardiness=*/1.0, 7.5);  // probe misses SLO
  EXPECT_EQ(brownout.breaker_state(), BrownoutAdmission::BreakerState::kOpen);
  // Re-opened for another full cooldown from the probe's completion.
  EXPECT_EQ(brownout.Decide(0, 10.0).action,
            AdmissionDecision::Action::kReject);
}

TEST(BrownoutAdmissionTest, DepthSignalAloneCanBrownout) {
  // 20 ready roots on 1 server vs depth_slo 8: severity 2.5 from depth
  // with zero observed tardiness.
  std::vector<TransactionSpec> txns;
  for (TxnId id = 0; id < 20; ++id) {
    txns.push_back(Txn(id, 0, 1, 100, /*weight=*/2.0));
  }
  txns.push_back(Txn(20, 0, 1, 100, /*weight=*/8.0));
  testing::FakeView view(std::move(txns));
  view.ArriveAll();

  BrownoutAdmissionOptions options = ResponsiveBrownout();
  options.depth_slo = 8.0;
  BrownoutAdmission brownout(options);
  brownout.Bind(view);
  EXPECT_EQ(brownout.Decide(0, 0.0).action,
            AdmissionDecision::Action::kReject);  // weight 2.0 < tier-1 4.0
  EXPECT_EQ(brownout.Decide(20, 0.0).action,
            AdmissionDecision::Action::kAdmit);  // weight 8.0 >= 4.0
  EXPECT_GT(brownout.depth_ewma(), options.depth_slo);
}

/// FakeView with a controllable server pool, for the crash-aware
/// severity signal (FakeView itself is final, so delegate).
class CrashyView final : public SimView {
 public:
  explicit CrashyView(std::vector<TransactionSpec> txns)
      : inner_(std::move(txns)) {}

  void SetServers(size_t total, size_t up) {
    total_ = total;
    up_ = up;
  }

  const std::vector<TransactionSpec>& specs() const override {
    return inner_.specs();
  }
  const DependencyGraph& graph() const override { return inner_.graph(); }
  const WorkflowRegistry& workflows() const override {
    return inner_.workflows();
  }
  SimTime remaining(TxnId id) const override { return inner_.remaining(id); }
  bool IsArrived(TxnId id) const override { return inner_.IsArrived(id); }
  bool IsFinished(TxnId id) const override { return inner_.IsFinished(id); }
  bool IsReady(TxnId id) const override { return inner_.IsReady(id); }
  const std::vector<TxnId>& ready_transactions() const override {
    return inner_.ready_transactions();
  }
  size_t num_servers() const override { return total_; }
  size_t num_servers_up() const override { return up_; }

 private:
  testing::FakeView inner_;
  size_t total_ = 1;
  size_t up_ = 1;
};

TEST(BrownoutAdmissionTest, CrashAwareSeverityShedsWhenWorkersDie) {
  // Zero tardiness, zero depth: only the crash signal can brown out.
  CrashyView view({Txn(0, 0, 1, 100, /*weight=*/0.5),
                   Txn(1, 0, 1, 100, /*weight=*/2.0)});
  view.SetServers(4, 4);
  BrownoutAdmissionOptions options = ResponsiveBrownout();
  options.capacity_slo = 0.5;  // half the farm down = "at capacity"
  BrownoutAdmission brownout(options);
  brownout.Bind(view);

  // Full pool: healthy, everything admitted.
  EXPECT_EQ(brownout.Decide(0, 0.0).action,
            AdmissionDecision::Action::kAdmit);

  // 3 of 4 down: down_fraction 0.75 / slo 0.5 = severity 1.5 -> floor
  // tier 0 (weight 1.0) purely from lost capacity, before any backlog
  // symptom shows up in tardiness or depth.
  view.SetServers(4, 1);
  EXPECT_EQ(brownout.Decide(0, 1.0).action,
            AdmissionDecision::Action::kReject);  // weight 0.5 < 1.0
  EXPECT_EQ(brownout.Decide(1, 1.0).action,
            AdmissionDecision::Action::kAdmit);  // weight 2.0 >= 1.0

  // The signal is instantaneous, not an EWMA: repairs restore admission
  // at the very next arrival.
  view.SetServers(4, 4);
  EXPECT_EQ(brownout.Decide(0, 2.0).action,
            AdmissionDecision::Action::kAdmit);
}

TEST(BrownoutAdmissionTest, CapacitySloZeroDisablesTheCrashSignal) {
  CrashyView view({Txn(0, 0, 1, 100, /*weight=*/0.5)});
  view.SetServers(4, 0);  // the whole farm is down
  BrownoutAdmission brownout(ResponsiveBrownout());  // capacity_slo = 0
  brownout.Bind(view);
  EXPECT_EQ(brownout.Decide(0, 0.0).action,
            AdmissionDecision::Action::kAdmit);
}

}  // namespace
}  // namespace webtx
