#include "sched/policies/single_queue_policies.h"

#include <gtest/gtest.h>

#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::FakeView;
using testing::Txn;

// Four ready transactions with distinct orderings per policy dimension:
//   id  arrival  length  deadline  weight
//   0      0        8       40       1      earliest arrival
//   1      1        2       30       1      shortest remaining
//   2      2        6       20       4      highest weight & density
//   3      3        4       10       2      earliest deadline, least slack
std::vector<TransactionSpec> Mixed() {
  return {Txn(0, 0, 8, 40, 1.0), Txn(1, 1, 2, 30, 1.0), Txn(2, 2, 6, 20, 4.0),
          Txn(3, 3, 4, 10, 2.0)};
}

class SingleQueuePolicyTest : public ::testing::Test {
 protected:
  SingleQueuePolicyTest() : view_(Mixed()) {
    view_.ArriveAll();
  }

  void FeedAll(SchedulerPolicy& policy, SimTime now = 3.0) {
    policy.Bind(view_);
    for (TxnId id = 0; id < 4; ++id) policy.OnReady(id, now);
  }

  FakeView view_;
};

TEST_F(SingleQueuePolicyTest, FcfsPicksEarliestArrival) {
  FcfsPolicy policy;
  FeedAll(policy);
  EXPECT_EQ(policy.PickNext(3.0), 0u);
  EXPECT_EQ(policy.name(), "FCFS");
}

TEST_F(SingleQueuePolicyTest, EdfPicksEarliestDeadline) {
  EdfPolicy policy;
  FeedAll(policy);
  EXPECT_EQ(policy.PickNext(3.0), 3u);
  EXPECT_EQ(policy.name(), "EDF");
}

TEST_F(SingleQueuePolicyTest, SrptPicksShortestRemaining) {
  SrptPolicy policy;
  FeedAll(policy);
  EXPECT_EQ(policy.PickNext(3.0), 1u);
}

TEST_F(SingleQueuePolicyTest, LsPicksLeastSlack) {
  // Slacks at t=3: T0: 40-3-8=29, T1: 30-3-2=25, T2: 20-3-6=11, T3: 10-3-4=3.
  LsPolicy policy;
  FeedAll(policy);
  EXPECT_EQ(policy.PickNext(3.0), 3u);
}

TEST_F(SingleQueuePolicyTest, HdfPicksHighestDensity) {
  // Densities w/r: T0: 1/8, T1: 1/2, T2: 4/6, T3: 2/4.
  HdfPolicy policy;
  FeedAll(policy);
  EXPECT_EQ(policy.PickNext(3.0), 2u);
}

TEST_F(SingleQueuePolicyTest, HvfPicksHighestWeight) {
  HvfPolicy policy;
  FeedAll(policy);
  EXPECT_EQ(policy.PickNext(3.0), 2u);
}

TEST_F(SingleQueuePolicyTest, CompletionRemovesFromQueue) {
  EdfPolicy policy;
  FeedAll(policy);
  view_.Finish(3);
  policy.OnCompletion(3, 4.0);
  EXPECT_EQ(policy.PickNext(4.0), 2u);
  EXPECT_EQ(policy.queue_size(), 3u);
}

TEST_F(SingleQueuePolicyTest, EmptyQueueReturnsInvalid) {
  EdfPolicy policy;
  policy.Bind(view_);
  EXPECT_EQ(policy.PickNext(0.0), kInvalidTxn);
}

TEST_F(SingleQueuePolicyTest, SrptReordersOnRemainingUpdate) {
  SrptPolicy policy;
  FeedAll(policy);
  EXPECT_EQ(policy.PickNext(3.0), 1u);
  // T1 "ran" but was preempted with 1.9 left; T2 shrinks below it.
  view_.SetRemaining(2, 0.5);
  policy.OnRemainingUpdated(2, 5.0);
  EXPECT_EQ(policy.PickNext(5.0), 2u);
}

TEST_F(SingleQueuePolicyTest, HdfReordersOnRemainingUpdate) {
  HdfPolicy policy;
  FeedAll(policy);
  EXPECT_EQ(policy.PickNext(3.0), 2u);
  view_.SetRemaining(1, 0.2);  // density 1/0.2 = 5 > 4/6
  policy.OnRemainingUpdated(1, 5.0);
  EXPECT_EQ(policy.PickNext(5.0), 1u);
}

TEST_F(SingleQueuePolicyTest, StaticPoliciesIgnoreRemainingUpdate) {
  EdfPolicy policy;
  FeedAll(policy);
  view_.SetRemaining(0, 0.001);
  policy.OnRemainingUpdated(0, 5.0);
  EXPECT_EQ(policy.PickNext(5.0), 3u);  // still earliest deadline
}

TEST_F(SingleQueuePolicyTest, RebindResetsState) {
  EdfPolicy policy;
  FeedAll(policy);
  EXPECT_EQ(policy.queue_size(), 4u);
  policy.Bind(view_);
  EXPECT_EQ(policy.queue_size(), 0u);
  EXPECT_EQ(policy.PickNext(0.0), kInvalidTxn);
}

}  // namespace
}  // namespace webtx
