// Dynamic-arrival edge cases for ASETS*: members of a workflow entering
// the system out of dependency order, workflows flickering between
// active and inactive, and representative updates racing migrations.
// These run through the full simulator so event ordering is realistic.

#include <gtest/gtest.h>

#include "sched/policies/asets_star.h"
#include "sim/schedule_validator.h"
#include "sim/simulator.h"
#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::FakeView;
using testing::Txn;

RunResult Simulate(std::vector<TransactionSpec> txns) {
  SimOptions options;
  options.record_schedule = true;
  auto sim = Simulator::Create(std::move(txns), options);
  EXPECT_TRUE(sim.ok()) << sim.status();
  AsetsStarPolicy policy;
  return sim.ValueOrDie().Run(policy);
}

TEST(AsetsStarDynamicTest, DependentArrivingBeforePredecessor) {
  // T1 (dependent) arrives at 0, its predecessor T0 only at 10. The
  // workflow has no ready member until then; an unrelated transaction
  // keeps the server busy.
  const std::vector<TransactionSpec> txns = {
      Txn(0, 10, 3, 20),             // predecessor, late arrival
      Txn(1, 0, 2, 16, 1.0, {0}),    // dependent, early arrival
      Txn(2, 0, 4, 30),              // filler
  };
  const RunResult r = Simulate(txns);
  EXPECT_TRUE(ValidateSchedule(txns, r, 1).ok());
  // T2 starts first (only ready work); T0 preempts or follows at 10 and
  // T1 runs right after T0 (its workflow rep is the most urgent).
  EXPECT_GE(r.outcomes[1].finish, r.outcomes[0].finish + 2.0 - 1e-9);
  EXPECT_EQ(r.outcomes[0].finish, 13.0);  // T0 runs [10,13]
  EXPECT_EQ(r.outcomes[1].finish, 15.0);
}

TEST(AsetsStarDynamicTest, WorkflowReactivatesAsMembersArrive) {
  // A three-member chain arriving in reverse dependency order with gaps.
  const std::vector<TransactionSpec> txns = {
      Txn(0, 8, 2, 40),              // leaf arrives last
      Txn(1, 4, 2, 30, 1.0, {0}),
      Txn(2, 0, 2, 20, 1.0, {1}),
  };
  const RunResult r = Simulate(txns);
  EXPECT_TRUE(ValidateSchedule(txns, r, 1).ok());
  EXPECT_EQ(r.outcomes[0].finish, 10.0);
  EXPECT_EQ(r.outcomes[1].finish, 12.0);
  EXPECT_EQ(r.outcomes[2].finish, 14.0);
}

TEST(AsetsStarDynamicTest, UrgentLateArrivalBoostsSharedLeaf) {
  // The shared leaf T0 feeds a relaxed root T1 and (arriving later) a
  // very urgent root T2. Before T2 arrives, the filler T3 outranks the
  // workflow; T2's arrival must flip the decision toward T0 via the
  // representative deadline.
  const std::vector<TransactionSpec> txns = {
      Txn(0, 0, 6, 50),
      Txn(1, 0, 4, 60, 1.0, {0}),
      Txn(2, 2, 1, 12, 1.0, {0}),   // urgent dependent arrives at 2
      Txn(3, 0, 5, 20),             // filler, earliest own deadline at t=0
  };
  const RunResult r = Simulate(txns);
  EXPECT_TRUE(ValidateSchedule(txns, r, 1).ok());
  // With the boost, T0 must displace the filler soon after t=2 so that
  // T2 can meet (or nearly meet) its deadline of 12.
  EXPECT_LE(r.outcomes[2].finish, 12.0 + 1e-9);
}

TEST(AsetsStarDynamicTest, TardyWorkflowStillDrainsInDensityOrder) {
  // Two single-member workflows, both hopeless; higher density first.
  const std::vector<TransactionSpec> txns = {
      Txn(0, 0, 8, 1, 1.0),   // density 1/8
      Txn(1, 0, 4, 1, 4.0),   // density 1
  };
  const RunResult r = Simulate(txns);
  EXPECT_EQ(r.outcomes[1].finish, 4.0);
  EXPECT_EQ(r.outcomes[0].finish, 12.0);
}

TEST(AsetsStarDynamicTest, CompletedWorkflowLeavesNoResidue) {
  // After a workflow fully completes, later arrivals must schedule
  // normally (no stale list entries). The chain completes before the
  // second batch arrives.
  const std::vector<TransactionSpec> txns = {
      Txn(0, 0, 1, 5),
      Txn(1, 0, 1, 6, 1.0, {0}),
      Txn(2, 10, 2, 14),
      Txn(3, 10, 1, 13),
  };
  const RunResult r = Simulate(txns);
  EXPECT_TRUE(ValidateSchedule(txns, r, 1).ok());
  EXPECT_EQ(r.outcomes[0].finish, 1.0);
  EXPECT_EQ(r.outcomes[1].finish, 2.0);
  // Second batch: both can meet their deadlines; EDF order runs T3 first.
  EXPECT_EQ(r.outcomes[3].finish, 11.0);
  EXPECT_EQ(r.outcomes[2].finish, 13.0);
}

TEST(AsetsStarDynamicTest, SnapshotTracksArrivalsIncrementally) {
  // Direct policy-level check that arrivals refresh representatives.
  FakeView view({Txn(0, 0, 5, 40), Txn(1, 0, 2, 9, 6.0, {0})});
  view.Arrive(0);
  view.RebuildReadyList();
  AsetsStarPolicy policy;
  policy.Bind(view);
  policy.OnArrival(0, 0.0);
  policy.OnReady(0, 0.0);
  auto before = policy.SnapshotOf(0);
  EXPECT_EQ(before.rep_deadline, 40.0);
  EXPECT_EQ(before.rep_weight, 1.0);

  view.Arrive(1);
  view.RebuildReadyList();
  policy.OnArrival(1, 1.0);
  auto after = policy.SnapshotOf(0);
  EXPECT_EQ(after.rep_deadline, 9.0);
  EXPECT_EQ(after.rep_weight, 6.0);
  EXPECT_EQ(after.rep_remaining, 2.0);
  EXPECT_EQ(after.head, 0u);
}

}  // namespace
}  // namespace webtx
