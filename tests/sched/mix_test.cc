#include "sched/policies/mix.h"

#include <gtest/gtest.h>

#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::FakeView;
using testing::Txn;

// T0: very early deadline, weight 1. T1: late deadline, weight 10.
std::vector<TransactionSpec> Polar() {
  return {Txn(0, 0, 5, 10, 1.0), Txn(1, 0, 5, 200, 10.0)};
}

TEST(MixTest, BetaZeroIsEdf) {
  FakeView view(Polar());
  view.ArriveAll();
  MixPolicy policy(0.0);
  policy.Bind(view);
  policy.OnReady(0, 0.0);
  policy.OnReady(1, 0.0);
  EXPECT_EQ(policy.PickNext(0.0), 0u);
}

TEST(MixTest, BetaOneIsHvf) {
  FakeView view(Polar());
  view.ArriveAll();
  MixPolicy policy(1.0);
  policy.Bind(view);
  policy.OnReady(0, 0.0);
  policy.OnReady(1, 0.0);
  EXPECT_EQ(policy.PickNext(0.0), 1u);
}

TEST(MixTest, IntermediateBetaBlends) {
  // key = (1-b)*d - b*50*w. At b=0.5: T0: 5 - 25 = -20; T1: 100 - 250 =
  // -150 -> T1 wins; at b=0.1: T0: 9 - 5 = 4; T1: 180 - 50 = 130 -> T0.
  FakeView view(Polar());
  view.ArriveAll();
  MixPolicy half(0.5);
  half.Bind(view);
  half.OnReady(0, 0.0);
  half.OnReady(1, 0.0);
  EXPECT_EQ(half.PickNext(0.0), 1u);

  MixPolicy tenth(0.1);
  tenth.Bind(view);
  tenth.OnReady(0, 0.0);
  tenth.OnReady(1, 0.0);
  EXPECT_EQ(tenth.PickNext(0.0), 0u);
}

TEST(MixTest, NameIncludesBeta) {
  EXPECT_EQ(MixPolicy(0.5).name(), "MIX(0.5)");
  EXPECT_EQ(MixPolicy(0.25).name(), "MIX(0.25)");
}

TEST(MixDeathTest, RejectsBadParameters) {
  EXPECT_DEATH(MixPolicy(-0.1), "beta");
  EXPECT_DEATH(MixPolicy(1.1), "beta");
  EXPECT_DEATH(MixPolicy(0.5, 0.0), "CHECK failed");
}

}  // namespace
}  // namespace webtx
