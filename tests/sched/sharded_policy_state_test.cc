// Unit tests for the sharded policy state: factory spec wiring, decision
// parity between a sharded policy and its global-state twin on a
// hand-driven view, and the steal bookkeeping of OnPlaced. The full
// simulator-level byte-identity matrix lives in
// tests/sim/sharded_differential_test.cc.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sched/policies/asets_star.h"
#include "sched/policies/asets_star_sharded.h"
#include "sched/policies/single_queue_policies.h"
#include "sched/policy_factory.h"
#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::FakeView;
using testing::Txn;

TEST(ShardedPolicyStateTest, FactoryCreatesShardedVariants) {
  for (const char* base : {"FCFS", "EDF", "SRPT", "LS", "HDF", "HVF",
                           "ASETS*", "ASETS*-lazy"}) {
    const std::string spec = std::string(base) + "-sharded";
    auto policy = CreatePolicy(spec);
    ASSERT_TRUE(policy.ok()) << spec << ": " << policy.status();
    EXPECT_EQ(policy.ValueOrDie()->name(), spec);
    EXPECT_NE(policy.ValueOrDie()->AsShardedState(), nullptr) << spec;
  }
}

TEST(ShardedPolicyStateTest, PlainPoliciesHaveNoShardedState) {
  for (const char* base : {"FCFS", "SRPT", "ASETS*", "ASETS", "Ready"}) {
    auto policy = CreatePolicy(base);
    ASSERT_TRUE(policy.ok()) << base << ": " << policy.status();
    EXPECT_EQ(policy.ValueOrDie()->AsShardedState(), nullptr) << base;
  }
}

TEST(ShardedPolicyStateTest, UnsupportedBasesAreNotFound) {
  // Ready extends AsetsPolicy, ASETS keeps global batch state, MIX wraps
  // two queues — none has a sharded-state variant.
  for (const char* spec :
       {"Ready-sharded", "ASETS-sharded", "MIX-sharded", "MIX(0.25)-sharded",
        "Nope-sharded"}) {
    auto policy = CreatePolicy(spec);
    ASSERT_FALSE(policy.ok()) << spec;
    EXPECT_EQ(policy.status().code(), StatusCode::kNotFound) << spec;
  }
}

std::vector<TransactionSpec> IndependentSpecs() {
  return {Txn(0, 0.0, 5.0, 20.0, 2.0), Txn(1, 0.0, 3.0, 15.0),
          Txn(2, 0.0, 8.0, 30.0, 3.0), Txn(3, 0.0, 2.0, 10.0),
          Txn(4, 0.0, 6.0, 25.0, 1.5),  Txn(5, 0.0, 4.0, 12.0),
          Txn(6, 0.0, 7.0, 40.0, 4.0),  Txn(7, 0.0, 1.0, 9.0)};
}

// A sharded single-queue policy must reproduce the global pick order —
// including the excluding walk a k-server round performs — before and
// after cross-shard steals.
TEST(ShardedPolicyStateTest, SingleQueuePickParityAcrossSteals) {
  FakeView view(IndependentSpecs());
  view.ArriveAll();

  SrptPolicy global;
  global.Bind(view);
  SrptPolicy sharded;
  sharded.EnableSharded();
  sharded.Bind(view);
  ShardedPolicyState* state = sharded.AsShardedState();
  ASSERT_NE(state, nullptr);
  state->BindShards(4);

  for (const TxnId id : view.ready_transactions()) {
    global.OnReady(id, 0.0);
    sharded.OnReady(id, 0.0);
  }
  EXPECT_EQ(sharded.queue_size(), view.ready_transactions().size());

  // Full excluding walk: the greedy k-server placement order.
  std::vector<TxnId> exclude;
  for (size_t k = 0; k <= view.specs().size(); ++k) {
    const TxnId want = global.PickNextExcluding(0.0, exclude);
    EXPECT_EQ(sharded.PickNextExcluding(0.0, exclude), want) << "slot " << k;
    if (want == kInvalidTxn) break;
    exclude.push_back(want);
  }

  // Steal the top pick into a shard that does not own it; the pick order
  // must not change (keys are preserved by the move).
  const TxnId top = global.PickNext(0.0);
  ASSERT_NE(top, kInvalidTxn);
  const uint64_t before = state->steal_count();
  state->OnPlaced(top, (static_cast<uint32_t>(top) + 1) % 4, 0.0);
  EXPECT_EQ(state->steal_count(), before + 1);
  EXPECT_EQ(sharded.PickNext(0.0), top);

  // Re-placing on the now-owning shard is a no-op, not another steal.
  state->OnPlaced(top, (static_cast<uint32_t>(top) + 1) % 4, 0.0);
  EXPECT_EQ(state->steal_count(), before + 1);

  // Drain both policies completely; every pick must agree.
  while (true) {
    const TxnId want = global.PickNext(0.0);
    EXPECT_EQ(sharded.PickNext(0.0), want);
    if (want == kInvalidTxn) break;
    view.Finish(want);
    global.OnCompletion(want, 1.0);
    sharded.OnCompletion(want, 1.0);
  }
  EXPECT_EQ(sharded.queue_size(), 0u);
}

TEST(ShardedPolicyStateTest, BindShardsClampsToOne) {
  FakeView view(IndependentSpecs());
  view.ArriveAll();
  SrptPolicy sharded;
  sharded.EnableSharded();
  sharded.Bind(view);
  sharded.AsShardedState()->BindShards(0);
  for (const TxnId id : view.ready_transactions()) sharded.OnReady(id, 0.0);
  // Everything routes through shard 0; placements never steal.
  sharded.AsShardedState()->OnPlaced(sharded.PickNext(0.0), 7, 0.0);
  EXPECT_EQ(sharded.AsShardedState()->steal_count(), 0u);
}

std::vector<TransactionSpec> WorkflowSpecs() {
  // Two chains plus loose transactions, so ASETS* tracks live workflow
  // representatives with distinct owners under 4 shards.
  return {Txn(0, 0.0, 4.0, 18.0, 2.0),
          Txn(1, 0.0, 3.0, 22.0, 1.0, {0}),
          Txn(2, 0.0, 6.0, 28.0, 3.0),
          Txn(3, 0.0, 2.0, 30.0, 1.0, {2}),
          Txn(4, 0.0, 5.0, 16.0, 1.5),
          Txn(5, 0.0, 3.5, 14.0, 2.5),
          Txn(6, 0.0, 1.5, 35.0, 1.0, {4})};
}

TEST(ShardedPolicyStateTest, AsetsStarPickParityAcrossSteals) {
  FakeView view(WorkflowSpecs());
  view.ArriveAll();

  AsetsStarPolicy global;
  global.Bind(view);
  AsetsStarShardedPolicy sharded;
  sharded.Bind(view);
  ShardedPolicyState* state = sharded.AsShardedState();
  ASSERT_NE(state, nullptr);
  state->BindShards(4);

  for (const auto& spec : view.specs()) {
    global.OnArrival(spec.id, 0.0);
    sharded.OnArrival(spec.id, 0.0);
  }
  for (const TxnId id : view.ready_transactions()) {
    global.OnReady(id, 0.0);
    sharded.OnReady(id, 0.0);
  }

  std::vector<TxnId> exclude;
  for (size_t k = 0; k < 4; ++k) {
    const TxnId want = global.PickNextExcluding(0.0, exclude);
    EXPECT_EQ(sharded.PickNextExcluding(0.0, exclude), want) << "slot " << k;
    if (want == kInvalidTxn) break;
    exclude.push_back(want);
  }

  // Steal every placed head into rotated shards, then re-run the walk:
  // decisions must be unchanged and the steals accounted.
  const uint64_t before = state->steal_count();
  for (size_t k = 0; k < exclude.size(); ++k) {
    state->OnPlaced(exclude[k], static_cast<uint32_t>((k + 1) % 4), 0.0);
  }
  EXPECT_GT(state->steal_count(), before);

  std::vector<TxnId> replay;
  for (size_t k = 0; k < exclude.size(); ++k) {
    const TxnId want = global.PickNextExcluding(0.0, replay);
    EXPECT_EQ(sharded.PickNextExcluding(0.0, replay), want)
        << "post-steal slot " << k;
    if (want == kInvalidTxn) break;
    replay.push_back(want);
  }
}

}  // namespace
}  // namespace webtx
