#include "sched/policies/balance_aware.h"

#include <memory>

#include <gtest/gtest.h>

#include "sched/policies/asets.h"
#include "sched/policies/single_queue_policies.h"
#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::FakeView;
using testing::Txn;

std::unique_ptr<BalanceAwarePolicy> MakeTimeBased(double rate) {
  BalanceAwareOptions options;
  options.mode = ActivationMode::kTimeBased;
  options.rate = rate;
  return std::make_unique<BalanceAwarePolicy>(std::make_unique<AsetsPolicy>(),
                                              options);
}

// All three transactions are tardy from t=0, so inner ASETS acts as SRPT
// and always picks T0 (shortest). T_old = argmax w_i/d_i = T2
// (1/0.1 = 10 beats 1/0.9 and 1/4).
std::vector<TransactionSpec> Workload() {
  return {Txn(0, 0, 1, 0.9, 1.0), Txn(1, 0, 5, 4, 1.0),
          Txn(2, 0, 9, 0.1, 1.0)};
}

TEST(BalanceAwareTest, NameAppendsSuffix) {
  EXPECT_EQ(MakeTimeBased(0.01)->name(), "ASETS-BA");
}

TEST(BalanceAwareTest, DelegatesBeforeFirstActivationPeriod) {
  FakeView view(Workload());
  view.ArriveAll();
  auto policy = MakeTimeBased(0.01);  // period = 100 time units
  policy->Bind(view);
  for (TxnId id = 0; id < 3; ++id) policy->OnReady(id, 0.0);
  // t=50 < 100: inner ASETS decision (all tardy -> shortest = T0).
  EXPECT_EQ(policy->PickNext(50.0), 0u);
  EXPECT_EQ(policy->activation_count(), 0u);
}

TEST(BalanceAwareTest, TimeBasedActivationRunsOldest) {
  FakeView view(Workload());
  view.ArriveAll();
  auto policy = MakeTimeBased(0.01);
  policy->Bind(view);
  for (TxnId id = 0; id < 3; ++id) policy->OnReady(id, 0.0);
  // t=120 >= 100: forced T_old = argmax w/d = T2.
  EXPECT_EQ(policy->PickNext(120.0), 2u);
  EXPECT_EQ(policy->activation_count(), 1u);
  // Immediately after, the activation clock restarted: inner decision.
  EXPECT_EQ(policy->PickNext(121.0), 0u);
  EXPECT_EQ(policy->activation_count(), 1u);
}

TEST(BalanceAwareTest, CountBasedActivationEveryKPoints) {
  FakeView view(Workload());
  view.ArriveAll();
  BalanceAwareOptions options;
  options.mode = ActivationMode::kCountBased;
  options.rate = 0.25;  // every 4 scheduling points
  BalanceAwarePolicy policy(std::make_unique<AsetsPolicy>(), options);
  policy.Bind(view);
  for (TxnId id = 0; id < 3; ++id) policy.OnReady(id, 0.0);

  EXPECT_EQ(policy.PickNext(1.0), 0u);  // point 1
  EXPECT_EQ(policy.PickNext(2.0), 0u);  // point 2
  EXPECT_EQ(policy.PickNext(3.0), 0u);  // point 3
  EXPECT_EQ(policy.PickNext(4.0), 2u);  // point 4: forced T_old
  EXPECT_EQ(policy.activation_count(), 1u);
  EXPECT_EQ(policy.PickNext(5.0), 0u);  // counter restarted
}

TEST(BalanceAwareTest, ActivationWithEmptyReadySetDelegates) {
  FakeView view(Workload());
  auto policy = MakeTimeBased(0.01);
  policy->Bind(view);
  EXPECT_EQ(policy->PickNext(500.0), kInvalidTxn);
  EXPECT_EQ(policy->activation_count(), 0u);
}

TEST(BalanceAwareTest, ForwardsEventsToInner) {
  FakeView view(Workload());
  view.ArriveAll();
  auto policy = MakeTimeBased(0.0001);  // effectively never activates
  policy->Bind(view);
  for (TxnId id = 0; id < 3; ++id) policy->OnReady(id, 0.0);
  view.Finish(0);
  policy->OnCompletion(0, 1.0);
  // Inner SRPT order continues: T1 (r=5) before T2 (r=9).
  EXPECT_EQ(policy->PickNext(1.0), 1u);
}

TEST(BalanceAwareTest, RebindResetsActivationState) {
  FakeView view(Workload());
  view.ArriveAll();
  auto policy = MakeTimeBased(0.01);
  policy->Bind(view);
  for (TxnId id = 0; id < 3; ++id) policy->OnReady(id, 0.0);
  EXPECT_EQ(policy->PickNext(120.0), 2u);
  EXPECT_EQ(policy->activation_count(), 1u);

  policy->Bind(view);
  EXPECT_EQ(policy->activation_count(), 0u);
}

TEST(BalanceAwareDeathTest, RejectsNonPositiveRate) {
  BalanceAwareOptions options;
  options.rate = 0.0;
  EXPECT_DEATH(BalanceAwarePolicy(std::make_unique<AsetsPolicy>(), options),
               "rate must be positive");
}

TEST(BalanceAwareTest, WrapsAnyPolicy) {
  FakeView view(Workload());
  view.ArriveAll();
  BalanceAwareOptions options;
  options.rate = 0.01;
  BalanceAwarePolicy policy(std::make_unique<EdfPolicy>(), options);
  EXPECT_EQ(policy.name(), "EDF-BA");
  policy.Bind(view);
  for (TxnId id = 0; id < 3; ++id) policy.OnReady(id, 0.0);
  EXPECT_EQ(policy.PickNext(1.0), 2u);  // EDF: earliest deadline (T2)
  EXPECT_EQ(policy.activation_count(), 0u);
  EXPECT_EQ(policy.PickNext(200.0), 2u);  // forced T_old happens to be T2
  EXPECT_EQ(policy.activation_count(), 1u);
}

}  // namespace
}  // namespace webtx
