// LazyDeleteHeap must be a drop-in for IndexedPriorityQueue: identical
// API, identical (key, id) pop order among live entries, identical
// observable state after any legal operation sequence. The randomized
// differential below drives both structures through the same op stream —
// push / pop / erase / update / conditional update / bulk load / clear —
// with duplicate keys (exact-double ties) and update storms (the ASETS*
// hot-path pattern the lazy heap exists for), asserting equivalence
// after every step. Also pins the tombstone-compaction sweep: erase-heavy
// streams must keep the internal array bounded and never surface a stale
// entry.

#include "sched/lazy_delete_heap.h"

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sched/indexed_priority_queue.h"

namespace webtx {
namespace {

TEST(LazyDeleteHeapTest, EmptyAfterConstruction) {
  LazyDeleteHeap h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_FALSE(h.Contains(0));
}

TEST(LazyDeleteHeapTest, PushTopPop) {
  LazyDeleteHeap h;
  h.Push(3, 2.0);
  h.Push(1, 1.0);
  h.Push(2, 3.0);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.Top(), 1u);
  EXPECT_EQ(h.TopKey(), 1.0);
  EXPECT_EQ(h.Pop(), 1u);
  EXPECT_EQ(h.Pop(), 3u);
  EXPECT_EQ(h.Pop(), 2u);
  EXPECT_TRUE(h.empty());
}

TEST(LazyDeleteHeapTest, EqualKeysPopInIdOrder) {
  LazyDeleteHeap h;
  h.Push(5, 1.5);
  h.Push(2, 1.5);
  h.Push(9, 1.5);
  h.Push(0, 1.5);
  EXPECT_EQ(h.Pop(), 0u);
  EXPECT_EQ(h.Pop(), 2u);
  EXPECT_EQ(h.Pop(), 5u);
  EXPECT_EQ(h.Pop(), 9u);
}

TEST(LazyDeleteHeapTest, EraseIsObservableImmediately) {
  LazyDeleteHeap h;
  h.Push(1, 1.0);
  h.Push(2, 2.0);
  EXPECT_TRUE(h.Erase(1));
  EXPECT_FALSE(h.Erase(1));  // already gone
  EXPECT_FALSE(h.Contains(1));
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.Top(), 2u);  // the tombstoned former minimum never surfaces
}

TEST(LazyDeleteHeapTest, UpdateRekeysAndReorders) {
  LazyDeleteHeap h;
  h.Push(1, 1.0);
  h.Push(2, 2.0);
  h.Update(2, 0.5);
  EXPECT_EQ(h.KeyOf(2), 0.5);
  EXPECT_EQ(h.Top(), 2u);
  h.Update(2, 5.0);
  EXPECT_EQ(h.Top(), 1u);
  EXPECT_EQ(h.size(), 2u);
}

TEST(LazyDeleteHeapTest, ReinsertAfterPopDoesNotResurrectOldEntry) {
  // The version-stamp contract: a popped id re-pushed with a HIGHER key
  // must not be shadowed by its stale (lower-key) heap entry.
  LazyDeleteHeap h;
  h.Push(1, 1.0);
  h.Push(2, 2.0);
  EXPECT_EQ(h.Pop(), 1u);
  h.Push(1, 10.0);  // same id, new incarnation, worse key
  EXPECT_EQ(h.Top(), 2u);
  EXPECT_EQ(h.Pop(), 2u);
  EXPECT_EQ(h.Pop(), 1u);
  EXPECT_TRUE(h.empty());
}

TEST(LazyDeleteHeapTest, UpdateKeyIfChangedSkipsNoOps) {
  LazyDeleteHeap h;
  h.Push(1, 1.0);
  EXPECT_FALSE(h.UpdateKeyIfChanged(1, 1.0));
  EXPECT_TRUE(h.UpdateKeyIfChanged(1, 2.0));
  EXPECT_EQ(h.KeyOf(1), 2.0);
}

TEST(LazyDeleteHeapTest, BulkLoadMatchesIndividualPushes) {
  std::vector<std::pair<uint32_t, double>> items;
  Rng rng(5);
  for (uint32_t id = 0; id < 300; ++id) {
    items.emplace_back(id, static_cast<double>(rng.NextInRange(0, 40)));
  }
  LazyDeleteHeap bulk;
  bulk.ReserveAndBulkLoad(items, 512);
  IndexedPriorityQueue ref;
  for (const auto& [id, key] : items) ref.Push(id, key);
  while (!ref.empty()) {
    ASSERT_EQ(bulk.size(), ref.size());
    ASSERT_EQ(bulk.TopKey(), ref.TopKey());
    ASSERT_EQ(bulk.Pop(), ref.Pop());
  }
  EXPECT_TRUE(bulk.empty());
}

TEST(LazyDeleteHeapTest, ClearThenReuse) {
  LazyDeleteHeap h;
  h.Push(1, 1.0);
  h.Push(2, 2.0);
  h.Clear();
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.Contains(1));
  // Fresh incarnations after Clear behave normally.
  h.Push(1, 9.0);
  h.Push(3, 4.0);
  EXPECT_EQ(h.Pop(), 3u);
  EXPECT_EQ(h.Pop(), 1u);
}

TEST(LazyDeleteHeapTest, EraseStormCompactsTombstones) {
  // Update each of 64 live ids hundreds of times: without the compaction
  // sweep the internal array would hold ~64 * 400 entries. We can't see
  // the array size directly, but the structure must stay correct AND the
  // final drain must pop each id exactly once with its LAST key.
  LazyDeleteHeap h;
  IndexedPriorityQueue ref;
  Rng rng(17);
  for (uint32_t id = 0; id < 64; ++id) {
    h.Push(id, 1e9);
    ref.Push(id, 1e9);
  }
  for (int storm = 0; storm < 400; ++storm) {
    const uint32_t id = static_cast<uint32_t>(rng.NextInRange(0, 63));
    const double key = static_cast<double>(rng.NextInRange(0, 1000)) * 0.5;
    h.Update(id, key);
    ref.Update(id, key);
  }
  while (!ref.empty()) {
    ASSERT_EQ(h.TopKey(), ref.TopKey());
    ASSERT_EQ(h.Pop(), ref.Pop());
  }
  EXPECT_TRUE(h.empty());
}

/// Op-stream differential: every mutation applied to both structures,
/// full observable state compared continuously.
void RandomizedDifferential(uint64_t seed) {
  Rng rng(seed);
  LazyDeleteHeap lazy;
  IndexedPriorityQueue ref;
  const uint32_t kIdSpace = 128;
  lazy.Reserve(kIdSpace);
  ref.Reserve(kIdSpace);
  const int kOps = 30000;
  for (int op = 0; op < kOps; ++op) {
    const uint32_t id = static_cast<uint32_t>(rng.NextInRange(0, kIdSpace - 1));
    // Coarse key grid → frequent exact-double ties.
    const double key = static_cast<double>(rng.NextInRange(0, 30)) * 0.25;
    switch (rng.NextInRange(0, 6)) {
      case 0:  // Push a fresh id
        if (!ref.Contains(id)) {
          lazy.Push(id, key);
          ref.Push(id, key);
        }
        break;
      case 1:  // Pop
        if (!ref.empty()) {
          ASSERT_EQ(lazy.TopKey(), ref.TopKey()) << "seed " << seed;
          ASSERT_EQ(lazy.Pop(), ref.Pop()) << "seed " << seed;
        }
        break;
      case 2:  // Erase (possibly absent)
        ASSERT_EQ(lazy.Erase(id), ref.Erase(id)) << "seed " << seed;
        break;
      case 3:  // Update
        if (ref.Contains(id)) {
          lazy.Update(id, key);
          ref.Update(id, key);
        }
        break;
      case 4:  // Conditional update
        if (ref.Contains(id)) {
          ASSERT_EQ(lazy.UpdateKeyIfChanged(id, key),
                    ref.UpdateKeyIfChanged(id, key))
              << "seed " << seed;
        }
        break;
      case 5:  // PushOrUpdate
        lazy.PushOrUpdate(id, key);
        ref.PushOrUpdate(id, key);
        break;
      case 6:  // Top probe (no mutation)
        if (!ref.empty()) {
          ASSERT_EQ(lazy.Top(), ref.Top()) << "seed " << seed;
          ASSERT_EQ(lazy.TopKey(), ref.TopKey()) << "seed " << seed;
        }
        break;
    }
    ASSERT_EQ(lazy.size(), ref.size()) << "seed " << seed << " op " << op;
    ASSERT_EQ(lazy.empty(), ref.empty());
    ASSERT_EQ(lazy.Contains(id), ref.Contains(id));
    if (ref.Contains(id)) {
      ASSERT_EQ(lazy.KeyOf(id), ref.KeyOf(id)) << "seed " << seed;
    }
  }
  // Full drain: the ultimate pop-order check.
  while (!ref.empty()) {
    ASSERT_EQ(lazy.TopKey(), ref.TopKey()) << "seed " << seed;
    ASSERT_EQ(lazy.Pop(), ref.Pop()) << "seed " << seed;
  }
  EXPECT_TRUE(lazy.empty());
}

TEST(LazyDeleteHeapFuzzTest, MatchesIndexedPriorityQueue) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    RandomizedDifferential(seed);
  }
}

TEST(LazyDeleteHeapFuzzTest, BulkLoadThenOpStream) {
  // Start from a bulk-loaded population instead of empty — exercises
  // Floyd heapify interacting with later tombstoning.
  for (uint64_t seed = 50; seed <= 54; ++seed) {
    Rng rng(seed);
    std::vector<std::pair<uint32_t, double>> items;
    for (uint32_t id = 0; id < 200; ++id) {
      if (rng.NextInRange(0, 2) > 0) {
        items.emplace_back(id, static_cast<double>(rng.NextInRange(0, 25)));
      }
    }
    LazyDeleteHeap lazy;
    lazy.ReserveAndBulkLoad(items, 256);
    IndexedPriorityQueue ref;
    ref.ReserveAndBulkLoad(items, 256);
    for (int op = 0; op < 5000; ++op) {
      const uint32_t id = static_cast<uint32_t>(rng.NextInRange(0, 255));
      const double key = static_cast<double>(rng.NextInRange(0, 25));
      switch (rng.NextInRange(0, 3)) {
        case 0:
          ASSERT_EQ(lazy.Erase(id), ref.Erase(id));
          break;
        case 1:
          lazy.PushOrUpdate(id, key);
          ref.PushOrUpdate(id, key);
          break;
        case 2:
          if (!ref.empty()) {
            ASSERT_EQ(lazy.Pop(), ref.Pop());
          }
          break;
        case 3:
          if (ref.Contains(id)) {
            ASSERT_EQ(lazy.UpdateKeyIfChanged(id, key),
                      ref.UpdateKeyIfChanged(id, key));
          }
          break;
      }
      ASSERT_EQ(lazy.size(), ref.size());
    }
    while (!ref.empty()) {
      ASSERT_EQ(lazy.Pop(), ref.Pop()) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace webtx
