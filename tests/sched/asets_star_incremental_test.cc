// Differential proof that the incremental-head production ASETS*
// (src/sched/policies/asets_star.cc) schedules BYTE-IDENTICALLY to the
// pre-optimization full-rescan implementation it replaced
// (testing/asets_star_reference.h): identical ScheduleSegment streams —
// every (txn, server, start, end, attempt) tuple — across seeds,
// workflow topologies, fault plans, head-selection rules, and server
// counts. Any cached head or representative going stale (the outage /
// abort paths charge work without a policy callback) shows up here as a
// diverging segment.

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "sched/policies/asets_star.h"
#include "sim/fault_plan.h"
#include "sim/simulator.h"
#include "testing/asets_star_reference.h"
#include "workload/generator.h"

namespace webtx {
namespace {

struct Topology {
  const char* label;
  uint64_t max_weight;
  size_t max_workflow_length;
  size_t max_workflows_per_txn;
  double burstiness;
};

// Table I-style shapes: unconstrained transactions, weighted chains,
// overlapping workflows, and bursty weighted dependencies.
constexpr Topology kTopologies[] = {
    {"independent", 1, 1, 1, 0.0},
    {"workflows", 1, 6, 1, 0.0},
    {"weighted_overlapping", 10, 5, 3, 0.0},
    {"bursty_weighted", 10, 4, 2, 0.6},
};

FaultPlan StressFaultPlan() {
  FaultPlanConfig config;
  config.outage_rate = 0.03;
  config.mean_outage_duration = 4.0;
  config.abort_rate = 0.03;
  config.seed = 9;
  auto plan = FaultPlan::Create(config);
  WEBTX_CHECK(plan.ok());
  return plan.ValueOrDie();
}

std::vector<TransactionSpec> MakeWorkload(const Topology& topology,
                                          uint64_t seed,
                                          double utilization) {
  WorkloadSpec spec;
  spec.num_transactions = 250;
  spec.utilization = utilization;
  spec.max_weight = topology.max_weight;
  spec.max_workflow_length = topology.max_workflow_length;
  spec.max_workflows_per_txn = topology.max_workflows_per_txn;
  spec.burstiness = topology.burstiness;
  auto generator = WorkloadGenerator::Create(spec);
  EXPECT_TRUE(generator.ok());
  return generator.ValueOrDie().Generate(seed);
}

SimOptions MakeOptions(bool faulty, size_t num_servers) {
  SimOptions options;
  options.record_schedule = true;
  options.num_servers = num_servers;
  if (faulty) {
    options.fault_plan = StressFaultPlan();
    options.retry.max_attempts = 3;
    options.retry.backoff = 1.0;
  }
  return options;
}

/// Runs the workload under both implementations and asserts identical
/// schedule streams and outcomes.
void ExpectIdenticalSchedules(const std::vector<TransactionSpec>& txns,
                              const SimOptions& options,
                              const AsetsStarOptions& policy_options) {
  auto sim = Simulator::Create(txns, options);
  ASSERT_TRUE(sim.ok()) << sim.status();
  AsetsStarPolicy incremental(policy_options);
  testing::ReferenceAsetsStarPolicy reference(policy_options);
  const RunResult a = sim.ValueOrDie().Run(incremental);
  const RunResult b = sim.ValueOrDie().Run(reference);

  ASSERT_EQ(a.schedule.size(), b.schedule.size());
  for (size_t i = 0; i < a.schedule.size(); ++i) {
    const ScheduleSegment& sa = a.schedule[i];
    const ScheduleSegment& sb = b.schedule[i];
    ASSERT_EQ(sa.txn, sb.txn) << "segment " << i << " diverged";
    ASSERT_EQ(sa.server, sb.server) << "segment " << i << " diverged";
    ASSERT_EQ(sa.start, sb.start) << "segment " << i << " diverged";
    ASSERT_EQ(sa.end, sb.end) << "segment " << i << " diverged";
    ASSERT_EQ(sa.attempt, sb.attempt) << "segment " << i << " diverged";
  }
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    ASSERT_EQ(a.outcomes[i].finish, b.outcomes[i].finish)
        << "T" << i << " diverged";
    ASSERT_EQ(a.outcomes[i].fate, b.outcomes[i].fate) << "T" << i;
  }
  EXPECT_EQ(a.num_preemptions, b.num_preemptions);
  EXPECT_EQ(a.num_scheduling_points, b.num_scheduling_points);
}

// ---------------------------------------------------------------------------
// Main matrix: 20 seeds x {failure-free, faulty} x topologies, default
// head rule, single server, overload utilization.

using MatrixParam = std::tuple<size_t, bool, uint64_t>;  // topology, faulty, seed

class IncrementalMatrixTest : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(IncrementalMatrixTest, ScheduleByteIdenticalToReference) {
  const auto& [topology_index, faulty, seed] = GetParam();
  const auto txns =
      MakeWorkload(kTopologies[topology_index], seed, /*utilization=*/0.9);
  ExpectIdenticalSchedules(txns, MakeOptions(faulty, /*num_servers=*/1),
                           AsetsStarOptions{});
}

std::string MatrixName(
    const ::testing::TestParamInfo<MatrixParam>& info) {
  const auto& [topology_index, faulty, seed] = info.param;
  return std::string(kTopologies[topology_index].label) +
         (faulty ? "_faulty_s" : "_clean_s") + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, IncrementalMatrixTest,
    ::testing::Combine(::testing::Range<size_t>(0, 4), ::testing::Bool(),
                       ::testing::Range<uint64_t>(1, 21)),
    MatrixName);

// ---------------------------------------------------------------------------
// Head-selection rules: every rule must agree with the reference under
// the same rule (the head cache is maintained differently per rule).

using RuleParam = std::tuple<HeadSelectionRule, bool, uint64_t>;

class IncrementalHeadRuleTest : public ::testing::TestWithParam<RuleParam> {};

TEST_P(IncrementalHeadRuleTest, ScheduleByteIdenticalToReference) {
  const auto& [rule, faulty, seed] = GetParam();
  AsetsStarOptions policy_options;
  policy_options.head_rule = rule;
  const auto txns =
      MakeWorkload(kTopologies[2], seed, /*utilization=*/0.8);
  ExpectIdenticalSchedules(txns, MakeOptions(faulty, /*num_servers=*/1),
                           policy_options);
}

std::string RuleName(const ::testing::TestParamInfo<RuleParam>& info) {
  const auto& [rule, faulty, seed] = info.param;
  const char* rule_name =
      rule == HeadSelectionRule::kEarliestDeadline   ? "edf"
      : rule == HeadSelectionRule::kShortestRemaining ? "srpt"
                                                      : "fifo";
  return std::string(rule_name) + (faulty ? "_faulty_s" : "_clean_s") +
         std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Rules, IncrementalHeadRuleTest,
    ::testing::Combine(
        ::testing::Values(HeadSelectionRule::kEarliestDeadline,
                          HeadSelectionRule::kShortestRemaining,
                          HeadSelectionRule::kFifoArrival),
        ::testing::Bool(), ::testing::Range<uint64_t>(1, 6)),
    RuleName);

// ---------------------------------------------------------------------------
// Multi-server: PickNextExcluding must re-derive heads under the
// exclusion set exactly as the reference's rescan does.

using ServerParam = std::tuple<bool, uint64_t>;

class IncrementalMultiServerTest
    : public ::testing::TestWithParam<ServerParam> {};

TEST_P(IncrementalMultiServerTest, ScheduleByteIdenticalToReference) {
  const auto& [faulty, seed] = GetParam();
  const auto txns = MakeWorkload(kTopologies[2], seed, /*utilization=*/1.6);
  ExpectIdenticalSchedules(txns, MakeOptions(faulty, /*num_servers=*/3),
                           AsetsStarOptions{});
}

std::string ServerName(const ::testing::TestParamInfo<ServerParam>& info) {
  const auto& [faulty, seed] = info.param;
  return std::string(faulty ? "faulty_s" : "clean_s") + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(Servers, IncrementalMultiServerTest,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Range<uint64_t>(1, 6)),
                         ServerName);

// ---------------------------------------------------------------------------
// Unclamped impact rule rides the same caches; spot-check it too.

TEST(IncrementalOptionsTest, UnclampedImpactMatchesReference) {
  AsetsStarOptions policy_options;
  policy_options.impact.clamp_slack = false;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const auto txns = MakeWorkload(kTopologies[2], seed, 0.9);
    ExpectIdenticalSchedules(txns, MakeOptions(true, 1), policy_options);
  }
}

// ---------------------------------------------------------------------------
// Dirty-set batching: the deferred-flush path only differs from the
// immediate-touch reference when a single instant delivers MANY
// callbacks to one workflow before the next scheduling round — exactly
// what correlated crash instants (migration re-enqueues a batch of
// running members), abort victims plus retry re-arrivals, and admission
// deferrals produce. This regime makes those bursts dense and asserts
// the coalesced flush still reproduces the reference byte-for-byte.

TEST(DirtyBatchingTest, CrashBurstsMatchReference) {
  FaultPlanConfig config;
  config.outage_rate = 0.02;
  config.mean_outage_duration = 3.0;
  config.abort_rate = 0.05;
  config.crash_rate = 0.03;
  config.mean_repair_duration = 5.0;
  config.correlated_crash_prob = 0.5;  // multi-server crash instants
  config.migration = MigrationPolicy::kWarm;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    config.seed = 100 + seed;
    auto plan = FaultPlan::Create(config);
    ASSERT_TRUE(plan.ok()) << plan.status();
    SimOptions options;
    options.record_schedule = true;
    options.num_servers = 4;
    options.fault_plan = plan.ValueOrDie();
    options.retry.max_attempts = 4;
    options.retry.backoff = 0.5;
    const auto txns =
        MakeWorkload(kTopologies[3], seed, /*utilization=*/1.8);
    ExpectIdenticalSchedules(txns, options, AsetsStarOptions{});
  }
}

}  // namespace
}  // namespace webtx
