#include "sched/policies/asets.h"

#include <gtest/gtest.h>

#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::FakeView;
using testing::Txn;

TEST(AsetsTest, ListPlacementFollowsDefinitions6And7) {
  // At t=0: T0 can meet its deadline (r=5 <= d=10), T1 cannot (r=5 > d=3).
  FakeView view({Txn(0, 0, 5, 10), Txn(1, 0, 5, 3)});
  view.ArriveAll();
  AsetsPolicy policy;
  policy.Bind(view);
  policy.OnReady(0, 0.0);
  policy.OnReady(1, 0.0);
  EXPECT_EQ(policy.edf_list_size(), 1u);
  EXPECT_EQ(policy.hdf_list_size(), 1u);
}

TEST(AsetsTest, PaperExample2SrptTopWins) {
  // Example 2 (Fig. 4): T_SRPT: r=3, d=3-eps (already tardy);
  // T_EDF: r=5, d=7, slack=2.
  // impact(EDF first) = r_EDF = 5; impact(SRPT first) = 3 - 2 = 1.
  FakeView view({Txn(0, 0, 5, 7), Txn(1, 0, 3, 2.999)});
  view.ArriveAll();
  AsetsPolicy policy;
  policy.Bind(view);
  policy.OnReady(0, 0.0);
  policy.OnReady(1, 0.0);
  EXPECT_EQ(policy.PickNext(0.0), 1u);  // T_SRPT runs first
}

TEST(AsetsTest, PaperExample3EdfTopWins) {
  // Example 3 (Fig. 5): same as Example 2 but s_EDF = 0: T_EDF r=5, d=5.
  // impact(EDF first) = 5; impact(SRPT first) = 3 - 0 = 3 ... SRPT would
  // still win with those numbers; the figure's point is the EDF top wins
  // when it cannot absorb the delay. Use the figure's spirit with a short
  // EDF top: T_EDF r=2, d=2 (slack 0); T_SRPT r=3 tardy.
  // impact(EDF first) = 2; impact(SRPT first) = 3 - 0 = 3 -> EDF wins.
  FakeView view({Txn(0, 0, 2, 2), Txn(1, 0, 3, 1)});
  view.ArriveAll();
  AsetsPolicy policy;
  policy.Bind(view);
  policy.OnReady(0, 0.0);
  policy.OnReady(1, 0.0);
  EXPECT_EQ(policy.PickNext(0.0), 0u);  // T_EDF runs first
}

TEST(AsetsTest, EquationOneBoundary) {
  // Eq. (1): run EDF top iff r_EDF < r_SRPT - s_EDF. Boundary: equality
  // runs the SRPT side (strict <, per Fig. 7).
  // T_EDF: r=2, d=6 at t=0 -> slack 4. T_SRPT: r=6, d=1 (tardy).
  // r_EDF = 2, r_SRPT - s_EDF = 6 - 4 = 2 -> tie -> SRPT.
  FakeView view({Txn(0, 0, 2, 6), Txn(1, 0, 6, 1)});
  view.ArriveAll();
  AsetsPolicy ties_hdf;
  ties_hdf.Bind(view);
  ties_hdf.OnReady(0, 0.0);
  ties_hdf.OnReady(1, 0.0);
  EXPECT_EQ(ties_hdf.PickNext(0.0), 1u);

  AsetsOptions options;
  options.ties_to_edf = true;
  AsetsPolicy ties_edf(options);
  ties_edf.Bind(view);
  ties_edf.OnReady(0, 0.0);
  ties_edf.OnReady(1, 0.0);
  EXPECT_EQ(ties_edf.PickNext(0.0), 0u);
}

TEST(AsetsTest, AllMeetingDeadlinesBehavesLikeEdf) {
  // Loose deadlines: everything in the EDF-List; earliest deadline first.
  FakeView view({Txn(0, 0, 2, 100), Txn(1, 0, 2, 50), Txn(2, 0, 2, 75)});
  view.ArriveAll();
  AsetsPolicy policy;
  policy.Bind(view);
  for (TxnId id = 0; id < 3; ++id) policy.OnReady(id, 0.0);
  EXPECT_EQ(policy.edf_list_size(), 3u);
  EXPECT_EQ(policy.PickNext(0.0), 1u);
}

TEST(AsetsTest, AllTardyBehavesLikeSrpt) {
  // Impossible deadlines: everything in the SRPT-List; shortest first.
  FakeView view({Txn(0, 0, 9, 1), Txn(1, 0, 4, 1), Txn(2, 0, 6, 1)});
  view.ArriveAll();
  AsetsPolicy policy;
  policy.Bind(view);
  for (TxnId id = 0; id < 3; ++id) policy.OnReady(id, 0.0);
  EXPECT_EQ(policy.hdf_list_size(), 3u);
  EXPECT_EQ(policy.PickNext(0.0), 1u);
}

TEST(AsetsTest, MigratesFromEdfToSrptListWhenDeadlineSlips) {
  // T0 can meet its deadline at t=0 but not at t=6.
  FakeView view({Txn(0, 0, 5, 10)});
  view.ArriveAll();
  AsetsPolicy policy;
  policy.Bind(view);
  policy.OnReady(0, 0.0);
  EXPECT_EQ(policy.edf_list_size(), 1u);
  EXPECT_EQ(policy.PickNext(6.0), 0u);
  EXPECT_EQ(policy.edf_list_size(), 0u);
  EXPECT_EQ(policy.hdf_list_size(), 1u);
}

TEST(AsetsTest, NoMigrationAtExactCriticalTime) {
  // At t = d - r the transaction can exactly meet its deadline
  // (Definition 6 is inclusive) and must stay in the EDF-List.
  FakeView view({Txn(0, 0, 5, 10)});
  view.ArriveAll();
  AsetsPolicy policy;
  policy.Bind(view);
  policy.OnReady(0, 0.0);
  EXPECT_EQ(policy.PickNext(5.0), 0u);
  EXPECT_EQ(policy.edf_list_size(), 1u);
}

TEST(AsetsTest, WeightedDecisionUsesHdfDensityAndImpactScaling) {
  // Two tardy transactions with different weights: highest density first.
  // T0: r=4, w=4 (density 1). T1: r=2, w=1 (density 0.5).
  FakeView view({Txn(0, 0, 4, 1, 4.0), Txn(1, 0, 2, 1, 1.0)});
  view.ArriveAll();
  AsetsPolicy policy;
  policy.Bind(view);
  policy.OnReady(0, 0.0);
  policy.OnReady(1, 0.0);
  EXPECT_EQ(policy.PickNext(0.0), 0u);
}

TEST(AsetsTest, WeightScalesImpactAcrossLists) {
  // EDF top is cheap but the HDF top carries a huge weight: per Fig. 7,
  // impact(EDF) = r_EDF * w_HDF = 3 * 10 = 30;
  // impact(HDF) = (r_HDF - s_EDF) * w_EDF = (4 - 3) * 1 = 1 -> run HDF.
  FakeView view({Txn(0, 0, 3, 6, 1.0), Txn(1, 0, 4, 1, 10.0)});
  view.ArriveAll();
  AsetsPolicy policy;
  policy.Bind(view);
  policy.OnReady(0, 0.0);
  policy.OnReady(1, 0.0);
  EXPECT_EQ(policy.PickNext(0.0), 1u);
}

TEST(AsetsTest, CompletionRemovesFromEitherList) {
  FakeView view({Txn(0, 0, 5, 100), Txn(1, 0, 5, 1)});
  view.ArriveAll();
  AsetsPolicy policy;
  policy.Bind(view);
  policy.OnReady(0, 0.0);
  policy.OnReady(1, 0.0);
  view.Finish(0);
  policy.OnCompletion(0, 5.0);
  EXPECT_EQ(policy.edf_list_size(), 0u);
  view.Finish(1);
  policy.OnCompletion(1, 10.0);
  EXPECT_EQ(policy.hdf_list_size(), 0u);
  EXPECT_EQ(policy.PickNext(10.0), kInvalidTxn);
}

TEST(AsetsTest, RemainingUpdateKeepsHdfOrderFresh) {
  FakeView view({Txn(0, 0, 5, 1), Txn(1, 0, 4, 1)});
  view.ArriveAll();
  AsetsPolicy policy;
  policy.Bind(view);
  policy.OnReady(0, 0.0);
  policy.OnReady(1, 0.0);
  EXPECT_EQ(policy.PickNext(0.0), 1u);
  // T0 ran for a while elsewhere (forced), now shorter than T1.
  view.SetRemaining(0, 1.0);
  policy.OnRemainingUpdated(0, 3.0);
  EXPECT_EQ(policy.PickNext(3.0), 0u);
}

TEST(AsetsTest, ReadyPolicyIsNamedReady) {
  ReadyPolicy policy;
  EXPECT_EQ(policy.name(), "Ready");
  AsetsPolicy base;
  EXPECT_EQ(base.name(), "ASETS");
}

}  // namespace
}  // namespace webtx
