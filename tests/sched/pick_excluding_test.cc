// Direct unit coverage of the multi-server PickNextExcluding hook: the
// policies must return their best admissible candidate and leave their
// internal queues exactly as they were.

#include <gtest/gtest.h>

#include "sched/policies/asets.h"
#include "sched/policies/asets_star.h"
#include "sched/policies/single_queue_policies.h"
#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::FakeView;
using testing::Txn;

TEST(PickExcludingTest, SingleQueueSkipsExcludedTops) {
  FakeView view({Txn(0, 0, 2, 10), Txn(1, 0, 2, 20), Txn(2, 0, 2, 30)});
  view.ArriveAll();
  EdfPolicy policy;
  policy.Bind(view);
  for (TxnId id = 0; id < 3; ++id) policy.OnReady(id, 0.0);

  EXPECT_EQ(policy.PickNextExcluding(0.0, {}), 0u);
  EXPECT_EQ(policy.PickNextExcluding(0.0, {0}), 1u);
  EXPECT_EQ(policy.PickNextExcluding(0.0, {0, 1}), 2u);
  EXPECT_EQ(policy.PickNextExcluding(0.0, {0, 1, 2}), kInvalidTxn);
  // Queue restored: the unexcluded pick is unchanged and sized right.
  EXPECT_EQ(policy.PickNext(0.0), 0u);
  EXPECT_EQ(policy.queue_size(), 3u);
}

TEST(PickExcludingTest, AsetsSkipsAcrossBothLists) {
  // T0 meets its deadline (EDF-List); T1 and T2 are tardy (HDF-List).
  FakeView view({Txn(0, 0, 2, 30), Txn(1, 0, 3, 1), Txn(2, 0, 5, 1)});
  view.ArriveAll();
  AsetsPolicy policy;
  policy.Bind(view);
  for (TxnId id = 0; id < 3; ++id) policy.OnReady(id, 0.0);
  const size_t edf_before = policy.edf_list_size();
  const size_t hdf_before = policy.hdf_list_size();

  const TxnId first = policy.PickNext(0.0);
  const TxnId second = policy.PickNextExcluding(0.0, {first});
  const TxnId third = policy.PickNextExcluding(0.0, {first, second});
  EXPECT_NE(first, second);
  EXPECT_NE(second, third);
  EXPECT_NE(first, third);
  EXPECT_EQ(policy.PickNextExcluding(0.0, {first, second, third}),
            kInvalidTxn);
  // Lists restored.
  EXPECT_EQ(policy.edf_list_size(), edf_before);
  EXPECT_EQ(policy.hdf_list_size(), hdf_before);
  EXPECT_EQ(policy.PickNext(0.0), first);
}

TEST(PickExcludingTest, AsetsStarFallsBackToNextReadyMember) {
  // Diamond: T0 and T1 both ready in the workflow rooted at T2. With the
  // preferred head excluded, the other ready member must be offered.
  FakeView view({Txn(0, 0, 4, 10), Txn(1, 0, 4, 20),
                 Txn(2, 0, 2, 30, 1.0, {0, 1})});
  view.ArriveAll();
  AsetsStarPolicy policy;
  policy.Bind(view);
  for (TxnId id = 0; id < 3; ++id) {
    policy.OnArrival(id, 0.0);
    if (view.IsReady(id)) policy.OnReady(id, 0.0);
  }
  EXPECT_EQ(policy.PickNext(0.0), 0u);  // earliest-deadline head
  EXPECT_EQ(policy.PickNextExcluding(0.0, {0}), 1u);
  EXPECT_EQ(policy.PickNextExcluding(0.0, {0, 1}), kInvalidTxn);
  // State restored: the preferred head is back.
  EXPECT_EQ(policy.PickNext(0.0), 0u);
  EXPECT_EQ(policy.SnapshotOf(0).head, 0u);
}

TEST(PickExcludingTest, AsetsStarPrefersOtherWorkflowOverWorseMember) {
  // Two workflows; excluding the top workflow's head should offer the
  // *other workflow's* head when it beats the top workflow's remaining
  // ready members — here each workflow has one ready member, so the
  // second pick must come from the other workflow.
  FakeView view({Txn(0, 0, 3, 10), Txn(1, 0, 3, 20)});
  view.ArriveAll();
  AsetsStarPolicy policy;
  policy.Bind(view);
  for (TxnId id = 0; id < 2; ++id) {
    policy.OnArrival(id, 0.0);
    policy.OnReady(id, 0.0);
  }
  EXPECT_EQ(policy.PickNext(0.0), 0u);
  EXPECT_EQ(policy.PickNextExcluding(0.0, {0}), 1u);
}

// The batched round must equal the greedy PickNextExcluding chain pick
// for pick — the byte-identity contract the simulator's multi-server
// path leans on (sched/scheduler_policy.h).
TEST(PickBatchTest, SingleQueueBatchMatchesGreedyChainEveryK) {
  // Duplicate keys force the (key, id) tiebreak through both paths.
  FakeView view({Txn(0, 0, 2, 20), Txn(1, 0, 2, 10), Txn(2, 0, 2, 10),
                 Txn(3, 0, 2, 30), Txn(4, 0, 2, 20), Txn(5, 0, 2, 5)});
  view.ArriveAll();
  for (size_t k = 0; k <= 8; ++k) {
    EdfPolicy policy;
    policy.Bind(view);
    for (TxnId id = 0; id < 6; ++id) policy.OnReady(id, 0.0);

    std::vector<TxnId> greedy;
    for (size_t slot = 0; slot < k; ++slot) {
      const TxnId pick = policy.PickNextExcluding(0.0, greedy);
      if (pick == kInvalidTxn) break;
      greedy.push_back(pick);
    }
    std::vector<TxnId> batch;
    policy.PickBatch(0.0, k, batch);
    EXPECT_EQ(batch, greedy) << "k=" << k;
    // Queues restored bit for bit: the next round starts from scratch.
    EXPECT_EQ(policy.queue_size(), 6u);
    EXPECT_EQ(policy.PickNext(0.0), 5u);
  }
}

TEST(PickBatchTest, ShardedSingleQueueBatchMatchesGreedyChain) {
  FakeView view({Txn(0, 0, 2, 20), Txn(1, 0, 2, 10), Txn(2, 0, 2, 10),
                 Txn(3, 0, 2, 30), Txn(4, 0, 2, 20), Txn(5, 0, 2, 5)});
  view.ArriveAll();
  const auto make = [&view](SrptPolicy& policy) {
    policy.EnableSharded();
    policy.Bind(view);
    policy.BindShards(3);
    for (TxnId id = 0; id < 6; ++id) policy.OnReady(id, 0.0);
  };
  SrptPolicy greedy_policy;
  make(greedy_policy);
  SrptPolicy batch_policy;
  make(batch_policy);
  for (size_t k = 1; k <= 6; ++k) {
    std::vector<TxnId> greedy;
    for (size_t slot = 0; slot < k; ++slot) {
      const TxnId pick = greedy_policy.PickNextExcluding(0.0, greedy);
      if (pick == kInvalidTxn) break;
      greedy.push_back(pick);
    }
    std::vector<TxnId> batch;
    batch_policy.PickBatch(0.0, k, batch);
    EXPECT_EQ(batch, greedy) << "k=" << k;
  }
}

TEST(PickBatchTest, AsetsBatchMatchesGreedyChainAcrossBothLists) {
  // T0 meets its deadline (EDF-List); T1 and T2 are tardy (HDF-List),
  // so the batch's two-pointer walk must interleave the lists exactly
  // as the erase/re-push chain does.
  FakeView view({Txn(0, 0, 2, 30), Txn(1, 0, 3, 1), Txn(2, 0, 5, 1)});
  view.ArriveAll();
  AsetsPolicy policy;
  policy.Bind(view);
  for (TxnId id = 0; id < 3; ++id) policy.OnReady(id, 0.0);
  const size_t edf_before = policy.edf_list_size();
  const size_t hdf_before = policy.hdf_list_size();
  std::vector<TxnId> expected;
  for (size_t slot = 0; slot < 3; ++slot) {
    expected.push_back(policy.PickNextExcluding(0.0, expected));
  }
  std::vector<TxnId> batch;
  policy.PickBatch(0.0, 4, batch);  // k past the ready count stops early
  EXPECT_EQ(batch, expected);
  // The read-only walk left both lists untouched.
  EXPECT_EQ(policy.edf_list_size(), edf_before);
  EXPECT_EQ(policy.hdf_list_size(), hdf_before);
}

TEST(PickBatchTest, DefaultBatchDrivesOverriddenPickNextExcluding) {
  // Policies without a PickBatch override (ASETS* here) run the greedy
  // chain literally — the default is the chain, call by call.
  FakeView view({Txn(0, 0, 4, 10), Txn(1, 0, 4, 20),
                 Txn(2, 0, 2, 30, 1.0, {0, 1})});
  view.ArriveAll();
  AsetsStarPolicy policy;
  policy.Bind(view);
  for (TxnId id = 0; id < 3; ++id) {
    policy.OnArrival(id, 0.0);
    if (view.IsReady(id)) policy.OnReady(id, 0.0);
  }
  std::vector<TxnId> expected;
  for (size_t slot = 0; slot < 3; ++slot) {
    const TxnId pick = policy.PickNextExcluding(0.0, expected);
    if (pick == kInvalidTxn) break;
    expected.push_back(pick);
  }
  std::vector<TxnId> batch;
  policy.PickBatch(0.0, 3, batch);
  EXPECT_EQ(batch, expected);
}

TEST(PickBatchTest, RemainingUpdateInterestMatchesKeySensitivity) {
  // FCFS/EDF/HVF keys ignore remaining time, so the simulator may skip
  // their OnRemainingUpdated calls; SRPT/LS/HDF need them.
  EXPECT_FALSE(FcfsPolicy().WantsRemainingUpdates());
  EXPECT_FALSE(EdfPolicy().WantsRemainingUpdates());
  EXPECT_FALSE(HvfPolicy().WantsRemainingUpdates());
  EXPECT_TRUE(SrptPolicy().WantsRemainingUpdates());
  EXPECT_TRUE(LsPolicy().WantsRemainingUpdates());
  EXPECT_TRUE(HdfPolicy().WantsRemainingUpdates());
  EXPECT_TRUE(AsetsPolicy().WantsRemainingUpdates());
}

TEST(PickExcludingDeathTest, BaseImplementationRejectsExclusion) {
  // A policy that does not override the hook only supports k = 1.
  class MinimalPolicy final : public SchedulerPolicy {
   public:
    std::string name() const override { return "Minimal"; }
    void OnReady(TxnId, SimTime) override {}
    void OnCompletion(TxnId, SimTime) override {}
    TxnId PickNext(SimTime) override { return kInvalidTxn; }

   protected:
    void Reset() override {}
  };
  FakeView view({Txn(0, 0, 1, 10)});
  view.ArriveAll();
  MinimalPolicy policy;
  policy.Bind(view);
  EXPECT_EQ(policy.PickNextExcluding(0.0, {}), kInvalidTxn);
  EXPECT_DEATH((void)policy.PickNextExcluding(0.0, {0}),
               "does not support multi-server");
}

}  // namespace
}  // namespace webtx
