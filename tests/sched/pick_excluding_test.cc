// Direct unit coverage of the multi-server PickNextExcluding hook: the
// policies must return their best admissible candidate and leave their
// internal queues exactly as they were.

#include <gtest/gtest.h>

#include "sched/policies/asets.h"
#include "sched/policies/asets_star.h"
#include "sched/policies/single_queue_policies.h"
#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::FakeView;
using testing::Txn;

TEST(PickExcludingTest, SingleQueueSkipsExcludedTops) {
  FakeView view({Txn(0, 0, 2, 10), Txn(1, 0, 2, 20), Txn(2, 0, 2, 30)});
  view.ArriveAll();
  EdfPolicy policy;
  policy.Bind(view);
  for (TxnId id = 0; id < 3; ++id) policy.OnReady(id, 0.0);

  EXPECT_EQ(policy.PickNextExcluding(0.0, {}), 0u);
  EXPECT_EQ(policy.PickNextExcluding(0.0, {0}), 1u);
  EXPECT_EQ(policy.PickNextExcluding(0.0, {0, 1}), 2u);
  EXPECT_EQ(policy.PickNextExcluding(0.0, {0, 1, 2}), kInvalidTxn);
  // Queue restored: the unexcluded pick is unchanged and sized right.
  EXPECT_EQ(policy.PickNext(0.0), 0u);
  EXPECT_EQ(policy.queue_size(), 3u);
}

TEST(PickExcludingTest, AsetsSkipsAcrossBothLists) {
  // T0 meets its deadline (EDF-List); T1 and T2 are tardy (HDF-List).
  FakeView view({Txn(0, 0, 2, 30), Txn(1, 0, 3, 1), Txn(2, 0, 5, 1)});
  view.ArriveAll();
  AsetsPolicy policy;
  policy.Bind(view);
  for (TxnId id = 0; id < 3; ++id) policy.OnReady(id, 0.0);
  const size_t edf_before = policy.edf_list_size();
  const size_t hdf_before = policy.hdf_list_size();

  const TxnId first = policy.PickNext(0.0);
  const TxnId second = policy.PickNextExcluding(0.0, {first});
  const TxnId third = policy.PickNextExcluding(0.0, {first, second});
  EXPECT_NE(first, second);
  EXPECT_NE(second, third);
  EXPECT_NE(first, third);
  EXPECT_EQ(policy.PickNextExcluding(0.0, {first, second, third}),
            kInvalidTxn);
  // Lists restored.
  EXPECT_EQ(policy.edf_list_size(), edf_before);
  EXPECT_EQ(policy.hdf_list_size(), hdf_before);
  EXPECT_EQ(policy.PickNext(0.0), first);
}

TEST(PickExcludingTest, AsetsStarFallsBackToNextReadyMember) {
  // Diamond: T0 and T1 both ready in the workflow rooted at T2. With the
  // preferred head excluded, the other ready member must be offered.
  FakeView view({Txn(0, 0, 4, 10), Txn(1, 0, 4, 20),
                 Txn(2, 0, 2, 30, 1.0, {0, 1})});
  view.ArriveAll();
  AsetsStarPolicy policy;
  policy.Bind(view);
  for (TxnId id = 0; id < 3; ++id) {
    policy.OnArrival(id, 0.0);
    if (view.IsReady(id)) policy.OnReady(id, 0.0);
  }
  EXPECT_EQ(policy.PickNext(0.0), 0u);  // earliest-deadline head
  EXPECT_EQ(policy.PickNextExcluding(0.0, {0}), 1u);
  EXPECT_EQ(policy.PickNextExcluding(0.0, {0, 1}), kInvalidTxn);
  // State restored: the preferred head is back.
  EXPECT_EQ(policy.PickNext(0.0), 0u);
  EXPECT_EQ(policy.SnapshotOf(0).head, 0u);
}

TEST(PickExcludingTest, AsetsStarPrefersOtherWorkflowOverWorseMember) {
  // Two workflows; excluding the top workflow's head should offer the
  // *other workflow's* head when it beats the top workflow's remaining
  // ready members — here each workflow has one ready member, so the
  // second pick must come from the other workflow.
  FakeView view({Txn(0, 0, 3, 10), Txn(1, 0, 3, 20)});
  view.ArriveAll();
  AsetsStarPolicy policy;
  policy.Bind(view);
  for (TxnId id = 0; id < 2; ++id) {
    policy.OnArrival(id, 0.0);
    policy.OnReady(id, 0.0);
  }
  EXPECT_EQ(policy.PickNext(0.0), 0u);
  EXPECT_EQ(policy.PickNextExcluding(0.0, {0}), 1u);
}

TEST(PickExcludingDeathTest, BaseImplementationRejectsExclusion) {
  // A policy that does not override the hook only supports k = 1.
  class MinimalPolicy final : public SchedulerPolicy {
   public:
    std::string name() const override { return "Minimal"; }
    void OnReady(TxnId, SimTime) override {}
    void OnCompletion(TxnId, SimTime) override {}
    TxnId PickNext(SimTime) override { return kInvalidTxn; }

   protected:
    void Reset() override {}
  };
  FakeView view({Txn(0, 0, 1, 10)});
  view.ArriveAll();
  MinimalPolicy policy;
  policy.Bind(view);
  EXPECT_EQ(policy.PickNextExcluding(0.0, {}), kInvalidTxn);
  EXPECT_DEATH((void)policy.PickNextExcluding(0.0, {0}),
               "does not support multi-server");
}

}  // namespace
}  // namespace webtx
