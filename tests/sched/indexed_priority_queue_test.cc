#include "sched/indexed_priority_queue.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace webtx {
namespace {

TEST(IndexedPriorityQueueTest, EmptyQueue) {
  IndexedPriorityQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.Contains(0));
  EXPECT_FALSE(q.Erase(0));
}

TEST(IndexedPriorityQueueTest, PushPopInKeyOrder) {
  IndexedPriorityQueue q;
  q.Push(0, 5.0);
  q.Push(1, 1.0);
  q.Push(2, 3.0);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Pop(), 1u);
  EXPECT_EQ(q.Pop(), 2u);
  EXPECT_EQ(q.Pop(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(IndexedPriorityQueueTest, TiesBrokenByLowerId) {
  IndexedPriorityQueue q;
  q.Push(7, 2.0);
  q.Push(3, 2.0);
  q.Push(5, 2.0);
  EXPECT_EQ(q.Pop(), 3u);
  EXPECT_EQ(q.Pop(), 5u);
  EXPECT_EQ(q.Pop(), 7u);
}

TEST(IndexedPriorityQueueTest, TopAndTopKey) {
  IndexedPriorityQueue q;
  q.Push(4, 9.0);
  q.Push(2, 1.5);
  EXPECT_EQ(q.Top(), 2u);
  EXPECT_EQ(q.TopKey(), 1.5);
  EXPECT_EQ(q.size(), 2u);  // Top does not remove
}

TEST(IndexedPriorityQueueTest, ContainsAndKeyOf) {
  IndexedPriorityQueue q;
  q.Push(1, 2.5);
  EXPECT_TRUE(q.Contains(1));
  EXPECT_FALSE(q.Contains(0));
  EXPECT_EQ(q.KeyOf(1), 2.5);
}

TEST(IndexedPriorityQueueTest, EraseMiddleKeepsOrder) {
  IndexedPriorityQueue q;
  for (uint32_t id = 0; id < 10; ++id) {
    q.Push(id, static_cast<double>(id));
  }
  EXPECT_TRUE(q.Erase(5));
  EXPECT_FALSE(q.Contains(5));
  EXPECT_FALSE(q.Erase(5));
  std::vector<uint32_t> popped;
  while (!q.empty()) popped.push_back(q.Pop());
  EXPECT_EQ(popped, (std::vector<uint32_t>{0, 1, 2, 3, 4, 6, 7, 8, 9}));
}

TEST(IndexedPriorityQueueTest, UpdateMovesBothDirections) {
  IndexedPriorityQueue q;
  q.Push(0, 1.0);
  q.Push(1, 2.0);
  q.Push(2, 3.0);
  q.Update(2, 0.5);  // up
  EXPECT_EQ(q.Top(), 2u);
  q.Update(2, 10.0);  // down
  EXPECT_EQ(q.Top(), 0u);
  q.Update(0, 5.0);
  EXPECT_EQ(q.Top(), 1u);
}

TEST(IndexedPriorityQueueTest, PushOrUpdate) {
  IndexedPriorityQueue q;
  q.PushOrUpdate(3, 4.0);
  EXPECT_EQ(q.KeyOf(3), 4.0);
  q.PushOrUpdate(3, 1.0);
  EXPECT_EQ(q.KeyOf(3), 1.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(IndexedPriorityQueueTest, ClearEmptiesAndAllowsReuse) {
  IndexedPriorityQueue q;
  q.Push(0, 1.0);
  q.Push(1, 2.0);
  q.Clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.Contains(0));
  q.Push(0, 9.0);
  EXPECT_EQ(q.Top(), 0u);
}

TEST(IndexedPriorityQueueTest, SparseIdsGrowIndex) {
  IndexedPriorityQueue q;
  q.Push(1000, 1.0);
  q.Push(3, 2.0);
  EXPECT_EQ(q.Pop(), 1000u);
  EXPECT_EQ(q.Pop(), 3u);
}

TEST(IndexedPriorityQueueTest, PresizedConstructor) {
  IndexedPriorityQueue q(100);
  EXPECT_FALSE(q.Contains(50));
  q.Push(50, 1.0);
  EXPECT_TRUE(q.Contains(50));
}

TEST(IndexedPriorityQueueTest, RandomizedAgainstSortReference) {
  Rng rng(1234);
  IndexedPriorityQueue q;
  std::vector<std::pair<double, uint32_t>> reference;

  // Interleaved pushes, erases, and updates; then drain and compare.
  for (uint32_t id = 0; id < 500; ++id) {
    const double key = rng.NextDouble() * 100.0;
    q.Push(id, key);
    reference.emplace_back(key, id);
  }
  for (int i = 0; i < 200; ++i) {
    const auto id = static_cast<uint32_t>(rng.NextInRange(0, 499));
    if (rng.NextDouble() < 0.5) {
      if (q.Contains(id)) {
        q.Erase(id);
        reference.erase(std::find_if(reference.begin(), reference.end(),
                                     [&](const auto& e) {
                                       return e.second == id;
                                     }));
      }
    } else if (q.Contains(id)) {
      const double key = rng.NextDouble() * 100.0;
      q.Update(id, key);
      std::find_if(reference.begin(), reference.end(), [&](const auto& e) {
        return e.second == id;
      })->first = key;
    }
  }
  std::sort(reference.begin(), reference.end());
  for (const auto& [key, id] : reference) {
    ASSERT_EQ(q.TopKey(), key);
    ASSERT_EQ(q.Pop(), id);
  }
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace webtx
