#include "sched/indexed_priority_queue.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace webtx {
namespace {

TEST(IndexedPriorityQueueTest, EmptyQueue) {
  IndexedPriorityQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.Contains(0));
  EXPECT_FALSE(q.Erase(0));
}

TEST(IndexedPriorityQueueTest, PushPopInKeyOrder) {
  IndexedPriorityQueue q;
  q.Push(0, 5.0);
  q.Push(1, 1.0);
  q.Push(2, 3.0);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Pop(), 1u);
  EXPECT_EQ(q.Pop(), 2u);
  EXPECT_EQ(q.Pop(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(IndexedPriorityQueueTest, TiesBrokenByLowerId) {
  IndexedPriorityQueue q;
  q.Push(7, 2.0);
  q.Push(3, 2.0);
  q.Push(5, 2.0);
  EXPECT_EQ(q.Pop(), 3u);
  EXPECT_EQ(q.Pop(), 5u);
  EXPECT_EQ(q.Pop(), 7u);
}

TEST(IndexedPriorityQueueTest, TopAndTopKey) {
  IndexedPriorityQueue q;
  q.Push(4, 9.0);
  q.Push(2, 1.5);
  EXPECT_EQ(q.Top(), 2u);
  EXPECT_EQ(q.TopKey(), 1.5);
  EXPECT_EQ(q.size(), 2u);  // Top does not remove
}

TEST(IndexedPriorityQueueTest, ContainsAndKeyOf) {
  IndexedPriorityQueue q;
  q.Push(1, 2.5);
  EXPECT_TRUE(q.Contains(1));
  EXPECT_FALSE(q.Contains(0));
  EXPECT_EQ(q.KeyOf(1), 2.5);
}

TEST(IndexedPriorityQueueTest, EraseMiddleKeepsOrder) {
  IndexedPriorityQueue q;
  for (uint32_t id = 0; id < 10; ++id) {
    q.Push(id, static_cast<double>(id));
  }
  EXPECT_TRUE(q.Erase(5));
  EXPECT_FALSE(q.Contains(5));
  EXPECT_FALSE(q.Erase(5));
  std::vector<uint32_t> popped;
  while (!q.empty()) popped.push_back(q.Pop());
  EXPECT_EQ(popped, (std::vector<uint32_t>{0, 1, 2, 3, 4, 6, 7, 8, 9}));
}

TEST(IndexedPriorityQueueTest, UpdateMovesBothDirections) {
  IndexedPriorityQueue q;
  q.Push(0, 1.0);
  q.Push(1, 2.0);
  q.Push(2, 3.0);
  q.Update(2, 0.5);  // up
  EXPECT_EQ(q.Top(), 2u);
  q.Update(2, 10.0);  // down
  EXPECT_EQ(q.Top(), 0u);
  q.Update(0, 5.0);
  EXPECT_EQ(q.Top(), 1u);
}

TEST(IndexedPriorityQueueTest, PushOrUpdate) {
  IndexedPriorityQueue q;
  q.PushOrUpdate(3, 4.0);
  EXPECT_EQ(q.KeyOf(3), 4.0);
  q.PushOrUpdate(3, 1.0);
  EXPECT_EQ(q.KeyOf(3), 1.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(IndexedPriorityQueueTest, ClearEmptiesAndAllowsReuse) {
  IndexedPriorityQueue q;
  q.Push(0, 1.0);
  q.Push(1, 2.0);
  q.Clear();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.Contains(0));
  q.Push(0, 9.0);
  EXPECT_EQ(q.Top(), 0u);
}

TEST(IndexedPriorityQueueTest, SparseIdsGrowIndex) {
  IndexedPriorityQueue q;
  q.Push(1000, 1.0);
  q.Push(3, 2.0);
  EXPECT_EQ(q.Pop(), 1000u);
  EXPECT_EQ(q.Pop(), 3u);
}

TEST(IndexedPriorityQueueTest, PresizedConstructor) {
  IndexedPriorityQueue q(100);
  EXPECT_FALSE(q.Contains(50));
  q.Push(50, 1.0);
  EXPECT_TRUE(q.Contains(50));
}

TEST(IndexedPriorityQueueTest, RandomizedAgainstSortReference) {
  Rng rng(1234);
  IndexedPriorityQueue q;
  std::vector<std::pair<double, uint32_t>> reference;

  // Interleaved pushes, erases, and updates; then drain and compare.
  for (uint32_t id = 0; id < 500; ++id) {
    const double key = rng.NextDouble() * 100.0;
    q.Push(id, key);
    reference.emplace_back(key, id);
  }
  for (int i = 0; i < 200; ++i) {
    const auto id = static_cast<uint32_t>(rng.NextInRange(0, 499));
    if (rng.NextDouble() < 0.5) {
      if (q.Contains(id)) {
        q.Erase(id);
        reference.erase(std::find_if(reference.begin(), reference.end(),
                                     [&](const auto& e) {
                                       return e.second == id;
                                     }));
      }
    } else if (q.Contains(id)) {
      const double key = rng.NextDouble() * 100.0;
      q.Update(id, key);
      std::find_if(reference.begin(), reference.end(), [&](const auto& e) {
        return e.second == id;
      })->first = key;
    }
  }
  std::sort(reference.begin(), reference.end());
  for (const auto& [key, id] : reference) {
    ASSERT_EQ(q.TopKey(), key);
    ASSERT_EQ(q.Pop(), id);
  }
  EXPECT_TRUE(q.empty());
}

TEST(IndexedPriorityQueueTest, BulkLoadMatchesIndividualPushes) {
  Rng rng(21);
  for (const size_t n : {0u, 1u, 2u, 7u, 64u, 500u}) {
    std::vector<std::pair<uint32_t, double>> items;
    items.reserve(n);
    for (uint32_t id = 0; id < n; ++id) {
      // Duplicate keys on purpose: ties must still pop lowest-id first.
      items.emplace_back(id, std::floor(rng.NextDouble() * 10.0));
    }
    IndexedPriorityQueue bulk;
    bulk.ReserveAndBulkLoad(items);
    IndexedPriorityQueue pushed;
    for (const auto& [id, key] : items) pushed.Push(id, key);
    ASSERT_EQ(bulk.size(), n);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bulk.TopKey(), pushed.TopKey()) << "n=" << n << " i=" << i;
      ASSERT_EQ(bulk.Pop(), pushed.Pop()) << "n=" << n << " i=" << i;
    }
    EXPECT_TRUE(bulk.empty());
  }
}

TEST(IndexedPriorityQueueTest, BulkLoadReplacesPriorContents) {
  IndexedPriorityQueue q;
  q.Push(11, 1.0);
  q.Push(12, 2.0);
  q.ReserveAndBulkLoad({{3, 5.0}, {4, 4.0}});
  EXPECT_FALSE(q.Contains(11));
  EXPECT_FALSE(q.Contains(12));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.Pop(), 4u);
  EXPECT_EQ(q.Pop(), 3u);
}

TEST(IndexedPriorityQueueTest, BulkLoadReservesRequestedCapacity) {
  IndexedPriorityQueue q;
  q.ReserveAndBulkLoad({{0, 1.0}}, /*capacity=*/16);
  // Ids up to the reserved capacity are pushable without growing pos_.
  q.Push(15, 0.5);
  EXPECT_EQ(q.Pop(), 15u);
  EXPECT_EQ(q.Pop(), 0u);
}

TEST(IndexedPriorityQueueTest, UpdateKeyIfChangedSkipsEqualKeys) {
  IndexedPriorityQueue q;
  q.Push(0, 3.0);
  q.Push(1, 1.0);
  EXPECT_FALSE(q.UpdateKeyIfChanged(0, 3.0));
  EXPECT_EQ(q.KeyOf(0), 3.0);
  EXPECT_TRUE(q.UpdateKeyIfChanged(0, 0.5));
  EXPECT_EQ(q.Top(), 0u);
  EXPECT_TRUE(q.UpdateKeyIfChanged(0, 2.0));
  EXPECT_EQ(q.Top(), 1u);
}

TEST(IndexedPriorityQueueTest, UpdateKeyIfChangedMatchesUpdate) {
  Rng rng(33);
  IndexedPriorityQueue a;
  IndexedPriorityQueue b;
  constexpr uint32_t kIds = 100;
  for (uint32_t id = 0; id < kIds; ++id) {
    const double key = std::floor(rng.NextDouble() * 8.0);
    a.Push(id, key);
    b.Push(id, key);
  }
  for (int i = 0; i < 1000; ++i) {
    const auto id = static_cast<uint32_t>(rng.NextInRange(0, kIds - 1));
    // Quantized keys make repeats (the skip path) common.
    const double key = std::floor(rng.NextDouble() * 8.0);
    a.Update(id, key);
    b.UpdateKeyIfChanged(id, key);
  }
  for (uint32_t id = 0; id < kIds; ++id) {
    ASSERT_EQ(a.KeyOf(id), b.KeyOf(id));
  }
  while (!a.empty()) {
    ASSERT_EQ(a.TopKey(), b.TopKey());
    ASSERT_EQ(a.Pop(), b.Pop());
  }
  EXPECT_TRUE(b.empty());
}

TEST(IndexedPriorityQueueTest, ReservePreservesContents) {
  IndexedPriorityQueue q;
  q.Push(2, 2.0);
  q.Reserve(64);
  EXPECT_TRUE(q.Contains(2));
  q.Push(63, 1.0);
  EXPECT_EQ(q.Pop(), 63u);
  EXPECT_EQ(q.Pop(), 2u);
}

}  // namespace
}  // namespace webtx
