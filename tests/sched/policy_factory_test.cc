#include "sched/policy_factory.h"

#include <gtest/gtest.h>

namespace webtx {
namespace {

TEST(PolicyFactoryTest, CreatesEveryKnownPolicy) {
  for (const std::string& name : KnownPolicyNames()) {
    auto policy = CreatePolicy(name);
    ASSERT_TRUE(policy.ok()) << name << ": " << policy.status();
    EXPECT_EQ(policy.ValueOrDie()->name(), name);
  }
}

TEST(PolicyFactoryTest, KnownNamesListIsComplete) {
  const auto names = KnownPolicyNames();
  EXPECT_EQ(names.size(), 9u);
  for (const char* expected :
       {"FCFS", "EDF", "SRPT", "LS", "HDF", "HVF", "ASETS", "Ready",
        "ASETS*"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(PolicyFactoryTest, MixVariants) {
  auto bare = CreatePolicy("MIX");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare.ValueOrDie()->name(), "MIX(0.5)");

  auto parameterized = CreatePolicy("MIX(0.25)");
  ASSERT_TRUE(parameterized.ok()) << parameterized.status();
  EXPECT_EQ(parameterized.ValueOrDie()->name(), "MIX(0.25)");

  EXPECT_FALSE(CreatePolicy("MIX(1.5)").ok());
  EXPECT_FALSE(CreatePolicy("MIX(-0.1)").ok());
  EXPECT_FALSE(CreatePolicy("MIX(abc)").ok());
}

TEST(PolicyFactoryTest, UnknownNameFails) {
  auto policy = CreatePolicy("RoundRobin");
  ASSERT_FALSE(policy.ok());
  EXPECT_EQ(policy.status().code(), StatusCode::kNotFound);
}

TEST(PolicyFactoryTest, BalanceAwareTimeBased) {
  auto policy = CreatePolicy("ASETS*-BA(time=0.005)");
  ASSERT_TRUE(policy.ok()) << policy.status();
  EXPECT_EQ(policy.ValueOrDie()->name(), "ASETS*-BA");
}

TEST(PolicyFactoryTest, BalanceAwareCountBased) {
  auto policy = CreatePolicy("ASETS-BA(count=0.05)");
  ASSERT_TRUE(policy.ok()) << policy.status();
  EXPECT_EQ(policy.ValueOrDie()->name(), "ASETS-BA");
}

TEST(PolicyFactoryTest, BalanceAwareAroundBaseline) {
  auto policy = CreatePolicy("EDF-BA(time=0.01)");
  ASSERT_TRUE(policy.ok()) << policy.status();
  EXPECT_EQ(policy.ValueOrDie()->name(), "EDF-BA");
}

TEST(PolicyFactoryTest, MalformedBalanceAwareSpecs) {
  EXPECT_FALSE(CreatePolicy("ASETS*-BA(time=0.005").ok());   // no ')'
  EXPECT_FALSE(CreatePolicy("ASETS*-BA(time)").ok());        // no '='
  EXPECT_FALSE(CreatePolicy("ASETS*-BA(weekly=0.1)").ok());  // bad mode
  EXPECT_FALSE(CreatePolicy("ASETS*-BA(time=abc)").ok());    // bad rate
  EXPECT_FALSE(CreatePolicy("ASETS*-BA(time=0)").ok());      // zero rate
  EXPECT_FALSE(CreatePolicy("ASETS*-BA(time=-1)").ok());     // negative
  EXPECT_FALSE(CreatePolicy("Nope-BA(time=0.01)").ok());     // bad inner
}

TEST(PolicyFactoryTest, EmptySpecFails) {
  EXPECT_FALSE(CreatePolicy("").ok());
}

}  // namespace
}  // namespace webtx
