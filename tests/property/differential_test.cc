// Differential testing: the O(log N) incremental ASETS / ASETS*
// implementations must schedule *identically* to naive O(N)
// recompute-from-scratch references on randomized workloads. This
// validates the trickiest production code paths: one-way EDF->HDF
// migration via the critical-time queue, re-keying of the running
// transaction, and per-event workflow representative refreshes.

#include <tuple>

#include <gtest/gtest.h>

#include "sched/policies/asets.h"
#include "sched/policies/asets_star.h"
#include "sim/simulator.h"
#include "testing/reference_policies.h"
#include "workload/generator.h"

namespace webtx {
namespace {

struct Shape {
  const char* label;
  uint64_t max_weight;
  size_t max_workflow_length;
  size_t max_workflows_per_txn;
  double burstiness;
};

constexpr Shape kShapes[] = {
    {"independent", 1, 1, 1, 0.0},
    {"weighted", 10, 1, 1, 0.0},
    {"workflows", 1, 6, 1, 0.0},
    {"weighted_overlapping", 10, 5, 3, 0.0},
    {"bursty_weighted", 10, 4, 2, 0.6},
};

using Param = std::tuple<double, Shape, uint64_t>;  // utilization, shape, seed

class DifferentialTest : public ::testing::TestWithParam<Param> {
 protected:
  std::vector<TransactionSpec> MakeWorkload() const {
    const auto& [utilization, shape, seed] = GetParam();
    WorkloadSpec spec;
    spec.num_transactions = 250;
    spec.utilization = utilization;
    spec.max_weight = shape.max_weight;
    spec.max_workflow_length = shape.max_workflow_length;
    spec.max_workflows_per_txn = shape.max_workflows_per_txn;
    spec.burstiness = shape.burstiness;
    auto generator = WorkloadGenerator::Create(spec);
    EXPECT_TRUE(generator.ok());
    return generator.ValueOrDie().Generate(seed);
  }
};

TEST_P(DifferentialTest, IncrementalAsetsMatchesNaiveReference) {
  const auto txns = MakeWorkload();
  auto sim = Simulator::Create(txns);
  ASSERT_TRUE(sim.ok()) << sim.status();
  AsetsPolicy incremental;
  testing::NaiveAsetsPolicy naive;
  const RunResult a = sim.ValueOrDie().Run(incremental);
  const RunResult b = sim.ValueOrDie().Run(naive);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    ASSERT_EQ(a.outcomes[i].finish, b.outcomes[i].finish)
        << "T" << i << " diverged";
  }
  EXPECT_EQ(a.num_preemptions, b.num_preemptions);
}

TEST_P(DifferentialTest, IncrementalAsetsStarMatchesNaiveReference) {
  const auto txns = MakeWorkload();
  auto sim = Simulator::Create(txns);
  ASSERT_TRUE(sim.ok()) << sim.status();
  AsetsStarPolicy incremental;
  testing::NaiveAsetsStarPolicy naive;
  const RunResult a = sim.ValueOrDie().Run(incremental);
  const RunResult b = sim.ValueOrDie().Run(naive);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    ASSERT_EQ(a.outcomes[i].finish, b.outcomes[i].finish)
        << "T" << i << " diverged";
  }
  EXPECT_EQ(a.num_preemptions, b.num_preemptions);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, DifferentialTest,
    ::testing::Combine(::testing::Values(0.4, 0.8, 1.2),
                       ::testing::ValuesIn(kShapes),
                       ::testing::Values(11u, 12u, 13u)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      std::string name =
          std::string(std::get<1>(param_info.param).label) + "_u" +
          std::to_string(
              static_cast<int>(std::get<0>(param_info.param) * 10)) +
          "_s" + std::to_string(std::get<2>(param_info.param));
      return name;
    });

}  // namespace
}  // namespace webtx
