// Property-based invariants: every policy, across utilizations and
// workload shapes, must produce feasible schedules.

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "sched/policy_factory.h"
#include "sim/schedule_validator.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace webtx {
namespace {

struct WorkloadShape {
  const char* label;
  uint64_t max_weight;
  size_t max_workflow_length;
  size_t max_workflows_per_txn;
};

using Param = std::tuple<std::string, double, WorkloadShape>;

class SchedulerInvariantsTest : public ::testing::TestWithParam<Param> {};

TEST_P(SchedulerInvariantsTest, ScheduleIsFeasibleAndAccounted) {
  const auto& [policy_name, utilization, shape] = GetParam();

  WorkloadSpec spec;
  spec.num_transactions = 300;
  spec.utilization = utilization;
  spec.max_weight = shape.max_weight;
  spec.max_workflow_length = shape.max_workflow_length;
  spec.max_workflows_per_txn = shape.max_workflows_per_txn;

  auto generator = WorkloadGenerator::Create(spec);
  ASSERT_TRUE(generator.ok());
  const auto txns = generator.ValueOrDie().Generate(/*seed=*/99);

  // Exercise both the paper's single server and the multi-server
  // extension; the feasibility invariants are server-count agnostic.
  for (const size_t num_servers : {size_t{1}, size_t{3}}) {
  SimOptions sim_options;
  sim_options.record_schedule = true;
  sim_options.num_servers = num_servers;
  auto sim = Simulator::Create(txns, sim_options);
  ASSERT_TRUE(sim.ok()) << sim.status();
  auto policy = CreatePolicy(policy_name);
  ASSERT_TRUE(policy.ok()) << policy.status();
  const RunResult r = sim.ValueOrDie().Run(*policy.ValueOrDie());

  // Independent audit of the full execution timeline.
  const Status audit = ValidateSchedule(txns, r, num_servers);
  EXPECT_TRUE(audit.ok()) << audit;

  ASSERT_EQ(r.outcomes.size(), txns.size());
  double total_work = 0.0;
  SimTime first_arrival = txns.empty() ? 0.0 : txns[0].arrival;
  for (size_t i = 0; i < txns.size(); ++i) {
    const TxnOutcome& o = r.outcomes[i];
    // Every transaction finished, no earlier than arrival + length.
    EXPECT_GE(o.finish, txns[i].arrival + txns[i].length - 1e-6) << "T" << i;
    // Tardiness matches Definition 3 exactly.
    EXPECT_NEAR(o.tardiness, TardinessOf(o.finish, txns[i].deadline), 1e-9);
    EXPECT_NEAR(o.weighted_tardiness, o.tardiness * txns[i].weight, 1e-9);
    EXPECT_EQ(o.missed_deadline, o.tardiness > 0.0);
    EXPECT_NEAR(o.response, o.finish - txns[i].arrival, 1e-9);
    // Precedence: a dependent finishes at least its own length after
    // every predecessor's finish.
    for (const TxnId dep : txns[i].dependencies) {
      EXPECT_GE(o.finish, r.outcomes[dep].finish + txns[i].length - 1e-6)
          << "T" << i << " depends on T" << dep;
    }
    total_work += txns[i].length;
  }
  // Makespan bounds: at least the largest single job's span, and (work
  // conservation — the server never idles while work is pending) at most
  // the last arrival plus all remaining work run serially.
  SimTime last_arrival = first_arrival;
  SimTime max_span = 0.0;
  for (const auto& t : txns) {
    last_arrival = std::max(last_arrival, t.arrival);
    max_span = std::max(max_span, t.arrival + t.length);
  }
  EXPECT_GE(r.makespan, max_span - 1e-6);
  EXPECT_LE(r.makespan, last_arrival + total_work + 1e-6);
  // There are at least arrival+completion events per transaction.
  EXPECT_GE(r.num_scheduling_points, txns.size());
  }
}

TEST_P(SchedulerInvariantsTest, RunsAreDeterministic) {
  const auto& [policy_name, utilization, shape] = GetParam();
  WorkloadSpec spec;
  spec.num_transactions = 150;
  spec.utilization = utilization;
  spec.max_weight = shape.max_weight;
  spec.max_workflow_length = shape.max_workflow_length;
  spec.max_workflows_per_txn = shape.max_workflows_per_txn;

  auto generator = WorkloadGenerator::Create(spec);
  ASSERT_TRUE(generator.ok());
  const auto txns = generator.ValueOrDie().Generate(7);
  auto sim = Simulator::Create(txns);
  ASSERT_TRUE(sim.ok());
  auto policy = CreatePolicy(policy_name);
  ASSERT_TRUE(policy.ok());

  const RunResult a = sim.ValueOrDie().Run(*policy.ValueOrDie());
  const RunResult b = sim.ValueOrDie().Run(*policy.ValueOrDie());
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].finish, b.outcomes[i].finish);
  }
  EXPECT_EQ(a.num_scheduling_points, b.num_scheduling_points);
}

constexpr WorkloadShape kShapes[] = {
    {"independent", 1, 1, 1},
    {"weighted", 10, 1, 1},
    {"workflows", 1, 5, 1},
    {"weighted_workflows", 10, 6, 3},
};

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SchedulerInvariantsTest,
    ::testing::Combine(
        ::testing::Values("FCFS", "EDF", "SRPT", "LS", "HDF", "HVF", "ASETS",
                          "Ready", "ASETS*", "ASETS*-BA(time=0.005)",
                          "ASETS*-BA(count=0.05)"),
        ::testing::Values(0.3, 0.7, 1.0),
        ::testing::ValuesIn(kShapes)),
    [](const ::testing::TestParamInfo<Param>& param_info) {
      std::string name = std::get<0>(param_info.param) + "_u" +
                         std::to_string(static_cast<int>(
                             std::get<1>(param_info.param) * 10)) +
                         "_" + std::get<2>(param_info.param).label;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace webtx
