// Brute-force optimality checks on small batch instances (all
// transactions released at t=0, no dependencies). For equal release
// times on a single machine, preemption cannot reduce total (weighted)
// tardiness or completion time, so the optimum over all n! permutations
// is the true preemptive optimum — an exact yardstick for the policies:
//
//   * every policy's schedule costs at least the optimum (simulator
//     sanity);
//   * EDF finds a zero-tardiness schedule whenever one exists (EDF
//     feasibility-optimality for equal release times);
//   * SRPT minimizes total response time (SPT rule);
//   * HDF minimizes total weighted response time (Smith's rule), and
//     minimizes weighted tardiness when every deadline is hopeless
//     [Becchetti et al., the paper's optimality citation].

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sched/policy_factory.h"
#include "sim/simulator.h"
#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::Txn;

struct BatchInstance {
  std::vector<TransactionSpec> txns;
};

struct PermutationCosts {
  double min_total_tardiness = 0.0;
  double min_total_weighted_tardiness = 0.0;
  double min_total_response = 0.0;
  double min_total_weighted_response = 0.0;
};

PermutationCosts BruteForce(const BatchInstance& instance) {
  const size_t n = instance.txns.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  PermutationCosts best;
  bool first = true;
  do {
    double clock = 0.0;
    double tardiness = 0.0;
    double weighted_tardiness = 0.0;
    double response = 0.0;
    double weighted_response = 0.0;
    for (const size_t i : order) {
      const TransactionSpec& t = instance.txns[i];
      clock += t.length;
      const double late = std::max(0.0, clock - t.deadline);
      tardiness += late;
      weighted_tardiness += late * t.weight;
      response += clock;
      weighted_response += clock * t.weight;
    }
    if (first) {
      best = {tardiness, weighted_tardiness, response, weighted_response};
      first = false;
    } else {
      best.min_total_tardiness =
          std::min(best.min_total_tardiness, tardiness);
      best.min_total_weighted_tardiness =
          std::min(best.min_total_weighted_tardiness, weighted_tardiness);
      best.min_total_response = std::min(best.min_total_response, response);
      best.min_total_weighted_response =
          std::min(best.min_total_weighted_response, weighted_response);
    }
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

BatchInstance RandomInstance(uint64_t seed, bool hopeless_deadlines) {
  Rng rng(seed);
  BatchInstance instance;
  const size_t n = 3 + static_cast<size_t>(rng.NextInRange(0, 4));  // 3..7
  for (TxnId i = 0; i < n; ++i) {
    const double length = 1.0 + static_cast<double>(rng.NextInRange(0, 9));
    const double deadline =
        hopeless_deadlines
            ? 0.5 * rng.NextDouble()  // unreachable for every job
            : 1.0 + static_cast<double>(rng.NextInRange(0, 29));
    const double weight = 1.0 + static_cast<double>(rng.NextInRange(0, 4));
    instance.txns.push_back(Txn(i, 0.0, length, deadline, weight));
  }
  return instance;
}

struct PolicyTotals {
  double tardiness = 0.0;
  double weighted_tardiness = 0.0;
  double response = 0.0;
  double weighted_response = 0.0;
};

PolicyTotals RunPolicy(const BatchInstance& instance,
                       const std::string& name) {
  auto sim = Simulator::Create(instance.txns);
  EXPECT_TRUE(sim.ok()) << sim.status();
  auto policy = CreatePolicy(name);
  EXPECT_TRUE(policy.ok()) << policy.status();
  const RunResult r = sim.ValueOrDie().Run(*policy.ValueOrDie());
  PolicyTotals totals;
  for (size_t i = 0; i < r.outcomes.size(); ++i) {
    totals.tardiness += r.outcomes[i].tardiness;
    totals.weighted_tardiness += r.outcomes[i].weighted_tardiness;
    totals.response += r.outcomes[i].response;
    totals.weighted_response +=
        r.outcomes[i].response * instance.txns[i].weight;
  }
  return totals;
}

class OptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimalityTest, NoPolicyBeatsTheBruteForceOptimum) {
  const BatchInstance instance = RandomInstance(GetParam(), false);
  const PermutationCosts optimal = BruteForce(instance);
  for (const char* name :
       {"FCFS", "EDF", "SRPT", "LS", "HDF", "HVF", "ASETS", "ASETS*"}) {
    const PolicyTotals totals = RunPolicy(instance, name);
    EXPECT_GE(totals.tardiness, optimal.min_total_tardiness - 1e-6) << name;
    EXPECT_GE(totals.weighted_tardiness,
              optimal.min_total_weighted_tardiness - 1e-6)
        << name;
    EXPECT_GE(totals.response, optimal.min_total_response - 1e-6) << name;
  }
}

TEST_P(OptimalityTest, EdfFeasibleWheneverFeasibleScheduleExists) {
  const BatchInstance instance = RandomInstance(GetParam(), false);
  const PermutationCosts optimal = BruteForce(instance);
  if (optimal.min_total_tardiness < 1e-9) {
    EXPECT_NEAR(RunPolicy(instance, "EDF").tardiness, 0.0, 1e-9);
  }
}

TEST_P(OptimalityTest, SrptMinimizesTotalResponse) {
  const BatchInstance instance = RandomInstance(GetParam(), false);
  const PermutationCosts optimal = BruteForce(instance);
  EXPECT_NEAR(RunPolicy(instance, "SRPT").response,
              optimal.min_total_response, 1e-6);
}

TEST_P(OptimalityTest, HdfMinimizesWeightedResponse) {
  const BatchInstance instance = RandomInstance(GetParam(), false);
  const PermutationCosts optimal = BruteForce(instance);
  EXPECT_NEAR(RunPolicy(instance, "HDF").weighted_response,
              optimal.min_total_weighted_response, 1e-6);
}

TEST_P(OptimalityTest, HdfOptimalForWeightedTardinessWhenAllHopeless) {
  // With every deadline unreachable, weighted tardiness differs from
  // weighted completion time by a constant, so HDF (Smith's rule) is
  // exactly optimal — the paper's Sec. III-C premise.
  const BatchInstance instance = RandomInstance(GetParam(), true);
  const PermutationCosts optimal = BruteForce(instance);
  EXPECT_NEAR(RunPolicy(instance, "HDF").weighted_tardiness,
              optimal.min_total_weighted_tardiness, 1e-6);
  // And ASETS/ASETS* collapse to HDF in this regime (Sec. III-A2).
  EXPECT_NEAR(RunPolicy(instance, "ASETS").weighted_tardiness,
              optimal.min_total_weighted_tardiness, 1e-6);
  EXPECT_NEAR(RunPolicy(instance, "ASETS*").weighted_tardiness,
              optimal.min_total_weighted_tardiness, 1e-6);
}

TEST_P(OptimalityTest, AsetsTracksOptimalTardinessClosely) {
  // ASETS is a heuristic, but on tiny batch instances it should land
  // within a small constant factor of the brute-force optimum. This is a
  // regression tripwire, not a theorem.
  const BatchInstance instance = RandomInstance(GetParam(), false);
  const PermutationCosts optimal = BruteForce(instance);
  const double asets = RunPolicy(instance, "ASETS").tardiness;
  EXPECT_LE(asets, optimal.min_total_tardiness * 3.0 + 10.0);
}

INSTANTIATE_TEST_SUITE_P(Instances, OptimalityTest,
                         ::testing::Range<uint64_t>(1, 26));

}  // namespace
}  // namespace webtx
