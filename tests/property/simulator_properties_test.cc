// Property-based checks of the simulator itself and of analytic
// reductions between policies.

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "sched/policies/asets.h"
#include "sched/policies/single_queue_policies.h"
#include "sched/policy_factory.h"
#include "sim/simulator.h"
#include "testing/fake_view.h"
#include "workload/generator.h"

namespace webtx {
namespace {

using testing::Txn;

class BatchWorkloadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BatchWorkloadTest, BatchArrivalsFinishBackToBack) {
  // All transactions arrive at t=0 with no dependencies: any
  // work-conserving policy must finish them back-to-back with makespan
  // equal to the total work.
  std::vector<TransactionSpec> txns;
  double total = 0.0;
  for (TxnId i = 0; i < 20; ++i) {
    const double len = 1.0 + (i * 7) % 5;
    txns.push_back(Txn(i, 0.0, len, 10.0 + 3.0 * i));
    total += len;
  }
  auto sim = Simulator::Create(txns);
  ASSERT_TRUE(sim.ok());
  auto policy = CreatePolicy(GetParam());
  ASSERT_TRUE(policy.ok());
  const RunResult r = sim.ValueOrDie().Run(*policy.ValueOrDie());
  EXPECT_NEAR(r.makespan, total, 1e-9);

  // Finish times, sorted, are exactly the partial sums of some
  // permutation of the lengths — i.e. there are no gaps.
  std::vector<double> finishes;
  for (const auto& o : r.outcomes) finishes.push_back(o.finish);
  std::sort(finishes.begin(), finishes.end());
  for (size_t i = 1; i < finishes.size(); ++i) {
    EXPECT_GT(finishes[i], finishes[i - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, BatchWorkloadTest,
                         ::testing::Values("FCFS", "EDF", "SRPT", "LS",
                                           "HDF", "HVF", "ASETS", "ASETS*"),
                         [](const auto& param_info) {
                           std::string n = param_info.param;
                           for (char& c : n) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

TEST(AsetsReductionTest, EqualsEdfWhenEveryDeadlineIsReachable) {
  // Very low utilization + huge slack: ASETS behaves exactly like EDF.
  WorkloadSpec spec;
  spec.num_transactions = 200;
  spec.utilization = 0.1;
  spec.k_max = 50.0;
  auto generator = WorkloadGenerator::Create(spec);
  ASSERT_TRUE(generator.ok());
  const auto txns = generator.ValueOrDie().Generate(21);
  auto sim = Simulator::Create(txns);
  ASSERT_TRUE(sim.ok());
  EdfPolicy edf;
  AsetsPolicy asets;
  const RunResult r_edf = sim.ValueOrDie().Run(edf);
  const RunResult r_asets = sim.ValueOrDie().Run(asets);
  // If nothing ever misses, the two schedules coincide.
  ASSERT_EQ(r_edf.miss_ratio, 0.0);
  for (size_t i = 0; i < txns.size(); ++i) {
    EXPECT_EQ(r_edf.outcomes[i].finish, r_asets.outcomes[i].finish);
  }
}

TEST(AsetsReductionTest, EqualsSrptWhenEveryDeadlineIsHopeless) {
  // Deadlines in the past from the start: ASETS collapses to SRPT.
  std::vector<TransactionSpec> txns;
  for (TxnId i = 0; i < 50; ++i) {
    txns.push_back(Txn(i, 0.2 * i, 1.0 + (i * 13) % 7, 0.01));
  }
  auto sim = Simulator::Create(txns);
  ASSERT_TRUE(sim.ok());
  SrptPolicy srpt;
  AsetsPolicy asets;
  const RunResult r_srpt = sim.ValueOrDie().Run(srpt);
  const RunResult r_asets = sim.ValueOrDie().Run(asets);
  for (size_t i = 0; i < txns.size(); ++i) {
    EXPECT_EQ(r_srpt.outcomes[i].finish, r_asets.outcomes[i].finish);
  }
}

TEST(SimulatorPropertyTest, UtilizationMonotonicallyRaisesTardiness) {
  // Averaged over seeds, average tardiness grows with utilization under
  // every reasonable policy (workload gets strictly denser).
  for (const char* name : {"EDF", "SRPT", "ASETS"}) {
    double prev = -1.0;
    for (const double util : {0.2, 0.6, 1.0}) {
      WorkloadSpec spec;
      spec.num_transactions = 400;
      spec.utilization = util;
      auto generator = WorkloadGenerator::Create(spec);
      ASSERT_TRUE(generator.ok());
      double sum = 0.0;
      for (uint64_t seed = 1; seed <= 3; ++seed) {
        auto sim = Simulator::Create(generator.ValueOrDie().Generate(seed));
        ASSERT_TRUE(sim.ok());
        auto policy = CreatePolicy(name);
        ASSERT_TRUE(policy.ok());
        sum += sim.ValueOrDie().Run(*policy.ValueOrDie()).avg_tardiness;
      }
      EXPECT_GT(sum, prev) << name << " at " << util;
      prev = sum;
    }
  }
}

TEST(SimulatorPropertyTest, PreemptionsOnlyHappenWithArrivals) {
  // A policy can only preempt at arrival points: with a single arrival
  // batch there are no preemptions.
  std::vector<TransactionSpec> txns;
  for (TxnId i = 0; i < 10; ++i) {
    txns.push_back(Txn(i, 0.0, 2.0 + i, 5.0 * i + 1.0));
  }
  auto sim = Simulator::Create(txns);
  ASSERT_TRUE(sim.ok());
  for (const char* name : {"EDF", "SRPT", "ASETS", "ASETS*"}) {
    auto policy = CreatePolicy(name);
    ASSERT_TRUE(policy.ok());
    const RunResult r = sim.ValueOrDie().Run(*policy.ValueOrDie());
    EXPECT_EQ(r.num_preemptions, 0u) << name;
  }
}

TEST(SimulatorPropertyTest, WeightsDoNotAffectUnweightedPolicies) {
  WorkloadSpec spec;
  spec.num_transactions = 200;
  spec.utilization = 0.8;
  auto generator = WorkloadGenerator::Create(spec);
  ASSERT_TRUE(generator.ok());
  auto txns = generator.ValueOrDie().Generate(33);
  auto with_weights = txns;
  for (size_t i = 0; i < with_weights.size(); ++i) {
    with_weights[i].weight = 1.0 + static_cast<double>(i % 9);
  }
  for (const char* name : {"FCFS", "EDF", "SRPT", "LS"}) {
    auto sim_a = Simulator::Create(txns);
    auto sim_b = Simulator::Create(with_weights);
    ASSERT_TRUE(sim_a.ok());
    ASSERT_TRUE(sim_b.ok());
    auto policy = CreatePolicy(name);
    ASSERT_TRUE(policy.ok());
    const RunResult a = sim_a.ValueOrDie().Run(*policy.ValueOrDie());
    const RunResult b = sim_b.ValueOrDie().Run(*policy.ValueOrDie());
    for (size_t i = 0; i < a.outcomes.size(); ++i) {
      EXPECT_EQ(a.outcomes[i].finish, b.outcomes[i].finish) << name;
    }
  }
}

TEST(SimulatorPropertyTest, ScalingAllDeadlinesPreservesEdfSchedule) {
  // EDF depends only on the deadline ORDER: any strictly monotone
  // transformation of deadlines yields the identical schedule.
  WorkloadSpec spec;
  spec.num_transactions = 150;
  spec.utilization = 0.9;
  auto generator = WorkloadGenerator::Create(spec);
  ASSERT_TRUE(generator.ok());
  auto txns = generator.ValueOrDie().Generate(44);
  auto scaled = txns;
  for (auto& t : scaled) t.deadline = 3.0 * t.deadline + 7.0;
  EdfPolicy edf;
  auto sim_a = Simulator::Create(txns);
  auto sim_b = Simulator::Create(scaled);
  ASSERT_TRUE(sim_a.ok());
  ASSERT_TRUE(sim_b.ok());
  const RunResult a = sim_a.ValueOrDie().Run(edf);
  const RunResult b = sim_b.ValueOrDie().Run(edf);
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].finish, b.outcomes[i].finish);
  }
}

}  // namespace
}  // namespace webtx
