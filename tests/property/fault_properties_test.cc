// Property-based checks of the failure-semantics contract
// (sim/simulator.h): over random workloads with faults and admission
// control, every transaction ends in exactly one fate, the per-fate
// counters partition the workload, and the accounting invariants hold
// for every policy.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sched/admission.h"
#include "sched/policy_factory.h"
#include "sim/schedule_validator.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace webtx {
namespace {

SimOptions FaultyOptions() {
  SimOptions options;
  FaultPlanConfig config;
  config.outage_rate = 0.01;
  config.mean_outage_duration = 8.0;
  config.abort_rate = 0.02;
  config.seed = 11;
  auto plan = FaultPlan::Create(config);
  EXPECT_TRUE(plan.ok());
  options.fault_plan = plan.ValueOrDie();
  options.retry.max_attempts = 3;
  options.retry.backoff = 2.0;
  return options;
}

class FaultFatePartitionTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(FaultFatePartitionTest, FatesPartitionTheWorkloadUnderFaults) {
  WorkloadSpec spec;
  spec.num_transactions = 150;
  spec.max_weight = 5;
  spec.max_workflow_length = 3;
  spec.utilization = 0.9;
  auto generator = WorkloadGenerator::Create(spec);
  ASSERT_TRUE(generator.ok());

  for (const uint64_t seed : {1u, 2u, 3u}) {
    SimOptions options = FaultyOptions();
    QueueDepthAdmissionOptions depth;
    depth.max_ready = 30;
    depth.defer_delay = 10.0;
    options.admission = MakeQueueDepthAdmission(depth);
    auto sim = Simulator::Create(
        generator.ValueOrDie().Generate(seed), options);
    ASSERT_TRUE(sim.ok());
    auto policy = CreatePolicy(GetParam());
    ASSERT_TRUE(policy.ok());
    const RunResult r = sim.ValueOrDie().Run(*policy.ValueOrDie());
    SCOPED_TRACE(GetParam() + " seed " + std::to_string(seed));

    // goodput + shed + dropped sums to the whole workload.
    EXPECT_EQ(r.num_completed + r.num_shed + r.num_dropped_retries +
                  r.num_dropped_dependency,
              spec.num_transactions);
    EXPECT_DOUBLE_EQ(r.goodput, static_cast<double>(r.num_completed) /
                                    static_cast<double>(
                                        spec.num_transactions));

    size_t completed = 0;
    size_t aborts = 0;
    for (const TxnOutcome& o : r.outcomes) {
      aborts += o.aborts;
      if (o.fate == TxnFate::kCompleted) {
        ++completed;
        EXPECT_LE(o.aborts + 1, options.retry.max_attempts);
      } else {
        // Every non-completed transaction records its cause and counts
        // as a deadline miss at a definite instant.
        EXPECT_TRUE(o.missed_deadline);
        EXPECT_GE(o.finish, 0.0);
        if (o.fate == TxnFate::kDroppedRetries) {
          EXPECT_EQ(o.aborts, options.retry.max_attempts);
        }
      }
    }
    EXPECT_EQ(completed, r.num_completed);
    EXPECT_EQ(aborts, r.num_aborts);
    // Every abort either led to a retry or was the terminal attempt.
    EXPECT_EQ(r.num_retries + r.num_dropped_retries, r.num_aborts);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, FaultFatePartitionTest,
                         ::testing::Values("FCFS", "EDF", "SRPT", "HDF",
                                           "ASETS", "ASETS*"),
                         [](const auto& param_info) {
                           std::string n = param_info.param;
                           for (char& c : n) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

TEST(FaultPropertiesTest, FaultyRunsPassTheIndependentValidator) {
  WorkloadSpec spec;
  spec.num_transactions = 80;
  spec.max_workflow_length = 3;
  spec.utilization = 0.8;
  auto generator = WorkloadGenerator::Create(spec);
  ASSERT_TRUE(generator.ok());
  for (const uint64_t seed : {4u, 5u}) {
    SimOptions options = FaultyOptions();
    options.record_schedule = true;
    options.num_servers = 2;
    auto sim = Simulator::Create(
        generator.ValueOrDie().Generate(seed), options);
    ASSERT_TRUE(sim.ok());
    auto policy = CreatePolicy("ASETS*");
    ASSERT_TRUE(policy.ok());
    const RunResult r = sim.ValueOrDie().Run(*policy.ValueOrDie());
    ValidationOptions v;
    v.num_servers = 2;
    v.outages = r.outages;
    const Status status =
        ValidateSchedule(sim.ValueOrDie().specs(), r, v);
    EXPECT_TRUE(status.ok()) << "seed " << seed << ": " << status;
  }
}

TEST(FaultPropertiesTest, DisabledFaultsReproduceTheFailureFreeRun) {
  // A default-constructed fault plan plus default retry/admission must
  // leave the simulation byte-identical to a run without SimOptions at
  // all — the robustness layer is strictly opt-in.
  WorkloadSpec spec;
  spec.num_transactions = 100;
  spec.utilization = 0.7;
  auto generator = WorkloadGenerator::Create(spec);
  ASSERT_TRUE(generator.ok());
  const auto txns = generator.ValueOrDie().Generate(9);
  auto plain = Simulator::Create(txns);
  auto opted = Simulator::Create(txns, SimOptions{});
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(opted.ok());
  auto policy = CreatePolicy("ASETS");
  ASSERT_TRUE(policy.ok());
  const RunResult a = plain.ValueOrDie().Run(*policy.ValueOrDie());
  const RunResult b = opted.ValueOrDie().Run(*policy.ValueOrDie());
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].finish, b.outcomes[i].finish);
    EXPECT_EQ(a.outcomes[i].tardiness, b.outcomes[i].tardiness);
    EXPECT_EQ(a.outcomes[i].fate, TxnFate::kCompleted);
  }
  EXPECT_EQ(a.goodput, 1.0);
  EXPECT_EQ(b.goodput, 1.0);
  EXPECT_EQ(a.num_aborts, 0u);
  EXPECT_EQ(b.num_outages, 0u);
}

}  // namespace
}  // namespace webtx
