// rt::Executor resilience tests under the VirtualClock: deterministic
// replayable timelines, warm/cold crash failover, the stall watchdog,
// retry-storm suppression (backoff clamp + global budget), forced
// aborts, and brownout admission — each scenario audited end to end by
// the live validator against harness-side ground truth.

#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/check.h"
#include "rt/clock.h"
#include "rt/executor.h"
#include "rt/live_trace.h"
#include "rt/live_validator.h"
#include "sched/admission.h"
#include "sched/policy_factory.h"

namespace webtx::rt {
namespace {

/// One executor run plus the ground truth the validator audits against.
struct RunRecord {
  std::vector<LiveTraceEvent> trace;
  std::vector<LiveTaskRecord> tasks;
  std::vector<TaskOutcome> outcomes;
  ExecutorStats stats;
};

std::unique_ptr<Executor> MakeExecutor(const ExecutorOptions& options,
                                       const std::string& policy = "EDF") {
  auto created = CreatePolicy(policy);
  WEBTX_CHECK(created.ok()) << created.status();
  return std::make_unique<Executor>(std::move(created).ValueOrDie(), options);
}

/// Submits `spec` and mirrors it into the ground-truth record list.
TxnId SubmitTracked(Executor& exec, std::vector<LiveTaskRecord>& tasks,
                    const TaskSpec& spec) {
  LiveTaskRecord record;
  record.submit_seconds = exec.NowSeconds();
  record.deadline_seconds = record.submit_seconds + spec.relative_deadline;
  record.max_attempts = spec.max_attempts;
  record.retry_backoff = spec.retry_backoff_seconds;
  record.backoff_multiplier = spec.backoff_multiplier;
  record.simulated = spec.simulated_duration > 0.0;
  record.dependencies = spec.dependencies;
  tasks.push_back(record);
  auto id = exec.Submit(spec);
  WEBTX_CHECK(id.ok()) << id.status();
  return id.ValueOrDie();
}

/// Drains the executor to quiescence and collects the run record.
RunRecord FinishRun(Executor& exec, std::vector<LiveTaskRecord> tasks) {
  exec.Drain();
  exec.Shutdown();
  RunRecord run;
  run.trace = exec.TakeTrace();
  run.tasks = std::move(tasks);
  run.outcomes.reserve(run.tasks.size());
  for (TxnId id = 0; id < run.tasks.size(); ++id) {
    run.outcomes.push_back(exec.OutcomeOf(id));
  }
  run.stats = exec.stats();
  return run;
}

void ExpectValid(const RunRecord& run, const ExecutorOptions& options) {
  LiveValidatorOptions validator;
  validator.watchdog = options.watchdog;
  validator.watchdog_stall_seconds = options.watchdog_stall_seconds;
  validator.retry_max_backoff = options.retry_max_backoff;
  const LiveValidationResult result = ValidateLiveTrace(
      run.trace, run.tasks, run.outcomes, run.stats, validator);
  EXPECT_TRUE(result.ok()) << result.violations.front();
}

void ExpectPartition(const RunRecord& run) {
  EXPECT_EQ(run.stats.completed + run.stats.shed_admission +
                run.stats.shed_shutdown + run.stats.dropped_retries +
                run.stats.dropped_dependency,
            run.stats.submitted);
}

TEST(ExecutorResilienceTest, FaultSeasonedTimelineIsDigestStable) {
  // The replayability contract at the executor level: same seed, same
  // submissions, same virtual timeline — twice.
  auto run_once = [] {
    ExecutorOptions options;
    options.num_workers = 3;
    auto clock = std::make_shared<VirtualClock>();
    options.clock = clock;
    options.faults.plan.outage_rate = 0.4;
    options.faults.plan.mean_outage_duration = 0.3;
    options.faults.plan.crash_rate = 0.3;
    options.faults.plan.mean_repair_duration = 0.5;
    options.faults.plan.abort_rate = 0.2;
    options.faults.plan.seed = 17;
    options.faults.latency_spike_prob = 0.3;
    options.faults.mean_latency_spike = 0.05;
    options.watchdog = true;
    options.watchdog_stall_seconds = 0.05;
    options.retry_max_backoff = 0.15;
    options.retry_budget = 4;
    options.record_trace = true;
    auto exec = MakeExecutor(options);

    std::vector<LiveTaskRecord> tasks;
    clock->RegisterParticipant();
    for (size_t i = 0; i < 40; ++i) {
      clock->SleepUntil(0.02 * static_cast<double>(i + 1), nullptr);
      TaskSpec spec;
      spec.simulated_duration = 0.05 + 0.01 * static_cast<double>(i % 5);
      spec.estimated_cost = spec.simulated_duration;
      spec.relative_deadline = 0.4;
      if (i % 4 == 0) spec.timeout_seconds = 0.06;
      spec.max_attempts = 3;
      spec.retry_backoff_seconds = 0.04;
      spec.backoff_multiplier = 2.0;
      SubmitTracked(*exec, tasks, spec);
    }
    const RunRecord run = FinishRun(*exec, std::move(tasks));
    clock->DeregisterParticipant();
    ExpectValid(run, options);
    ExpectPartition(run);
    return LiveTraceDigest(run.trace);
  };
  const uint64_t first = run_once();
  const uint64_t second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_NE(first, 0u);
}

/// Shared scenario of the warm/cold comparison: one long simulated task
/// exposed to a crash-heavy timeline on two slots.
RunRecord FailoverRun(MigrationPolicy migration, double* finish_seconds) {
  ExecutorOptions options;
  options.num_workers = 2;
  auto clock = std::make_shared<VirtualClock>();
  options.clock = clock;
  options.faults.plan.crash_rate = 0.4;
  options.faults.plan.mean_repair_duration = 0.5;
  options.faults.plan.seed = 23;
  options.migration = migration;
  options.record_trace = true;
  auto exec = MakeExecutor(options);

  std::vector<LiveTaskRecord> tasks;
  clock->RegisterParticipant();
  TaskSpec spec;
  spec.simulated_duration = 10.0;
  spec.estimated_cost = 10.0;
  spec.relative_deadline = 60.0;
  const TxnId id = SubmitTracked(*exec, tasks, spec);
  RunRecord run = FinishRun(*exec, std::move(tasks));
  clock->DeregisterParticipant();
  ExpectValid(run, options);
  *finish_seconds = run.outcomes[id].finish_seconds;
  return run;
}

TEST(ExecutorResilienceTest, WarmFailoverRetainsExecutedWork) {
  double warm_finish = 0.0;
  const RunRecord warm = FailoverRun(MigrationPolicy::kWarm, &warm_finish);
  ASSERT_GT(warm.stats.crashes, 0u);
  ASSERT_GT(warm.stats.migrations, 0u);
  EXPECT_EQ(warm.outcomes[0].result, TaskResult::kCompleted);
  // Failovers never charge the attempt budget.
  EXPECT_EQ(warm.outcomes[0].attempts, 1u);
  EXPECT_GT(warm.outcomes[0].migrations, 0u);
  EXPECT_GE(warm_finish, 10.0);

  double cold_finish = 0.0;
  const RunRecord cold = FailoverRun(MigrationPolicy::kCold, &cold_finish);
  ASSERT_GT(cold.stats.migrations, 0u);
  EXPECT_EQ(cold.outcomes[0].result, TaskResult::kCompleted);
  EXPECT_EQ(cold.outcomes[0].attempts, 1u);
  // Cold restarts from zero at every failover; the same crash timeline
  // therefore finishes strictly later than warm's work-retaining runs.
  EXPECT_GT(cold_finish, warm_finish);
}

TEST(ExecutorResilienceTest, WatchdogFailsOverStalledSlots) {
  auto run_with_watchdog = [](bool watchdog) {
    ExecutorOptions options;
    options.num_workers = 2;
    auto clock = std::make_shared<VirtualClock>();
    options.clock = clock;
    options.faults.plan.outage_rate = 0.6;
    options.faults.plan.mean_outage_duration = 0.4;
    options.faults.plan.seed = 29;
    options.watchdog = watchdog;
    options.watchdog_stall_seconds = watchdog ? 0.05 : 0.0;
    options.record_trace = true;
    auto exec = MakeExecutor(options);

    std::vector<LiveTaskRecord> tasks;
    clock->RegisterParticipant();
    for (size_t i = 0; i < 12; ++i) {
      clock->SleepUntil(0.1 * static_cast<double>(i + 1), nullptr);
      TaskSpec spec;
      spec.simulated_duration = 0.3;
      spec.estimated_cost = 0.3;
      spec.relative_deadline = 5.0;
      SubmitTracked(*exec, tasks, spec);
    }
    RunRecord run = FinishRun(*exec, std::move(tasks));
    clock->DeregisterParticipant();
    ExpectValid(run, options);
    ExpectPartition(run);
    return run;
  };

  const RunRecord with = run_with_watchdog(true);
  ASSERT_GT(with.stats.stalls, 0u);
  EXPECT_GT(with.stats.watchdog_failovers, 0u);
  EXPECT_EQ(with.stats.completed, 12u);

  const RunRecord without = run_with_watchdog(false);
  ASSERT_GT(without.stats.stalls, 0u);
  EXPECT_EQ(without.stats.watchdog_failovers, 0u);
  // No crashes in this plan: with the watchdog off nothing migrates;
  // in-flight attempts ride the stall windows out and still finish.
  EXPECT_EQ(without.stats.migrations, 0u);
  EXPECT_EQ(without.stats.completed, 12u);
}

TEST(ExecutorResilienceTest, RetryStormSuppressionClampsBackoffGrowth) {
  ExecutorOptions options;
  options.num_workers = 2;
  auto clock = std::make_shared<VirtualClock>();
  options.clock = clock;
  options.retry_max_backoff = 0.1;
  options.record_trace = true;
  auto exec = MakeExecutor(options);

  constexpr size_t kTasks = 6;
  std::vector<LiveTaskRecord> tasks;
  clock->RegisterParticipant();
  for (size_t i = 0; i < kTasks; ++i) {
    clock->SleepUntil(0.01 * static_cast<double>(i + 1), nullptr);
    TaskSpec spec;
    // Timeout strictly under the duration: every attempt times out.
    spec.simulated_duration = 0.2;
    spec.estimated_cost = 0.2;
    spec.timeout_seconds = 0.02;
    spec.relative_deadline = 5.0;
    spec.max_attempts = 4;
    spec.retry_backoff_seconds = 0.05;
    spec.backoff_multiplier = 8.0;  // 0.05, 0.4, 3.2 unclamped
    SubmitTracked(*exec, tasks, spec);
  }
  RunRecord run = FinishRun(*exec, std::move(tasks));
  clock->DeregisterParticipant();
  ExpectValid(run, options);

  // Per task: three retries scheduled, the second and third clamped at
  // the 0.1s ceiling.
  EXPECT_EQ(run.stats.retries_scheduled, kTasks * 3);
  EXPECT_EQ(run.stats.retry_storm_suppressed, kTasks * 2);
  for (const TaskOutcome& outcome : run.outcomes) {
    EXPECT_EQ(outcome.result, TaskResult::kTimedOut);
    EXPECT_EQ(outcome.attempts, 4u);
  }
  EXPECT_EQ(run.stats.dropped_retries, kTasks);
}

TEST(ExecutorResilienceTest, GlobalRetryBudgetShedsOverflowingRetries) {
  ExecutorOptions options;
  options.num_workers = 2;
  auto clock = std::make_shared<VirtualClock>();
  options.clock = clock;
  options.retry_budget = 1;  // a second concurrent backoff is refused
  options.record_trace = true;
  auto exec = MakeExecutor(options);

  constexpr size_t kTasks = 8;
  std::vector<LiveTaskRecord> tasks;
  clock->RegisterParticipant();
  for (size_t i = 0; i < kTasks; ++i) {
    clock->SleepUntil(0.01 * static_cast<double>(i + 1), nullptr);
    TaskSpec spec;
    // Timeout strictly under the duration: every attempt times out.
    spec.simulated_duration = 0.2;
    spec.estimated_cost = 0.2;
    spec.timeout_seconds = 0.02;
    spec.relative_deadline = 5.0;
    spec.max_attempts = 3;
    spec.retry_backoff_seconds = 0.5;  // long: backoffs overlap failures
    SubmitTracked(*exec, tasks, spec);
  }
  RunRecord run = FinishRun(*exec, std::move(tasks));
  clock->DeregisterParticipant();
  ExpectValid(run, options);
  ExpectPartition(run);

  EXPECT_GT(run.stats.retries_dropped_budget, 0u);
  EXPECT_EQ(run.stats.dropped_retries, kTasks);
  bool saw_truncated = false;
  for (const TaskOutcome& outcome : run.outcomes) {
    EXPECT_EQ(outcome.result, TaskResult::kTimedOut);
    saw_truncated = saw_truncated || outcome.attempts < 3;
  }
  EXPECT_TRUE(saw_truncated) << "budget never cut a retry chain short";
}

TEST(ExecutorResilienceTest, ForcedAbortsAreAbsorbedAndRetried) {
  ExecutorOptions options;
  options.num_workers = 2;
  auto clock = std::make_shared<VirtualClock>();
  options.clock = clock;
  options.faults.plan.abort_rate = 1.0;
  options.faults.plan.seed = 31;
  options.record_trace = true;
  auto exec = MakeExecutor(options);

  constexpr size_t kTasks = 10;
  std::vector<LiveTaskRecord> tasks;
  clock->RegisterParticipant();
  for (size_t i = 0; i < kTasks; ++i) {
    clock->SleepUntil(0.05 * static_cast<double>(i + 1), nullptr);
    TaskSpec spec;
    spec.simulated_duration = 0.5;
    spec.estimated_cost = 0.5;
    spec.relative_deadline = 10.0;
    spec.max_attempts = 5;
    spec.retry_backoff_seconds = 0.02;
    SubmitTracked(*exec, tasks, spec);
  }
  RunRecord run = FinishRun(*exec, std::move(tasks));
  clock->DeregisterParticipant();
  ExpectValid(run, options);
  ExpectPartition(run);

  ASSERT_GT(run.stats.forced_aborts, 0u);
  uint32_t outcome_aborts = 0;
  for (const TaskOutcome& outcome : run.outcomes) {
    outcome_aborts += outcome.forced_aborts;
  }
  EXPECT_EQ(outcome_aborts, run.stats.forced_aborts);
}

TEST(ExecutorResilienceTest, BrownoutAdmissionShedsUnderSustainedOverload) {
  ExecutorOptions options;
  options.num_workers = 1;
  auto clock = std::make_shared<VirtualClock>();
  options.clock = clock;
  BrownoutAdmissionOptions brownout;
  brownout.tardiness_slo = 0.05;
  brownout.depth_slo = 4.0;
  brownout.ewma_alpha = 0.5;
  brownout.weight_tiers = {2.0, 8.0};
  options.admission = MakeBrownoutAdmission(brownout);
  options.record_trace = true;
  auto exec = MakeExecutor(options);

  // 3x overload on one worker: tardiness and queue depth both blow
  // through their SLOs, so low-weight arrivals get shed while heavy
  // ones keep being admitted.
  constexpr size_t kTasks = 40;
  std::vector<LiveTaskRecord> tasks;
  clock->RegisterParticipant();
  for (size_t i = 0; i < kTasks; ++i) {
    clock->SleepUntil(0.05 * static_cast<double>(i + 1), nullptr);
    TaskSpec spec;
    spec.simulated_duration = 0.15;
    spec.estimated_cost = 0.15;
    spec.relative_deadline = 0.2;
    spec.weight = (i % 2 == 0) ? 1.0 : 16.0;
    SubmitTracked(*exec, tasks, spec);
  }
  RunRecord run = FinishRun(*exec, std::move(tasks));
  clock->DeregisterParticipant();
  ExpectValid(run, options);
  ExpectPartition(run);

  ASSERT_GT(run.stats.shed_admission, 0u);
  EXPECT_GT(run.stats.completed, 0u);
  EXPECT_GT(run.stats.tardiness_ewma, 0.0);
  // Shedding is weight-ordered: every admission shed hit a light task.
  double shed_light = 0, shed_heavy = 0;
  for (size_t i = 0; i < kTasks; ++i) {
    if (run.outcomes[i].result == TaskResult::kShedAdmission) {
      ((i % 2 == 0) ? shed_light : shed_heavy) += 1;
    }
  }
  EXPECT_GT(shed_light, 0);
  EXPECT_EQ(shed_heavy, 0);
}

}  // namespace
}  // namespace webtx::rt
