// Shutdown racing the watchdog and delayed-retry release, under the
// virtual clock (satellite of the live-resilience tentpole). The stall
// watchdog fails attempts over while retries wait out backoffs; both
// paths mutate the same ready/delayed/inflight structures a shutdown
// tears down, so this suite drives Shutdown()/ShutdownNow() into the
// middle of that traffic, repeatedly, and asserts liveness (the test
// returns) plus the terminal-fate partition identity. Runs under the
// `tsan` CMake preset (see CMakePresets.json test filter), where the
// synchronization itself is audited.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "rt/clock.h"
#include "rt/executor.h"
#include "sched/policy_factory.h"

namespace webtx::rt {
namespace {

/// Stall-heavy, crash-seasoned fault plan: outage windows become live
/// slot stalls (what the watchdog watches), crashes force failovers of
/// their own, and aborts keep the retry queue busy.
FaultPlanConfig StallPlan(uint64_t seed) {
  FaultPlanConfig plan;
  plan.outage_rate = 0.25;
  plan.mean_outage_duration = 0.6;
  plan.crash_rate = 0.08;
  plan.mean_repair_duration = 0.8;
  plan.abort_rate = 0.15;
  plan.migration = MigrationPolicy::kWarm;
  plan.seed = seed;
  return plan;
}

ExecutorOptions RaceOptions(std::shared_ptr<Clock> clock, uint64_t seed) {
  ExecutorOptions options;
  options.num_workers = 4;
  options.clock = std::move(clock);
  options.faults.plan = StallPlan(seed);
  options.faults.latency_spike_prob = 0.2;
  options.faults.mean_latency_spike = 0.05;
  options.watchdog = true;
  options.watchdog_stall_seconds = 0.05;  // detect fast: maximal traffic
  options.retry_max_backoff = 0.2;
  options.retry_budget = 6;
  return options;
}

/// Simulated tasks with tight timeouts and retry budgets: most attempts
/// either time out (delayed retry) or get failed over (watchdog), so
/// every structure the shutdown races against stays populated.
TaskSpec RaceTask(size_t index) {
  TaskSpec task;
  task.estimated_cost = 0.05 + 0.01 * static_cast<double>(index % 7);
  task.simulated_duration = task.estimated_cost;
  task.relative_deadline = 0.5;
  if (index % 3 == 0) task.timeout_seconds = 0.04;  // undercuts duration
  task.max_attempts = 3;
  task.retry_backoff_seconds = 0.03;
  task.backoff_multiplier = 4.0;  // second delay clamps at max_backoff
  return task;
}

void ExpectTerminalPartition(Executor& exec, size_t submitted) {
  const ExecutorStats stats = exec.stats();
  EXPECT_EQ(stats.submitted, submitted);
  EXPECT_EQ(exec.finished_count(), submitted);
  EXPECT_EQ(stats.completed + stats.shed_admission + stats.shed_shutdown +
                stats.dropped_retries + stats.dropped_dependency,
            exec.finished_count());
}

TEST(ExecutorWatchdogRaceTest, HardShutdownRacesWatchdogFailover) {
  // ShutdownNow lands mid-timeline while watchdog failovers and delayed
  // retries are in flight. Several rounds, shifted shutdown instants:
  // each round freezes the teardown against a different phase of the
  // fault traffic.
  for (uint64_t round = 0; round < 6; ++round) {
    auto clock = std::make_shared<VirtualClock>();
    auto policy = CreatePolicy("EDF");
    ASSERT_TRUE(policy.ok()) << policy.status();
    Executor exec(std::move(policy).ValueOrDie(),
                  RaceOptions(clock, 77 + round));

    clock->RegisterParticipant();
    constexpr size_t kTasks = 48;
    for (size_t i = 0; i < kTasks; ++i) {
      clock->SleepUntil(0.01 * static_cast<double>(i + 1), nullptr);
      ASSERT_TRUE(exec.Submit(RaceTask(i)).ok());
    }
    // Let the fault timeline chew on the backlog, then pull the plug at
    // a round-dependent instant.
    clock->SleepUntil(0.6 + 0.07 * static_cast<double>(round), nullptr);
    exec.ShutdownNow();
    clock->DeregisterParticipant();

    ExpectTerminalPartition(exec, kTasks);
  }
}

TEST(ExecutorWatchdogRaceTest, GracefulShutdownDrainsThroughStalls) {
  // Shutdown() (drain-everything semantics) issued while stalls hold
  // slots down: the drain can only finish through watchdog failovers
  // and retry releases, so a lost wakeup or leaked delayed entry shows
  // up as a hang here.
  for (uint64_t round = 0; round < 4; ++round) {
    auto clock = std::make_shared<VirtualClock>();
    auto policy = CreatePolicy("SRPT");
    ASSERT_TRUE(policy.ok()) << policy.status();
    Executor exec(std::move(policy).ValueOrDie(),
                  RaceOptions(clock, 200 + round));

    clock->RegisterParticipant();
    constexpr size_t kTasks = 32;
    for (size_t i = 0; i < kTasks; ++i) {
      clock->SleepUntil(0.015 * static_cast<double>(i + 1), nullptr);
      ASSERT_TRUE(exec.Submit(RaceTask(i)).ok());
    }
    exec.Shutdown();  // full drain: every task reaches a terminal fate
    clock->DeregisterParticipant();

    ExpectTerminalPartition(exec, kTasks);
    const ExecutorStats stats = exec.stats();
    EXPECT_EQ(stats.shed_shutdown, 0u) << "graceful drain must not shed";
  }
}

TEST(ExecutorWatchdogRaceTest, SpectatorsObserveTornDownExecutor) {
  // Unregistered reader threads hammer the stats surface while the
  // fault traffic runs and the driver shuts down hard — the classic
  // reader-vs-teardown data-race shape tsan is here to audit.
  auto clock = std::make_shared<VirtualClock>();
  auto policy = CreatePolicy("EDF");
  ASSERT_TRUE(policy.ok()) << policy.status();
  Executor exec(std::move(policy).ValueOrDie(), RaceOptions(clock, 31));

  std::atomic<bool> stop{false};
  std::vector<std::thread> spectators;
  for (int s = 0; s < 3; ++s) {
    spectators.emplace_back([&] {
      size_t last_finished = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t finished = exec.finished_count();
        EXPECT_GE(finished, last_finished) << "finished_count regressed";
        last_finished = finished;
        (void)exec.stats();
        std::this_thread::yield();
      }
    });
  }

  clock->RegisterParticipant();
  constexpr size_t kTasks = 40;
  for (size_t i = 0; i < kTasks; ++i) {
    clock->SleepUntil(0.01 * static_cast<double>(i + 1), nullptr);
    ASSERT_TRUE(exec.Submit(RaceTask(i)).ok());
  }
  clock->SleepUntil(0.8, nullptr);
  exec.ShutdownNow();
  clock->DeregisterParticipant();

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& s : spectators) s.join();
  ExpectTerminalPartition(exec, kTasks);
}

}  // namespace
}  // namespace webtx::rt
