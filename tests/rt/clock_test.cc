// rt::Clock unit tests: RealClock wall-clock semantics and the
// VirtualClock's quiescence model — time stands still while any
// registered participant is runnable and jumps to the earliest blocked
// due once all are blocked. The VirtualClockTest suite also runs under
// the `tsan` CMake preset (see CMakePresets.json), auditing the clock's
// own synchronization.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include <gtest/gtest.h>

#include "rt/clock.h"

namespace webtx::rt {
namespace {

TEST(RealClockTest, NowIsMonotoneFromZero) {
  RealClock clock;
  const double t0 = clock.Now();
  EXPECT_GE(t0, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GE(clock.Now(), t0);
}

TEST(RealClockTest, SleepUntilReturnsAtOrAfterDue) {
  RealClock clock;
  const double due = clock.Now() + 0.02;
  clock.SleepUntil(due, nullptr);
  EXPECT_GE(clock.Now(), due);
}

TEST(RealClockTest, SleepUntilInThePastReturnsImmediately) {
  RealClock clock;
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double before = clock.Now();
  clock.SleepUntil(0.0, nullptr);
  // No fixed upper bound on a wall clock, but the past-due sleep must
  // not wait for anything.
  EXPECT_GE(clock.Now(), before);
}

TEST(RealClockTest, WaitUntilWakesByTheDeadline) {
  RealClock clock;
  std::mutex mu;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lock(mu);
  const double due = clock.Now() + 0.02;
  while (clock.Now() < due) clock.WaitUntil(lock, cv, due);
  EXPECT_GE(clock.Now(), due);
}

TEST(RealClockTest, DefaultCancelTokenNeverCancels) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.CancelledAt(1e18));
}

TEST(VirtualClockTest, StartsAtZeroAndAdvanceToMovesNow) {
  VirtualClock clock;
  EXPECT_EQ(clock.Now(), 0.0);
  clock.AdvanceTo(5.0);
  EXPECT_EQ(clock.Now(), 5.0);
  clock.AdvanceTo(5.0);  // no-op re-advance to the same instant
  EXPECT_EQ(clock.Now(), 5.0);
}

TEST(VirtualClockTest, SoleParticipantSleepJumpsToItsDue) {
  VirtualClock clock;
  clock.RegisterParticipant();
  clock.SleepUntil(3.0, nullptr);
  EXPECT_EQ(clock.Now(), 3.0);
  clock.SleepUntil(1.0, nullptr);  // already past: returns in place
  EXPECT_EQ(clock.Now(), 3.0);
  clock.DeregisterParticipant();
}

TEST(VirtualClockTest, SleepersWakeInTimestampOrder) {
  VirtualClock clock;
  std::atomic<double> early_wake{-1.0};
  std::atomic<double> late_wake{-1.0};
  std::thread early([&] {
    clock.RegisterParticipant();
    clock.SleepUntil(1.0, nullptr);
    early_wake.store(clock.Now());
    clock.DeregisterParticipant();
  });
  std::thread late([&] {
    clock.RegisterParticipant();
    clock.SleepUntil(2.0, nullptr);
    late_wake.store(clock.Now());
    clock.DeregisterParticipant();
  });
  early.join();
  late.join();
  EXPECT_EQ(early_wake.load(), 1.0);
  EXPECT_EQ(late_wake.load(), 2.0);
  EXPECT_EQ(clock.Now(), 2.0);
}

TEST(VirtualClockTest, RunnableParticipantHoldsTheTimeline) {
  VirtualClock clock;
  clock.RegisterParticipant();
  std::atomic<double> worker_wake{-1.0};
  std::thread worker([&] {
    clock.RegisterParticipant();
    clock.SleepUntil(1.0, nullptr);
    worker_wake.store(clock.Now());
    clock.DeregisterParticipant();
  });
  // Main is registered and runnable: virtual time must not move no
  // matter how long the host takes.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(clock.Now(), 0.0);
  // Main blocks with the earlier due: the advance stops there first.
  clock.SleepUntil(0.5, nullptr);
  EXPECT_EQ(clock.Now(), 0.5);
  clock.DeregisterParticipant();  // frees the worker to advance to 1.0
  worker.join();
  EXPECT_EQ(worker_wake.load(), 1.0);
}

TEST(VirtualClockTest, ObserverSleepersDoNotGateTheAdvance) {
  VirtualClock clock;
  std::atomic<double> observer_wake{-1.0};
  std::thread observer([&] {
    // Unregistered: polls until its due passes, gates nothing.
    clock.SleepUntil(1.0, nullptr);
    observer_wake.store(clock.Now());
  });
  clock.RegisterParticipant();
  clock.SleepUntil(2.0, nullptr);  // advances despite the observer
  EXPECT_EQ(clock.Now(), 2.0);
  clock.DeregisterParticipant();
  observer.join();
  EXPECT_GE(observer_wake.load(), 1.0);
}

TEST(VirtualClockTest, WaitUntilAdvancesToOwnDueWhenAllBlocked) {
  VirtualClock clock;
  clock.RegisterParticipant();
  std::mutex mu;
  std::condition_variable cv;
  std::unique_lock<std::mutex> lock(mu);
  while (clock.Now() < 3.0) clock.WaitUntil(lock, cv, 3.0);
  EXPECT_EQ(clock.Now(), 3.0);
  clock.DeregisterParticipant();
}

TEST(VirtualClockTest, NotifiedWaiterResumesAtTheCurrentInstant) {
  // The epoch-gating regression test: a NotifyAll-woken waiter is
  // runnable at the CURRENT time even while it waits to reacquire the
  // caller's mutex. Without the per-cv wake epochs the clock would see
  // it still "blocked" and advance the notifier's sleep first,
  // timestamping the waiter's work at 10.0 by host-scheduling luck.
  VirtualClock clock;
  std::mutex mu;
  std::condition_variable cv;
  bool flag = false;
  std::atomic<double> waiter_wake{-1.0};

  clock.RegisterParticipant();
  std::thread waiter([&] {
    clock.RegisterParticipant();
    {
      std::unique_lock<std::mutex> lock(mu);
      while (!flag) clock.WaitUntil(lock, cv, kNeverSeconds);
      waiter_wake.store(clock.Now());
    }
    clock.DeregisterParticipant();
  });
  // Let the waiter park (wall time only; main is runnable, so the
  // virtual clock cannot move).
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  {
    std::lock_guard<std::mutex> lock(mu);
    flag = true;
  }
  clock.NotifyAll(cv);
  clock.SleepUntil(10.0, nullptr);
  EXPECT_EQ(clock.Now(), 10.0);
  clock.DeregisterParticipant();
  waiter.join();
  EXPECT_EQ(waiter_wake.load(), 0.0);
}

TEST(VirtualClockTest, InterruptSleepersIsTransparentWithoutTokens) {
  // Token-less sleepers re-examine nothing and go back to sleep; the
  // interrupt must neither wake them early nor wedge the timeline.
  VirtualClock clock;
  std::atomic<double> sleeper_wake{-1.0};
  std::thread sleeper([&] {
    clock.RegisterParticipant();
    clock.SleepUntil(5.0, nullptr);
    sleeper_wake.store(clock.Now());
    clock.DeregisterParticipant();
  });
  clock.RegisterParticipant();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  clock.InterruptSleepers();
  clock.SleepUntil(5.0, nullptr);
  clock.DeregisterParticipant();
  sleeper.join();
  EXPECT_EQ(sleeper_wake.load(), 5.0);
  EXPECT_EQ(clock.Now(), 5.0);
}

TEST(VirtualClockTest, AdvanceToInterleavedWithSleepsStaysMonotone) {
  // Manual AdvanceTo calls interleave with participant sleeps on one
  // monotone timeline: same-instant re-advances are no-ops and a rewind
  // is an invariant violation (CHECK), never a silent time warp.
  VirtualClock clock;
  clock.RegisterParticipant();
  clock.AdvanceTo(2.0);
  EXPECT_EQ(clock.Now(), 2.0);
  clock.SleepUntil(4.0, nullptr);
  EXPECT_EQ(clock.Now(), 4.0);
  clock.AdvanceTo(4.0);  // same-instant re-advance: no-op
  EXPECT_EQ(clock.Now(), 4.0);
  clock.SleepUntil(4.0, nullptr);  // sleep to "now": returns in place
  EXPECT_EQ(clock.Now(), 4.0);
  clock.AdvanceTo(5.0);
  EXPECT_EQ(clock.Now(), 5.0);
  EXPECT_DEATH(clock.AdvanceTo(3.0), "CHECK failed");  // stale rewind
  clock.DeregisterParticipant();
}

TEST(VirtualClockTest, ZeroDurationSleepDoesNotAdvanceTheTimeline) {
  // A sleep due exactly at Now() (the twin driver's arrival-at-tick
  // boundary case) completes without moving time — for a registered
  // participant and for an unregistered observer alike.
  VirtualClock clock;
  clock.RegisterParticipant();
  clock.SleepUntil(1.5, nullptr);
  EXPECT_EQ(clock.Now(), 1.5);
  clock.SleepUntil(1.5, nullptr);
  EXPECT_EQ(clock.Now(), 1.5);
  clock.DeregisterParticipant();
  clock.SleepUntil(1.5, nullptr);  // unregistered, due == now
  EXPECT_EQ(clock.Now(), 1.5);
}

TEST(VirtualClockTest, TiedSleepersAllWakeAtTheSharedInstant) {
  // Several participants blocked on the SAME due: one advance serves
  // them all, every waker observes exactly the tied instant, and the
  // clock does not overshoot it.
  constexpr int kSleepers = 4;
  VirtualClock clock;
  std::atomic<int> woke_at_tie{0};
  std::vector<std::thread> threads;
  threads.reserve(kSleepers);
  for (int t = 0; t < kSleepers; ++t) {
    threads.emplace_back([&] {
      clock.RegisterParticipant();
      clock.SleepUntil(2.5, nullptr);
      if (clock.Now() == 2.5) woke_at_tie.fetch_add(1);
      clock.DeregisterParticipant();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(woke_at_tie.load(), kSleepers);
  EXPECT_EQ(clock.Now(), 2.5);
}

TEST(VirtualClockTest, TieBetweenSleepAndLaterDueRespectsOrder) {
  // A tie at t=1 between two sleepers must not leapfrog a third blocked
  // strictly later: the earliest due always wins the advance. The main
  // thread holds the clock as a registered-but-awake participant until
  // all three sleepers are registered — otherwise the late sleeper
  // could briefly be the only participant and legally advance to 7.
  VirtualClock clock;
  std::atomic<int> registered{0};
  std::atomic<double> late_wake{-1.0};
  std::atomic<int> early_wakes_at_one{0};
  clock.RegisterParticipant();
  std::thread late([&] {
    clock.RegisterParticipant();
    registered.fetch_add(1);
    clock.SleepUntil(7.0, nullptr);
    late_wake.store(clock.Now());
    clock.DeregisterParticipant();
  });
  std::vector<std::thread> tied;
  for (int t = 0; t < 2; ++t) {
    tied.emplace_back([&] {
      clock.RegisterParticipant();
      registered.fetch_add(1);
      clock.SleepUntil(1.0, nullptr);
      if (clock.Now() == 1.0) early_wakes_at_one.fetch_add(1);
      clock.DeregisterParticipant();
    });
  }
  while (registered.load() < 3) std::this_thread::yield();
  clock.DeregisterParticipant();  // release the timeline
  for (std::thread& t : tied) t.join();
  EXPECT_EQ(early_wakes_at_one.load(), 2);
  late.join();
  EXPECT_EQ(late_wake.load(), 7.0);
}

TEST(VirtualClockTest, ManyParticipantsConvergeOnTheSameTimeline) {
  // Stress shape for tsan: N participants ping-pong through staggered
  // sleeps; every thread must observe exactly its own due instants.
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  VirtualClock clock;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      clock.RegisterParticipant();
      for (int round = 0; round < kRounds; ++round) {
        const double due =
            static_cast<double>(round) + 0.01 * static_cast<double>(t + 1);
        clock.SleepUntil(due, nullptr);
        if (clock.Now() < due) failures.fetch_add(1);
      }
      clock.DeregisterParticipant();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(clock.Now(),
            static_cast<double>(kRounds - 1) + 0.01 * kThreads);
}

}  // namespace
}  // namespace webtx::rt
