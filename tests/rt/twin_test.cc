// Digital-twin serving loop unit tests (rt/twin.h): option validation,
// deterministic end-to-end service, the control-tick grid, and
// decision/counter agreement. Heavier randomized coverage (fallbacks,
// corruption, campaigns) lives in exp/twin_chaos_test.cc.

#include "rt/twin.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "workload/live_arrivals.h"

namespace webtx {
namespace {

std::vector<LiveArrival> FeasiblePoisson(size_t num_tasks = 40) {
  LiveArrivalOptions options;
  options.shape = LiveArrivalShape::kPoisson;
  options.seed = 7;
  options.num_tasks = num_tasks;
  options.rate = 20.0;         // 2 workers x 0.05s mean = 50% utilization
  options.mean_duration = 0.05;
  options.deadline_slack = 3.0;
  return GenerateLiveArrivals(options);
}

rt::TwinOptions TwoCandidateOptions() {
  rt::TwinOptions options;
  options.num_workers = 2;
  rt::TwinCandidate fcfs;
  rt::TwinCandidate edf;
  edf.policy = "EDF";
  options.candidates = {fcfs, edf};
  options.control_interval = 0.2;
  options.forecast_horizon = 0.4;
  return options;
}

TEST(TwinTest, RejectsInvalidOptions) {
  const std::vector<LiveArrival> arrivals = FeasiblePoisson(5);

  rt::TwinOptions no_candidates = TwoCandidateOptions();
  no_candidates.candidates.clear();
  EXPECT_FALSE(rt::Twin(no_candidates).Run(arrivals).ok());

  rt::TwinOptions bad_static = TwoCandidateOptions();
  bad_static.static_index = 2;
  EXPECT_FALSE(rt::Twin(bad_static).Run(arrivals).ok());

  rt::TwinOptions bad_policy = TwoCandidateOptions();
  bad_policy.candidates[1].policy = "NOT_A_POLICY";
  EXPECT_FALSE(rt::Twin(bad_policy).Run(arrivals).ok());

  rt::TwinOptions no_workers = TwoCandidateOptions();
  no_workers.num_workers = 0;
  EXPECT_FALSE(rt::Twin(no_workers).Run(arrivals).ok());

  rt::TwinOptions bad_corruption = TwoCandidateOptions();
  bad_corruption.snapshot_corruption = 0.0;
  EXPECT_FALSE(rt::Twin(bad_corruption).Run(arrivals).ok());

  rt::TwinOptions bad_slo = TwoCandidateOptions();
  bad_slo.candidates[1].admission = rt::TwinCandidate::Admission::kBrownout;
  bad_slo.candidates[1].capacity_slo = 1.5;
  EXPECT_FALSE(rt::Twin(bad_slo).Run(arrivals).ok());
}

TEST(TwinTest, ControllerOffServesEverythingDeterministically) {
  const std::vector<LiveArrival> arrivals = FeasiblePoisson();
  rt::TwinOptions options = TwoCandidateOptions();
  options.controller_enabled = false;

  auto first = rt::Twin(options).Run(arrivals);
  auto second = rt::Twin(options).Run(arrivals);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  const rt::TwinReport& report = first.ValueOrDie();
  EXPECT_EQ(report.digest, second.ValueOrDie().digest);
  EXPECT_TRUE(report.decisions.empty());
  EXPECT_EQ(report.switches, 0u);
  EXPECT_EQ(report.fallbacks, 0u);
  EXPECT_EQ(report.final_config, options.static_index);
  // Feasible load, no faults: everything completes.
  EXPECT_EQ(report.stats.completed, arrivals.size());
  EXPECT_DOUBLE_EQ(report.goodput, 1.0);
  EXPECT_DOUBLE_EQ(report.shed_ratio, 0.0);
  const rt::LiveValidationResult verdict =
      rt::ValidateLiveTrace(report.trace, report.tasks, report.outcomes,
                            report.stats, report.validator_options);
  EXPECT_TRUE(verdict.ok()) << verdict.violations.front();
}

TEST(TwinTest, DecisionsLandOnTheControlTickGrid) {
  const std::vector<LiveArrival> arrivals = FeasiblePoisson();
  const rt::TwinOptions options = TwoCandidateOptions();
  auto run = rt::Twin(options).Run(arrivals);
  ASSERT_TRUE(run.ok()) << run.status();
  const rt::TwinReport& report = run.ValueOrDie();
  ASSERT_FALSE(report.decisions.empty());
  double prev = -1.0;
  for (const rt::TwinDecision& d : report.decisions) {
    EXPECT_GT(d.time, prev);
    prev = d.time;
    // Every decision sits on a multiple of the control interval: ticks
    // happen at quiescent points of the exact scheduled instant (the
    // driver freezes the virtual clock while the controller thinks).
    const double ticks = d.time / options.control_interval;
    EXPECT_NEAR(ticks, std::round(ticks), 1e-9) << "at t=" << d.time;
    EXPECT_LT(d.applied, options.candidates.size());
    EXPECT_LT(d.best, options.candidates.size());
  }
}

TEST(TwinTest, DecisionLogAgreesWithTheCounters) {
  LiveArrivalOptions load;
  load.shape = LiveArrivalShape::kFlashCrowd;
  load.seed = 13;
  load.num_tasks = 120;
  load.rate = 30.0;
  load.spike_factor = 8.0;
  load.spike_start = 0.5;
  load.spike_duration = 0.8;
  load.mean_duration = 0.05;
  const std::vector<LiveArrival> arrivals = GenerateLiveArrivals(load);

  rt::TwinOptions options = TwoCandidateOptions();
  options.candidates[1].policy = "SRPT";
  options.dwell_ticks = 1;
  auto run = rt::Twin(options).Run(arrivals);
  ASSERT_TRUE(run.ok()) << run.status();
  const rt::TwinReport& report = run.ValueOrDie();

  size_t switches = 0;
  size_t fallbacks = 0;
  uint32_t applied = static_cast<uint32_t>(options.static_index);
  for (const rt::TwinDecision& d : report.decisions) {
    if (d.kind == rt::TwinDecision::Kind::kSwitch) ++switches;
    if (d.kind == rt::TwinDecision::Kind::kFallback) ++fallbacks;
    applied = d.applied;
  }
  EXPECT_EQ(report.switches, switches);
  EXPECT_EQ(report.fallbacks, fallbacks);
  EXPECT_EQ(report.final_config, applied);
  // Counters cross-check the stats: completed + sheds cover the batch.
  EXPECT_EQ(report.stats.submitted, arrivals.size());
  EXPECT_NEAR(report.goodput + report.shed_ratio, 1.0, 1e-12);
}

// ---------------------------------------------------------------------
// TwinForecastEngine: the decision-loop cost knobs (parallel fan-out,
// pooled warm-start shadow sims, structure selection, pruning) must be
// digest-neutral — same decisions, same trace, byte-identical report.

std::vector<LiveArrival> FlashCrowdArrivals() {
  LiveArrivalOptions load;
  load.shape = LiveArrivalShape::kFlashCrowd;
  load.seed = 13;
  load.num_tasks = 120;
  load.rate = 30.0;
  load.spike_factor = 8.0;
  load.spike_start = 0.5;
  load.spike_duration = 0.8;
  load.mean_duration = 0.05;
  return GenerateLiveArrivals(load);
}

/// Four candidates so successive halving actually halves.
rt::TwinOptions FourCandidateOptions() {
  rt::TwinOptions options = TwoCandidateOptions();
  rt::TwinCandidate srpt;
  srpt.policy = "SRPT";
  srpt.admission = rt::TwinCandidate::Admission::kQueueDepth;
  srpt.max_ready = 24;
  rt::TwinCandidate edf_brownout;
  edf_brownout.policy = "EDF";
  edf_brownout.admission = rt::TwinCandidate::Admission::kBrownout;
  edf_brownout.capacity_slo = 0.5;
  options.candidates.push_back(srpt);
  options.candidates.push_back(edf_brownout);
  options.dwell_ticks = 1;
  return options;
}

TEST(TwinForecastEngineTest, RejectsBadPrunePrefix) {
  const std::vector<LiveArrival> arrivals = FeasiblePoisson(5);
  for (const double bad : {0.0, -0.5, 1.5}) {
    rt::TwinOptions options = FourCandidateOptions();
    options.prune = true;
    options.prune_prefix = bad;
    EXPECT_FALSE(rt::Twin(options).Run(arrivals).ok()) << bad;
  }
  // The knob is ignored (and unvalidated) while pruning is off.
  rt::TwinOptions off = FourCandidateOptions();
  off.prune_prefix = 1.5;
  EXPECT_TRUE(rt::Twin(off).Run(arrivals).ok());
}

TEST(TwinForecastEngineTest, ParallelForecastsAreByteIdentical) {
  const std::vector<LiveArrival> arrivals = FlashCrowdArrivals();
  rt::TwinOptions options = FourCandidateOptions();
  uint64_t serial_digest = 0;
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    options.forecast_threads = threads;
    auto run = rt::Twin(options).Run(arrivals);
    ASSERT_TRUE(run.ok()) << run.status();
    const rt::TwinReport& report = run.ValueOrDie();
    ASSERT_FALSE(report.decisions.empty());
    EXPECT_GT(report.decision_stats.forecasts_run, 0u);
    if (threads == 1) {
      serial_digest = report.digest;
    } else {
      EXPECT_EQ(report.digest, serial_digest) << "threads=" << threads;
    }
  }
}

TEST(TwinForecastEngineTest, PooledMatchesRebuiltByteForByte) {
  const std::vector<LiveArrival> arrivals = FlashCrowdArrivals();
  rt::TwinOptions options = FourCandidateOptions();
  options.pooled_forecasts = false;
  auto rebuilt = rt::Twin(options).Run(arrivals);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
  options.pooled_forecasts = true;
  auto pooled = rt::Twin(options).Run(arrivals);
  ASSERT_TRUE(pooled.ok()) << pooled.status();
  EXPECT_EQ(pooled.ValueOrDie().digest, rebuilt.ValueOrDie().digest);
  EXPECT_GT(pooled.ValueOrDie().switches + pooled.ValueOrDie().fallbacks, 0u)
      << "flash crowd should exercise the controller";
}

TEST(TwinForecastEngineTest, StructureKnobsAreByteIdentical) {
  // Regression for wiring SimOptions::pending_queue / txn_store through
  // TwinOptions: the calendar-queue + arena-SoA twin must reproduce the
  // heap + spec-vector twin exactly on the committed flash-crowd
  // scenario, pooled or not.
  const std::vector<LiveArrival> arrivals = FlashCrowdArrivals();
  rt::TwinOptions options = FourCandidateOptions();
  auto baseline = rt::Twin(options).Run(arrivals);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  for (const bool pooled : {true, false}) {
    rt::TwinOptions alt = options;
    alt.pooled_forecasts = pooled;
    alt.pending_queue = PendingQueueImpl::kCalendarQueue;
    alt.txn_store = TxnStoreLayout::kArenaSoA;
    auto run = rt::Twin(alt).Run(arrivals);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run.ValueOrDie().digest, baseline.ValueOrDie().digest)
        << "pooled=" << pooled;
  }
}

TEST(TwinForecastEngineTest, PruneKeepsTheWinnerOnTheCommittedScenario) {
  // Successive halving is only digest-preserving when the prefix
  // ranking keeps the eventual winner; this differential pins that on
  // the committed flash-crowd scenario at several prefix lengths.
  const std::vector<LiveArrival> arrivals = FlashCrowdArrivals();
  rt::TwinOptions options = FourCandidateOptions();
  auto unpruned = rt::Twin(options).Run(arrivals);
  ASSERT_TRUE(unpruned.ok()) << unpruned.status();
  // Mid-length prefixes (0.4-0.55) flip the prefix ranking on this
  // scenario and are intentionally absent: prune may legally change
  // decisions there, so the pinned set is the digest-preserving one.
  for (const double prefix : {0.25, 0.35, 0.6}) {
    rt::TwinOptions pruned = options;
    pruned.prune = true;
    pruned.prune_prefix = prefix;
    auto run = rt::Twin(pruned).Run(arrivals);
    ASSERT_TRUE(run.ok()) << run.status();
    const rt::TwinReport& report = run.ValueOrDie();
    EXPECT_EQ(report.digest, unpruned.ValueOrDie().digest)
        << "prune_prefix=" << prefix;
    // With 4 candidates, halving skips up to 2 full-horizon forecasts
    // per forecasting tick.
    EXPECT_GT(report.decision_stats.forecasts_pruned, 0u);
    EXPECT_LT(report.decision_stats.forecasts_run,
              unpruned.ValueOrDie().decision_stats.forecasts_run);
  }
}

TEST(TwinForecastEngineTest, ReportsDecisionLoopCost) {
  const std::vector<LiveArrival> arrivals = FlashCrowdArrivals();
  rt::TwinOptions options = FourCandidateOptions();
  auto run = rt::Twin(options).Run(arrivals);
  ASSERT_TRUE(run.ok()) << run.status();
  const rt::TwinDecisionStats& stats = run.ValueOrDie().decision_stats;
  // Forecasting ticks ran every candidate at the full horizon.
  EXPECT_GT(stats.forecasts_run, 0u);
  EXPECT_EQ(stats.forecasts_run % options.candidates.size(), 0u);
  EXPECT_EQ(stats.forecasts_pruned, 0u);  // prune off by default
  EXPECT_GT(stats.forecast_events, 0u);
  EXPECT_GE(stats.decision_ms, 0.0);

  // The controller-off twin never builds an engine: all-zero stats.
  rt::TwinOptions off = options;
  off.controller_enabled = false;
  auto static_run = rt::Twin(off).Run(arrivals);
  ASSERT_TRUE(static_run.ok()) << static_run.status();
  EXPECT_EQ(static_run.ValueOrDie().decision_stats.forecasts_run, 0u);
  EXPECT_EQ(static_run.ValueOrDie().decision_stats.forecast_events, 0u);
}

}  // namespace
}  // namespace webtx
