// Digital-twin serving loop unit tests (rt/twin.h): option validation,
// deterministic end-to-end service, the control-tick grid, and
// decision/counter agreement. Heavier randomized coverage (fallbacks,
// corruption, campaigns) lives in exp/twin_chaos_test.cc.

#include "rt/twin.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "workload/live_arrivals.h"

namespace webtx {
namespace {

std::vector<LiveArrival> FeasiblePoisson(size_t num_tasks = 40) {
  LiveArrivalOptions options;
  options.shape = LiveArrivalShape::kPoisson;
  options.seed = 7;
  options.num_tasks = num_tasks;
  options.rate = 20.0;         // 2 workers x 0.05s mean = 50% utilization
  options.mean_duration = 0.05;
  options.deadline_slack = 3.0;
  return GenerateLiveArrivals(options);
}

rt::TwinOptions TwoCandidateOptions() {
  rt::TwinOptions options;
  options.num_workers = 2;
  rt::TwinCandidate fcfs;
  rt::TwinCandidate edf;
  edf.policy = "EDF";
  options.candidates = {fcfs, edf};
  options.control_interval = 0.2;
  options.forecast_horizon = 0.4;
  return options;
}

TEST(TwinTest, RejectsInvalidOptions) {
  const std::vector<LiveArrival> arrivals = FeasiblePoisson(5);

  rt::TwinOptions no_candidates = TwoCandidateOptions();
  no_candidates.candidates.clear();
  EXPECT_FALSE(rt::Twin(no_candidates).Run(arrivals).ok());

  rt::TwinOptions bad_static = TwoCandidateOptions();
  bad_static.static_index = 2;
  EXPECT_FALSE(rt::Twin(bad_static).Run(arrivals).ok());

  rt::TwinOptions bad_policy = TwoCandidateOptions();
  bad_policy.candidates[1].policy = "NOT_A_POLICY";
  EXPECT_FALSE(rt::Twin(bad_policy).Run(arrivals).ok());

  rt::TwinOptions no_workers = TwoCandidateOptions();
  no_workers.num_workers = 0;
  EXPECT_FALSE(rt::Twin(no_workers).Run(arrivals).ok());

  rt::TwinOptions bad_corruption = TwoCandidateOptions();
  bad_corruption.snapshot_corruption = 0.0;
  EXPECT_FALSE(rt::Twin(bad_corruption).Run(arrivals).ok());

  rt::TwinOptions bad_slo = TwoCandidateOptions();
  bad_slo.candidates[1].admission = rt::TwinCandidate::Admission::kBrownout;
  bad_slo.candidates[1].capacity_slo = 1.5;
  EXPECT_FALSE(rt::Twin(bad_slo).Run(arrivals).ok());
}

TEST(TwinTest, ControllerOffServesEverythingDeterministically) {
  const std::vector<LiveArrival> arrivals = FeasiblePoisson();
  rt::TwinOptions options = TwoCandidateOptions();
  options.controller_enabled = false;

  auto first = rt::Twin(options).Run(arrivals);
  auto second = rt::Twin(options).Run(arrivals);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  const rt::TwinReport& report = first.ValueOrDie();
  EXPECT_EQ(report.digest, second.ValueOrDie().digest);
  EXPECT_TRUE(report.decisions.empty());
  EXPECT_EQ(report.switches, 0u);
  EXPECT_EQ(report.fallbacks, 0u);
  EXPECT_EQ(report.final_config, options.static_index);
  // Feasible load, no faults: everything completes.
  EXPECT_EQ(report.stats.completed, arrivals.size());
  EXPECT_DOUBLE_EQ(report.goodput, 1.0);
  EXPECT_DOUBLE_EQ(report.shed_ratio, 0.0);
  const rt::LiveValidationResult verdict =
      rt::ValidateLiveTrace(report.trace, report.tasks, report.outcomes,
                            report.stats, report.validator_options);
  EXPECT_TRUE(verdict.ok()) << verdict.violations.front();
}

TEST(TwinTest, DecisionsLandOnTheControlTickGrid) {
  const std::vector<LiveArrival> arrivals = FeasiblePoisson();
  const rt::TwinOptions options = TwoCandidateOptions();
  auto run = rt::Twin(options).Run(arrivals);
  ASSERT_TRUE(run.ok()) << run.status();
  const rt::TwinReport& report = run.ValueOrDie();
  ASSERT_FALSE(report.decisions.empty());
  double prev = -1.0;
  for (const rt::TwinDecision& d : report.decisions) {
    EXPECT_GT(d.time, prev);
    prev = d.time;
    // Every decision sits on a multiple of the control interval: ticks
    // happen at quiescent points of the exact scheduled instant (the
    // driver freezes the virtual clock while the controller thinks).
    const double ticks = d.time / options.control_interval;
    EXPECT_NEAR(ticks, std::round(ticks), 1e-9) << "at t=" << d.time;
    EXPECT_LT(d.applied, options.candidates.size());
    EXPECT_LT(d.best, options.candidates.size());
  }
}

TEST(TwinTest, DecisionLogAgreesWithTheCounters) {
  LiveArrivalOptions load;
  load.shape = LiveArrivalShape::kFlashCrowd;
  load.seed = 13;
  load.num_tasks = 120;
  load.rate = 30.0;
  load.spike_factor = 8.0;
  load.spike_start = 0.5;
  load.spike_duration = 0.8;
  load.mean_duration = 0.05;
  const std::vector<LiveArrival> arrivals = GenerateLiveArrivals(load);

  rt::TwinOptions options = TwoCandidateOptions();
  options.candidates[1].policy = "SRPT";
  options.dwell_ticks = 1;
  auto run = rt::Twin(options).Run(arrivals);
  ASSERT_TRUE(run.ok()) << run.status();
  const rt::TwinReport& report = run.ValueOrDie();

  size_t switches = 0;
  size_t fallbacks = 0;
  uint32_t applied = static_cast<uint32_t>(options.static_index);
  for (const rt::TwinDecision& d : report.decisions) {
    if (d.kind == rt::TwinDecision::Kind::kSwitch) ++switches;
    if (d.kind == rt::TwinDecision::Kind::kFallback) ++fallbacks;
    applied = d.applied;
  }
  EXPECT_EQ(report.switches, switches);
  EXPECT_EQ(report.fallbacks, fallbacks);
  EXPECT_EQ(report.final_config, applied);
  // Counters cross-check the stats: completed + sheds cover the batch.
  EXPECT_EQ(report.stats.submitted, arrivals.size());
  EXPECT_NEAR(report.goodput + report.shed_ratio, 1.0, 1e-12);
}

}  // namespace
}  // namespace webtx
