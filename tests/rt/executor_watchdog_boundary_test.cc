// Watchdog detection-boundary regression (rt/executor.cc
// PumpTimedEventsLocked): a stall that ends EXACTLY at the watchdog's
// detection deadline must not fail the attempt over — the kStallEnd
// fault event applies before due stall watches at the shared instant,
// disarming the watch, and the slot_down() re-check backstops it. The
// same timeline with a strictly shorter detection delay must fail over
// exactly once: the boundary is the discriminator, never a double count
// (one stall producing both a failover and a recovered attempt).

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "rt/clock.h"
#include "rt/executor.h"
#include "rt/fault_injector.h"
#include "sched/policy_factory.h"

namespace webtx::rt {
namespace {

/// Outage-only fault stream: stalls are the only timed events.
FaultInjectorOptions OutageOnly(uint64_t seed) {
  FaultInjectorOptions faults;
  faults.plan.outage_rate = 0.5;
  faults.plan.mean_outage_duration = 0.3;
  faults.plan.seed = seed;
  return faults;
}

struct StallWindow {
  uint64_t seed = 0;
  double start = 0.0;
  double end = 0.0;
  double next_start = 0.0;  // following stall (gap after `end`)
};

/// Scans seeded single-slot fault timelines for a first stall window
/// usable as an exact boundary probe: late enough to dispatch a task
/// before it, an isolation gap after it, and — the fussy part — a
/// length that reconstructs its own end exactly in double arithmetic
/// (start + (end - start) == end), so `watchdog_stall_seconds =
/// end - start` puts the detection deadline EXACTLY on the stall end.
StallWindow FindBoundaryWindow() {
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    auto injector = FaultInjector::Create(OutageOnly(seed), 1);
    if (!injector.ok()) continue;
    std::vector<FaultInjector::Event> events;
    injector.ValueOrDie().CollectEventsUpTo(50.0, &events);
    StallWindow window;
    window.seed = seed;
    for (const FaultInjector::Event& event : events) {
      if (event.kind == FaultInjector::Event::Kind::kStallStart) {
        if (window.start == 0.0) {
          window.start = event.time;
        } else if (window.end > 0.0) {
          window.next_start = event.time;
          break;
        }
      } else if (event.kind == FaultInjector::Event::Kind::kStallEnd &&
                 window.start > 0.0 && window.end == 0.0) {
        window.end = event.time;
      }
    }
    if (window.start < 0.2 || window.end <= window.start) continue;
    if (window.next_start <= window.end + 0.1) continue;
    const double length = window.end - window.start;
    if (window.start + length != window.end) continue;  // FP misalignment
    return window;
  }
  return {};
}

/// One simulated task dispatched before the stall opens and completing
/// in the isolation gap after it closes, so the stall window is spent
/// entirely under this single in-flight attempt.
ExecutorStats RunThroughWindow(const StallWindow& window,
                               double watchdog_stall_seconds,
                               TaskOutcome* outcome) {
  auto clock = std::make_shared<VirtualClock>();
  ExecutorOptions options;
  options.num_workers = 1;
  options.clock = clock;
  options.faults = OutageOnly(window.seed);
  options.watchdog = true;
  options.watchdog_stall_seconds = watchdog_stall_seconds;
  auto policy = CreatePolicy("FCFS");
  EXPECT_TRUE(policy.ok()) << policy.status();
  Executor exec(std::move(policy).ValueOrDie(), options);

  const double submit_at = window.start / 2.0;
  const double finish_at =
      window.end + std::min(0.05, (window.next_start - window.end) / 2.0);
  clock->RegisterParticipant();
  clock->SleepUntil(submit_at, nullptr);
  TaskSpec task;
  task.relative_deadline = finish_at;  // generous: tardiness not at issue
  task.estimated_cost = finish_at - submit_at;
  task.simulated_duration = finish_at - submit_at;
  auto id = exec.Submit(std::move(task));
  EXPECT_TRUE(id.ok()) << id.status();
  exec.Shutdown();  // full drain: the task reaches a terminal fate
  clock->DeregisterParticipant();
  *outcome = exec.OutcomeOf(id.ValueOrDie());
  return exec.stats();
}

TEST(ExecutorWatchdogBoundaryTest, StallEndingExactlyAtDeadlineIsNotFailedOver) {
  const StallWindow window = FindBoundaryWindow();
  ASSERT_GT(window.end, window.start) << "no usable seeded stall window";

  TaskOutcome outcome;
  const ExecutorStats stats =
      RunThroughWindow(window, window.end - window.start, &outcome);
  // The recovery and the detection deadline share one instant: the
  // attempt rides the stall out — no failover, no migration, and above
  // all no double count of the one stall.
  EXPECT_GE(stats.stalls, 1u);
  EXPECT_EQ(stats.watchdog_failovers, 0u);
  EXPECT_EQ(stats.migrations, 0u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(outcome.result, TaskResult::kCompleted);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_EQ(outcome.migrations, 0u);
}

TEST(ExecutorWatchdogBoundaryTest, StrictlyShorterDeadlineFailsOverOnce) {
  const StallWindow window = FindBoundaryWindow();
  ASSERT_GT(window.end, window.start) << "no usable seeded stall window";

  TaskOutcome outcome;
  const ExecutorStats stats = RunThroughWindow(
      window, (window.end - window.start) / 2.0, &outcome);
  // Same timeline, detection strictly inside the window: exactly one
  // watchdog failover, and the task still completes after re-dispatch.
  EXPECT_EQ(stats.watchdog_failovers, 1u);
  EXPECT_EQ(stats.migrations, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(outcome.result, TaskResult::kCompleted);
  EXPECT_EQ(outcome.migrations, 1u);
}

}  // namespace
}  // namespace webtx::rt
