// rt::ValidateLiveTrace unit tests. The validator is the chaos
// campaign's judge, so it has to (a) accept a genuine fault-seasoned
// executor run and (b) notice tampering with any of its inputs — a
// validator that cannot flag a corrupted trace would make the 200-case
// campaigns vacuous. Real runs come from the live chaos harness; the
// tamper tests mutate copies of one run.

#include <vector>

#include <gtest/gtest.h>

#include "exp/live_chaos.h"
#include "rt/live_trace.h"
#include "rt/live_validator.h"

namespace webtx {
namespace {

using rt::LiveEventKind;
using rt::LiveTraceEvent;
using rt::LiveValidationResult;
using rt::LiveValidatorOptions;

/// Fault-seasoned scenario: stalls (watchdog traffic), crashes
/// (failovers), forced aborts, timeouts, and retry backoff all active.
LiveChaosCase SeasonedCase() {
  LiveChaosCase c;
  c.workload_seed = 21;
  c.num_tasks = 60;
  c.mean_interarrival = 0.02;
  c.mean_duration = 0.08;
  c.deadline_slack = 2.0;
  c.timeout_prob = 0.2;
  c.num_workers = 3;
  c.policy = "EDF";
  c.fault.outage_rate = 0.8;
  c.fault.mean_outage_duration = 0.3;
  c.fault.crash_rate = 0.6;
  c.fault.mean_repair_duration = 0.4;
  c.fault.abort_rate = 0.3;
  c.fault.seed = 7;
  c.latency_spike_prob = 0.2;
  c.mean_latency_spike = 0.03;
  c.retry_max_attempts = 3;
  c.retry_backoff = 0.05;
  c.retry_backoff_multiplier = 2.0;
  c.retry_max_backoff = 0.1;
  c.watchdog = true;
  c.watchdog_stall_seconds = 0.05;
  return c;
}

LiveValidatorOptions OptionsFor(const LiveChaosCase& c) {
  LiveValidatorOptions options;
  options.watchdog = c.watchdog;
  options.watchdog_stall_seconds = c.watchdog_stall_seconds;
  options.retry_max_backoff = c.retry_max_backoff;
  return options;
}

LiveValidationResult Validate(const LiveChaosRun& run,
                              const LiveValidatorOptions& options) {
  return rt::ValidateLiveTrace(run.trace, run.tasks, run.outcomes, run.stats,
                               options);
}

class LiveValidatorTest : public ::testing::Test {
 protected:
  /// One shared genuine run; each test mutates its own copy.
  static void SetUpTestSuite() {
    auto run = RunLiveChaosCase(SeasonedCase());
    ASSERT_TRUE(run.ok()) << run.status();
    run_ = new LiveChaosRun(std::move(run).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete run_;
    run_ = nullptr;
  }

  static const LiveChaosRun& run() { return *run_; }

 private:
  static LiveChaosRun* run_;
};

LiveChaosRun* LiveValidatorTest::run_ = nullptr;

TEST_F(LiveValidatorTest, GenuineFaultSeasonedRunValidates) {
  // The scenario must actually exercise the machinery the validator
  // judges, or the acceptance below proves nothing.
  ASSERT_GT(run().stats.crashes, 0u);
  ASSERT_GT(run().stats.stalls, 0u);
  ASSERT_GT(run().stats.watchdog_failovers, 0u);
  ASSERT_GT(run().stats.retries_scheduled, 0u);

  const LiveValidationResult result =
      Validate(run(), OptionsFor(SeasonedCase()));
  EXPECT_TRUE(result.ok()) << result.violations.front();
  EXPECT_EQ(run().digest, rt::LiveTraceDigest(run().trace));
}

TEST_F(LiveValidatorTest, MissingTerminalEventIsFlagged) {
  LiveChaosRun tampered = run();
  for (size_t i = tampered.trace.size(); i-- > 0;) {
    if (tampered.trace[i].kind == LiveEventKind::kTerminal) {
      tampered.trace.erase(tampered.trace.begin() +
                           static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  EXPECT_FALSE(Validate(tampered, OptionsFor(SeasonedCase())).ok());
}

TEST_F(LiveValidatorTest, DuplicatedTerminalEventIsFlagged) {
  LiveChaosRun tampered = run();
  for (const LiveTraceEvent& event : run().trace) {
    if (event.kind == LiveEventKind::kTerminal) {
      tampered.trace.push_back(event);
      break;
    }
  }
  ASSERT_GT(tampered.trace.size(), run().trace.size());
  EXPECT_FALSE(Validate(tampered, OptionsFor(SeasonedCase())).ok());
}

TEST_F(LiveValidatorTest, InflatedCompletionCounterIsFlagged) {
  LiveChaosRun tampered = run();
  tampered.stats.completed += 1;
  EXPECT_FALSE(Validate(tampered, OptionsFor(SeasonedCase())).ok());
}

TEST_F(LiveValidatorTest, InflatedAttemptAccountingIsFlagged) {
  LiveChaosRun tampered = run();
  for (rt::TaskOutcome& outcome : tampered.outcomes) {
    if (outcome.finished && outcome.result == rt::TaskResult::kCompleted) {
      outcome.attempts += 1;
      break;
    }
  }
  EXPECT_FALSE(Validate(tampered, OptionsFor(SeasonedCase())).ok());
}

TEST_F(LiveValidatorTest, TamperedTardinessIsFlagged) {
  LiveChaosRun tampered = run();
  for (rt::TaskOutcome& outcome : tampered.outcomes) {
    if (outcome.finished && outcome.result == rt::TaskResult::kCompleted) {
      outcome.tardiness_seconds += 1.0;
      break;
    }
  }
  EXPECT_FALSE(Validate(tampered, OptionsFor(SeasonedCase())).ok());
}

TEST_F(LiveValidatorTest, WatchdogFailoversRequireTheWatchdogOption) {
  // The genuine run contains stall failovers; auditing it under
  // "watchdog disabled" options must reject them.
  ASSERT_GT(run().stats.watchdog_failovers, 0u);
  LiveValidatorOptions options = OptionsFor(SeasonedCase());
  options.watchdog = false;
  EXPECT_FALSE(Validate(run(), options).ok());
}

}  // namespace
}  // namespace webtx
