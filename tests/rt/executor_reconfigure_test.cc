// Quiescent-point introspection and online reconfiguration
// (Executor::SnapshotAtQuiescence / Executor::Reconfigure): the
// executor-side half of the digital-twin serving loop (rt/twin.h). A
// snapshot must expose every unfinished task with an honest state /
// residual, and a reconfiguration must swap the policy (and admission
// controller) without losing queued or in-flight work.

#include "rt/executor.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sched/admission.h"
#include "sched/policy_factory.h"

namespace webtx::rt {
namespace {

std::unique_ptr<SchedulerPolicy> Policy(const std::string& name) {
  auto policy = CreatePolicy(name);
  EXPECT_TRUE(policy.ok()) << policy.status();
  return std::move(policy).ValueOrDie();
}

TaskSpec Quick(std::function<void()> fn, double deadline = 5.0,
               double weight = 1.0, std::vector<TxnId> deps = {}) {
  TaskSpec task;
  task.relative_deadline = deadline;
  task.weight = weight;
  task.estimated_cost = 0.001;
  task.dependencies = std::move(deps);
  task.fn = std::move(fn);
  return task;
}

/// A task that spins until `gate` opens — holds its slot so the test
/// can inspect / reconfigure around a pinned in-flight attempt.
TaskSpec Blocker(std::atomic<bool>& gate, std::atomic<bool>* started = nullptr,
                 double deadline = 5.0) {
  return Quick(
      [&gate, started] {
        if (started != nullptr) started->store(true);
        while (!gate.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      },
      deadline);
}

TEST(ExecutorReconfigureTest, SnapshotOfIdleExecutorIsEmpty) {
  ExecutorOptions options;
  options.num_workers = 3;
  Executor executor(Policy("EDF"), options);
  const ExecutorSnapshot snap = executor.SnapshotAtQuiescence();
  EXPECT_EQ(snap.num_workers, 3u);
  EXPECT_EQ(snap.num_workers_up, 3u);
  EXPECT_TRUE(snap.tasks.empty());
  EXPECT_EQ(snap.stats.submitted, 0u);
  executor.Drain();
}

TEST(ExecutorReconfigureTest, SnapshotSeesEveryUnfinishedTaskState) {
  std::atomic<bool> gate{false};
  std::atomic<bool> started{false};
  ExecutorOptions options;
  options.num_workers = 1;
  Executor executor(Policy("FCFS"), options);

  auto blocker = executor.Submit(Blocker(gate, &started));
  ASSERT_TRUE(blocker.ok());
  auto queued = executor.Submit(Quick([] {}));
  ASSERT_TRUE(queued.ok());
  auto dependent =
      executor.Submit(Quick([] {}, 5.0, 1.0, {queued.ValueOrDie()}));
  ASSERT_TRUE(dependent.ok());
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const ExecutorSnapshot snap = executor.SnapshotAtQuiescence();
  ASSERT_EQ(snap.tasks.size(), 3u);
  // Ascending id, per the contract.
  EXPECT_EQ(snap.tasks[0].id, blocker.ValueOrDie());
  EXPECT_EQ(snap.tasks[0].state, SnapshotTaskState::kInFlight);
  EXPECT_EQ(snap.tasks[1].id, queued.ValueOrDie());
  EXPECT_EQ(snap.tasks[1].state, SnapshotTaskState::kReady);
  EXPECT_EQ(snap.tasks[2].id, dependent.ValueOrDie());
  EXPECT_EQ(snap.tasks[2].state, SnapshotTaskState::kWaitingDeps);
  ASSERT_EQ(snap.tasks[2].unfinished_dependencies.size(), 1u);
  EXPECT_EQ(snap.tasks[2].unfinished_dependencies[0], queued.ValueOrDie());
  // Residuals and deadlines are sane: positive remaining, absolute
  // deadlines at or after the snapshot instant minus nothing (they were
  // submitted with generous relative deadlines).
  for (const SnapshotTask& task : snap.tasks) {
    EXPECT_GT(task.remaining, 0.0);
    EXPECT_GE(task.deadline, snap.now);
    EXPECT_GE(task.release, snap.now);
  }

  gate.store(true);
  executor.Drain();
  // After the drain everything finished: a fresh snapshot is empty.
  EXPECT_TRUE(executor.SnapshotAtQuiescence().tasks.empty());
  executor.Shutdown();
}

TEST(ExecutorReconfigureTest, ReconfigurePolicyReordersQueuedWork) {
  // Under FCFS the three queued tasks would run 1, 2, 3; switching to
  // EDF while they wait must re-rank them by deadline: 2, 3, 1.
  std::vector<int> order;
  std::mutex order_mu;
  std::atomic<bool> gate{false};
  std::atomic<bool> started{false};
  ExecutorOptions options;
  options.num_workers = 1;
  Executor executor(Policy("FCFS"), options);
  ASSERT_TRUE(executor.Submit(Blocker(gate, &started)).ok());
  const auto record = [&](int tag) {
    return [&, tag] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
  };
  ASSERT_TRUE(executor.Submit(Quick(record(1), /*deadline=*/30.0)).ok());
  ASSERT_TRUE(executor.Submit(Quick(record(2), /*deadline=*/10.0)).ok());
  ASSERT_TRUE(executor.Submit(Quick(record(3), /*deadline=*/20.0)).ok());
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  ReconfigureRequest request;
  request.policy = Policy("EDF");
  executor.Reconfigure(std::move(request));

  gate.store(true);
  executor.Drain();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
  executor.Shutdown();
}

TEST(ExecutorReconfigureTest, ReconfigureSwapsTheAdmissionController) {
  // Start with a depth-1 cap: with the worker pinned and one task
  // already queued, the next root arrival is shed at the door. Dropping
  // the controller via Reconfigure re-opens the gate.
  std::atomic<bool> gate{false};
  std::atomic<bool> started{false};
  ExecutorOptions options;
  options.num_workers = 1;
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 1;
  options.admission = MakeQueueDepthAdmission(depth);
  Executor executor(Policy("FCFS"), options);

  ASSERT_TRUE(executor.Submit(Blocker(gate, &started)).ok());
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto queued = executor.Submit(Quick([] {}));
  ASSERT_TRUE(queued.ok());
  auto shed = executor.Submit(Quick([] {}));
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(executor.OutcomeOf(shed.ValueOrDie()).result,
            TaskResult::kShedAdmission);

  ReconfigureRequest request;
  request.replace_admission = true;  // null admission: admit everything
  executor.Reconfigure(std::move(request));
  auto admitted = executor.Submit(Quick([] {}));
  ASSERT_TRUE(admitted.ok());

  gate.store(true);
  executor.Drain();
  EXPECT_EQ(executor.OutcomeOf(queued.ValueOrDie()).result,
            TaskResult::kCompleted);
  EXPECT_EQ(executor.OutcomeOf(admitted.ValueOrDie()).result,
            TaskResult::kCompleted);
  executor.Shutdown();
}

TEST(ExecutorReconfigureTest, ReconfigureKeepsInFlightWorkAndOutcomes) {
  // The pinned attempt rides through a policy swap untouched and still
  // completes; nothing is double-counted.
  std::atomic<bool> gate{false};
  std::atomic<bool> started{false};
  ExecutorOptions options;
  options.num_workers = 2;
  Executor executor(Policy("SRPT"), options);
  auto blocker = executor.Submit(Blocker(gate, &started));
  ASSERT_TRUE(blocker.ok());
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ReconfigureRequest request;
  request.policy = Policy("HDF");
  executor.Reconfigure(std::move(request));

  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(executor.Submit(Quick([&] { ++counter; })).ok());
  }
  gate.store(true);
  executor.Drain();
  EXPECT_EQ(counter.load(), 10);
  EXPECT_EQ(executor.finished_count(), 11u);
  EXPECT_EQ(executor.OutcomeOf(blocker.ValueOrDie()).result,
            TaskResult::kCompleted);
  EXPECT_EQ(executor.OutcomeOf(blocker.ValueOrDie()).attempts, 1u);
  executor.Shutdown();
}

}  // namespace
}  // namespace webtx::rt
