// rt::FaultInjector unit tests: the live executor's fault event source
// must be a deterministic, time-ordered reinterpretation of the
// simulator's seeded per-server streams — same seed, same slot count,
// same event list, every run. The executor's replay digests inherit
// exactly this property.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "rt/fault_injector.h"

namespace webtx::rt {
namespace {

using Event = FaultInjector::Event;

FaultInjectorOptions BusyOptions(uint64_t seed) {
  FaultInjectorOptions options;
  options.plan.outage_rate = 0.3;
  options.plan.mean_outage_duration = 0.5;
  options.plan.abort_rate = 0.2;
  options.plan.crash_rate = 0.15;
  options.plan.mean_repair_duration = 0.8;
  options.plan.seed = seed;
  options.latency_spike_prob = 0.5;
  options.mean_latency_spike = 0.1;
  return options;
}

std::vector<Event> DrainUpTo(FaultInjector& injector, double horizon) {
  std::vector<Event> events;
  injector.CollectEventsUpTo(horizon, &events);
  return events;
}

TEST(FaultInjectorTest, CreateRejectsInvalidConfigurations) {
  FaultInjectorOptions bad_prob = BusyOptions(1);
  bad_prob.latency_spike_prob = 1.5;
  EXPECT_FALSE(FaultInjector::Create(bad_prob, 2).ok());

  FaultInjectorOptions no_mean = BusyOptions(1);
  no_mean.mean_latency_spike = 0.0;
  EXPECT_FALSE(FaultInjector::Create(no_mean, 2).ok());

  FaultInjectorOptions bad_plan = BusyOptions(1);
  bad_plan.plan.crash_rate = 0.1;
  bad_plan.plan.mean_repair_duration = 0.0;  // FaultPlan::Create rejects
  EXPECT_FALSE(FaultInjector::Create(bad_plan, 2).ok());

  EXPECT_FALSE(FaultInjector::Create(BusyOptions(1), 0).ok());
  EXPECT_TRUE(FaultInjector::Create(BusyOptions(1), 3).ok());
}

TEST(FaultInjectorTest, EventStreamIsDeterministic) {
  auto a = FaultInjector::Create(BusyOptions(42), 3);
  auto b = FaultInjector::Create(BusyOptions(42), 3);
  ASSERT_TRUE(a.ok() && b.ok());

  const std::vector<Event> ea = DrainUpTo(a.ValueOrDie(), 200.0);
  const std::vector<Event> eb = DrainUpTo(b.ValueOrDie(), 200.0);
  ASSERT_FALSE(ea.empty()) << "horizon too short to exercise the streams";
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].time, eb[i].time);
    EXPECT_EQ(ea[i].kind, eb[i].kind);
    EXPECT_EQ(ea[i].slot, eb[i].slot);
  }

  // The per-slot spike streams replay identically too.
  for (uint32_t slot = 0; slot < 3; ++slot) {
    for (int draw = 0; draw < 16; ++draw) {
      EXPECT_EQ(a.ValueOrDie().DrawLatencySpike(slot),
                b.ValueOrDie().DrawLatencySpike(slot));
    }
  }
}

TEST(FaultInjectorTest, EventsAreOrderedAndSlotStateTracksThem) {
  // One pass collects the full list; a second injector steps through it
  // instant by instant while the test mirrors the per-slot stall/crash
  // state. slot_down / slot_crashed / num_slots_up must agree with the
  // mirror after every instant, and each channel must alternate
  // open/close per slot.
  FaultInjectorOptions options = BusyOptions(7);
  constexpr size_t kSlots = 3;
  auto first = FaultInjector::Create(options, kSlots);
  ASSERT_TRUE(first.ok());
  const std::vector<Event> events = DrainUpTo(first.ValueOrDie(), 300.0);
  ASSERT_GT(events.size(), 20u);

  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time) << "out of order at " << i;
  }

  auto second = FaultInjector::Create(options, kSlots);
  ASSERT_TRUE(second.ok());
  FaultInjector& injector = second.ValueOrDie();
  bool stalled[kSlots] = {false, false, false};
  bool crashed[kSlots] = {false, false, false};
  size_t next = 0;
  while (next < events.size()) {
    const double instant = events[next].time;
    std::vector<Event> got;
    injector.CollectEventsUpTo(instant, &got);
    for (const Event& e : got) {
      ASSERT_LT(e.slot, kSlots);
      switch (e.kind) {
        case Event::Kind::kStallStart:
          EXPECT_FALSE(stalled[e.slot]) << "stall did not alternate";
          stalled[e.slot] = true;
          break;
        case Event::Kind::kStallEnd:
          EXPECT_TRUE(stalled[e.slot]) << "stall end without start";
          stalled[e.slot] = false;
          break;
        case Event::Kind::kCrash:
          EXPECT_FALSE(crashed[e.slot]) << "crash did not alternate";
          crashed[e.slot] = true;
          break;
        case Event::Kind::kRepair:
          EXPECT_TRUE(crashed[e.slot]) << "repair without crash";
          crashed[e.slot] = false;
          break;
        case Event::Kind::kAbort:
          break;  // instant, no slot state
      }
      ++next;
    }
    size_t up = 0;
    for (size_t slot = 0; slot < kSlots; ++slot) {
      EXPECT_EQ(injector.slot_down(slot), stalled[slot] || crashed[slot]);
      EXPECT_EQ(injector.slot_crashed(slot), crashed[slot]);
      if (!(stalled[slot] || crashed[slot])) ++up;
    }
    EXPECT_EQ(injector.num_slots_up(), up);
  }
  EXPECT_EQ(injector.num_slots(), kSlots);
}

TEST(FaultInjectorTest, NextEventTimeIsTheNextCollectableInstant) {
  auto created = FaultInjector::Create(BusyOptions(11), 2);
  ASSERT_TRUE(created.ok());
  FaultInjector& injector = created.ValueOrDie();

  const double t0 = injector.NextEventTime();
  ASSERT_LT(t0, kNeverTime);
  std::vector<Event> events;
  injector.CollectEventsUpTo(std::nextafter(t0, 0.0), &events);
  EXPECT_TRUE(events.empty()) << "event surfaced before NextEventTime";
  injector.CollectEventsUpTo(t0, &events);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().time, t0);
  // The horizon moved strictly forward.
  EXPECT_GT(injector.NextEventTime(), t0);
}

TEST(FaultInjectorTest, LatencySpikesRespectProbabilityEdges) {
  FaultInjectorOptions always = BusyOptions(3);
  always.latency_spike_prob = 1.0;
  auto hot = FaultInjector::Create(always, 2);
  ASSERT_TRUE(hot.ok());
  for (int draw = 0; draw < 32; ++draw) {
    EXPECT_GT(hot.ValueOrDie().DrawLatencySpike(0), 0.0);
  }

  FaultInjectorOptions never = BusyOptions(3);
  never.latency_spike_prob = 0.0;
  never.mean_latency_spike = 0.0;
  auto cold = FaultInjector::Create(never, 2);
  ASSERT_TRUE(cold.ok());
  for (int draw = 0; draw < 32; ++draw) {
    EXPECT_EQ(cold.ValueOrDie().DrawLatencySpike(1), 0.0);
  }
}

TEST(FaultInjectorTest, SpikeStreamsAreIndependentPerSlot) {
  auto created = FaultInjector::Create(BusyOptions(5), 2);
  ASSERT_TRUE(created.ok());
  FaultInjector& injector = created.ValueOrDie();
  bool differs = false;
  for (int draw = 0; draw < 16 && !differs; ++draw) {
    differs = injector.DrawLatencySpike(0) != injector.DrawLatencySpike(1);
  }
  EXPECT_TRUE(differs) << "slots share a spike stream";
}

TEST(FaultInjectorTest, CorrelatedCrashesFellCoVictimsAtOneInstant) {
  FaultInjectorOptions options;
  options.plan.crash_rate = 0.2;
  options.plan.mean_repair_duration = 0.5;
  options.plan.correlated_crash_prob = 1.0;
  options.plan.seed = 9;
  auto created = FaultInjector::Create(options, 4);
  ASSERT_TRUE(created.ok());
  const std::vector<Event> events = DrainUpTo(created.ValueOrDie(), 100.0);

  bool saw_group = false;
  for (size_t i = 0; i + 1 < events.size() && !saw_group; ++i) {
    saw_group = events[i].kind == Event::Kind::kCrash &&
                events[i + 1].kind == Event::Kind::kCrash &&
                events[i].time == events[i + 1].time &&
                events[i].slot != events[i + 1].slot;
  }
  EXPECT_TRUE(saw_group) << "no correlated crash group in 100s";
}

}  // namespace
}  // namespace webtx::rt
