#include "rt/executor.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sched/policy_factory.h"

namespace webtx::rt {
namespace {

std::unique_ptr<SchedulerPolicy> Policy(const std::string& name) {
  auto policy = CreatePolicy(name);
  EXPECT_TRUE(policy.ok()) << policy.status();
  return std::move(policy).ValueOrDie();
}

TaskSpec Quick(std::function<void()> fn, double deadline = 5.0,
               double weight = 1.0, std::vector<TxnId> deps = {}) {
  TaskSpec task;
  task.relative_deadline = deadline;
  task.weight = weight;
  task.estimated_cost = 0.001;
  task.dependencies = std::move(deps);
  task.fn = std::move(fn);
  return task;
}

TEST(ExecutorTest, RunsASubmittedTask) {
  std::atomic<int> counter{0};
  Executor executor(Policy("EDF"), {});
  auto id = executor.Submit(Quick([&] { ++counter; }));
  ASSERT_TRUE(id.ok()) << id.status();
  executor.Drain();
  EXPECT_EQ(counter.load(), 1);
  const TaskOutcome outcome = executor.OutcomeOf(id.ValueOrDie());
  EXPECT_TRUE(outcome.finished);
  EXPECT_GE(outcome.finish_seconds, outcome.submit_seconds);
  EXPECT_EQ(executor.finished_count(), 1u);
}

TEST(ExecutorTest, RunsManyTasksOnMultipleWorkers) {
  std::atomic<int> counter{0};
  ExecutorOptions options;
  options.num_workers = 4;
  Executor executor(Policy("ASETS"), options);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(executor.Submit(Quick([&] { ++counter; })).ok());
  }
  executor.Drain();
  EXPECT_EQ(counter.load(), 200);
  EXPECT_EQ(executor.finished_count(), 200u);
}

TEST(ExecutorTest, DependenciesRunInOrder) {
  std::vector<int> order;
  std::mutex order_mu;
  const auto record = [&](int step) {
    return [&, step] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(step);
    };
  };
  ExecutorOptions options;
  options.num_workers = 3;
  Executor executor(Policy("EDF"), options);
  auto a = executor.Submit(Quick(record(0)));
  ASSERT_TRUE(a.ok());
  auto b = executor.Submit(Quick(record(1), 5.0, 1.0, {a.ValueOrDie()}));
  ASSERT_TRUE(b.ok());
  auto c = executor.Submit(Quick(record(2), 5.0, 1.0, {b.ValueOrDie()}));
  ASSERT_TRUE(c.ok());
  executor.Drain();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ExecutorTest, PolicyOrdersQueuedWork) {
  // One slow task occupies the single worker while three more queue up;
  // EDF must then run them by deadline, not submission order.
  std::vector<int> order;
  std::mutex order_mu;
  std::atomic<bool> gate{false};
  Executor executor(Policy("EDF"), {});
  ASSERT_TRUE(executor
                  .Submit(Quick([&] {
                    while (!gate.load()) {
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(1));
                    }
                  }))
                  .ok());
  const auto record = [&](int tag) {
    return [&, tag] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
  };
  ASSERT_TRUE(executor.Submit(Quick(record(1), /*deadline=*/30.0)).ok());
  ASSERT_TRUE(executor.Submit(Quick(record(2), /*deadline=*/10.0)).ok());
  ASSERT_TRUE(executor.Submit(Quick(record(3), /*deadline=*/20.0)).ok());
  gate.store(true);
  executor.Drain();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(ExecutorTest, HvfRunsHeavierTasksFirst) {
  std::vector<int> order;
  std::mutex order_mu;
  std::atomic<bool> gate{false};
  Executor executor(Policy("HVF"), {});
  ASSERT_TRUE(executor
                  .Submit(Quick([&] {
                    while (!gate.load()) {
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(1));
                    }
                  }))
                  .ok());
  const auto record = [&](int tag) {
    return [&, tag] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
  };
  ASSERT_TRUE(executor.Submit(Quick(record(1), 5.0, /*weight=*/1.0)).ok());
  ASSERT_TRUE(executor.Submit(Quick(record(2), 5.0, /*weight=*/9.0)).ok());
  ASSERT_TRUE(executor.Submit(Quick(record(3), 5.0, /*weight=*/4.0)).ok());
  gate.store(true);
  executor.Drain();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(ExecutorTest, TasksCanSubmitMoreTasks) {
  std::atomic<int> counter{0};
  Executor executor(Policy("SRPT"), {});
  std::atomic<Executor*> self{&executor};
  ASSERT_TRUE(executor
                  .Submit(Quick([&] {
                    ++counter;
                    for (int i = 0; i < 5; ++i) {
                      ASSERT_TRUE(
                          self.load()->Submit(Quick([&] { ++counter; }))
                              .ok());
                    }
                  }))
                  .ok());
  executor.Drain();
  EXPECT_EQ(counter.load(), 6);
}

TEST(ExecutorTest, SubmitValidation) {
  Executor executor(Policy("EDF"), {});
  TaskSpec no_fn;
  EXPECT_FALSE(executor.Submit(no_fn).ok());

  TaskSpec bad_cost = Quick([] {});
  bad_cost.estimated_cost = 0.0;
  EXPECT_FALSE(executor.Submit(bad_cost).ok());

  TaskSpec bad_dep = Quick([] {});
  bad_dep.dependencies = {42};
  EXPECT_FALSE(executor.Submit(bad_dep).ok());
}

TEST(ExecutorTest, SubmitAfterShutdownFails) {
  Executor executor(Policy("EDF"), {});
  executor.Shutdown();
  EXPECT_EQ(executor.Submit(Quick([] {})).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ExecutorTest, TardinessMeasuredOnRealClock) {
  Executor executor(Policy("EDF"), {});
  auto id = executor.Submit(Quick(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(30)); },
      /*deadline=*/0.005));
  ASSERT_TRUE(id.ok());
  executor.Drain();
  const TaskOutcome outcome = executor.OutcomeOf(id.ValueOrDie());
  EXPECT_GT(outcome.tardiness_seconds, 0.0);
}

TEST(ExecutorTest, ShutdownDrainsPendingWork) {
  std::atomic<int> counter{0};
  auto executor = std::make_unique<Executor>(Policy("ASETS"), ExecutorOptions{});
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(executor->Submit(Quick([&] { ++counter; })).ok());
  }
  executor->Shutdown();
  EXPECT_EQ(counter.load(), 50);
  executor.reset();  // destructor after Shutdown is a no-op
}

TEST(ExecutorTest, DependencyOnAlreadyFinishedTaskIsImmediatelyReady) {
  std::atomic<int> counter{0};
  Executor executor(Policy("EDF"), {});
  auto first = executor.Submit(Quick([&] { ++counter; }));
  ASSERT_TRUE(first.ok());
  executor.Drain();
  auto second =
      executor.Submit(Quick([&] { ++counter; }, 5.0, 1.0,
                            {first.ValueOrDie()}));
  ASSERT_TRUE(second.ok()) << second.status();
  executor.Drain();
  EXPECT_EQ(counter.load(), 2);
}

}  // namespace
}  // namespace webtx::rt
