#include "rt/executor.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sched/policy_factory.h"

namespace webtx::rt {
namespace {

std::unique_ptr<SchedulerPolicy> Policy(const std::string& name) {
  auto policy = CreatePolicy(name);
  EXPECT_TRUE(policy.ok()) << policy.status();
  return std::move(policy).ValueOrDie();
}

TaskSpec Quick(std::function<void()> fn, double deadline = 5.0,
               double weight = 1.0, std::vector<TxnId> deps = {}) {
  TaskSpec task;
  task.relative_deadline = deadline;
  task.weight = weight;
  task.estimated_cost = 0.001;
  task.dependencies = std::move(deps);
  task.fn = std::move(fn);
  return task;
}

TEST(ExecutorTest, RunsASubmittedTask) {
  std::atomic<int> counter{0};
  Executor executor(Policy("EDF"), {});
  auto id = executor.Submit(Quick([&] { ++counter; }));
  ASSERT_TRUE(id.ok()) << id.status();
  executor.Drain();
  EXPECT_EQ(counter.load(), 1);
  const TaskOutcome outcome = executor.OutcomeOf(id.ValueOrDie());
  EXPECT_TRUE(outcome.finished);
  EXPECT_GE(outcome.finish_seconds, outcome.submit_seconds);
  EXPECT_EQ(executor.finished_count(), 1u);
}

TEST(ExecutorTest, RunsManyTasksOnMultipleWorkers) {
  std::atomic<int> counter{0};
  ExecutorOptions options;
  options.num_workers = 4;
  Executor executor(Policy("ASETS"), options);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(executor.Submit(Quick([&] { ++counter; })).ok());
  }
  executor.Drain();
  EXPECT_EQ(counter.load(), 200);
  EXPECT_EQ(executor.finished_count(), 200u);
}

TEST(ExecutorTest, DependenciesRunInOrder) {
  std::vector<int> order;
  std::mutex order_mu;
  const auto record = [&](int step) {
    return [&, step] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(step);
    };
  };
  ExecutorOptions options;
  options.num_workers = 3;
  Executor executor(Policy("EDF"), options);
  auto a = executor.Submit(Quick(record(0)));
  ASSERT_TRUE(a.ok());
  auto b = executor.Submit(Quick(record(1), 5.0, 1.0, {a.ValueOrDie()}));
  ASSERT_TRUE(b.ok());
  auto c = executor.Submit(Quick(record(2), 5.0, 1.0, {b.ValueOrDie()}));
  ASSERT_TRUE(c.ok());
  executor.Drain();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ExecutorTest, PolicyOrdersQueuedWork) {
  // One slow task occupies the single worker while three more queue up;
  // EDF must then run them by deadline, not submission order.
  std::vector<int> order;
  std::mutex order_mu;
  std::atomic<bool> gate{false};
  Executor executor(Policy("EDF"), {});
  ASSERT_TRUE(executor
                  .Submit(Quick([&] {
                    while (!gate.load()) {
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(1));
                    }
                  }))
                  .ok());
  const auto record = [&](int tag) {
    return [&, tag] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
  };
  ASSERT_TRUE(executor.Submit(Quick(record(1), /*deadline=*/30.0)).ok());
  ASSERT_TRUE(executor.Submit(Quick(record(2), /*deadline=*/10.0)).ok());
  ASSERT_TRUE(executor.Submit(Quick(record(3), /*deadline=*/20.0)).ok());
  gate.store(true);
  executor.Drain();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(ExecutorTest, HvfRunsHeavierTasksFirst) {
  std::vector<int> order;
  std::mutex order_mu;
  std::atomic<bool> gate{false};
  Executor executor(Policy("HVF"), {});
  ASSERT_TRUE(executor
                  .Submit(Quick([&] {
                    while (!gate.load()) {
                      std::this_thread::sleep_for(
                          std::chrono::milliseconds(1));
                    }
                  }))
                  .ok());
  const auto record = [&](int tag) {
    return [&, tag] {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
  };
  ASSERT_TRUE(executor.Submit(Quick(record(1), 5.0, /*weight=*/1.0)).ok());
  ASSERT_TRUE(executor.Submit(Quick(record(2), 5.0, /*weight=*/9.0)).ok());
  ASSERT_TRUE(executor.Submit(Quick(record(3), 5.0, /*weight=*/4.0)).ok());
  gate.store(true);
  executor.Drain();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(ExecutorTest, TasksCanSubmitMoreTasks) {
  std::atomic<int> counter{0};
  Executor executor(Policy("SRPT"), {});
  std::atomic<Executor*> self{&executor};
  ASSERT_TRUE(executor
                  .Submit(Quick([&] {
                    ++counter;
                    for (int i = 0; i < 5; ++i) {
                      ASSERT_TRUE(
                          self.load()->Submit(Quick([&] { ++counter; }))
                              .ok());
                    }
                  }))
                  .ok());
  executor.Drain();
  EXPECT_EQ(counter.load(), 6);
}

TEST(ExecutorTest, SubmitValidation) {
  Executor executor(Policy("EDF"), {});
  TaskSpec no_fn;
  EXPECT_FALSE(executor.Submit(no_fn).ok());

  TaskSpec bad_cost = Quick([] {});
  bad_cost.estimated_cost = 0.0;
  EXPECT_FALSE(executor.Submit(bad_cost).ok());

  TaskSpec bad_dep = Quick([] {});
  bad_dep.dependencies = {42};
  EXPECT_FALSE(executor.Submit(bad_dep).ok());
}

TEST(ExecutorTest, SubmitAfterShutdownFails) {
  Executor executor(Policy("EDF"), {});
  executor.Shutdown();
  EXPECT_EQ(executor.Submit(Quick([] {})).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(ExecutorTest, TardinessMeasuredOnRealClock) {
  Executor executor(Policy("EDF"), {});
  auto id = executor.Submit(Quick(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(30)); },
      /*deadline=*/0.005));
  ASSERT_TRUE(id.ok());
  executor.Drain();
  const TaskOutcome outcome = executor.OutcomeOf(id.ValueOrDie());
  EXPECT_GT(outcome.tardiness_seconds, 0.0);
}

TEST(ExecutorTest, ShutdownDrainsPendingWork) {
  std::atomic<int> counter{0};
  auto executor = std::make_unique<Executor>(Policy("ASETS"), ExecutorOptions{});
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(executor->Submit(Quick([&] { ++counter; })).ok());
  }
  executor->Shutdown();
  EXPECT_EQ(counter.load(), 50);
  executor.reset();  // destructor after Shutdown is a no-op
}

TEST(ExecutorTest, DependencyOnAlreadyFinishedTaskIsImmediatelyReady) {
  std::atomic<int> counter{0};
  Executor executor(Policy("EDF"), {});
  auto first = executor.Submit(Quick([&] { ++counter; }));
  ASSERT_TRUE(first.ok());
  executor.Drain();
  auto second =
      executor.Submit(Quick([&] { ++counter; }, 5.0, 1.0,
                            {first.ValueOrDie()}));
  ASSERT_TRUE(second.ok()) << second.status();
  executor.Drain();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ExecutorTest, ThrowingTaskFailsButTheWorkerSurvives) {
  std::atomic<int> counter{0};
  Executor executor(Policy("EDF"), {});
  auto bad = executor.Submit(Quick([] { throw std::runtime_error("boom"); }));
  ASSERT_TRUE(bad.ok());
  executor.Drain();
  const TaskOutcome outcome = executor.OutcomeOf(bad.ValueOrDie());
  EXPECT_TRUE(outcome.finished);
  EXPECT_EQ(outcome.result, TaskResult::kFailed);
  EXPECT_EQ(outcome.attempts, 1u);
  // The worker thread must have survived the exception.
  auto good = executor.Submit(Quick([&] { ++counter; }));
  ASSERT_TRUE(good.ok());
  executor.Drain();
  EXPECT_EQ(counter.load(), 1);
  EXPECT_EQ(executor.OutcomeOf(good.ValueOrDie()).result,
            TaskResult::kCompleted);
}

TEST(ExecutorTest, FailedAttemptsAreRetriedUpToTheBudget) {
  std::atomic<int> calls{0};
  Executor executor(Policy("EDF"), {});
  TaskSpec task = Quick([&] {
    if (calls.fetch_add(1) < 2) throw std::runtime_error("transient");
  });
  task.max_attempts = 5;
  auto id = executor.Submit(std::move(task));
  ASSERT_TRUE(id.ok());
  executor.Drain();
  EXPECT_EQ(calls.load(), 3);
  const TaskOutcome outcome = executor.OutcomeOf(id.ValueOrDie());
  EXPECT_EQ(outcome.result, TaskResult::kCompleted);
  EXPECT_EQ(outcome.attempts, 3u);
}

TEST(ExecutorTest, RetryBudgetExhaustionIsTerminalFailure) {
  std::atomic<int> calls{0};
  Executor executor(Policy("EDF"), {});
  TaskSpec task = Quick([&] {
    calls.fetch_add(1);
    throw std::runtime_error("permanent");
  });
  task.max_attempts = 3;
  task.retry_backoff_seconds = 0.002;
  auto id = executor.Submit(std::move(task));
  ASSERT_TRUE(id.ok());
  executor.Drain();
  EXPECT_EQ(calls.load(), 3);
  EXPECT_EQ(executor.OutcomeOf(id.ValueOrDie()).result, TaskResult::kFailed);
}

TEST(ExecutorTest, OverrunningTaskTimesOut) {
  Executor executor(Policy("EDF"), {});
  TaskSpec task;
  task.relative_deadline = 5.0;
  task.estimated_cost = 0.001;
  task.timeout_seconds = 0.005;
  task.cancellable_fn = [](const CancelToken& token) {
    // Cooperative: spin until the executor trips the token at the
    // timeout, then return (overrun observed post-return).
    while (!token.cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  auto id = executor.Submit(std::move(task));
  ASSERT_TRUE(id.ok());
  executor.Drain();
  const TaskOutcome outcome = executor.OutcomeOf(id.ValueOrDie());
  EXPECT_EQ(outcome.result, TaskResult::kTimedOut);
  EXPECT_EQ(outcome.attempts, 1u);
}

TEST(ExecutorTest, SubmitRejectsConflictingFunctions) {
  Executor executor(Policy("EDF"), {});
  TaskSpec both = Quick([] {});
  both.cancellable_fn = [](const CancelToken&) {};
  EXPECT_FALSE(executor.Submit(both).ok());

  TaskSpec bad_attempts = Quick([] {});
  bad_attempts.max_attempts = 0;
  EXPECT_FALSE(executor.Submit(bad_attempts).ok());

  TaskSpec bad_timeout = Quick([] {});
  bad_timeout.timeout_seconds = -1.0;
  EXPECT_FALSE(executor.Submit(bad_timeout).ok());
}

TEST(ExecutorTest, FailureCascadesToDependents) {
  Executor executor(Policy("EDF"), {});
  std::atomic<int> counter{0};
  auto root = executor.Submit(Quick([] { throw std::runtime_error("x"); }));
  ASSERT_TRUE(root.ok());
  auto child =
      executor.Submit(Quick([&] { ++counter; }, 5.0, 1.0,
                            {root.ValueOrDie()}));
  ASSERT_TRUE(child.ok());
  executor.Drain();
  EXPECT_EQ(counter.load(), 0);
  EXPECT_EQ(executor.OutcomeOf(child.ValueOrDie()).result,
            TaskResult::kDependencyFailed);

  // Submitting against an already-failed dependency is accepted and
  // immediately terminal.
  auto late = executor.Submit(Quick([&] { ++counter; }, 5.0, 1.0,
                                    {root.ValueOrDie()}));
  ASSERT_TRUE(late.ok()) << late.status();
  EXPECT_EQ(executor.OutcomeOf(late.ValueOrDie()).result,
            TaskResult::kDependencyFailed);
  executor.Drain();
  EXPECT_EQ(counter.load(), 0);
}

TEST(ExecutorTest, ShutdownNowShedsQueuedWorkAndCancelsInFlight) {
  ExecutorOptions options;
  options.num_workers = 1;
  Executor executor(Policy("EDF"), options);
  std::atomic<bool> started{false};
  std::atomic<int> ran{0};

  TaskSpec blocker;
  blocker.relative_deadline = 5.0;
  blocker.estimated_cost = 0.001;
  blocker.cancellable_fn = [&](const CancelToken& token) {
    started.store(true);
    while (!token.cancelled()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  auto in_flight = executor.Submit(std::move(blocker));
  ASSERT_TRUE(in_flight.ok());
  std::vector<TxnId> queued;
  for (int i = 0; i < 10; ++i) {
    auto id = executor.Submit(Quick([&] { ++ran; }));
    ASSERT_TRUE(id.ok());
    queued.push_back(id.ValueOrDie());
  }
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  executor.ShutdownNow();

  EXPECT_EQ(ran.load(), 0);
  EXPECT_EQ(executor.finished_count(), 11u);
  EXPECT_EQ(executor.OutcomeOf(in_flight.ValueOrDie()).result,
            TaskResult::kShed);
  for (const TxnId id : queued) {
    EXPECT_EQ(executor.OutcomeOf(id).result, TaskResult::kShed);
  }
}

TEST(ExecutorTest, ShutdownStillDrainsPendingRetries) {
  // Plain Shutdown honors the retry budget: a transiently failing task
  // with a pending backoff still completes during shutdown.
  std::atomic<int> calls{0};
  auto executor = std::make_unique<Executor>(Policy("EDF"), ExecutorOptions{});
  TaskSpec task = Quick([&] {
    if (calls.fetch_add(1) == 0) throw std::runtime_error("transient");
  });
  task.max_attempts = 2;
  task.retry_backoff_seconds = 0.02;
  auto id = executor->Submit(std::move(task));
  ASSERT_TRUE(id.ok());
  executor->Shutdown();
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(executor->OutcomeOf(id.ValueOrDie()).result,
            TaskResult::kCompleted);
}

}  // namespace
}  // namespace webtx::rt
