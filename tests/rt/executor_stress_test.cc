// Contention stress for rt::Executor's thread-safety claim: many
// concurrent submitters, self-expanding tasks (tasks that Submit from
// worker threads), and dependency chains, checked under sanitizers (see
// the `tsan` CMake preset). Assertions are on aggregate invariants —
// counts and outcome monotonicity — since wall-clock interleavings vary.

#include "rt/executor.h"

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sched/policy_factory.h"

namespace webtx::rt {
namespace {

std::unique_ptr<Executor> MakeExecutor(const std::string& policy_spec,
                                       size_t workers) {
  auto policy = CreatePolicy(policy_spec);
  EXPECT_TRUE(policy.ok()) << policy.status();
  ExecutorOptions options;
  options.num_workers = workers;
  return std::make_unique<Executor>(std::move(policy).ValueOrDie(), options);
}

TaskSpec QuickTask(std::atomic<size_t>& counter) {
  TaskSpec task;
  task.estimated_cost = 0.0005;
  task.relative_deadline = 5.0;
  task.fn = [&counter] { counter.fetch_add(1); };
  return task;
}

TEST(ExecutorStressTest, ManyConcurrentSubmitters) {
  constexpr size_t kSubmitters = 8;
  constexpr size_t kTasksPerSubmitter = 60;
  auto executor = MakeExecutor("EDF", 4);
  std::atomic<size_t> executed{0};
  std::atomic<size_t> accepted{0};

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      for (size_t i = 0; i < kTasksPerSubmitter; ++i) {
        auto id = executor->Submit(QuickTask(executed));
        ASSERT_TRUE(id.ok()) << id.status();
        accepted.fetch_add(1);
      }
    });
  }
  for (std::thread& s : submitters) s.join();
  executor->Drain();

  EXPECT_EQ(accepted.load(), kSubmitters * kTasksPerSubmitter);
  EXPECT_EQ(executed.load(), kSubmitters * kTasksPerSubmitter);
  EXPECT_EQ(executor->finished_count(), kSubmitters * kTasksPerSubmitter);
}

TEST(ExecutorStressTest, SelfExpandingTasks) {
  // Each root task spawns children from inside a worker thread, three
  // levels deep: 8 roots * (1 + 2 + 4) = 56 tasks.
  auto executor = MakeExecutor("SRPT", 4);
  std::atomic<size_t> executed{0};
  std::atomic<size_t> submit_failures{0};

  std::function<void(size_t)> spawn = [&](size_t depth) {
    executed.fetch_add(1);
    if (depth == 0) return;
    for (int child = 0; child < 2; ++child) {
      TaskSpec task;
      task.estimated_cost = 0.0005;
      task.relative_deadline = 5.0;
      task.fn = [&spawn, depth] { spawn(depth - 1); };
      if (!executor->Submit(std::move(task)).ok()) {
        submit_failures.fetch_add(1);
      }
    }
  };

  for (int root = 0; root < 8; ++root) {
    TaskSpec task;
    task.estimated_cost = 0.0005;
    task.relative_deadline = 5.0;
    task.fn = [&spawn] { spawn(2); };
    ASSERT_TRUE(executor->Submit(std::move(task)).ok());
  }
  // One Drain suffices even though tasks self-expand: children are
  // submitted from inside the parent's fn, before the parent counts as
  // finished, so finished == submitted implies nothing is running and
  // nothing more can appear.
  executor->Drain();

  EXPECT_EQ(submit_failures.load(), 0u);
  EXPECT_EQ(executed.load(), 8u * 7u);
  EXPECT_EQ(executor->finished_count(), 8u * 7u);
}

TEST(ExecutorStressTest, DependencyChainsAcrossSubmitters) {
  // Each submitter builds its own dependency chain; tasks append their
  // sequence number to a per-chain log, so dependency order violations
  // surface as out-of-order logs even under full contention.
  constexpr size_t kChains = 6;
  constexpr size_t kChainLength = 40;
  auto executor = MakeExecutor("EDF", 4);
  std::vector<std::vector<size_t>> logs(kChains);
  std::vector<std::mutex> log_mus(kChains);

  std::vector<std::thread> submitters;
  submitters.reserve(kChains);
  for (size_t c = 0; c < kChains; ++c) {
    submitters.emplace_back([&, c] {
      TxnId previous = kInvalidTxn;
      for (size_t i = 0; i < kChainLength; ++i) {
        TaskSpec task;
        task.estimated_cost = 0.0005;
        task.relative_deadline = 5.0;
        if (previous != kInvalidTxn) task.dependencies = {previous};
        task.fn = [&logs, &log_mus, c, i] {
          std::lock_guard<std::mutex> lock(log_mus[c]);
          logs[c].push_back(i);
        };
        auto id = executor->Submit(std::move(task));
        ASSERT_TRUE(id.ok()) << id.status();
        previous = id.ValueOrDie();
      }
    });
  }
  for (std::thread& s : submitters) s.join();
  executor->Drain();

  EXPECT_EQ(executor->finished_count(), kChains * kChainLength);
  for (size_t c = 0; c < kChains; ++c) {
    ASSERT_EQ(logs[c].size(), kChainLength) << "chain " << c;
    for (size_t i = 0; i < kChainLength; ++i) {
      EXPECT_EQ(logs[c][i], i) << "chain " << c << " ran out of order";
    }
  }
}

TEST(ExecutorStressTest, OutcomesAreMonotoneAndComplete) {
  constexpr size_t kTasks = 150;
  auto executor = MakeExecutor("ASETS", 4);
  std::atomic<size_t> executed{0};
  std::vector<TxnId> ids;
  ids.reserve(kTasks);
  for (size_t i = 0; i < kTasks; ++i) {
    auto id = executor->Submit(QuickTask(executed));
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(id.ValueOrDie());
  }
  executor->Drain();

  double previous_submit = 0.0;
  for (const TxnId id : ids) {
    const TaskOutcome outcome = executor->OutcomeOf(id);
    EXPECT_TRUE(outcome.finished) << "T" << id;
    // finish can't precede submission, submissions are monotone within
    // one submitter, and tardiness is non-negative by construction.
    EXPECT_GE(outcome.finish_seconds, outcome.submit_seconds);
    EXPECT_GE(outcome.submit_seconds, previous_submit);
    EXPECT_GE(outcome.tardiness_seconds, 0.0);
    previous_submit = outcome.submit_seconds;
  }
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(ExecutorStressTest, FinishedCountIsMonotoneWhileRunning) {
  auto executor = MakeExecutor("EDF", 2);
  std::atomic<size_t> executed{0};
  for (size_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(executor->Submit(QuickTask(executed)).ok());
  }
  // Poll finished_count from a spectator thread while workers run; the
  // count must never move backwards.
  std::atomic<bool> regression{false};
  std::thread spectator([&] {
    size_t last = 0;
    while (last < 200) {
      const size_t now = executor->finished_count();
      if (now < last) {
        regression.store(true);
        return;
      }
      last = now;
      std::this_thread::yield();
    }
  });
  executor->Drain();
  spectator.join();
  EXPECT_FALSE(regression.load());
  EXPECT_EQ(executor->finished_count(), 200u);
}

TEST(ExecutorStressTest, ShutdownNowUnderInFlightTimeoutsNeverDeadlocks) {
  // The tentpole robustness scenario: workers are saturated with
  // cancellation-aware tasks that only return when cancelled, more work
  // (including retrying throwers) is queued behind them, and ShutdownNow
  // lands mid-flight. Every task must reach a terminal state and the
  // join must not hang (the test itself is the liveness assertion; tsan
  // audits the synchronization).
  for (int round = 0; round < 5; ++round) {
    auto executor = MakeExecutor("EDF", 4);
    std::atomic<size_t> started{0};
    std::vector<TxnId> ids;

    for (int i = 0; i < 4; ++i) {
      TaskSpec blocker;
      blocker.estimated_cost = 0.001;
      blocker.relative_deadline = 5.0;
      blocker.timeout_seconds = 30.0;  // deadline never fires; flag does
      blocker.cancellable_fn = [&started](const CancelToken& token) {
        started.fetch_add(1);
        while (!token.cancelled()) {
          std::this_thread::yield();
        }
      };
      auto id = executor->Submit(std::move(blocker));
      ASSERT_TRUE(id.ok());
      ids.push_back(id.ValueOrDie());
    }
    for (int i = 0; i < 40; ++i) {
      TaskSpec task;
      task.estimated_cost = 0.001;
      task.relative_deadline = 5.0;
      task.max_attempts = 3;
      task.retry_backoff_seconds = 0.001;
      task.fn = [] { throw std::runtime_error("flaky"); };
      auto id = executor->Submit(std::move(task));
      ASSERT_TRUE(id.ok());
      ids.push_back(id.ValueOrDie());
    }
    while (started.load() < 4) {
      std::this_thread::yield();
    }
    executor->ShutdownNow();

    EXPECT_EQ(executor->finished_count(), ids.size());
    for (const TxnId id : ids) {
      const TaskOutcome outcome = executor->OutcomeOf(id);
      EXPECT_TRUE(outcome.finished) << "T" << id;
      EXPECT_NE(outcome.result, TaskResult::kPending) << "T" << id;
      EXPECT_NE(outcome.result, TaskResult::kCompleted) << "T" << id;
    }
    executor.reset();  // destructor after ShutdownNow is a no-op
  }
}

TEST(ExecutorStressTest, ConcurrentTimeoutsAndRetriesDrainCleanly) {
  // A mixed workload where every robustness feature is active at once:
  // timeouts, retries with backoff, throwers, and plain tasks, across
  // 4 workers, fully drained (no shutdown shortcut).
  auto executor = MakeExecutor("SRPT", 4);
  std::atomic<size_t> completed_fns{0};
  std::vector<TxnId> ids;
  for (int i = 0; i < 80; ++i) {
    TaskSpec task;
    task.estimated_cost = 0.001;
    task.relative_deadline = 5.0;
    switch (i % 4) {
      case 0:  // well-behaved
        task.fn = [&completed_fns] { completed_fns.fetch_add(1); };
        break;
      case 1:  // times out once, then completes
        task.timeout_seconds = 0.02;
        task.max_attempts = 2;
        task.cancellable_fn = [&completed_fns, attempt = std::make_shared<
                                                   std::atomic<int>>(0)](
                                  const CancelToken& token) {
          if (attempt->fetch_add(1) == 0) {
            while (!token.cancelled()) {
              std::this_thread::yield();
            }
          } else {
            completed_fns.fetch_add(1);
          }
        };
        break;
      case 2:  // throws until the budget is spent
        task.max_attempts = 2;
        task.retry_backoff_seconds = 0.001;
        task.fn = [] { throw std::runtime_error("always"); };
        break;
      case 3:  // transient thrower that recovers
        task.max_attempts = 3;
        task.fn = [&completed_fns, attempt = std::make_shared<
                                       std::atomic<int>>(0)] {
          if (attempt->fetch_add(1) == 0) {
            throw std::runtime_error("transient");
          }
          completed_fns.fetch_add(1);
        };
        break;
    }
    auto id = executor->Submit(std::move(task));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.ValueOrDie());
  }
  executor->Drain();
  EXPECT_EQ(executor->finished_count(), ids.size());
  EXPECT_EQ(completed_fns.load(), 60u);  // cases 0, 1, 3 all complete
  for (size_t i = 0; i < ids.size(); ++i) {
    const TaskOutcome outcome = executor->OutcomeOf(ids[i]);
    switch (i % 4) {
      case 0:
      case 3:
        EXPECT_EQ(outcome.result, TaskResult::kCompleted) << "T" << ids[i];
        break;
      case 1:
        EXPECT_EQ(outcome.result, TaskResult::kCompleted) << "T" << ids[i];
        EXPECT_EQ(outcome.attempts, 2u) << "T" << ids[i];
        break;
      case 2:
        EXPECT_EQ(outcome.result, TaskResult::kFailed) << "T" << ids[i];
        EXPECT_EQ(outcome.attempts, 2u) << "T" << ids[i];
        break;
    }
  }
}

}  // namespace
}  // namespace webtx::rt
