// Contention stress for rt::Executor's thread-safety claim: many
// concurrent submitters, self-expanding tasks (tasks that Submit from
// worker threads), and dependency chains, checked under sanitizers (see
// the `tsan` CMake preset). Assertions are on aggregate invariants —
// counts and outcome monotonicity — since wall-clock interleavings vary.

#include "rt/executor.h"

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sched/policy_factory.h"

namespace webtx::rt {
namespace {

std::unique_ptr<Executor> MakeExecutor(const std::string& policy_spec,
                                       size_t workers) {
  auto policy = CreatePolicy(policy_spec);
  EXPECT_TRUE(policy.ok()) << policy.status();
  ExecutorOptions options;
  options.num_workers = workers;
  return std::make_unique<Executor>(std::move(policy).ValueOrDie(), options);
}

TaskSpec QuickTask(std::atomic<size_t>& counter) {
  TaskSpec task;
  task.estimated_cost = 0.0005;
  task.relative_deadline = 5.0;
  task.fn = [&counter] { counter.fetch_add(1); };
  return task;
}

TEST(ExecutorStressTest, ManyConcurrentSubmitters) {
  constexpr size_t kSubmitters = 8;
  constexpr size_t kTasksPerSubmitter = 60;
  auto executor = MakeExecutor("EDF", 4);
  std::atomic<size_t> executed{0};
  std::atomic<size_t> accepted{0};

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (size_t t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      for (size_t i = 0; i < kTasksPerSubmitter; ++i) {
        auto id = executor->Submit(QuickTask(executed));
        ASSERT_TRUE(id.ok()) << id.status();
        accepted.fetch_add(1);
      }
    });
  }
  for (std::thread& s : submitters) s.join();
  executor->Drain();

  EXPECT_EQ(accepted.load(), kSubmitters * kTasksPerSubmitter);
  EXPECT_EQ(executed.load(), kSubmitters * kTasksPerSubmitter);
  EXPECT_EQ(executor->finished_count(), kSubmitters * kTasksPerSubmitter);
}

TEST(ExecutorStressTest, SelfExpandingTasks) {
  // Each root task spawns children from inside a worker thread, three
  // levels deep: 8 roots * (1 + 2 + 4) = 56 tasks.
  auto executor = MakeExecutor("SRPT", 4);
  std::atomic<size_t> executed{0};
  std::atomic<size_t> submit_failures{0};

  std::function<void(size_t)> spawn = [&](size_t depth) {
    executed.fetch_add(1);
    if (depth == 0) return;
    for (int child = 0; child < 2; ++child) {
      TaskSpec task;
      task.estimated_cost = 0.0005;
      task.relative_deadline = 5.0;
      task.fn = [&spawn, depth] { spawn(depth - 1); };
      if (!executor->Submit(std::move(task)).ok()) {
        submit_failures.fetch_add(1);
      }
    }
  };

  for (int root = 0; root < 8; ++root) {
    TaskSpec task;
    task.estimated_cost = 0.0005;
    task.relative_deadline = 5.0;
    task.fn = [&spawn] { spawn(2); };
    ASSERT_TRUE(executor->Submit(std::move(task)).ok());
  }
  // One Drain suffices even though tasks self-expand: children are
  // submitted from inside the parent's fn, before the parent counts as
  // finished, so finished == submitted implies nothing is running and
  // nothing more can appear.
  executor->Drain();

  EXPECT_EQ(submit_failures.load(), 0u);
  EXPECT_EQ(executed.load(), 8u * 7u);
  EXPECT_EQ(executor->finished_count(), 8u * 7u);
}

TEST(ExecutorStressTest, DependencyChainsAcrossSubmitters) {
  // Each submitter builds its own dependency chain; tasks append their
  // sequence number to a per-chain log, so dependency order violations
  // surface as out-of-order logs even under full contention.
  constexpr size_t kChains = 6;
  constexpr size_t kChainLength = 40;
  auto executor = MakeExecutor("EDF", 4);
  std::vector<std::vector<size_t>> logs(kChains);
  std::vector<std::mutex> log_mus(kChains);

  std::vector<std::thread> submitters;
  submitters.reserve(kChains);
  for (size_t c = 0; c < kChains; ++c) {
    submitters.emplace_back([&, c] {
      TxnId previous = kInvalidTxn;
      for (size_t i = 0; i < kChainLength; ++i) {
        TaskSpec task;
        task.estimated_cost = 0.0005;
        task.relative_deadline = 5.0;
        if (previous != kInvalidTxn) task.dependencies = {previous};
        task.fn = [&logs, &log_mus, c, i] {
          std::lock_guard<std::mutex> lock(log_mus[c]);
          logs[c].push_back(i);
        };
        auto id = executor->Submit(std::move(task));
        ASSERT_TRUE(id.ok()) << id.status();
        previous = id.ValueOrDie();
      }
    });
  }
  for (std::thread& s : submitters) s.join();
  executor->Drain();

  EXPECT_EQ(executor->finished_count(), kChains * kChainLength);
  for (size_t c = 0; c < kChains; ++c) {
    ASSERT_EQ(logs[c].size(), kChainLength) << "chain " << c;
    for (size_t i = 0; i < kChainLength; ++i) {
      EXPECT_EQ(logs[c][i], i) << "chain " << c << " ran out of order";
    }
  }
}

TEST(ExecutorStressTest, OutcomesAreMonotoneAndComplete) {
  constexpr size_t kTasks = 150;
  auto executor = MakeExecutor("ASETS", 4);
  std::atomic<size_t> executed{0};
  std::vector<TxnId> ids;
  ids.reserve(kTasks);
  for (size_t i = 0; i < kTasks; ++i) {
    auto id = executor->Submit(QuickTask(executed));
    ASSERT_TRUE(id.ok()) << id.status();
    ids.push_back(id.ValueOrDie());
  }
  executor->Drain();

  double previous_submit = 0.0;
  for (const TxnId id : ids) {
    const TaskOutcome outcome = executor->OutcomeOf(id);
    EXPECT_TRUE(outcome.finished) << "T" << id;
    // finish can't precede submission, submissions are monotone within
    // one submitter, and tardiness is non-negative by construction.
    EXPECT_GE(outcome.finish_seconds, outcome.submit_seconds);
    EXPECT_GE(outcome.submit_seconds, previous_submit);
    EXPECT_GE(outcome.tardiness_seconds, 0.0);
    previous_submit = outcome.submit_seconds;
  }
  EXPECT_EQ(executed.load(), kTasks);
}

TEST(ExecutorStressTest, FinishedCountIsMonotoneWhileRunning) {
  auto executor = MakeExecutor("EDF", 2);
  std::atomic<size_t> executed{0};
  for (size_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(executor->Submit(QuickTask(executed)).ok());
  }
  // Poll finished_count from a spectator thread while workers run; the
  // count must never move backwards.
  std::atomic<bool> regression{false};
  std::thread spectator([&] {
    size_t last = 0;
    while (last < 200) {
      const size_t now = executor->finished_count();
      if (now < last) {
        regression.store(true);
        return;
      }
      last = now;
      std::this_thread::yield();
    }
  });
  executor->Drain();
  spectator.join();
  EXPECT_FALSE(regression.load());
  EXPECT_EQ(executor->finished_count(), 200u);
}

}  // namespace
}  // namespace webtx::rt
