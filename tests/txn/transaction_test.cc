#include "txn/transaction.h"

#include <gtest/gtest.h>

namespace webtx {
namespace {

TransactionSpec MakeTxn() {
  TransactionSpec t;
  t.id = 3;
  t.arrival = 10.0;
  t.length = 5.0;
  t.deadline = 25.0;
  t.weight = 2.0;
  t.dependencies = {0, 1};
  return t;
}

TEST(TransactionTest, SlackAtMatchesDefinition2) {
  const TransactionSpec t = MakeTxn();
  // s_i = d_i - (t + r_i)
  EXPECT_EQ(t.SlackAt(10.0, 5.0), 10.0);
  EXPECT_EQ(t.SlackAt(20.0, 5.0), 0.0);
  EXPECT_EQ(t.SlackAt(22.0, 5.0), -2.0);
  EXPECT_EQ(t.SlackAt(10.0, 2.0), 13.0);
}

TEST(TransactionTest, InitialSlack) {
  const TransactionSpec t = MakeTxn();
  EXPECT_EQ(t.InitialSlack(), 10.0);
}

TEST(TransactionTest, TardinessOfMatchesDefinition3) {
  // t_i = 0 iff f_i <= d_i; otherwise f_i - d_i.
  EXPECT_EQ(TardinessOf(20.0, 25.0), 0.0);
  EXPECT_EQ(TardinessOf(25.0, 25.0), 0.0);
  EXPECT_EQ(TardinessOf(30.0, 25.0), 5.0);
}

TEST(TransactionTest, DebugStringListsFields) {
  const std::string s = MakeTxn().DebugString();
  EXPECT_NE(s.find("T3"), std::string::npos);
  EXPECT_NE(s.find("a=10"), std::string::npos);
  EXPECT_NE(s.find("l=5"), std::string::npos);
  EXPECT_NE(s.find("d=25"), std::string::npos);
  EXPECT_NE(s.find("w=2"), std::string::npos);
  EXPECT_NE(s.find("deps=[0,1]"), std::string::npos);
}

TEST(TransactionTest, DefaultsAreIndependentUnitWeight) {
  const TransactionSpec t;
  EXPECT_EQ(t.id, kInvalidTxn);
  EXPECT_EQ(t.weight, 1.0);
  EXPECT_TRUE(t.dependencies.empty());
}

TEST(SimTimeTest, EpsilonComparisons) {
  EXPECT_TRUE(TimeLessEq(1.0, 1.0));
  EXPECT_TRUE(TimeLessEq(1.0, 1.0 + 1e-12));
  EXPECT_TRUE(TimeLessEq(1.0 + 1e-12, 1.0));  // within epsilon
  EXPECT_FALSE(TimeLessEq(1.1, 1.0));
  EXPECT_TRUE(TimeEq(2.0, 2.0 + 1e-12));
  EXPECT_FALSE(TimeEq(2.0, 2.1));
}

}  // namespace
}  // namespace webtx
