#include "txn/dependency_graph.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "testing/fake_view.h"

namespace webtx {
namespace {

using testing::Txn;

std::vector<TransactionSpec> Chain3() {
  // T0 -> T1 -> T2
  return {Txn(0, 0, 1, 10), Txn(1, 0, 1, 10, 1.0, {0}),
          Txn(2, 0, 1, 10, 1.0, {1})};
}

TEST(DependencyGraphTest, BuildsChain) {
  auto g = DependencyGraph::Build(Chain3());
  ASSERT_TRUE(g.ok());
  const DependencyGraph& graph = g.ValueOrDie();
  EXPECT_EQ(graph.num_transactions(), 3u);
  EXPECT_EQ(graph.num_edges(), 2u);
  EXPECT_TRUE(graph.IsIndependent(0));
  EXPECT_FALSE(graph.IsIndependent(1));
  EXPECT_TRUE(graph.IsRoot(2));
  EXPECT_FALSE(graph.IsRoot(0));
  EXPECT_EQ(graph.successors(0), std::vector<TxnId>{1});
  EXPECT_EQ(graph.predecessors(2), std::vector<TxnId>{1});
}

TEST(DependencyGraphTest, RootsOfForest) {
  // Two independent transactions and a chain.
  std::vector<TransactionSpec> txns = {Txn(0, 0, 1, 1), Txn(1, 0, 1, 1),
                                       Txn(2, 0, 1, 1, 1.0, {0})};
  auto g = DependencyGraph::Build(txns);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.ValueOrDie().Roots(), (std::vector<TxnId>{1, 2}));
}

TEST(DependencyGraphTest, DiamondTopologicalOrder) {
  // T0 -> {T1, T2} -> T3.
  std::vector<TransactionSpec> txns = {
      Txn(0, 0, 1, 1), Txn(1, 0, 1, 1, 1.0, {0}), Txn(2, 0, 1, 1, 1.0, {0}),
      Txn(3, 0, 1, 1, 1.0, {1, 2})};
  auto g = DependencyGraph::Build(txns);
  ASSERT_TRUE(g.ok());
  const auto& topo = g.ValueOrDie().TopologicalOrder();
  ASSERT_EQ(topo.size(), 4u);
  const auto pos = [&](TxnId id) {
    return std::find(topo.begin(), topo.end(), id) - topo.begin();
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(1), pos(3));
  EXPECT_LT(pos(2), pos(3));
}

TEST(DependencyGraphTest, RejectsCycle) {
  std::vector<TransactionSpec> txns = {Txn(0, 0, 1, 1, 1.0, {1}),
                                       Txn(1, 0, 1, 1, 1.0, {0})};
  auto g = DependencyGraph::Build(txns);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("cycle"), std::string::npos);
}

TEST(DependencyGraphTest, RejectsLongerCycle) {
  std::vector<TransactionSpec> txns = {Txn(0, 0, 1, 1, 1.0, {2}),
                                       Txn(1, 0, 1, 1, 1.0, {0}),
                                       Txn(2, 0, 1, 1, 1.0, {1})};
  EXPECT_FALSE(DependencyGraph::Build(txns).ok());
}

TEST(DependencyGraphTest, RejectsSelfDependency) {
  std::vector<TransactionSpec> txns = {Txn(0, 0, 1, 1, 1.0, {0})};
  auto g = DependencyGraph::Build(txns);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("itself"), std::string::npos);
}

TEST(DependencyGraphTest, RejectsUnknownDependency) {
  std::vector<TransactionSpec> txns = {Txn(0, 0, 1, 1, 1.0, {5})};
  auto g = DependencyGraph::Build(txns);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("unknown"), std::string::npos);
}

TEST(DependencyGraphTest, RejectsDuplicateDependency) {
  std::vector<TransactionSpec> txns = {Txn(0, 0, 1, 1),
                                       Txn(1, 0, 1, 1, 1.0, {0, 0})};
  auto g = DependencyGraph::Build(txns);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("duplicate"), std::string::npos);
}

TEST(DependencyGraphTest, RejectsNonDenseIds) {
  std::vector<TransactionSpec> txns = {Txn(0, 0, 1, 1), Txn(2, 0, 1, 1)};
  auto g = DependencyGraph::Build(txns);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("dense"), std::string::npos);
}

TEST(DependencyGraphTest, EmptyGraph) {
  auto g = DependencyGraph::Build({});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.ValueOrDie().num_transactions(), 0u);
  EXPECT_TRUE(g.ValueOrDie().Roots().empty());
}

TEST(DependencyGraphTest, SuccessorsAreSorted) {
  std::vector<TransactionSpec> txns = {
      Txn(0, 0, 1, 1), Txn(1, 0, 1, 1, 1.0, {0}), Txn(2, 0, 1, 1, 1.0, {0}),
      Txn(3, 0, 1, 1, 1.0, {0})};
  auto g = DependencyGraph::Build(txns);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.ValueOrDie().successors(0), (std::vector<TxnId>{1, 2, 3}));
}

}  // namespace
}  // namespace webtx
