#include "txn/workflow.h"

#include <gtest/gtest.h>

#include "testing/fake_view.h"
#include "txn/dependency_graph.h"

namespace webtx {
namespace {

using testing::Txn;

WorkflowRegistry BuildRegistry(const std::vector<TransactionSpec>& txns) {
  auto g = DependencyGraph::Build(txns);
  EXPECT_TRUE(g.ok()) << g.status();
  return WorkflowRegistry::Build(g.ValueOrDie());
}

TEST(WorkflowTest, IndependentTransactionsAreSingletonWorkflows) {
  const auto registry =
      BuildRegistry({Txn(0, 0, 1, 1), Txn(1, 0, 1, 1), Txn(2, 0, 1, 1)});
  ASSERT_EQ(registry.num_workflows(), 3u);
  for (WorkflowId w = 0; w < 3; ++w) {
    EXPECT_EQ(registry.workflow(w).members, std::vector<TxnId>{w});
    EXPECT_EQ(registry.workflow(w).root, w);
  }
  EXPECT_EQ(registry.max_workflow_size(), 1u);
}

TEST(WorkflowTest, ChainFormsSingleWorkflow) {
  // T0 -> T1 -> T2: one root (T2), one workflow with all three.
  const auto registry = BuildRegistry(
      {Txn(0, 0, 1, 1), Txn(1, 0, 1, 1, 1.0, {0}), Txn(2, 0, 1, 1, 1.0, {1})});
  ASSERT_EQ(registry.num_workflows(), 1u);
  const Workflow& wf = registry.workflow(0);
  EXPECT_EQ(wf.root, 2u);
  EXPECT_EQ(wf.members, (std::vector<TxnId>{0, 1, 2}));
  EXPECT_EQ(registry.max_workflow_size(), 3u);
}

TEST(WorkflowTest, PaperFigure1Structure) {
  // The paper's Fig. 1: two workflows sharing leaf T1:
  //   <T1, Tm, Tn, To> and <T1, Ti, Tj, Tk>.
  // Ids: T1=0, Tm=1, Tn=2, To=3, Ti=4, Tj=5, Tk=6.
  const auto registry = BuildRegistry({
      Txn(0, 0, 1, 1),
      Txn(1, 0, 1, 1, 1.0, {0}),
      Txn(2, 0, 1, 1, 1.0, {1}),
      Txn(3, 0, 1, 1, 1.0, {2}),  // root To
      Txn(4, 0, 1, 1, 1.0, {0}),
      Txn(5, 0, 1, 1, 1.0, {4}),
      Txn(6, 0, 1, 1, 1.0, {5}),  // root Tk
  });
  ASSERT_EQ(registry.num_workflows(), 2u);
  EXPECT_EQ(registry.workflow(0).root, 3u);
  EXPECT_EQ(registry.workflow(0).members, (std::vector<TxnId>{0, 1, 2, 3}));
  EXPECT_EQ(registry.workflow(1).root, 6u);
  EXPECT_EQ(registry.workflow(1).members, (std::vector<TxnId>{0, 4, 5, 6}));

  // The shared leaf T1 (id 0) belongs to both workflows.
  EXPECT_EQ(registry.WorkflowsOf(0), (std::vector<WorkflowId>{0, 1}));
  EXPECT_EQ(registry.WorkflowsOf(3), std::vector<WorkflowId>{0});
  EXPECT_EQ(registry.WorkflowsOf(6), std::vector<WorkflowId>{1});
}

TEST(WorkflowTest, TransitiveDependencyIncluded) {
  // T0 -> T1 -> T2 plus direct T0 -> T2: members must not duplicate.
  const auto registry = BuildRegistry({Txn(0, 0, 1, 1),
                                       Txn(1, 0, 1, 1, 1.0, {0}),
                                       Txn(2, 0, 1, 1, 1.0, {0, 1})});
  ASSERT_EQ(registry.num_workflows(), 1u);
  EXPECT_EQ(registry.workflow(0).members, (std::vector<TxnId>{0, 1, 2}));
}

TEST(WorkflowTest, DiamondIsOneWorkflow) {
  const auto registry = BuildRegistry(
      {Txn(0, 0, 1, 1), Txn(1, 0, 1, 1, 1.0, {0}), Txn(2, 0, 1, 1, 1.0, {0}),
       Txn(3, 0, 1, 1, 1.0, {1, 2})});
  ASSERT_EQ(registry.num_workflows(), 1u);
  EXPECT_EQ(registry.workflow(0).members, (std::vector<TxnId>{0, 1, 2, 3}));
  EXPECT_EQ(registry.workflow(0).root, 3u);
}

TEST(WorkflowTest, EveryTransactionBelongsToAtLeastOneWorkflow) {
  const auto registry = BuildRegistry(
      {Txn(0, 0, 1, 1), Txn(1, 0, 1, 1, 1.0, {0}), Txn(2, 0, 1, 1),
       Txn(3, 0, 1, 1, 1.0, {1, 2})});
  for (TxnId id = 0; id < 4; ++id) {
    EXPECT_FALSE(registry.WorkflowsOf(id).empty()) << "T" << id;
  }
}

TEST(WorkflowTest, EmptyRegistry) {
  const auto registry = BuildRegistry({});
  EXPECT_EQ(registry.num_workflows(), 0u);
  EXPECT_EQ(registry.max_workflow_size(), 0u);
}

}  // namespace
}  // namespace webtx
