#!/usr/bin/env bash
# Full verification gate: build and run the test suite under the three
# CMake presets — plain (RelWithDebInfo), ThreadSanitizer (concurrency
# suites), and Address+LeakSanitizer (everything). This is what CI (and a
# release) should run; each stage stops the script on the first failure.
#
# After the test matrix, a bench-smoke stage builds the Release preset
# (-O3 -DNDEBUG) and runs each perf benchmark binary on a minimal
# workload, writing to a scratch JSON — this catches bit-rot in the
# bench harnesses without touching the committed BENCH_hotpath.json
# baseline (full-run numbers; see README "Benchmarking").
#
# Usage: scripts/check.sh [--fast]
#   --fast  plain preset only (skips the sanitizer builds and bench smoke)

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
fi

run_preset() {
  local preset="$1"
  echo "==> configure+build [$preset]"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "==> ctest [$preset]"
  ctest --preset "$preset" -j "$(nproc)"
}

bench_smoke() {
  echo "==> configure+build [release]"
  cmake --preset release
  cmake --build --preset release -j "$(nproc)"
  # Smoke rows go to a scratch file: the committed BENCH_hotpath.json at
  # the repo root holds full-run numbers (see README "Benchmarking") and
  # must not be overwritten by the one-iteration smoke subset.
  echo "==> bench smoke [release]"
  WEBTX_BENCH_JSON=build-release/BENCH_smoke.json \
    ./build-release/bench/sweep_throughput --smoke
  WEBTX_BENCH_JSON=build-release/BENCH_smoke.json \
    ./build-release/bench/micro_scheduler_overhead \
    --benchmark_min_time=0.01 \
    --benchmark_filter='BM_PolicyEventCost.*/256$|BM_IndexedPq.*/64$'
}

run_preset default
if [[ "$FAST" == "0" ]]; then
  run_preset tsan
  run_preset asan
  bench_smoke
fi

echo "All checks passed."
