#!/usr/bin/env bash
# Full verification gate: build and run the test suite under the four
# CMake presets — plain (RelWithDebInfo), ThreadSanitizer (concurrency
# suites), Address+LeakSanitizer (everything), and
# UndefinedBehaviorSanitizer (everything). This is what CI (and a
# release) should run; each stage stops the script on the first failure.
#
# After the test matrix, a bench-smoke stage builds the Release preset
# (-O3 -DNDEBUG) and runs each perf benchmark binary on a minimal
# workload, writing to a scratch JSON — this catches bit-rot in the
# bench harnesses without touching the committed BENCH_hotpath.json
# baseline (full-run numbers; see README "Benchmarking").
#
# A chaos-smoke stage runs a short randomized fault-injection campaign
# (tools/chaos) against the plain build: every case is audited by the
# schedule validator, so crash/migration regressions that no fixed test
# anticipates still fail the gate. A failing case is auto-shrunk and the
# reproducer path is printed — commit it under
# tests/integration/replays/ to pin the regression.
#
# A live-smoke stage runs the same idea against the REAL executor
# (tools/chaos --live): randomized fault-injected cases on worker
# threads under the deterministic virtual clock, each run twice (trace
# digests must match) and audited by the live trace validator. It
# catches attempt-lifecycle / failover / retry regressions that only
# manifest with real thread interleavings.
#
# A bench-gate stage (opt-in: perf numbers are machine-relative, so it
# only makes sense on the machine that produced the committed baseline)
# runs the full bench/sweep_throughput grid against the Release build and
# FAILS if any fig08 end-to-end instances_per_sec row regresses more than
# 10% below the committed BENCH_hotpath.json. After an intentional perf
# change, refresh the baseline by re-running the bench binaries with
# WEBTX_BENCH_JSON unset and committing the updated JSON.
#
# A huge-smoke stage (opt-in) runs a 10^5-transaction open-system case
# under BOTH structure configurations — the historical binary-heap
# pending queue / spec-vector store and the calendar-queue / arena-SoA
# pair behind the SimOptions knobs — and fails unless the schedule
# digests are byte-identical (bench/ext_huge_scale --smoke exits 1 on
# divergence; tools/chaos --huge re-proves it under a randomized fault
# cocktail).
#
# A steal-smoke stage runs the sharded-policy campaign (tools/chaos
# --steal): multi-server overloaded cases run with a global-state policy
# and its "-sharded" variant — the schedule digests must be
# byte-identical (the work-stealing protocol must never change a
# decision) and the validator audits every sharded run.
#
# A twin-smoke stage runs the digital-twin campaign (tools/chaos
# --twin): randomized flash-crowd / ON-OFF cases where the shadow
# simulator steers the live executor (rt::Twin) — every case runs twice
# (trace+decision digests must match), the live validator audits the
# trace, and the controller contract (hysteresis, dwell, fallback
# cooldown) is checked decision by decision.
#
# Usage: scripts/check.sh [--fast] [--chaos-smoke] [--live-smoke]
#                         [--bench-gate] [--huge-smoke] [--steal-smoke]
#                         [--twin-smoke]
#   --fast         plain preset only (skips sanitizers and bench smoke)
#   --chaos-smoke  plain preset + chaos campaign only (quick fault audit)
#   --live-smoke   plain preset + live executor campaign only (50 cases
#                  of tools/chaos --live, digest-checked + validated)
#   --bench-gate   release build + fig08 perf-regression gate only
#   --huge-smoke   release build + 10^5-txn differential of the
#                  huge-scale structures (digest byte-identity) only
#   --steal-smoke  plain preset + sharded-policy campaign only (25 cases
#                  of tools/chaos --steal, digest-checked + validated)
#   --twin-smoke   plain preset + digital-twin campaign only (25 cases
#                  of tools/chaos --twin, digest-checked + validated)

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
CHAOS_ONLY=0
LIVE_ONLY=0
BENCH_GATE=0
HUGE_SMOKE=0
STEAL_ONLY=0
TWIN_ONLY=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    --chaos-smoke) CHAOS_ONLY=1 ;;
    --live-smoke) LIVE_ONLY=1 ;;
    --bench-gate) BENCH_GATE=1 ;;
    --huge-smoke) HUGE_SMOKE=1 ;;
    --steal-smoke) STEAL_ONLY=1 ;;
    --twin-smoke) TWIN_ONLY=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

run_preset() {
  local preset="$1"
  echo "==> configure+build [$preset]"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "==> ctest [$preset]"
  ctest --preset "$preset" -j "$(nproc)"
}

bench_smoke() {
  echo "==> configure+build [release]"
  cmake --preset release
  cmake --build --preset release -j "$(nproc)"
  # Smoke rows go to a scratch file: the committed BENCH_hotpath.json at
  # the repo root holds full-run numbers (see README "Benchmarking") and
  # must not be overwritten by the one-iteration smoke subset.
  echo "==> bench smoke [release]"
  WEBTX_BENCH_JSON=build-release/BENCH_smoke.json \
    ./build-release/bench/sweep_throughput --smoke
  WEBTX_BENCH_JSON=build-release/BENCH_smoke.json \
    ./build-release/bench/ext_huge_scale --smoke
  WEBTX_BENCH_JSON=build-release/BENCH_smoke.json \
    ./build-release/bench/micro_scheduler_overhead \
    --benchmark_min_time=0.01 \
    --benchmark_filter='BM_PolicyEventCost.*/256$|BM_IndexedPq.*/64$'
}

# Value of one (bench, config, metric) row in a bench JSON.
bench_rate() {
  awk -F'"' -v bench="$2" -v cfg="$3" -v metric="$4" '
    $4 == bench && $8 == cfg && $12 == metric {
      v = $15; gsub(/[:, ]/, "", v); print v; exit
    }' "$1"
}

bench_gate() {
  echo "==> configure+build [release]"
  cmake --preset release
  cmake --build --preset release -j "$(nproc)"
  echo "==> bench gate [release]: fig08 end-to-end vs BENCH_hotpath.json"
  local gate_json=build-release/BENCH_gate.json
  # Fresh rows go to a scratch file seeded from the committed baseline,
  # so the bench still sees its seed_baseline reference rows and the
  # committed JSON itself is never overwritten by a gate run.
  cp BENCH_hotpath.json "$gate_json"
  WEBTX_BENCH_JSON="$gate_json" ./build-release/bench/sweep_throughput
  WEBTX_BENCH_JSON="$gate_json" ./build-release/bench/ext_huge_scale
  WEBTX_BENCH_JSON="$gate_json" ./build-release/bench/ext_multi_server
  WEBTX_BENCH_JSON="$gate_json" ./build-release/bench/ext_twin
  local failed=0 threads config old new
  for threads in 1 2 8; do
    config="fig08 threads=${threads}"
    old=$(bench_rate BENCH_hotpath.json sweep_throughput "$config" \
          instances_per_sec)
    new=$(bench_rate "$gate_json" sweep_throughput "$config" \
          instances_per_sec)
    if [[ -z "$old" || -z "$new" ]]; then
      echo "bench gate: missing instances_per_sec row for '$config'" >&2
      failed=1
      continue
    fi
    if awk -v new="$new" -v old="$old" 'BEGIN { exit !(new < 0.9 * old) }'
    then
      echo "bench gate: FAIL '$config': $new < 90% of baseline $old" >&2
      failed=1
    else
      echo "bench gate: ok '$config': $new vs baseline $old instances/sec"
    fi
  done
  # Huge-scale structure rows: the wheel's churn rate at the deepest
  # micro population and the 10^6-txn end-to-end rate under the new
  # structures must hold their baseline. The micro row is stable to
  # <1% run to run and gets the usual 90% floor; the end-to-end row is
  # a single-rep multi-second run with ~10% observed machine variance,
  # so it gets a 75% floor — it guards feasibility-scale collapses,
  # not single-digit drift.
  local hs_config hs_metric hs_floor
  for hs_config in "pending n=262144 wheel:ops_per_sec:0.90" \
                   "e2e n=1000000 new:events_per_sec:0.75"; do
    hs_floor="${hs_config##*:}"
    hs_config="${hs_config%:*}"
    hs_metric="${hs_config##*:}"
    hs_config="${hs_config%:*}"
    old=$(bench_rate BENCH_hotpath.json ext_huge_scale "$hs_config" \
          "$hs_metric")
    new=$(bench_rate "$gate_json" ext_huge_scale "$hs_config" "$hs_metric")
    if [[ -z "$old" || -z "$new" ]]; then
      echo "bench gate: missing $hs_metric row for '$hs_config'" >&2
      failed=1
      continue
    fi
    if awk -v new="$new" -v old="$old" -v floor="$hs_floor" \
         'BEGIN { exit !(new < floor * old) }'
    then
      echo "bench gate: FAIL '$hs_config': $new < ${hs_floor} of" \
           "baseline $old" >&2
      failed=1
    else
      echo "bench gate: ok '$hs_config': $new vs baseline $old $hs_metric"
    fi
  done
  # Sharded-policy rows: ASETS*-sharded at shard_threads=8 must hold its
  # wall-clock ratio against the global-state ASETS* baseline within 10%
  # of the committed trajectory (a drop means the steal protocol or the
  # per-shard merge got more expensive, not machine noise — the ratio is
  # measured within one run of the same binary).
  local sp_servers sp_config
  for sp_servers in 4 8; do
    sp_config="servers=${sp_servers} threads=8 policy=sharded"
    old=$(bench_rate BENCH_hotpath.json ext_multi_server "$sp_config" \
          sharded_vs_global)
    new=$(bench_rate "$gate_json" ext_multi_server "$sp_config" \
          sharded_vs_global)
    if [[ -z "$old" || -z "$new" ]]; then
      echo "bench gate: missing sharded_vs_global row for '$sp_config'" >&2
      failed=1
      continue
    fi
    if awk -v new="$new" -v old="$old" 'BEGIN { exit !(new < 0.9 * old) }'
    then
      echo "bench gate: FAIL '$sp_config': sharded_vs_global $new < 90%" \
           "of baseline $old" >&2
      failed=1
    else
      echo "bench gate: ok '$sp_config': sharded_vs_global $new vs" \
           "baseline $old"
    fi
  done
  # Digital-twin rows: the flash-crowd metrics are virtual-clock
  # deterministic (not wall-clock), so the controller must STRICTLY beat
  # static serving on tardiness or shed ratio every run, and the
  # divergence guard must fire on the corrupted model. ext_twin itself
  # exits 1 on a miss; the row checks here catch a silently-stale JSON.
  new=$(bench_rate "$gate_json" ext_twin "flash controller" \
        controller_wins)
  if [[ -z "$new" ]] || awk -v w="$new" 'BEGIN { exit !(w < 1) }'; then
    echo "bench gate: FAIL ext_twin controller_wins = '${new}' != 1" >&2
    failed=1
  else
    echo "bench gate: ok ext_twin controller beats static serving"
  fi
  new=$(bench_rate "$gate_json" ext_twin "flash divergence" \
        guard_fallbacks)
  if [[ -z "$new" ]] || awk -v f="$new" 'BEGIN { exit !(f < 1) }'; then
    echo "bench gate: FAIL ext_twin guard_fallbacks = '${new}' < 1" >&2
    failed=1
  else
    echo "bench gate: ok ext_twin divergence guard fired ($new fallback)"
  fi
  # Decision-loop rows: pooling + pruning together must stay >= 2x
  # faster than the pinned twin_seed_baseline rebuild loop at 8
  # candidates (both sides strictly serial — the parallel_speedup rows
  # are reported but never gated, per the 1-core caveat), and the
  # pooled decision cost must not regress more than 10% against the
  # committed baseline at any grid size.
  new=$(bench_rate "$gate_json" ext_twin "decision cand=8 prune" \
        serial_speedup)
  if [[ -z "$new" ]]; then
    echo "bench gate: missing serial_speedup row at 8 candidates" >&2
    failed=1
  elif awk -v s="$new" 'BEGIN { exit !(s < 2.0) }'; then
    echo "bench gate: FAIL decision-loop serial_speedup at 8 candidates:" \
         "${new}x < 2x" >&2
    failed=1
  else
    echo "bench gate: ok decision-loop serial_speedup at 8 candidates:" \
         "${new}x >= 2x"
  fi
  # The regression rows get a 125% ceiling rather than the usual 110%:
  # the isolated decision loop shows ~10-17% run-to-run drift at the
  # larger grid sizes even on an idle host (frequency/cache effects on
  # a sub-millisecond loop), so a tight ceiling flakes on noise. These
  # rows guard structural collapses; single-digit drift is the
  # serial_speedup floor's job.
  local dl_cand dl_config
  for dl_cand in 2 4 8 16; do
    dl_config="decision cand=${dl_cand} pooled"
    old=$(bench_rate BENCH_hotpath.json ext_twin "$dl_config" decision_ms)
    new=$(bench_rate "$gate_json" ext_twin "$dl_config" decision_ms)
    if [[ -z "$old" || -z "$new" ]]; then
      echo "bench gate: missing decision_ms row for '$dl_config'" >&2
      failed=1
      continue
    fi
    if awk -v new="$new" -v old="$old" \
         'BEGIN { exit !(new > 1.25 * old) }'
    then
      echo "bench gate: FAIL '$dl_config': decision_ms $new > 125% of" \
           "baseline $old" >&2
      failed=1
    else
      echo "bench gate: ok '$dl_config': decision_ms $new vs baseline $old"
    fi
  done
  # ...and the acceptance floor stays proven: calendar queue >= 2x the
  # binary heap at 262k+ pending events.
  new=$(bench_rate "$gate_json" ext_huge_scale "pending n=262144" \
        wheel_speedup)
  if [[ -z "$new" ]]; then
    echo "bench gate: missing wheel_speedup row at n=262144" >&2
    failed=1
  elif awk -v s="$new" 'BEGIN { exit !(s < 2.0) }'; then
    echo "bench gate: FAIL wheel_speedup at n=262144: ${new}x < 2x" >&2
    failed=1
  else
    echo "bench gate: ok wheel_speedup at n=262144: ${new}x >= 2x"
  fi
  return "$failed"
}

huge_smoke() {
  echo "==> configure+build [release]"
  cmake --preset release
  cmake --build --preset release -j "$(nproc)"
  # 10^5-txn open-system differential: heap+vector vs wheel+SoA (and the
  # lazy-heap policy) must produce byte-identical schedule digests; the
  # bench exits 1 on divergence. Then a one-case chaos campaign re-proves
  # it under a randomized fault cocktail with the validator auditing.
  echo "==> huge smoke [release]"
  WEBTX_BENCH_JSON=build-release/BENCH_smoke.json \
    ./build-release/bench/ext_huge_scale --smoke
  ./build-release/tools/chaos --huge --cases 1 --seed 2009 --txns 100000 \
    --out build-release/chaos_huge_reproducer.chaos
}

chaos_smoke() {
  # Seeded so the campaign is reproducible run to run; 100 randomized
  # fault cases take well under a second. On a violation the tool exits
  # nonzero (failing the script) after writing the shrunken reproducer.
  echo "==> chaos smoke [default]"
  ./build/tools/chaos --cases 100 --seed 2009 \
    --out build/chaos_reproducer.chaos
}

live_smoke() {
  # 50 randomized cases against the real rt::Executor under the virtual
  # clock: each case runs twice (trace digests must match) and the live
  # validator audits every trace. Nonzero exit (violation or
  # nondeterminism) fails the script after writing the reproducer.
  echo "==> live chaos smoke [default]"
  ./build/tools/chaos --live --cases 50 --seed 2009 \
    --out build/live_chaos_reproducer.chaos
}

steal_smoke() {
  # 25 multi-server overloaded cases, each run with a global-state policy
  # and its "-sharded" variant: digests must be byte-identical and the
  # validator audits every sharded run. Exits 1 on any divergence.
  echo "==> steal smoke [default]"
  ./build/tools/chaos --steal --cases 25 --seed 2009
}

twin_smoke() {
  # 25 randomized digital-twin cases: the shadow-simulator controller
  # steers rt::Executor through flash crowds / ON-OFF arrivals under the
  # virtual clock. Each case runs twice (trace+decision digest must
  # match), the live validator audits the trace, and the controller
  # contract (dwell, hysteresis, fallback cooldown) is checked. A
  # violation exits nonzero after writing the shrunken reproducer. The
  # campaign also sweeps forecast_threads 1/2/8 and the pooling toggle
  # per case — the digest must not move. The forecast-engine unit suite
  # runs first: parallel fan-out, pooled-vs-rebuilt, and pruning must
  # all be byte-identical to the serial baseline before the randomized
  # campaign bothers.
  echo "==> twin smoke [default]"
  ./build/tests/rt_test --gtest_filter='TwinForecastEngineTest.*'
  ./build/tools/chaos --twin --cases 25 --seed 2009 \
    --out build/twin_chaos_reproducer.chaos
}

if [[ "$BENCH_GATE" == "1" ]]; then
  bench_gate
  echo "All checks passed."
  exit 0
fi

if [[ "$HUGE_SMOKE" == "1" ]]; then
  huge_smoke
  echo "All checks passed."
  exit 0
fi

if [[ "$CHAOS_ONLY" == "1" ]]; then
  run_preset default
  chaos_smoke
  echo "All checks passed."
  exit 0
fi

if [[ "$LIVE_ONLY" == "1" ]]; then
  run_preset default
  live_smoke
  echo "All checks passed."
  exit 0
fi

if [[ "$STEAL_ONLY" == "1" ]]; then
  run_preset default
  steal_smoke
  echo "All checks passed."
  exit 0
fi

if [[ "$TWIN_ONLY" == "1" ]]; then
  run_preset default
  twin_smoke
  echo "All checks passed."
  exit 0
fi

run_preset default
if [[ "$FAST" == "0" ]]; then
  chaos_smoke
  live_smoke
  steal_smoke
  twin_smoke
  run_preset tsan
  run_preset asan
  run_preset ubsan
  bench_smoke
fi

echo "All checks passed."
