#!/usr/bin/env bash
# Full verification gate: build and run the test suite under the three
# CMake presets — plain (RelWithDebInfo), ThreadSanitizer (concurrency
# suites), and Address+LeakSanitizer (everything). This is what CI (and a
# release) should run; each stage stops the script on the first failure.
#
# Usage: scripts/check.sh [--fast]
#   --fast  plain preset only (skips the sanitizer builds)

set -euo pipefail
cd "$(dirname "$0")/.."

FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
fi

run_preset() {
  local preset="$1"
  echo "==> configure+build [$preset]"
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  echo "==> ctest [$preset]"
  ctest --preset "$preset" -j "$(nproc)"
}

run_preset default
if [[ "$FAST" == "0" ]]; then
  run_preset tsan
  run_preset asan
fi

echo "All checks passed."
