// A whole dynamic-content site on the webdb substrate: several page
// templates (dashboard, news, weather), a population of users across
// subscription tiers, Poisson request arrivals — expanded into a single
// transaction workload and scheduled under every policy. This is the
// paper's motivating system (Sec. I/II) end to end.
//
//   $ ./build/examples/webpage_server [num_requests] [seed]

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/distributions.h"
#include "common/rng.h"
#include "exp/table.h"
#include "sched/policy_factory.h"
#include "sim/simulator.h"
#include "webdb/cache.h"
#include "webdb/database.h"
#include "webdb/page.h"
#include "webdb/profiler.h"
#include "webdb/server.h"

namespace wdb = webtx::webdb;

namespace {

webtx::Status BuildSite(wdb::InMemoryDatabase& db) {
  WEBTX_RETURN_NOT_OK(db.CreateTable(
      "stocks", {{"symbol", wdb::ColumnType::kText},
                 {"price", wdb::ColumnType::kNumber},
                 {"change_pct", wdb::ColumnType::kNumber}}));
  WEBTX_RETURN_NOT_OK(db.CreateTable(
      "portfolio", {{"user", wdb::ColumnType::kText},
                    {"symbol", wdb::ColumnType::kText},
                    {"quantity", wdb::ColumnType::kNumber}}));
  WEBTX_RETURN_NOT_OK(db.CreateTable(
      "articles", {{"topic", wdb::ColumnType::kText},
                   {"headline", wdb::ColumnType::kText},
                   {"score", wdb::ColumnType::kNumber}}));
  WEBTX_RETURN_NOT_OK(db.CreateTable(
      "weather", {{"city", wdb::ColumnType::kText},
                  {"temperature", wdb::ColumnType::kNumber},
                  {"alert_level", wdb::ColumnType::kNumber}}));

  auto stocks = db.GetTable("stocks").ValueOrDie();
  for (int i = 0; i < 600; ++i) {
    WEBTX_RETURN_NOT_OK(stocks->Insert({"SYM" + std::to_string(i),
                                        15.0 + (i % 83) * 2.9,
                                        double((i * 7) % 19) - 9.0}));
  }
  auto portfolio = db.GetTable("portfolio").ValueOrDie();
  for (int u = 0; u < 40; ++u) {
    for (int i = 0; i < 20; ++i) {
      WEBTX_RETURN_NOT_OK(portfolio->Insert(
          {"user" + std::to_string(u),
           "SYM" + std::to_string((u * 31 + i * 13) % 600),
           double(1 + (u + i) % 7)}));
    }
  }
  auto articles = db.GetTable("articles").ValueOrDie();
  const char* topics[] = {"markets", "tech", "sports", "politics"};
  for (int i = 0; i < 800; ++i) {
    WEBTX_RETURN_NOT_OK(articles->Insert(
        {topics[i % 4], "headline-" + std::to_string(i),
         double(i % 100)}));
  }
  auto weather = db.GetTable("weather").ValueOrDie();
  for (int i = 0; i < 120; ++i) {
    WEBTX_RETURN_NOT_OK(weather->Insert(
        {"city" + std::to_string(i), -10.0 + (i % 45),
         double(i % 4)}));
  }
  return webtx::Status::OK();
}

wdb::PageTemplate DashboardPage(const std::string& user) {
  wdb::PageTemplate page;
  page.name = "dashboard";

  wdb::FragmentTemplate prices;
  prices.name = "prices";
  prices.query.name = "q_prices";
  prices.query.table = "stocks";
  prices.sla_offset = 14.0;
  prices.base_weight = 1.0;
  page.fragments.push_back(prices);

  wdb::FragmentTemplate mine;
  mine.name = "my_positions";
  mine.query.name = "q_positions";
  mine.query.table = "stocks";
  mine.query.join_table = "portfolio";
  mine.query.join_left_column = "symbol";
  mine.query.join_right_column = "symbol";
  mine.query.join_filters = {{"user", wdb::CompareOp::kEq, wdb::Value{user}}};
  mine.sla_offset = 10.0;
  mine.base_weight = 2.0;
  mine.depends_on = {0};
  page.fragments.push_back(mine);

  wdb::FragmentTemplate alerts;
  alerts.name = "alerts";
  alerts.query = mine.query;
  alerts.query.name = "q_alerts";
  alerts.query.filters = {{"change_pct", wdb::CompareOp::kGe,
                           wdb::Value{5.0}}};
  alerts.sla_offset = 6.0;
  alerts.base_weight = 3.0;
  alerts.depends_on = {1};
  page.fragments.push_back(alerts);

  return page;
}

wdb::PageTemplate NewsPage(const std::string& topic) {
  wdb::PageTemplate page;
  page.name = "news";

  wdb::FragmentTemplate feed;
  feed.name = "feed";
  feed.query.name = "q_feed_" + topic;
  feed.query.table = "articles";
  feed.query.filters = {{"topic", wdb::CompareOp::kEq, wdb::Value{topic}}};
  feed.sla_offset = 9.0;
  feed.base_weight = 1.0;
  page.fragments.push_back(feed);

  wdb::FragmentTemplate trending;
  trending.name = "trending";
  trending.query = feed.query;
  trending.query.name = "q_trending_" + topic;
  trending.query.filters.push_back(
      {"score", wdb::CompareOp::kGe, wdb::Value{80.0}});
  trending.sla_offset = 6.0;
  trending.base_weight = 2.0;
  trending.depends_on = {0};
  page.fragments.push_back(trending);

  return page;
}

wdb::PageTemplate WeatherPage() {
  wdb::PageTemplate page;
  page.name = "weather";

  wdb::FragmentTemplate conditions;
  conditions.name = "conditions";
  conditions.query.name = "q_conditions";
  conditions.query.table = "weather";
  conditions.sla_offset = 7.0;
  conditions.base_weight = 1.0;
  page.fragments.push_back(conditions);

  wdb::FragmentTemplate warnings;
  warnings.name = "warnings";
  warnings.query.name = "q_warnings";
  warnings.query.table = "weather";
  warnings.query.filters = {{"alert_level", wdb::CompareOp::kGe,
                             wdb::Value{2.0}}};
  warnings.sla_offset = 4.0;
  warnings.base_weight = 2.5;
  warnings.depends_on = {0};
  page.fragments.push_back(warnings);

  return page;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_requests = argc > 1 ? std::stoul(argv[1]) : 150;
  const uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 7;

  wdb::InMemoryDatabase db;
  const webtx::Status built = BuildSite(db);
  if (!built.ok()) {
    std::cerr << built << "\n";
    return EXIT_FAILURE;
  }

  wdb::Profiler profiler;
  wdb::FragmentCache cache(&db);
  wdb::PageRequestServer server(&db, &profiler, wdb::CostModel{}, &cache);

  webtx::Rng rng(seed);
  const webtx::ExponentialDistribution interarrival(/*rate=*/0.45);
  const char* topics[] = {"markets", "tech", "sports", "politics"};
  double clock = 0.0;
  for (size_t i = 0; i < num_requests; ++i) {
    clock += interarrival.Sample(rng);
    const auto tier =
        static_cast<wdb::SubscriptionTier>(rng.NextInRange(0, 2));
    const uint64_t kind = rng.NextInRange(0, 2);
    wdb::PageTemplate page;
    if (kind == 0) {
      page = DashboardPage("user" + std::to_string(rng.NextInRange(0, 39)));
    } else if (kind == 1) {
      page = NewsPage(topics[rng.NextInRange(0, 3)]);
    } else {
      page = WeatherPage();
    }
    auto ids = server.Submit(page, tier, clock);
    if (!ids.ok()) {
      std::cerr << ids.status() << "\n";
      return EXIT_FAILURE;
    }
    // Materialize as served so later identical fragments hit the cache
    // (the site's tables are static in this demo).
    for (const webtx::TxnId id : ids.ValueOrDie()) {
      if (!server.Materialize(id).ok()) return EXIT_FAILURE;
    }
  }

  std::cout << "site simulation: " << server.num_requests()
            << " page requests -> " << server.workload().size()
            << " web transactions over " << webtx::FormatFixed(clock, 1)
            << " time units\n\n";

  auto sim = webtx::Simulator::Create(server.workload());
  if (!sim.ok()) {
    std::cerr << sim.status() << "\n";
    return EXIT_FAILURE;
  }

  webtx::Table table({"policy", "avg tardiness", "avg weighted tardiness",
                      "max weighted tardiness", "miss ratio"});
  for (const char* name :
       {"FCFS", "EDF", "SRPT", "HDF", "Ready", "ASETS*",
        "ASETS*-BA(time=0.005)"}) {
    auto policy = webtx::CreatePolicy(name);
    if (!policy.ok()) {
      std::cerr << policy.status() << "\n";
      return EXIT_FAILURE;
    }
    const webtx::RunResult r = sim.ValueOrDie().Run(*policy.ValueOrDie());
    table.AddNumericRow(r.policy_name,
                        {r.avg_tardiness, r.avg_weighted_tardiness,
                         r.max_weighted_tardiness, r.miss_ratio});
  }
  table.Print(std::cout);
  const double lookups = static_cast<double>(cache.hits() + cache.misses());
  std::cout << "\nfragment cache: " << cache.hits() << "/" << lookups
            << " hits ("
            << webtx::FormatFixed(
                   lookups > 0 ? 100.0 * cache.hits() / lookups : 0.0, 1)
            << "%) — cached fragments entered the workload with length "
            << wdb::FragmentCache::kHitCost << "\n";
  return EXIT_SUCCESS;
}
