// Render ASCII Gantt charts of how different policies schedule the same
// workload — the clearest way to *see* the EDF domino effect and how
// ASETS* avoids it.
//
//   $ ./build/examples/schedule_gantt [seed] [servers]

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.h"
#include "sched/policy_factory.h"
#include "sim/schedule_validator.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace {

constexpr int kChartWidth = 100;

char GlyphFor(webtx::TxnId id) {
  constexpr char kGlyphs[] =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  return kGlyphs[id % (sizeof(kGlyphs) - 1)];
}

void Render(const std::vector<webtx::TransactionSpec>& txns,
            const webtx::RunResult& result, size_t servers) {
  double makespan = result.makespan;
  WEBTX_CHECK(makespan > 0.0);
  const double scale = kChartWidth / makespan;

  std::cout << result.policy_name << " (avg tardiness "
            << result.avg_tardiness << ", max weighted "
            << result.max_weighted_tardiness << "):\n";
  for (size_t s = 0; s < servers; ++s) {
    std::string lane(kChartWidth, '.');
    for (const auto& segment : result.schedule) {
      if (segment.server != s) continue;
      const int from = static_cast<int>(segment.start * scale);
      int to = static_cast<int>(segment.end * scale);
      if (to == from) to = from + 1;
      for (int c = from; c < to && c < kChartWidth; ++c) {
        lane[c] = GlyphFor(segment.txn);
      }
    }
    std::cout << "  S" << s << " |" << lane << "|\n";
  }
  // Deadline markers: '!' where a transaction missed, '^' where it met.
  std::string deadline_lane(kChartWidth, ' ');
  for (const auto& t : txns) {
    const int c = std::min(kChartWidth - 1,
                           static_cast<int>(t.deadline * scale));
    const bool missed = result.outcomes[t.id].missed_deadline;
    if (deadline_lane[c] == '!' ) continue;
    deadline_lane[c] = missed ? '!' : '^';
  }
  std::cout << "  dl |" << deadline_lane << "|  (^ met, ! missed)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed = argc > 1 ? std::stoull(argv[1]) : 4;
  const size_t servers = argc > 2 ? std::stoul(argv[2]) : 1;

  webtx::WorkloadSpec spec;
  spec.num_transactions = 14;
  spec.utilization = 0.9;
  spec.max_workflow_length = 3;
  spec.k_max = 2.0;
  auto generator = webtx::WorkloadGenerator::Create(spec);
  if (!generator.ok()) {
    std::cerr << generator.status() << "\n";
    return EXIT_FAILURE;
  }
  const auto txns = generator.ValueOrDie().Generate(seed);

  webtx::SimOptions options;
  options.record_schedule = true;
  options.num_servers = servers;
  auto sim = webtx::Simulator::Create(txns, options);
  if (!sim.ok()) {
    std::cerr << sim.status() << "\n";
    return EXIT_FAILURE;
  }

  std::cout << "Gantt charts for " << txns.size() << " transactions on "
            << servers << " server(s); each glyph column ~ "
            << "1/" << kChartWidth << " of the makespan.\n\n";
  for (const char* name : {"FCFS", "EDF", "SRPT", "ASETS*"}) {
    auto policy = webtx::CreatePolicy(name);
    if (!policy.ok()) {
      std::cerr << policy.status() << "\n";
      return EXIT_FAILURE;
    }
    const webtx::RunResult r = sim.ValueOrDie().Run(*policy.ValueOrDie());
    const webtx::Status audit = webtx::ValidateSchedule(txns, r, servers);
    if (!audit.ok()) {
      std::cerr << "schedule failed validation: " << audit << "\n";
      return EXIT_FAILURE;
    }
    Render(txns, r, servers);
  }
  return EXIT_SUCCESS;
}
