// The paper's Sec. VI claim in action: ASETS is "not limited to
// web-databases ... [it] could be applied in any Real-Time system with
// soft-deadlines". This example schedules REAL work (CPU-burning tasks)
// on worker threads through rt::Executor, comparing FCFS against ASETS
// on identical task mixes: a stream of short urgent jobs competing with
// long background jobs.
//
//   $ ./build/examples/live_scheduler [tasks_per_policy]

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exp/table.h"
#include "rt/executor.h"
#include "sched/policy_factory.h"

namespace {

// Spins for roughly `seconds` of CPU time (the "query execution").
void Burn(double seconds) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration<double>(seconds);
  volatile uint64_t sink = 0;
  while (std::chrono::steady_clock::now() < until) {
    sink = sink + 1;
  }
}

struct MixResult {
  double avg_tardiness_ms = 0.0;
  double max_tardiness_ms = 0.0;
  double miss_ratio = 0.0;
};

MixResult RunMix(const std::string& policy_name, size_t num_tasks,
                 uint64_t seed) {
  auto policy = webtx::CreatePolicy(policy_name);
  if (!policy.ok()) {
    std::cerr << policy.status() << "\n";
    std::exit(EXIT_FAILURE);
  }
  webtx::rt::ExecutorOptions options;
  options.num_workers = 2;
  webtx::rt::Executor executor(std::move(policy).ValueOrDie(), options);

  webtx::Rng rng(seed);
  std::vector<webtx::TxnId> ids;
  ids.reserve(num_tasks);
  for (size_t i = 0; i < num_tasks; ++i) {
    // 1 in 4 tasks is a long background job; the rest are short and
    // urgent — exactly the mix where deadline-aware ordering pays.
    const bool long_job = rng.NextInRange(0, 3) == 0;
    const double cost = long_job ? 0.020 : 0.002;
    webtx::rt::TaskSpec task;
    task.estimated_cost = cost;
    task.relative_deadline = long_job ? 0.5 : 0.015;
    task.weight = 1.0;
    task.fn = [cost] { Burn(cost); };
    auto id = executor.Submit(std::move(task));
    if (!id.ok()) {
      std::cerr << id.status() << "\n";
      std::exit(EXIT_FAILURE);
    }
    ids.push_back(id.ValueOrDie());
    // Bursty submission: occasional pauses let the queue drain.
    if (rng.NextInRange(0, 9) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(4));
    }
  }
  executor.Drain();

  MixResult result;
  size_t missed = 0;
  for (const webtx::TxnId id : ids) {
    const auto outcome = executor.OutcomeOf(id);
    const double tardiness_ms = outcome.tardiness_seconds * 1e3;
    result.avg_tardiness_ms += tardiness_ms;
    result.max_tardiness_ms = std::max(result.max_tardiness_ms,
                                       tardiness_ms);
    if (tardiness_ms > 0.0) ++missed;
  }
  result.avg_tardiness_ms /= static_cast<double>(ids.size());
  result.miss_ratio =
      static_cast<double>(missed) / static_cast<double>(ids.size());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_tasks = argc > 1 ? std::stoul(argv[1]) : 300;
  std::cout << "Live scheduling of " << num_tasks
            << " real CPU tasks on 2 workers (short urgent jobs vs long "
               "background jobs):\n\n";

  webtx::Table table({"policy", "avg tardiness (ms)", "max tardiness (ms)",
                      "deadline miss ratio"});
  for (const char* name : {"FCFS", "EDF", "SRPT", "ASETS"}) {
    const MixResult r = RunMix(name, num_tasks, /*seed=*/7);
    table.AddNumericRow(name,
                        {r.avg_tardiness_ms, r.max_tardiness_ms,
                         r.miss_ratio});
  }
  table.Print(std::cout);
  std::cout << "\nDeadline-aware policies keep the short urgent jobs from "
               "queueing behind\nlong background work; FCFS cannot.\n";
  return EXIT_SUCCESS;
}
