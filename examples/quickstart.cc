// Quickstart: build a small workload by hand, run three schedulers on it,
// and compare tardiness. Start here to learn the public API.
//
//   $ ./build/examples/quickstart

#include <cstdlib>
#include <iostream>

#include "exp/table.h"
#include "sched/policy_factory.h"
#include "sim/simulator.h"
#include "txn/transaction.h"

using webtx::CreatePolicy;
using webtx::RunResult;
using webtx::Simulator;
using webtx::Table;
using webtx::TransactionSpec;
using webtx::TxnId;

int main() {
  // A dynamic web page with four fragments (the paper's Sec. II-B stock
  // scenario): T0 lists all stock prices, T1 joins them with the user's
  // portfolio, T2 aggregates the portfolio value and T3 computes alerts.
  // T1 depends on T0; T2 and T3 depend on T1 — yet the *alerts* fragment
  // (T3) has the earliest deadline: precedence conflicts with urgency,
  // which is exactly the regime ASETS* is designed for.
  std::vector<TransactionSpec> txns(4);
  txns[0] = {.id = 0, .arrival = 0, .length = 8, .deadline = 30, .weight = 1,
             .dependencies = {}};
  txns[1] = {.id = 1, .arrival = 0, .length = 6, .deadline = 28, .weight = 2,
             .dependencies = {0}};
  txns[2] = {.id = 2, .arrival = 0, .length = 4, .deadline = 26, .weight = 3,
             .dependencies = {1}};
  txns[3] = {.id = 3, .arrival = 0, .length = 2, .deadline = 17, .weight = 5,
             .dependencies = {1}};

  // A burst of unrelated short transactions competing for the server.
  for (TxnId i = 4; i < 12; ++i) {
    txns.push_back({.id = i,
                    .arrival = 1.0 + 0.5 * (i - 4),
                    .length = 3,
                    .deadline = 8.0 + 2.0 * (i - 4),
                    .weight = 1,
                    .dependencies = {}});
  }

  auto sim = Simulator::Create(txns);
  if (!sim.ok()) {
    std::cerr << "workload rejected: " << sim.status() << "\n";
    return EXIT_FAILURE;
  }

  Table table({"policy", "avg tardiness", "avg weighted tardiness",
               "max weighted tardiness", "miss ratio"});
  for (const char* name : {"EDF", "SRPT", "ASETS*"}) {
    auto policy = CreatePolicy(name);
    if (!policy.ok()) {
      std::cerr << policy.status() << "\n";
      return EXIT_FAILURE;
    }
    const RunResult r = sim.ValueOrDie().Run(*policy.ValueOrDie());
    table.AddNumericRow(name,
                        {r.avg_tardiness, r.avg_weighted_tardiness,
                         r.max_weighted_tardiness, r.miss_ratio});
  }

  std::cout << "Scheduling " << txns.size()
            << " web transactions (one page workflow + a burst):\n\n";
  table.Print(std::cout);
  std::cout << "\nASETS* adapts between EDF and HDF/SRPT per scheduling "
               "point,\nusing workflow representatives to boost heads whose "
               "dependents are urgent.\n";
  return EXIT_SUCCESS;
}
