// The paper's Sec. II-B application scenario, end to end on the webdb
// substrate: a personalized stock page with four interdependent fragments,
// materialized by real queries against an in-memory backend database, for
// users of different subscription tiers — then scheduled under EDF, HDF
// and ASETS*.
//
//   $ ./build/examples/stock_portfolio_page

#include <cstdlib>
#include <iostream>
#include <string>

#include "exp/table.h"
#include "sched/policy_factory.h"
#include "sim/simulator.h"
#include "webdb/database.h"
#include "webdb/page.h"
#include "webdb/profiler.h"
#include "webdb/query_parser.h"
#include "webdb/server.h"

namespace wdb = webtx::webdb;

namespace {

// Populates the single back-end database: a market-wide stock table and
// per-user portfolios.
webtx::Status BuildDatabase(wdb::InMemoryDatabase& db) {
  WEBTX_RETURN_NOT_OK(db.CreateTable(
      "stocks", {{"symbol", wdb::ColumnType::kText},
                 {"price", wdb::ColumnType::kNumber},
                 {"change_pct", wdb::ColumnType::kNumber}}));
  WEBTX_RETURN_NOT_OK(db.CreateTable(
      "portfolio", {{"user", wdb::ColumnType::kText},
                    {"symbol", wdb::ColumnType::kText},
                    {"quantity", wdb::ColumnType::kNumber}}));

  auto stocks = db.GetTable("stocks");
  for (int i = 0; i < 400; ++i) {
    const std::string symbol = "SYM" + std::to_string(i);
    const double price = 10.0 + (i % 97) * 3.17;
    const double change = ((i * 13) % 21) - 10.0;  // -10% .. +10%
    WEBTX_RETURN_NOT_OK(stocks.ValueOrDie()->Insert(
        {symbol, price, change}));
  }
  auto portfolio = db.GetTable("portfolio");
  for (const std::string user : {"alice", "bob", "carol"}) {
    for (int i = 0; i < 25; ++i) {
      const int pick = (std::hash<std::string>{}(user) + i * 17) % 400;
      WEBTX_RETURN_NOT_OK(portfolio.ValueOrDie()->Insert(
          {user, "SYM" + std::to_string(pick),
           static_cast<double>(1 + i % 9)}));
    }
  }
  return webtx::Status::OK();
}

// The four-fragment page of Sec. II-B for one user. T1 -> T2 -> {T3, T4};
// alerts (T4) carry the earliest SLA and the highest importance, so
// precedence conflicts with urgency exactly as the paper describes.
wdb::PageTemplate StockPageFor(const std::string& user) {
  wdb::PageTemplate page;
  page.name = "stock_dashboard:" + user;

  wdb::FragmentTemplate all_prices;
  all_prices.name = "all_prices";
  all_prices.query.name = "q_all_prices";
  all_prices.query.table = "stocks";
  all_prices.sla_offset = 12.0;
  all_prices.base_weight = 1.0;
  page.fragments.push_back(all_prices);

  wdb::FragmentTemplate my_prices;
  my_prices.name = "portfolio_prices";
  my_prices.query.name = "q_portfolio_prices";
  my_prices.query.table = "stocks";
  my_prices.query.join_table = "portfolio";
  my_prices.query.join_left_column = "symbol";
  my_prices.query.join_right_column = "symbol";
  my_prices.query.join_filters = {
      {"user", wdb::CompareOp::kEq, wdb::Value{user}}};
  my_prices.sla_offset = 10.0;
  my_prices.base_weight = 1.5;
  my_prices.depends_on = {0};
  page.fragments.push_back(my_prices);

  wdb::FragmentTemplate value;
  value.name = "portfolio_value";
  value.query = my_prices.query;
  value.query.name = "q_portfolio_value";
  value.query.aggregate = wdb::AggregateFn::kSum;
  value.query.aggregate_column = "price";
  value.sla_offset = 8.0;
  value.base_weight = 2.0;
  value.depends_on = {1};
  page.fragments.push_back(value);

  // The alerts fragment shows the SQL-ish surface syntax (see
  // webdb/query_parser.h); the other fragments build QuerySpec directly.
  wdb::FragmentTemplate alerts;
  alerts.name = "alerts";
  alerts.query =
      wdb::ParseQuery(
          "SELECT * FROM stocks JOIN portfolio ON symbol = symbol "
          "WHERE portfolio.user = '" +
          user + "' AND change_pct >= 5")
          .ValueOrDie();
  alerts.query.name = "q_alerts";
  alerts.sla_offset = 5.0;  // user wants alerts first
  alerts.base_weight = 3.0;
  alerts.depends_on = {1};
  page.fragments.push_back(alerts);

  return page;
}

int RunDemo() {
  wdb::InMemoryDatabase db;
  const webtx::Status built = BuildDatabase(db);
  if (!built.ok()) {
    std::cerr << built << "\n";
    return EXIT_FAILURE;
  }

  wdb::Profiler profiler;
  wdb::PageRequestServer server(&db, &profiler);

  // Three users with different subscription tiers hit the site in a burst.
  struct Req {
    std::string user;
    wdb::SubscriptionTier tier;
    double arrival;
  };
  const Req reqs[] = {
      {"alice", wdb::SubscriptionTier::kGold, 0.0},
      {"bob", wdb::SubscriptionTier::kBronze, 0.5},
      {"carol", wdb::SubscriptionTier::kSilver, 1.0},
      {"alice", wdb::SubscriptionTier::kGold, 6.0},
      {"bob", wdb::SubscriptionTier::kBronze, 6.2},
  };
  for (const Req& r : reqs) {
    auto ids = server.Submit(StockPageFor(r.user), r.tier, r.arrival);
    if (!ids.ok()) {
      std::cerr << ids.status() << "\n";
      return EXIT_FAILURE;
    }
  }

  std::cout << "Submitted " << server.num_requests() << " page requests ("
            << server.workload().size() << " web transactions).\n\n";

  auto sim = webtx::Simulator::Create(server.workload());
  if (!sim.ok()) {
    std::cerr << sim.status() << "\n";
    return EXIT_FAILURE;
  }

  webtx::Table summary({"policy", "avg weighted tardiness",
                        "max weighted tardiness", "miss ratio"});
  webtx::RunResult asets_result;
  for (const char* name : {"EDF", "HDF", "ASETS*"}) {
    auto policy = webtx::CreatePolicy(name);
    const webtx::RunResult r =
        sim.ValueOrDie().Run(*policy.ValueOrDie());
    summary.AddNumericRow(name, {r.avg_weighted_tardiness,
                                 r.max_weighted_tardiness, r.miss_ratio});
    if (std::string(name) == "ASETS*") asets_result = r;
  }
  summary.Print(std::cout);

  // Per-fragment view of the ASETS* run: which SLAs held?
  std::cout << "\nPer-fragment outcome under ASETS*:\n\n";
  webtx::Table detail(
      {"txn", "page", "fragment", "deadline", "finish", "tardiness"});
  for (webtx::TxnId id = 0; id < asets_result.outcomes.size(); ++id) {
    const auto& ref = server.RefOf(id);
    const auto& o = asets_result.outcomes[id];
    detail.AddRow({"T" + std::to_string(id), ref.page_name,
                   ref.fragment_name,
                   webtx::FormatFixed(sim.ValueOrDie().specs()[id].deadline, 2),
                   webtx::FormatFixed(o.finish, 2),
                   webtx::FormatFixed(o.tardiness, 2)});
  }
  detail.Print(std::cout);

  // Materialize the pages for real and show the profiler learning costs.
  const webtx::Status mat = server.MaterializeAll();
  if (!mat.ok()) {
    std::cerr << mat << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "\nProfiler after one materialization pass ("
            << profiler.num_classes() << " query classes):\n";
  for (const char* cls : {"q_all_prices", "q_portfolio_prices",
                          "q_portfolio_value", "q_alerts"}) {
    std::cout << "  " << cls << ": "
              << webtx::FormatFixed(profiler.Estimate(cls, 0.0), 3)
              << " time units\n";
  }
  return EXIT_SUCCESS;
}

}  // namespace

int main() { return RunDemo(); }
