// Capture a generated workload to a CSV trace, or replay a trace under a
// chosen policy. Traces make runs inspectable and exactly repeatable.
//
//   $ ./build/examples/trace_replay generate /tmp/trace.csv --util=0.7
//   $ ./build/examples/trace_replay replay /tmp/trace.csv ASETS*
//   $ ./build/examples/trace_replay replay /tmp/trace.csv EDF SRPT ASETS

#include <cstdlib>
#include <iostream>
#include <string>

#include "exp/table.h"
#include "sched/policy_factory.h"
#include "sim/simulator.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace {

int Generate(const std::string& path, int argc, char** argv) {
  webtx::WorkloadSpec spec;
  spec.max_weight = 10;
  spec.max_workflow_length = 5;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--util=", 0) == 0) {
      spec.utilization = std::stod(arg.substr(7));
    } else if (arg.rfind("--n=", 0) == 0) {
      spec.num_transactions = std::stoul(arg.substr(4));
    } else if (arg.rfind("--seed=", 0) == 0) {
      // fallthrough handled below
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return EXIT_FAILURE;
    }
  }
  uint64_t seed = 42;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) seed = std::stoull(arg.substr(7));
  }

  auto generator = webtx::WorkloadGenerator::Create(spec);
  if (!generator.ok()) {
    std::cerr << generator.status() << "\n";
    return EXIT_FAILURE;
  }
  const auto txns = generator.ValueOrDie().Generate(seed);
  const webtx::Status s = webtx::WriteTrace(path, txns);
  if (!s.ok()) {
    std::cerr << s << "\n";
    return EXIT_FAILURE;
  }
  std::cout << "wrote " << txns.size() << " transactions to " << path
            << " (utilization " << spec.utilization << ", seed " << seed
            << ")\n";
  return EXIT_SUCCESS;
}

int Replay(const std::string& path, int argc, char** argv) {
  auto txns = webtx::ReadTrace(path);
  if (!txns.ok()) {
    std::cerr << txns.status() << "\n";
    return EXIT_FAILURE;
  }
  auto sim = webtx::Simulator::Create(std::move(txns).ValueOrDie());
  if (!sim.ok()) {
    std::cerr << sim.status() << "\n";
    return EXIT_FAILURE;
  }

  webtx::Table table({"policy", "avg tardiness", "avg weighted tardiness",
                      "max weighted tardiness", "miss ratio",
                      "avg response"});
  for (int i = 0; i < argc; ++i) {
    auto policy = webtx::CreatePolicy(argv[i]);
    if (!policy.ok()) {
      std::cerr << policy.status() << "\n";
      return EXIT_FAILURE;
    }
    const webtx::RunResult r = sim.ValueOrDie().Run(*policy.ValueOrDie());
    table.AddNumericRow(r.policy_name,
                        {r.avg_tardiness, r.avg_weighted_tardiness,
                         r.max_weighted_tardiness, r.miss_ratio,
                         r.avg_response});
  }
  std::cout << "replayed " << sim.ValueOrDie().specs().size()
            << " transactions from " << path << ":\n\n";
  table.Print(std::cout);
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "generate") {
    return Generate(argv[2], argc - 3, argv + 3);
  }
  if (argc >= 4 && std::string(argv[1]) == "replay") {
    return Replay(argv[2], argc - 3, argv + 3);
  }
  std::cerr << "usage:\n  trace_replay generate <path> [--util=U] [--n=N] "
               "[--seed=S]\n  trace_replay replay <path> <policy> "
               "[policy...]\n";
  return EXIT_FAILURE;
}
