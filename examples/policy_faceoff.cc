// Compare any set of scheduling policies on a Table-I workload across a
// utilization sweep.
//
//   $ ./build/examples/policy_faceoff                      # paper defaults
//   $ ./build/examples/policy_faceoff --policies=EDF,SRPT,ASETS
//       --kmax=2 --n=500 --seeds=3 --metric=avg_tardiness
//   $ ./build/examples/policy_faceoff --weights=10 --workflow-len=5
//       --policies=EDF,HDF,ASETS* --metric=avg_weighted_tardiness
//   $ ./build/examples/policy_faceoff --threads=8 --progress=1
// (flags may appear on one line; wrapped here for readability)
//
// The sweep fans out to --threads workers (0 = all hardware threads);
// the table is bit-identical for every thread count.

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/sweep.h"
#include "exp/table.h"

namespace {

std::vector<std::string> SplitComma(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string field;
  while (std::getline(is, field, ',')) out.push_back(field);
  return out;
}

struct Args {
  std::vector<std::string> policies = {"FCFS", "LS", "EDF", "SRPT", "ASETS"};
  std::string metric = "avg_tardiness";
  webtx::WorkloadSpec spec;
  size_t seeds = 5;
  size_t threads = 0;  // 0 = hardware concurrency
  bool progress = false;
};

bool ParseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::cerr << "expected --key=value, got: " << arg << "\n";
      return false;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "policies") {
      args.policies = SplitComma(value);
    } else if (key == "metric") {
      args.metric = value;
    } else if (key == "n") {
      args.spec.num_transactions = std::stoul(value);
    } else if (key == "kmax") {
      args.spec.k_max = std::stod(value);
    } else if (key == "alpha") {
      args.spec.zipf_alpha = std::stod(value);
    } else if (key == "weights") {
      args.spec.max_weight = std::stoul(value);
    } else if (key == "workflow-len") {
      args.spec.max_workflow_length = std::stoul(value);
    } else if (key == "workflows-per-txn") {
      args.spec.max_workflows_per_txn = std::stoul(value);
    } else if (key == "seeds") {
      args.seeds = std::stoul(value);
    } else if (key == "threads") {
      args.threads = std::stoul(value);
    } else if (key == "progress") {
      args.progress = value != "0";
    } else {
      std::cerr << "unknown flag --" << key << "\n";
      return false;
    }
  }
  return true;
}

double MetricOf(const webtx::SweepCell& cell, const std::string& metric) {
  if (metric == "avg_tardiness") return cell.avg_tardiness;
  if (metric == "avg_weighted_tardiness") return cell.avg_weighted_tardiness;
  if (metric == "max_weighted_tardiness") return cell.max_weighted_tardiness;
  if (metric == "miss_ratio") return cell.miss_ratio;
  if (metric == "avg_response") return cell.avg_response;
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, args)) return EXIT_FAILURE;

  webtx::SweepConfig config;
  config.base = args.spec;
  config.utilizations = webtx::PaperUtilizationGrid();
  config.policies = args.policies;
  config.seeds.clear();
  for (uint64_t s = 1; s <= args.seeds; ++s) config.seeds.push_back(s);
  config.num_threads = args.threads;
  if (args.progress) {
    config.progress = [](size_t completed, size_t total) {
      std::cerr << "\rworkload instances: " << completed << "/" << total
                << (completed == total ? "\n" : "") << std::flush;
    };
  }

  auto cells = webtx::RunSweep(config);
  if (!cells.ok()) {
    std::cerr << cells.status() << "\n";
    return EXIT_FAILURE;
  }

  std::vector<std::string> columns = {"utilization"};
  for (const auto& p : args.policies) columns.push_back(p);
  webtx::Table table(columns);
  const size_t np = args.policies.size();
  const auto& all = cells.ValueOrDie();
  for (size_t u = 0; u < config.utilizations.size(); ++u) {
    std::vector<double> row;
    for (size_t p = 0; p < np; ++p) {
      const double m = MetricOf(all[u * np + p], args.metric);
      if (m < 0.0) {
        std::cerr << "unknown metric '" << args.metric << "'\n";
        return EXIT_FAILURE;
      }
      row.push_back(m);
    }
    table.AddNumericRow(webtx::FormatFixed(config.utilizations[u], 1), row);
  }

  std::cout << args.metric << " (" << args.seeds << "-seed average, N="
            << args.spec.num_transactions << ", alpha="
            << args.spec.zipf_alpha << ", k_max=" << args.spec.k_max
            << "):\n\n";
  table.Print(std::cout);
  return EXIT_SUCCESS;
}
