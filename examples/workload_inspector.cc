// Inspect a workload: distributional statistics of lengths, slacks,
// weights, interarrivals and workflow shapes — either for a generated
// Table-I workload or for a CSV trace.
//
//   $ ./build/examples/workload_inspector --util=0.8 --workflow-len=5
//   $ ./build/examples/workload_inspector --trace=/tmp/trace.csv

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/stats.h"
#include "exp/table.h"
#include "txn/dependency_graph.h"
#include "txn/workflow.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace {

void Describe(const std::vector<webtx::TransactionSpec>& txns) {
  webtx::StreamingStats lengths;
  webtx::StreamingStats weights;
  webtx::StreamingStats slack_ratio;
  webtx::StreamingStats interarrival;
  webtx::QuantileSketch length_q;
  webtx::QuantileSketch slack_q;
  double prev_arrival = 0.0;
  double total_work = 0.0;
  size_t with_deps = 0;
  for (const auto& t : txns) {
    lengths.Add(t.length);
    length_q.Add(t.length);
    weights.Add(t.weight);
    const double slack = t.InitialSlack();
    slack_ratio.Add(slack / t.length);
    slack_q.Add(slack);
    if (t.id > 0) interarrival.Add(t.arrival - prev_arrival);
    prev_arrival = t.arrival;
    total_work += t.length;
    if (!t.dependencies.empty()) ++with_deps;
  }
  const double horizon = txns.empty() ? 0.0 : txns.back().arrival;

  webtx::Table stats({"statistic", "mean", "stddev", "min", "max"});
  const auto row = [&](const std::string& label,
                       const webtx::StreamingStats& s) {
    stats.AddNumericRow(label, {s.mean(), s.stddev(), s.min(), s.max()});
  };
  row("length", lengths);
  row("weight", weights);
  row("initial slack / length", slack_ratio);
  row("interarrival", interarrival);
  stats.Print(std::cout);

  std::cout << "\ntransactions: " << txns.size() << " ("
            << with_deps << " dependent)\n"
            << "total work:   " << webtx::FormatFixed(total_work, 1)
            << " over horizon " << webtx::FormatFixed(horizon, 1)
            << " -> empirical utilization "
            << webtx::FormatFixed(horizon > 0 ? total_work / horizon : 0.0,
                                  3)
            << "\nlength quantiles (p50/p90/p99): "
            << webtx::FormatFixed(length_q.Quantile(0.5), 1) << " / "
            << webtx::FormatFixed(length_q.Quantile(0.9), 1) << " / "
            << webtx::FormatFixed(length_q.Quantile(0.99), 1)
            << "\nslack quantiles  (p10/p50/p90): "
            << webtx::FormatFixed(slack_q.Quantile(0.1), 1) << " / "
            << webtx::FormatFixed(slack_q.Quantile(0.5), 1) << " / "
            << webtx::FormatFixed(slack_q.Quantile(0.9), 1) << "\n";

  auto graph = webtx::DependencyGraph::Build(txns);
  if (!graph.ok()) {
    std::cout << "dependency graph invalid: " << graph.status() << "\n";
    return;
  }
  const auto registry =
      webtx::WorkflowRegistry::Build(graph.ValueOrDie());
  webtx::StreamingStats wf_sizes;
  for (const auto& wf : registry.workflows()) {
    wf_sizes.Add(static_cast<double>(wf.members.size()));
  }
  std::cout << "workflows:    " << registry.num_workflows()
            << " (mean size " << webtx::FormatFixed(wf_sizes.mean(), 2)
            << ", max " << registry.max_workflow_size() << ", "
            << graph.ValueOrDie().num_edges() << " precedence edges)\n";

  // Precedence/deadline conflicts (Sec. II-B): dependents due before a
  // predecessor — the regime where workflow-aware scheduling pays off.
  size_t conflicts = 0;
  size_t edges = 0;
  for (const auto& t : txns) {
    for (const webtx::TxnId dep : t.dependencies) {
      ++edges;
      if (t.deadline < txns[dep].deadline) ++conflicts;
    }
  }
  if (edges > 0) {
    std::cout << "conflicting precedence edges: " << conflicts << "/"
              << edges << " ("
              << webtx::FormatFixed(
                     100.0 * static_cast<double>(conflicts) /
                         static_cast<double>(edges),
                     1)
              << "%)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  webtx::WorkloadSpec spec;
  uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--util=", 0) == 0) {
      spec.utilization = std::stod(arg.substr(7));
    } else if (arg.rfind("--n=", 0) == 0) {
      spec.num_transactions = std::stoul(arg.substr(4));
    } else if (arg.rfind("--alpha=", 0) == 0) {
      spec.zipf_alpha = std::stod(arg.substr(8));
    } else if (arg.rfind("--kmax=", 0) == 0) {
      spec.k_max = std::stod(arg.substr(7));
    } else if (arg.rfind("--weights=", 0) == 0) {
      spec.max_weight = std::stoul(arg.substr(10));
    } else if (arg.rfind("--workflow-len=", 0) == 0) {
      spec.max_workflow_length = std::stoul(arg.substr(15));
    } else if (arg.rfind("--burstiness=", 0) == 0) {
      spec.burstiness = std::stod(arg.substr(13));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return EXIT_FAILURE;
    }
  }

  std::vector<webtx::TransactionSpec> txns;
  if (!trace_path.empty()) {
    auto loaded = webtx::ReadTrace(trace_path);
    if (!loaded.ok()) {
      std::cerr << loaded.status() << "\n";
      return EXIT_FAILURE;
    }
    txns = std::move(loaded).ValueOrDie();
    std::cout << "trace " << trace_path << ":\n\n";
  } else {
    auto generator = webtx::WorkloadGenerator::Create(spec);
    if (!generator.ok()) {
      std::cerr << generator.status() << "\n";
      return EXIT_FAILURE;
    }
    txns = generator.ValueOrDie().Generate(seed);
    std::cout << "generated workload (seed " << seed << "):\n\n";
  }
  Describe(txns);
  return EXIT_SUCCESS;
}
