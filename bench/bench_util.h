#ifndef WEBTX_BENCH_BENCH_UTIL_H_
#define WEBTX_BENCH_BENCH_UTIL_H_

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "common/check.h"
#include "exp/table.h"
#include "sched/scheduler_policy.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace webtx::bench {

/// Where figure harnesses drop their CSVs (created on demand).
inline std::string ResultsDir() {
  const std::string dir = "webtx_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// Saves a printed table as CSV next to the stdout output.
inline void SaveCsv(const Table& table, const std::string& name) {
  const std::string path = ResultsDir() + "/" + name + ".csv";
  const Status s = table.WriteCsv(path);
  if (s.ok()) {
    std::cout << "(series saved to " << path << ")\n";
  } else {
    std::cout << "(could not save " << path << ": " << s << ")\n";
  }
}

/// Per-policy metric means for one utilization point, averaged over seeds.
struct PolicyMetrics {
  double avg_tardiness = 0.0;
  double avg_weighted_tardiness = 0.0;
  double max_weighted_tardiness = 0.0;
  double miss_ratio = 0.0;
};

/// Runs `policies` (caller-owned, reusable) on identical workload
/// instances for every seed and averages the metrics. Unlike
/// exp/RunSweep, this accepts policy *objects*, so ablation benches can
/// pass custom-configured instances.
inline std::vector<PolicyMetrics> RunPoint(
    const WorkloadSpec& spec, const std::vector<SchedulerPolicy*>& policies,
    const std::vector<uint64_t>& seeds) {
  auto generator = WorkloadGenerator::Create(spec);
  WEBTX_CHECK(generator.ok()) << generator.status().ToString();
  SimOptions options;
  options.record_outcomes = false;

  std::vector<PolicyMetrics> out(policies.size());
  for (const uint64_t seed : seeds) {
    auto sim =
        Simulator::Create(generator.ValueOrDie().Generate(seed), options);
    WEBTX_CHECK(sim.ok()) << sim.status().ToString();
    for (size_t p = 0; p < policies.size(); ++p) {
      const RunResult r = sim.ValueOrDie().Run(*policies[p]);
      out[p].avg_tardiness += r.avg_tardiness;
      out[p].avg_weighted_tardiness += r.avg_weighted_tardiness;
      out[p].max_weighted_tardiness += r.max_weighted_tardiness;
      out[p].miss_ratio += r.miss_ratio;
    }
  }
  const auto n = static_cast<double>(seeds.size());
  for (auto& m : out) {
    m.avg_tardiness /= n;
    m.avg_weighted_tardiness /= n;
    m.max_weighted_tardiness /= n;
    m.miss_ratio /= n;
  }
  return out;
}

/// The paper's five averaged runs.
inline std::vector<uint64_t> PaperSeeds() { return {1, 2, 3, 4, 5}; }

}  // namespace webtx::bench

#endif  // WEBTX_BENCH_BENCH_UTIL_H_
