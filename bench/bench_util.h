#ifndef WEBTX_BENCH_BENCH_UTIL_H_
#define WEBTX_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "exp/sweep.h"
#include "exp/table.h"
#include "sched/scheduler_policy.h"
#include "sim/simulator.h"

namespace webtx::bench {

/// Where figure harnesses drop their CSVs (created on demand).
inline std::string ResultsDir() {
  const std::string dir = "webtx_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// Saves a printed table as CSV next to the stdout output.
inline void SaveCsv(const Table& table, const std::string& name) {
  const std::string path = ResultsDir() + "/" + name + ".csv";
  const Status s = table.WriteCsv(path);
  if (s.ok()) {
    std::cout << "(series saved to " << path << ")\n";
  } else {
    std::cout << "(could not save " << path << ": " << s << ")\n";
  }
}

/// Sweep worker threads for the figure harnesses: the WEBTX_THREADS
/// environment variable when set to a positive integer (1 = serial;
/// handy for speedup measurements), otherwise 0 = all hardware threads.
/// Every CSV is identical for any value (exp/sweep.h determinism
/// contract).
inline size_t NumThreads() {
  if (const char* env = std::getenv("WEBTX_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 0;
}

/// PolicyFactory for a concrete policy type constructed from `args`
/// (copied into the factory); ablation benches pass custom option
/// structs. Policies needing per-instance arguments (e.g. a wrapped
/// inner policy) use an explicit lambda instead.
template <typename Policy, typename... Args>
PolicyFactory FactoryOf(Args... args) {
  return [args...]() -> std::unique_ptr<SchedulerPolicy> {
    return std::make_unique<Policy>(args...);
  };
}

/// Factories for CreatePolicy specs; aborts on unknown specs (bench
/// drivers hardcode their policy lists).
inline std::vector<PolicyFactory> SpecFactories(
    const std::vector<std::string>& specs) {
  auto factories = MakePolicyFactories(specs);
  WEBTX_CHECK(factories.ok()) << factories.status().ToString();
  return std::move(factories).ValueOrDie();
}

/// Per-policy metric means for one utilization point, averaged over seeds.
struct PolicyMetrics {
  double avg_tardiness = 0.0;
  double avg_weighted_tardiness = 0.0;
  double max_weighted_tardiness = 0.0;
  double miss_ratio = 0.0;
  double preemptions = 0.0;
  /// Fraction of transactions completed (1 for failure-free runs).
  double goodput = 0.0;
  /// Mean injected faults per run (outage windows / abort instants that
  /// hit a busy server).
  double outages = 0.0;
  double aborts = 0.0;
};

/// Runs every factory's policy on identical workload instances for each
/// seed and averages the metrics. Unlike exp/RunSweep, this accepts
/// policy *factories*, so ablation benches can supply custom-configured
/// instances, and it keeps the caller's raw seeds (no DeriveSeed), so
/// figures stay comparable with the pre-parallel harness. Instances fan
/// out to NumThreads() workers via exp/RunInstances; the averages are
/// accumulated in seed order on the calling thread and are identical for
/// any thread count.
inline std::vector<PolicyMetrics> RunPoint(
    const WorkloadSpec& spec, const std::vector<PolicyFactory>& factories,
    const std::vector<uint64_t>& seeds, SimOptions sim_options = {}) {
  std::vector<WorkloadInstance> instances;
  instances.reserve(seeds.size());
  for (const uint64_t seed : seeds) {
    instances.push_back(WorkloadInstance{spec, seed});
  }
  ParallelRunOptions options;
  options.sim = sim_options;
  options.sim.record_outcomes = false;
  options.num_threads = NumThreads();
  auto runs = RunInstances(instances, factories, options);
  WEBTX_CHECK(runs.ok()) << runs.status().ToString();

  std::vector<PolicyMetrics> out(factories.size());
  for (const std::vector<RunResult>& run : runs.ValueOrDie()) {
    for (size_t p = 0; p < factories.size(); ++p) {
      out[p].avg_tardiness += run[p].avg_tardiness;
      out[p].avg_weighted_tardiness += run[p].avg_weighted_tardiness;
      out[p].max_weighted_tardiness += run[p].max_weighted_tardiness;
      out[p].miss_ratio += run[p].miss_ratio;
      out[p].preemptions += static_cast<double>(run[p].num_preemptions);
      out[p].goodput += run[p].goodput;
      out[p].outages += static_cast<double>(run[p].num_outages);
      out[p].aborts += static_cast<double>(run[p].num_aborts);
    }
  }
  const auto n = static_cast<double>(seeds.size());
  for (PolicyMetrics& m : out) {
    m.avg_tardiness /= n;
    m.avg_weighted_tardiness /= n;
    m.max_weighted_tardiness /= n;
    m.miss_ratio /= n;
    m.preemptions /= n;
    m.goodput /= n;
    m.outages /= n;
    m.aborts /= n;
  }
  return out;
}

/// The paper's five averaged runs.
inline std::vector<uint64_t> PaperSeeds() { return {1, 2, 3, 4, 5}; }

}  // namespace webtx::bench

#endif  // WEBTX_BENCH_BENCH_UTIL_H_
