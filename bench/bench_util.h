#ifndef WEBTX_BENCH_BENCH_UTIL_H_
#define WEBTX_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "exp/sweep.h"
#include "exp/table.h"
#include "sched/scheduler_policy.h"
#include "sim/simulator.h"

namespace webtx::bench {

/// Where figure harnesses drop their CSVs (created on demand).
inline std::string ResultsDir() {
  const std::string dir = "webtx_results";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

/// Saves a printed table as CSV next to the stdout output.
inline void SaveCsv(const Table& table, const std::string& name) {
  const std::string path = ResultsDir() + "/" + name + ".csv";
  const Status s = table.WriteCsv(path);
  if (s.ok()) {
    std::cout << "(series saved to " << path << ")\n";
  } else {
    std::cout << "(could not save " << path << ": " << s << ")\n";
  }
}

/// Sweep worker threads for the figure harnesses: the WEBTX_THREADS
/// environment variable when set to a positive integer (1 = serial;
/// handy for speedup measurements), otherwise 0 = all hardware threads.
/// Every CSV is identical for any value (exp/sweep.h determinism
/// contract).
inline size_t NumThreads() {
  if (const char* env = std::getenv("WEBTX_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 0;
}

/// PolicyFactory for a concrete policy type constructed from `args`
/// (copied into the factory); ablation benches pass custom option
/// structs. Policies needing per-instance arguments (e.g. a wrapped
/// inner policy) use an explicit lambda instead.
template <typename Policy, typename... Args>
PolicyFactory FactoryOf(Args... args) {
  return [args...]() -> std::unique_ptr<SchedulerPolicy> {
    return std::make_unique<Policy>(args...);
  };
}

/// Factories for CreatePolicy specs; aborts on unknown specs (bench
/// drivers hardcode their policy lists).
inline std::vector<PolicyFactory> SpecFactories(
    const std::vector<std::string>& specs) {
  auto factories = MakePolicyFactories(specs);
  WEBTX_CHECK(factories.ok()) << factories.status().ToString();
  return std::move(factories).ValueOrDie();
}

/// Per-policy metric means for one utilization point, averaged over seeds.
struct PolicyMetrics {
  double avg_tardiness = 0.0;
  double avg_weighted_tardiness = 0.0;
  double max_weighted_tardiness = 0.0;
  double miss_ratio = 0.0;
  double preemptions = 0.0;
  /// Fraction of transactions completed (1 for failure-free runs).
  double goodput = 0.0;
  /// Mean injected faults per run (outage windows / abort instants that
  /// hit a busy server).
  double outages = 0.0;
  double aborts = 0.0;
  /// Mean crash windows injected and transactions migrated off crashed
  /// servers per run (ext_failover).
  double crashes = 0.0;
  double migrations = 0.0;
};

/// Runs every factory's policy on identical workload instances for each
/// seed and averages the metrics. Unlike exp/RunSweep, this accepts
/// policy *factories*, so ablation benches can supply custom-configured
/// instances, and it keeps the caller's raw seeds (no DeriveSeed), so
/// figures stay comparable with the pre-parallel harness. Instances fan
/// out to NumThreads() workers via exp/RunInstances; the averages are
/// accumulated in seed order on the calling thread and are identical for
/// any thread count.
inline std::vector<PolicyMetrics> RunPoint(
    const WorkloadSpec& spec, const std::vector<PolicyFactory>& factories,
    const std::vector<uint64_t>& seeds, SimOptions sim_options = {}) {
  std::vector<WorkloadInstance> instances;
  instances.reserve(seeds.size());
  for (const uint64_t seed : seeds) {
    instances.push_back(WorkloadInstance{spec, seed});
  }
  ParallelRunOptions options;
  options.sim = sim_options;
  options.sim.record_outcomes = false;
  options.num_threads = NumThreads();
  auto runs = RunInstances(instances, factories, options);
  WEBTX_CHECK(runs.ok()) << runs.status().ToString();

  std::vector<PolicyMetrics> out(factories.size());
  for (const std::vector<RunResult>& run : runs.ValueOrDie()) {
    for (size_t p = 0; p < factories.size(); ++p) {
      out[p].avg_tardiness += run[p].avg_tardiness;
      out[p].avg_weighted_tardiness += run[p].avg_weighted_tardiness;
      out[p].max_weighted_tardiness += run[p].max_weighted_tardiness;
      out[p].miss_ratio += run[p].miss_ratio;
      out[p].preemptions += static_cast<double>(run[p].num_preemptions);
      out[p].goodput += run[p].goodput;
      out[p].outages += static_cast<double>(run[p].num_outages);
      out[p].aborts += static_cast<double>(run[p].num_aborts);
      out[p].crashes += static_cast<double>(run[p].num_crashes);
      out[p].migrations += static_cast<double>(run[p].num_migrations);
    }
  }
  const auto n = static_cast<double>(seeds.size());
  for (PolicyMetrics& m : out) {
    m.avg_tardiness /= n;
    m.avg_weighted_tardiness /= n;
    m.max_weighted_tardiness /= n;
    m.miss_ratio /= n;
    m.preemptions /= n;
    m.goodput /= n;
    m.outages /= n;
    m.aborts /= n;
    m.crashes /= n;
    m.migrations /= n;
  }
  return out;
}

/// The paper's five averaged runs.
inline std::vector<uint64_t> PaperSeeds() { return {1, 2, 3, 4, 5}; }

// ---------------------------------------------------------------------------
// Machine-readable benchmark output (BENCH_hotpath.json).

/// One benchmark measurement row. Serialized as a flat JSON object so the
/// perf trajectory can be diffed / plotted without a parser for nested
/// structures.
struct BenchRow {
  std::string bench;   // benchmark binary / family, e.g. "sweep_throughput"
  std::string config;  // point within the family, e.g. "fig08 threads=2"
  std::string metric;  // e.g. "instances_per_sec"
  double value = 0.0;
  std::string unit;  // e.g. "1/s", "ms", "ns/event"
};

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Target file for benchmark rows: $WEBTX_BENCH_JSON when set, else
/// BENCH_hotpath.json in the working directory (scripts/check.sh runs the
/// bench binaries from the repo root).
inline std::string BenchJsonPath() {
  if (const char* env = std::getenv("WEBTX_BENCH_JSON")) {
    if (*env != '\0') return env;
  }
  return "BENCH_hotpath.json";
}

/// Reads rows previously written by WriteBenchRows (one flat object per
/// line; see below). Unparsable lines are skipped. Lets benches relate
/// fresh measurements to recorded baselines — e.g. sweep_throughput
/// reports its speedup over the "seed_baseline" family, measured once
/// at the pre-optimization revision and kept in the file since.
inline std::vector<BenchRow> ReadBenchRows(
    const std::string& path = BenchJsonPath()) {
  std::vector<BenchRow> rows;
  std::ifstream in(path);
  if (!in) return rows;
  // Extracts the value of a "key": "..." string field.
  const auto field = [](const std::string& line, const std::string& key,
                        std::string* out) {
    const std::string tag = "\"" + key + "\": \"";
    const size_t at = line.find(tag);
    if (at == std::string::npos) return false;
    const size_t start = at + tag.size();
    const size_t end = line.find('"', start);
    if (end == std::string::npos) return false;
    *out = line.substr(start, end - start);
    return true;
  };
  std::string line;
  while (std::getline(in, line)) {
    BenchRow row;
    if (!field(line, "bench", &row.bench) ||
        !field(line, "config", &row.config) ||
        !field(line, "metric", &row.metric) ||
        !field(line, "unit", &row.unit)) {
      continue;
    }
    const std::string tag = "\"value\": ";
    const size_t at = line.find(tag);
    if (at == std::string::npos) continue;
    row.value = std::strtod(line.c_str() + at + tag.size(), nullptr);
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Merges `rows` into the JSON file at `path`: existing rows from OTHER
/// bench families are kept, rows whose "bench" matches one being written
/// are replaced. The file is a JSON array with one row object per line —
/// written only by this function, which is what licenses the line-based
/// re-parse here.
inline void WriteBenchRows(const std::vector<BenchRow>& rows,
                           const std::string& path = BenchJsonPath()) {
  if (rows.empty()) return;
  std::set<std::string> rewritten;
  for (const BenchRow& row : rows) rewritten.insert(row.bench);

  std::vector<std::string> kept;
  if (std::ifstream in(path); in) {
    std::string line;
    while (std::getline(in, line)) {
      const size_t key = line.find("{\"bench\": \"");
      if (key == std::string::npos) continue;  // array brackets
      const size_t start = key + 11;
      const size_t end = line.find('"', start);
      if (end == std::string::npos) continue;
      if (rewritten.count(line.substr(start, end - start)) == 0) {
        if (line.back() == ',') line.pop_back();
        kept.push_back(line);
      }
    }
  }

  std::ostringstream body;
  body.precision(std::numeric_limits<double>::max_digits10);
  for (const std::string& line : kept) body << line << ",\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const BenchRow& row = rows[i];
    body << "{\"bench\": \"" << JsonEscape(row.bench) << "\", \"config\": \""
         << JsonEscape(row.config) << "\", \"metric\": \""
         << JsonEscape(row.metric) << "\", \"value\": " << row.value
         << ", \"unit\": \"" << JsonEscape(row.unit) << "\"}"
         << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::cout << "(could not write " << path << ")\n";
    return;
  }
  out << "[\n" << body.str() << "]\n";
  std::cout << "(benchmark rows saved to " << path << ")\n";
}

}  // namespace webtx::bench

#endif  // WEBTX_BENCH_BENCH_UTIL_H_
