// Extension: live overload control. The brownout/circuit-breaker
// admission controller consumes OBSERVED executor signals (completion
// tardiness + ready-depth EWMAs) where the static queue-depth cap sees
// only an instantaneous count and "none" admits everything. This
// harness ramps a seeded task stream from light load to 4x overload
// against the live rt::Executor under the deterministic VirtualClock —
// same arrivals, same fault timeline (stalls + crashes + watchdog),
// same seeds for every admission mode — and reports goodput, weighted
// goodput, completed-task tardiness, and survival of the heavy SLA
// tier. The story the brownout column tells: under overload it sheds
// LIGHT tasks early (observed tardiness trips tier floors), so the
// weighted goodput and the heavy tier hold up long after "none"
// collapses into uniform lateness and "depth" sheds blindly.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/distributions.h"
#include "common/rng.h"
#include "rt/clock.h"
#include "rt/executor.h"
#include "sched/admission.h"
#include "sched/policy_factory.h"

namespace webtx {
namespace {

constexpr size_t kNumWorkers = 4;
constexpr size_t kNumTasks = 1200;
constexpr double kMeanDuration = 0.1;    // virtual seconds
constexpr double kDeadlineSlack = 2.5;   // deadline = duration * slack
constexpr uint64_t kWorkloadSeed = 101;

enum class Mode { kNone, kDepth, kBrownout };
constexpr Mode kModes[] = {Mode::kNone, Mode::kDepth, Mode::kBrownout};

struct RunMetrics {
  double goodput = 0.0;           // completed / submitted
  double weighted_goodput = 0.0;  // completed weight / submitted weight
  double avg_tardiness = 0.0;     // completed tasks only
  double heavy_survival = 0.0;    // completion rate of the top SLA tier
};

/// SLA weight draw: 70% weight 1, 25% weight 4, 5% weight 16 — the
/// tiers the brownout controller's weight floor walks.
double DrawWeight(Rng& rng) {
  const double u = rng.NextDouble();
  if (u < 0.70) return 1.0;
  if (u < 0.95) return 4.0;
  return 16.0;
}

rt::ExecutorOptions OptionsFor(Mode mode,
                               std::shared_ptr<rt::Clock> clock) {
  rt::ExecutorOptions options;
  options.num_workers = kNumWorkers;
  options.clock = std::move(clock);
  // Moderate fault seasoning, identical across modes: stall windows
  // (watchdog fails over), occasional crashes (warm failover).
  options.faults.plan.outage_rate = 0.05;
  options.faults.plan.mean_outage_duration = 0.5;
  options.faults.plan.crash_rate = 0.02;
  options.faults.plan.mean_repair_duration = 1.0;
  options.faults.plan.seed = 11;
  options.watchdog = true;
  options.watchdog_stall_seconds = 0.1;
  options.retry_max_backoff = 0.2;
  switch (mode) {
    case Mode::kNone:
      break;
    case Mode::kDepth: {
      QueueDepthAdmissionOptions depth;
      depth.max_ready = 4 * kNumWorkers;
      options.admission = MakeQueueDepthAdmission(depth);
      break;
    }
    case Mode::kBrownout: {
      BrownoutAdmissionOptions brownout;
      brownout.tardiness_slo = kMeanDuration;          // one mean task late
      brownout.depth_slo = 4.0;                        // per up-worker
      brownout.ewma_alpha = 0.2;
      brownout.weight_tiers = {4.0, 16.0};
      brownout.breaker_trip_severity = 6.0;
      brownout.breaker_cooldown = 2.0;
      options.admission = MakeBrownoutAdmission(brownout);
      break;
    }
  }
  return options;
}

RunMetrics RunOne(Mode mode, double utilization) {
  auto clock = std::make_shared<rt::VirtualClock>();
  auto policy = CreatePolicy("EDF");
  WEBTX_CHECK(policy.ok()) << policy.status().ToString();
  rt::Executor exec(std::move(policy).ValueOrDie(),
                    OptionsFor(mode, clock));

  // Same seed for every mode: identical arrivals, durations, weights.
  Rng rng(kWorkloadSeed);
  const double mean_gap =
      kMeanDuration / (utilization * static_cast<double>(kNumWorkers));
  std::vector<double> weights;
  weights.reserve(kNumTasks);
  double arrival = 0.0;
  clock->RegisterParticipant();
  for (size_t i = 0; i < kNumTasks; ++i) {
    arrival += ExponentialDistribution(1.0 / mean_gap).Sample(rng);
    const double duration =
        ExponentialDistribution(1.0 / kMeanDuration).Sample(rng);
    const double weight = DrawWeight(rng);
    weights.push_back(weight);
    clock->SleepUntil(arrival, nullptr);
    rt::TaskSpec spec;
    spec.simulated_duration = duration;
    spec.estimated_cost = duration;
    spec.relative_deadline = duration * kDeadlineSlack;
    spec.weight = weight;
    WEBTX_CHECK(exec.Submit(spec).ok());
  }
  exec.Drain();
  exec.Shutdown();
  clock->DeregisterParticipant();

  RunMetrics metrics;
  double weight_total = 0.0, weight_done = 0.0, tardiness = 0.0;
  size_t completed = 0, heavy = 0, heavy_done = 0;
  for (TxnId id = 0; id < kNumTasks; ++id) {
    const rt::TaskOutcome outcome = exec.OutcomeOf(id);
    weight_total += weights[id];
    const bool done = outcome.result == rt::TaskResult::kCompleted;
    if (done) {
      ++completed;
      weight_done += weights[id];
      tardiness += outcome.tardiness_seconds;
    }
    if (weights[id] == 16.0) {
      ++heavy;
      if (done) ++heavy_done;
    }
  }
  metrics.goodput = static_cast<double>(completed) / kNumTasks;
  metrics.weighted_goodput = weight_done / weight_total;
  metrics.avg_tardiness =
      completed > 0 ? tardiness / static_cast<double>(completed) : 0.0;
  metrics.heavy_survival =
      heavy > 0 ? static_cast<double>(heavy_done) / heavy : 0.0;
  return metrics;
}

}  // namespace
}  // namespace webtx

int main() {
  using namespace webtx;
  const std::vector<double> utilizations = {0.8, 1.2, 1.6, 2.4, 3.2};
  const std::vector<std::string> header = {"utilization", "none", "depth",
                                           "brownout"};
  Table goodput(header);
  Table weighted(header);
  Table tardiness(header);
  Table heavy(header);

  std::cout << "Live overload control: rt::Executor under a utilization "
            << "ramp (virtual clock,\n"
            << kNumWorkers << " workers, " << kNumTasks
            << " tasks, stall+crash fault plan, EDF).\n"
            << "Modes: no admission, static queue-depth cap, adaptive "
            << "brownout.\n\n";

  for (const double utilization : utilizations) {
    std::vector<double> g, w, t, h;
    for (const Mode mode : kModes) {
      const RunMetrics metrics = RunOne(mode, utilization);
      g.push_back(metrics.goodput);
      w.push_back(metrics.weighted_goodput);
      t.push_back(metrics.avg_tardiness);
      h.push_back(metrics.heavy_survival);
    }
    const std::string label = FormatFixed(utilization, 1);
    goodput.AddNumericRow(label, g);
    weighted.AddNumericRow(label, w);
    tardiness.AddNumericRow(label, t);
    heavy.AddNumericRow(label, h);
  }

  std::cout << "Goodput (completed / submitted):\n";
  goodput.Print(std::cout);
  bench::SaveCsv(goodput, "ext_live_overload_goodput");
  std::cout << "\nWeighted goodput (completed weight / submitted weight):\n";
  weighted.Print(std::cout);
  bench::SaveCsv(weighted, "ext_live_overload_weighted_goodput");
  std::cout << "\nAvg tardiness of completed tasks (virtual seconds):\n";
  tardiness.Print(std::cout);
  bench::SaveCsv(tardiness, "ext_live_overload_tardiness");
  std::cout << "\nHeavy-tier (weight 16) completion rate:\n";
  heavy.Print(std::cout);
  bench::SaveCsv(heavy, "ext_live_overload_heavy_tier");
  return 0;
}
