// Extension: dispatch-overhead sensitivity. The paper's simulator charges
// nothing for switching transactions; real servers pay for context
// switches, and preemption-happy policies should degrade faster as that
// cost grows. Sweeps the per-switch cost at utilization 0.7.

#include <iostream>

#include "bench/bench_util.h"
#include "common/check.h"
#include "exp/table.h"
#include "sched/policy_factory.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace webtx {
namespace {

void RunSweepAtCost(double cost, Table& table) {
  WorkloadSpec spec;
  spec.utilization = 0.7;
  auto generator = WorkloadGenerator::Create(spec);
  WEBTX_CHECK(generator.ok());

  const std::vector<std::string> names = {"FCFS", "EDF", "SRPT", "ASETS"};
  std::vector<double> sums(names.size(), 0.0);
  std::vector<double> preemptions(names.size(), 0.0);
  const auto seeds = bench::PaperSeeds();
  for (const uint64_t seed : seeds) {
    SimOptions options;
    options.context_switch_cost = cost;
    options.record_outcomes = false;
    auto sim =
        Simulator::Create(generator.ValueOrDie().Generate(seed), options);
    WEBTX_CHECK(sim.ok());
    for (size_t p = 0; p < names.size(); ++p) {
      auto policy = CreatePolicy(names[p]);
      WEBTX_CHECK(policy.ok());
      const RunResult r = sim.ValueOrDie().Run(*policy.ValueOrDie());
      sums[p] += r.avg_tardiness;
      preemptions[p] += static_cast<double>(r.num_preemptions);
    }
  }
  std::vector<double> row;
  for (size_t p = 0; p < names.size(); ++p) {
    row.push_back(sums[p] / static_cast<double>(seeds.size()));
  }
  row.push_back(preemptions[3] / static_cast<double>(seeds.size()));
  table.AddNumericRow(FormatFixed(cost, 2), row);
}

}  // namespace
}  // namespace webtx

int main() {
  std::cout << "Extension — context-switch cost sensitivity "
               "(avg tardiness, utilization 0.7, 5 seeds):\n\n";
  webtx::Table table({"switch cost", "FCFS", "EDF", "SRPT", "ASETS*",
                      "ASETS* preemptions"});
  for (const double cost : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    webtx::RunSweepAtCost(cost, table);
  }
  table.Print(std::cout);
  webtx::bench::SaveCsv(table, "ext_overhead_sensitivity");
  std::cout << "\nEvery policy pays the cost when dispatching out of an "
               "idle server;\npreemptive policies additionally pay per "
               "preemption. The policy ordering\nsurvives realistic "
               "(sub-unit) switch costs.\n";
  return 0;
}
