// Extension: dispatch-overhead sensitivity. The paper's simulator charges
// nothing for switching transactions; real servers pay for context
// switches, and preemption-happy policies should degrade faster as that
// cost grows. Sweeps the per-switch cost at utilization 0.7.

#include <iostream>

#include "bench/bench_util.h"

namespace webtx {
namespace {

void RunSweepAtCost(double cost, Table& table) {
  WorkloadSpec spec;
  spec.utilization = 0.7;

  const auto policies =
      bench::SpecFactories({"FCFS", "EDF", "SRPT", "ASETS"});
  SimOptions options;
  options.context_switch_cost = cost;
  const auto m =
      bench::RunPoint(spec, policies, bench::PaperSeeds(), options);

  std::vector<double> row;
  for (const bench::PolicyMetrics& metrics : m) {
    row.push_back(metrics.avg_tardiness);
  }
  row.push_back(m[3].preemptions);
  table.AddNumericRow(FormatFixed(cost, 2), row);
}

}  // namespace
}  // namespace webtx

int main() {
  std::cout << "Extension — context-switch cost sensitivity "
               "(avg tardiness, utilization 0.7, 5 seeds):\n\n";
  webtx::Table table({"switch cost", "FCFS", "EDF", "SRPT", "ASETS*",
                      "ASETS* preemptions"});
  for (const double cost : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0}) {
    webtx::RunSweepAtCost(cost, table);
  }
  table.Print(std::cout);
  webtx::bench::SaveCsv(table, "ext_overhead_sensitivity");
  std::cout << "\nEvery policy pays the cost when dispatching out of an "
               "idle server;\npreemptive policies additionally pay per "
               "preemption. The policy ordering\nsurvives realistic "
               "(sub-unit) switch costs.\n";
  return 0;
}
