// Huge-scale extension bench (BENCH_hotpath.json): how the event-loop
// structures behave as the pending/ready populations grow from 10^3 to
// 10^6+ — the regime the paper's 1000-transaction runs never enter.
//
// Three series:
//
//   1. Pending-tier micro: hold-N churn (pop the earliest, push a new
//      event slightly ahead — the DES steady state) through the
//      historical binary heap and the calendar queue, at N from 2^10 to
//      2^18. The heap's log-N sift paths thrash the cache as N grows;
//      the wheel stays amortized O(1).
//   2. Ready-tier micro: the ASETS* hot-path pattern (update storms on
//      live keys punctuated by pops) through IndexedPriorityQueue and
//      LazyDeleteHeap at the same range.
//   3. End-to-end: open-system runs at populations 10^3..10^6
//      (10^7 with --pop7), workload streamed by
//      StreamingWorkloadGenerator, executed under three variants — the
//      historical structures ("old": heap + spec vector + indexed
//      ASETS*), the SimOptions structure knobs ("new": wheel + arena
//      SoA), and the knobs plus the tombstone-heap policy ("lazy":
//      + ASETS*-lazy). All three MUST produce byte-identical
//      ScheduleDigests — the bench doubles as a scale-level
//      differential test and exits 1 on divergence. events/sec rows
//      land in BENCH_hotpath.json.
//
// The acceptance claim lives in the pending micro at n=262144: the
// wheel's ops/sec must be >= 2x the heap's at that population
// (wheel_speedup row), while the 10^6-txn end-to-end run proves the
// huge population is feasible and byte-identity holds at scale. The
// e2e speedup itself is near 1x by design — the pending tier only
// holds the retry/deferral backlog, a small slice of each event's
// work at the paper-shaped configs.
//
// Flags: --smoke runs the 10^5 end-to-end differential plus one micro
// size (CI guard, seconds); --pop7 adds the 10^7 end-to-end point.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <queue>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/calendar_queue.h"
#include "common/rng.h"
#include "exp/chaos.h"
#include "sched/indexed_priority_queue.h"
#include "sched/lazy_delete_heap.h"
#include "sched/policy_factory.h"
#include "sim/fault_plan.h"
#include "workload/streaming_generator.h"

namespace webtx {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct WheelTraits {
  static double TimeOf(const internal::PendingEvent& e) { return e.time; }
  static bool Before(const internal::PendingEvent& a,
                     const internal::PendingEvent& b) {
    return internal::PendingAfter{}(b, a);
  }
};

/// Hold-N churn ops/sec through any pending-queue shaped structure
/// (pop earliest + push one event a random stride ahead).
template <typename Queue>
double PendingChurnRate(size_t n, size_t ops) {
  Queue q;
  Rng rng(42);
  uint32_t id = 0;
  for (size_t i = 0; i < n; ++i) {
    q.push(internal::PendingEvent{rng.NextDouble() * 64.0,
                                  static_cast<uint8_t>(i & 1), id++});
  }
  const auto start = Clock::now();
  for (size_t i = 0; i < ops; ++i) {
    const internal::PendingEvent head = q.top();
    q.pop();
    q.push(internal::PendingEvent{head.time + rng.NextDouble() * 64.0,
                                  static_cast<uint8_t>(i & 1), id++});
  }
  const double elapsed = SecondsSince(start);
  return static_cast<double>(ops) / elapsed;
}

// std::priority_queue exposes const top(); the wheel's top() is
// non-const (promotion). Wrap the heap so one template serves both.
class HeapPending {
 public:
  internal::PendingEvent top() { return q_.top(); }
  void pop() { q_.pop(); }
  void push(const internal::PendingEvent& e) { q_.push(e); }

 private:
  std::priority_queue<internal::PendingEvent,
                      std::vector<internal::PendingEvent>,
                      internal::PendingAfter>
      q_;
};

/// ASETS*-shaped ready-tier ops/sec: mostly key updates on live ids,
/// every 8th op a pop + re-push. Identical op stream for both structures.
template <typename Queue>
double ReadyStormRate(size_t n, size_t ops) {
  Queue q;
  q.Reserve(n);
  Rng rng(43);
  for (uint32_t id = 0; id < n; ++id) {
    q.Push(id, rng.NextDouble() * 1e6);
  }
  const auto start = Clock::now();
  for (size_t i = 0; i < ops; ++i) {
    if ((i & 7) == 7) {
      const uint32_t popped = q.Pop();
      q.Push(popped, 1e6 + rng.NextDouble() * 1e6);
    } else {
      q.Update(static_cast<uint32_t>(rng.NextInRange(0, n - 1)),
               rng.NextDouble() * 1e6);
    }
  }
  const double elapsed = SecondsSince(start);
  return static_cast<double>(ops) / elapsed;
}

struct EndToEnd {
  double events_per_sec = 0.0;
  uint64_t digest = 0;
  size_t events = 0;
};

struct Variant {
  const char* label;
  PendingQueueImpl pending_queue;
  TxnStoreLayout txn_store;
  const char* policy;
};

// "old" is the historical configuration, "new" flips exactly the two
// SimOptions structure knobs, "lazy" additionally swaps the policy's
// internal heaps — all three must digest identically. The lazy row is
// reported separately because its tombstone pruning runs on the
// read-top path and costs measurable events/sec at small ready
// populations (see the class comment in sched/lazy_delete_heap.h).
constexpr Variant kVariants[] = {
    {"old", PendingQueueImpl::kBinaryHeap, TxnStoreLayout::kSpecVector,
     "ASETS*"},
    {"new", PendingQueueImpl::kCalendarQueue, TxnStoreLayout::kArenaSoA,
     "ASETS*"},
    {"lazy", PendingQueueImpl::kCalendarQueue, TxnStoreLayout::kArenaSoA,
     "ASETS*-lazy"},
};

/// One open-system run at population `n`: streamed workload, aborts +
/// retries feeding the pending tier, workflows feeding the successor
/// arena.
EndToEnd RunEndToEnd(size_t n, const Variant& variant) {
  WorkloadSpec spec;
  spec.num_transactions = n;
  spec.utilization = 0.9;
  spec.max_weight = 10;
  spec.estimate_error = 0.2;
  spec.max_workflow_length = 4;
  spec.max_workflows_per_txn = 2;
  auto gen = StreamingWorkloadGenerator::Create(spec, 2026);
  WEBTX_CHECK(gen.ok()) << gen.status();
  StreamingWorkloadGenerator stream = std::move(gen).ValueOrDie();
  std::vector<TransactionSpec> txns;
  txns.reserve(n);
  while (!stream.Done()) txns.push_back(stream.Next());

  SimOptions options;
  options.num_servers = 4;
  options.record_outcomes = true;
  options.record_schedule = true;
  FaultPlanConfig fault;
  fault.seed = 1729;
  fault.abort_rate = 0.01;
  auto plan = FaultPlan::Create(fault);
  WEBTX_CHECK(plan.ok()) << plan.status();
  options.fault_plan = plan.ValueOrDie();
  options.retry.max_attempts = 3;
  options.retry.backoff = 1.0;
  options.pending_queue = variant.pending_queue;
  options.txn_store = variant.txn_store;

  EndToEnd out;
  const int reps = n <= 100000 ? 3 : 1;  // big runs are deterministic
  for (int rep = 0; rep < reps; ++rep) {
    auto sim = Simulator::Create(txns, options);
    WEBTX_CHECK(sim.ok()) << sim.status();
    auto policy = CreatePolicy(variant.policy);
    WEBTX_CHECK(policy.ok()) << policy.status();
    const auto start = Clock::now();
    const RunResult result = sim.ValueOrDie().Run(*policy.ValueOrDie());
    const double elapsed = SecondsSince(start);
    out.events = result.num_scheduling_points;
    out.digest = ScheduleDigest(result);
    out.events_per_sec =
        std::max(out.events_per_sec,
                 static_cast<double>(result.num_scheduling_points) / elapsed);
  }
  return out;
}

int RunBench(bool smoke, bool pop7) {
  std::vector<bench::BenchRow> rows;
  const auto row = [&rows](const std::string& config,
                           const std::string& metric, double value,
                           const std::string& unit) {
    rows.push_back(
        bench::BenchRow{"ext_huge_scale", config, metric, value, unit});
  };
  const std::string suffix = smoke ? "-smoke" : "";

  // --- Structure micro series ---------------------------------------
  const std::vector<size_t> micro_sizes =
      smoke ? std::vector<size_t>{65536}
            : std::vector<size_t>{1024, 16384, 262144};
  for (const size_t n : micro_sizes) {
    const size_t ops = smoke ? 200000 : 1000000;
    const double heap = PendingChurnRate<HeapPending>(n, ops);
    const double wheel =
        PendingChurnRate<CalendarQueue<internal::PendingEvent, WheelTraits>>(
            n, ops);
    const std::string label = "pending n=" + std::to_string(n) + suffix;
    row(label + " heap", "ops_per_sec", heap, "1/s");
    row(label + " wheel", "ops_per_sec", wheel, "1/s");
    row(label, "wheel_speedup", wheel / heap, "x");
    std::cout << label << ": heap " << heap << " ops/s, wheel " << wheel
              << " ops/s (" << wheel / heap << "x)\n";

    const double ipq = ReadyStormRate<IndexedPriorityQueue>(n, ops);
    const double lazy = ReadyStormRate<LazyDeleteHeap>(n, ops);
    const std::string ready = "ready n=" + std::to_string(n) + suffix;
    row(ready + " ipq", "ops_per_sec", ipq, "1/s");
    row(ready + " lazy", "ops_per_sec", lazy, "1/s");
    row(ready, "lazy_speedup", lazy / ipq, "x");
    std::cout << ready << ": ipq " << ipq << " ops/s, lazy " << lazy
              << " ops/s (" << lazy / ipq << "x)\n";
  }

  // --- End-to-end events/sec vs population, with digest differential -
  std::vector<size_t> populations;
  if (smoke) {
    populations = {100000};
  } else {
    populations = {1000, 10000, 100000, 1000000};
    if (pop7) populations.push_back(10000000);
  }
  int failures = 0;
  for (const size_t n : populations) {
    const std::string label = "e2e n=" + std::to_string(n) + suffix;
    EndToEnd runs[3];
    for (int v = 0; v < 3; ++v) {
      runs[v] = RunEndToEnd(n, kVariants[v]);
      row(label + " " + kVariants[v].label, "events_per_sec",
          runs[v].events_per_sec, "1/s");
      if (v > 0 && runs[v].digest != runs[0].digest) {
        std::cerr << "ext_huge_scale: DIGEST DIVERGENCE at n=" << n << " ("
                  << kVariants[v].label << "): old structures " << std::hex
                  << runs[0].digest << ", variant " << runs[v].digest
                  << std::dec << "\n";
        ++failures;
      }
    }
    row(label, "new_speedup",
        runs[1].events_per_sec / runs[0].events_per_sec, "x");
    std::cout << label << ": old " << runs[0].events_per_sec
              << " events/s, new " << runs[1].events_per_sec << " ("
              << runs[1].events_per_sec / runs[0].events_per_sec
              << "x), lazy " << runs[2].events_per_sec << " — "
              << runs[0].events << " events, digests "
              << (failures == 0 ? "byte-identical across all variants"
                                : "DIVERGED")
              << "\n";
  }

  bench::WriteBenchRows(rows);
  return failures > 0 ? 1 : 0;
}

}  // namespace
}  // namespace webtx

int main(int argc, char** argv) {
  bool smoke = false;
  bool pop7 = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--pop7") == 0) pop7 = true;
  }
  return webtx::RunBench(smoke, pop7);
}
