// Extension: fragment caching / WebView materialization (paper Sec. II-A,
// ref. [8]: "if caching or materialization is utilized for fragments,
// then transactions' lengths are adjusted accordingly"). A site serves a
// stream of page requests while the backend tables churn at a varying
// update rate; caching shortens fresh fragments to a lookup, and the
// update rate controls how often entries go stale.

#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "common/distributions.h"
#include "common/rng.h"
#include "exp/table.h"
#include "sched/policy_factory.h"
#include "sim/simulator.h"
#include "webdb/cache.h"
#include "webdb/database.h"
#include "webdb/page.h"
#include "webdb/profiler.h"
#include "webdb/server.h"

namespace wdb = webtx::webdb;

namespace {

void BuildSite(wdb::InMemoryDatabase& db) {
  WEBTX_CHECK(db.CreateTable("stocks", {{"symbol", wdb::ColumnType::kText},
                                        {"price", wdb::ColumnType::kNumber}})
                  .ok());
  auto stocks = db.GetTable("stocks").ValueOrDie();
  for (int i = 0; i < 500; ++i) {
    WEBTX_CHECK(
        stocks->Insert({"S" + std::to_string(i), 10.0 + i}).ok());
  }
}

wdb::PageTemplate Page() {
  wdb::PageTemplate page;
  page.name = "board";
  wdb::FragmentTemplate prices;
  prices.name = "prices";
  prices.query.name = "q_prices";
  prices.query.table = "stocks";
  prices.sla_offset = 3.0;
  page.fragments.push_back(prices);

  wdb::FragmentTemplate movers;
  movers.name = "movers";
  movers.query.name = "q_movers";
  movers.query.table = "stocks";
  movers.query.filters = {
      {"price", wdb::CompareOp::kGe, wdb::Value{400.0}}};
  movers.sla_offset = 2.0;
  movers.base_weight = 2.0;
  movers.depends_on = {0};
  page.fragments.push_back(movers);
  return page;
}

struct CellResult {
  double avg_weighted_tardiness = 0.0;
  double hit_ratio = 0.0;
};

CellResult RunSite(bool with_cache, double update_probability,
                   uint64_t seed) {
  wdb::InMemoryDatabase db;
  BuildSite(db);
  wdb::Profiler profiler;
  wdb::FragmentCache cache(&db);
  wdb::PageRequestServer server(&db, &profiler, wdb::CostModel{},
                                with_cache ? &cache : nullptr);

  // Request stream with interleaved table updates. Materializing right
  // after each request keeps the cache state in submission order, and
  // the profiler warm.
  webtx::Rng rng(seed);
  const webtx::ExponentialDistribution interarrival(0.5);
  double clock = 0.0;
  for (int i = 0; i < 150; ++i) {
    clock += interarrival.Sample(rng);
    if (rng.NextDouble() < update_probability) {
      auto stocks = db.GetTable("stocks").ValueOrDie();
      const auto row = static_cast<size_t>(rng.NextInRange(0, 499));
      WEBTX_CHECK(
          stocks->UpdateCell(row, "price", 10.0 + rng.NextDouble() * 500)
              .ok());
    }
    auto ids = server.Submit(Page(), wdb::SubscriptionTier::kSilver, clock);
    WEBTX_CHECK(ids.ok());
    for (const webtx::TxnId id : ids.ValueOrDie()) {
      WEBTX_CHECK(server.Materialize(id).ok());
    }
  }

  webtx::SimOptions options;
  options.record_outcomes = false;
  auto sim = webtx::Simulator::Create(server.workload(), options);
  WEBTX_CHECK(sim.ok());
  auto policy = webtx::CreatePolicy("ASETS*");
  WEBTX_CHECK(policy.ok());
  const webtx::RunResult r = sim.ValueOrDie().Run(*policy.ValueOrDie());

  CellResult cell;
  cell.avg_weighted_tardiness = r.avg_weighted_tardiness;
  const double lookups =
      static_cast<double>(cache.hits() + cache.misses());
  cell.hit_ratio =
      lookups > 0 ? static_cast<double>(cache.hits()) / lookups : 0.0;
  return cell;
}

}  // namespace

int main() {
  std::cout << "Extension — fragment caching under table churn (150 page "
               "requests, ASETS*, 5 seeds):\n\n";
  webtx::Table table({"update prob/request", "no cache", "with cache",
                      "cache hit ratio"});
  for (const double p : {0.0, 0.1, 0.3, 0.6, 1.0}) {
    double off = 0.0;
    double on = 0.0;
    double hit = 0.0;
    const int seeds = 5;
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
      off += RunSite(false, p, seed).avg_weighted_tardiness;
      const CellResult c = RunSite(true, p, seed);
      on += c.avg_weighted_tardiness;
      hit += c.hit_ratio;
    }
    table.AddNumericRow(webtx::FormatFixed(p, 1),
                        {off / seeds, on / seeds, hit / seeds});
  }
  table.Print(std::cout);
  webtx::bench::SaveCsv(table, "ext_fragment_caching");
  std::cout << "\nCaching slashes tardiness when tables are stable and "
               "degrades gracefully\ntoward the uncached cost as churn "
               "approaches one update per request.\n";
  return 0;
}
