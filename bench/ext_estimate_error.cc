// Extension: robustness to length-estimation error. The paper's
// scheduler plans with lengths "computed by the system based on previous
// statistics and profiles" (Sec. II-A) — i.e. estimates, which are never
// exact — yet its evaluation implicitly assumes perfect knowledge. This
// harness injects multiplicative estimation error e (estimate = true
// length * U[1-e, 1+e]) and measures how each policy degrades at
// utilization 0.7.
//
// Expected: EDF is immune (deadline keys don't use lengths; only its
// list membership in ASETS does); SRPT and ASETS degrade gracefully and
// ASETS stays at or below both baselines until estimates are mostly
// noise.

#include <iostream>

#include "bench/bench_util.h"

namespace webtx {
namespace {

void RunEstimateErrorSweep() {
  WorkloadSpec spec;
  spec.utilization = 0.7;

  const auto policies = bench::SpecFactories({"EDF", "SRPT", "ASETS"});

  Table table({"estimate error", "EDF", "SRPT", "ASETS*",
               "ASETS* vs best baseline %"});
  for (const double error : {0.0, 0.1, 0.25, 0.5, 0.75, 0.95}) {
    spec.estimate_error = error;
    const auto m = bench::RunPoint(spec, policies, bench::PaperSeeds());
    const double best = std::min(m[0].avg_tardiness, m[1].avg_tardiness);
    const double edge = (best - m[2].avg_tardiness) / best * 100.0;
    table.AddNumericRow(FormatFixed(error, 2),
                        {m[0].avg_tardiness, m[1].avg_tardiness,
                         m[2].avg_tardiness, edge});
  }
  std::cout << "Extension — robustness to length-estimation error "
               "(avg tardiness, utilization 0.7, 5 seeds):\n\n";
  table.Print(std::cout);
  bench::SaveCsv(table, "ext_estimate_error");
  std::cout << "\nEDF ignores lengths entirely; length-driven policies "
               "degrade with noisier\nestimates but adaptivity retains an "
               "edge well past realistic error levels.\n";
}

}  // namespace
}  // namespace webtx

int main() {
  webtx::RunEstimateErrorSweep();
  return 0;
}
