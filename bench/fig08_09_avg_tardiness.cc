// Figures 8 and 9: average tardiness of FCFS, LS, EDF, SRPT and ASETS at
// the transaction level as utilization sweeps 0.1 .. 1.0 (alpha = 0.5,
// k_max = 3). The paper splits the sweep into a low-utilization plot
// (Fig. 8, 0.1-0.5) and a high-utilization plot (Fig. 9, 0.6-1.0); we
// print both tables.
//
// Expected shape: EDF best among baselines at low load; SRPT overtakes
// EDF around utilization ~0.6; ASETS at or below both everywhere.
//
// This driver runs on the parallel sweep engine (exp/RunSweep): all 50
// (utilization, replication) workload instances fan out to worker
// threads, and the tables are identical for any WEBTX_THREADS value.

#include <chrono>
#include <iostream>

#include "bench/bench_util.h"

namespace webtx {
namespace {

void RunFigure() {
  SweepConfig config;  // Table I defaults
  config.utilizations = PaperUtilizationGrid();
  config.policies = {"FCFS", "LS", "EDF", "SRPT", "ASETS"};
  config.num_threads = bench::NumThreads();

  const auto start = std::chrono::steady_clock::now();
  auto cells = RunSweep(config);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  WEBTX_CHECK(cells.ok()) << cells.status().ToString();

  Table low({"utilization", "FCFS", "LS", "EDF", "SRPT", "ASETS*"});
  Table high({"utilization", "FCFS", "LS", "EDF", "SRPT", "ASETS*"});
  const size_t np = config.policies.size();
  const auto& all = cells.ValueOrDie();
  for (size_t u = 0; u < config.utilizations.size(); ++u) {
    std::vector<double> row;
    for (size_t p = 0; p < np; ++p) {
      row.push_back(all[u * np + p].avg_tardiness);
    }
    Table& target = u < 5 ? low : high;
    target.AddNumericRow(FormatFixed(config.utilizations[u], 1), row);
  }

  std::cout << "Figure 8 — Avg tardiness under LOW utilization "
               "(alpha=0.5, k_max=3, 5 seeds):\n\n";
  low.Print(std::cout);
  bench::SaveCsv(low, "fig08_low_utilization");
  std::cout << "\nFigure 9 — Avg tardiness under HIGH utilization:\n\n";
  high.Print(std::cout);
  bench::SaveCsv(high, "fig09_high_utilization");
  std::cout << "\nPaper check: EDF < SRPT at low load, SRPT < EDF past the "
               "~0.6 crossover,\nASETS* <= min(EDF, SRPT) throughout.\n";
  std::cout << "(sweep wall-clock: " << FormatFixed(elapsed * 1000.0, 1)
            << " ms, WEBTX_THREADS="
            << (bench::NumThreads() == 0 ? std::string("auto")
                                         : std::to_string(bench::NumThreads()))
            << ")\n";
}

}  // namespace
}  // namespace webtx

int main() {
  webtx::RunFigure();
  return 0;
}
