// Figures 8 and 9: average tardiness of FCFS, LS, EDF, SRPT and ASETS at
// the transaction level as utilization sweeps 0.1 .. 1.0 (alpha = 0.5,
// k_max = 3). The paper splits the sweep into a low-utilization plot
// (Fig. 8, 0.1-0.5) and a high-utilization plot (Fig. 9, 0.6-1.0); we
// print both tables.
//
// Expected shape: EDF best among baselines at low load; SRPT overtakes
// EDF around utilization ~0.6; ASETS at or below both everywhere.

#include <iostream>

#include "bench/bench_util.h"
#include "sched/policies/asets.h"
#include "sched/policies/single_queue_policies.h"

namespace webtx {
namespace {

void RunFigure() {
  WorkloadSpec spec;  // Table I defaults

  FcfsPolicy fcfs;
  LsPolicy ls;
  EdfPolicy edf;
  SrptPolicy srpt;
  AsetsPolicy asets;
  const std::vector<SchedulerPolicy*> policies = {&fcfs, &ls, &edf, &srpt,
                                                  &asets};

  Table low({"utilization", "FCFS", "LS", "EDF", "SRPT", "ASETS*"});
  Table high({"utilization", "FCFS", "LS", "EDF", "SRPT", "ASETS*"});
  for (int step = 1; step <= 10; ++step) {
    spec.utilization = 0.1 * step;
    const auto metrics =
        bench::RunPoint(spec, policies, bench::PaperSeeds());
    std::vector<double> row;
    for (const auto& m : metrics) row.push_back(m.avg_tardiness);
    Table& target = step <= 5 ? low : high;
    target.AddNumericRow(FormatFixed(spec.utilization, 1), row);
  }

  std::cout << "Figure 8 — Avg tardiness under LOW utilization "
               "(alpha=0.5, k_max=3, 5 seeds):\n\n";
  low.Print(std::cout);
  bench::SaveCsv(low, "fig08_low_utilization");
  std::cout << "\nFigure 9 — Avg tardiness under HIGH utilization:\n\n";
  high.Print(std::cout);
  bench::SaveCsv(high, "fig09_high_utilization");
  std::cout << "\nPaper check: EDF < SRPT at low load, SRPT < EDF past the "
               "~0.6 crossover,\nASETS* <= min(EDF, SRPT) throughout.\n";
}

}  // namespace
}  // namespace webtx

int main() {
  webtx::RunFigure();
  return 0;
}
