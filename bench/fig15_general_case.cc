// Figure 15: the general case — workflows plus per-transaction weights
// drawn uniformly from [1, 10]; metric is average WEIGHTED tardiness
// (Definition 5). EDF handles low utilization, HDF is the optimal policy
// under overload, and ASETS* combines both.

#include <iostream>

#include "bench/bench_util.h"

namespace webtx {
namespace {

void RunFigure() {
  WorkloadSpec spec;
  spec.max_weight = 10;
  spec.max_workflow_length = 5;

  const auto policies = bench::SpecFactories({"EDF", "HDF", "ASETS*"});

  Table table({"utilization", "EDF", "HDF", "ASETS*"});
  int star_wins = 0;
  for (int step = 1; step <= 10; ++step) {
    spec.utilization = 0.1 * step;
    const auto m = bench::RunPoint(spec, policies, bench::PaperSeeds());
    table.AddNumericRow(FormatFixed(spec.utilization, 1),
                        {m[0].avg_weighted_tardiness,
                         m[1].avg_weighted_tardiness,
                         m[2].avg_weighted_tardiness});
    if (m[2].avg_weighted_tardiness <=
        std::min(m[0].avg_weighted_tardiness,
                 m[1].avg_weighted_tardiness) +
            1e-9) {
      ++star_wins;
    }
  }

  std::cout << "Figure 15 — Avg weighted tardiness, general case "
               "(weights 1-10, workflows <= 5, 5 seeds):\n\n";
  table.Print(std::cout);
  std::cout << "ASETS* at or below both baselines at " << star_wins
            << "/10 utilizations\n";
  bench::SaveCsv(table, "fig15_general_case");
  std::cout << "\nPaper check: EDF wins low load, HDF wins overload, "
               "ASETS* tracks the winner everywhere.\n";
}

}  // namespace
}  // namespace webtx

int main() {
  webtx::RunFigure();
  return 0;
}
