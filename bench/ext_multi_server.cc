// Extension: scaling out the back end. The paper assumes a single server
// (Sec. II-A) and notes ASETS* "could be applied in any Real-Time system
// with soft-deadlines" (Sec. VI). With a fixed arrival stream sized to
// saturate several workers, this harness grows the worker pool and
// checks that (a) tardiness collapses as capacity catches up with load
// and (b) ASETS*'s advantage over the baselines survives parallelism.

#include <iostream>

#include "bench/bench_util.h"

namespace webtx {
namespace {

void RunForServers(size_t servers, Table& table) {
  WorkloadSpec spec;
  spec.max_weight = 10;
  spec.max_workflow_length = 5;
  // Arrival rate sized for ~3 busy workers; 1-2 servers are overloaded,
  // 4 servers comfortable, 8 idle-heavy.
  spec.utilization = 3.0;

  const auto policies =
      bench::SpecFactories({"FCFS", "EDF", "HDF", "Ready", "ASETS*"});
  SimOptions options;
  options.num_servers = servers;
  const auto m =
      bench::RunPoint(spec, policies, bench::PaperSeeds(), options);

  std::vector<double> row;
  for (const bench::PolicyMetrics& metrics : m) {
    row.push_back(metrics.avg_weighted_tardiness);
  }
  table.AddNumericRow(std::to_string(servers), row);
}

}  // namespace
}  // namespace webtx

int main() {
  std::cout << "Extension — back-end worker pool scaling (avg weighted "
               "tardiness; arrival rate sized for ~3 busy workers; "
               "weights 1-10, workflows <= 5, 5 seeds):\n\n";
  webtx::Table table({"servers", "FCFS", "EDF", "HDF", "Ready", "ASETS*"});
  for (const size_t servers : {1u, 2u, 3u, 4u, 6u, 8u}) {
    webtx::RunForServers(servers, table);
  }
  table.Print(std::cout);
  webtx::bench::SaveCsv(table, "ext_multi_server");
  std::cout << "\nTardiness collapses once capacity covers the offered "
               "load (~3 workers);\nthe adaptive workflow-aware policy "
               "keeps its lead at every pool size.\n";
  return 0;
}
