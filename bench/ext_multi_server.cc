// Extension: scaling out the back end. The paper assumes a single server
// (Sec. II-A) and notes ASETS* "could be applied in any Real-Time system
// with soft-deadlines" (Sec. VI). With a fixed arrival stream sized to
// saturate several workers, this harness grows the worker pool and
// checks that (a) tardiness collapses as capacity catches up with load
// and (b) ASETS*'s advantage over the baselines survives parallelism.
//
// A second section benchmarks the sharded event loop itself: a
// num_servers x shard-threads sweep of wall-clock against the frozen
// pre-shard simulator (tests/testing/reference_simulator.h), with the
// loop's own ShardTiming accounting (fault-timeline pregeneration vs
// barrier stalls) broken out per cell. shard_threads must never change
// results, so every sharded cell is fingerprint-checked against the
// reference run before its time is reported.

#include <algorithm>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "sched/policies/asets_star.h"
#include "sched/policies/asets_star_sharded.h"
#include "sim/simulator.h"
#include "tests/testing/reference_simulator.h"
#include "workload/generator.h"

namespace webtx {
namespace {

void RunForServers(size_t servers, Table& table) {
  WorkloadSpec spec;
  spec.max_weight = 10;
  spec.max_workflow_length = 5;
  // Arrival rate sized for ~3 busy workers; 1-2 servers are overloaded,
  // 4 servers comfortable, 8 idle-heavy.
  spec.utilization = 3.0;

  const auto policies =
      bench::SpecFactories({"FCFS", "EDF", "HDF", "Ready", "ASETS*"});
  SimOptions options;
  options.num_servers = servers;
  const auto m =
      bench::RunPoint(spec, policies, bench::PaperSeeds(), options);

  std::vector<double> row;
  for (const bench::PolicyMetrics& metrics : m) {
    row.push_back(metrics.avg_weighted_tardiness);
  }
  table.AddNumericRow(std::to_string(servers), row);
}

// ---------------------------------------------------------------------------
// Sharded event-loop timing: production Simulator vs the pre-shard
// reference, across num_servers x shard_threads.

using Clock = std::chrono::steady_clock;

constexpr int kShardReps = 5;

// Reps for the interleaved serial global-vs-sharded pair. More than
// kShardReps because this difference (a few percent) is the quantity
// the bench gate consumes, so it gets the extra samples (each rep is
// only a few ms; the tardiness sweep dominates the binary's runtime).
constexpr int kShardPairedReps = 15;

// Thread-scaling ratios are only recorded when both wall times clear
// this floor: a sub-2ms run is dominated by scheduler noise and a
// speedup computed from it would record noise as a trajectory point.
constexpr double kMinSpeedupMs = 2.0;

// Cheap equality fingerprint of a run (full byte-identity is pinned by
// tests/sim/sharded_differential_test.cc; the bench only needs to prove
// it timed the same schedule it claims to have timed).
struct RunFingerprint {
  double makespan = 0.0;
  double avg_weighted_tardiness = 0.0;
  size_t scheduling_points = 0;
  size_t aborts = 0;
  size_t outages = 0;

  static RunFingerprint Of(const RunResult& r) {
    return RunFingerprint{r.makespan, r.avg_weighted_tardiness,
                          r.num_scheduling_points, r.num_aborts,
                          r.num_outages};
  }
  bool operator==(const RunFingerprint& o) const {
    return makespan == o.makespan &&
           avg_weighted_tardiness == o.avg_weighted_tardiness &&
           scheduling_points == o.scheduling_points && aborts == o.aborts &&
           outages == o.outages;
  }
};

std::vector<TransactionSpec> ShardWorkload(size_t servers) {
  WorkloadSpec spec;
  spec.num_transactions = 4000;
  spec.max_weight = 10;
  spec.max_workflow_length = 5;
  // Keep every worker ~75% busy so each shard carries real event traffic
  // at every pool size (a fixed rate would leave 8-server runs idle).
  spec.utilization = 0.75 * static_cast<double>(servers);
  auto gen = WorkloadGenerator::Create(spec);
  WEBTX_CHECK(gen.ok()) << gen.status().ToString();
  return gen.ValueOrDie().Generate(1);
}

SimOptions ShardOptions(size_t servers, size_t shard_threads,
                        ShardTiming* timing) {
  SimOptions options;
  options.num_servers = servers;
  options.shard_threads = shard_threads;
  options.timing = timing;
  // Fault-dense and UNcorrelated, so the buffered fault-timeline path
  // (and its background pregeneration) engages at shard_threads > 1.
  FaultPlanConfig fault;
  fault.outage_rate = 0.02;
  fault.mean_outage_duration = 5.0;
  fault.abort_rate = 0.2;
  fault.seed = 2009;
  auto plan = FaultPlan::Create(fault);
  WEBTX_CHECK(plan.ok()) << plan.status().ToString();
  options.fault_plan = std::move(plan).ValueOrDie();
  options.retry.max_attempts = 3;
  options.retry.backoff = 1.0;
  return options;
}

// Best-of-kShardReps wall-clock of sim.Run (one warmup first). When
// `timing` is non-null it is zeroed per rep and the snapshot of the best
// rep is left in *best_timing.
template <typename Sim>
double BestRunMs(Sim& sim, SchedulerPolicy& policy, ShardTiming* timing,
                 ShardTiming* best_timing, RunFingerprint* fingerprint) {
  (void)sim.Run(policy);  // warmup
  double best_ms = 0.0;
  for (int rep = 0; rep < kShardReps; ++rep) {
    if (timing != nullptr) *timing = ShardTiming{};
    const auto t0 = Clock::now();
    const RunResult r = sim.Run(policy);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (rep == 0 || ms < best_ms) {
      best_ms = ms;
      if (timing != nullptr && best_timing != nullptr) *best_timing = *timing;
      if (fingerprint != nullptr) *fingerprint = RunFingerprint::Of(r);
    }
  }
  return best_ms;
}

void RunShardSweep(std::vector<bench::BenchRow>& rows, Table& table) {
  const std::vector<size_t> thread_counts = {1, 2, 8};
  for (const size_t servers : {1u, 2u, 4u, 8u, 32u}) {
    const auto txns = ShardWorkload(servers);

    // Pre-shard baseline: same workload, same fault plan (the reference
    // ignores the sharding knobs, as the contract requires).
    auto ref = testing::ReferenceSimulator::Create(
        txns, ShardOptions(servers, 1, nullptr));
    WEBTX_CHECK(ref.ok()) << ref.status().ToString();
    AsetsStarPolicy ref_policy;
    RunFingerprint ref_fp;
    const double ref_ms =
        BestRunMs(ref.ValueOrDie(), ref_policy, nullptr, nullptr, &ref_fp);
    const std::string servers_cfg = "servers=" + std::to_string(servers);
    rows.push_back({"ext_multi_server", servers_cfg, "reference_wall_ms",
                    ref_ms, "ms"});

    std::vector<double> table_row = {ref_ms};
    double t1_ms = 0.0;
    ShardTiming t8_timing;
    for (const size_t threads : thread_counts) {
      ShardTiming timing;
      auto sim = Simulator::Create(
          txns, ShardOptions(servers, threads, &timing));
      WEBTX_CHECK(sim.ok()) << sim.status().ToString();
      AsetsStarPolicy policy;
      ShardTiming best_timing;
      RunFingerprint fp;
      const double ms =
          BestRunMs(sim.ValueOrDie(), policy, &timing, &best_timing, &fp);
      WEBTX_CHECK(fp == ref_fp)
          << "sharded run diverged from the reference at servers=" << servers
          << " shard_threads=" << threads;
      const std::string cfg =
          servers_cfg + " threads=" + std::to_string(threads);
      rows.push_back({"ext_multi_server", cfg, "wall_ms", ms, "ms"});
      rows.push_back({"ext_multi_server", cfg, "speedup_vs_reference",
                      ref_ms / ms, "x"});
      rows.push_back({"ext_multi_server", cfg, "pregen_ms",
                      best_timing.pregen_ms, "ms"});
      rows.push_back({"ext_multi_server", cfg, "barrier_wait_ms",
                      best_timing.barrier_wait_ms, "ms"});
      rows.push_back({"ext_multi_server", cfg, "timeline_chunks",
                      static_cast<double>(best_timing.chunks), "chunks"});
      table_row.push_back(ms);
      if (threads == 1) t1_ms = ms;
      if (threads == 8) t8_timing = best_timing;
    }
    const double t8_ms = table_row.back();
    if (t1_ms >= kMinSpeedupMs && t8_ms >= kMinSpeedupMs) {
      rows.push_back({"ext_multi_server", servers_cfg, "speedup_t8_vs_t1",
                      t1_ms / t8_ms, "x"});
    } else {
      std::cout << "(skipping speedup_t8_vs_t1 at " << servers_cfg
                << ": wall times below the " << kMinSpeedupMs
                << " ms floor)\n";
    }
    table_row.push_back(ref_ms / t1_ms);
    table_row.push_back(t8_timing.pregen_ms);
    table_row.push_back(t8_timing.barrier_wait_ms);
    table.AddNumericRow(std::to_string(servers), table_row);
  }
}

// ---------------------------------------------------------------------------
// Sharded policy state: ASETS*-sharded (per-shard ready structures +
// deterministic work stealing) vs the global-state ASETS*, across
// num_servers x shard_threads. Every sharded cell is fingerprint-checked
// against the global run first — the steal protocol must never change
// the schedule — and the new ShardTiming fields break the cost out:
// policy_wait_ms is the wall time inside the per-event scheduling round,
// steal_count the cross-shard entry moves the run performed.

void RunShardedPolicySweep(std::vector<bench::BenchRow>& rows, Table& table) {
  const std::vector<size_t> thread_counts = {2, 8};
  for (const size_t servers : {1u, 2u, 4u, 8u}) {
    const auto txns = ShardWorkload(servers);
    const std::string servers_cfg = "servers=" + std::to_string(servers);

    // Global-state baseline vs the threads=1 sharded run, measured
    // INTERLEAVED (one rep of each per loop pass, best-of). Both are
    // serial, so this pair is the no-regression gate; sequential
    // best-of-N blocks drift apart by several percent on a loaded
    // one-core host, while alternating reps sees the same host state.
    ShardTiming g_timing;
    ShardTiming s1_timing;
    auto gsim =
        Simulator::Create(txns, ShardOptions(servers, 1, &g_timing));
    WEBTX_CHECK(gsim.ok()) << gsim.status().ToString();
    auto s1sim =
        Simulator::Create(txns, ShardOptions(servers, 1, &s1_timing));
    WEBTX_CHECK(s1sim.ok()) << s1sim.status().ToString();
    AsetsStarPolicy global;
    AsetsStarShardedPolicy sharded_t1;
    ShardTiming g_best;
    ShardTiming s1_best;
    RunFingerprint g_fp;
    RunFingerprint s1_fp;
    double global_ms = 0.0;
    double t1_ms = 0.0;
    std::vector<double> pair_ratios;
    pair_ratios.reserve(kShardPairedReps);
    (void)gsim.ValueOrDie().Run(global);      // warmups
    (void)s1sim.ValueOrDie().Run(sharded_t1);
    for (int rep = 0; rep < kShardPairedReps; ++rep) {
      g_timing = ShardTiming{};
      auto t0 = Clock::now();
      const RunResult gr = gsim.ValueOrDie().Run(global);
      const double g_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
      if (rep == 0 || g_ms < global_ms) {
        global_ms = g_ms;
        g_best = g_timing;
        g_fp = RunFingerprint::Of(gr);
      }
      s1_timing = ShardTiming{};
      t0 = Clock::now();
      const RunResult sr = s1sim.ValueOrDie().Run(sharded_t1);
      const double s_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
      if (rep == 0 || s_ms < t1_ms) {
        t1_ms = s_ms;
        s1_best = s1_timing;
        s1_fp = RunFingerprint::Of(sr);
      }
      pair_ratios.push_back(g_ms / s_ms);
    }
    WEBTX_CHECK(s1_fp == g_fp)
        << "sharded policy diverged from the global state at servers="
        << servers << " shard_threads=1";
    // The gated serial ratio is the MEDIAN of per-pair ratios: the two
    // reps of a pair run back to back under the same host state, so
    // their ratio cancels drift that a best-of-each quotient (whose
    // numerator and denominator come from different moments) keeps.
    std::sort(pair_ratios.begin(), pair_ratios.end());
    const double t1_ratio = pair_ratios[pair_ratios.size() / 2];
    const std::string global_cfg = servers_cfg + " policy=global";
    rows.push_back(
        {"ext_multi_server", global_cfg, "wall_ms", global_ms, "ms"});
    rows.push_back({"ext_multi_server", global_cfg, "policy_wait_ms",
                    g_best.policy_wait_ms, "ms"});
    const std::string t1_cfg = servers_cfg + " threads=1 policy=sharded";
    rows.push_back({"ext_multi_server", t1_cfg, "wall_ms", t1_ms, "ms"});
    rows.push_back({"ext_multi_server", t1_cfg, "sharded_vs_global",
                    t1_ratio, "x"});
    rows.push_back({"ext_multi_server", t1_cfg, "policy_wait_ms",
                    s1_best.policy_wait_ms, "ms"});
    rows.push_back({"ext_multi_server", t1_cfg, "steal_count",
                    static_cast<double>(s1_best.steal_count), "steals"});

    std::vector<double> table_row = {global_ms, t1_ms};
    double t8_ms = 0.0;
    ShardTiming t8_best;
    for (const size_t threads : thread_counts) {
      ShardTiming timing;
      auto sim =
          Simulator::Create(txns, ShardOptions(servers, threads, &timing));
      WEBTX_CHECK(sim.ok()) << sim.status().ToString();
      AsetsStarShardedPolicy policy;
      ShardTiming best;
      RunFingerprint fp;
      const double ms =
          BestRunMs(sim.ValueOrDie(), policy, &timing, &best, &fp);
      WEBTX_CHECK(fp == g_fp)
          << "sharded policy diverged from the global state at servers="
          << servers << " shard_threads=" << threads;
      const std::string cfg = servers_cfg +
                              " threads=" + std::to_string(threads) +
                              " policy=sharded";
      rows.push_back({"ext_multi_server", cfg, "wall_ms", ms, "ms"});
      rows.push_back({"ext_multi_server", cfg, "sharded_vs_global",
                      global_ms / ms, "x"});
      rows.push_back({"ext_multi_server", cfg, "policy_wait_ms",
                      best.policy_wait_ms, "ms"});
      rows.push_back({"ext_multi_server", cfg, "steal_count",
                      static_cast<double>(best.steal_count), "steals"});
      table_row.push_back(ms);
      if (threads == 8) {
        t8_ms = ms;
        t8_best = best;
      }
    }
    if (t1_ms >= kMinSpeedupMs && t8_ms >= kMinSpeedupMs) {
      rows.push_back({"ext_multi_server", servers_cfg + " policy=sharded",
                      "speedup_t8_vs_t1", t1_ms / t8_ms, "x"});
    } else {
      std::cout << "(skipping sharded speedup_t8_vs_t1 at " << servers_cfg
                << ": wall times below the " << kMinSpeedupMs
                << " ms floor)\n";
    }
    table_row.push_back(t1_ratio);
    table_row.push_back(t8_best.policy_wait_ms);
    table_row.push_back(static_cast<double>(t8_best.steal_count));
    table.AddNumericRow(std::to_string(servers), table_row);
  }
}

}  // namespace
}  // namespace webtx

int main() {
  std::cout << "Extension — back-end worker pool scaling (avg weighted "
               "tardiness; arrival rate sized for ~3 busy workers; "
               "weights 1-10, workflows <= 5, 5 seeds):\n\n";
  webtx::Table table({"servers", "FCFS", "EDF", "HDF", "Ready", "ASETS*"});
  for (const size_t servers : {1u, 2u, 3u, 4u, 6u, 8u}) {
    webtx::RunForServers(servers, table);
  }
  table.Print(std::cout);
  webtx::bench::SaveCsv(table, "ext_multi_server");
  std::cout << "\nTardiness collapses once capacity covers the offered "
               "load (~3 workers);\nthe adaptive workflow-aware policy "
               "keeps its lead at every pool size.\n";

  std::cout << "\nSharded event loop — wall-clock vs the frozen pre-shard "
               "reference (ASETS*,\n4000 txns at 75% per-worker load, "
               "outage+abort plan, best of "
            << webtx::kShardReps << " reps; pregen/barrier\ncolumns are "
               "the shard-threads=8 fault-timeline accounting):\n\n";
  std::vector<webtx::bench::BenchRow> rows;
  webtx::Table shard_table({"servers", "ref ms", "t=1 ms", "t=2 ms",
                            "t=8 ms", "speedup t=1", "pregen ms",
                            "barrier ms"});
  webtx::RunShardSweep(rows, shard_table);
  shard_table.Print(std::cout);
  webtx::bench::SaveCsv(shard_table, "ext_multi_server_sharded");

  std::cout << "\nSharded policy state — ASETS*-sharded (per-shard ready "
               "structures, deterministic\nwork stealing) vs the "
               "global-state ASETS* on the production loop (the\n"
               "threads=1 baseline and sharded runs are timed interleaved, "
               "best of "
            << webtx::kShardPairedReps
            << " paired\nreps; every sharded cell fingerprint-checked "
               "against the global run;\npolicy/steal columns are the "
               "shard-threads=8 accounting):\n\n";
  webtx::Table policy_table({"servers", "global ms", "t=1 ms", "t=2 ms",
                             "t=8 ms", "sharded t=1", "policy ms",
                             "steals"});
  webtx::RunShardedPolicySweep(rows, policy_table);
  policy_table.Print(std::cout);
  webtx::bench::SaveCsv(policy_table, "ext_multi_server_sharded_policy");
  webtx::bench::WriteBenchRows(rows);
  std::cout
      << "\nHost has " << std::thread::hardware_concurrency()
      << " hardware thread(s). On a single-core host extra shard threads "
         "cannot\nreduce wall-clock (pregeneration competes with the event "
         "loop for the one\ncore), so the meaningful series is the sharded "
         "loop vs the pre-shard\nreference — incremental fault heads and "
         "epoch-stamped pick assignment do the\nwork the reference "
         "re-scans for. Every cell above is fingerprint-checked\nagainst "
         "the reference run: shard_threads never changes results.\n";
  return 0;
}
