// Extension: digital-twin serving loop (rt/twin.h). One seeded flash
// crowd — base load a 4-worker pool handles comfortably, then a 6x rate
// spike — served three ways under the deterministic VirtualClock:
//
//   static      controller off: FCFS, no admission, start to finish
//   controller  shadow-simulator control loop live: per-tick what-if
//               forecasts over {FCFS, EDF, SRPT+depth, EDF+brownout},
//               hysteresis switching at quiescent points
//   divergence  the controller again, but with its snapshot stream
//               corrupted 10x — the guard must notice the model lying,
//               fall back to static, and the run must still validate
//
// Everything is virtual-clock deterministic, so the A-B is exact: same
// arrivals, same fault timeline, and every run's digest (trace +
// decision log) is byte-stable — the bench runs each configuration
// twice and fails on any digest mismatch. It also fails (exit 1) unless
// the controller strictly improves average tardiness or shed ratio over
// static serving, and unless the corrupted run triggers >= 1 fallback
// with zero validator violations — the acceptance gate of the twin.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "rt/live_validator.h"
#include "rt/twin.h"
#include "workload/live_arrivals.h"

namespace webtx {
namespace {

constexpr size_t kNumWorkers = 4;
constexpr size_t kNumTasks = 600;
constexpr uint64_t kWorkloadSeed = 2009;

std::vector<LiveArrival> FlashCrowd() {
  LiveArrivalOptions options;
  options.shape = LiveArrivalShape::kFlashCrowd;
  options.seed = kWorkloadSeed;
  options.num_tasks = kNumTasks;
  // Base load ~70% of the pool; the spike multiplies the rate 6x over
  // one virtual second — far past feasibility, where policy and
  // admission choices dominate.
  options.rate = 56.0;
  options.spike_factor = 6.0;
  options.spike_start = 1.0;
  options.spike_duration = 1.0;
  options.mean_duration = 0.05;
  options.deadline_slack = 2.0;
  return GenerateLiveArrivals(options);
}

rt::TwinOptions BaseOptions() {
  rt::TwinOptions options;
  options.num_workers = kNumWorkers;
  // Candidate 0 is the static configuration: plain FCFS, no admission.
  rt::TwinCandidate fcfs;
  rt::TwinCandidate edf;
  edf.policy = "EDF";
  rt::TwinCandidate srpt_depth;
  srpt_depth.policy = "SRPT";
  srpt_depth.admission = rt::TwinCandidate::Admission::kQueueDepth;
  srpt_depth.max_ready = 6 * kNumWorkers;
  rt::TwinCandidate edf_brownout;
  edf_brownout.policy = "EDF";
  edf_brownout.admission = rt::TwinCandidate::Admission::kBrownout;
  edf_brownout.capacity_slo = 0.5;
  options.candidates = {fcfs, edf, srpt_depth, edf_brownout};
  options.static_index = 0;
  options.control_interval = 0.25;
  options.forecast_horizon = 0.75;
  options.switch_margin = 0.1;
  options.dwell_ticks = 1;
  options.shed_penalty = 1.0;
  options.forecast_seed = kWorkloadSeed;
  // Light crash seasoning, identical across configurations: the
  // brownout candidate's crash-aware signal has something to see.
  options.faults.plan.crash_rate = 0.02;
  options.faults.plan.mean_repair_duration = 1.0;
  options.faults.plan.seed = 11;
  options.retry_max_backoff = 0.2;
  return options;
}

// Candidate roster for the decision-loop cost grid: eight distinct
// policies, then the same eight again behind queue-depth admission.
// Truncated to the requested count, so cand=2 is {FCFS, EDF} and
// cand=16 exercises every slot.
std::vector<rt::TwinCandidate> DecisionCandidates(size_t count) {
  static const char* const kPolicies[] = {"FCFS", "EDF",  "SRPT",  "LS",
                                          "HDF",  "HVF",  "ASETS", "ASETS*"};
  std::vector<rt::TwinCandidate> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    rt::TwinCandidate c;
    c.policy = kPolicies[i % 8];
    if (i >= 8) {
      c.admission = rt::TwinCandidate::Admission::kQueueDepth;
      c.max_ready = 4 * kNumWorkers;
    }
    out.push_back(std::move(c));
  }
  return out;
}

struct RunRow {
  rt::TwinReport report;
  bool deterministic = false;
  size_t violations = 0;
};

// ---------------------------------------------------------------------------
// Decision-loop cost measurement: an isolated TwinForecastEngine driven
// over a fixed hand-built snapshot. Whole-twin wall-clock timing is too
// noisy for a gate (the live executor's worker threads compete with the
// control thread for cores), so cost is measured where it accrues — the
// per-tick Forecast() call — while the digest-neutrality contract is
// still checked on whole twin runs below.

/// A mid-flash-crowd moment: a backlog of ready work plus a busy recent
/// arrival window. Pure data, identical every call.
rt::ExecutorSnapshot DecisionSnapshot() {
  rt::ExecutorSnapshot snap;
  snap.now = 10.0;
  snap.num_workers = kNumWorkers;
  snap.num_workers_up = kNumWorkers;
  for (TxnId id = 0; id < 24; ++id) {
    rt::SnapshotTask task;
    task.id = id;
    task.remaining = 0.05;
    task.release = snap.now;
    task.deadline = snap.now + 0.5 + 0.01 * static_cast<double>(id);
    task.weight = 1.0;
    task.state = rt::SnapshotTaskState::kReady;
    snap.tasks.push_back(task);
  }
  return snap;
}

rt::TwinArrivalWindow DecisionWindow() {
  rt::TwinArrivalWindow window;
  for (int i = 0; i < 14; ++i) {
    LiveArrival a;
    a.duration = 0.05;
    a.relative_deadline = 0.5;
    a.weight = 1.0;
    window.Observe(a);
  }
  return window;
}

struct DecisionLoopResult {
  double ms_per_tick = 0.0;
  double events_per_sec = 0.0;
  uint64_t forecasts_pruned = 0;
  /// Forecast winner per measured tick (incumbent fixed at 0) — the
  /// pruning win-rate-preservation comparison keys off these.
  std::vector<uint32_t> winners;
};

DecisionLoopResult MeasureDecisionLoop(const rt::TwinOptions& options) {
  const rt::ExecutorSnapshot snap = DecisionSnapshot();
  const rt::TwinArrivalWindow window = DecisionWindow();
  auto engine = rt::TwinForecastEngine::Create(options);
  WEBTX_CHECK(engine.ok()) << engine.status().ToString();
  rt::TwinForecastEngine& e = engine.ValueOrDie();
  // Several short repetitions of the same tick cycle; the per-tick cost
  // is the best repetition (min-of-k filters scheduler and frequency
  // noise out of a wall-clock microbench; every repetition does
  // identical work). Winners are recorded on the first repetition —
  // forecasts are pure functions of (snapshot, window, tick), so every
  // repetition ranks identically.
  constexpr size_t kWarmup = 3;
  constexpr size_t kReps = 7;
  constexpr size_t kItersPerRep = 78;  // 6 full 13-tick cycles
  for (size_t w = 0; w < kWarmup; ++w) (void)e.Forecast(snap, window, 7, 0);
  DecisionLoopResult out;
  out.winners.reserve(kItersPerRep);
  double best_ms = std::numeric_limits<double>::infinity();
  double best_events = 0.0;
  for (size_t rep = 0; rep < kReps; ++rep) {
    const rt::TwinDecisionStats before = e.stats();
    for (size_t i = 0; i < kItersPerRep; ++i) {
      // Vary the tick so every synthetic-arrival stream in a 13-tick
      // cycle is exercised; the sequence is identical across variants.
      const std::vector<rt::TwinForecast>& table =
          e.Forecast(snap, window, 7 + (i % 13), 0);
      if (rep > 0) continue;
      uint32_t best = 0;
      for (uint32_t c = 1; c < table.size(); ++c) {
        if (table[c].score < table[best].score) best = c;
      }
      out.winners.push_back(best);
    }
    const rt::TwinDecisionStats& s = e.stats();
    const double ms = s.decision_ms - before.decision_ms;
    if (ms < best_ms) {
      best_ms = ms;
      best_events = static_cast<double>(s.forecast_events -
                                        before.forecast_events);
    }
    if (rep == 0) {
      out.forecasts_pruned = s.forecasts_pruned - before.forecasts_pruned;
    }
  }
  out.ms_per_tick = best_ms / static_cast<double>(kItersPerRep);
  out.events_per_sec = best_ms > 0.0 ? best_events / (best_ms / 1e3) : 0.0;
  return out;
}

/// Digest of one whole twin run (the contract check half of the grid).
uint64_t TwinDigestOf(const rt::TwinOptions& options,
                      const std::vector<LiveArrival>& arrivals) {
  auto report = rt::Twin(options).Run(arrivals);
  WEBTX_CHECK(report.ok()) << report.status().ToString();
  return report.ValueOrDie().digest;
}

RunRow RunConfig(const rt::TwinOptions& options,
                 const std::vector<LiveArrival>& arrivals) {
  RunRow row;
  rt::Twin twin(options);
  auto first = twin.Run(arrivals);
  WEBTX_CHECK(first.ok()) << first.status().ToString();
  auto second = rt::Twin(options).Run(arrivals);
  WEBTX_CHECK(second.ok()) << second.status().ToString();
  row.report = std::move(first).ValueOrDie();
  row.deterministic = row.report.digest == second.ValueOrDie().digest;
  const rt::LiveValidationResult verdict = rt::ValidateLiveTrace(
      row.report.trace, row.report.tasks, row.report.outcomes,
      row.report.stats, row.report.validator_options);
  row.violations = verdict.violations.size();
  return row;
}

}  // namespace
}  // namespace webtx

int main() {
  using namespace webtx;
  const std::vector<LiveArrival> arrivals = FlashCrowd();

  rt::TwinOptions static_options = BaseOptions();
  static_options.controller_enabled = false;
  const RunRow static_run = RunConfig(static_options, arrivals);

  const rt::TwinOptions controller_options = BaseOptions();
  const RunRow controller_run = RunConfig(controller_options, arrivals);

  rt::TwinOptions divergence_options = BaseOptions();
  divergence_options.snapshot_corruption = 10.0;
  const RunRow divergence_run = RunConfig(divergence_options, arrivals);

  std::printf(
      "Digital twin under a flash crowd (%zu tasks, %zu workers, "
      "6x spike, virtual clock):\n\n",
      kNumTasks, static_cast<size_t>(kNumWorkers));
  const std::vector<std::string> header = {"config",   "avg_tardiness",
                                           "shed_ratio", "goodput",
                                           "switches", "fallbacks"};
  Table table(header);
  const auto add = [&table](const std::string& label, const RunRow& row) {
    table.AddNumericRow(label, {row.report.avg_tardiness,
                                row.report.shed_ratio, row.report.goodput,
                                static_cast<double>(row.report.switches),
                                static_cast<double>(row.report.fallbacks)});
  };
  add("static", static_run);
  add("controller", controller_run);
  add("divergence", divergence_run);
  table.Print(std::cout);
  bench::SaveCsv(table, "ext_twin_flash_crowd");

  const auto print_stats = [](const std::string& label, const RunRow& row) {
    const rt::TwinDecisionStats& s = row.report.decision_stats;
    std::printf(
        "%-11s decision_ms %.3f  forecast_events %llu  forecasts_run %llu"
        "  forecasts_pruned %llu\n",
        label.c_str(), s.decision_ms,
        static_cast<unsigned long long>(s.forecast_events),
        static_cast<unsigned long long>(s.forecasts_run),
        static_cast<unsigned long long>(s.forecasts_pruned));
  };
  std::printf("\nDecision-loop cost (whole run, wall clock):\n");
  print_stats("controller", controller_run);
  print_stats("divergence", divergence_run);

  std::printf("\nstatic digest      %016llx  determinism %s\n",
              static_cast<unsigned long long>(static_run.report.digest),
              static_run.deterministic ? "byte-identical" : "DIVERGED");
  std::printf("controller digest  %016llx  determinism %s\n",
              static_cast<unsigned long long>(controller_run.report.digest),
              controller_run.deterministic ? "byte-identical" : "DIVERGED");
  std::printf("divergence digest  %016llx  determinism %s\n",
              static_cast<unsigned long long>(divergence_run.report.digest),
              divergence_run.deterministic ? "byte-identical" : "DIVERGED");

  // Acceptance gate: a strict win on tardiness OR shed ratio, a guard
  // that actually fired on the corrupted model, clean validators, and
  // byte-stable digests everywhere.
  const bool wins = controller_run.report.avg_tardiness <
                        static_run.report.avg_tardiness ||
                    controller_run.report.shed_ratio <
                        static_run.report.shed_ratio;
  const bool guard_fired = divergence_run.report.fallbacks >= 1;
  const size_t total_violations = static_run.violations +
                                  controller_run.violations +
                                  divergence_run.violations;
  const bool deterministic = static_run.deterministic &&
                             controller_run.deterministic &&
                             divergence_run.deterministic;
  std::printf("\ncontroller_wins    %s\n", wins ? "yes" : "NO");
  std::printf("guard_fired        %s (%zu fallback(s))\n",
              guard_fired ? "yes" : "NO", divergence_run.report.fallbacks);
  std::printf("validator          %zu violation(s)\n", total_violations);

  std::vector<bench::BenchRow> rows;
  const auto emit = [&rows](const std::string& config, const RunRow& row) {
    rows.push_back(bench::BenchRow{"ext_twin", config, "avg_tardiness",
                                   row.report.avg_tardiness, "s"});
    rows.push_back(bench::BenchRow{"ext_twin", config, "shed_ratio",
                                   row.report.shed_ratio, "1"});
    rows.push_back(bench::BenchRow{"ext_twin", config, "goodput",
                                   row.report.goodput, "1"});
  };
  emit("flash static", static_run);
  emit("flash controller", controller_run);
  emit("flash divergence", divergence_run);
  rows.push_back(bench::BenchRow{"ext_twin", "flash controller",
                                 "controller_wins", wins ? 1.0 : 0.0, "1"});
  rows.push_back(bench::BenchRow{
      "ext_twin", "flash divergence", "guard_fallbacks",
      static_cast<double>(divergence_run.report.fallbacks), "1"});

  // ------------------------------------------------------------------
  // Decision-loop cost grid: the per-tick forecast fan-out at 2/4/8/16
  // candidates under four forecast-execution configurations, measured
  // on an isolated TwinForecastEngine over a fixed snapshot (stable
  // wall clock — no executor threads competing for cores). The contract
  // half is hard-gated on whole twin runs (rebuilt, pooled, and
  // threads=8 digests must be byte-identical — execution strategy may
  // only change cost); the perf half is recorded as bench rows and
  // gated against the committed baseline by scripts/check.sh
  // --bench-gate. serial_speedup relates the optimized loop to the
  // "twin_seed_baseline" family — the per-candidate
  // rebuild-and-run-to-completion decision loop the twin shipped with,
  // measured once at the pre-optimization revision and kept in
  // BENCH_hotpath.json since (the sweep_throughput seed_baseline
  // precedent). Pruning is the one knob allowed to change decisions, so
  // its agreement is REPORTED (whole-run digest match + per-tick winner
  // match rate), not gated.
  const std::vector<bench::BenchRow> committed = bench::ReadBenchRows();
  const auto seed_decision_ms = [&committed](size_t cand) -> double {
    const std::string cfg = "decision cand=" + std::to_string(cand);
    for (const bench::BenchRow& b : committed) {
      if (b.bench == "twin_seed_baseline" && b.config == cfg &&
          b.metric == "decision_ms") {
        return b.value;
      }
    }
    return 0.0;  // not pinned yet: fall back to this binary's rebuilt path
  };

  std::printf("\nDecision-loop cost grid (ms per control tick):\n\n");
  const std::vector<std::string> grid_header = {
      "candidates", "seed_ms",       "rebuilt_ms",  "pooled_ms",
      "prune_ms",   "threads8_ms",   "seed_speedup", "winner_match"};
  Table grid(grid_header);
  bool decision_digests_ok = true;
  for (const size_t cand : {size_t{2}, size_t{4}, size_t{8}, size_t{16}}) {
    rt::TwinOptions base = BaseOptions();
    base.candidates = DecisionCandidates(cand);

    rt::TwinOptions rebuilt = base;
    rebuilt.pooled_forecasts = false;
    const rt::TwinOptions pooled = base;  // pooled serial is the default
    rt::TwinOptions prune = base;
    prune.prune = true;
    rt::TwinOptions threads8 = base;
    threads8.forecast_threads = 8;

    // Contract: whole twin runs across the digest-neutral variants.
    const uint64_t rebuilt_digest = TwinDigestOf(rebuilt, arrivals);
    const uint64_t pooled_digest = TwinDigestOf(pooled, arrivals);
    const uint64_t threads8_digest = TwinDigestOf(threads8, arrivals);
    if (rebuilt_digest != pooled_digest || pooled_digest != threads8_digest) {
      std::fprintf(stderr,
                   "ext_twin: decision digests DIVERGED at %zu candidates "
                   "(rebuilt %016llx pooled %016llx threads8 %016llx)\n",
                   cand, static_cast<unsigned long long>(rebuilt_digest),
                   static_cast<unsigned long long>(pooled_digest),
                   static_cast<unsigned long long>(threads8_digest));
      decision_digests_ok = false;
    }
    const bool prune_same = TwinDigestOf(prune, arrivals) == pooled_digest;

    // Cost: the isolated per-tick fan-out.
    const DecisionLoopResult rebuilt_loop = MeasureDecisionLoop(rebuilt);
    const DecisionLoopResult pooled_loop = MeasureDecisionLoop(pooled);
    const DecisionLoopResult prune_loop = MeasureDecisionLoop(prune);
    const DecisionLoopResult threads8_loop = MeasureDecisionLoop(threads8);

    size_t winner_matches = 0;
    for (size_t i = 0; i < pooled_loop.winners.size(); ++i) {
      winner_matches += prune_loop.winners[i] == pooled_loop.winners[i];
    }
    const double winner_match =
        static_cast<double>(winner_matches) /
        static_cast<double>(pooled_loop.winners.size());

    double seed_ms = seed_decision_ms(cand);
    if (seed_ms <= 0.0) {
      std::printf(
          "(no twin_seed_baseline row for cand=%zu; using this binary's "
          "rebuilt path as the serial baseline)\n",
          cand);
      seed_ms = rebuilt_loop.ms_per_tick;
    }
    // The gated headline: pooling + pruning vs the seed decision loop,
    // both strictly serial (forecast_threads 1) — no parallel credit.
    const double seed_speedup =
        prune_loop.ms_per_tick > 0.0 ? seed_ms / prune_loop.ms_per_tick : 0.0;
    const double pooled_speedup =
        pooled_loop.ms_per_tick > 0.0 ? seed_ms / pooled_loop.ms_per_tick
                                      : 0.0;
    const double parallel_speedup =
        threads8_loop.ms_per_tick > 0.0
            ? pooled_loop.ms_per_tick / threads8_loop.ms_per_tick
            : 0.0;
    grid.AddNumericRow(
        std::to_string(cand),
        {seed_ms, rebuilt_loop.ms_per_tick, pooled_loop.ms_per_tick,
         prune_loop.ms_per_tick, threads8_loop.ms_per_tick, seed_speedup,
         winner_match});

    const std::string tag = "decision cand=" + std::to_string(cand);
    const auto emit_loop = [&rows, &tag](const std::string& variant,
                                         const DecisionLoopResult& loop) {
      rows.push_back(bench::BenchRow{"ext_twin", tag + " " + variant,
                                     "decision_ms", loop.ms_per_tick, "ms"});
      rows.push_back(bench::BenchRow{"ext_twin", tag + " " + variant,
                                     "forecast_events_per_sec",
                                     loop.events_per_sec, "1/s"});
    };
    emit_loop("rebuilt", rebuilt_loop);
    emit_loop("pooled", pooled_loop);
    emit_loop("prune", prune_loop);
    emit_loop("threads8", threads8_loop);
    rows.push_back(bench::BenchRow{"ext_twin", tag + " pooled",
                                   "serial_speedup", pooled_speedup, "x"});
    rows.push_back(bench::BenchRow{"ext_twin", tag + " prune",
                                   "serial_speedup", seed_speedup, "x"});
    rows.push_back(bench::BenchRow{"ext_twin", tag + " prune", "winner_match",
                                   winner_match, "1"});
    rows.push_back(bench::BenchRow{"ext_twin", tag + " prune",
                                   "prune_digest_match",
                                   prune_same ? 1.0 : 0.0, "1"});
    rows.push_back(bench::BenchRow{
        "ext_twin", tag + " prune", "forecasts_pruned",
        static_cast<double>(prune_loop.forecasts_pruned), "1"});
    rows.push_back(bench::BenchRow{"ext_twin", tag + " threads8",
                                   "parallel_speedup", parallel_speedup, "x"});
  }
  grid.Print(std::cout);
  std::printf(
      "(seed_speedup = serial pooling+pruning vs the pinned "
      "twin_seed_baseline rebuild loop; threads8 parallel speedup is "
      "reported separately and depends on free cores)\n");
  bench::SaveCsv(grid, "ext_twin_decision_loop");

  bench::WriteBenchRows(rows);

  if (!wins || !guard_fired || total_violations > 0 || !deterministic ||
      !decision_digests_ok) {
    std::fprintf(stderr, "ext_twin: acceptance gate FAILED\n");
    return 1;
  }
  return 0;
}
