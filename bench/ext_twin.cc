// Extension: digital-twin serving loop (rt/twin.h). One seeded flash
// crowd — base load a 4-worker pool handles comfortably, then a 6x rate
// spike — served three ways under the deterministic VirtualClock:
//
//   static      controller off: FCFS, no admission, start to finish
//   controller  shadow-simulator control loop live: per-tick what-if
//               forecasts over {FCFS, EDF, SRPT+depth, EDF+brownout},
//               hysteresis switching at quiescent points
//   divergence  the controller again, but with its snapshot stream
//               corrupted 10x — the guard must notice the model lying,
//               fall back to static, and the run must still validate
//
// Everything is virtual-clock deterministic, so the A-B is exact: same
// arrivals, same fault timeline, and every run's digest (trace +
// decision log) is byte-stable — the bench runs each configuration
// twice and fails on any digest mismatch. It also fails (exit 1) unless
// the controller strictly improves average tardiness or shed ratio over
// static serving, and unless the corrupted run triggers >= 1 fallback
// with zero validator violations — the acceptance gate of the twin.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "rt/live_validator.h"
#include "rt/twin.h"
#include "workload/live_arrivals.h"

namespace webtx {
namespace {

constexpr size_t kNumWorkers = 4;
constexpr size_t kNumTasks = 600;
constexpr uint64_t kWorkloadSeed = 2009;

std::vector<LiveArrival> FlashCrowd() {
  LiveArrivalOptions options;
  options.shape = LiveArrivalShape::kFlashCrowd;
  options.seed = kWorkloadSeed;
  options.num_tasks = kNumTasks;
  // Base load ~70% of the pool; the spike multiplies the rate 6x over
  // one virtual second — far past feasibility, where policy and
  // admission choices dominate.
  options.rate = 56.0;
  options.spike_factor = 6.0;
  options.spike_start = 1.0;
  options.spike_duration = 1.0;
  options.mean_duration = 0.05;
  options.deadline_slack = 2.0;
  return GenerateLiveArrivals(options);
}

rt::TwinOptions BaseOptions() {
  rt::TwinOptions options;
  options.num_workers = kNumWorkers;
  // Candidate 0 is the static configuration: plain FCFS, no admission.
  rt::TwinCandidate fcfs;
  rt::TwinCandidate edf;
  edf.policy = "EDF";
  rt::TwinCandidate srpt_depth;
  srpt_depth.policy = "SRPT";
  srpt_depth.admission = rt::TwinCandidate::Admission::kQueueDepth;
  srpt_depth.max_ready = 6 * kNumWorkers;
  rt::TwinCandidate edf_brownout;
  edf_brownout.policy = "EDF";
  edf_brownout.admission = rt::TwinCandidate::Admission::kBrownout;
  edf_brownout.capacity_slo = 0.5;
  options.candidates = {fcfs, edf, srpt_depth, edf_brownout};
  options.static_index = 0;
  options.control_interval = 0.25;
  options.forecast_horizon = 0.75;
  options.switch_margin = 0.1;
  options.dwell_ticks = 1;
  options.shed_penalty = 1.0;
  options.forecast_seed = kWorkloadSeed;
  // Light crash seasoning, identical across configurations: the
  // brownout candidate's crash-aware signal has something to see.
  options.faults.plan.crash_rate = 0.02;
  options.faults.plan.mean_repair_duration = 1.0;
  options.faults.plan.seed = 11;
  options.retry_max_backoff = 0.2;
  return options;
}

struct RunRow {
  rt::TwinReport report;
  bool deterministic = false;
  size_t violations = 0;
};

RunRow RunConfig(const rt::TwinOptions& options,
                 const std::vector<LiveArrival>& arrivals) {
  RunRow row;
  rt::Twin twin(options);
  auto first = twin.Run(arrivals);
  WEBTX_CHECK(first.ok()) << first.status().ToString();
  auto second = rt::Twin(options).Run(arrivals);
  WEBTX_CHECK(second.ok()) << second.status().ToString();
  row.report = std::move(first).ValueOrDie();
  row.deterministic = row.report.digest == second.ValueOrDie().digest;
  const rt::LiveValidationResult verdict = rt::ValidateLiveTrace(
      row.report.trace, row.report.tasks, row.report.outcomes,
      row.report.stats, row.report.validator_options);
  row.violations = verdict.violations.size();
  return row;
}

}  // namespace
}  // namespace webtx

int main() {
  using namespace webtx;
  const std::vector<LiveArrival> arrivals = FlashCrowd();

  rt::TwinOptions static_options = BaseOptions();
  static_options.controller_enabled = false;
  const RunRow static_run = RunConfig(static_options, arrivals);

  const rt::TwinOptions controller_options = BaseOptions();
  const RunRow controller_run = RunConfig(controller_options, arrivals);

  rt::TwinOptions divergence_options = BaseOptions();
  divergence_options.snapshot_corruption = 10.0;
  const RunRow divergence_run = RunConfig(divergence_options, arrivals);

  std::printf(
      "Digital twin under a flash crowd (%zu tasks, %zu workers, "
      "6x spike, virtual clock):\n\n",
      kNumTasks, static_cast<size_t>(kNumWorkers));
  const std::vector<std::string> header = {"config",   "avg_tardiness",
                                           "shed_ratio", "goodput",
                                           "switches", "fallbacks"};
  Table table(header);
  const auto add = [&table](const std::string& label, const RunRow& row) {
    table.AddNumericRow(label, {row.report.avg_tardiness,
                                row.report.shed_ratio, row.report.goodput,
                                static_cast<double>(row.report.switches),
                                static_cast<double>(row.report.fallbacks)});
  };
  add("static", static_run);
  add("controller", controller_run);
  add("divergence", divergence_run);
  table.Print(std::cout);
  bench::SaveCsv(table, "ext_twin_flash_crowd");

  std::printf("\nstatic digest      %016llx  determinism %s\n",
              static_cast<unsigned long long>(static_run.report.digest),
              static_run.deterministic ? "byte-identical" : "DIVERGED");
  std::printf("controller digest  %016llx  determinism %s\n",
              static_cast<unsigned long long>(controller_run.report.digest),
              controller_run.deterministic ? "byte-identical" : "DIVERGED");
  std::printf("divergence digest  %016llx  determinism %s\n",
              static_cast<unsigned long long>(divergence_run.report.digest),
              divergence_run.deterministic ? "byte-identical" : "DIVERGED");

  // Acceptance gate: a strict win on tardiness OR shed ratio, a guard
  // that actually fired on the corrupted model, clean validators, and
  // byte-stable digests everywhere.
  const bool wins = controller_run.report.avg_tardiness <
                        static_run.report.avg_tardiness ||
                    controller_run.report.shed_ratio <
                        static_run.report.shed_ratio;
  const bool guard_fired = divergence_run.report.fallbacks >= 1;
  const size_t total_violations = static_run.violations +
                                  controller_run.violations +
                                  divergence_run.violations;
  const bool deterministic = static_run.deterministic &&
                             controller_run.deterministic &&
                             divergence_run.deterministic;
  std::printf("\ncontroller_wins    %s\n", wins ? "yes" : "NO");
  std::printf("guard_fired        %s (%zu fallback(s))\n",
              guard_fired ? "yes" : "NO", divergence_run.report.fallbacks);
  std::printf("validator          %zu violation(s)\n", total_violations);

  std::vector<bench::BenchRow> rows;
  const auto emit = [&rows](const std::string& config, const RunRow& row) {
    rows.push_back(bench::BenchRow{"ext_twin", config, "avg_tardiness",
                                   row.report.avg_tardiness, "s"});
    rows.push_back(bench::BenchRow{"ext_twin", config, "shed_ratio",
                                   row.report.shed_ratio, "1"});
    rows.push_back(bench::BenchRow{"ext_twin", config, "goodput",
                                   row.report.goodput, "1"});
  };
  emit("flash static", static_run);
  emit("flash controller", controller_run);
  emit("flash divergence", divergence_run);
  rows.push_back(bench::BenchRow{"ext_twin", "flash controller",
                                 "controller_wins", wins ? 1.0 : 0.0, "1"});
  rows.push_back(bench::BenchRow{
      "ext_twin", "flash divergence", "guard_fallbacks",
      static_cast<double>(divergence_run.report.fallbacks), "1"});
  bench::WriteBenchRows(rows);

  if (!wins || !guard_fired || total_violations > 0 || !deterministic) {
    std::fprintf(stderr, "ext_twin: acceptance gate FAILED\n");
    return 1;
  }
  return 0;
}
