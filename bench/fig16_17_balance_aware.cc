// Figures 16 and 17: balance-aware ASETS* (Sec. III-D) at the workflow
// level with weights, utilization 0.9. Sweeping the activation rate:
//   Fig. 16 — maximum weighted tardiness (worst case) falls as the rate
//             grows, by up to ~27% at rate 0.01;
//   Fig. 17 — average weighted tardiness (average case) rises slightly,
//             by <= ~5% at rate 0.01.
// The paper sweeps time-based rates 0.002-0.01 and count-based rates
// 0.02-0.1 ("same behavior"); we print both.

#include <iostream>
#include <memory>

#include "bench/bench_util.h"
#include "sched/policies/asets_star.h"
#include "sched/policies/balance_aware.h"

namespace webtx {
namespace {

void RunMode(ActivationMode mode, const std::vector<double>& rates,
             const std::string& label, const std::string& csv_name) {
  WorkloadSpec spec;
  spec.utilization = 0.9;
  spec.max_weight = 10;
  spec.max_workflow_length = 5;

  // Max-statistics are noisy; use more seeds than the paper's five so the
  // monotone trend is visible above seed noise.
  std::vector<uint64_t> seeds;
  for (uint64_t s = 1; s <= 15; ++s) seeds.push_back(s);

  const auto baseline = bench::RunPoint(
      spec, {bench::FactoryOf<AsetsStarPolicy>()}, seeds)[0];

  Table table({"activation rate", "max w-tardiness ASETS*",
               "max w-tardiness BA", "worst-case gain %",
               "avg w-tardiness ASETS*", "avg w-tardiness BA",
               "avg-case cost %"});
  for (const double rate : rates) {
    BalanceAwareOptions options;
    options.mode = mode;
    options.rate = rate;
    const PolicyFactory balanced = [options] {
      return std::make_unique<BalanceAwarePolicy>(
          std::make_unique<AsetsStarPolicy>(), options);
    };
    const auto m = bench::RunPoint(spec, {balanced}, seeds)[0];
    const double gain = (baseline.max_weighted_tardiness -
                         m.max_weighted_tardiness) /
                        baseline.max_weighted_tardiness * 100.0;
    const double cost = (m.avg_weighted_tardiness -
                         baseline.avg_weighted_tardiness) /
                        baseline.avg_weighted_tardiness * 100.0;
    table.AddNumericRow(FormatFixed(rate, 3),
                        {baseline.max_weighted_tardiness,
                         m.max_weighted_tardiness, gain,
                         baseline.avg_weighted_tardiness,
                         m.avg_weighted_tardiness, cost});
  }
  std::cout << label << ":\n\n";
  table.Print(std::cout);
  bench::SaveCsv(table, csv_name);
  std::cout << "\n";
}

}  // namespace
}  // namespace webtx

namespace webtx {
namespace {

// Ablation: the literal Sec. III-D T_old rule (w_i / absolute d_i). Over
// a long horizon it degenerates to weight-only selection and cannot
// rescue worst-case victims — quantified here to justify the default
// weighted-overdue selection (see EXPERIMENTS.md).
void RunLiteralSelectionAblation() {
  WorkloadSpec spec;
  spec.utilization = 0.9;
  spec.max_weight = 10;
  spec.max_workflow_length = 5;
  std::vector<uint64_t> seeds;
  for (uint64_t s = 1; s <= 15; ++s) seeds.push_back(s);

  const auto baseline = bench::RunPoint(
      spec, {bench::FactoryOf<AsetsStarPolicy>()}, seeds)[0];

  Table table({"activation rate", "worst-case gain % (overdue)",
               "worst-case gain % (literal w/d)"});
  for (const double rate : {0.002, 0.006, 0.01}) {
    BalanceAwareOptions overdue;
    overdue.rate = rate;
    BalanceAwareOptions literal = overdue;
    literal.selection = OldestSelection::kWeightOverDeadline;
    const auto ba_factory = [](BalanceAwareOptions options) -> PolicyFactory {
      return [options] {
        return std::make_unique<BalanceAwarePolicy>(
            std::make_unique<AsetsStarPolicy>(), options);
      };
    };
    const auto m_o = bench::RunPoint(spec, {ba_factory(overdue)}, seeds)[0];
    const auto m_l = bench::RunPoint(spec, {ba_factory(literal)}, seeds)[0];
    const auto gain = [&](const bench::PolicyMetrics& m) {
      return (baseline.max_weighted_tardiness - m.max_weighted_tardiness) /
             baseline.max_weighted_tardiness * 100.0;
    };
    table.AddNumericRow(FormatFixed(rate, 3), {gain(m_o), gain(m_l)});
  }
  std::cout << "T_old selection ablation (time-based):\n\n";
  table.Print(std::cout);
  bench::SaveCsv(table, "fig16_17_selection_ablation");
  std::cout << "\n";
}

}  // namespace
}  // namespace webtx

int main() {
  std::cout << "Figures 16-17 — Balance-aware ASETS* "
               "(utilization 0.9, weights 1-10, workflows <= 5):\n\n";
  webtx::RunMode(webtx::ActivationMode::kTimeBased,
                 {0.002, 0.004, 0.006, 0.008, 0.01},
                 "Time-based activation (paper's plotted case)",
                 "fig16_17_time_based");
  webtx::RunMode(webtx::ActivationMode::kCountBased,
                 {0.02, 0.04, 0.06, 0.08, 0.1},
                 "Count-based activation (paper: same behavior, plot "
                 "omitted)",
                 "fig16_17_count_based");
  webtx::RunLiteralSelectionAblation();
  std::cout << "Paper check: worst-case gain grows with the rate (up to "
               "~27%),\naverage-case cost stays small (<= ~5%).\n";
  return 0;
}
