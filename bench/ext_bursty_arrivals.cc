// Extension: bursty arrivals. The paper's Sec. I motivates adaptivity
// with "the bursty and unpredictable behavior of web user populations",
// and Sec. IV-C explains that ASETS beats EDF even at low AVERAGE load
// because Poisson arrivals create transiently overloaded intervals. This
// harness makes that argument explicit: an ON/OFF modulated arrival
// process concentrates the same long-run load into bursts and the
// adaptive policy's edge over EDF should widen with burstiness.

#include <iostream>

#include "bench/bench_util.h"

namespace webtx {
namespace {

void RunForBurstiness(double burstiness, Table& summary) {
  WorkloadSpec spec;
  spec.utilization = 0.5;  // modest average load; bursts do the damage
  spec.burstiness = burstiness;

  const auto policies = bench::SpecFactories({"EDF", "SRPT", "ASETS"});
  const auto m = bench::RunPoint(spec, policies, bench::PaperSeeds());

  const double gain_vs_edf =
      (m[0].avg_tardiness - m[2].avg_tardiness) / m[0].avg_tardiness *
      100.0;
  summary.AddNumericRow(FormatFixed(burstiness, 1),
                        {m[0].avg_tardiness, m[1].avg_tardiness,
                         m[2].avg_tardiness, gain_vs_edf});
}

}  // namespace
}  // namespace webtx

int main() {
  std::cout << "Extension — bursty arrivals (utilization 0.5, alpha 0.5, "
               "k_max 3, 5 seeds):\n\n";
  webtx::Table summary({"burstiness", "EDF", "SRPT", "ASETS*",
                        "ASETS* gain vs EDF %"});
  for (const double burstiness : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    webtx::RunForBurstiness(burstiness, summary);
  }
  summary.Print(std::cout);
  webtx::bench::SaveCsv(summary, "ext_bursty_arrivals");
  std::cout << "\nExpected: tardiness rises for every policy as bursts "
               "concentrate load,\nand the adaptive policy's gain over "
               "EDF widens (transient overload inside\nbursts is exactly "
               "where EDF's domino effect bites).\n";
  return 0;
}
