// Figure 14: ASETS* at the workflow level vs the *Ready* baseline (Wait
// queue + transaction-level ASETS) on workflow workloads with equal
// weights. Paper setting: maximum workflow length 5, maximum number of
// workflows per transaction 1; improvement between 28% and 57%, 44% on
// average across settings.

#include <iostream>

#include "bench/bench_util.h"

namespace webtx {
namespace {

void RunSetting(size_t max_len, size_t max_wf, const std::string& label) {
  WorkloadSpec spec;
  spec.max_workflow_length = max_len;
  spec.max_workflows_per_txn = max_wf;

  const auto policies = bench::SpecFactories({"Ready", "ASETS*"});

  Table table({"utilization", "Ready", "ASETS*", "improvement %"});
  double improvement_sum = 0.0;
  int improvement_count = 0;
  for (int step = 1; step <= 10; ++step) {
    spec.utilization = 0.1 * step;
    const auto m = bench::RunPoint(spec, policies, bench::PaperSeeds());
    const double ready_t = m[0].avg_tardiness;
    const double star_t = m[1].avg_tardiness;
    const double improvement =
        ready_t > 1e-9 ? (ready_t - star_t) / ready_t * 100.0 : 0.0;
    if (ready_t > 1e-9) {
      improvement_sum += improvement;
      ++improvement_count;
    }
    table.AddNumericRow(FormatFixed(spec.utilization, 1),
                        {ready_t, star_t, improvement});
  }
  std::cout << label << " (max workflow length " << max_len
            << ", max workflows/txn " << max_wf << "):\n\n";
  table.Print(std::cout);
  if (improvement_count > 0) {
    std::cout << "mean improvement "
              << FormatFixed(improvement_sum / improvement_count, 1)
              << "% (paper: 28-57%, avg 44%)\n";
  }
  bench::SaveCsv(table, "fig14_len" + std::to_string(max_len) + "_wf" +
                            std::to_string(max_wf));
  std::cout << "\n";
}

}  // namespace
}  // namespace webtx

int main() {
  std::cout << "Figure 14 — ASETS* vs Ready at the workflow level "
               "(equal weights):\n\n";
  webtx::RunSetting(5, 1, "Paper setting");
  // Sec. IV-D: "several experiments with different values ... in all
  // cases similar or better".
  webtx::RunSetting(3, 1, "Shorter workflows");
  webtx::RunSetting(10, 1, "Longer workflows");
  webtx::RunSetting(5, 3, "Overlapping workflows");
  return 0;
}
