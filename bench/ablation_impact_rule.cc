// Ablation X3 (DESIGN.md): the negative-impact rule. The paper's Eq. (1)
// and Fig. 7 clamp the tardy side's slack at zero and break ties toward
// the HDF side; Sec. III-B's prose subtracts raw slacks and breaks ties
// toward the EDF side. Quantifies both knobs.

#include <iostream>

#include "bench/bench_util.h"
#include "sched/policies/asets.h"
#include "sched/policies/asets_star.h"

namespace webtx {
namespace {

void RunTransactionLevel() {
  WorkloadSpec spec;  // independent transactions, Table I defaults

  AsetsOptions paper;  // clamped, ties to HDF (Fig. 7)
  AsetsOptions unclamped = paper;
  unclamped.clamp_slack = false;
  AsetsOptions ties_edf = paper;
  ties_edf.ties_to_edf = true;

  const std::vector<PolicyFactory> policies = {
      bench::FactoryOf<AsetsPolicy>(paper),
      bench::FactoryOf<AsetsPolicy>(unclamped),
      bench::FactoryOf<AsetsPolicy>(ties_edf)};

  Table table({"utilization", "paper rule", "unclamped slack",
               "ties to EDF"});
  for (int step = 1; step <= 10; ++step) {
    spec.utilization = 0.1 * step;
    const auto m = bench::RunPoint(spec, policies, bench::PaperSeeds());
    table.AddNumericRow(
        FormatFixed(spec.utilization, 1),
        {m[0].avg_tardiness, m[1].avg_tardiness, m[2].avg_tardiness});
  }
  std::cout << "Transaction level (avg tardiness):\n\n";
  table.Print(std::cout);
  bench::SaveCsv(table, "ablation_impact_rule_txn");
  std::cout << "\n";
}

void RunWorkflowLevel() {
  WorkloadSpec spec;
  spec.max_weight = 10;
  spec.max_workflow_length = 5;

  AsetsStarOptions paper;
  AsetsStarOptions unclamped = paper;
  unclamped.impact.clamp_slack = false;
  AsetsStarOptions ties_edf = paper;
  ties_edf.impact.ties_to_edf = true;

  const std::vector<PolicyFactory> policies = {
      bench::FactoryOf<AsetsStarPolicy>(paper),
      bench::FactoryOf<AsetsStarPolicy>(unclamped),
      bench::FactoryOf<AsetsStarPolicy>(ties_edf)};

  Table table({"utilization", "paper rule", "unclamped slack",
               "ties to EDF"});
  for (int step = 1; step <= 10; ++step) {
    spec.utilization = 0.1 * step;
    const auto m = bench::RunPoint(spec, policies, bench::PaperSeeds());
    table.AddNumericRow(FormatFixed(spec.utilization, 1),
                        {m[0].avg_weighted_tardiness,
                         m[1].avg_weighted_tardiness,
                         m[2].avg_weighted_tardiness});
  }
  std::cout << "Workflow level, general case (avg weighted tardiness):\n\n";
  table.Print(std::cout);
  bench::SaveCsv(table, "ablation_impact_rule_workflow");
  std::cout << "\n";
}

}  // namespace
}  // namespace webtx

int main() {
  std::cout << "Ablation — negative-impact rule variants:\n\n";
  webtx::RunTransactionLevel();
  webtx::RunWorkflowLevel();
  std::cout << "The paper rule should be at or below the variants, "
               "especially near the crossover.\n";
  return 0;
}
