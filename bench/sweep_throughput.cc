// End-to-end hot-path throughput baseline (BENCH_hotpath.json): how fast
// the sweep engine chews through the fig08 workload grid (10 utilizations
// x 5 seeds = 50 instances, Table I defaults), and how much of that
// wall-clock the serial merge tail costs, at 1/2/8 worker threads.
//
// Two extra series anchor the scheduler-side win independent of machine
// speed: the same instance grid replayed under the production
// (incremental-head) ASETS* and under the pre-optimization full-rescan
// reference (tests/testing/asets_star_reference.h), reported as events/sec
// each plus their ratio (speedup_vs_reference_refresh). The two runs
// produce byte-identical schedules — asserted continuously by
// tests/sched/asets_star_incremental_test — so the ratio is pure
// bookkeeping overhead, not a behavior change.
//
// Flags: --smoke runs a minimal grid (CI bit-rot guard, seconds);
// --threads=N / WEBTX_THREADS restrict the thread sweep.

#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "sched/policies/asets_star.h"
#include "tests/testing/asets_star_reference.h"

namespace webtx {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

constexpr int kReps = 3;  // best-of, to shave scheduler/cache noise

SweepConfig Fig08Config(bool smoke) {
  SweepConfig config;  // Table I defaults
  config.utilizations = PaperUtilizationGrid();
  config.policies = {"FCFS", "LS", "EDF", "SRPT", "ASETS"};
  if (smoke) {
    config.base.num_transactions = 100;
    config.utilizations = {0.4, 0.8};
    config.seeds = {1};
  }
  return config;
}

/// The paper's general case (fig15 settings): weighted transactions in
/// real multi-member workflows — the workload where ASETS* maintains
/// non-trivial per-workflow heads (fig08 workflows are singletons).
SweepConfig Fig15Config(bool smoke) {
  SweepConfig config = Fig08Config(smoke);
  config.base.max_weight = 10;
  config.base.max_workflow_length = 5;
  return config;
}

std::vector<WorkloadInstance> InstanceGrid(const SweepConfig& config) {
  std::vector<WorkloadInstance> instances;
  instances.reserve(config.utilizations.size() * config.seeds.size());
  for (size_t u = 0; u < config.utilizations.size(); ++u) {
    for (size_t r = 0; r < config.seeds.size(); ++r) {
      WorkloadInstance instance;
      instance.spec = config.base;
      instance.spec.utilization = config.utilizations[u];
      instance.seed = DeriveSeed(config.seeds[r], u, r);
      instances.push_back(std::move(instance));
    }
  }
  return instances;
}

/// Replays the grid under one ASETS* implementation, returning the
/// best-of-kReps events/sec; `events` gets the total scheduling points
/// processed (identical across reps — runs are deterministic).
double EventsPerSec(const std::vector<WorkloadInstance>& instances,
                    const PolicyFactory& factory, size_t* events) {
  ParallelRunOptions options;
  options.sim.record_outcomes = false;
  options.num_threads = 1;  // serial: measures the policy, not the pool
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto start = Clock::now();
    auto runs = RunInstances(instances, {factory}, options);
    const double elapsed = SecondsSince(start);
    WEBTX_CHECK(runs.ok()) << runs.status().ToString();
    size_t total = 0;
    for (const auto& run : runs.ValueOrDie()) {
      total += run[0].num_scheduling_points;
    }
    *events = total;
    best = std::max(best, static_cast<double>(total) / elapsed);
  }
  return best;
}

void RunBench(bool smoke) {
  std::vector<bench::BenchRow> rows;
  const auto row = [&rows](const std::string& config,
                           const std::string& metric, double value,
                           const std::string& unit) {
    rows.push_back(
        bench::BenchRow{"sweep_throughput", config, metric, value, unit});
  };
  const std::string grid = smoke ? "fig08-smoke" : "fig08";

  // End-to-end RunSweep wall-clock at 1/2/8 threads (the sweep output is
  // byte-identical across thread counts; only the wall-clock moves).
  std::vector<size_t> thread_counts = {1, 2, 8};
  if (const size_t env_threads = bench::NumThreads(); env_threads != 0) {
    thread_counts = {env_threads};
  }
  // Rows measured once at the pre-optimization revision (the commit this
  // PR branched from, built at identical Release settings) and kept in
  // the JSON since; see EXPERIMENTS.md "Scheduler overhead".
  const std::vector<bench::BenchRow> baseline = bench::ReadBenchRows();
  const auto seed_rate = [&baseline](const std::string& config) {
    for (const bench::BenchRow& b : baseline) {
      if (b.bench == "seed_baseline" && b.config == config &&
          b.metric == "instances_per_sec") {
        return b.value;
      }
    }
    return 0.0;
  };

  for (const size_t threads : thread_counts) {
    SweepConfig config = Fig08Config(smoke);
    config.num_threads = threads;
    SweepTiming timing;
    config.timing = &timing;
    const size_t num_instances =
        config.utilizations.size() * config.seeds.size();
    double best_rate = 0.0;
    double wall_ms = 0.0;
    double merge_ms = 0.0;
    double run_ms = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto start = Clock::now();
      auto cells = RunSweep(config);
      const double elapsed = SecondsSince(start);
      WEBTX_CHECK(cells.ok()) << cells.status().ToString();
      const double rate = static_cast<double>(num_instances) / elapsed;
      if (rate > best_rate) {
        best_rate = rate;
        wall_ms = elapsed * 1000.0;
        merge_ms = timing.merge_ms;
        run_ms = timing.run_ms;
      }
    }
    const std::string label = grid + " threads=" + std::to_string(threads);
    row(label, "instances_per_sec", best_rate, "1/s");
    row(label, "sweep_wall_ms", wall_ms, "ms");
    row(label, "merge_tail_ms", merge_ms, "ms");
    std::cout << label << ": " << best_rate << " instances/sec (wall "
              << wall_ms << " ms, run " << run_ms << " ms, merge tail "
              << merge_ms << " ms)\n";
    if (const double seed = seed_rate(label); seed > 0.0) {
      row(label, "speedup_vs_seed", best_rate / seed, "x");
      std::cout << "  " << best_rate / seed << "x vs seed_baseline ("
                << seed << " instances/sec)\n";
    }
  }

  // Scheduler-side series: production incremental ASETS* vs. the
  // full-rescan reference, identical schedules by construction. fig08
  // workflows are singletons (the head cache is trivially small), so the
  // incremental win is reported on the fig15 general case too — weighted
  // multi-member workflows, where head maintenance has real work to do.
  struct Replay {
    const char* label;
    SweepConfig config;
  };
  const Replay replays[] = {
      {"fig08", Fig08Config(smoke)},
      {"fig15", Fig15Config(smoke)},
  };
  for (const Replay& replay : replays) {
    size_t events_inc = 0;
    size_t events_ref = 0;
    const double inc =
        EventsPerSec(InstanceGrid(replay.config),
                     bench::FactoryOf<AsetsStarPolicy>(), &events_inc);
    const double ref = EventsPerSec(
        InstanceGrid(replay.config),
        bench::FactoryOf<testing::ReferenceAsetsStarPolicy>(), &events_ref);
    WEBTX_CHECK_EQ(events_inc, events_ref)
        << "incremental and reference ASETS* diverged — run "
           "asets_star_incremental_test";
    const std::string label =
        std::string(replay.label) + (smoke ? "-smoke" : "");
    row(label + " asets_star", "events_per_sec", inc, "1/s");
    row(label + " asets_star_reference", "events_per_sec", ref, "1/s");
    row(label + " asets_star", "speedup_vs_reference_refresh", inc / ref,
        "x");
    std::cout << label << " ASETS* events/sec: incremental " << inc
              << ", reference " << ref << " (speedup " << inc / ref
              << "x over " << events_inc << " events)\n";
  }

  bench::WriteBenchRows(rows);
}

}  // namespace
}  // namespace webtx

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  webtx::RunBench(smoke);
  return 0;
}
