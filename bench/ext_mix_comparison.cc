// Extension (paper Sec. V contrast): MIX [Buttazzo et al. '95] statically
// blends deadline and value with a tuning parameter beta; ASETS* adapts
// with no parameter. This harness sweeps beta on weighted workloads and
// shows that (a) MIX's best beta depends on the load, and (b) the
// parameter-free ASETS* matches or beats even the per-load best MIX.

#include <iostream>

#include "bench/bench_util.h"
#include "sched/policies/asets_star.h"
#include "sched/policies/mix.h"

namespace webtx {
namespace {

void RunComparison() {
  WorkloadSpec spec;
  spec.max_weight = 10;
  spec.max_workflow_length = 5;

  const std::vector<PolicyFactory> policies = {
      bench::FactoryOf<MixPolicy>(0.0),  bench::FactoryOf<MixPolicy>(0.25),
      bench::FactoryOf<MixPolicy>(0.5),  bench::FactoryOf<MixPolicy>(0.75),
      bench::FactoryOf<MixPolicy>(1.0),  bench::FactoryOf<AsetsStarPolicy>()};

  Table table({"utilization", "MIX(0)", "MIX(.25)", "MIX(.5)", "MIX(.75)",
               "MIX(1)", "ASETS*", "best-MIX beta"});
  int star_beats_best_mix = 0;
  for (int step = 1; step <= 10; ++step) {
    spec.utilization = 0.1 * step;
    const auto m = bench::RunPoint(spec, policies, bench::PaperSeeds());
    const double betas[] = {0.0, 0.25, 0.5, 0.75, 1.0};
    size_t best = 0;
    for (size_t i = 1; i < 5; ++i) {
      if (m[i].avg_weighted_tardiness < m[best].avg_weighted_tardiness) {
        best = i;
      }
    }
    if (m[5].avg_weighted_tardiness <=
        m[best].avg_weighted_tardiness * 1.02) {
      ++star_beats_best_mix;
    }
    std::vector<std::string> row = {FormatFixed(spec.utilization, 1)};
    for (size_t i = 0; i < 6; ++i) {
      row.push_back(FormatFixed(m[i].avg_weighted_tardiness, 3));
    }
    row.push_back(FormatFixed(betas[best], 2));
    table.AddRow(std::move(row));
  }
  std::cout << "Extension — static MIX vs parameter-free ASETS* (avg "
               "weighted tardiness, weights 1-10, workflows <= 5):\n\n";
  table.Print(std::cout);
  std::cout << "ASETS* within 2% of (or better than) the best per-load "
               "MIX at "
            << star_beats_best_mix << "/10 utilizations\n";
  bench::SaveCsv(table, "ext_mix_comparison");
  std::cout << "\nNote how the best beta shifts with load — the tuning "
               "burden ASETS* removes.\n";
}

}  // namespace
}  // namespace webtx

int main() {
  webtx::RunComparison();
  return 0;
}
