// Extension: graceful degradation under failures. The paper evaluates a
// failure-free server (Sec. IV); production web databases lose workers
// and abort transactions. This harness injects deterministic fault plans
// (sim/fault_plan.h) — Poisson server outages that preempt-but-retain
// work plus transaction aborts that discard it, with bounded
// backoff-retries — and sweeps fault severity x utilization across the
// policy spectrum, reporting tardiness over the transactions that
// completed and the goodput everyone paid for it. A second table holds
// the workload at overload and compares admission-control strategies.

#include <iostream>

#include "bench/bench_util.h"
#include "sched/admission.h"

namespace webtx {
namespace {

struct FaultLevel {
  const char* name;
  double outage_rate;   // per server per time unit
  double abort_rate;    // per server per time unit
};

// Mean transaction length is ~14 time units; the run horizon at the
// swept utilizations is ~15k-30k units. Outage windows average 25 units
// (~1.8 mean transactions), so "heavy" costs ~20% of capacity.
constexpr double kMeanOutageDuration = 25.0;

constexpr FaultLevel kLevels[] = {
    {"none", 0.0, 0.0},
    {"light", 0.0005, 0.001},
    {"moderate", 0.002, 0.004},
    {"heavy", 0.008, 0.012},
};

SimOptions FaultOptions(const FaultLevel& level) {
  SimOptions options;
  FaultPlanConfig config;
  config.outage_rate = level.outage_rate;
  config.mean_outage_duration = kMeanOutageDuration;
  config.abort_rate = level.abort_rate;
  config.seed = 7;
  auto plan = FaultPlan::Create(config);
  WEBTX_CHECK(plan.ok()) << plan.status().ToString();
  options.fault_plan = plan.ValueOrDie();
  options.retry.max_attempts = 3;
  options.retry.backoff = 5.0;
  options.retry.backoff_multiplier = 2.0;
  return options;
}

WorkloadSpec BaseSpec(double utilization) {
  WorkloadSpec spec;
  spec.max_weight = 10;
  spec.max_workflow_length = 3;
  spec.utilization = utilization;
  return spec;
}

const std::vector<std::string> kPolicies = {"FCFS", "EDF",   "SRPT",
                                            "HDF",  "ASETS", "ASETS*"};

void RunSeverity(double utilization, const FaultLevel& level,
                 Table& tardiness, Table& goodput) {
  const auto factories = bench::SpecFactories(kPolicies);
  const auto m = bench::RunPoint(BaseSpec(utilization), factories,
                                 bench::PaperSeeds(), FaultOptions(level));
  const std::string label =
      "u=" + std::to_string(utilization).substr(0, 3) + " " + level.name;
  std::vector<double> t_row;
  std::vector<double> g_row;
  for (const bench::PolicyMetrics& metrics : m) {
    t_row.push_back(metrics.avg_weighted_tardiness);
    g_row.push_back(metrics.goodput);
  }
  tardiness.AddNumericRow(label, t_row);
  goodput.AddNumericRow(label, g_row);
}

void RunAdmission(Table& table) {
  // Overloaded and failing: u = 1.2 under heavy faults. Every controller
  // runs the same EDF core on identical workload + fault timelines.
  struct Row {
    const char* name;
    AdmissionFactory admission;  // null = admit everything
  };
  QueueDepthAdmissionOptions depth;
  depth.max_ready = 40;
  QueueDepthAdmissionOptions depth_defer = depth;
  depth_defer.defer_delay = 50.0;
  depth_defer.max_defers = 3;
  FeasibilityAdmissionOptions feasibility;
  feasibility.tardiness_bound = 200.0;
  const Row rows[] = {
      {"admit-all", nullptr},
      {"queue-depth(40)", MakeQueueDepthAdmission(depth)},
      {"queue-depth+defer", MakeQueueDepthAdmission(depth_defer)},
      {"feasibility(200)", MakeFeasibilityAdmission(feasibility)},
  };
  const auto factories = bench::SpecFactories({"EDF"});
  for (const Row& row : rows) {
    SimOptions options = FaultOptions(kLevels[3]);
    options.admission = row.admission;
    const auto m = bench::RunPoint(BaseSpec(1.2), factories,
                                   bench::PaperSeeds(), options);
    table.AddNumericRow(row.name,
                        {m[0].avg_weighted_tardiness, m[0].miss_ratio,
                         m[0].goodput});
  }
}

}  // namespace
}  // namespace webtx

int main() {
  std::cout << "Extension — fault tolerance (server outages with work "
               "retained +\ntransaction aborts with work discarded; "
               "3 attempts, backoff 5x2^i;\nweights 1-10, workflows <= 3, "
               "5 seeds):\n\n";

  std::vector<std::string> header = {"setting"};
  for (const std::string& p : webtx::kPolicies) header.push_back(p);
  webtx::Table tardiness(header);
  webtx::Table goodput(header);
  for (const double u : {0.5, 0.8}) {
    for (const webtx::FaultLevel& level : webtx::kLevels) {
      webtx::RunSeverity(u, level, tardiness, goodput);
    }
  }
  std::cout << "Avg weighted tardiness of COMPLETED transactions:\n";
  tardiness.Print(std::cout);
  webtx::bench::SaveCsv(tardiness, "ext_fault_tolerance_tardiness");
  std::cout << "\nGoodput (fraction of transactions completed):\n";
  goodput.Print(std::cout);
  webtx::bench::SaveCsv(goodput, "ext_fault_tolerance_goodput");

  std::cout << "\nOverload shedding at u=1.2 under heavy faults (EDF "
               "core):\n";
  webtx::Table admission(
      {"admission", "avg_w_tardiness", "miss_ratio", "goodput"});
  webtx::RunAdmission(admission);
  admission.Print(std::cout);
  webtx::bench::SaveCsv(admission, "ext_fault_tolerance_admission");

  std::cout << "\nFaults compress the spread between policies (aborts "
               "re-randomize the\nqueue) but shift the ordering: "
               "work-conserving short-first policies\nlose less to "
               "discarded work, and admission control trades a bounded\n"
               "goodput cut for tardiness the unprotected queue cannot "
               "recover.\n";
  return 0;
}
