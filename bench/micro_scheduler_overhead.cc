// Microbenchmarks for the Sec. III-A2 complexity claim: "We can use the
// standard balanced binary search tree as the priority queue, which
// requires only a time of O(log N) ... ASETS* scales in a similar manner
// as EDF and SRPT."
//
// Benchmarks the full simulation cost per scheduling event as the number
// of concurrently queued transactions grows, per policy, plus raw
// IndexedPriorityQueue operations.

#include <benchmark/benchmark.h>

#include <utility>

#include "bench/bench_util.h"
#include "sched/indexed_priority_queue.h"
#include "sched/policy_factory.h"
#include "sim/simulator.h"
#include "workload/generator.h"

namespace webtx {
namespace {

// A heavily overloaded open workload: with utilization 4.0 the queue
// grows to O(N) concurrent transactions, so per-event costs expose the
// O(log N) (or worse) scaling of the policy's data structures.
std::vector<TransactionSpec> OverloadWorkload(size_t n) {
  WorkloadSpec spec;
  spec.num_transactions = n;
  spec.utilization = 4.0;
  spec.max_weight = 10;
  auto generator = WorkloadGenerator::Create(spec);
  WEBTX_CHECK(generator.ok());
  return generator.ValueOrDie().Generate(/*seed=*/5);
}

void BM_PolicyEventCost(benchmark::State& state,
                        const std::string& policy_name) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto txns = OverloadWorkload(n);
  SimOptions options;
  options.record_outcomes = false;
  auto sim = Simulator::Create(txns, options);
  WEBTX_CHECK(sim.ok());
  auto policy = CreatePolicy(policy_name);
  WEBTX_CHECK(policy.ok());

  size_t events = 0;
  for (auto _ : state) {
    const RunResult r = sim.ValueOrDie().Run(*policy.ValueOrDie());
    events += r.num_scheduling_points;
    benchmark::DoNotOptimize(r.avg_tardiness);
  }
  // items_per_second reports scheduling events per second; an O(log N)
  // policy shows a slow (logarithmic) decay as N grows.
  state.SetItemsProcessed(static_cast<int64_t>(events));
}

BENCHMARK_CAPTURE(BM_PolicyEventCost, EDF, "EDF")
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PolicyEventCost, SRPT, "SRPT")
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PolicyEventCost, HDF, "HDF")
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PolicyEventCost, ASETS, "ASETS")
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_PolicyEventCost, ASETS_STAR, "ASETS*")
    ->RangeMultiplier(4)
    ->Range(256, 16384)
    ->Unit(benchmark::kMillisecond);

void BM_IndexedPqPushPop(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<double> keys(n);
  for (auto& k : keys) k = rng.NextDouble();
  for (auto _ : state) {
    IndexedPriorityQueue q(n);
    for (uint32_t id = 0; id < n; ++id) q.Push(id, keys[id]);
    while (!q.empty()) benchmark::DoNotOptimize(q.Pop());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_IndexedPqPushPop)->RangeMultiplier(8)->Range(64, 262144);

void BM_IndexedPqUpdate(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(11);
  IndexedPriorityQueue q(n);
  for (uint32_t id = 0; id < n; ++id) q.Push(id, rng.NextDouble());
  uint32_t id = 0;
  for (auto _ : state) {
    q.Update(id, rng.NextDouble());
    id = (id + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedPqUpdate)->RangeMultiplier(8)->Range(64, 262144);

// Re-keying an entry with its current key: UpdateKeyIfChanged detects the
// no-op and skips the sift entirely — the case ASETS* hits on every
// OnRemainingUpdated storm where only one workflow's key really moved.
void BM_IndexedPqUpdateUnchanged(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(11);
  std::vector<double> keys(n);
  for (auto& k : keys) k = rng.NextDouble();
  IndexedPriorityQueue q(n);
  for (uint32_t id = 0; id < n; ++id) q.Push(id, keys[id]);
  uint32_t id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.UpdateKeyIfChanged(id, keys[id]));
    id = (id + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexedPqUpdateUnchanged)->RangeMultiplier(8)->Range(64, 262144);

// Rebuilding a queue from scratch: Floyd heapify (O(n)) vs. the n Push
// calls (O(n log n)) that BM_IndexedPqPushPop's fill phase performs.
void BM_IndexedPqBulkLoad(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<std::pair<uint32_t, double>> items(n);
  for (uint32_t id = 0; id < n; ++id) items[id] = {id, rng.NextDouble()};
  IndexedPriorityQueue q;
  for (auto _ : state) {
    q.ReserveAndBulkLoad(items);
    benchmark::DoNotOptimize(q.Top());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_IndexedPqBulkLoad)->RangeMultiplier(8)->Range(64, 262144);

// Console output plus machine-readable rows for BENCH_hotpath.json: every
// per-iteration run contributes its adjusted real time and, when set, its
// items/sec throughput (scheduling events/sec for BM_PolicyEventCost).
class JsonRowReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      rows_.push_back(bench::BenchRow{"micro_scheduler_overhead", name,
                                      "real_time_per_iter",
                                      run.GetAdjustedRealTime(),
                                      TimeUnitLabel(run.time_unit)});
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        rows_.push_back(bench::BenchRow{"micro_scheduler_overhead", name,
                                        "items_per_second",
                                        items->second.value, "1/s"});
      }
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<bench::BenchRow>& rows() const { return rows_; }

 private:
  static std::string TimeUnitLabel(benchmark::TimeUnit unit) {
    switch (unit) {
      case benchmark::kNanosecond:
        return "ns";
      case benchmark::kMicrosecond:
        return "us";
      case benchmark::kMillisecond:
        return "ms";
      case benchmark::kSecond:
        return "s";
    }
    return "?";
  }

  std::vector<bench::BenchRow> rows_;
};

}  // namespace
}  // namespace webtx

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  webtx::JsonRowReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  webtx::bench::WriteBenchRows(reporter.rows());
  return 0;
}
