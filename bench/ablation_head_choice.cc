// Ablation X2 (DESIGN.md): Definition 8 does not say which ready member
// of a workflow is "the" head when several are ready. Compares the three
// implemented rules on weighted workflow workloads.

#include <iostream>

#include "bench/bench_util.h"
#include "sched/policies/asets_star.h"

namespace webtx {
namespace {

void RunAblation() {
  WorkloadSpec spec;
  spec.max_weight = 10;
  spec.max_workflow_length = 6;
  spec.max_workflows_per_txn = 3;

  AsetsStarOptions earliest;
  earliest.head_rule = HeadSelectionRule::kEarliestDeadline;
  AsetsStarOptions shortest;
  shortest.head_rule = HeadSelectionRule::kShortestRemaining;
  AsetsStarOptions fifo;
  fifo.head_rule = HeadSelectionRule::kFifoArrival;

  const std::vector<PolicyFactory> policies = {
      bench::FactoryOf<AsetsStarPolicy>(earliest),
      bench::FactoryOf<AsetsStarPolicy>(shortest),
      bench::FactoryOf<AsetsStarPolicy>(fifo)};

  Table table({"utilization", "earliest-deadline", "shortest-remaining",
               "fifo-arrival"});
  for (int step = 1; step <= 10; ++step) {
    spec.utilization = 0.1 * step;
    const auto m = bench::RunPoint(spec, policies, bench::PaperSeeds());
    table.AddNumericRow(FormatFixed(spec.utilization, 1),
                        {m[0].avg_weighted_tardiness,
                         m[1].avg_weighted_tardiness,
                         m[2].avg_weighted_tardiness});
  }
  std::cout << "Ablation — ASETS* head-selection rule (avg weighted "
               "tardiness, weights 1-10, workflows <= 6 x 3):\n\n";
  table.Print(std::cout);
  bench::SaveCsv(table, "ablation_head_choice");
  std::cout << "\nDefault is earliest-deadline; the rules should track "
               "each other closely, confirming the choice is not "
               "load-bearing.\n";
}

}  // namespace
}  // namespace webtx

int main() {
  webtx::RunAblation();
  return 0;
}
