// Sec. IV-C's final experiment (plots omitted in the paper for space):
// vary the Zipf skew alpha of the length distribution at k_max = 3.
//
// Expected shape (paper text): ASETS beats EDF and SRPT at every
// utilization for every alpha, and the EDF/SRPT crossover moves to LOWER
// utilization as the distribution gets more skewed (tighter relative
// deadlines saturate the system sooner).

#include <iostream>

#include "bench/bench_util.h"

namespace webtx {
namespace {

// Returns the first sweep step where SRPT beats EDF (or -1).
int RunForAlpha(double alpha, Table& crossovers) {
  WorkloadSpec spec;
  spec.zipf_alpha = alpha;

  const auto policies = bench::SpecFactories({"EDF", "SRPT", "ASETS"});

  Table table({"utilization", "EDF", "SRPT", "ASETS*"});
  int crossover_step = -1;
  int asets_wins = 0;
  for (int step = 1; step <= 10; ++step) {
    spec.utilization = 0.1 * step;
    const auto m = bench::RunPoint(spec, policies, bench::PaperSeeds());
    table.AddNumericRow(
        FormatFixed(spec.utilization, 1),
        {m[0].avg_tardiness, m[1].avg_tardiness, m[2].avg_tardiness});
    if (crossover_step < 0 && m[1].avg_tardiness < m[0].avg_tardiness) {
      crossover_step = step;
    }
    if (m[2].avg_tardiness <=
        std::min(m[0].avg_tardiness, m[1].avg_tardiness) + 1e-9) {
      ++asets_wins;
    }
  }
  std::cout << "alpha = " << alpha << ":\n\n";
  table.Print(std::cout);
  std::cout << "ASETS* at or below both baselines at " << asets_wins
            << "/10 utilizations\n\n";
  bench::SaveCsv(table,
                 "figalpha_" + FormatFixed(alpha, 2));
  crossovers.AddRow({FormatFixed(alpha, 2),
                     crossover_step > 0
                         ? FormatFixed(0.1 * crossover_step, 1)
                         : std::string("none")});
  return crossover_step;
}

}  // namespace
}  // namespace webtx

int main() {
  std::cout << "Length-skew sweep (Sec. IV-C, k_max = 3):\n\n";
  webtx::Table crossovers({"alpha", "EDF/SRPT crossover utilization"});
  for (const double alpha : {0.0, 0.25, 0.5, 1.0, 1.5}) {
    webtx::RunForAlpha(alpha, crossovers);
  }
  std::cout << "Crossover vs skew:\n\n";
  crossovers.Print(std::cout);
  webtx::bench::SaveCsv(crossovers, "figalpha_crossovers");
  std::cout << "\nPaper check: more skew (larger alpha) pulls the "
               "crossover to lower utilization.\n";
  return 0;
}
