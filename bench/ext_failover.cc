// Extension: crash-failover. Outages (ext_fault_tolerance) pause a
// server and resume its transaction in place; a CRASH loses the server
// for an exponentially distributed repair window and the in-flight
// transaction must be migrated to the survivors. This harness sweeps
// crash severity x MigrationPolicy across the policy spectrum on a
// four-server pool: warm failover (replicated execution state, work
// survives the move) against cold failover (state lost, the migrant
// restarts from scratch), reporting the tardiness of what completed and
// the deadline-miss ratio. A second table turns on correlated failures
// — one crash
// instant felling several servers at once (rack/zone loss) — which
// stresses the window where the pool is nearly empty.

#include <iostream>

#include "bench/bench_util.h"

namespace webtx {
namespace {

struct CrashLevel {
  const char* name;
  double crash_rate;  // per server per time unit
};

// Mean transaction length is ~14 units and the run horizon ~5k-10k.
// Repair windows average 50 units (~3.5 mean transactions); at the
// heavy rate each server is in repair ~23% of the time.
constexpr double kMeanRepairDuration = 50.0;
constexpr size_t kNumServers = 4;

constexpr CrashLevel kLevels[] = {
    {"none", 0.0},
    {"light", 0.0005},
    {"moderate", 0.002},
    {"heavy", 0.006},
};

SimOptions CrashOptions(const CrashLevel& level, MigrationPolicy migration,
                        double correlated_crash_prob) {
  SimOptions options;
  options.num_servers = kNumServers;
  FaultPlanConfig config;
  config.crash_rate = level.crash_rate;
  if (level.crash_rate > 0.0) {
    config.mean_repair_duration = kMeanRepairDuration;
    config.correlated_crash_prob = correlated_crash_prob;
  }
  config.migration = migration;
  config.seed = 11;
  auto plan = FaultPlan::Create(config);
  WEBTX_CHECK(plan.ok()) << plan.status().ToString();
  options.fault_plan = plan.ValueOrDie();
  return options;
}

WorkloadSpec BaseSpec() {
  WorkloadSpec spec;
  spec.max_weight = 10;
  spec.max_workflow_length = 3;
  // Arrival rate sized for ~3 busy workers out of 4: enough headroom
  // that failover to a survivor is usually possible, tight enough that
  // losing a server hurts.
  spec.utilization = 3.0;
  return spec;
}

const std::vector<std::string> kPolicies = {"FCFS", "EDF",   "SRPT",
                                            "HDF",  "ASETS", "ASETS*"};

void RunLevel(const CrashLevel& level, MigrationPolicy migration,
              Table& tardiness, Table& miss) {
  const auto factories = bench::SpecFactories(kPolicies);
  const auto m = bench::RunPoint(BaseSpec(), factories, bench::PaperSeeds(),
                                 CrashOptions(level, migration, 0.0));
  const std::string label =
      std::string(level.name) + " " + MigrationPolicyName(migration);
  std::vector<double> t_row;
  std::vector<double> m_row;
  for (const bench::PolicyMetrics& metrics : m) {
    t_row.push_back(metrics.avg_weighted_tardiness);
    m_row.push_back(metrics.miss_ratio);
  }
  tardiness.AddNumericRow(label, t_row);
  miss.AddNumericRow(label, m_row);
}

void RunCorrelated(double correlated_crash_prob, Table& table) {
  const auto factories = bench::SpecFactories(kPolicies);
  const auto m = bench::RunPoint(
      BaseSpec(), factories, bench::PaperSeeds(),
      CrashOptions(kLevels[3], MigrationPolicy::kCold,
                   correlated_crash_prob));
  std::vector<double> row;
  for (const bench::PolicyMetrics& metrics : m) {
    row.push_back(metrics.miss_ratio);
  }
  table.AddNumericRow("p=" + std::to_string(correlated_crash_prob).substr(0, 3),
                      row);
}

}  // namespace
}  // namespace webtx

int main() {
  std::cout << "Extension — crash-failover (4 servers, arrival rate sized "
               "for ~3 busy\nworkers; repair windows ~50 units; warm = "
               "migrated work survives, cold =\nmigrant restarts; weights "
               "1-10, workflows <= 3, 5 seeds):\n\n";

  std::vector<std::string> header = {"setting"};
  for (const std::string& p : webtx::kPolicies) header.push_back(p);
  webtx::Table tardiness(header);
  webtx::Table miss(header);
  for (const webtx::CrashLevel& level : webtx::kLevels) {
    for (const webtx::MigrationPolicy migration :
         {webtx::MigrationPolicy::kWarm, webtx::MigrationPolicy::kCold}) {
      webtx::RunLevel(level, migration, tardiness, miss);
      if (level.crash_rate == 0.0) break;  // warm == cold without crashes
    }
  }
  std::cout << "Avg weighted tardiness of COMPLETED transactions:\n";
  tardiness.Print(std::cout);
  webtx::bench::SaveCsv(tardiness, "ext_failover_tardiness");
  std::cout << "\nDeadline miss ratio (goodput stays 1.0 at every level: "
               "crashes delay\ntransactions but never destroy them — only "
               "aborts and admission shed\nwork):\n";
  miss.Print(std::cout);
  webtx::bench::SaveCsv(miss, "ext_failover_miss_ratio");

  std::cout << "\nCorrelated failures at the heavy crash rate (cold "
               "failover, miss\nratio; p = probability each crash instant "
               "also fells each other server):\n";
  webtx::Table correlated({"correlation", "FCFS", "EDF", "SRPT", "HDF",
                           "ASETS", "ASETS*"});
  for (const double p : {0.0, 0.3, 0.7}) {
    webtx::RunCorrelated(p, correlated);
  }
  correlated.Print(std::cout);
  webtx::bench::SaveCsv(correlated, "ext_failover_correlated");

  std::cout << "\nWarm failover degrades gracefully — migration costs only "
               "the queueing\ndelay on the survivors. Cold failover "
               "re-executes everything the crashed\nserver had done, so "
               "short-first policies (which keep less work in flight\nper "
               "transaction) lose the least; correlated crashes compound "
               "the gap by\nshrinking the pool exactly when the migrants "
               "arrive.\n";
  return 0;
}
