// Figures 10-13: average tardiness of ASETS normalized to EDF and to SRPT
// for k_max = 3 (Fig. 10), 1 (Fig. 11), 2 (Fig. 12) and 4 (Fig. 13).
//
// Expected shape: both ratios <= ~1 everywhere, the deepest dip (up to
// ~30% gain) near the EDF/SRPT crossover, and the crossover moving to
// higher utilization as k_max grows (looser deadlines let EDF catch up).

#include <iostream>

#include "bench/bench_util.h"

namespace webtx {
namespace {

void RunForKmax(double k_max, const std::string& figure) {
  WorkloadSpec spec;
  spec.k_max = k_max;

  const auto policies = bench::SpecFactories({"EDF", "SRPT", "ASETS"});

  Table table({"utilization", "ASETS*/EDF", "ASETS*/SRPT", "EDF", "SRPT",
               "ASETS*"});
  int crossover_step = -1;
  for (int step = 1; step <= 10; ++step) {
    spec.utilization = 0.1 * step;
    const auto m = bench::RunPoint(spec, policies, bench::PaperSeeds());
    const double edf_t = m[0].avg_tardiness;
    const double srpt_t = m[1].avg_tardiness;
    const double asets_t = m[2].avg_tardiness;
    const auto ratio = [](double a, double b) {
      return b > 1e-12 ? a / b : 1.0;
    };
    table.AddNumericRow(FormatFixed(spec.utilization, 1),
                        {ratio(asets_t, edf_t), ratio(asets_t, srpt_t),
                         edf_t, srpt_t, asets_t});
    if (crossover_step < 0 && srpt_t < edf_t) crossover_step = step;
  }

  std::cout << figure << " — Normalized avg tardiness (k_max = " << k_max
            << "):\n\n";
  table.Print(std::cout);
  if (crossover_step > 0) {
    std::cout << "EDF/SRPT crossover at utilization ~"
              << FormatFixed(0.1 * crossover_step, 1) << "\n";
  } else {
    std::cout << "EDF stayed ahead of SRPT across the sweep\n";
  }
  bench::SaveCsv(table, "fig_normalized_kmax" +
                            std::to_string(static_cast<int>(k_max)));
  std::cout << "\n";
}

}  // namespace
}  // namespace webtx

int main() {
  webtx::RunForKmax(3.0, "Figure 10");
  webtx::RunForKmax(1.0, "Figure 11");
  webtx::RunForKmax(2.0, "Figure 12");
  webtx::RunForKmax(4.0, "Figure 13");
  std::cout << "Paper check: ratios <= 1 with the deepest dip near each "
               "crossover;\nthe crossover moves right as k_max grows.\n";
  return 0;
}
