#include "sim/fault_timeline.h"

#include <chrono>
#include <utility>

#include "common/check.h"

namespace webtx {

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

}  // namespace

void FaultTimeline::FillOutages(std::vector<Window>& out) {
  out.clear();
  for (size_t i = 0; i < kChunkEvents; ++i) {
    // The generator is always "up" here: each window is read off the
    // pre-drawn state, then its begin and end boundaries are crossed so
    // the next one is drawn — the exact consumption pattern of the
    // simulator's outage handling.
    out.push_back(Window{gen_->next_transition(), gen_->outage_end()});
    gen_->AdvanceTransition();
    gen_->AdvanceTransition();
  }
}

void FaultTimeline::FillCrashes(std::vector<Window>& out) {
  out.clear();
  for (size_t i = 0; i < kChunkEvents; ++i) {
    out.push_back(Window{gen_->next_crash_transition(), gen_->repair_end()});
    gen_->AdvanceCrashTransition();
    gen_->AdvanceCrashTransition();
  }
}

void FaultTimeline::FillAborts(std::vector<SimTime>& out) {
  out.clear();
  for (size_t i = 0; i < kChunkEvents; ++i) {
    out.push_back(gen_->next_abort());
    gen_->AdvanceAbort();
  }
}

template <typename Event, typename Fill>
Event FaultTimeline::PopEvent(Buffers<Event>& b, Fill fill) {
  if (b.idx == b.cur.size()) {
    if (pool_ != nullptr) {
      const auto t0 = Clock::now();
      b.prefetch.get();
      barrier_wait_ms_ += MsSince(t0);
      pregen_ms_ += b.worker_gen_ms;
      std::swap(b.cur, b.next);
      b.prefetch = pool_->Submit([this, &b, fill] {
        const auto g0 = Clock::now();
        fill(b.next);
        b.worker_gen_ms = MsSince(g0);
      });
    } else {
      const auto t0 = Clock::now();
      fill(b.cur);
      pregen_ms_ += MsSince(t0);
    }
    b.idx = 0;
    ++chunks_;
  }
  return b.cur[b.idx++];
}

void FaultTimeline::Begin(const FaultPlanConfig& config, uint32_t server,
                          ThreadPool* pool) {
  Finish(nullptr);  // settle any leftover prefetch before rebuilding
  WEBTX_CHECK(config.correlated_crash_prob == 0.0)
      << "FaultTimeline cannot pregenerate a correlated crash process";
  gen_ = std::make_unique<FaultStream>(config, server);
  pool_ = pool;
  pregen_ms_ = 0.0;
  barrier_wait_ms_ = 0.0;
  chunks_ = 0;

  outages_.enabled = config.outage_rate > 0.0;
  crashes_.enabled = config.crash_rate > 0.0;
  aborts_.enabled = config.abort_rate > 0.0;
  outages_.idx = outages_.cur.size();  // force a fill on first pop
  crashes_.idx = crashes_.cur.size();
  aborts_.idx = aborts_.cur.size();

  const auto fill_outages = [this](std::vector<Window>& v) {
    FillOutages(v);
  };
  const auto fill_crashes = [this](std::vector<Window>& v) {
    FillCrashes(v);
  };
  const auto fill_aborts = [this](std::vector<SimTime>& v) {
    FillAborts(v);
  };

  // First chunks are always produced inline (the run needs them now);
  // with a pool, the second chunk of each process starts immediately so
  // steady-state barriers find it already landed.
  const auto t0 = Clock::now();
  if (outages_.enabled) {
    FillOutages(outages_.cur);
    outages_.idx = 0;
    ++chunks_;
  }
  if (crashes_.enabled) {
    FillCrashes(crashes_.cur);
    crashes_.idx = 0;
    ++chunks_;
  }
  if (aborts_.enabled) {
    FillAborts(aborts_.cur);
    aborts_.idx = 0;
    ++chunks_;
  }
  pregen_ms_ += MsSince(t0);
  if (pool_ != nullptr) {
    if (outages_.enabled) {
      outages_.prefetch = pool_->Submit([this, fill_outages] {
        const auto g0 = Clock::now();
        fill_outages(outages_.next);
        outages_.worker_gen_ms = MsSince(g0);
      });
    }
    if (crashes_.enabled) {
      crashes_.prefetch = pool_->Submit([this, fill_crashes] {
        const auto g0 = Clock::now();
        fill_crashes(crashes_.next);
        crashes_.worker_gen_ms = MsSince(g0);
      });
    }
    if (aborts_.enabled) {
      aborts_.prefetch = pool_->Submit([this, fill_aborts] {
        const auto g0 = Clock::now();
        fill_aborts(aborts_.next);
        aborts_.worker_gen_ms = MsSince(g0);
      });
    }
  }

  outage_down_ = false;
  crashed_ = false;
  repair_end_ = 0.0;
  cur_outage_ = outages_.enabled ? PopEvent(outages_, fill_outages) : Window{};
  cur_crash_ = crashes_.enabled ? PopEvent(crashes_, fill_crashes) : Window{};
  next_abort_ = aborts_.enabled ? PopEvent(aborts_, fill_aborts) : kNeverTime;
}

void FaultTimeline::Finish(ShardTiming* timing) {
  const auto settle = [this](auto& b) {
    if (b.prefetch.valid()) {
      b.prefetch.get();
      pregen_ms_ += b.worker_gen_ms;  // real work, even if never consumed
    }
  };
  settle(outages_);
  settle(crashes_);
  settle(aborts_);
  if (timing != nullptr) {
    timing->pregen_ms += pregen_ms_;
    timing->barrier_wait_ms += barrier_wait_ms_;
    timing->chunks += chunks_;
  }
  pregen_ms_ = 0.0;
  barrier_wait_ms_ = 0.0;
  chunks_ = 0;
}

void FaultTimeline::AdvanceTransition() {
  if (!outage_down_) {
    outage_down_ = true;  // the window [cur_outage_.start, .end) begins
    return;
  }
  outage_down_ = false;
  cur_outage_ = outages_.enabled
                    ? PopEvent(outages_,
                               [this](std::vector<Window>& v) {
                                 FillOutages(v);
                               })
                    : Window{};
}

void FaultTimeline::AdvanceAbort() {
  next_abort_ = aborts_.enabled
                    ? PopEvent(aborts_,
                               [this](std::vector<SimTime>& v) {
                                 FillAborts(v);
                               })
                    : kNeverTime;
}

void FaultTimeline::AdvanceCrashTransition() {
  if (!crashed_) {
    crashed_ = true;  // the pre-drawn repair window begins
    repair_end_ = cur_crash_.end;
    return;
  }
  // Rejoin. Uncorrelated plans never extend the repair window, so no
  // window thinning can be needed here (the generator would replay it
  // identically if it were — see FaultStream::AdvanceCrashTransition).
  crashed_ = false;
  cur_crash_ = crashes_.enabled
                   ? PopEvent(crashes_,
                              [this](std::vector<Window>& v) {
                                FillCrashes(v);
                              })
                   : Window{};
}

}  // namespace webtx
