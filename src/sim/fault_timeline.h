#ifndef WEBTX_SIM_FAULT_TIMELINE_H_
#define WEBTX_SIM_FAULT_TIMELINE_H_

#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "sim/fault_plan.h"
#include "sim/metrics.h"

namespace webtx {

/// A chunked materialization of one server's fault timeline, consumed by
/// the sharded simulator through the same accessor protocol as a live
/// FaultStream (down / next_transition / AdvanceTransition / next_abort /
/// next_crash_transition / ...).
///
/// Chunks are produced by replaying a private FaultStream generator, so
/// every value — including suppression-list redraws — is identical to
/// what the lazy stream would have produced, by construction rather than
/// by a re-implementation of the draw logic. With a ThreadPool, the next
/// chunk of each process is generated on a worker while the event loop
/// consumes the current one (double buffering), which is how a shard's
/// fault stream gets off the critical path; without one, chunks are
/// refilled inline at the barrier.
///
/// Only valid for UNCORRELATED plans (correlated_crash_prob == 0): a
/// correlated plan's crash process is mutated mid-run by ForceCrash
/// fan-in from other servers, which cannot be pregenerated — the
/// simulator keeps lazy FaultStreams for that mode.
///
/// Thread-safety: the three generator processes (outage, abort, crash)
/// draw from disjoint RNG chains and disjoint FaultStream fields, so one
/// in-flight prefetch per process is safe; within a process, prefetches
/// are serialized by the consume-wait-swap-submit cycle. All consumer
/// methods are main-thread only.
class FaultTimeline {
 public:
  FaultTimeline() = default;
  FaultTimeline(FaultTimeline&&) = default;
  FaultTimeline& operator=(FaultTimeline&&) = default;

  /// Prepares the timeline for one run: builds a fresh generator for
  /// `server` from `config`, fills the first chunk of every enabled
  /// process, and (with `pool`) schedules the second. Reuses buffer
  /// capacity across runs.
  void Begin(const FaultPlanConfig& config, uint32_t server,
             ThreadPool* pool);

  /// Settles any in-flight prefetch and adds this run's wall-clock
  /// accounting to *timing (when non-null). Must be called before the
  /// owning simulator's Run returns — a worker still filling a buffer
  /// must not outlive the run that owns it.
  void Finish(ShardTiming* timing);

  // FaultStream-compatible consumption API (see sim/fault_plan.h for
  // the semantics; correlated-mode entry points are deliberately
  // absent).
  bool down() const { return outage_down_ || crashed_; }
  SimTime next_transition() const {
    return outage_down_ ? cur_outage_.end : cur_outage_.start;
  }
  SimTime outage_end() const { return cur_outage_.end; }
  void AdvanceTransition();
  SimTime next_abort() const { return next_abort_; }
  void AdvanceAbort();
  bool crashed() const { return crashed_; }
  SimTime next_crash_transition() const {
    return crashed_ ? repair_end_ : cur_crash_.start;
  }
  SimTime repair_end() const { return crashed_ ? repair_end_ : cur_crash_.end; }
  void AdvanceCrashTransition();

  /// Fault events per chunk per process. Exposed for tests that want to
  /// force chunk barriers with small workloads.
  static constexpr size_t kChunkEvents = 256;

 private:
  struct Window {
    SimTime start = kNeverTime;
    SimTime end = kNeverTime;
  };
  // One double-buffered process: the event loop consumes `cur` while a
  // worker (or the next inline refill) produces `next`.
  template <typename Event>
  struct Buffers {
    std::vector<Event> cur, next;
    size_t idx = 0;
    bool enabled = false;
    std::future<void> prefetch;  // fills `next` when valid
    double worker_gen_ms = 0.0;  // written by the worker, read post-get()
  };

  void FillOutages(std::vector<Window>& out);
  void FillCrashes(std::vector<Window>& out);
  void FillAborts(std::vector<SimTime>& out);

  template <typename Event, typename Fill>
  Event PopEvent(Buffers<Event>& b, Fill fill);

  std::unique_ptr<FaultStream> gen_;
  ThreadPool* pool_ = nullptr;

  Buffers<Window> outages_;
  Buffers<Window> crashes_;
  Buffers<SimTime> aborts_;

  // Consumer state, mirroring FaultStream's.
  bool outage_down_ = false;
  bool crashed_ = false;
  Window cur_outage_;
  Window cur_crash_;
  SimTime repair_end_ = 0.0;
  SimTime next_abort_ = kNeverTime;

  // This run's accounting, flushed by Finish().
  double pregen_ms_ = 0.0;
  double barrier_wait_ms_ = 0.0;
  uint64_t chunks_ = 0;
};

}  // namespace webtx

#endif  // WEBTX_SIM_FAULT_TIMELINE_H_
