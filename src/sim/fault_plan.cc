#include "sim/fault_plan.h"

#include <cmath>

namespace webtx {

namespace {

// Stream tags chained into DeriveSeed so a server's outage and abort
// processes are independent of each other and of every other server.
constexpr uint64_t kOutageStream = 0;
constexpr uint64_t kAbortStream = 1;

// Inverse-CDF exponential draw; strictly positive (NextDouble < 1).
double DrawExponential(Rng& rng, double rate) {
  return -std::log(1.0 - rng.NextDouble()) / rate;
}

}  // namespace

FaultStream::FaultStream(const FaultPlanConfig& config, uint32_t server)
    : outage_rate_(config.outage_rate),
      mean_outage_duration_(config.mean_outage_duration),
      abort_rate_(config.abort_rate),
      outage_rng_(DeriveSeed(config.seed, server, kOutageStream)),
      abort_rng_(DeriveSeed(config.seed, server, kAbortStream)) {
  if (outage_rate_ > 0.0) {
    DrawOutageWindow(0.0);
  } else {
    outage_start_ = kNeverTime;
    outage_end_ = kNeverTime;
  }
  next_abort_ = abort_rate_ > 0.0 ? DrawExponential(abort_rng_, abort_rate_)
                                  : kNeverTime;
}

void FaultStream::DrawOutageWindow(SimTime after) {
  outage_start_ = after + DrawExponential(outage_rng_, outage_rate_);
  outage_end_ =
      outage_start_ +
      DrawExponential(outage_rng_, 1.0 / mean_outage_duration_);
}

void FaultStream::AdvanceTransition() {
  if (!down_) {
    down_ = true;  // the window [outage_start_, outage_end_) begins
  } else {
    down_ = false;
    DrawOutageWindow(outage_end_);
  }
}

void FaultStream::AdvanceAbort() {
  if (abort_rate_ <= 0.0) return;  // stays kNeverTime
  next_abort_ += DrawExponential(abort_rng_, abort_rate_);
}

Result<FaultPlan> FaultPlan::Create(FaultPlanConfig config) {
  if (config.outage_rate < 0.0 || config.abort_rate < 0.0) {
    return Status::InvalidArgument("fault rates must be non-negative");
  }
  if (config.outage_rate > 0.0 && config.mean_outage_duration <= 0.0) {
    return Status::InvalidArgument(
        "mean_outage_duration must be positive when outages are enabled");
  }
  return FaultPlan(config);
}

FaultPlan FaultPlan::WithDerivedSeed(uint64_t stream) const {
  FaultPlan derived(*this);
  derived.config_.seed = DeriveSeed(config_.seed, stream, 0);
  return derived;
}

}  // namespace webtx
