#include "sim/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace webtx {

namespace {

// Stream tags chained into DeriveSeed so a server's outage, abort,
// crash, and correlated-failure processes are independent of each other
// and of every other server's.
constexpr uint64_t kOutageStream = 0;
constexpr uint64_t kAbortStream = 1;
constexpr uint64_t kCrashStream = 2;
constexpr uint64_t kCorrelatedStream = 3;

// Inverse-CDF exponential draw; strictly positive (NextDouble < 1).
double DrawExponential(Rng& rng, double rate) {
  return -std::log(1.0 - rng.NextDouble()) / rate;
}

// Extracts `server`'s window ordinals from a plan-wide suppression list
// (EncodeFaultOrdinal keys), sorted for the binary search in the draw
// helpers.
std::vector<uint32_t> OrdinalsFor(const std::vector<uint64_t>& keys,
                                  uint32_t server) {
  std::vector<uint32_t> ordinals;
  for (const uint64_t key : keys) {
    if (FaultOrdinalServer(key) == server) {
      ordinals.push_back(FaultOrdinalIndex(key));
    }
  }
  std::sort(ordinals.begin(), ordinals.end());
  return ordinals;
}

bool IsSuppressed(const std::vector<uint32_t>& ordinals, uint32_t ordinal) {
  return std::binary_search(ordinals.begin(), ordinals.end(), ordinal);
}

}  // namespace

const char* MigrationPolicyName(MigrationPolicy policy) {
  switch (policy) {
    case MigrationPolicy::kWarm:
      return "warm";
    case MigrationPolicy::kCold:
      return "cold";
  }
  WEBTX_CHECK(false) << "unknown MigrationPolicy "
                     << static_cast<unsigned>(policy);
  return "?";
}

FaultStream::FaultStream(const FaultPlanConfig& config, uint32_t server)
    : suppressed_outage_ordinals_(
          OrdinalsFor(config.suppressed_outages, server)),
      suppressed_crash_ordinals_(
          OrdinalsFor(config.suppressed_crashes, server)),
      outage_rate_(config.outage_rate),
      mean_outage_duration_(config.mean_outage_duration),
      abort_rate_(config.abort_rate),
      crash_rate_(config.crash_rate),
      mean_repair_duration_(config.mean_repair_duration),
      correlated_crash_prob_(config.correlated_crash_prob),
      outage_rng_(DeriveSeed(config.seed, server, kOutageStream)),
      abort_rng_(DeriveSeed(config.seed, server, kAbortStream)),
      crash_rng_(DeriveSeed(config.seed, server, kCrashStream)),
      correlated_rng_(DeriveSeed(config.seed, server, kCorrelatedStream)) {
  if (outage_rate_ > 0.0) {
    DrawOutageWindow(0.0);
  } else {
    outage_start_ = kNeverTime;
    outage_end_ = kNeverTime;
  }
  next_abort_ = abort_rate_ > 0.0 ? DrawExponential(abort_rng_, abort_rate_)
                                  : kNeverTime;
  if (crash_rate_ > 0.0) {
    DrawCrashWindow(0.0);
  } else {
    crash_start_ = kNeverTime;
    crash_end_ = kNeverTime;
  }
}

void FaultStream::DrawOutageWindow(SimTime after) {
  for (;;) {
    outage_start_ = after + DrawExponential(outage_rng_, outage_rate_);
    outage_end_ =
        outage_start_ +
        DrawExponential(outage_rng_, 1.0 / mean_outage_duration_);
    if (!IsSuppressed(suppressed_outage_ordinals_, outage_ordinal_++)) break;
    // Suppressed window: drawn and discarded so the RNG consumption —
    // and with it every surviving window's time — is unchanged. The
    // next window is drawn past the phantom window's end, exactly
    // where it would have started anyway.
    after = outage_end_;
  }
}

void FaultStream::DrawCrashWindow(SimTime after) {
  for (;;) {
    crash_start_ = after + DrawExponential(crash_rng_, crash_rate_);
    crash_end_ = crash_start_ +
                 DrawExponential(crash_rng_, 1.0 / mean_repair_duration_);
    if (!IsSuppressed(suppressed_crash_ordinals_, crash_ordinal_++)) break;
    after = crash_end_;  // see DrawOutageWindow
  }
}

void FaultStream::AdvanceTransition() {
  if (!outage_down_) {
    outage_down_ = true;  // the window [outage_start_, outage_end_) begins
  } else {
    outage_down_ = false;
    DrawOutageWindow(outage_end_);
  }
}

void FaultStream::AdvanceAbort() {
  if (abort_rate_ <= 0.0) return;  // stays kNeverTime
  next_abort_ += DrawExponential(abort_rng_, abort_rate_);
}

bool FaultStream::AdvanceCrashTransition() {
  if (!crashed_) {
    // Natural crash instant: the pre-drawn window [crash_start_,
    // crash_end_) begins.
    crashed_ = true;
    repair_end_ = crash_end_;
    return true;
  }
  // Rejoin at repair_end_. Natural windows whose crash instant fell
  // inside the repair (possible when a forced crash extended it) are
  // thinned: a crash of an already-crashed server is a no-op, so those
  // windows are consumed and the next one is drawn past their end —
  // deterministically, since crash state is policy-independent.
  const SimTime rejoin = repair_end_;
  crashed_ = false;
  if (crash_rate_ > 0.0) {
    while (crash_start_ < rejoin) {
      DrawCrashWindow(crash_end_);
    }
  }
  return false;
}

void FaultStream::ForceCrash(SimTime now, SimTime repair_duration) {
  WEBTX_DCHECK(repair_duration > 0.0);
  if (crashed_) {
    // Overlapping correlated hit: the repair window only ever extends.
    if (now + repair_duration > repair_end_) {
      repair_end_ = now + repair_duration;
    }
    return;
  }
  crashed_ = true;
  repair_end_ = now + repair_duration;
}

bool FaultStream::DrawCorrelatedVictim(SimTime* repair_duration) {
  // Consumed once per other server per natural crash instant, in a
  // fixed order (see header), so the stream stays policy-independent.
  if (correlated_rng_.NextDouble() >= correlated_crash_prob_) return false;
  *repair_duration =
      DrawExponential(correlated_rng_, 1.0 / mean_repair_duration_);
  return true;
}

Result<FaultPlan> FaultPlan::Create(FaultPlanConfig config) {
  if (config.outage_rate < 0.0 || config.abort_rate < 0.0 ||
      config.crash_rate < 0.0) {
    return Status::InvalidArgument("fault rates must be non-negative");
  }
  if (config.outage_rate > 0.0 && config.mean_outage_duration <= 0.0) {
    return Status::InvalidArgument(
        "mean_outage_duration must be positive when outages are enabled");
  }
  if (config.crash_rate > 0.0 && config.mean_repair_duration <= 0.0) {
    return Status::InvalidArgument(
        "mean_repair_duration must be positive when crashes are enabled");
  }
  if (config.correlated_crash_prob < 0.0 ||
      config.correlated_crash_prob > 1.0) {
    return Status::InvalidArgument(
        "correlated_crash_prob must be in [0, 1]");
  }
  if (config.correlated_crash_prob > 0.0 && config.crash_rate <= 0.0) {
    return Status::InvalidArgument(
        "correlated_crash_prob requires crash_rate > 0");
  }
  return FaultPlan(config);
}

FaultPlan FaultPlan::WithDerivedSeed(uint64_t stream) const {
  FaultPlan derived(*this);
  derived.config_.seed = DeriveSeed(config_.seed, stream, 0);
  return derived;
}

}  // namespace webtx
