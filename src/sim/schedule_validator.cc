#include "sim/schedule_validator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

namespace webtx {

namespace {

std::string Describe(const ScheduleSegment& s) {
  return "T" + std::to_string(s.txn) + "@server" +
         std::to_string(s.server) + " [" + std::to_string(s.start) + ", " +
         std::to_string(s.end) + ")";
}

}  // namespace

Status ValidateSchedule(const std::vector<TransactionSpec>& specs,
                        const RunResult& result, size_t num_servers) {
  constexpr double kEps = 1e-6;
  if (result.outcomes.size() != specs.size()) {
    return Status::FailedPrecondition(
        "outcomes were not recorded; enable record_outcomes");
  }

  std::vector<std::vector<const ScheduleSegment*>> by_server(num_servers);
  std::map<TxnId, std::vector<const ScheduleSegment*>> by_txn;
  for (const ScheduleSegment& s : result.schedule) {
    if (s.server >= num_servers) {
      return Status::FailedPrecondition("segment on unknown server: " +
                                        Describe(s));
    }
    if (s.txn >= specs.size()) {
      return Status::FailedPrecondition("segment for unknown transaction: " +
                                        Describe(s));
    }
    if (s.end <= s.start) {
      return Status::FailedPrecondition("empty or negative segment: " +
                                        Describe(s));
    }
    if (s.start < specs[s.txn].arrival - kEps) {
      return Status::FailedPrecondition("runs before arrival: " +
                                        Describe(s));
    }
    by_server[s.server].push_back(&s);
    by_txn[s.txn].push_back(&s);
  }

  // 2. No overlap per server.
  for (auto& segments : by_server) {
    std::sort(segments.begin(), segments.end(),
              [](const ScheduleSegment* a, const ScheduleSegment* b) {
                return a->start < b->start;
              });
    for (size_t i = 1; i < segments.size(); ++i) {
      if (segments[i]->start < segments[i - 1]->end - kEps) {
        return Status::FailedPrecondition(
            "server overlap between " + Describe(*segments[i - 1]) +
            " and " + Describe(*segments[i]));
      }
    }
  }

  // 3-5. Per-transaction checks.
  for (size_t i = 0; i < specs.size(); ++i) {
    const auto id = static_cast<TxnId>(i);
    auto it = by_txn.find(id);
    if (it == by_txn.end()) {
      return Status::FailedPrecondition("T" + std::to_string(i) +
                                        " never executed");
    }
    auto& segments = it->second;
    std::sort(segments.begin(), segments.end(),
              [](const ScheduleSegment* a, const ScheduleSegment* b) {
                return a->start < b->start;
              });
    double executed = 0.0;
    for (size_t s = 0; s < segments.size(); ++s) {
      executed += segments[s]->end - segments[s]->start;
      if (s > 0 && segments[s]->start < segments[s - 1]->end - kEps) {
        return Status::FailedPrecondition(
            "T" + std::to_string(i) + " runs on two servers at once: " +
            Describe(*segments[s - 1]) + " and " + Describe(*segments[s]));
      }
    }
    if (std::fabs(executed - specs[i].length) > kEps) {
      return Status::FailedPrecondition(
          "T" + std::to_string(i) + " executed " + std::to_string(executed) +
          " != length " + std::to_string(specs[i].length));
    }
    if (std::fabs(segments.back()->end - result.outcomes[i].finish) > kEps) {
      return Status::FailedPrecondition(
          "T" + std::to_string(i) + " last segment ends at " +
          std::to_string(segments.back()->end) + " but finish is " +
          std::to_string(result.outcomes[i].finish));
    }
    // 6. Precedence.
    for (const TxnId dep : specs[i].dependencies) {
      if (segments.front()->start < result.outcomes[dep].finish - kEps) {
        return Status::FailedPrecondition(
            "T" + std::to_string(i) + " starts at " +
            std::to_string(segments.front()->start) + " before T" +
            std::to_string(dep) + " finishes at " +
            std::to_string(result.outcomes[dep].finish));
      }
    }
  }
  return Status::OK();
}

}  // namespace webtx
