#include "sim/schedule_validator.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

namespace webtx {

namespace {

std::string Describe(const ScheduleSegment& s) {
  return "T" + std::to_string(s.txn) + "@server" +
         std::to_string(s.server) + " [" + std::to_string(s.start) + ", " +
         std::to_string(s.end) + ") attempt " + std::to_string(s.attempt);
}

std::string Describe(const char* kind, const OutageWindow& w) {
  return std::string(kind) + "@server" + std::to_string(w.server) + " [" +
         std::to_string(w.start) + ", " + std::to_string(w.end) + ")";
}

std::string At(SimTime t) { return " at t=" + std::to_string(t); }

// Shared counter-mismatch diagnostic: names the counter and both values.
Status CounterMismatch(const char* counter, size_t in_result,
                       size_t from_outcomes) {
  return Status::FailedPrecondition(
      "RunResult." + std::string(counter) + " is " +
      std::to_string(in_result) + " but the recorded outcomes sum to " +
      std::to_string(from_outcomes));
}

}  // namespace

Status ValidateSchedule(const std::vector<TransactionSpec>& specs,
                        const RunResult& result,
                        const ValidationOptions& options) {
  constexpr double kEps = 1e-6;
  const size_t num_servers = options.num_servers;
  const bool cold = options.migration == MigrationPolicy::kCold;
  if (result.outcomes.size() != specs.size()) {
    return Status::FailedPrecondition(
        "outcomes were not recorded; enable record_outcomes");
  }

  std::vector<std::vector<const ScheduleSegment*>> by_server(num_servers);
  std::map<TxnId, std::vector<const ScheduleSegment*>> by_txn;
  for (const ScheduleSegment& s : result.schedule) {
    if (s.server >= num_servers) {
      return Status::FailedPrecondition("segment on unknown server: " +
                                        Describe(s));
    }
    if (s.txn >= specs.size()) {
      return Status::FailedPrecondition("segment for unknown transaction: " +
                                        Describe(s));
    }
    if (s.end <= s.start) {
      return Status::FailedPrecondition("empty or negative segment: " +
                                        Describe(s));
    }
    if (s.start < specs[s.txn].arrival - kEps) {
      return Status::FailedPrecondition(
          "runs before its arrival" + At(specs[s.txn].arrival) + ": " +
          Describe(s));
    }
    // 7. A down (outage) or crashed (awaiting repair) server executes
    // nothing.
    for (const OutageWindow& w : options.outages) {
      if (w.server != s.server) continue;
      if (s.start < w.end - kEps && s.end > w.start + kEps) {
        return Status::FailedPrecondition(
            "executes during " + Describe("outage", w) + ": " + Describe(s));
      }
    }
    for (const OutageWindow& w : options.crashes) {
      if (w.server != s.server) continue;
      if (s.start < w.end - kEps && s.end > w.start + kEps) {
        return Status::FailedPrecondition(
            "executes on crashed server during " + Describe("repair", w) +
            ": " + Describe(s));
      }
    }
    by_server[s.server].push_back(&s);
    by_txn[s.txn].push_back(&s);
  }

  // 2. No overlap per server.
  for (auto& segments : by_server) {
    std::sort(segments.begin(), segments.end(),
              [](const ScheduleSegment* a, const ScheduleSegment* b) {
                return a->start < b->start;
              });
    for (size_t i = 1; i < segments.size(); ++i) {
      if (segments[i]->start < segments[i - 1]->end - kEps) {
        return Status::FailedPrecondition(
            "server overlap between " + Describe(*segments[i - 1]) +
            " and " + Describe(*segments[i]));
      }
    }
  }

  // 3-6, 8. Per-transaction checks.
  size_t completed = 0;
  size_t shed = 0;
  size_t dropped_retries = 0;
  size_t dropped_dependency = 0;
  size_t migrations = 0;
  for (size_t i = 0; i < specs.size(); ++i) {
    const auto id = static_cast<TxnId>(i);
    const TxnOutcome& o = result.outcomes[i];
    switch (o.fate) {
      case TxnFate::kCompleted:
        ++completed;
        break;
      case TxnFate::kShedAdmission:
        ++shed;
        break;
      case TxnFate::kDroppedRetries:
        ++dropped_retries;
        break;
      case TxnFate::kDroppedDependency:
        ++dropped_dependency;
        break;
    }
    migrations += o.migrations;
    const bool is_completed = o.fate == TxnFate::kCompleted;
    if (!is_completed && !o.missed_deadline) {
      return Status::FailedPrecondition(
          "T" + std::to_string(i) + " was " + TxnFateName(o.fate) +
          At(o.finish) + " but not counted as a deadline miss");
    }
    // Work-discarding events start new attempts: aborts always, and
    // migrations exactly when the run used cold failover — warm
    // failover conserves the work, so a warm migration bumping the
    // attempt would silently discard it.
    const uint32_t max_attempt = o.aborts + (cold ? o.migrations : 0);
    // 6a. Fate consistency along dependency edges: a transaction whose
    // dependency never completed must itself be dropped as a dependent.
    for (const TxnId dep : specs[i].dependencies) {
      if (result.outcomes[dep].fate != TxnFate::kCompleted &&
          o.fate != TxnFate::kDroppedDependency) {
        return Status::FailedPrecondition(
            "T" + std::to_string(i) + " has fate " + TxnFateName(o.fate) +
            At(o.finish) + " although dependency T" + std::to_string(dep) +
            " was " + TxnFateName(result.outcomes[dep].fate) +
            At(result.outcomes[dep].finish));
      }
    }
    auto it = by_txn.find(id);
    if (it == by_txn.end()) {
      if (is_completed) {
        return Status::FailedPrecondition(
            "T" + std::to_string(i) + " completed" + At(o.finish) +
            " but never executed");
      }
      continue;  // shed/dropped before ever being dispatched
    }
    auto& segments = it->second;
    std::sort(segments.begin(), segments.end(),
              [](const ScheduleSegment* a, const ScheduleSegment* b) {
                return a->start < b->start;
              });
    double final_attempt_work = 0.0;
    for (size_t s = 0; s < segments.size(); ++s) {
      if (s > 0 && segments[s]->start < segments[s - 1]->end - kEps) {
        return Status::FailedPrecondition(
            "T" + std::to_string(i) + " runs on two servers at once: " +
            Describe(*segments[s - 1]) + " and " + Describe(*segments[s]));
      }
      if (s > 0 && segments[s]->attempt < segments[s - 1]->attempt) {
        return Status::FailedPrecondition(
            "T" + std::to_string(i) + " attempt numbers go backwards: " +
            Describe(*segments[s - 1]) + " then " + Describe(*segments[s]));
      }
      if (segments[s]->attempt > max_attempt) {
        return Status::FailedPrecondition(
            "T" + std::to_string(i) + " segment of attempt " +
            std::to_string(segments[s]->attempt) + " (" +
            Describe(*segments[s]) + ") but only " +
            std::to_string(o.aborts) + " aborts and " +
            std::to_string(o.migrations) + " migrations (" +
            (cold ? "cold" : "warm") + " failover) recorded");
      }
      // 5. Only the final attempt's work counts toward completion;
      // earlier attempts were discarded by an abort or cold migration.
      if (segments[s]->attempt == max_attempt) {
        final_attempt_work += segments[s]->end - segments[s]->start;
      }
    }
    if (is_completed) {
      if (std::fabs(final_attempt_work - specs[i].length) > kEps) {
        return Status::FailedPrecondition(
            "T" + std::to_string(i) + " final attempt executed " +
            std::to_string(final_attempt_work) + " != length " +
            std::to_string(specs[i].length) + " (finish" + At(o.finish) +
            ", " + std::to_string(o.aborts) + " aborts, " +
            std::to_string(o.migrations) + " migrations, " +
            (cold ? "cold" : "warm") + " failover)");
      }
      if (std::fabs(segments.back()->end - o.finish) > kEps) {
        return Status::FailedPrecondition(
            "T" + std::to_string(i) + " last segment ends" +
            At(segments.back()->end) + " (" + Describe(*segments.back()) +
            ") but finish is" + At(o.finish));
      }
    } else {
      // A non-completed transaction must not have absorbed a full
      // attempt's worth of counted work.
      if (final_attempt_work > specs[i].length + kEps) {
        return Status::FailedPrecondition(
            "T" + std::to_string(i) + " was " + TxnFateName(o.fate) +
            At(o.finish) + " yet executed " +
            std::to_string(final_attempt_work) + " > length " +
            std::to_string(specs[i].length));
      }
    }
    // 6b. Precedence: starts only after every dependency's finish.
    for (const TxnId dep : specs[i].dependencies) {
      const TxnOutcome& od = result.outcomes[dep];
      if (od.fate != TxnFate::kCompleted) {
        // A dependent only becomes ready once the dependency completes,
        // so it can never have executed at all.
        return Status::FailedPrecondition(
            "T" + std::to_string(i) + " executed (" +
            Describe(*segments.front()) + ") although dependency T" +
            std::to_string(dep) + " never completed (" +
            TxnFateName(od.fate) + At(od.finish) + ")");
      }
      if (segments.front()->start < od.finish - kEps) {
        return Status::FailedPrecondition(
            "T" + std::to_string(i) + " starts" +
            At(segments.front()->start) + " (" +
            Describe(*segments.front()) + ") before T" +
            std::to_string(dep) + " finishes" + At(od.finish));
      }
    }
  }

  // 8. Per-fate and per-event counters partition the workload and match
  // the outcomes.
  if (result.num_completed != completed) {
    return CounterMismatch("num_completed", result.num_completed, completed);
  }
  if (result.num_shed != shed) {
    return CounterMismatch("num_shed", result.num_shed, shed);
  }
  if (result.num_dropped_retries != dropped_retries) {
    return CounterMismatch("num_dropped_retries", result.num_dropped_retries,
                           dropped_retries);
  }
  if (result.num_dropped_dependency != dropped_dependency) {
    return CounterMismatch("num_dropped_dependency",
                           result.num_dropped_dependency, dropped_dependency);
  }
  if (result.num_migrations != migrations) {
    return CounterMismatch("num_migrations", result.num_migrations,
                           migrations);
  }
  if (result.num_crashes != options.crashes.size()) {
    return CounterMismatch("num_crashes", result.num_crashes,
                           options.crashes.size());
  }
  if (completed + shed + dropped_retries + dropped_dependency !=
      specs.size()) {
    return Status::FailedPrecondition(
        "fate counts do not partition the workload: " +
        std::to_string(completed) + " completed + " + std::to_string(shed) +
        " shed + " + std::to_string(dropped_retries) + " dropped-retries + " +
        std::to_string(dropped_dependency) + " dropped-dependency != " +
        std::to_string(specs.size()));
  }
  return Status::OK();
}

Status ValidateSchedule(const std::vector<TransactionSpec>& specs,
                        const RunResult& result, size_t num_servers) {
  ValidationOptions options;
  options.num_servers = num_servers;
  return ValidateSchedule(specs, result, options);
}

}  // namespace webtx
