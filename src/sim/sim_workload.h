#ifndef WEBTX_SIM_SIM_WORKLOAD_H_
#define WEBTX_SIM_SIM_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "sim/txn_store.h"
#include "txn/dependency_graph.h"
#include "txn/transaction.h"
#include "txn/workflow.h"

namespace webtx {

/// Memory layout for the per-transaction static data the event loop
/// reads (arrival/length/estimate/deadline/weight, dependency edges).
/// Accessors return identical values either way, so the knob can never
/// change results (same differential pins as PendingQueueImpl).
enum class TxnStoreLayout : uint8_t {
  /// Read the TransactionSpec vector directly (the historical layout).
  kSpecVector = 0,
  /// Arena-backed structure-of-arrays mirror (sim/txn_store.h): dense
  /// field arrays + CSR successor edges, built once at Create.
  kArenaSoA = 1,
};

/// The validated, immutable-per-run workload state a Simulator executes
/// against: the specs plus every structure derived from them (dependency
/// graph, workflow decomposition, optional SoA mirror, arrival order).
///
/// Factored out of the Simulator so several simulators can SHARE one
/// workload without copying it (Simulator::CreateShared) — the digital
/// twin builds one forecast workload per control tick and points every
/// candidate's pooled shadow sim at it — and so the whole bundle can be
/// warm-`Rebuild`ed in place each tick, reusing all derived-structure
/// storage from the previous build (zero steady-state allocations for
/// equal-or-smaller spec sets with no dependencies).
///
/// Thread safety: const access is safe from any number of threads (the
/// parallel forecast fan-out reads one workload from all candidate
/// sims); `Rebuild` must be externally quiesced.
class SimWorkload {
 public:
  SimWorkload() = default;

  /// Validates the specs (dense ids, acyclic dependencies, positive
  /// lengths, non-negative arrivals) and builds the derived structures.
  static Result<SimWorkload> Build(
      std::vector<TransactionSpec> txns,
      TxnStoreLayout layout = TxnStoreLayout::kSpecVector);

  /// Rebuilds this workload in place from a new spec set, reusing all
  /// derived-structure storage. `txns` is swapped into place: on return
  /// it holds the PREVIOUS build's spec storage (cleared content,
  /// retained capacity), so a caller ping-ponging one staging buffer
  /// through Rebuild every tick allocates nothing in steady state. On
  /// error the workload is left in an unspecified state and must be
  /// rebuilt before use.
  Status Rebuild(std::vector<TransactionSpec>& txns, TxnStoreLayout layout);

  size_t size() const { return specs_.size(); }
  const std::vector<TransactionSpec>& specs() const { return specs_; }
  const DependencyGraph& graph() const { return graph_; }
  const WorkflowRegistry& workflows() const { return registry_; }
  /// SoA mirror of specs + graph; inert (enabled() false) unless built
  /// with TxnStoreLayout::kArenaSoA.
  const TxnStore& store() const { return store_; }
  /// Transaction ids sorted by (arrival, id).
  const std::vector<TxnId>& arrival_order() const { return arrival_order_; }

 private:
  std::vector<TransactionSpec> specs_;
  DependencyGraph graph_;
  WorkflowRegistry registry_;
  TxnStore store_;
  std::vector<TxnId> arrival_order_;
};

}  // namespace webtx

#endif  // WEBTX_SIM_SIM_WORKLOAD_H_
