#include "sim/simulator.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <string>
#include <utility>

#include "common/calendar_queue.h"

namespace webtx {

namespace {
constexpr size_t kNoReadyPos = std::numeric_limits<size_t>::max();
constexpr SimTime kNever = std::numeric_limits<SimTime>::infinity();
// Floor for the policy-visible remaining time of a transaction that
// overran its estimate; keeps priority keys (r, r/w, d - r) sane.
constexpr SimTime kMinEstimatedRemaining = 1e-6;

// Binary min-heap of pending retry releases / deferred arrivals over a
// reserved vector (std::priority_queue hides its container, so it cannot
// be pre-reserved). Ordering contract lives in internal::PendingAfter.
class PendingQueue {
 public:
  void Reserve(size_t n) { heap_.reserve(n); }
  void clear() { heap_.clear(); }
  bool empty() const { return heap_.empty(); }
  const internal::PendingEvent& top() const { return heap_.front(); }
  void push(const internal::PendingEvent& e) {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), internal::PendingAfter{});
  }
  void pop() {
    std::pop_heap(heap_.begin(), heap_.end(), internal::PendingAfter{});
    heap_.pop_back();
  }

 private:
  std::vector<internal::PendingEvent> heap_;
};

// CalendarQueue ordering traits for pending events: Before is the
// strict (time, kind, id) ascending order — the exact complement view
// of the PendingAfter max-heap comparator, so both structures pop the
// same sequence (pinned by tests/sim/shard_event_order_test.cc and the
// huge-structures differential matrix).
struct PendingTraits {
  static double TimeOf(const internal::PendingEvent& e) { return e.time; }
  static bool Before(const internal::PendingEvent& a,
                     const internal::PendingEvent& b) {
    return internal::PendingAfter{}(b, a);
  }
};

// The pending queue behind SimOptions::pending_queue: the historical
// binary heap or the calendar queue, one interface. The branch is a
// predictable single bool — noise next to the heap/bucket work behind
// it.
class PendingEvents {
 public:
  PendingEvents() = default;
  explicit PendingEvents(PendingQueueImpl impl)
      : calendar_(impl == PendingQueueImpl::kCalendarQueue) {}

  /// Re-targets the wrapper at `impl` and empties both structures
  /// (allocated storage retained) — the per-run warm reset. A run can
  /// end with stale entries for transactions that resolved another way,
  /// so clearing here is what makes cross-run reuse safe.
  void Configure(PendingQueueImpl impl) {
    calendar_ = impl == PendingQueueImpl::kCalendarQueue;
    heap_.clear();
    wheel_.clear();
  }

  void Reserve(size_t n) {
    if (calendar_) {
      wheel_.Reserve(n);
    } else {
      heap_.Reserve(n);
    }
  }
  bool empty() const { return calendar_ ? wheel_.empty() : heap_.empty(); }
  internal::PendingEvent top() {
    return calendar_ ? wheel_.top() : heap_.top();
  }
  void push(const internal::PendingEvent& e) {
    if (calendar_) {
      wheel_.push(e);
    } else {
      heap_.push(e);
    }
  }
  void pop() {
    if (calendar_) {
      wheel_.pop();
    } else {
      heap_.pop();
    }
  }

 private:
  bool calendar_ = false;
  PendingQueue heap_;
  CalendarQueue<internal::PendingEvent, PendingTraits> wheel_;
};

// One shard's view of its fault processes: either the lazy FaultStream
// (correlated mode, or serial runs) or the buffered FaultTimeline
// (uncorrelated runs with shard workers) — byte-identical event sources
// by FaultTimeline's replay construction.
struct FaultSource {
  FaultStream* stream = nullptr;
  FaultTimeline* timeline = nullptr;

  bool down() const { return stream ? stream->down() : timeline->down(); }
  SimTime next_transition() const {
    return stream ? stream->next_transition() : timeline->next_transition();
  }
  SimTime outage_end() const {
    return stream ? stream->outage_end() : timeline->outage_end();
  }
  void AdvanceTransition() {
    if (stream) {
      stream->AdvanceTransition();
    } else {
      timeline->AdvanceTransition();
    }
  }
  SimTime next_abort() const {
    return stream ? stream->next_abort() : timeline->next_abort();
  }
  void AdvanceAbort() {
    if (stream) {
      stream->AdvanceAbort();
    } else {
      timeline->AdvanceAbort();
    }
  }
  bool crashed() const {
    return stream ? stream->crashed() : timeline->crashed();
  }
  SimTime next_crash_transition() const {
    return stream ? stream->next_crash_transition()
                  : timeline->next_crash_transition();
  }
  SimTime repair_end() const {
    return stream ? stream->repair_end() : timeline->repair_end();
  }
  void AdvanceCrashTransition() {
    if (stream) {
      stream->AdvanceCrashTransition();
    } else {
      timeline->AdvanceCrashTransition();
    }
  }
};
}  // namespace

/// Everything Run() used to stack-allocate per call, hoisted into a
/// lazily built, warm-reused arena: a pooled simulator (the twin keeps
/// one per candidate slot) re-runs every control tick with zero
/// steady-state allocations. Each field is re-initialized at the top of
/// Run to exactly the value its former local had, so results are
/// byte-identical to the per-call layout.
struct Simulator::RunScratch {
  std::vector<TxnOutcome> outcomes;
  std::vector<FaultStream> fault_streams;
  std::vector<FaultSource> sources;
  std::vector<SimTime> fault_time;
  std::vector<internal::ShardEventClass> fault_cls;
  std::vector<char> down;
  std::vector<TxnId> running;
  std::vector<SimTime> dispatch_time;
  std::vector<SimTime> segment_start;
  std::vector<ScheduleSegment> schedule;
  PendingEvents pending;
  std::vector<TxnId> picks;
  std::vector<TxnId> next_running;
  std::vector<char> pick_taken;
  std::vector<std::pair<TxnId, TxnFate>> resolve_stack;
  std::vector<internal::ShardMessage> mailbox;
  std::vector<uint64_t> pick_stamp;
  std::vector<uint64_t> placed_stamp;
  std::vector<uint32_t> pick_slot;
  std::vector<OutageWindow> outages;
  std::vector<OutageWindow> crashes;
};

Result<Simulator> Simulator::Create(std::vector<TransactionSpec> txns,
                                    SimOptions options) {
  WEBTX_ASSIGN_OR_RETURN(
      SimWorkload workload,
      SimWorkload::Build(std::move(txns), options.txn_store));
  return CreateShared(
      std::make_shared<const SimWorkload>(std::move(workload)),
      std::move(options));
}

Result<Simulator> Simulator::CreateShared(
    std::shared_ptr<const SimWorkload> workload, SimOptions options) {
  if (workload == nullptr) {
    return Status::InvalidArgument("workload must be non-null");
  }
  if (options.retry.max_attempts < 1) {
    return Status::InvalidArgument("retry.max_attempts must be >= 1");
  }
  if (options.retry.backoff < 0.0 || options.retry.backoff_multiplier < 0.0 ||
      options.retry.max_backoff < 0.0) {
    return Status::InvalidArgument("retry backoff must be non-negative");
  }
  return Simulator(std::move(workload), std::move(options));
}

Simulator::Simulator(std::shared_ptr<const SimWorkload> workload,
                     SimOptions options)
    : workload_(std::move(workload)), options_(std::move(options)) {
  // Size all per-transaction runtime state once, here, so Run() and
  // ResetRuntimeState() only ever rewrite in place — the warm-up
  // allocation spike is paid at construction, not in the measured run.
  const size_t n = workload_->size();
  true_remaining_.resize(n);
  estimated_remaining_.resize(n);
  arrived_.resize(n);
  finished_.resize(n);
  suspended_.resize(n);
  unmet_deps_.resize(n);
  ready_list_.reserve(n);
  ready_pos_.resize(n);
}

Simulator::Simulator(Simulator&&) noexcept = default;
Simulator& Simulator::operator=(Simulator&&) noexcept = default;
Simulator::~Simulator() = default;

void Simulator::BindWorkload(std::shared_ptr<const SimWorkload> workload) {
  WEBTX_CHECK(workload != nullptr);
  workload_ = std::move(workload);
}

void Simulator::ResetRuntimeState() {
  const std::vector<TransactionSpec>& specs = workload_->specs();
  const TxnStore& store = workload_->store();
  const size_t n = specs.size();
  // The bound workload may have changed size since the last run
  // (BindWorkload): the indexed loops below need current extents. For a
  // stable or shrinking workload these are no-ops.
  true_remaining_.resize(n);
  estimated_remaining_.resize(n);
  unmet_deps_.resize(n);
  if (ready_list_.capacity() < n) ready_list_.reserve(n);
  arrived_.assign(n, 0);
  finished_.assign(n, 0);
  suspended_.assign(n, 0);
  ready_list_.clear();
  ready_pos_.assign(n, kNoReadyPos);
  if (store.enabled()) {
    // Dense-array pass: 3 contiguous reads per transaction instead of a
    // full AoS cache line — the values are bit-identical copies.
    for (size_t i = 0; i < n; ++i) {
      true_remaining_[i] = store.length(i);
      estimated_remaining_[i] = store.estimate_or_length(i);
      unmet_deps_[i] = store.num_deps(i);
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      true_remaining_[i] = specs[i].length;
      estimated_remaining_[i] = specs[i].EstimateOrLength();
      unmet_deps_[i] = static_cast<uint32_t>(specs[i].dependencies.size());
    }
  }
}

void Simulator::ReadyListAdd(TxnId id) {
  WEBTX_DCHECK(ready_pos_[id] == kNoReadyPos);
  ready_pos_[id] = ready_list_.size();
  ready_list_.push_back(id);
}

void Simulator::ReadyListRemove(TxnId id) {
  const size_t pos = ready_pos_[id];
  WEBTX_DCHECK(pos != kNoReadyPos);
  const TxnId moved = ready_list_.back();
  ready_list_[pos] = moved;
  ready_pos_[moved] = pos;
  ready_list_.pop_back();
  ready_pos_[id] = kNoReadyPos;
}

void Simulator::MakeReady(TxnId id, SimTime now, SchedulerPolicy& policy) {
  ReadyListAdd(id);
  policy.OnReady(id, now);
}

RunResult Simulator::Run(SchedulerPolicy& policy) {
  ResetRuntimeState();
  policy.Bind(*this);
  WEBTX_CHECK_GE(options_.num_servers, 1u);
  // Sharded-state policies partition their ready set one shard per
  // server and get the ShardedPolicyState protocol driven below
  // (PrepareRound before each multi-server round, OnPlaced per newly
  // dispatched transaction in ascending server order). Results are
  // byte-identical to global-state policies by the (key, id) pop-order
  // argument in sched/scheduler_policy.h.
  ShardedPolicyState* const sharded = policy.AsShardedState();
  if (sharded != nullptr) {
    sharded->BindShards(static_cast<uint32_t>(options_.num_servers));
  }

  std::unique_ptr<AdmissionController> admission;
  if (options_.admission) {
    admission = options_.admission();
    admission->Bind(*this);
  }

  const std::vector<TransactionSpec>& specs = workload_->specs();
  const DependencyGraph& graph = workload_->graph();
  const std::vector<TxnId>& arrival_order = workload_->arrival_order();
  const size_t n = specs.size();
  const size_t k = options_.num_servers;
  // All per-run buffers live in the warm-reused scratch arena; each is
  // re-initialized here to exactly the value its former per-call local
  // had (the references keep the event loop below textually unchanged).
  if (!scratch_) scratch_ = std::make_unique<RunScratch>();
  RunScratch& sc = *scratch_;
  std::vector<TxnOutcome>& outcomes = sc.outcomes;
  outcomes.assign(n, TxnOutcome{});

  const bool faults = options_.fault_plan.enabled();
  // Policies whose keys ignore remaining time never react to
  // OnRemainingUpdated; hoisting the predicate skips up to k no-op
  // virtual calls per scheduling point.
  const bool wants_remaining = policy.WantsRemainingUpdates();
  const SimTime run_horizon = options_.run_horizon;
  bool horizon_cut = false;
  const bool correlated =
      options_.fault_plan.config().correlated_crash_prob > 0.0;
  // Resolve the shard-worker count. Buffered (pregenerated) fault
  // timelines engage only on uncorrelated faulty runs with workers to
  // hide the generation behind: a correlated crash process is mutated
  // mid-run by ForceCrash fan-in and must stay a lazy stream. Results
  // are byte-identical either way.
  const size_t shard_threads = options_.shard_threads == 0
                                   ? ThreadPool::DefaultConcurrency()
                                   : options_.shard_threads;
  const bool buffered = faults && !correlated && shard_threads > 1;
  // A sharded-state policy can fan its per-shard round maintenance out
  // on the same pool (PrepareRound); both uses are barriered inside one
  // event, so sharing the workers is safe.
  const bool policy_parallel = sharded != nullptr && shard_threads > 1 && k > 1;
  ThreadPool* pool = nullptr;
  if (buffered || policy_parallel) {
    // One in-flight prefetch per fault process per shard is the most
    // the timelines can keep busy.
    const size_t pool_size = std::min(shard_threads, 3 * k);
    if (!shard_pool_ || shard_pool_->size() != pool_size) {
      shard_pool_ = std::make_unique<ThreadPool>(pool_size);
    }
    pool = shard_pool_.get();
  }

  // Each server shard consumes its fault processes through a FaultSource
  // backed by either a lazy stream or a buffered timeline.
  std::vector<FaultStream>& fault_streams = sc.fault_streams;
  fault_streams.clear();
  std::vector<FaultSource>& sources = sc.sources;
  sources.assign(k, FaultSource{});
  if (faults) {
    if (buffered) {
      if (timelines_.size() < k) timelines_.resize(k);
      for (size_t s = 0; s < k; ++s) {
        timelines_[s].Begin(options_.fault_plan.config(),
                            static_cast<uint32_t>(s), pool);
        sources[s].timeline = &timelines_[s];
      }
    } else {
      fault_streams.reserve(k);
      for (size_t s = 0; s < k; ++s) {
        fault_streams.push_back(
            options_.fault_plan.StreamFor(static_cast<uint32_t>(s)));
      }
      for (size_t s = 0; s < k; ++s) {
        sources[s].stream = &fault_streams[s];
      }
    }
  }

  // The head fault event of each shard: the EventBefore-least of its
  // outage, crash, and abort processes. O(1) to refresh when one of the
  // shard's processes advances — the pre-shard simulator instead
  // rescanned every stream per fault type on every fault event
  // (tests/testing/reference_simulator.h).
  std::vector<SimTime>& fault_time = sc.fault_time;
  fault_time.assign(k, kNever);
  std::vector<internal::ShardEventClass>& fault_cls = sc.fault_cls;
  fault_cls.assign(k, internal::ShardEventClass::kOutage);
  const auto refresh_fault_head = [&](size_t s) {
    const FaultSource& src = sources[s];
    SimTime t = src.next_transition();
    internal::ShardEventClass cls = internal::ShardEventClass::kOutage;
    const SimTime tc = src.next_crash_transition();
    if (tc < t) {
      t = tc;
      cls = internal::ShardEventClass::kCrash;
    }
    const SimTime ta = src.next_abort();
    if (ta < t) {
      t = ta;
      cls = internal::ShardEventClass::kAbort;
    }
    fault_time[s] = t;
    fault_cls[s] = cls;
  };
  // Schedulable-pool size exposed to admission controllers via
  // num_servers_up(), maintained incrementally from the shards' down
  // bits (the pre-shard simulator recounted all k streams per fault
  // event).
  num_up_ = k;
  std::vector<char>& down = sc.down;
  down.assign(k, 0);
  const auto sync_down = [&](size_t s) {
    const char d = sources[s].down() ? 1 : 0;
    if (d != down[s]) {
      down[s] = d;
      if (d) {
        --num_up_;
      } else {
        ++num_up_;
      }
    }
  };
  if (faults) {
    for (size_t s = 0; s < k; ++s) {
      refresh_fault_head(s);
    }
  }

  size_t next_arrival = 0;
  size_t resolved_count = 0;  // completed + shed + dropped
  std::vector<TxnId>& running = sc.running;
  running.assign(k, kInvalidTxn);
  std::vector<SimTime>& dispatch_time = sc.dispatch_time;
  dispatch_time.assign(k, 0.0);
  std::vector<SimTime>& segment_start = sc.segment_start;
  segment_start.assign(k, 0.0);
  std::vector<ScheduleSegment>& schedule = sc.schedule;
  schedule.clear();
  if (options_.record_schedule) schedule.reserve(2 * n);
  PendingEvents& pending = sc.pending;
  pending.Configure(options_.pending_queue);
  // At most one pending entry per unresolved transaction exists at any
  // instant, and only abort retries or admission deferrals create them.
  if (faults || admission) pending.Reserve(n);
  // Static per-transaction reads, routed through the SoA store when
  // enabled. The store mirrors the spec values bit-for-bit, so the two
  // branches are indistinguishable in results.
  const TxnStore* const store =
      workload_->store().enabled() ? &workload_->store() : nullptr;
  const auto spec_arrival = [&](TxnId id) {
    return store ? store->arrival(id) : specs[id].arrival;
  };
  const auto spec_deadline = [&](TxnId id) {
    return store ? store->deadline(id) : specs[id].deadline;
  };
  const auto spec_weight = [&](TxnId id) {
    return store ? store->weight(id) : specs[id].weight;
  };
  const auto spec_length = [&](TxnId id) {
    return store ? store->length(id) : specs[id].length;
  };
  const auto spec_estimate = [&](TxnId id) {
    return store ? store->estimate_or_length(id)
                 : specs[id].EstimateOrLength();
  };
  const auto successors_of =
      [&](TxnId id) -> std::pair<const TxnId*, const TxnId*> {
    if (store) return store->successors(id);
    const std::vector<TxnId>& succ = graph.successors(id);
    return {succ.data(), succ.data() + succ.size()};
  };
  // Scratch buffers for the per-event scheduling round, hoisted out of
  // the loop so the steady-state iteration performs no allocation.
  std::vector<TxnId>& picks = sc.picks;
  picks.clear();
  picks.reserve(k);
  std::vector<TxnId>& next_running = sc.next_running;
  next_running.assign(k, kInvalidTxn);
  std::vector<char>& pick_taken = sc.pick_taken;
  pick_taken.clear();
  pick_taken.reserve(k);
  std::vector<std::pair<TxnId, TxnFate>>& resolve_stack = sc.resolve_stack;
  resolve_stack.clear();
  resolve_stack.reserve(n);
  // Cross-shard mailbox: the handoffs of one crash instant (the
  // crashing shard's own migration back into the global ready set, then
  // correlated victims), drained in MessageBefore (time, origin, seq)
  // order — by construction the enqueue order, DCHECKed at drain.
  std::vector<internal::ShardMessage>& mailbox = sc.mailbox;
  mailbox.clear();
  mailbox.reserve(k);
  // Epoch-stamped pick-assignment lookup: a stamp equal to the current
  // scheduling round marks "picked this round" / "placed this round"
  // without any clearing between rounds. Replaces the pre-shard O(k^2)
  // std::find matching of picks to servers with O(k). The stamps MUST
  // be zeroed per run — the round counter restarts at 1 every run, so a
  // stale stamp from a previous run would alias a fresh round.
  std::vector<uint64_t>& pick_stamp = sc.pick_stamp;
  pick_stamp.assign(n, 0);
  std::vector<uint64_t>& placed_stamp = sc.placed_stamp;
  placed_stamp.assign(n, 0);
  std::vector<uint32_t>& pick_slot = sc.pick_slot;
  pick_slot.assign(n, 0);
  SimTime now = 0.0;
  size_t scheduling_points = 0;
  // Wall-clock attribution of the scheduling rounds (policy consultation
  // + pick assignment) — bench plumbing, only sampled when a timing sink
  // is configured, never affects results.
  const bool time_policy = options_.timing != nullptr;
  double policy_wait_ms = 0.0;
  size_t preemptions = 0;
  size_t idle_decisions = 0;
  size_t retries = 0;
  size_t retry_storm_suppressed = 0;
  size_t deferrals = 0;
  size_t outage_preemptions = 0;
  double total_outage_time = 0.0;
  std::vector<OutageWindow>& outages = sc.outages;
  outages.clear();
  size_t num_migrations = 0;
  double total_repair_time = 0.0;
  std::vector<OutageWindow>& crashes = sc.crashes;
  crashes.clear();
  const bool cold_migration =
      options_.fault_plan.config().migration == MigrationPolicy::kCold;

  // Execution attempt a transaction's work currently belongs to: every
  // work-discarding event (abort; cold migration) starts a new attempt.
  const auto attempt_of = [&](TxnId id) -> uint32_t {
    const TxnOutcome& o = outcomes[id];
    return cold_migration ? o.aborts + o.migrations : o.aborts;
  };

  // Closes the execution stretch of server `s` at time `t`, tagged with
  // the transaction's current attempt — call BEFORE bumping the abort /
  // migration count when a work-discarding event is what closes it.
  const auto close_segment = [&](size_t s, SimTime t) {
    if (!options_.record_schedule) return;
    if (t - segment_start[s] <= kTimeEpsilon) return;
    schedule.push_back(ScheduleSegment{running[s], static_cast<uint32_t>(s),
                                       segment_start[s], t,
                                       attempt_of(running[s])});
  };

  // Charges elapsed work to every busy server up to `t`.
  const auto charge_progress = [&](SimTime t) {
    for (size_t s = 0; s < k; ++s) {
      if (running[s] == kInvalidTxn) continue;
      const SimTime elapsed = t - dispatch_time[s];
      true_remaining_[running[s]] -= elapsed;
      estimated_remaining_[running[s]] =
          std::max(kMinEstimatedRemaining,
                   estimated_remaining_[running[s]] - elapsed);
      dispatch_time[s] = t;
      WEBTX_DCHECK(true_remaining_[running[s]] > -kTimeEpsilon);
    }
  };

  // Removes `root` from the system with `fate` and drops every
  // transitive dependent with fate kDroppedDependency (their
  // predecessors can never finish). See the failure-semantics contract
  // in simulator.h for the policy callback order.
  const auto resolve = [&](TxnId root, TxnFate fate, SimTime t) {
    std::vector<std::pair<TxnId, TxnFate>>& stack = resolve_stack;
    stack.clear();
    stack.emplace_back(root, fate);
    while (!stack.empty()) {
      const auto [cur, cur_fate] = stack.back();
      stack.pop_back();
      if (finished_[cur]) continue;
      if (ready_pos_[cur] != kNoReadyPos) {
        ReadyListRemove(cur);
        policy.OnCompletion(cur, t);  // dequeue signal
      }
      finished_[cur] = 1;
      suspended_[cur] = 0;
      ++resolved_count;
      TxnOutcome& o = outcomes[cur];
      o.fate = cur_fate;
      o.finish = t;
      o.missed_deadline = true;  // never finishing misses the deadline
      if (arrived_[cur]) policy.OnDropped(cur, t);
      const auto [succ_it, succ_end] = successors_of(cur);
      for (const TxnId* it = succ_it; it != succ_end; ++it) {
        if (!finished_[*it]) {
          stack.emplace_back(*it, TxnFate::kDroppedDependency);
        }
      }
    }
  };

  // Routes one (fresh or deferred) arrival through admission control.
  const auto admit_arrival = [&](TxnId id, SimTime t) {
    if (admission) {
      const AdmissionDecision d = admission->Decide(id, t);
      if (d.action == AdmissionDecision::Action::kReject) {
        resolve(id, TxnFate::kShedAdmission, t);
        return;
      }
      if (d.action == AdmissionDecision::Action::kDefer) {
        WEBTX_CHECK(d.defer_delay > 0.0)
            << admission->name() << " deferred T" << id
            << " with non-positive delay";
        ++deferrals;
        pending.push(internal::PendingEvent{t + d.defer_delay, 1, id});
        return;
      }
    }
    arrived_[id] = 1;
    policy.OnArrival(id, t);
    if (unmet_deps_[id] == 0) MakeReady(id, t, policy);
  };

  // Migrates the transaction running on crashing server `s` (see the
  // Crashes contract in simulator.h): warm failover retains the work —
  // the victim stays ready, exactly like an outage preemption — while
  // cold failover zeroes it, mirroring the abort path's callback order
  // (suspend before the OnCompletion dequeue signal so policies that
  // rebuild cached state see the victim as non-ready) but with an
  // immediate re-enqueue and no retry-budget charge.
  const auto migrate = [&](size_t s, SimTime t) {
    const TxnId victim = running[s];
    if (victim == kInvalidTxn) return;
    close_segment(s, t);  // belongs to the pre-migration attempt
    running[s] = kInvalidTxn;
    ++num_migrations;
    ++outcomes[victim].migrations;
    if (cold_migration) {
      suspended_[victim] = 1;
      ReadyListRemove(victim);
      policy.OnCompletion(victim, t);  // dequeue signal
      true_remaining_[victim] = spec_length(victim);
      estimated_remaining_[victim] = spec_estimate(victim);
      suspended_[victim] = 0;
      MakeReady(victim, t, policy);
    }
    policy.OnMigrated(victim, t);
  };

  while (resolved_count < n) {
    const SimTime t_arrival =
        next_arrival < n ? spec_arrival(arrival_order[next_arrival]) : kNever;
    const SimTime t_pending = pending.empty() ? kNever : pending.top().time;

    // Head scan: the next step is the EventBefore-least head over all
    // shards — each shard's completion recomputed from the post-charge
    // remaining (caching it at dispatch would diverge in ulps because
    // charge_progress re-rounds the remaining at every event), its fault
    // head cached — followed by the global pending and arrival events
    // (shard = k). The (time, class, shard) key reproduces the pre-shard
    // per-type scan chains exactly: the least class among the events at
    // the minimum time wins, then the lowest shard.
    internal::ShardEvent best{kNever, internal::ShardEventClass::kArrival,
                              static_cast<uint32_t>(k)};
    bool any_running = false;
    for (size_t s = 0; s < k; ++s) {
      if (running[s] != kInvalidTxn) {
        any_running = true;
        const internal::ShardEvent completion{
            dispatch_time[s] + true_remaining_[running[s]],
            internal::ShardEventClass::kCompletion, static_cast<uint32_t>(s)};
        if (internal::EventBefore(completion, best)) best = completion;
      }
      if (faults) {
        const internal::ShardEvent fault{fault_time[s], fault_cls[s],
                                         static_cast<uint32_t>(s)};
        if (internal::EventBefore(fault, best)) best = fault;
      }
    }
    const internal::ShardEvent pend{t_pending,
                                    internal::ShardEventClass::kPending,
                                    static_cast<uint32_t>(k)};
    if (internal::EventBefore(pend, best)) best = pend;
    const internal::ShardEvent arrival{t_arrival,
                                       internal::ShardEventClass::kArrival,
                                       static_cast<uint32_t>(k)};
    if (internal::EventBefore(arrival, best)) best = arrival;

    // Progress is guaranteed by a completion, an arrival, a pending
    // retry/deferral, or — when every server is down — the finite end of
    // an outage or crash repair window holding back a non-empty ready
    // set.
    WEBTX_CHECK(any_running || t_arrival != kNever || t_pending != kNever ||
                !ready_list_.empty())
        << "simulation stalled: " << (n - resolved_count)
        << " transactions unresolved, nothing running, no arrivals left "
           "(policy idled while work was pending?)";

    // Horizon-bounded runs stop before the first event past the cutoff;
    // everything unresolved stays unresolved and is aggregated as such
    // below (FromPrefixOutcomes).
    if (run_horizon > 0.0 && best.time > run_horizon) {
      horizon_cut = true;
      break;
    }

    now = best.time;
    charge_progress(now);

    switch (best.cls) {
      case internal::ShardEventClass::kCompletion: {
        const size_t completing_server = best.shard;
        // Simultaneous completions are processed one per scheduling
        // point, lowest server index first.
        close_segment(completing_server, now);
        const TxnId done = running[completing_server];
        running[completing_server] = kInvalidTxn;
        true_remaining_[done] = 0.0;
        estimated_remaining_[done] = 0.0;
        finished_[done] = 1;
        ++resolved_count;
        ReadyListRemove(done);

        TxnOutcome& o = outcomes[done];
        o.fate = TxnFate::kCompleted;
        o.finish = now;
        o.tardiness = TardinessOf(now, spec_deadline(done));
        o.weighted_tardiness = o.tardiness * spec_weight(done);
        o.response = now - spec_arrival(done);
        o.missed_deadline = o.tardiness > 0.0;

        policy.OnCompletion(done, now);
        const auto [succ_it, succ_end] = successors_of(done);
        for (const TxnId* it = succ_it; it != succ_end; ++it) {
          const TxnId succ = *it;
          WEBTX_DCHECK(unmet_deps_[succ] > 0);
          if (--unmet_deps_[succ] == 0 && arrived_[succ] &&
              !finished_[succ]) {
            MakeReady(succ, now, policy);
          }
        }
        break;
      }
      case internal::ShardEventClass::kOutage: {
        const size_t os = best.shard;
        FaultSource& src = sources[os];
        if (!src.down()) {
          // Outage begins: preempt the victim (work retained — it stays
          // ready and may be re-placed on another server immediately).
          outages.push_back(OutageWindow{static_cast<uint32_t>(os),
                                         src.next_transition(),
                                         src.outage_end()});
          total_outage_time += src.outage_end() - src.next_transition();
          if (running[os] != kInvalidTxn) {
            close_segment(os, now);
            running[os] = kInvalidTxn;
            ++outage_preemptions;
          }
        }
        // Either the outage starts (down until outage_end) or the server
        // recovers; both are scheduling points.
        src.AdvanceTransition();
        refresh_fault_head(os);
        sync_down(os);
        break;
      }
      case internal::ShardEventClass::kCrash: {
        const size_t cs = best.shard;
        FaultSource& src = sources[cs];
        if (!src.crashed()) {
          // Natural crash instant: fell the shard for its pre-drawn
          // repair window, then route this instant's handoffs through
          // the mailbox — the shard's own migration back into the
          // global ready set first, then (correlated mode) victims on
          // other shards in ascending order; a hit on an
          // already-crashed shard extends its repair window, recorded
          // as its own window so the union stays the exact downtime.
          // Enqueue then drain keeps the sequence identical to the
          // pre-shard handling of a crash instant.
          const SimTime repaired = src.repair_end();
          src.AdvanceCrashTransition();
          crashes.push_back(
              OutageWindow{static_cast<uint32_t>(cs), now, repaired});
          total_repair_time += repaired - now;
          mailbox.clear();
          uint32_t seq = 0;
          mailbox.push_back(internal::ShardMessage{
              now, static_cast<uint32_t>(cs), seq++,
              internal::ShardMessage::Kind::kMigrate,
              static_cast<uint32_t>(cs), 0.0});
          if (correlated) {
            for (size_t s = 0; s < k; ++s) {
              if (s == cs) continue;
              SimTime repair_duration = 0.0;
              if (!src.stream->DrawCorrelatedVictim(&repair_duration)) {
                continue;
              }
              mailbox.push_back(internal::ShardMessage{
                  now, static_cast<uint32_t>(cs), seq++,
                  internal::ShardMessage::Kind::kForceCrash,
                  static_cast<uint32_t>(s), repair_duration});
            }
          }
          for (size_t m = 0; m < mailbox.size(); ++m) {
            const internal::ShardMessage& msg = mailbox[m];
            WEBTX_DCHECK(m == 0 ||
                         internal::MessageBefore(mailbox[m - 1], msg));
            if (msg.kind == internal::ShardMessage::Kind::kMigrate) {
              migrate(msg.victim, msg.time);
            } else {
              crashes.push_back(OutageWindow{
                  msg.victim, msg.time, msg.time + msg.repair_duration});
              total_repair_time += msg.repair_duration;
              migrate(msg.victim, msg.time);
              sources[msg.victim].stream->ForceCrash(msg.time,
                                                     msg.repair_duration);
              refresh_fault_head(msg.victim);
              sync_down(msg.victim);
            }
          }
        } else {
          // Repair complete: the shard rejoins the pick-assignment
          // loop at this scheduling point.
          src.AdvanceCrashTransition();
        }
        refresh_fault_head(cs);
        sync_down(cs);
        break;
      }
      case internal::ShardEventClass::kAbort: {
        const size_t aborting_server = best.shard;
        sources[aborting_server].AdvanceAbort();  // always consume: the
                                                  // timeline stays
                                                  // policy-independent
        refresh_fault_head(aborting_server);
        const TxnId victim = running[aborting_server];
        if (victim == kInvalidTxn) break;  // idle/down server: no-op
        close_segment(aborting_server, now);  // belongs to the old attempt
        running[aborting_server] = kInvalidTxn;
        TxnOutcome& o = outcomes[victim];
        ++o.aborts;
        // Suspend BEFORE the dequeue callback: policies that rebuild
        // cached state inside OnCompletion (ASETS*'s workflow heads)
        // must already see the victim as non-ready.
        suspended_[victim] = 1;
        ReadyListRemove(victim);
        policy.OnCompletion(victim, now);  // dequeue signal
        // All executed work is lost.
        true_remaining_[victim] = spec_length(victim);
        estimated_remaining_[victim] = spec_estimate(victim);
        if (o.aborts >= options_.retry.max_attempts) {
          resolve(victim, TxnFate::kDroppedRetries, now);  // clears suspended_
          break;
        }
        ++retries;
        SimTime delay = options_.retry.backoff;
        const SimTime max_backoff = options_.retry.max_backoff;
        for (uint32_t i = 1; i < o.aborts; ++i) {
          delay *= options_.retry.backoff_multiplier;
          // Early exit keeps a dense abort stream from pushing the
          // product to infinity before the clamp below lands.
          if (max_backoff > 0.0 && delay > max_backoff) break;
        }
        if (max_backoff > 0.0 && delay > max_backoff) {
          delay = max_backoff;
          ++retry_storm_suppressed;
        }
        if (delay <= 0.0) {
          suspended_[victim] = 0;
          MakeReady(victim, now, policy);
        } else {
          pending.push(internal::PendingEvent{now + delay, 0, victim});
        }
        break;
      }
      case internal::ShardEventClass::kPending: {
        while (!pending.empty() && pending.top().time == now) {
          const internal::PendingEvent pe = pending.top();
          pending.pop();
          if (finished_[pe.id]) continue;  // resolved meanwhile
          if (pe.kind == 0) {
            suspended_[pe.id] = 0;
            MakeReady(pe.id, now, policy);
          } else {
            admit_arrival(pe.id, now);
          }
        }
        break;
      }
      case internal::ShardEventClass::kArrival: {
        while (next_arrival < n &&
               spec_arrival(arrival_order[next_arrival]) == now) {
          const TxnId id = arrival_order[next_arrival++];
          if (finished_[id]) continue;  // dropped before it arrived
          admit_arrival(id, now);
        }
        break;
      }
    }
    if (wants_remaining) {
      for (size_t s = 0; s < k; ++s) {
        if (running[s] != kInvalidTxn) {
          policy.OnRemainingUpdated(running[s], now);
        }
      }
    }

    // Scheduling point (Sec. III-A2: consult the policy on every arrival
    // and completion; fault boundaries and retries are events too). Up
    // servers are (re)filled greedily; the policy sees the transactions
    // already placed this round as excluded. Down servers take no work.
    ++scheduling_points;
    std::chrono::steady_clock::time_point round_start;
    if (time_policy) round_start = std::chrono::steady_clock::now();

    // Single-server fast path: one pick, no assignment matching. The
    // documented PickNextExcluding contract (empty exclude == PickNext)
    // makes this decision-identical to the general path below.
    if (k == 1) {
      TxnId pick = kInvalidTxn;
      if (!faults || !down[0]) {
        pick = policy.PickNext(now);
        if (pick != kInvalidTxn) {
          WEBTX_CHECK(IsReady(pick))
              << "policy " << policy.name() << " picked non-ready T" << pick
              << " at t=" << now;
        } else {
          WEBTX_CHECK(ready_list_.empty())
              << "policy " << policy.name() << " idled a server with "
              << ready_list_.size() << " ready transactions at t=" << now;
          ++idle_decisions;
        }
      }
      if (pick != running[0]) {
        if (running[0] != kInvalidTxn) {
          if (!finished_[running[0]]) ++preemptions;
          close_segment(0, now);
        }
        if (pick != kInvalidTxn) {
          dispatch_time[0] = now + options_.context_switch_cost;
          segment_start[0] = dispatch_time[0];
        }
        running[0] = pick;
      }
      if (time_policy) {
        policy_wait_ms += std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - round_start)
                              .count();
      }
      continue;
    }

    // Deferred per-shard maintenance (e.g. the ASETS* dirty flush), fanned
    // out on the shard pool. Without a pool every policy flushes lazily
    // inside the first pick instead, so the hook is skipped entirely — it
    // would be a per-round no-op virtual call on the serial path.
    if (pool != nullptr && sharded != nullptr) sharded->PrepareRound(now, pool);

    const size_t k_up = faults ? num_up_ : k;
    // One batched round in place of the greedy per-slot chain; the
    // PickBatch contract (sched/scheduler_policy.h) pins out[i] to
    // exactly what PickNextExcluding(now, {out[0..i-1]}) would return,
    // so the round — and every digest downstream — is byte-identical.
    policy.PickBatch(now, k_up, picks);
    WEBTX_CHECK(picks.size() <= k_up)
        << "policy " << policy.name() << " picked " << picks.size()
        << " transactions for " << k_up << " servers at t=" << now;
    for (size_t p = 0; p < picks.size(); ++p) {
      WEBTX_CHECK(IsReady(picks[p]))
          << "policy " << policy.name() << " picked non-ready T" << picks[p]
          << " at t=" << now;
      WEBTX_DCHECK(std::find(picks.begin(), picks.begin() + p, picks[p]) ==
                   picks.begin() + p)
          << "policy " << policy.name() << " picked T" << picks[p]
          << " twice";
    }
    if (picks.size() < k_up) {
      WEBTX_CHECK_EQ(picks.size(),
                     std::min<size_t>(k_up, ready_list_.size()))
          << "policy " << policy.name() << " idled a server with "
          << ready_list_.size() << " ready transactions at t=" << now;
    }
    if (picks.empty() && k_up > 0) ++idle_decisions;

    // Assign picks to servers, keeping continuing transactions in
    // place. The epoch-stamped lookup (stamp == this round means
    // "picked this round") makes the barrier step over shard heads O(k)
    // where the pre-shard simulator paid O(k^2) in std::find scans; the
    // picks being distinct and the running transactions being distinct
    // makes it decision-identical.
    const uint64_t round = static_cast<uint64_t>(scheduling_points);
    for (size_t p = 0; p < picks.size(); ++p) {
      pick_stamp[picks[p]] = round;
      pick_slot[picks[p]] = static_cast<uint32_t>(p);
    }
    next_running.assign(k, kInvalidTxn);
    pick_taken.assign(picks.size(), 0);
    for (size_t s = 0; s < k; ++s) {
      const TxnId r = running[s];
      if (r == kInvalidTxn) continue;
      if (pick_stamp[r] == round && !pick_taken[pick_slot[r]]) {
        next_running[s] = r;
        pick_taken[pick_slot[r]] = 1;
      }
    }
    {
      size_t p = 0;
      for (size_t s = 0; s < k; ++s) {
        if (next_running[s] != kInvalidTxn) continue;
        if (faults && down[s]) continue;
        while (p < picks.size() && pick_taken[p]) ++p;
        if (p >= picks.size()) break;
        next_running[s] = picks[p];
        pick_taken[p] = 1;
      }
    }
    for (size_t s = 0; s < k; ++s) {
      if (next_running[s] != kInvalidTxn) {
        placed_stamp[next_running[s]] = round;
      }
    }
    for (size_t s = 0; s < k; ++s) {
      if (running[s] != kInvalidTxn && !finished_[running[s]] &&
          placed_stamp[running[s]] != round) {
        ++preemptions;
      }
      if (next_running[s] != running[s]) {
        if (running[s] != kInvalidTxn) close_segment(s, now);
        if (next_running[s] != kInvalidTxn) {
          dispatch_time[s] = now + options_.context_switch_cost;
          segment_start[s] = dispatch_time[s];
          // Steal/handoff point of the sharded-state protocol: newly
          // dispatched transactions are announced in ascending server
          // order — the same deterministic (time, shard, seq) discipline
          // as the crash mailbox — so cross-shard moves replay
          // identically run to run.
          if (sharded != nullptr) {
            sharded->OnPlaced(next_running[s], static_cast<uint32_t>(s), now);
          }
        }
      }
      running[s] = next_running[s];
    }
    if (time_policy) {
      policy_wait_ms += std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - round_start)
                            .count();
    }
  }

  // Settle the buffered timelines before returning: no worker may
  // outlive the run that owns its buffers. This also flushes the run's
  // wall-clock accounting into options_.timing when set.
  if (buffered) {
    for (size_t s = 0; s < k; ++s) {
      timelines_[s].Finish(options_.timing);
    }
  }
  if (options_.timing != nullptr) {
    options_.timing->policy_wait_ms += policy_wait_ms;
    if (sharded != nullptr) {
      options_.timing->steal_count += sharded->steal_count();
    }
  }

  // record_outcomes steals the scratch outcomes buffer into the result
  // (the caller keeps the arrays); the view path aggregates in place and
  // leaves the buffer with the scratch arena for the next run. A
  // horizon-bounded run must not read unresolved outcomes (their fate
  // field is default-initialized), so it takes the prefix aggregator.
  RunResult result;
  if (horizon_cut) {
    result =
        RunResult::FromPrefixOutcomes(policy.name(), specs, outcomes, finished_);
    if (options_.record_outcomes) result.outcomes = std::move(outcomes);
  } else if (options_.record_outcomes) {
    result = RunResult::FromOutcomes(policy.name(), specs, std::move(outcomes));
  } else {
    result = RunResult::FromOutcomesView(policy.name(), specs, outcomes);
  }
  result.num_scheduling_points = scheduling_points;
  result.num_preemptions = preemptions;
  result.num_idle_decisions = idle_decisions;
  result.num_retries = retries;
  result.retry_storm_suppressed = retry_storm_suppressed;
  result.num_deferrals = deferrals;
  result.num_outages = outages.size();
  result.num_outage_preemptions = outage_preemptions;
  result.total_outage_time = total_outage_time;
  result.outages = std::move(outages);
  result.num_crashes = crashes.size();
  WEBTX_DCHECK(result.num_migrations == num_migrations)
      << "FromOutcomes migration sum disagrees with the event loop";
  result.total_repair_time = total_repair_time;
  result.crashes = std::move(crashes);
  if (options_.record_schedule) {
    std::sort(schedule.begin(), schedule.end(),
              [](const ScheduleSegment& a, const ScheduleSegment& b) {
                if (a.start != b.start) return a.start < b.start;
                return a.server < b.server;
              });
    result.schedule = std::move(schedule);
  }
  return result;
}

}  // namespace webtx
