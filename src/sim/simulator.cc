#include "sim/simulator.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

namespace webtx {

namespace {
constexpr size_t kNoReadyPos = std::numeric_limits<size_t>::max();
constexpr SimTime kNever = std::numeric_limits<SimTime>::infinity();
// Floor for the policy-visible remaining time of a transaction that
// overran its estimate; keeps priority keys (r, r/w, d - r) sane.
constexpr SimTime kMinEstimatedRemaining = 1e-6;
}  // namespace

Result<Simulator> Simulator::Create(std::vector<TransactionSpec> txns,
                                    SimOptions options) {
  for (size_t i = 0; i < txns.size(); ++i) {
    const TransactionSpec& t = txns[i];
    if (t.length <= 0.0) {
      return Status::InvalidArgument("T" + std::to_string(i) +
                                     " has non-positive length");
    }
    if (t.arrival < 0.0) {
      return Status::InvalidArgument("T" + std::to_string(i) +
                                     " has negative arrival time");
    }
    if (t.weight <= 0.0) {
      return Status::InvalidArgument("T" + std::to_string(i) +
                                     " has non-positive weight");
    }
    if (t.length_estimate < 0.0) {
      return Status::InvalidArgument("T" + std::to_string(i) +
                                     " has negative length estimate");
    }
  }
  WEBTX_ASSIGN_OR_RETURN(DependencyGraph graph, DependencyGraph::Build(txns));
  WorkflowRegistry registry = WorkflowRegistry::Build(graph);
  return Simulator(std::move(txns), std::move(graph), std::move(registry),
                   options);
}

Simulator::Simulator(std::vector<TransactionSpec> txns, DependencyGraph graph,
                     WorkflowRegistry registry, SimOptions options)
    : specs_(std::move(txns)),
      graph_(std::move(graph)),
      registry_(std::move(registry)),
      options_(options) {
  arrival_order_.resize(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    arrival_order_[i] = static_cast<TxnId>(i);
  }
  std::stable_sort(arrival_order_.begin(), arrival_order_.end(),
                   [this](TxnId a, TxnId b) {
                     if (specs_[a].arrival != specs_[b].arrival) {
                       return specs_[a].arrival < specs_[b].arrival;
                     }
                     return a < b;
                   });
}

void Simulator::ResetRuntimeState() {
  const size_t n = specs_.size();
  true_remaining_.resize(n);
  estimated_remaining_.resize(n);
  arrived_.assign(n, 0);
  finished_.assign(n, 0);
  unmet_deps_.resize(n);
  ready_list_.clear();
  ready_pos_.assign(n, kNoReadyPos);
  for (size_t i = 0; i < n; ++i) {
    true_remaining_[i] = specs_[i].length;
    estimated_remaining_[i] = specs_[i].EstimateOrLength();
    unmet_deps_[i] = static_cast<uint32_t>(specs_[i].dependencies.size());
  }
}

void Simulator::ReadyListAdd(TxnId id) {
  WEBTX_DCHECK(ready_pos_[id] == kNoReadyPos);
  ready_pos_[id] = ready_list_.size();
  ready_list_.push_back(id);
}

void Simulator::ReadyListRemove(TxnId id) {
  const size_t pos = ready_pos_[id];
  WEBTX_DCHECK(pos != kNoReadyPos);
  const TxnId moved = ready_list_.back();
  ready_list_[pos] = moved;
  ready_pos_[moved] = pos;
  ready_list_.pop_back();
  ready_pos_[id] = kNoReadyPos;
}

void Simulator::MakeReady(TxnId id, SimTime now, SchedulerPolicy& policy) {
  ReadyListAdd(id);
  policy.OnReady(id, now);
}

RunResult Simulator::Run(SchedulerPolicy& policy) {
  ResetRuntimeState();
  policy.Bind(*this);
  WEBTX_CHECK_GE(options_.num_servers, 1u);

  const size_t n = specs_.size();
  const size_t k = options_.num_servers;
  std::vector<TxnOutcome> outcomes(n);

  size_t next_arrival = 0;
  size_t finished_count = 0;
  std::vector<TxnId> running(k, kInvalidTxn);
  std::vector<SimTime> dispatch_time(k, 0.0);
  std::vector<SimTime> segment_start(k, 0.0);
  std::vector<ScheduleSegment> schedule;
  SimTime now = 0.0;
  size_t scheduling_points = 0;
  size_t preemptions = 0;
  size_t idle_decisions = 0;

  // Closes the execution stretch of server `s` at time `t`.
  const auto close_segment = [&](size_t s, SimTime t) {
    if (!options_.record_schedule) return;
    if (t - segment_start[s] <= kTimeEpsilon) return;
    schedule.push_back(ScheduleSegment{running[s], static_cast<uint32_t>(s),
                                       segment_start[s], t});
  };

  // Charges elapsed work to every busy server up to `t`.
  const auto charge_progress = [&](SimTime t) {
    for (size_t s = 0; s < k; ++s) {
      if (running[s] == kInvalidTxn) continue;
      const SimTime elapsed = t - dispatch_time[s];
      true_remaining_[running[s]] -= elapsed;
      estimated_remaining_[running[s]] =
          std::max(kMinEstimatedRemaining,
                   estimated_remaining_[running[s]] - elapsed);
      dispatch_time[s] = t;
      WEBTX_DCHECK(true_remaining_[running[s]] > -kTimeEpsilon);
    }
  };

  while (finished_count < n) {
    const SimTime t_arrival = next_arrival < n
                                  ? specs_[arrival_order_[next_arrival]].arrival
                                  : kNever;
    SimTime t_completion = kNever;
    size_t completing_server = k;
    for (size_t s = 0; s < k; ++s) {
      if (running[s] == kInvalidTxn) continue;
      const SimTime tc = dispatch_time[s] + true_remaining_[running[s]];
      if (tc < t_completion) {
        t_completion = tc;
        completing_server = s;
      }
    }

    WEBTX_CHECK(t_arrival != kNever || t_completion != kNever)
        << "simulation stalled: " << (n - finished_count)
        << " transactions unfinished, nothing running, no arrivals left "
           "(policy idled while work was pending?)";

    if (t_completion <= t_arrival) {
      // Completion event (wins ties against simultaneous arrivals;
      // simultaneous completions are processed one per scheduling point,
      // lowest server index first).
      now = t_completion;
      charge_progress(now);
      close_segment(completing_server, now);
      const TxnId done = running[completing_server];
      running[completing_server] = kInvalidTxn;
      true_remaining_[done] = 0.0;
      estimated_remaining_[done] = 0.0;
      finished_[done] = 1;
      ++finished_count;
      ReadyListRemove(done);

      TxnOutcome& o = outcomes[done];
      o.finish = now;
      o.tardiness = TardinessOf(now, specs_[done].deadline);
      o.weighted_tardiness = o.tardiness * specs_[done].weight;
      o.response = now - specs_[done].arrival;
      o.missed_deadline = o.tardiness > 0.0;

      policy.OnCompletion(done, now);
      for (const TxnId succ : graph_.successors(done)) {
        WEBTX_DCHECK(unmet_deps_[succ] > 0);
        if (--unmet_deps_[succ] == 0 && arrived_[succ]) {
          MakeReady(succ, now, policy);
        }
      }
    } else {
      // Arrival event; charge progress to the running transactions first.
      now = t_arrival;
      charge_progress(now);
      while (next_arrival < n &&
             specs_[arrival_order_[next_arrival]].arrival == now) {
        const TxnId id = arrival_order_[next_arrival++];
        arrived_[id] = 1;
        policy.OnArrival(id, now);
        if (unmet_deps_[id] == 0) MakeReady(id, now, policy);
      }
    }
    for (size_t s = 0; s < k; ++s) {
      if (running[s] != kInvalidTxn) {
        policy.OnRemainingUpdated(running[s], now);
      }
    }

    // Scheduling point (Sec. III-A2: consult the policy on every arrival
    // and completion). Servers are (re)filled greedily; the policy sees
    // the transactions already placed this round as excluded.
    ++scheduling_points;
    std::vector<TxnId> picks;
    picks.reserve(k);
    for (size_t slot = 0; slot < k; ++slot) {
      const TxnId pick = policy.PickNextExcluding(now, picks);
      if (pick == kInvalidTxn) break;
      WEBTX_CHECK(IsReady(pick))
          << "policy " << policy.name() << " picked non-ready T" << pick
          << " at t=" << now;
      WEBTX_DCHECK(std::find(picks.begin(), picks.end(), pick) ==
                   picks.end())
          << "policy " << policy.name() << " picked T" << pick << " twice";
      picks.push_back(pick);
    }
    if (picks.size() < k) {
      WEBTX_CHECK_EQ(picks.size(),
                     std::min<size_t>(k, ready_list_.size()))
          << "policy " << policy.name() << " idled a server with "
          << ready_list_.size() << " ready transactions at t=" << now;
    }
    if (picks.empty()) ++idle_decisions;

    // Assign picks to servers, keeping continuing transactions in place.
    std::vector<TxnId> next_running(k, kInvalidTxn);
    std::vector<char> pick_taken(picks.size(), 0);
    for (size_t s = 0; s < k; ++s) {
      if (running[s] == kInvalidTxn) continue;
      for (size_t p = 0; p < picks.size(); ++p) {
        if (!pick_taken[p] && picks[p] == running[s]) {
          next_running[s] = running[s];
          pick_taken[p] = 1;
          break;
        }
      }
    }
    {
      size_t p = 0;
      for (size_t s = 0; s < k; ++s) {
        if (next_running[s] != kInvalidTxn) continue;
        while (p < picks.size() && pick_taken[p]) ++p;
        if (p >= picks.size()) break;
        next_running[s] = picks[p];
        pick_taken[p] = 1;
      }
    }
    for (size_t s = 0; s < k; ++s) {
      if (running[s] != kInvalidTxn && !finished_[running[s]] &&
          std::find(next_running.begin(), next_running.end(), running[s]) ==
              next_running.end()) {
        ++preemptions;
      }
      if (next_running[s] != running[s]) {
        if (running[s] != kInvalidTxn) close_segment(s, now);
        if (next_running[s] != kInvalidTxn) {
          dispatch_time[s] = now + options_.context_switch_cost;
          segment_start[s] = dispatch_time[s];
        }
      }
      running[s] = next_running[s];
    }
  }

  RunResult result =
      RunResult::FromOutcomes(policy.name(), specs_, std::move(outcomes));
  result.num_scheduling_points = scheduling_points;
  result.num_preemptions = preemptions;
  result.num_idle_decisions = idle_decisions;
  if (!options_.record_outcomes) result.outcomes.clear();
  if (options_.record_schedule) {
    std::sort(schedule.begin(), schedule.end(),
              [](const ScheduleSegment& a, const ScheduleSegment& b) {
                if (a.start != b.start) return a.start < b.start;
                return a.server < b.server;
              });
    result.schedule = std::move(schedule);
  }
  return result;
}

}  // namespace webtx
