#ifndef WEBTX_SIM_SIMULATOR_H_
#define WEBTX_SIM_SIMULATOR_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "sched/scheduler_policy.h"
#include "sched/sim_view.h"
#include "sim/metrics.h"
#include "txn/dependency_graph.h"
#include "txn/transaction.h"
#include "txn/workflow.h"

namespace webtx {

/// Simulator knobs. The defaults model the paper's testbed: a single
/// back-end database server, preemption at scheduling points (transaction
/// arrival and completion, Sec. III-A2), zero dispatch overhead.
struct SimOptions {
  /// Per-dispatch overhead charged when a server switches to a different
  /// transaction than the one it previously ran. 0 in the paper.
  SimTime context_switch_cost = 0.0;
  /// Retain per-transaction outcomes in the RunResult (arrays of size N).
  bool record_outcomes = true;
  /// Record the full execution timeline (RunResult::schedule); useful for
  /// Gantt rendering and independent schedule validation.
  bool record_schedule = false;
  /// Number of parallel servers (back-end database workers). The paper
  /// evaluates a single server; k > 1 is an extension — the policy is
  /// consulted greedily via PickNextExcluding for each free server, so
  /// only policies overriding that hook support k > 1 (all shipped
  /// policies do).
  size_t num_servers = 1;
};

/// Discrete-event RTDBMS simulator (paper Sec. IV-A): one or more servers
/// each execute one transaction at a time; the bound policy is consulted
/// at every arrival and completion and may preempt running transactions.
/// Dependent transactions become ready only when all their predecessors
/// have finished.
///
/// Usage:
///   auto sim = Simulator::Create(specs, options);
///   EdfPolicy policy;
///   RunResult r = sim.ValueOrDie().Run(policy);
///
/// Thread safety: a Simulator is NOT thread-safe and must never be
/// shared across threads — Run() mutates per-transaction runtime state
/// in place (it resets that state on entry, so sequential reuse across
/// policies on ONE thread is fine). The parallel sweep engine
/// (exp/sweep.h) gets its parallelism by constructing an independent
/// Simulator + SchedulerPolicy per workload instance per worker, never
/// by sharing one. The same rule applies to SchedulerPolicy objects:
/// Bind() resets policy state, but concurrent Run() calls against one
/// policy object race on its queues.
class Simulator final : public SimView {
 public:
  /// Validates the workload (dense ids, acyclic dependencies, positive
  /// lengths, non-negative arrivals) and builds the precedence structures.
  static Result<Simulator> Create(std::vector<TransactionSpec> txns,
                                  SimOptions options = {});

  Simulator(Simulator&&) = default;
  Simulator& operator=(Simulator&&) = default;

  /// Runs the whole workload to completion under `policy` and returns the
  /// collected metrics. Resets all runtime state first, so the same
  /// Simulator can be reused across policies (each run is independent).
  RunResult Run(SchedulerPolicy& policy);

  // SimView:
  const std::vector<TransactionSpec>& specs() const override {
    return specs_;
  }
  const DependencyGraph& graph() const override { return graph_; }
  const WorkflowRegistry& workflows() const override { return registry_; }
  /// The scheduler's view of remaining processing time: derived from the
  /// transaction's length *estimate* minus executed time (clamped to a
  /// small positive floor when the estimate was too low). Equals the true
  /// remaining time when length_estimate is unset.
  SimTime remaining(TxnId id) const override {
    return estimated_remaining_[id];
  }
  bool IsArrived(TxnId id) const override { return arrived_[id] != 0; }
  bool IsFinished(TxnId id) const override { return finished_[id] != 0; }
  bool IsReady(TxnId id) const override {
    return arrived_[id] && !finished_[id] && unmet_deps_[id] == 0;
  }
  const std::vector<TxnId>& ready_transactions() const override {
    return ready_list_;
  }

 private:
  Simulator(std::vector<TransactionSpec> txns, DependencyGraph graph,
            WorkflowRegistry registry, SimOptions options);

  void ResetRuntimeState();
  void MakeReady(TxnId id, SimTime now, SchedulerPolicy& policy);
  void ReadyListAdd(TxnId id);
  void ReadyListRemove(TxnId id);

  std::vector<TransactionSpec> specs_;
  DependencyGraph graph_;
  WorkflowRegistry registry_;
  SimOptions options_;
  std::vector<TxnId> arrival_order_;  // ids sorted by (arrival, id)

  // Runtime state, reset per run. `true_remaining_` drives completion
  // events; `estimated_remaining_` is what policies observe.
  std::vector<SimTime> true_remaining_;
  std::vector<SimTime> estimated_remaining_;
  std::vector<char> arrived_;
  std::vector<char> finished_;
  std::vector<uint32_t> unmet_deps_;
  std::vector<TxnId> ready_list_;
  std::vector<size_t> ready_pos_;  // TxnId -> index in ready_list_
};

}  // namespace webtx

#endif  // WEBTX_SIM_SIMULATOR_H_
