#ifndef WEBTX_SIM_SIMULATOR_H_
#define WEBTX_SIM_SIMULATOR_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/sim_time.h"
#include "common/thread_pool.h"
#include "sched/admission.h"
#include "sched/scheduler_policy.h"
#include "sched/sim_view.h"
#include "sim/fault_plan.h"
#include "sim/fault_timeline.h"
#include "sim/metrics.h"
#include "sim/sim_workload.h"
#include "sim/txn_store.h"
#include "txn/dependency_graph.h"
#include "txn/transaction.h"
#include "txn/workflow.h"

namespace webtx {

namespace internal {

/// A time-ordered event the simulator schedules for later: the release of
/// an aborted transaction after its retry backoff (kind 0), or the
/// re-presentation of a deferred arrival to the admission controller
/// (kind 1). Kind breaks time ties (retries before deferred arrivals),
/// then the id — a fixed order that keeps runs deterministic. Exposed
/// here (rather than hidden in simulator.cc) so the tie-break contract is
/// directly unit-testable (tests/sim/event_order_test.cc).
struct PendingEvent {
  SimTime time = 0.0;
  uint8_t kind = 0;  // 0 = retry release, 1 = deferred arrival
  TxnId id = kInvalidTxn;
};

/// Max-heap comparator ordering PendingEvents latest-first, so the heap
/// top is the earliest (time, kind, id) triple.
struct PendingAfter {
  bool operator()(const PendingEvent& a, const PendingEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    if (a.kind != b.kind) return a.kind > b.kind;
    return a.id > b.id;
  }
};

/// Same-instant priority classes of the sharded event loop, in the fixed
/// order of the failure-semantics contract below: completion, outage
/// transition, crash transition, abort, retry release / deferred arrival
/// (kPending, ordered among themselves by PendingAfter), fresh arrival.
/// Lower enumerator value wins a time tie.
enum class ShardEventClass : uint8_t {
  kCompletion = 0,
  kOutage = 1,
  kCrash = 2,
  kAbort = 3,
  kPending = 4,
  kArrival = 5,
};

/// The head event of one server shard (or a global pending/arrival
/// event, which carries shard = num_servers). The next simulation step
/// is the EventBefore-least ShardEvent over all shards — a single
/// lexicographic (time, class, shard) key that is provably equivalent to
/// the per-type strict-less scan chains of the pre-shard simulator
/// (tests/testing/reference_simulator.h). Exposed for direct unit
/// testing of the tie-break contract (tests/sim/shard_event_order_test.cc).
struct ShardEvent {
  SimTime time = 0.0;
  ShardEventClass cls = ShardEventClass::kCompletion;
  uint32_t shard = 0;
};

/// Strict "fires earlier" order over shard head events.
constexpr bool EventBefore(const ShardEvent& a, const ShardEvent& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.cls != b.cls) {
    return static_cast<uint8_t>(a.cls) < static_cast<uint8_t>(b.cls);
  }
  return a.shard < b.shard;
}

/// A message in the cross-shard mailbox: work a crashing shard hands to
/// another shard at one instant — migrating its own running transaction
/// back into the global ready set, or felling a correlated victim. The
/// mailbox is drained in MessageBefore order, which (all messages of one
/// crash instant sharing `time` and `origin`) is exactly the enqueue
/// sequence: the origin's own migration first, then correlated victims
/// in ascending server order — replicating the pre-shard handling of a
/// crash instant byte for byte.
struct ShardMessage {
  SimTime time = 0.0;
  uint32_t origin = 0;  // the crashing shard
  uint32_t seq = 0;     // enqueue ordinal within the instant
  enum class Kind : uint8_t { kMigrate = 0, kForceCrash = 1 } kind =
      Kind::kMigrate;
  uint32_t victim = 0;            // shard acted upon
  SimTime repair_duration = 0.0;  // kForceCrash only
};

/// Strict drain order over mailbox messages.
constexpr bool MessageBefore(const ShardMessage& a, const ShardMessage& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.origin != b.origin) return a.origin < b.origin;
  return a.seq < b.seq;
}

}  // namespace internal

/// Backing structure for the simulator's pending-event queue (retry
/// releases and deferred arrivals). Both pop in exactly the
/// internal::PendingAfter (time, kind, id) order, so the knob can never
/// change results — only how fast a huge backlog drains. Pinned by
/// tests/sim/huge_structures_differential_test.cc and the calendar-queue
/// property tests.
enum class PendingQueueImpl : uint8_t {
  /// Binary heap over a reserved vector (the historical structure).
  kBinaryHeap = 0,
  /// Calendar/ladder queue (common/calendar_queue.h): amortized O(1)
  /// push/pop, cache-friendly at 10^5+ pending events.
  kCalendarQueue = 1,
};

// TxnStoreLayout lives in sim/sim_workload.h (the workload owns the
// mirror); re-exported here for the SimOptions knob below.

/// Simulator knobs. The defaults model the paper's testbed: a single
/// back-end database server, preemption at scheduling points (transaction
/// arrival and completion, Sec. III-A2), zero dispatch overhead, no
/// faults, no admission control.
struct SimOptions {
  /// Per-dispatch overhead charged when a server switches to a different
  /// transaction than the one it previously ran. 0 in the paper.
  SimTime context_switch_cost = 0.0;
  /// Retain per-transaction outcomes in the RunResult (arrays of size N).
  bool record_outcomes = true;
  /// Record the full execution timeline (RunResult::schedule); useful for
  /// Gantt rendering and independent schedule validation.
  bool record_schedule = false;
  /// Number of parallel servers (back-end database workers). The paper
  /// evaluates a single server; k > 1 is an extension — the policy is
  /// consulted greedily via PickNextExcluding for each free server, so
  /// only policies overriding that hook support k > 1 (all shipped
  /// policies do).
  size_t num_servers = 1;
  /// Deterministic fault injection (server outages, transaction aborts).
  /// The default plan is disabled; see the failure-semantics contract on
  /// Simulator below.
  FaultPlan fault_plan;
  /// Retry behavior for aborted transactions; only consulted when the
  /// fault plan injects aborts.
  RetryOptions retry;
  /// Admission controller factory consulted at every arrival, before the
  /// scheduling policy learns of the transaction; null admits everything.
  /// A fresh controller is constructed per Run.
  AdmissionFactory admission;
  /// Worker threads for per-shard background work: double-buffered
  /// fault-timeline pregeneration (sim/fault_timeline.h) and, for
  /// sharded-state policies (ShardedPolicyState), the fanned-out
  /// per-shard round maintenance in PrepareRound. 1 = fully serial, 0 =
  /// hardware concurrency. Pregeneration engages only when the fault
  /// plan is enabled and uncorrelated (a correlated crash process is
  /// mutated mid-run and cannot be pregenerated); the policy fan-out
  /// engages only for multi-server runs of a sharded-state policy. MUST
  /// NOT affect results: every run is byte-identical across
  /// shard_threads values — pinned by
  /// tests/sim/sharded_differential_test.cc against the frozen pre-shard
  /// simulator in tests/testing/reference_simulator.h.
  size_t shard_threads = 1;
  /// Optional wall-clock accounting sink for the sharded loop's
  /// background work (accumulated across shards and runs; bench plumbing,
  /// never affects results). The pointee must outlive every Run; leave
  /// null in parallel sweeps — RunInstances nulls it in its per-worker
  /// option copies.
  ShardTiming* timing = nullptr;
  /// Pending-event queue structure; results are byte-identical across
  /// values (huge-scale perf knob, see scripts/check.sh --huge-smoke).
  PendingQueueImpl pending_queue = PendingQueueImpl::kBinaryHeap;
  /// Per-transaction static data layout; results are byte-identical
  /// across values (huge-scale perf knob).
  TxnStoreLayout txn_store = TxnStoreLayout::kSpecVector;
  /// Simulated-time cutoff (0 = run to completion, the default). When
  /// > 0, Run stops before processing the first event past this instant
  /// and aggregates via RunResult::FromPrefixOutcomes: transactions
  /// unresolved at the cutoff count against goodput / miss ratio and
  /// stay out of the tardiness aggregates. Unlike every other knob in
  /// this struct, a bounded run's metrics are NOT those of the
  /// unbounded run — this is a ranking signal for what-if forecasts
  /// scored on identical cutoffs (the twin's successive-halving prune),
  /// priced at a fraction of the full event count. Ignored by
  /// record_schedule consumers: segments still open at the cutoff are
  /// not emitted.
  SimTime run_horizon = 0.0;
};

/// Discrete-event RTDBMS simulator (paper Sec. IV-A): one or more servers
/// each execute one transaction at a time; the bound policy is consulted
/// at every arrival and completion and may preempt running transactions.
/// Dependent transactions become ready only when all their predecessors
/// have finished.
///
/// Usage:
///   auto sim = Simulator::Create(specs, options);
///   EdfPolicy policy;
///   RunResult r = sim.ValueOrDie().Run(policy);
///
/// ## Failure-semantics contract
///
/// With a fault plan and/or admission controller configured, a run obeys
/// the following rules; every transaction ends in exactly one TxnFate and
/// the per-fate counts partition the workload (audited by
/// ValidateSchedule):
///
/// - *Event ordering.* Faults are first-class discrete events. When
///   events coincide in time they are processed in a fixed priority
///   order — completion, then outage transition, then crash transition,
///   then abort, then retry release / deferred arrival, then fresh
///   arrival — with the lowest server index (or transaction id)
///   breaking remaining ties, so a run is a pure function of (workload,
///   policy, options).
///
/// - *Outages.* A server going down preempts its running transaction;
///   the executed work is RETAINED (only aborts and cold migrations
///   lose work) and the transaction stays in the ready set, so the
///   policy may immediately re-place it on another up server. A down
///   server is never filled at scheduling points; recovery is itself a
///   scheduling point. Both boundaries of every window are scheduling
///   points and the injected windows are reported in
///   RunResult::outages.
///
/// - *Crashes.* A crash removes the server from the schedulable pool
///   until the end of its repair window; its running transaction is
///   MIGRATED — it re-enters the ready set at the crash instant with
///   its work retained (MigrationPolicy::kWarm: behaves like an outage
///   preemption, no policy callbacks) or zeroed
///   (MigrationPolicy::kCold: the policy sees OnCompletion as the
///   dequeue signal, then OnReady with the remaining time reset to the
///   full estimate — like an abort, but migrations never consume retry
///   budget). In correlated mode one crash instant can fell a seeded
///   subset of the other servers the same way, lowest server index
///   first. Crash and rejoin are both scheduling points; the injected
///   repair windows are reported in RunResult::crashes and the pool
///   size visible to admission controllers shrinks and grows with them
///   (SimView::num_servers_up).
///
/// - *Aborts.* An abort instant on a busy server discards ALL executed
///   work of the running transaction (true and estimated remaining reset
///   to full). The transaction is dequeued — the policy sees
///   OnCompletion, its usual dequeue signal — and then either retries or
///   is dropped per RetryOptions: attempt i < max_attempts re-enters the
///   ready set (OnReady) after backoff * multiplier^(i-1), during which
///   it is suspended (IsReady false, so policies cannot pick it); the
///   abort of attempt max_attempts drops it with fate kDroppedRetries.
///   Abort instants on an idle (or down) server are consumed as no-ops,
///   keeping the fault timeline policy-independent.
///
/// - *Admission.* The controller decides each arrival BEFORE the policy
///   observes it: kAdmit proceeds normally, kReject sheds the
///   transaction with fate kShedAdmission (the policy never hears of
///   it), kDefer re-presents the arrival defer_delay later.
///
/// - *Drop cascades.* When a transaction is shed or dropped, every
///   transitive dependent is dropped with fate kDroppedDependency at the
///   same instant — its predecessors can never finish, so it could never
///   become ready. For each dropped transaction the policy receives
///   OnCompletion iff it was in the ready set (dequeue signal), then
///   OnDropped iff it had arrived; dependents that never arrived are
///   resolved silently and their later arrival events are skipped.
///
/// - *Accounting.* Non-completed transactions count as deadline misses,
///   are excluded from the tardiness/response aggregates, and record
///   their shed/drop instant in TxnOutcome::finish. goodput =
///   num_completed / N.
///
/// Thread safety: a Simulator is NOT thread-safe and must never be
/// shared across threads — Run() mutates per-transaction runtime state
/// in place (it resets that state on entry, so sequential reuse across
/// policies on ONE thread is fine; fault timelines replay identically
/// because FaultStreams are rebuilt from the plan's seed each run). The
/// parallel sweep engine (exp/sweep.h) gets its parallelism by
/// constructing an independent Simulator + SchedulerPolicy per workload
/// instance per worker, never by sharing one. The same rule applies to
/// SchedulerPolicy objects: Bind() resets policy state, but concurrent
/// Run() calls against one policy object race on its queues.
class Simulator final : public SimView {
 public:
  /// Validates the workload (dense ids, acyclic dependencies, positive
  /// lengths, non-negative arrivals) and builds the precedence structures.
  /// Convenience over CreateShared: builds a private SimWorkload with the
  /// layout `options.txn_store` requests.
  static Result<Simulator> Create(std::vector<TransactionSpec> txns,
                                  SimOptions options = {});

  /// Creates a simulator over an externally owned (already validated)
  /// workload, without copying any of it. Several simulators may share
  /// one workload — concurrent Runs only read it — which is how the
  /// digital twin fans candidate forecasts out over one per-tick spec
  /// build. The workload's own store layout governs; options.txn_store
  /// is ignored on this path.
  static Result<Simulator> CreateShared(
      std::shared_ptr<const SimWorkload> workload, SimOptions options = {});

  Simulator(Simulator&&) noexcept;
  Simulator& operator=(Simulator&&) noexcept;
  ~Simulator();

  /// Repoints this simulator at a new workload (e.g. the next control
  /// tick's forecast build). Runtime state is re-sized on the next Run;
  /// all scratch storage is retained, so re-binding to an
  /// equal-or-smaller workload allocates nothing.
  void BindWorkload(std::shared_ptr<const SimWorkload> workload);

  /// Adjusts the server count between runs (the twin mirrors the live
  /// pool's up-count into its pooled forecast sims). Must be >= 1.
  void set_num_servers(size_t num_servers) {
    options_.num_servers = num_servers;
  }

  /// Adjusts the simulated-time cutoff between runs (0 = unbounded; see
  /// SimOptions::run_horizon). The twin's pruning pass flips its pooled
  /// slots between the prefix cutoff and the full horizon with this.
  void set_run_horizon(SimTime run_horizon) {
    options_.run_horizon = run_horizon;
  }

  /// Runs the whole workload to completion under `policy` and returns the
  /// collected metrics. Resets all runtime state first, so the same
  /// Simulator can be reused across policies (each run is independent).
  RunResult Run(SchedulerPolicy& policy);

  // SimView:
  const std::vector<TransactionSpec>& specs() const override {
    return workload_->specs();
  }
  const DependencyGraph& graph() const override { return workload_->graph(); }
  const WorkflowRegistry& workflows() const override {
    return workload_->workflows();
  }
  size_t num_servers() const override { return options_.num_servers; }
  /// Servers not currently held down by an outage or crash window;
  /// updated at every fault transition during Run (floored at 1, see
  /// SimView).
  size_t num_servers_up() const override {
    return num_up_ > 0 ? num_up_ : 1;
  }
  /// The scheduler's view of remaining processing time: derived from the
  /// transaction's length *estimate* minus executed time (clamped to a
  /// small positive floor when the estimate was too low). Equals the true
  /// remaining time when length_estimate is unset. Reset to the full
  /// estimate when an abort discards the executed work.
  SimTime remaining(TxnId id) const override {
    return estimated_remaining_[id];
  }
  bool IsArrived(TxnId id) const override { return arrived_[id] != 0; }
  /// True once the transaction left the system — completed OR shed or
  /// dropped; the cause lives in TxnOutcome::fate.
  bool IsFinished(TxnId id) const override { return finished_[id] != 0; }
  /// Runnable now: arrived, not finished, all dependencies met, and not
  /// suspended awaiting a retry backoff.
  bool IsReady(TxnId id) const override {
    return arrived_[id] && !finished_[id] && !suspended_[id] &&
           unmet_deps_[id] == 0;
  }
  const std::vector<TxnId>& ready_transactions() const override {
    return ready_list_;
  }

 private:
  Simulator(std::shared_ptr<const SimWorkload> workload, SimOptions options);

  void ResetRuntimeState();
  void MakeReady(TxnId id, SimTime now, SchedulerPolicy& policy);
  void ReadyListAdd(TxnId id);
  void ReadyListRemove(TxnId id);

  /// The specs and every structure derived from them, possibly shared
  /// with other simulators (const access only).
  std::shared_ptr<const SimWorkload> workload_;
  SimOptions options_;

  // Runtime state, sized at construction (and re-sized on BindWorkload)
  // and re-initialized — never reallocated — per run. `true_remaining_`
  // drives completion events; `estimated_remaining_` is what policies
  // observe.
  std::vector<SimTime> true_remaining_;
  std::vector<SimTime> estimated_remaining_;
  std::vector<char> arrived_;
  std::vector<char> finished_;
  std::vector<char> suspended_;  // aborted, awaiting retry backoff
  std::vector<uint32_t> unmet_deps_;
  std::vector<TxnId> ready_list_;
  std::vector<size_t> ready_pos_;  // TxnId -> index in ready_list_
  size_t num_up_ = 1;  // servers outside outage/crash windows (this run)

  // Sharded event-loop state: per-shard buffered fault timelines and the
  // pool that prefetches their chunks (lazily built on the first Run
  // that wants one, reused across runs). Engaged only when shard_threads
  // resolves to > 1 on an uncorrelated faulty run; both are inert
  // otherwise and never influence results.
  std::vector<FaultTimeline> timelines_;
  std::unique_ptr<ThreadPool> shard_pool_;

  /// Per-run scratch (outcomes, fault sources, pending queue, the
  /// scheduling round's pick/assignment buffers), lazily built on the
  /// first Run and warm-reused after — the steady-state event loop
  /// allocates nothing. Defined in simulator.cc.
  struct RunScratch;
  std::unique_ptr<RunScratch> scratch_;
};

}  // namespace webtx

#endif  // WEBTX_SIM_SIMULATOR_H_
