#ifndef WEBTX_SIM_SCHEDULE_VALIDATOR_H_
#define WEBTX_SIM_SCHEDULE_VALIDATOR_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "sim/metrics.h"
#include "txn/transaction.h"

namespace webtx {

/// Independently audits a recorded execution timeline against the
/// workload — a second implementation of the simulation rules used to
/// cross-check the simulator itself (run with
/// SimOptions::record_schedule and record_outcomes enabled):
///
///   1. every segment has positive duration and a valid server index;
///   2. segments on one server never overlap;
///   3. a transaction never runs on two servers at once;
///   4. no transaction runs before its arrival;
///   5. per-transaction executed time sums to its length, ending exactly
///      at its recorded finish;
///   6. precedence: a transaction starts only after every dependency's
///      recorded finish.
///
/// Returns OK or a FailedPrecondition describing the first violation.
Status ValidateSchedule(const std::vector<TransactionSpec>& specs,
                        const RunResult& result, size_t num_servers);

}  // namespace webtx

#endif  // WEBTX_SIM_SCHEDULE_VALIDATOR_H_
