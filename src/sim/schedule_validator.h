#ifndef WEBTX_SIM_SCHEDULE_VALIDATOR_H_
#define WEBTX_SIM_SCHEDULE_VALIDATOR_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "sim/fault_plan.h"
#include "sim/metrics.h"
#include "txn/transaction.h"

namespace webtx {

/// Inputs for auditing a recorded timeline. Pass `result.outages` and
/// `result.crashes` through so the validator can audit the injected
/// fault plan.
struct ValidationOptions {
  size_t num_servers = 1;
  /// Server outage windows that held during the run (usually
  /// RunResult::outages); no segment may intersect a window of its
  /// server.
  std::vector<OutageWindow> outages;
  /// Crash repair windows that held during the run (usually
  /// RunResult::crashes); no segment may intersect a window of its
  /// server.
  std::vector<OutageWindow> crashes;
  /// Migration policy the run executed under: decides whether a
  /// migration starts a new execution attempt (cold zeroes the work)
  /// or not (warm conserves it) — check 5 audits the recorded segments
  /// against exactly that accounting.
  MigrationPolicy migration = MigrationPolicy::kWarm;
};

/// Independently audits a recorded execution timeline against the
/// workload — a second implementation of the simulation rules used to
/// cross-check the simulator itself (run with
/// SimOptions::record_schedule and record_outcomes enabled):
///
///   1. every segment has positive duration and a valid server index;
///   2. segments on one server never overlap;
///   3. a transaction never runs on two servers at once;
///   4. no transaction runs before its arrival;
///   5. a COMPLETED transaction's final attempt executes exactly its
///      length, ending at its recorded finish — work from earlier
///      attempts, discarded by an abort or (under cold failover) a
///      migration, never counts; under warm failover migrations
///      conserve work, so they must NOT start a new attempt;
///   6. precedence: a transaction starts only after every dependency's
///      recorded finish, and a dependent of a shed/dropped transaction
///      is itself dropped (fate kDroppedDependency) and never runs
///      after the drop;
///   7. no segment intersects an outage or crash repair window of its
///      server;
///   8. every non-completed transaction carries a non-kCompleted fate
///      (a recorded cause) and completed ones carry kCompleted, with
///      the RunResult per-fate and per-event counters matching the
///      outcomes — the goodput/shed/drop partition accounts for every
///      transaction.
///
/// Returns OK or a FailedPrecondition describing the first violation;
/// the message always carries the timestamps, server, and transaction
/// ids involved, so a failing case is locatable without a debugger.
Status ValidateSchedule(const std::vector<TransactionSpec>& specs,
                        const RunResult& result,
                        const ValidationOptions& options);

/// Failure-free convenience overload (no outage/crash windows).
Status ValidateSchedule(const std::vector<TransactionSpec>& specs,
                        const RunResult& result, size_t num_servers);

}  // namespace webtx

#endif  // WEBTX_SIM_SCHEDULE_VALIDATOR_H_
