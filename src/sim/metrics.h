#ifndef WEBTX_SIM_METRICS_H_
#define WEBTX_SIM_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "txn/transaction.h"

namespace webtx {

/// Per-transaction outcome of one simulated run.
struct TxnOutcome {
  SimTime finish = 0.0;
  SimTime tardiness = 0.0;           // max(0, finish - deadline), Def. 3
  SimTime weighted_tardiness = 0.0;  // tardiness * weight
  SimTime response = 0.0;            // finish - arrival
  bool missed_deadline = false;
};

/// One contiguous stretch of a transaction executing on a server.
struct ScheduleSegment {
  TxnId txn = kInvalidTxn;
  uint32_t server = 0;
  SimTime start = 0.0;
  SimTime end = 0.0;
};

/// Aggregated result of one simulated run under one policy.
struct RunResult {
  std::string policy_name;

  std::vector<TxnOutcome> outcomes;

  /// Execution timeline (only when SimOptions::record_schedule is set):
  /// every dispatch-to-preemption/completion stretch, in start order.
  std::vector<ScheduleSegment> schedule;

  // The paper's metrics (Definitions 4 and 5, plus worst case for Fig. 16).
  double avg_tardiness = 0.0;
  double avg_weighted_tardiness = 0.0;
  double max_tardiness = 0.0;
  double max_weighted_tardiness = 0.0;

  // Secondary metrics.
  double miss_ratio = 0.0;     // fraction of transactions past deadline
  double avg_response = 0.0;   // mean response time
  SimTime makespan = 0.0;      // finish time of the last transaction

  // Scheduler accounting.
  size_t num_scheduling_points = 0;
  size_t num_preemptions = 0;
  size_t num_idle_decisions = 0;

  /// Fills the aggregate fields from `outcomes` and the specs. Called by
  /// the simulator; exposed for tests and trace post-processing.
  static RunResult FromOutcomes(std::string policy_name,
                                const std::vector<TransactionSpec>& specs,
                                std::vector<TxnOutcome> outcomes);
};

}  // namespace webtx

#endif  // WEBTX_SIM_METRICS_H_
