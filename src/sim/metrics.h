#ifndef WEBTX_SIM_METRICS_H_
#define WEBTX_SIM_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "sim/fault_plan.h"
#include "txn/transaction.h"

namespace webtx {

/// How a transaction left the system. Every transaction of a run ends
/// in exactly one of these states, so the per-fate counts in RunResult
/// always sum to N (the goodput accounting identity; enforced by
/// tests/property/fault_properties_test.cc and ValidateSchedule).
enum class TxnFate : uint8_t {
  kCompleted = 0,      // finished all of its work
  kShedAdmission,      // rejected by admission control at arrival
  kDroppedRetries,     // aborted max_attempts times, retry budget spent
  kDroppedDependency,  // a (transitive) predecessor was shed or dropped
};

/// Short stable label, e.g. "completed", "shed", for tables and CSVs.
const char* TxnFateName(TxnFate fate);

/// Per-transaction outcome of one simulated run. For non-completed
/// fates, `finish` records the drop/shed instant and the tardiness /
/// response fields stay 0 (they are excluded from the aggregates;
/// missed_deadline is set — a transaction that never finishes has by
/// definition missed its deadline).
struct TxnOutcome {
  SimTime finish = 0.0;
  SimTime tardiness = 0.0;           // max(0, finish - deadline), Def. 3
  SimTime weighted_tardiness = 0.0;  // tardiness * weight
  SimTime response = 0.0;            // finish - arrival
  bool missed_deadline = false;
  TxnFate fate = TxnFate::kCompleted;
  /// Times this transaction was aborted mid-execution (each abort
  /// discards all executed work).
  uint32_t aborts = 0;
  /// Times this transaction was migrated off a crashed server. Whether
  /// the executed work survived each migration is the run-level
  /// MigrationPolicy: warm retains it, cold discards it (cold
  /// migrations bump the segment attempt counter exactly like aborts,
  /// but never consume retry budget).
  uint32_t migrations = 0;
};

/// One contiguous stretch of a transaction executing on a server.
/// `attempt` is the execution attempt the work belonged to (0 before
/// the first work-discarding event); work from attempts before the last
/// one was discarded — by an abort, or by a cold migration off a
/// crashed server — and does not count toward completion.
struct ScheduleSegment {
  TxnId txn = kInvalidTxn;
  uint32_t server = 0;
  SimTime start = 0.0;
  SimTime end = 0.0;
  uint32_t attempt = 0;
};

/// Wall-clock accounting of the sharded simulator's background work,
/// accumulated across all shards of one Run when SimOptions::timing
/// points here (results are never affected — this is bench plumbing for
/// bench/ext_multi_server). `pregen_ms` is time spent materializing
/// fault-timeline chunks (on pool workers when shard_threads > 1),
/// `barrier_wait_ms` is time the event loop stalled at a chunk barrier
/// waiting for a prefetch to land. `policy_wait_ms` is the wall time the
/// event loop spent inside the per-event scheduling round (policy
/// consultation + pick assignment), so the bench can attribute the shard
/// barrier to policy work vs. event processing; `steal_count` is the
/// number of cross-shard entry moves a sharded-state policy performed
/// (always 0 for global-state policies; see ShardedPolicyState).
struct ShardTiming {
  double pregen_ms = 0.0;
  double barrier_wait_ms = 0.0;
  uint64_t chunks = 0;  // fault-timeline chunks consumed
  double policy_wait_ms = 0.0;
  uint64_t steal_count = 0;
};

/// Aggregated result of one simulated run under one policy.
///
/// Failure-aware accounting: tardiness / response aggregates are taken
/// over *completed* transactions only (for failure-free runs this is
/// all N, matching the paper's Definitions 4-5); `goodput` is the
/// fraction of transactions that completed; `miss_ratio` counts, out of
/// all N, completed-but-tardy transactions plus every shed or dropped
/// one.
struct RunResult {
  std::string policy_name;

  std::vector<TxnOutcome> outcomes;

  /// Execution timeline (only when SimOptions::record_schedule is set):
  /// every dispatch-to-preemption/completion stretch, in start order.
  std::vector<ScheduleSegment> schedule;

  // The paper's metrics (Definitions 4 and 5, plus worst case for Fig. 16).
  double avg_tardiness = 0.0;
  double avg_weighted_tardiness = 0.0;
  double max_tardiness = 0.0;
  double max_weighted_tardiness = 0.0;

  // Secondary metrics.
  double miss_ratio = 0.0;     // fraction of transactions past deadline
  double avg_response = 0.0;   // mean response time of completed txns
  SimTime makespan = 0.0;      // finish time of the last completed txn

  // Robustness metrics (all zero for failure-free runs).
  double goodput = 0.0;                 // num_completed / N
  size_t num_completed = 0;
  size_t num_shed = 0;                  // fate kShedAdmission
  size_t num_dropped_retries = 0;       // fate kDroppedRetries
  size_t num_dropped_dependency = 0;    // fate kDroppedDependency
  size_t num_aborts = 0;                // mid-execution aborts injected
  size_t num_retries = 0;               // aborts that re-entered the ready set
  size_t retry_storm_suppressed = 0;    // retry releases clamped at max_backoff
  size_t num_deferrals = 0;             // admission deferrals granted
  size_t num_outages = 0;               // outage windows that began
  size_t num_outage_preemptions = 0;    // running txns preempted by outages
  double total_outage_time = 0.0;       // summed injected window durations
  size_t num_crashes = 0;               // crash windows that began (incl.
                                        // correlated hits)
  size_t num_migrations = 0;            // running txns migrated off crashed
                                        // servers
  double total_repair_time = 0.0;       // summed injected repair durations

  /// Outage windows injected during the run (in begin order; a window
  /// may extend past the makespan). Feed to ValidateSchedule to audit
  /// that nothing executed on a down server.
  std::vector<OutageWindow> outages;

  /// Crash repair windows injected during the run (in begin order;
  /// correlated hits on an already-crashed server append the extension
  /// as its own window, so the union is the exact downtime). Feed to
  /// ValidateSchedule to audit that nothing executed on a crashed
  /// server.
  std::vector<OutageWindow> crashes;

  // Scheduler accounting.
  size_t num_scheduling_points = 0;
  size_t num_preemptions = 0;
  size_t num_idle_decisions = 0;

  /// Fills the aggregate fields from `outcomes` and the specs. Called by
  /// the simulator; exposed for tests and trace post-processing.
  static RunResult FromOutcomes(std::string policy_name,
                                const std::vector<TransactionSpec>& specs,
                                std::vector<TxnOutcome> outcomes);

  /// As FromOutcomes, but leaves `outcomes` with the caller and returns
  /// a result whose `outcomes` vector is empty — the record_outcomes
  /// = false path, where stealing the buffer would defeat a pooled
  /// simulator's scratch reuse. Aggregates are bit-identical to
  /// FromOutcomes of the same data.
  static RunResult FromOutcomesView(std::string policy_name,
                                    const std::vector<TransactionSpec>& specs,
                                    const std::vector<TxnOutcome>& outcomes);

  /// Aggregates a horizon-bounded run (SimOptions::run_horizon): only
  /// transactions with resolved[i] != 0 reached a terminal fate before
  /// the cutoff; the rest have default-constructed outcomes that MUST
  /// NOT be read (TxnOutcome::fate defaults to kCompleted, so treating
  /// them as terminal would silently count every unfinished transaction
  /// as a zero-tardiness completion). Unresolved transactions count
  /// against goodput and the miss ratio and stay out of the tardiness /
  /// response aggregates — a ranking signal over identical cutoffs, not
  /// a prefix of the unbounded run's metrics.
  static RunResult FromPrefixOutcomes(std::string policy_name,
                                      const std::vector<TransactionSpec>& specs,
                                      const std::vector<TxnOutcome>& outcomes,
                                      const std::vector<char>& resolved);
};

}  // namespace webtx

#endif  // WEBTX_SIM_METRICS_H_
