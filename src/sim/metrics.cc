#include "sim/metrics.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace webtx {

RunResult RunResult::FromOutcomes(std::string policy_name,
                                  const std::vector<TransactionSpec>& specs,
                                  std::vector<TxnOutcome> outcomes) {
  WEBTX_CHECK_EQ(specs.size(), outcomes.size());
  RunResult r;
  r.policy_name = std::move(policy_name);
  r.outcomes = std::move(outcomes);
  const size_t n = r.outcomes.size();
  if (n == 0) return r;

  double sum_t = 0.0;
  double sum_wt = 0.0;
  double sum_resp = 0.0;
  size_t missed = 0;
  for (size_t i = 0; i < n; ++i) {
    const TxnOutcome& o = r.outcomes[i];
    sum_t += o.tardiness;
    sum_wt += o.weighted_tardiness;
    sum_resp += o.response;
    if (o.missed_deadline) ++missed;
    r.max_tardiness = std::max(r.max_tardiness, o.tardiness);
    r.max_weighted_tardiness =
        std::max(r.max_weighted_tardiness, o.weighted_tardiness);
    r.makespan = std::max(r.makespan, o.finish);
  }
  const auto dn = static_cast<double>(n);
  r.avg_tardiness = sum_t / dn;
  r.avg_weighted_tardiness = sum_wt / dn;
  r.avg_response = sum_resp / dn;
  r.miss_ratio = static_cast<double>(missed) / dn;
  return r;
}

}  // namespace webtx
