#include "sim/metrics.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace webtx {

const char* TxnFateName(TxnFate fate) {
  switch (fate) {
    case TxnFate::kCompleted:
      return "completed";
    case TxnFate::kShedAdmission:
      return "shed";
    case TxnFate::kDroppedRetries:
      return "dropped-retries";
    case TxnFate::kDroppedDependency:
      return "dropped-dependency";
  }
  WEBTX_CHECK(false) << "unknown TxnFate "
                     << static_cast<unsigned>(fate);
  return "?";
}

RunResult RunResult::FromOutcomes(std::string policy_name,
                                  const std::vector<TransactionSpec>& specs,
                                  std::vector<TxnOutcome> outcomes) {
  RunResult r = FromOutcomesView(std::move(policy_name), specs, outcomes);
  r.outcomes = std::move(outcomes);
  return r;
}

RunResult RunResult::FromOutcomesView(
    std::string policy_name, const std::vector<TransactionSpec>& specs,
    const std::vector<TxnOutcome>& outcomes) {
  WEBTX_CHECK_EQ(specs.size(), outcomes.size());
  RunResult r;
  r.policy_name = std::move(policy_name);
  const size_t n = outcomes.size();
  if (n == 0) return r;

  // Tardiness / response aggregates run over completed transactions only;
  // a shed or dropped transaction has no finish time to measure, it is
  // instead counted against goodput and the miss ratio.
  double sum_t = 0.0;
  double sum_wt = 0.0;
  double sum_resp = 0.0;
  size_t missed = 0;
  for (size_t i = 0; i < n; ++i) {
    const TxnOutcome& o = outcomes[i];
    switch (o.fate) {
      case TxnFate::kCompleted:
        ++r.num_completed;
        break;
      case TxnFate::kShedAdmission:
        ++r.num_shed;
        break;
      case TxnFate::kDroppedRetries:
        ++r.num_dropped_retries;
        break;
      case TxnFate::kDroppedDependency:
        ++r.num_dropped_dependency;
        break;
    }
    r.num_aborts += o.aborts;
    r.num_migrations += o.migrations;
    if (o.fate != TxnFate::kCompleted) {
      ++missed;
      continue;
    }
    sum_t += o.tardiness;
    sum_wt += o.weighted_tardiness;
    sum_resp += o.response;
    if (o.missed_deadline) ++missed;
    r.max_tardiness = std::max(r.max_tardiness, o.tardiness);
    r.max_weighted_tardiness =
        std::max(r.max_weighted_tardiness, o.weighted_tardiness);
    r.makespan = std::max(r.makespan, o.finish);
  }
  WEBTX_CHECK_EQ(r.num_completed + r.num_shed + r.num_dropped_retries +
                     r.num_dropped_dependency,
                 n)
      << "per-fate counts must partition the workload";
  const auto dc = static_cast<double>(std::max<size_t>(r.num_completed, 1));
  r.avg_tardiness = sum_t / dc;
  r.avg_weighted_tardiness = sum_wt / dc;
  r.avg_response = sum_resp / dc;
  r.miss_ratio = static_cast<double>(missed) / static_cast<double>(n);
  r.goodput = static_cast<double>(r.num_completed) / static_cast<double>(n);
  return r;
}

RunResult RunResult::FromPrefixOutcomes(
    std::string policy_name, const std::vector<TransactionSpec>& specs,
    const std::vector<TxnOutcome>& outcomes,
    const std::vector<char>& resolved) {
  WEBTX_CHECK_EQ(specs.size(), outcomes.size());
  WEBTX_CHECK_EQ(resolved.size(), outcomes.size());
  RunResult r;
  r.policy_name = std::move(policy_name);
  const size_t n = outcomes.size();
  if (n == 0) return r;

  double sum_t = 0.0;
  double sum_wt = 0.0;
  double sum_resp = 0.0;
  size_t missed = 0;
  size_t num_resolved = 0;
  for (size_t i = 0; i < n; ++i) {
    const TxnOutcome& o = outcomes[i];
    // Per-event counters accumulate as they happen, so they are valid
    // even for transactions still in flight at the cutoff.
    r.num_aborts += o.aborts;
    r.num_migrations += o.migrations;
    if (!resolved[i]) {
      ++missed;  // not completed by the cutoff
      continue;
    }
    ++num_resolved;
    switch (o.fate) {
      case TxnFate::kCompleted:
        ++r.num_completed;
        break;
      case TxnFate::kShedAdmission:
        ++r.num_shed;
        break;
      case TxnFate::kDroppedRetries:
        ++r.num_dropped_retries;
        break;
      case TxnFate::kDroppedDependency:
        ++r.num_dropped_dependency;
        break;
    }
    if (o.fate != TxnFate::kCompleted) {
      ++missed;
      continue;
    }
    sum_t += o.tardiness;
    sum_wt += o.weighted_tardiness;
    sum_resp += o.response;
    if (o.missed_deadline) ++missed;
    r.max_tardiness = std::max(r.max_tardiness, o.tardiness);
    r.max_weighted_tardiness =
        std::max(r.max_weighted_tardiness, o.weighted_tardiness);
    r.makespan = std::max(r.makespan, o.finish);
  }
  WEBTX_CHECK_EQ(r.num_completed + r.num_shed + r.num_dropped_retries +
                     r.num_dropped_dependency,
                 num_resolved)
      << "per-fate counts must partition the resolved prefix";
  const auto dc = static_cast<double>(std::max<size_t>(r.num_completed, 1));
  r.avg_tardiness = sum_t / dc;
  r.avg_weighted_tardiness = sum_wt / dc;
  r.avg_response = sum_resp / dc;
  r.miss_ratio = static_cast<double>(missed) / static_cast<double>(n);
  r.goodput = static_cast<double>(r.num_completed) / static_cast<double>(n);
  return r;
}

}  // namespace webtx
