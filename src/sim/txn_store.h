#ifndef WEBTX_SIM_TXN_STORE_H_
#define WEBTX_SIM_TXN_STORE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "txn/dependency_graph.h"
#include "txn/transaction.h"

namespace webtx {

/// Arena-backed structure-of-arrays mirror of the per-transaction
/// static data the simulator's event loop touches: the five scalar spec
/// fields each as a dense double array, the dependency out-edges in CSR
/// form, and the per-transaction dependency counts. Selected by
/// SimOptions::txn_store (TxnStoreLayout::kArenaSoA); the default keeps
/// reading the TransactionSpec vector.
///
/// Why: at 10^6+ transactions the AoS spec vector puts ~100 bytes
/// (including a std::vector header for dependencies) between
/// consecutive `arrival` values, so the arrival head scan and
/// ResetRuntimeState each drag a full cache line per transaction for
/// one double of payload, and graph successors chase a per-node heap
/// vector. The SoA mirror streams those loops through contiguous
/// arrays: two allocations total (one double arena, one uint32 arena),
/// zero pointers to chase.
///
/// Byte-identity: every accessor returns the exact value the
/// corresponding TransactionSpec / DependencyGraph accessor returns
/// (the build is a plain copy, successor order preserved), so enabling
/// the store cannot change any RunResult bit — pinned by the
/// huge-structures differential matrix.
class TxnStore {
 public:
  TxnStore() = default;

  /// Mirrors `specs` and the out-edges of `graph`. Called once at
  /// Simulator construction when the knob is on.
  void Build(const std::vector<TransactionSpec>& specs,
             const DependencyGraph& graph) {
    n_ = specs.size();
    doubles_.resize(kNumFields * n_);
    for (size_t i = 0; i < n_; ++i) {
      const TransactionSpec& t = specs[i];
      doubles_[kArrival * n_ + i] = t.arrival;
      doubles_[kLength * n_ + i] = t.length;
      doubles_[kEstimateOrLength * n_ + i] = t.EstimateOrLength();
      doubles_[kDeadline * n_ + i] = t.deadline;
      doubles_[kWeight * n_ + i] = t.weight;
    }
    num_edges_ = 0;
    for (size_t i = 0; i < n_; ++i) num_edges_ += graph.successors(i).size();
    // uint32 arena layout: [succ offsets n+1][succ targets E][dep counts n]
    ints_.resize(n_ + 1 + num_edges_ + n_);
    size_t at = 0;
    for (size_t i = 0; i < n_; ++i) {
      ints_[i] = static_cast<uint32_t>(at);
      at += graph.successors(i).size();
    }
    ints_[n_] = static_cast<uint32_t>(at);
    for (size_t i = 0; i < n_; ++i) {
      const std::vector<TxnId>& succ = graph.successors(i);
      uint32_t* out = ints_.data() + n_ + 1 + ints_[i];
      for (size_t j = 0; j < succ.size(); ++j) out[j] = succ[j];
      ints_[n_ + 1 + num_edges_ + i] =
          static_cast<uint32_t>(specs[i].dependencies.size());
    }
    enabled_ = true;
  }

  /// Disables the mirror, keeping the arenas for a later warm `Build`.
  void Clear() { enabled_ = false; }

  bool enabled() const { return enabled_; }
  size_t size() const { return n_; }

  double arrival(TxnId id) const { return doubles_[kArrival * n_ + id]; }
  double length(TxnId id) const { return doubles_[kLength * n_ + id]; }
  double estimate_or_length(TxnId id) const {
    return doubles_[kEstimateOrLength * n_ + id];
  }
  double deadline(TxnId id) const { return doubles_[kDeadline * n_ + id]; }
  double weight(TxnId id) const { return doubles_[kWeight * n_ + id]; }
  uint32_t num_deps(TxnId id) const {
    return ints_[n_ + 1 + num_edges_ + id];
  }

  /// Dependent transactions of `id` (CSR slice), in the exact order
  /// DependencyGraph::successors reports them.
  std::pair<const TxnId*, const TxnId*> successors(TxnId id) const {
    const uint32_t* base = ints_.data() + n_ + 1;
    return {base + ints_[id], base + ints_[id + 1]};
  }

 private:
  enum Field : size_t {
    kArrival = 0,
    kLength,
    kEstimateOrLength,
    kDeadline,
    kWeight,
    kNumFields,
  };

  bool enabled_ = false;
  size_t n_ = 0;
  size_t num_edges_ = 0;
  std::vector<double> doubles_;  // kNumFields slices of n_ each
  std::vector<uint32_t> ints_;   // CSR offsets + targets + dep counts
};

}  // namespace webtx

#endif  // WEBTX_SIM_TXN_STORE_H_
