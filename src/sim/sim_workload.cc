#include "sim/sim_workload.h"

#include <algorithm>
#include <string>
#include <utility>

namespace webtx {

Result<SimWorkload> SimWorkload::Build(std::vector<TransactionSpec> txns,
                                       TxnStoreLayout layout) {
  SimWorkload workload;
  Status status = workload.Rebuild(txns, layout);
  if (!status.ok()) return status;
  return workload;
}

Status SimWorkload::Rebuild(std::vector<TransactionSpec>& txns,
                            TxnStoreLayout layout) {
  specs_.swap(txns);
  const size_t n = specs_.size();
  for (size_t i = 0; i < n; ++i) {
    const TransactionSpec& t = specs_[i];
    if (t.length <= 0.0) {
      return Status::InvalidArgument("T" + std::to_string(i) +
                                     " has non-positive length");
    }
    if (t.arrival < 0.0) {
      return Status::InvalidArgument("T" + std::to_string(i) +
                                     " has negative arrival time");
    }
    if (t.weight <= 0.0) {
      return Status::InvalidArgument("T" + std::to_string(i) +
                                     " has non-positive weight");
    }
    if (t.length_estimate < 0.0) {
      return Status::InvalidArgument("T" + std::to_string(i) +
                                     " has negative length estimate");
    }
  }
  Status graph_status = graph_.Rebuild(specs_);
  if (!graph_status.ok()) return graph_status;
  registry_.Rebuild(graph_);
  if (layout == TxnStoreLayout::kArenaSoA) {
    store_.Build(specs_, graph_);
  } else {
    store_.Clear();
  }
  arrival_order_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    arrival_order_[i] = static_cast<TxnId>(i);
  }
  // (arrival, id) is a strict total order, so plain sort yields exactly
  // the stable-sort result without its temporary buffer.
  std::sort(arrival_order_.begin(), arrival_order_.end(),
            [this](TxnId a, TxnId b) {
              if (specs_[a].arrival != specs_[b].arrival) {
                return specs_[a].arrival < specs_[b].arrival;
              }
              return a < b;
            });
  return Status::OK();
}

}  // namespace webtx
