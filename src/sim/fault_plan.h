#ifndef WEBTX_SIM_FAULT_PLAN_H_
#define WEBTX_SIM_FAULT_PLAN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/sim_time.h"

namespace webtx {

/// Key of one natural fault window in a plan's suppression lists
/// (FaultPlanConfig below): the drawing server and the window's ordinal
/// in that server's draw sequence (0 = first window drawn).
inline constexpr uint64_t EncodeFaultOrdinal(uint32_t server,
                                             uint32_t ordinal) {
  return (static_cast<uint64_t>(server) << 32) | ordinal;
}
inline constexpr uint32_t FaultOrdinalServer(uint64_t key) {
  return static_cast<uint32_t>(key >> 32);
}
inline constexpr uint32_t FaultOrdinalIndex(uint64_t key) {
  return static_cast<uint32_t>(key);
}

/// What happens to the transaction running on a server when the server
/// CRASHES (crash_rate below). Either way the transaction re-enters the
/// ready set at the crash instant and may be re-placed on a surviving
/// server immediately — the knob only decides whether its executed work
/// survives the move.
enum class MigrationPolicy : uint8_t {
  /// Warm failover: execution state is replicated, the migrated
  /// transaction resumes with its work retained (like an outage
  /// preemption).
  kWarm = 0,
  /// Cold failover: the crashed server's state is lost; the migrated
  /// transaction restarts from scratch (work zeroed, like an abort, but
  /// without consuming retry budget — the server died, not the
  /// transaction).
  kCold,
};

/// Short stable label: "warm" / "cold".
const char* MigrationPolicyName(MigrationPolicy policy);

/// Parameters of a deterministic fault-injection plan. Faults come in
/// three flavors, all modeled as independent Poisson processes per
/// server:
///   - *outages*: the server goes down for an exponentially distributed
///     window; its running transaction is preempted (work retained) and
///     the server accepts no work until recovery;
///   - *aborts*: the transaction running on the server at the abort
///     instant loses ALL executed work and re-enters the ready set
///     under the run's RetryOptions (abort instants on an idle server
///     are consumed as no-ops, i.e. the process is thinned);
///   - *crashes*: the server fails and leaves the schedulable pool for
///     an exponentially distributed repair window; its running
///     transaction is MIGRATED per `migration` (warm keeps the work,
///     cold zeroes it) and the server rejoins the pick-assignment loop
///     at repair end. With `correlated_crash_prob` > 0 each crash
///     instant can fell a seeded subset of the other servers at the
///     same instant (rack/zone loss).
struct FaultPlanConfig {
  /// Expected outages per time unit per server (0 = no outages).
  double outage_rate = 0.0;
  /// Mean outage duration in time units (exponential); must be > 0
  /// when outage_rate > 0.
  SimTime mean_outage_duration = 0.0;
  /// Expected abort instants per time unit per server (0 = no aborts).
  double abort_rate = 0.0;
  /// Expected crashes per time unit per server (0 = no crashes). A
  /// crash instant on an already-crashed server is consumed as a no-op
  /// (the process is thinned), keeping the timeline policy-independent.
  double crash_rate = 0.0;
  /// Mean repair window in time units (exponential); must be > 0 when
  /// crash_rate > 0.
  SimTime mean_repair_duration = 0.0;
  /// Fate of the in-flight transaction of a crashed server.
  MigrationPolicy migration = MigrationPolicy::kWarm;
  /// Correlated-failure mode: at each natural crash instant of server
  /// i, every other server independently crashes too with this
  /// probability (repair windows drawn from i's correlated stream), so
  /// one instant can fell a whole seeded subset. Must be in [0, 1].
  double correlated_crash_prob = 0.0;
  /// Base seed of the plan. Per-server event streams are derived via
  /// the DeriveSeed SplitMix64 chain (common/rng.h), so every server
  /// owns statistically independent outage, abort, and crash streams
  /// and the timeline is identical across policies, runs, and thread
  /// counts.
  uint64_t seed = 1;
  /// Natural fault windows to suppress, keyed by EncodeFaultOrdinal
  /// (server, ordinal-in-draw-order). A suppressed window is still
  /// DRAWN — its RNG consumption is unchanged, so every surviving
  /// window keeps its exact time — but never presented to the
  /// simulator: the crash (or outage) simply does not happen. This is
  /// what lets the chaos shrinker (exp/chaos.h) bisect the fault
  /// timeline itself: dropping instant j leaves instants i != j
  /// byte-identical, so a surviving reproducer names exactly the
  /// load-bearing windows. Empty in normal runs.
  std::vector<uint64_t> suppressed_crashes;
  std::vector<uint64_t> suppressed_outages;
};

/// How aborted transactions are retried (SimOptions::retry).
struct RetryOptions {
  /// Maximum execution attempts per transaction (>= 1). The abort of
  /// attempt number max_attempts drops the transaction with fate
  /// kDroppedRetries; max_attempts == 1 means abort-implies-drop.
  uint32_t max_attempts = 3;
  /// Delay before the i-th aborted transaction re-enters the ready set:
  /// backoff * backoff_multiplier^(i-1), clamped at max_backoff. 0 =
  /// immediate re-enqueue at the abort instant.
  SimTime backoff = 0.0;
  double backoff_multiplier = 2.0;
  /// Retry-storm guard: ceiling on any single retry delay (0 = no
  /// clamp). The simulation cost scales with abort_rate x horizon (idle
  /// abort instants are still consumed one event at a time), so an
  /// unclamped aggressive multiplier under a dense abort stream
  /// stretches runs geometrically; each clamped release is counted in
  /// RunResult::retry_storm_suppressed.
  SimTime max_backoff = 0.0;
};

/// One contiguous down-window of a server, as injected during a run.
/// Used for both outage windows and crash repair windows.
struct OutageWindow {
  uint32_t server = 0;
  SimTime start = 0.0;
  SimTime end = 0.0;
};

/// The deterministic per-server fault event stream of one run. The
/// simulator owns one per server and consumes it as a discrete event
/// source: next_transition() is the next outage boundary (start when
/// up, end when down), next_crash_transition() the next crash boundary
/// (crash when alive, rejoin when crashed), and next_abort() the next
/// abort instant. Streams are pure functions of (config.seed, server) —
/// plus, in correlated mode, the ForceCrash calls the simulator relays
/// from other servers' streams, which are themselves policy-independent
/// — so reconstructing them replays the identical timeline.
class FaultStream {
 public:
  FaultStream(const FaultPlanConfig& config, uint32_t server);

  /// Out of the schedulable pool: in an outage window OR crashed.
  bool down() const { return outage_down_ || crashed_; }

  /// Next outage start (when up) or the current outage's end (when
  /// down); kNeverTime when outages are disabled.
  SimTime next_transition() const {
    return outage_down_ ? outage_end_ : outage_start_;
  }

  /// End of the outage that next_transition() starts; only meaningful
  /// while up (the window [next_transition, outage_end_of_next) is
  /// already drawn) or down (the current window's end).
  SimTime outage_end() const { return outage_end_; }

  /// Crosses the next outage boundary: up -> down at outage start,
  /// down -> up at outage end (drawing the next window).
  void AdvanceTransition();

  /// Next abort instant; kNeverTime when aborts are disabled.
  SimTime next_abort() const { return next_abort_; }

  /// Consumes the pending abort instant and draws the next one.
  void AdvanceAbort();

  // --- Crash/rejoin process -----------------------------------------------

  bool crashed() const { return crashed_; }

  /// Next crash boundary: the pre-drawn natural crash instant while
  /// alive, or the repair end while crashed; kNeverTime when crashes
  /// are disabled and no forced crash is pending.
  SimTime next_crash_transition() const {
    return crashed_ ? repair_end_ : crash_start_;
  }

  /// Repair end of the pre-drawn natural crash window (alive) or of the
  /// current crash (crashed). Forced crashes may extend it.
  SimTime repair_end() const { return crashed_ ? repair_end_ : crash_end_; }

  /// Crosses the next crash boundary. Alive -> crashed at the natural
  /// crash instant (returns true); crashed -> alive at repair end
  /// (returns false), thinning any natural crash windows the repair
  /// subsumed before drawing the next one.
  bool AdvanceCrashTransition();

  /// Correlated-failure entry point: fells this server at `now` until
  /// `now + repair_duration` (extending the repair window if already
  /// crashed). Called by the simulator when another server's crash
  /// instant fells this one.
  void ForceCrash(SimTime now, SimTime repair_duration);

  /// Draws, from this server's correlated stream, whether its crash
  /// instant also fells one given other server, and the victim's repair
  /// duration. Must be called exactly once per other server, in
  /// ascending server order, at each natural crash instant of this
  /// server (the fixed consumption pattern keeps the timeline
  /// policy-independent). Returns true and sets *repair_duration on a
  /// hit.
  bool DrawCorrelatedVictim(SimTime* repair_duration);

 private:
  void DrawOutageWindow(SimTime after);
  void DrawCrashWindow(SimTime after);

  /// This server's suppressed window ordinals (from the plan's
  /// suppression lists), sorted; consulted by the draw helpers.
  std::vector<uint32_t> suppressed_outage_ordinals_;
  std::vector<uint32_t> suppressed_crash_ordinals_;
  uint32_t outage_ordinal_ = 0;  // windows drawn so far, per process
  uint32_t crash_ordinal_ = 0;

  double outage_rate_;
  SimTime mean_outage_duration_;
  double abort_rate_;
  double crash_rate_;
  SimTime mean_repair_duration_;
  double correlated_crash_prob_;
  Rng outage_rng_;
  Rng abort_rng_;
  Rng crash_rng_;
  Rng correlated_rng_;
  bool outage_down_ = false;
  bool crashed_ = false;
  SimTime outage_start_ = 0.0;
  SimTime outage_end_ = 0.0;
  SimTime next_abort_ = 0.0;
  SimTime crash_start_ = 0.0;  // pre-drawn natural crash window
  SimTime crash_end_ = 0.0;
  SimTime repair_end_ = 0.0;  // down-until while crashed (forced crashes
                              // may push it past crash_end_)
};

/// Sentinel for "no further fault events".
inline constexpr SimTime kNeverTime = 1e308;

/// A validated, seeded fault-injection plan. Value-type and cheap to
/// copy (it stores only the config, whose suppression lists are empty
/// outside chaos-shrinking); Simulator::Run materializes fresh
/// FaultStreams from it on every run, so reusing one Simulator across
/// policies replays the identical fault timeline under each policy.
class FaultPlan {
 public:
  /// The default plan injects nothing (enabled() == false).
  FaultPlan() = default;

  /// Validates rates, durations, and the correlation probability.
  static Result<FaultPlan> Create(FaultPlanConfig config);

  bool enabled() const {
    return config_.outage_rate > 0.0 || config_.abort_rate > 0.0 ||
           config_.crash_rate > 0.0;
  }
  const FaultPlanConfig& config() const { return config_; }

  /// Returns a copy of this plan whose per-server streams are re-keyed
  /// by `stream`, via DeriveSeed(seed, stream, 0). The parallel sweep
  /// engine uses this to give every workload instance an independent
  /// fault timeline while staying byte-identical across thread counts.
  FaultPlan WithDerivedSeed(uint64_t stream) const;

  /// Deterministic event stream for one server of one run.
  FaultStream StreamFor(uint32_t server) const {
    return FaultStream(config_, server);
  }

 private:
  explicit FaultPlan(FaultPlanConfig config) : config_(config) {}

  FaultPlanConfig config_{};
};

}  // namespace webtx

#endif  // WEBTX_SIM_FAULT_PLAN_H_
