#ifndef WEBTX_SIM_FAULT_PLAN_H_
#define WEBTX_SIM_FAULT_PLAN_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "common/sim_time.h"

namespace webtx {

/// Parameters of a deterministic fault-injection plan. Faults come in
/// two flavors, both modeled as independent Poisson processes per
/// server:
///   - *outages*: the server goes down for an exponentially distributed
///     window; its running transaction is preempted (work retained) and
///     the server accepts no work until recovery;
///   - *aborts*: the transaction running on the server at the abort
///     instant loses ALL executed work and re-enters the ready set
///     under the run's RetryOptions (abort instants on an idle server
///     are consumed as no-ops, i.e. the process is thinned).
struct FaultPlanConfig {
  /// Expected outages per time unit per server (0 = no outages).
  double outage_rate = 0.0;
  /// Mean outage duration in time units (exponential); must be > 0
  /// when outage_rate > 0.
  SimTime mean_outage_duration = 0.0;
  /// Expected abort instants per time unit per server (0 = no aborts).
  double abort_rate = 0.0;
  /// Base seed of the plan. Per-server event streams are derived via
  /// the DeriveSeed SplitMix64 chain (common/rng.h), so every server
  /// owns statistically independent outage and abort streams and the
  /// timeline is identical across policies, runs, and thread counts.
  uint64_t seed = 1;
};

/// How aborted transactions are retried (SimOptions::retry).
struct RetryOptions {
  /// Maximum execution attempts per transaction (>= 1). The abort of
  /// attempt number max_attempts drops the transaction with fate
  /// kDroppedRetries; max_attempts == 1 means abort-implies-drop.
  uint32_t max_attempts = 3;
  /// Delay before the i-th aborted transaction re-enters the ready set:
  /// backoff * backoff_multiplier^(i-1). 0 = immediate re-enqueue at
  /// the abort instant. Note the simulation cost scales with abort_rate
  /// x horizon (idle abort instants are still consumed one event at a
  /// time), so an aggressive multiplier under a dense abort stream can
  /// stretch runs geometrically; keep backoff delays within a few mean
  /// transaction lengths.
  SimTime backoff = 0.0;
  double backoff_multiplier = 2.0;
};

/// One contiguous down-window of a server, as injected during a run.
struct OutageWindow {
  uint32_t server = 0;
  SimTime start = 0.0;
  SimTime end = 0.0;
};

/// The deterministic per-server fault event stream of one run. The
/// simulator owns one per server and consumes it as a discrete event
/// source: next_transition() is the next outage boundary (start when
/// up, end when down) and next_abort() the next abort instant. Streams
/// are pure functions of (config.seed, server), so reconstructing them
/// replays the identical timeline.
class FaultStream {
 public:
  FaultStream(const FaultPlanConfig& config, uint32_t server);

  bool down() const { return down_; }

  /// Next outage start (when up) or the current outage's end (when
  /// down); kNeverTime when outages are disabled.
  SimTime next_transition() const { return down_ ? outage_end_ : outage_start_; }

  /// End of the outage that next_transition() starts; only meaningful
  /// while up (the window [next_transition, outage_end_of_next) is
  /// already drawn) or down (the current window's end).
  SimTime outage_end() const { return outage_end_; }

  /// Crosses the next outage boundary: up -> down at outage start,
  /// down -> up at outage end (drawing the next window).
  void AdvanceTransition();

  /// Next abort instant; kNeverTime when aborts are disabled.
  SimTime next_abort() const { return next_abort_; }

  /// Consumes the pending abort instant and draws the next one.
  void AdvanceAbort();

 private:
  void DrawOutageWindow(SimTime after);

  double outage_rate_;
  SimTime mean_outage_duration_;
  double abort_rate_;
  Rng outage_rng_;
  Rng abort_rng_;
  bool down_ = false;
  SimTime outage_start_ = 0.0;
  SimTime outage_end_ = 0.0;
  SimTime next_abort_ = 0.0;
};

/// Sentinel for "no further fault events".
inline constexpr SimTime kNeverTime = 1e308;

/// A validated, seeded fault-injection plan. Value-type and cheap to
/// copy (it stores only the config); Simulator::Run materializes fresh
/// FaultStreams from it on every run, so reusing one Simulator across
/// policies replays the identical fault timeline under each policy.
class FaultPlan {
 public:
  /// The default plan injects nothing (enabled() == false).
  FaultPlan() = default;

  /// Validates rates and durations.
  static Result<FaultPlan> Create(FaultPlanConfig config);

  bool enabled() const {
    return config_.outage_rate > 0.0 || config_.abort_rate > 0.0;
  }
  const FaultPlanConfig& config() const { return config_; }

  /// Returns a copy of this plan whose per-server streams are re-keyed
  /// by `stream`, via DeriveSeed(seed, stream, 0). The parallel sweep
  /// engine uses this to give every workload instance an independent
  /// fault timeline while staying byte-identical across thread counts.
  FaultPlan WithDerivedSeed(uint64_t stream) const;

  /// Deterministic event stream for one server of one run.
  FaultStream StreamFor(uint32_t server) const {
    return FaultStream(config_, server);
  }

 private:
  explicit FaultPlan(FaultPlanConfig config) : config_(config) {}

  FaultPlanConfig config_{};
};

}  // namespace webtx

#endif  // WEBTX_SIM_FAULT_PLAN_H_
